// Package cdnjson is the public API of the reproduction of
// "Characterizing JSON Traffic Patterns on a CDN" (IMC '19).
//
// It re-exports the stable surface of the internal packages as type
// aliases plus convenience constructors, organized along the paper:
//
//   - Log records and codecs (the CDN edge log schema, §3.1)
//   - Synthetic workload generation (stand-in for the Akamai datasets)
//   - Taxonomy characterization (§4: devices, methods, sizes, caching)
//   - Periodicity detection (§5.1)
//   - Ngram request prediction and URL clustering (§5.2)
//   - Edge-cache simulation and prediction-driven prefetching
//   - Edge↔origin resilience: fault injection, retries, breakers,
//     serve-stale degradation
//
// The runnable entry points live in cmd/ (jsongen, jsonchar, jsonperiod,
// jsonpredict, jsonprefetch, jsonrepro) and examples/.
package cdnjson

import (
	"io"
	"time"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/domaincat"
	"repro/internal/edge"
	"repro/internal/experiments"
	"repro/internal/flows"
	"repro/internal/logfmt"
	"repro/internal/ngram"
	"repro/internal/periodicity"
	"repro/internal/prefetch"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/uastring"
	"repro/internal/urlkit"
)

// Log records and codecs.
type (
	// Record is one edge-server request log line.
	Record = logfmt.Record
	// CacheStatus is the edge cache disposition of a response.
	CacheStatus = logfmt.CacheStatus
	// LogWriter streams records to an io.Writer.
	LogWriter = logfmt.Writer
	// LogReader streams records from an io.Reader.
	LogReader = logfmt.Reader
	// DatasetSummary aggregates Table 2-style dataset statistics.
	DatasetSummary = logfmt.DatasetSummary
)

// Cache dispositions.
const (
	CacheUncacheable = logfmt.CacheUncacheable
	CacheHit         = logfmt.CacheHit
	CacheMiss        = logfmt.CacheMiss
)

// Log formats.
const (
	FormatTSV   = logfmt.FormatTSV
	FormatJSONL = logfmt.FormatJSONL
)

// NewLogWriter returns a buffered log writer in the given format.
func NewLogWriter(w io.Writer, format logfmt.Format) *LogWriter {
	return logfmt.NewWriter(w, format)
}

// NewLogReader returns a log reader (gzip detected automatically).
func NewLogReader(r io.Reader, format logfmt.Format) (*LogReader, error) {
	return logfmt.NewReader(r, format)
}

// Workload generation.
type (
	// GeneratorConfig parameterizes the synthetic CDN workload.
	GeneratorConfig = synth.Config
	// SourceMix sets traffic source shares (Fig. 3).
	SourceMix = synth.SourceMix
	// MonthCounter is one month of the Fig. 1 trend series.
	MonthCounter = synth.MonthCounter
)

// ShortTermConfig and LongTermConfig return scaled Table 2 presets.
func ShortTermConfig(seed uint64, scale float64) GeneratorConfig {
	return synth.ShortTermConfig(seed, scale)
}

// LongTermConfig returns the narrow, day-long preset.
func LongTermConfig(seed uint64, scale float64) GeneratorConfig {
	return synth.LongTermConfig(seed, scale)
}

// Generate streams the synthetic dataset to emit.
func Generate(cfg GeneratorConfig, emit func(*Record) error) error {
	return synth.Generate(cfg, emit)
}

// GenerateRecords materializes a synthetic dataset in memory.
func GenerateRecords(cfg GeneratorConfig) ([]Record, error) {
	return core.Collect(core.SynthSource(cfg))
}

// Characterization (§4).
type (
	// Characterization aggregates the §4 statistics.
	Characterization = taxonomy.Characterization
	// DomainCacheability aggregates the Fig. 4 heatmap inputs.
	DomainCacheability = taxonomy.DomainCacheability
	// DeviceType is the traffic-source device taxonomy.
	DeviceType = uastring.DeviceType
	// Category is a domain industry category.
	Category = domaincat.Category
)

// Device types.
const (
	DeviceUnknown  = uastring.DeviceUnknown
	DeviceMobile   = uastring.DeviceMobile
	DeviceDesktop  = uastring.DeviceDesktop
	DeviceEmbedded = uastring.DeviceEmbedded
)

// NewCharacterization returns an empty §4 aggregate; feed records with
// ObserveAny.
func NewCharacterization() *Characterization { return taxonomy.NewCharacterization() }

// ClassifyUserAgent maps a raw User-Agent header to its traffic source.
func ClassifyUserAgent(raw string) uastring.Class { return uastring.Classify(raw) }

// Periodicity (§5.1).
type (
	// PeriodicityConfig parameterizes the §5.1 analysis.
	PeriodicityConfig = periodicity.Config
	// PeriodicityResult is the dataset-level outcome.
	PeriodicityResult = periodicity.Result
	// FlowExtractor builds object and client-object flows from records.
	FlowExtractor = flows.Extractor
)

// NewFlowExtractor returns an extractor with the paper's flow filters.
func NewFlowExtractor() *FlowExtractor { return flows.NewExtractor() }

// DefaultPeriodicityConfig returns the paper's §5.1 parameters.
func DefaultPeriodicityConfig() PeriodicityConfig { return periodicity.DefaultConfig() }

// AnalyzePeriodicity runs the §5.1 pipeline over extracted flows.
func AnalyzePeriodicity(fl []*flows.ObjectFlow, totalRequests int64, cfg PeriodicityConfig) *PeriodicityResult {
	return periodicity.Analyze(fl, totalRequests, cfg)
}

// Prediction (§5.2).
type (
	// PredictionModel is the backoff ngram model.
	PredictionModel = ngram.Model
	// Sequencer builds per-client URL sequences with a train/test split.
	Sequencer = ngram.Sequencer
)

// NewPredictionModel returns a model conditioning on up to order
// previous requests.
func NewPredictionModel(order int) *PredictionModel { return ngram.NewModel(order) }

// NewSequencer returns a sequence builder with the paper's defaults.
func NewSequencer() *Sequencer { return ngram.NewSequencer() }

// ClusterURL maps a URL to its Klotski-style cluster template.
func ClusterURL(raw string) string { return urlkit.Cluster(raw) }

// Edge simulation and prefetching.
type (
	// EdgeCache is a sharded LRU+TTL cache.
	EdgeCache = edge.Cache
	// EdgePool is a consistent-hash pool of edge servers.
	EdgePool = edge.Pool
	// HTTPEdge is a real net/http caching edge server.
	HTTPEdge = edge.HTTPEdge
	// PrefetchConfig parameterizes the prefetch simulation.
	PrefetchConfig = prefetch.Config
	// PrefetchComparison is a baseline-vs-prefetch outcome pair.
	PrefetchComparison = prefetch.Comparison
)

// NewEdgePool creates n edge servers with per-server cache capacity.
func NewEdgePool(n int, capacityBytes int64, ttl time.Duration) *EdgePool {
	return edge.NewPool(n, capacityBytes, ttl)
}

// Edge↔origin resilience.
type (
	// FaultyOrigin injects seeded, reproducible origin failures.
	FaultyOrigin = resilience.FaultyOrigin
	// ResilientOrigin adds timeouts, jittered retries, and a breaker.
	ResilientOrigin = resilience.ResilientOrigin
	// CircuitBreaker is a three-state per-origin circuit breaker.
	CircuitBreaker = resilience.Breaker
	// RetryBackoff is capped exponential backoff with full jitter.
	RetryBackoff = resilience.Backoff
)

// ComparePrefetch replays records through identical edges with and
// without ngram prefetching.
func ComparePrefetch(model *PredictionModel, cfg PrefetchConfig, records func(func(*Record))) PrefetchComparison {
	return prefetch.Compare(model, cfg, records)
}

// Anomaly detection.
type (
	// RequestAnomalyDetector flags improbable requests (§5.2).
	RequestAnomalyDetector = anomaly.RequestDetector
	// PeriodAnomalyDetector flags off-period arrivals (§5.1).
	PeriodAnomalyDetector = anomaly.PeriodDetector
)

// NewRequestAnomalyDetector wraps a trained model.
func NewRequestAnomalyDetector(m *PredictionModel) *RequestAnomalyDetector {
	return anomaly.NewRequestDetector(m)
}

// Scheduling (the paper's deprioritization proposal).
type (
	// SchedRequest is one unit of edge work for the scheduler.
	SchedRequest = sched.Request
	// SchedConfig selects workers and queueing discipline.
	SchedConfig = sched.Config
	// SchedResult reports per-class queueing latency.
	SchedResult = sched.Result
)

// Scheduling classes and disciplines.
const (
	ClassHuman    = sched.ClassHuman
	ClassMachine  = sched.ClassMachine
	FIFO          = sched.FIFO
	PriorityHuman = sched.PriorityHuman
)

// SimulateScheduling runs a request stream through the edge scheduler.
func SimulateScheduling(reqs []SchedRequest, cfg SchedConfig) (SchedResult, error) {
	return sched.Simulate(reqs, cfg)
}

// CompareScheduling contrasts FIFO with human-priority scheduling.
func CompareScheduling(reqs []SchedRequest, workers int) (fifo, prio SchedResult, err error) {
	return sched.Compare(reqs, workers)
}

// Timed prediction (the paper's interarrival future work).
type (
	// TimedPredictionModel augments the ngram model with per-transition
	// interarrival estimates.
	TimedPredictionModel = ngram.TimedModel
	// TimedPrefetchSimulator prefetches only predictions expected to
	// arrive within the cache TTL.
	TimedPrefetchSimulator = prefetch.TimedSimulator
	// TimedStep is one (URL, time) request in a timed client flow.
	TimedStep = ngram.Step
)

// NewTimedPredictionModel returns a timed model of the given order.
func NewTimedPredictionModel(order int) *TimedPredictionModel { return ngram.NewTimedModel(order) }

// NewTimedPrefetchSimulator wraps a trained timed model.
func NewTimedPrefetchSimulator(tm *TimedPredictionModel, cfg PrefetchConfig) *TimedPrefetchSimulator {
	return prefetch.NewTimedSimulator(tm, cfg)
}

// PushSimulator models HTTP server push driven by the prediction model
// (§5.2): correct predictions eliminate the client's next request.
type PushSimulator = prefetch.PushSimulator

// NewPushSimulator wraps a trained model with push defaults.
func NewPushSimulator(m *PredictionModel) *PushSimulator { return prefetch.NewPushSimulator(m) }

// Experiments.
type (
	// ExperimentConfig sizes the paper-reproduction experiments.
	ExperimentConfig = experiments.Config
	// ExperimentRunner executes them.
	ExperimentRunner = experiments.Runner
)

// NewExperimentRunner returns a runner over the given configuration.
func NewExperimentRunner(cfg ExperimentConfig) *ExperimentRunner {
	return experiments.NewRunner(cfg)
}

// DefaultExperimentConfig returns the laptop-scale experiment defaults.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }
