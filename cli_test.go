package cdnjson

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline builds every command and drives the full workflow a
// user would run: generate a dataset, characterize it, analyze
// periodicity, evaluate prediction, simulate prefetching, and scan for
// anomalies. It is an end-to-end check that the binaries compose through
// their file formats.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline test builds binaries; skipped in -short")
	}
	bin := t.TempDir()
	tools := []string{"jsongen", "jsonchar", "jsonperiod", "jsonpredict", "jsonprefetch", "jsonanomaly", "jsonconvert"}
	for _, tool := range tools {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	data := filepath.Join(t.TempDir(), "pattern.cdnb.gz")
	run("jsongen", "-preset", "long", "-duration", "45m", "-target", "30000",
		"-domains", "20", "-seed", "5", "-o", data)
	if fi, err := os.Stat(data); err != nil || fi.Size() == 0 {
		t.Fatalf("dataset not written: %v", err)
	}

	char := run("jsonchar", "-i", data)
	for _, want := range []string{"Traffic source", "GET (download)", "Figure 4 heatmap", "Figure 2"} {
		if !strings.Contains(char, want) {
			t.Errorf("jsonchar output missing %q", want)
		}
	}

	period := run("jsonperiod", "-i", data, "-x", "25", "-bin", "2s")
	if !strings.Contains(period, "periodic requests:") {
		t.Errorf("jsonperiod output malformed:\n%.400s", period)
	}

	predict := run("jsonpredict", "-i", data, "-k", "1,5")
	if !strings.Contains(predict, "Clustered URLs") {
		t.Errorf("jsonpredict output malformed:\n%.400s", predict)
	}

	pf := run("jsonprefetch", "-i", data, "-k", "1")
	if !strings.Contains(pf, "baseline") || !strings.Contains(pf, "prefetch K=1") {
		t.Errorf("jsonprefetch output malformed:\n%.400s", pf)
	}

	an := run("jsonanomaly", "-train", data, "-top", "3")
	if !strings.Contains(an, "scanned") {
		t.Errorf("jsonanomaly output malformed:\n%.400s", an)
	}

	// Transcode binary -> TSV with JSON filtering and re-analyze.
	tsv := filepath.Join(t.TempDir(), "json.tsv.gz")
	run("jsonconvert", "-i", data, "-o", tsv, "-json-only")
	char2 := run("jsonchar", "-i", tsv)
	if !strings.Contains(char2, "Traffic source") {
		t.Errorf("converted file unreadable:\n%.300s", char2)
	}
}
