package cdnjson_test

import (
	"fmt"

	cdnjson "repro"
)

func ExampleClusterURL() {
	// Volatile components (IDs, coordinates, session tokens) template
	// away; static structure is preserved.
	fmt.Println(cdnjson.ClusterURL("https://news.example.com/article/1234"))
	fmt.Println(cdnjson.ClusterURL("https://api.example.com/geo/40.7128/-74.0060"))
	fmt.Println(cdnjson.ClusterURL("https://api.example.com/v1/stories?user=99&lat=40.7"))
	// Output:
	// https://news.example.com/article/{num}
	// https://api.example.com/geo/{num}/{num}
	// https://api.example.com/v1/stories?lat={v}&user={v}
}

func ExampleClassifyUserAgent() {
	for _, ua := range []string{
		"NewsApp/3.1 (iPhone; iOS 12.2)",
		"Mozilla/5.0 (PlayStation 4 6.51) AppleWebKit/605.1.15 (KHTML, like Gecko)",
		"curl/7.64.0",
	} {
		cls := cdnjson.ClassifyUserAgent(ua)
		fmt.Printf("%s browser=%v app=%s\n", cls.Device, cls.Browser, cls.App)
	}
	// Output:
	// Mobile browser=false app=NewsApp
	// Embedded browser=false app=PlayStation
	// Unknown browser=false app=curl
}

func ExampleNewPredictionModel() {
	m := cdnjson.NewPredictionModel(1)
	// Ten clients walking the same manifest -> article chain.
	for i := 0; i < 10; i++ {
		m.Train([]string{
			"https://x.com/stories",
			"https://x.com/article/1",
			"https://x.com/article/2",
		})
	}
	next := m.PredictTopK([]string{"https://x.com/stories"}, 1)
	fmt.Println(next[0])
	// Output:
	// https://x.com/article/1
}
