package cdnjson

// The benchmark harness regenerates every table and figure of the paper
// (one benchmark per exhibit) and adds ablation benches for the design
// choices called out in DESIGN.md §4. Run:
//
//	go test -bench=. -benchmem
//
// Figure/table benches report the wall cost of the full pipeline behind
// the exhibit (dataset generation is done once, outside the timer).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dsp"
	"repro/internal/edge"
	"repro/internal/experiments"
	"repro/internal/logfmt"
	"repro/internal/ngram"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/synth"
)

// benchRunner shares datasets across exhibit benches.
var (
	benchOnce sync.Once
	benchR    *experiments.Runner
)

func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Scale = 0.001
		cfg.PatternTarget = 60_000
		cfg.PatternWindow = time.Hour
		cfg.Permutations = 50
		benchR = experiments.NewRunner(cfg)
		// Materialize both datasets outside any timer.
		if _, err := benchR.ShortTermRecords(); err != nil {
			panic(err)
		}
		if _, err := benchR.PatternRecords(); err != nil {
			panic(err)
		}
	})
	return benchR
}

func BenchmarkFigure1(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure1(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table2(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure3(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure4(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 covers the full §5.1 periodicity pipeline (flow
// extraction + permutation-thresholded detection); Figure 6 reads the
// same analysis, so its bench measures the cached path.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// A fresh runner each iteration: the analysis memoizes, and the
		// bench must measure the real pipeline.
		cfg := experiments.DefaultConfig()
		cfg.Scale = 0.001
		cfg.PatternTarget = 40_000
		cfg.PatternWindow = time.Hour
		cfg.Permutations = 30
		r := experiments.NewRunner(cfg)
		if _, err := r.Figure5(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	r := benchRunner(b)
	if _, err := r.Figure5(nil); err != nil { // prime the analysis
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure6(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table3(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefetch(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Prefetch(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeprioritize(b *testing.B) {
	r := benchRunner(b)
	if _, err := r.Figure5(nil); err != nil { // prime periodicity
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Deprioritize(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablations (DESIGN.md §4) ----

// BenchmarkACFMethods compares the FFT-based autocorrelation against the
// direct O(n^2) computation.
func BenchmarkACFMethods(b *testing.B) {
	rng := stats.NewRNG(1)
	signal := make([]float64, 4096)
	for i := range signal {
		signal[i] = rng.NormFloat64()
	}
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dsp.Autocorrelation(signal)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dsp.AutocorrelationDirect(signal)
		}
	})
}

// BenchmarkPermutationSweep shows how detection cost scales with the
// paper's x parameter (the paper settles on x=100).
func BenchmarkPermutationSweep(b *testing.B) {
	rng := stats.NewRNG(2)
	signal := make([]float64, 1800)
	for i := 0; i < len(signal); i += 30 {
		signal[i] = 1
	}
	for _, x := range []int{10, 50, 100, 200} {
		b.Run(itoa(x), func(b *testing.B) {
			cfg := dsp.DefaultDetectorConfig()
			cfg.Permutations = x
			for i := 0; i < b.N; i++ {
				if _, ok, err := dsp.Detect(signal, cfg, rng); err != nil || !ok {
					b.Fatalf("detection failed: %v %v", ok, err)
				}
			}
		})
	}
}

// BenchmarkBackoffAblation compares prediction with the full backoff
// model (order 2) against a bigram-only model, on accuracy-preserving
// workloads; the metric of interest here is throughput.
func BenchmarkBackoffAblation(b *testing.B) {
	seqs := syntheticSequences(200, 40)
	for _, order := range []int{1, 2, 5} {
		m := ngram.NewModel(order)
		for _, s := range seqs {
			m.Train(s)
		}
		b.Run("order-"+itoa(order), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ngram.Evaluate(m, seqs[:20], 5)
			}
		})
	}
}

// BenchmarkPrefetchK sweeps the prefetch fan-out.
func BenchmarkPrefetchK(b *testing.B) {
	recs := benchPatternJSON(b)
	seq := ngram.NewSequencer()
	seq.Filter = logfmt.JSONOnly
	for i := range recs {
		seq.Observe(&recs[i])
	}
	model, _ := seq.TrainAndEvaluate(1, nil)
	for _, k := range []int{1, 2, 5} {
		b.Run("K-"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := prefetch.DefaultConfig()
				cfg.K = k
				sim := prefetch.NewSimulator(model, cfg)
				for j := range recs {
					sim.Observe(&recs[j])
				}
			}
		})
	}
}

// BenchmarkTTLSweep measures how the edge TTL shapes the replayed hit
// ratio — the cache knob interacting with the prefetch results.
func BenchmarkTTLSweep(b *testing.B) {
	recs := benchPatternJSON(b)
	for _, ttl := range []time.Duration{15 * time.Second, time.Minute, 5 * time.Minute} {
		b.Run(ttl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool := edge.NewPool(4, 64<<20, ttl)
				var res edge.ReplayResult
				for j := range recs {
					rr := recs[j]
					rr.URL = logfmt.CanonicalURL(rr.URL)
					pool.Replay(&rr, &res)
				}
				b.ReportMetric(res.HitRatio(), "hit-ratio")
			}
		})
	}
}

// BenchmarkRoutingAblation compares URL-affinity (consistent-hash)
// routing with per-request spraying across the pool: affinity
// concentrates each object on one cache and should hit far more — the
// property the paper's "inform load balancing systems" remark leans on.
func BenchmarkRoutingAblation(b *testing.B) {
	recs := benchPatternJSON(b)
	run := func(spray bool) float64 {
		pool := edge.NewPool(4, 64<<20, time.Minute)
		servers := pool.Servers()
		var res edge.ReplayResult
		rng := stats.NewRNG(3)
		for j := range recs {
			rr := recs[j]
			rr.URL = logfmt.CanonicalURL(rr.URL)
			if !spray {
				pool.Replay(&rr, &res)
				continue
			}
			// Spray: pick a random server, bypassing affinity.
			srv := servers[rng.Intn(len(servers))]
			res.Requests++
			if rr.Cache == logfmt.CacheUncacheable || rr.Method != "GET" {
				res.Uncacheable++
				continue
			}
			res.Cacheable++
			if srv.Cache.Lookup(rr.URL, rr.Time) {
				res.Hits++
			} else {
				srv.Cache.Insert(rr.URL, rr.Bytes, rr.Time, false)
			}
		}
		return res.HitRatio()
	}
	b.Run("affinity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(false), "hit-ratio")
		}
	})
	b.Run("spray", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(run(true), "hit-ratio")
		}
	})
}

// BenchmarkAdmissionAblation compares plain insertion with second-hit
// admission on the pattern dataset.
func BenchmarkAdmissionAblation(b *testing.B) {
	recs := benchPatternJSON(b)
	run := func(admit bool) (float64, int64) {
		pool := edge.NewPool(4, 1<<20, time.Minute) // small caches: churn matters
		if admit {
			pool.Admission = edge.SecondHitFilter()
		}
		var res edge.ReplayResult
		for j := range recs {
			rr := recs[j]
			rr.URL = logfmt.CanonicalURL(rr.URL)
			pool.Replay(&rr, &res)
		}
		return res.HitRatio(), pool.Metrics().Evictions
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hr, ev := run(false)
			b.ReportMetric(hr, "hit-ratio")
			b.ReportMetric(float64(ev), "evictions")
		}
	})
	b.Run("second-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hr, ev := run(true)
			b.ReportMetric(hr, "hit-ratio")
			b.ReportMetric(float64(ev), "evictions")
		}
	})
}

// ---- substrate micro-benchmarks ----

func BenchmarkGenerateShortTerm(b *testing.B) {
	cfg := synth.ShortTermConfig(1, 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := synth.Generate(cfg, func(*logfmt.Record) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "records/op")
	}
}

func BenchmarkNgramPredict(b *testing.B) {
	seqs := syntheticSequences(500, 40)
	m := ngram.NewModel(1)
	for _, s := range seqs {
		m.Train(s)
	}
	hist := []string{seqs[0][3]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictTopK(hist, 10)
	}
}

func benchPatternJSON(b *testing.B) []logfmt.Record {
	b.Helper()
	all, err := benchRunner(b).PatternRecords()
	if err != nil {
		b.Fatal(err)
	}
	var out []logfmt.Record
	for _, r := range all {
		if r.IsJSON() {
			out = append(out, r)
		}
	}
	return out
}

func syntheticSequences(n, vocab int) [][]string {
	rng := stats.NewRNG(9)
	urls := make([]string, vocab)
	for i := range urls {
		urls[i] = "https://x.com/obj/" + itoa(i)
	}
	seqs := make([][]string, n)
	for c := range seqs {
		cur := rng.Intn(vocab)
		seq := make([]string, 30)
		for i := range seq {
			if rng.Bool(0.5) {
				cur = (cur + 1) % vocab
			} else {
				cur = rng.Intn(vocab)
			}
			seq[i] = urls[cur]
		}
		seqs[c] = seq
	}
	return seqs
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
