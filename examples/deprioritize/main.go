// Deprioritize: evaluate the paper's §7 proposal — serve human-triggered
// requests ahead of machine-to-machine traffic at a busy edge. The
// machine set comes from the §5.1 periodicity analysis, so this example
// chains detection into policy.
//
//	go run ./examples/deprioritize
package main

import (
	"fmt"
	"log"
	"time"

	cdnjson "repro"
	"repro/internal/logfmt"
)

func main() {
	cfg := cdnjson.LongTermConfig(13, 1)
	cfg.Duration = time.Hour
	cfg.TargetRequests = 50_000
	cfg.Domains = 25
	fmt.Printf("generating ~%d records...\n", cfg.TargetRequests)
	recs, err := cdnjson.GenerateRecords(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: find the machine-to-machine objects via periodicity.
	ex := cdnjson.NewFlowExtractor()
	ex.Filter = func(r *cdnjson.Record) bool { return r.IsJSON() }
	for i := range recs {
		ex.Observe(&recs[i])
	}
	pcfg := cdnjson.DefaultPeriodicityConfig()
	pcfg.Detector.Permutations = 40
	pcfg.SampleBin = 2 * time.Second
	res := cdnjson.AnalyzePeriodicity(ex.Flows(), ex.TotalObserved(), pcfg)
	machine := map[string]bool{}
	for _, o := range res.PeriodicObjects() {
		machine[o.URL] = true
	}
	fmt.Printf("periodicity analysis labeled %d objects machine-to-machine\n\n", len(machine))

	// Step 2: build the scheduler workload. Service cost ~ fixed CPU +
	// bytes, scaled so two workers run at ~85% utilization.
	var reqs []cdnjson.SchedRequest
	var total time.Duration
	var first, last time.Time
	for i := range recs {
		r := &recs[i]
		if !r.IsJSON() {
			continue
		}
		svc := 2*time.Millisecond + time.Duration(r.Bytes)*200*time.Nanosecond
		class := cdnjson.ClassHuman
		if machine[logfmt.CanonicalURL(r.URL)] {
			class = cdnjson.ClassMachine
		}
		reqs = append(reqs, cdnjson.SchedRequest{Arrival: r.Time, Service: svc, Class: class})
		total += svc
		if first.IsZero() || r.Time.Before(first) {
			first = r.Time
		}
		if r.Time.After(last) {
			last = r.Time
		}
	}
	const workers = 2
	factor := 0.85 * last.Sub(first).Seconds() * workers / total.Seconds()
	for i := range reqs {
		reqs[i].Service = time.Duration(float64(reqs[i].Service) * factor)
	}

	// Step 3: compare FIFO against human-priority.
	fifo, prio, err := cdnjson.CompareScheduling(reqs, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-8s %-12s %-12s %-12s\n", "discipline", "class", "mean wait", "p95", "p99")
	show := func(d, c string, mean, p95, p99 float64) {
		fmt.Printf("%-10s %-8s %-12s %-12s %-12s\n", d, c,
			fmtDur(mean), fmtDur(p95), fmtDur(p99))
	}
	show("fifo", "human", fifo.Human.Wait.Mean(), fifo.Human.P95, fifo.Human.P99)
	show("fifo", "machine", fifo.Machine.Wait.Mean(), fifo.Machine.P95, fifo.Machine.P99)
	show("priority", "human", prio.Human.Wait.Mean(), prio.Human.P95, prio.Human.P99)
	show("priority", "machine", prio.Machine.Wait.Mean(), prio.Machine.P95, prio.Machine.P99)
	if fifo.Human.P95 > 0 {
		fmt.Printf("\nhuman p95 wait reduced %.0f%% by deprioritizing machine traffic\n",
			(1-prio.Human.P95/fifo.Human.P95)*100)
	}
	fmt.Println("(no human is staring at a screen waiting for the machine traffic — §5.1)")
}

func fmtDur(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Millisecond).String()
}
