// Prediction: train the §5.2 backoff ngram model on synthetic traffic,
// evaluate Table 3-style top-K accuracy, predict a client's next
// requests live, and flag an anomalous request.
//
//	go run ./examples/prediction
package main

import (
	"fmt"
	"log"
	"time"

	cdnjson "repro"
)

func main() {
	cfg := cdnjson.LongTermConfig(9, 1)
	cfg.Duration = time.Hour
	cfg.TargetRequests = 60_000
	cfg.Domains = 25
	fmt.Printf("generating ~%d records...\n", cfg.TargetRequests)

	seq := cdnjson.NewSequencer()
	seq.Filter = func(r *cdnjson.Record) bool { return r.IsJSON() }
	var sample []string // one client's request trail for the live demo
	var sampleClient uint64
	err := cdnjson.Generate(cfg, func(r *cdnjson.Record) error {
		seq.Observe(r)
		if sampleClient == 0 && r.Method == "GET" && r.IsJSON() {
			sampleClient = r.ClientID
		}
		if r.ClientID == sampleClient && r.IsJSON() && len(sample) < 6 {
			sample = append(sample, r.URL)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training on %d clients (25%% held out)...\n\n", seq.NumClients())
	model, evals := seq.TrainAndEvaluate(1, []int{1, 5, 10})
	fmt.Println("top-K accuracy on held-out clients (paper Table 3, actual URLs: .45/.64/.69):")
	for _, k := range []int{1, 5, 10} {
		fmt.Printf("  K=%-3d %.2f  (%d predictions)\n", k, evals[k].Accuracy(), evals[k].Predictions)
	}

	fmt.Println("\nlive prediction for one client:")
	for i := 1; i < len(sample); i++ {
		preds := model.PredictTopK(sample[i-1:i], 3)
		hit := " "
		for _, p := range preds {
			if p == sample[i] {
				hit = "*"
			}
		}
		fmt.Printf("  after %-55s -> predict %v %s\n", trim(sample[i-1], 55), trimAll(preds, 40), hit)
	}

	fmt.Println("\nanomaly scoring (low-score requests are suspicious):")
	det := cdnjson.NewRequestAnomalyDetector(model)
	trail := append([]string{}, sample...)
	trail = append(trail, "https://evil.example.com/exfiltrate")
	now := time.Date(2019, 5, 1, 12, 0, 0, 0, time.UTC)
	for i, u := range trail {
		r := cdnjson.Record{
			Time: now.Add(time.Duration(i) * time.Second), ClientID: 777,
			Method: "GET", URL: u, UserAgent: "NewsApp/3.1 (iPhone)",
			MIMEType: "application/json", Status: 200, Bytes: 100,
			Cache: cdnjson.CacheHit,
		}
		v := det.Observe(&r)
		status := ""
		if v.Anomalous {
			status = "  <-- ANOMALY"
		}
		fmt.Printf("  %-60s score=%.4f%s\n", trim(u, 60), v.Score, status)
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func trimAll(ss []string, n int) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = trim(s, n)
	}
	return out
}
