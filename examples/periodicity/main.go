// Periodicity: find machine-to-machine JSON flows (§5.1). Generates a
// pattern dataset with embedded pollers, runs the permutation-thresholded
// period detector, lists the detected machine-to-machine objects, and
// then demonstrates period-deviation anomaly detection on one of them.
//
//	go run ./examples/periodicity
package main

import (
	"fmt"
	"log"
	"time"

	cdnjson "repro"
	"repro/internal/flows"
)

func main() {
	cfg := cdnjson.LongTermConfig(7, 1)
	cfg.Duration = time.Hour
	cfg.TargetRequests = 50_000
	cfg.Domains = 25
	fmt.Printf("generating %s of traffic (~%d records)...\n", cfg.Duration, cfg.TargetRequests)

	ex := cdnjson.NewFlowExtractor()
	ex.Filter = func(r *cdnjson.Record) bool { return r.IsJSON() }
	err := cdnjson.Generate(cfg, func(r *cdnjson.Record) error {
		ex.Observe(r)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	pcfg := cdnjson.DefaultPeriodicityConfig()
	pcfg.Detector.Permutations = 50
	pcfg.SampleBin = 2 * time.Second
	fl := ex.Flows()
	fmt.Printf("analyzing %d object flows (>=10 clients each)...\n\n", len(fl))
	res := cdnjson.AnalyzePeriodicity(fl, ex.TotalObserved(), pcfg)

	fmt.Printf("periodic share of JSON requests: %.1f%% (paper: 6.3%%)\n", res.PeriodicShare()*100)
	fmt.Printf("periodic traffic: %.1f%% upload, %.1f%% uncacheable\n\n",
		res.PeriodicUploadShare()*100, res.PeriodicUncacheableShare()*100)

	objs := res.PeriodicObjects()
	fmt.Printf("machine-to-machine objects (%d):\n", len(objs))
	for _, o := range objs {
		fmt.Printf("  %-58s period=%-6s clients=%d/%d periodic\n",
			trim(o.URL, 58), o.ObjectPeriod, o.PeriodicClients, o.TotalClients)
	}
	if len(objs) == 0 {
		return
	}

	// Anomaly detection: watch one periodic object; a burst (requests
	// far off the established period) alarms.
	target := objs[0]
	fmt.Printf("\nwatching %s (period %s) for off-period requests:\n", target.URL, target.ObjectPeriod)
	det := cdnjson.PeriodAnomalyDetector{Expected: target.ObjectPeriod, Tolerance: 0.25}
	client := flows.ClientKey{ClientID: 12345}
	now := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	arrivals := []time.Duration{
		0,
		target.ObjectPeriod,
		2 * target.ObjectPeriod,
		2*target.ObjectPeriod + 3*time.Second, // burst!
		3 * target.ObjectPeriod,
	}
	for i, offset := range arrivals {
		v := det.Observe(client, now.Add(offset))
		status := "ok"
		if v.Anomalous {
			status = "ANOMALY (off-period burst)"
		}
		fmt.Printf("  arrival %d at +%-8s deviation=%.2f  %s\n", i, offset, v.Deviation, status)
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
