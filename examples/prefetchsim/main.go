// Prefetchsim: quantify the paper's §5.2 implication — prefetching the
// ngram-predicted next JSON objects improves the edge cache hit ratio.
// Replays the same synthetic stream through identical simulated edges
// with and without prefetching and sweeps the prefetch fan-out K.
//
//	go run ./examples/prefetchsim
package main

import (
	"fmt"
	"log"
	"time"

	cdnjson "repro"
)

func main() {
	cfg := cdnjson.LongTermConfig(11, 1)
	cfg.Duration = time.Hour
	cfg.TargetRequests = 60_000
	cfg.Domains = 25
	fmt.Printf("generating ~%d records...\n", cfg.TargetRequests)
	recs, err := cdnjson.GenerateRecords(cfg)
	if err != nil {
		log.Fatal(err)
	}

	seq := cdnjson.NewSequencer()
	seq.Filter = func(r *cdnjson.Record) bool { return r.IsJSON() }
	for i := range recs {
		seq.Observe(&recs[i])
	}
	model, _ := seq.TrainAndEvaluate(1, nil)
	fmt.Printf("trained ngram model over %d clients\n\n", seq.NumClients())

	replayJSON := func(fn func(*cdnjson.Record)) {
		for i := range recs {
			if recs[i].IsJSON() {
				fn(&recs[i])
			}
		}
	}

	fmt.Printf("%-16s %-10s %-8s %s\n", "configuration", "hit ratio", "waste", "prefetch bytes")
	for i, k := range []int{1, 2, 5} {
		pcfg := cdnjson.PrefetchConfig{K: k}
		cmp := cdnjson.ComparePrefetch(model, pcfg, replayJSON)
		if i == 0 {
			fmt.Printf("%-16s %-10.3f %-8s %s\n", "baseline", cmp.Baseline.HitRatio(), "-", "-")
		}
		fmt.Printf("%-16s %-10.3f %-8.2f %d\n",
			fmt.Sprintf("prefetch K=%d", k),
			cmp.Prefetch.HitRatio(), cmp.Prefetch.WasteRatio(), cmp.Prefetch.PrefetchedBytes)
	}
	fmt.Println("\nhigher K converts more misses but wastes more origin traffic —")
	fmt.Println("the trade-off a CDN operator would tune (paper §5.2).")
}
