// Quickstart: generate a small synthetic CDN log dataset and run the
// paper's §4 characterization over it using only the public cdnjson API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cdnjson "repro"
)

func main() {
	// A scaled-down version of the paper's short-term dataset
	// (Table 2): 10 minutes of CDN-wide traffic.
	cfg := cdnjson.ShortTermConfig(42, 0.001)
	fmt.Printf("generating ~%d records over %s across %d domains...\n",
		cfg.TargetRequests, cfg.Duration, cfg.Domains)

	char := cdnjson.NewCharacterization()
	var total int
	err := cdnjson.Generate(cfg, func(r *cdnjson.Record) error {
		total++
		char.ObserveAny(r)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generated %d records, %d of them application/json\n\n", total, char.Total)
	fmt.Println("device shares of JSON traffic (paper Fig. 3: mobile>=55%, embedded 12%, unknown 24%):")
	for _, d := range []cdnjson.DeviceType{
		cdnjson.DeviceMobile, cdnjson.DeviceUnknown, cdnjson.DeviceEmbedded, cdnjson.DeviceDesktop,
	} {
		fmt.Printf("  %-9s %5.1f%%\n", d, char.DeviceShare(d)*100)
	}
	fmt.Printf("\nnon-browser traffic: %.1f%% (paper: 88%%)\n", char.NonBrowserShare()*100)
	fmt.Printf("GET share: %.1f%% (paper: 84%%)\n", char.GETShare()*100)
	fmt.Printf("uncacheable JSON: %.1f%% (paper: ~55%%)\n", char.UncacheableShare()*100)

	j50, j75, h50, h75 := char.SizeQuantiles()
	fmt.Printf("JSON sizes p50/p75: %.0f/%.0f B vs HTML %.0f/%.0f B\n", j50, j75, h50, h75)
}
