package cdnjson

import (
	"bytes"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd drives the whole library through the public
// facade: generate → encode/decode → characterize → extract flows →
// detect periodicity → train/predict → prefetch-compare.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := LongTermConfig(5, 1)
	cfg.Duration = 30 * time.Minute
	cfg.TargetRequests = 20_000
	cfg.Domains = 15

	recs, err := GenerateRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 10_000 {
		t.Fatalf("generated only %d records", len(recs))
	}

	// Codec round trip.
	var buf bytes.Buffer
	w := NewLogWriter(&buf, FormatTSV)
	for i := range recs[:100] {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewLogReader(&buf, FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := rd.ForEach(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("round trip read %d records", n)
	}

	// Characterization.
	char := NewCharacterization()
	for i := range recs {
		char.ObserveAny(&recs[i])
	}
	if char.Total == 0 || char.DeviceShare(DeviceMobile) <= 0 {
		t.Fatal("characterization empty")
	}

	// UA classification surface.
	if cls := ClassifyUserAgent("NewsApp/3.1 (iPhone; iOS 12.2)"); cls.Device != DeviceMobile {
		t.Errorf("UA classify = %+v", cls)
	}

	// URL clustering surface.
	if got := ClusterURL("https://x.com/a/123"); got != "https://x.com/a/{num}" {
		t.Errorf("ClusterURL = %q", got)
	}

	// Flows and periodicity.
	ex := NewFlowExtractor()
	ex.Filter = func(r *Record) bool { return r.IsJSON() }
	for i := range recs {
		ex.Observe(&recs[i])
	}
	pcfg := DefaultPeriodicityConfig()
	pcfg.Detector.Permutations = 20
	pcfg.SampleBin = 2 * time.Second
	res := AnalyzePeriodicity(ex.Flows(), ex.TotalObserved(), pcfg)
	if res.PeriodicShare() <= 0 {
		t.Error("no periodic traffic found in pattern dataset")
	}

	// Prediction.
	seq := NewSequencer()
	seq.Filter = func(r *Record) bool { return r.IsJSON() }
	for i := range recs {
		seq.Observe(&recs[i])
	}
	model, evals := seq.TrainAndEvaluate(1, []int{1, 10})
	if evals[10].Accuracy() <= evals[1].Accuracy() {
		t.Errorf("K=10 accuracy %v not above K=1 %v", evals[10].Accuracy(), evals[1].Accuracy())
	}

	// Anomaly detection.
	det := NewRequestAnomalyDetector(model)
	r0 := recs[0]
	det.Observe(&r0) // must not panic

	// Prefetch comparison.
	cmp := ComparePrefetch(model, PrefetchConfig{K: 1}, func(fn func(*Record)) {
		for i := range recs {
			if recs[i].IsJSON() {
				fn(&recs[i])
			}
		}
	})
	if cmp.Prefetch.HitRatio() < cmp.Baseline.HitRatio() {
		t.Errorf("prefetch %v below baseline %v", cmp.Prefetch.HitRatio(), cmp.Baseline.HitRatio())
	}

	// Edge pool surface.
	pool := NewEdgePool(2, 1<<20, time.Minute)
	if len(pool.Servers()) != 2 {
		t.Error("pool servers wrong")
	}
}

func TestSchedulingSurface(t *testing.T) {
	reqs := []SchedRequest{
		{Arrival: time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC), Service: time.Second, Class: ClassMachine},
		{Arrival: time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC), Service: time.Second, Class: ClassHuman},
	}
	res, err := SimulateScheduling(reqs, SchedConfig{Workers: 1, Discipline: PriorityHuman})
	if err != nil {
		t.Fatal(err)
	}
	if res.Human.Requests != 1 || res.Machine.Requests != 1 {
		t.Errorf("result = %+v", res)
	}
	fifo, prio, err := CompareScheduling(reqs, 1)
	if err != nil || fifo.Human.Requests != prio.Human.Requests {
		t.Errorf("compare: %v", err)
	}
}

func TestTimedAndPushSurface(t *testing.T) {
	tm := NewTimedPredictionModel(1)
	now := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	tm.TrainTimed([]TimedStep{
		{URL: "https://x.com/a", Time: now},
		{URL: "https://x.com/b", Time: now.Add(5 * time.Second)},
	})
	if gap, ok := tm.ExpectedGap("https://x.com/a", "https://x.com/b"); !ok || gap <= 0 {
		t.Errorf("gap = %v ok=%v", gap, ok)
	}
	ts := NewTimedPrefetchSimulator(tm, PrefetchConfig{K: 1})
	r := Record{
		Time: now, ClientID: 1, Method: "GET", URL: "https://x.com/a",
		MIMEType: "application/json", Status: 200, Bytes: 10, Cache: CacheMiss,
	}
	ts.Observe(&r)

	ps := NewPushSimulator(tm.Model)
	ps.Observe(&r)
	if ps.Result().Requests != 1 {
		t.Error("push simulator did not count the request")
	}
}

func TestExperimentRunnerSurface(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Scale = 0.0005
	r := NewExperimentRunner(cfg)
	if _, err := r.Figure1(nil); err != nil {
		t.Fatal(err)
	}
}
