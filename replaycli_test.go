package cdnjson

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestReplayCLISLOGate builds jsongen and jsonreplay and drives the SLO
// gate both ways: a healthy in-process edge passes a loose SLO (exit
// 0), and an edge that stalls every request violates "p99<50ms" (exit
// 3) — with the report showing the violation came from the intended-
// start distribution.
func TestReplayCLISLOGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	bin := t.TempDir()
	for _, tool := range []string{"jsongen", "jsonreplay"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	data := filepath.Join(t.TempDir(), "stream.tsv.gz")
	out, err := exec.Command(filepath.Join(bin, "jsongen"), "-preset", "short",
		"-scale", "0.001", "-shards", "2", "-seed", "11", "-o", data).CombinedOutput()
	if err != nil {
		t.Fatalf("jsongen: %v\n%s", err, out)
	}

	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer healthy.Close()

	// A stalled edge: every request takes ~120ms, so at 200 req/s the
	// intended-start tail explodes far past 50ms.
	var stalledHits atomic.Int64
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stalledHits.Add(1)
		time.Sleep(120 * time.Millisecond)
		w.Write([]byte(`{}`))
	}))
	defer stalled.Close()

	replay := func(target, slo, report string) (string, int) {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, "jsonreplay"), "-i", data,
			"-target", target, "-rate", "200", "-duration", "1500ms",
			"-warmup", "200ms", "-c", "4", "-progress", "0",
			"-slo", slo, "-out", report)
		out, err := cmd.CombinedOutput()
		code := 0
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			code = exitErr.ExitCode()
		} else if err != nil {
			t.Fatalf("jsonreplay: %v\n%s", err, out)
		}
		return string(out), code
	}

	okReport := filepath.Join(t.TempDir(), "replay-ok.json")
	if out, code := replay(healthy.URL, "p99<5s,err<1%", okReport); code != 0 {
		t.Fatalf("healthy run exited %d:\n%s", code, out)
	}
	if fi, err := os.Stat(okReport); err != nil || fi.Size() == 0 {
		t.Fatalf("replay report not written: %v", err)
	}

	badReport := filepath.Join(t.TempDir(), "replay-bad.json")
	out2, code := replay(stalled.URL, "p99<50ms", badReport)
	if code != 3 {
		t.Fatalf("stalled run exited %d, want 3 (SLO violation):\n%s", code, out2)
	}
	if !strings.Contains(out2, "SLO p99<50ms violated") {
		t.Errorf("violation message missing:\n%s", out2)
	}
	if stalledHits.Load() == 0 {
		t.Error("stalled edge never hit")
	}

	// Usage and parse errors exit 2, distinct from the SLO gate.
	cmd := exec.Command(filepath.Join(bin, "jsonreplay"), "-i", data,
		"-target", healthy.URL, "-slo", "p99<<1ms")
	if err := cmd.Run(); err == nil {
		t.Error("bad SLO expression accepted")
	} else if ee := new(exec.ExitError); !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Errorf("bad SLO expression: %v, want exit 2", err)
	}
}
