// Jsonfleet: supervise a fault-tolerant multi-node edge fleet. It
// spawns N liveedge processes (-node-bin), fronts them with the
// internal/fleet router — consistent-hash placement, active health
// checking, bounded failover, optional tail-latency hedging — and
// publishes the front URL through the same URL-file handshake a single
// liveedge uses, so `jsonreplay -target-file` drives a fleet exactly
// as it drives one edge.
//
//	go build -o /tmp/liveedge ./cmd/liveedge
//	go run ./cmd/jsonfleet -nodes 3 -node-bin /tmp/liveedge \
//	    -url-file /tmp/fleet.url
//
// With -chaos (a timeline file, see internal/fleet/chaos) or
// -chaos-events (a seeded generated schedule), a controller disrupts
// the fleet mid-run: kill SIGKILLs a child and restart respawns it on
// the same port; pause/partition/dead go through each node's chaos
// control endpoint. Every timeline event snapshots the front's
// counters, and on SIGTERM the supervisor writes a chaos report
// (-report) with per-window hit ratios. -recover-within R turns the
// report into a gate: the settled post-repair hit ratio must be within
// R of the pre-fault ratio, or the process exits 4 — how
// `make chaos-check` asserts the fleet actually heals.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/edge"
	"repro/internal/fleet"
	"repro/internal/fleet/chaos"
	"repro/internal/livechar"
	"repro/internal/obs"
)

var logger *obs.Logger

func main() {
	var (
		nodes      = flag.Int("nodes", 3, "number of liveedge node processes")
		nodeBin    = flag.String("node-bin", "", "path to a liveedge binary (required; build with: go build -o ... ./cmd/liveedge)")
		listen     = flag.String("listen", "127.0.0.1:0", "front-tier listen address")
		adminAddr  = flag.String("admin", "127.0.0.1:0", "admin (metrics/readyz/fleetz) listen address")
		urlFile    = flag.String("url-file", "", "publish the front and admin URLs to this file once ready")
		workDir    = flag.String("work", "", "scratch directory for child URL files (default: a temp dir)")
		failover   = flag.Int("failover", 2, "max failover retries to the next ring replica (0 disables failover)")
		hedge      = flag.Bool("hedge", false, "enable tail-latency hedging (second request after the p99-derived delay)")
		probe      = flag.Duration("probe", 200*time.Millisecond, "health probe period")
		downAfter  = flag.Int("down-after", 3, "consecutive probe failures before a node leaves the ring")
		upAfter    = flag.Int("up-after", 2, "consecutive probe successes before a down node rejoins")
		faultRate  = flag.Float64("fault-rate", 0, "per-node origin fault rate passed through to liveedge")
		chaosFile  = flag.String("chaos", "", "chaos timeline file to execute against the fleet")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for a generated timeline (-chaos-events)")
		chaosN     = flag.Int("chaos-events", 0, "generate this many seeded disruptions instead of reading -chaos")
		chaosDur   = flag.Duration("chaos-dur", 10*time.Second, "span of a generated timeline")
		reportPath = flag.String("report", "", "write the chaos report JSON here on shutdown")
		recoverTol = flag.Float64("recover-within", 0, "gate: settled hit ratio must be within this of the pre-fault ratio (0 disables; violation exits 4)")
		charOn     = flag.Bool("livechar", false, "enable each node's live characterization plane and serve the fleet-merged view on this admin's /charz")
		charWindow = flag.Duration("char-window", time.Minute, "livechar tumbling window passed through to the nodes")
	)
	flag.Parse()
	logger = obs.NewLogger(os.Stderr, obs.NewRunID(), uint64(*chaosSeed), nil).Component("jsonfleet")

	if *nodeBin == "" {
		logger.Error("-node-bin is required")
		os.Exit(2)
	}
	if *nodes < 1 {
		logger.Error("-nodes must be >= 1", "nodes", *nodes)
		os.Exit(2)
	}
	dir := *workDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "jsonfleet-*")
		if err != nil {
			logger.Error("temp dir", "err", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	}

	sup := &supervisor{bin: *nodeBin, dir: dir, faultRate: *faultRate,
		livechar: *charOn, charWindow: *charWindow}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Spawn the fleet and wait for every node's handshake.
	var members []*fleet.Member
	for i := 0; i < *nodes; i++ {
		name := fmt.Sprintf("edge-%02d", i)
		c, err := sup.spawn(ctx, name, "127.0.0.1:0")
		if err != nil {
			logger.Error("spawning node", "node", name, "err", err)
			sup.killAll()
			os.Exit(1)
		}
		members = append(members, &fleet.Member{
			Name: name, URL: c.edgeURL, HealthURL: c.edgeURL + "/healthz",
		})
		logger.Info("node up", "node", name, "url", c.edgeURL, "chaos", c.chaosURL)
	}

	f := fleet.New(fleet.Config{
		Probe:       *probe,
		DownAfter:   *downAfter,
		UpAfter:     *upAfter,
		MaxFailover: *failover,
		Hedge:       *hedge,
		Logger:      logger,
	}, members...)
	sup.fleet = f
	reg := obs.NewRegistry()
	inst := f.Instrument(reg)
	stopHealth := f.StartHealth()
	defer stopHealth()

	// Front listener + admin mux (metrics, readyz, and /fleetz with the
	// live membership snapshot).
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("front listen failed", "addr", *listen, "err", err)
		sup.killAll()
		os.Exit(1)
	}
	frontURL := "http://" + ln.Addr().String()
	frontSrv := &http.Server{Handler: f}
	go frontSrv.Serve(ln)

	health := &obs.Health{}
	adminMux := obs.AdminMux(reg, health)
	adminMux.HandleFunc("/fleetz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"live": f.Live(), "draining": f.Draining(), "members": f.Members(),
		})
	})
	if *charOn {
		// Fleet-merged characterization: scatter to every live node's
		// /charz, gather the per-node snapshots, and merge the sketches
		// (HDR bucket sums, heavy-hitter union with absent-node error
		// bounds, time-aligned bin sums with periodicity re-detected on
		// the fleet-wide signal).
		adminMux.HandleFunc("/charz", func(w http.ResponseWriter, r *http.Request) {
			snaps, errs := sup.gatherCharz(r.Context())
			merged, err := livechar.MergeSnapshots("fleet", 1, snaps...)
			if err != nil {
				http.Error(w, fmt.Sprintf("merging node snapshots: %v (node errors: %v)", err, errs),
					http.StatusBadGateway)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(merged)
		})
	}
	aln, err := net.Listen("tcp", *adminAddr)
	if err != nil {
		logger.Error("admin listen failed", "addr", *adminAddr, "err", err)
		sup.killAll()
		os.Exit(1)
	}
	adminURL := "http://" + aln.Addr().String()
	adminSrv := &http.Server{Handler: adminMux}
	go adminSrv.Serve(aln)

	health.SetReady(true)
	if *urlFile != "" {
		if err := edge.WriteURLFile(*urlFile, frontURL, adminURL); err != nil {
			logger.Error("publishing URL file", "path", *urlFile, "err", err)
			sup.killAll()
			os.Exit(1)
		}
	}
	logger.Info("fleet serving", "front", frontURL, "admin", adminURL,
		"nodes", *nodes, "failover", *failover, "hedge", *hedge)

	// Chaos: load or generate the timeline and run it concurrently with
	// the traffic the harness replays through the front.
	rec := &recorder{inst: inst, fleet: f, start: time.Now()}
	var timeline []chaos.Event
	switch {
	case *chaosFile != "":
		fh, err := os.Open(*chaosFile)
		if err != nil {
			logger.Error("opening timeline", "path", *chaosFile, "err", err)
			sup.killAll()
			os.Exit(1)
		}
		timeline, err = chaos.ParseTimeline(fh)
		fh.Close()
		if err != nil {
			logger.Error("parsing timeline", "path", *chaosFile, "err", err)
			sup.killAll()
			os.Exit(1)
		}
	case *chaosN > 0:
		names := make([]string, *nodes)
		for i := range names {
			names[i] = fmt.Sprintf("edge-%02d", i)
		}
		timeline = chaos.GenerateTimeline(*chaosSeed, names, *chaosDur, *chaosN)
		for _, ev := range timeline {
			logger.Info("generated chaos event", "event", ev.String())
		}
	}
	chaosErr := make(chan error, 1)
	if len(timeline) > 0 {
		ctl := &chaos.Controller{
			Target:  sup,
			OnEvent: rec.observe,
			Log:     func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
		}
		go func() { chaosErr <- ctl.Run(ctx, timeline) }()
	} else {
		chaosErr <- nil
	}

	<-ctx.Done()
	stop()

	// Shutdown: drain the front (stops the prober), settle, tear down.
	f.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	frontSrv.Shutdown(shutCtx)
	adminSrv.Close()
	sup.killAll()
	if err := <-chaosErr; err != nil && ctx.Err() == nil {
		logger.Error("chaos timeline failed", "err", err)
		os.Exit(1)
	}

	rep := rec.report(*nodes, *failover, *hedge, timeline, *recoverTol)
	if *reportPath != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*reportPath, append(data, '\n'), 0o644); err != nil {
			logger.Error("writing report", "path", *reportPath, "err", err)
			os.Exit(1)
		}
	}
	logger.Info("fleet stopped",
		"hits", inst.Hits.Value(), "misses", inst.Misses.Value(),
		"failovers", inst.Failovers.Value(), "exhausted", inst.Exhausted.Value(),
		"hedges", inst.Hedges.Value(), "hedges_won", inst.HedgesWon.Value())
	if rep.Recovery != nil {
		logger.Info("recovery gate",
			"pre_ratio", fmt.Sprintf("%.3f", rep.Recovery.PreRatio),
			"settled_ratio", fmt.Sprintf("%.3f", rep.Recovery.SettledRatio),
			"tolerance", fmt.Sprintf("%.3f", rep.Recovery.Tolerance),
			"pass", rep.Recovery.Pass)
		if !rep.Recovery.Pass {
			os.Exit(4)
		}
	}
}

// child is one supervised liveedge process.
type child struct {
	name     string
	urlFile  string
	edgeAddr string // host:port, pinned after first start so restarts keep identity
	cmd      *exec.Cmd
	edgeURL  string
	adminURL string
	chaosURL string
}

// supervisor owns the node processes and implements chaos.Target:
// kill/restart at the process level, pause/partition/dead through each
// node's chaos control endpoint.
type supervisor struct {
	bin        string
	dir        string
	faultRate  float64
	livechar   bool
	charWindow time.Duration
	fleet      *fleet.Fleet

	mu       sync.Mutex
	children map[string]*child
}

// spawn starts (or restarts) the named node listening on addr and
// waits for its URL-file handshake.
func (s *supervisor) spawn(ctx context.Context, name, addr string) (*child, error) {
	uf := filepath.Join(s.dir, name+".url")
	os.Remove(uf)
	args := []string{
		"-serve",
		"-listen", addr,
		"-admin", "127.0.0.1:0",
		"-chaos-listen", "127.0.0.1:0",
		"-url-file", uf,
		"-fault-rate", fmt.Sprintf("%g", s.faultRate),
	}
	if s.livechar {
		args = append(args,
			"-livechar",
			"-char-window", s.charWindow.String(),
			// Periodic per-node snapshot files land in the supervisor's
			// scratch dir, not the repo: the fleet-level artifact is the
			// merged /charz view.
			"-char-snapshot", "0",
			"-out-dir", s.dir,
			"-node", name,
		)
	}
	cmd := exec.Command(s.bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	urls, err := edge.AwaitURLFile(ctx, uf, 15*time.Second)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	}
	if len(urls) < 3 {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("node %s published %d URLs, want edge+admin+chaos", name, len(urls))
	}
	c := &child{name: name, urlFile: uf, cmd: cmd,
		edgeURL: urls[0], adminURL: urls[1], chaosURL: urls[2]}
	c.edgeAddr = c.edgeURL[len("http://"):]
	s.mu.Lock()
	if s.children == nil {
		s.children = make(map[string]*child)
	}
	s.children[name] = c
	s.mu.Unlock()
	return c, nil
}

func (s *supervisor) get(name string) (*child, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.children[name]
	if c == nil {
		return nil, fmt.Errorf("unknown node %q", name)
	}
	return c, nil
}

// Kill SIGKILLs the node's process — no drain, no goodbye, exactly the
// failure the health checker and failover path exist for.
func (s *supervisor) Kill(name string) error {
	c, err := s.get(name)
	if err != nil {
		return err
	}
	if c.cmd == nil || c.cmd.Process == nil {
		return fmt.Errorf("node %q not running", name)
	}
	if err := c.cmd.Process.Kill(); err != nil {
		return err
	}
	c.cmd.Wait()
	c.cmd = nil
	return nil
}

// Restart respawns a killed node on its original port so its member
// URL — and its slice of the ring — stays valid.
func (s *supervisor) Restart(name string) error {
	c, err := s.get(name)
	if err != nil {
		return err
	}
	if c.cmd != nil {
		return fmt.Errorf("node %q still running", name)
	}
	nc, err := s.spawn(context.Background(), name, c.edgeAddr)
	if err != nil {
		return err
	}
	if s.fleet != nil {
		return s.fleet.UpdateMemberURL(name, nc.edgeURL, nc.edgeURL+"/healthz")
	}
	return nil
}

// Inject posts a fault mode to the node's chaos control endpoint.
func (s *supervisor) Inject(name string, mode chaos.Mode, delay time.Duration) error {
	c, err := s.get(name)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return chaos.InjectHTTP(ctx, http.DefaultClient, c.chaosURL, mode, delay)
}

// gatherCharz scatters to every running node's /charz and returns the
// per-node snapshots plus the errors from nodes that failed to answer
// (killed or partitioned nodes are expected casualties — the merged
// view covers whoever is alive).
func (s *supervisor) gatherCharz(ctx context.Context) ([]livechar.Snapshot, []error) {
	s.mu.Lock()
	urls := make(map[string]string, len(s.children))
	for name, c := range s.children {
		if c.cmd != nil {
			urls[name] = c.adminURL + "/charz"
		}
	}
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	var (
		wg    sync.WaitGroup
		out   []livechar.Snapshot
		errs  []error
		outMu sync.Mutex
	)
	for name, url := range urls {
		wg.Add(1)
		go func(name, url string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
			if err != nil {
				outMu.Lock()
				errs = append(errs, fmt.Errorf("%s: %w", name, err))
				outMu.Unlock()
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				outMu.Lock()
				errs = append(errs, fmt.Errorf("%s: %w", name, err))
				outMu.Unlock()
				return
			}
			defer resp.Body.Close()
			var snap livechar.Snapshot
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				outMu.Lock()
				errs = append(errs, fmt.Errorf("%s: decoding /charz: %w", name, err))
				outMu.Unlock()
				return
			}
			outMu.Lock()
			out = append(out, snap)
			outMu.Unlock()
		}(name, url)
	}
	wg.Wait()
	return out, errs
}

// killAll tears the fleet down (shutdown path).
func (s *supervisor) killAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.children {
		if c.cmd != nil && c.cmd.Process != nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
			c.cmd = nil
		}
	}
}

// snapshot is the front's counter state at one timeline instant.
type snapshot struct {
	AtMs      int64  `json:"at_ms"`
	Verb      string `json:"verb"`
	Node      string `json:"node"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Failovers int64  `json:"failovers"`
	Exhausted int64  `json:"exhausted"`
	Live      int    `json:"live"`
}

// recorder snapshots fleet counters at each chaos event; the report
// derives per-window hit ratios from the deltas.
type recorder struct {
	inst  *fleet.Instrumentation
	fleet *fleet.Fleet
	start time.Time

	mu    sync.Mutex
	snaps []snapshot
}

func (r *recorder) observe(ev chaos.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snaps = append(r.snaps, snapshot{
		AtMs:      time.Since(r.start).Milliseconds(),
		Verb:      ev.Verb,
		Node:      ev.Node,
		Hits:      r.inst.Hits.Value(),
		Misses:    r.inst.Misses.Value(),
		Failovers: r.inst.Failovers.Value(),
		Exhausted: r.inst.Exhausted.Value(),
		Live:      r.fleet.Live(),
	})
}

// window is a hit-ratio measurement between two snapshots.
type window struct {
	Hits   int64   `json:"hits"`
	Misses int64   `json:"misses"`
	Ratio  float64 `json:"ratio"`
}

func windowBetween(from, to snapshot) window {
	w := window{Hits: to.Hits - from.Hits, Misses: to.Misses - from.Misses}
	if n := w.Hits + w.Misses; n > 0 {
		w.Ratio = float64(w.Hits) / float64(n)
	}
	return w
}

// recovery is the gate verdict: did the settled hit ratio come back to
// within Tolerance of the pre-fault ratio?
type recovery struct {
	PreRatio     float64 `json:"pre_ratio"`
	SettledRatio float64 `json:"settled_ratio"`
	Tolerance    float64 `json:"tolerance"`
	Pass         bool    `json:"pass"`
}

// chaosReport is the machine-readable run summary `make chaos-check`
// asserts on.
type chaosReport struct {
	Schema    string        `json:"schema"`
	Nodes     int           `json:"nodes"`
	Failover  int           `json:"failover"`
	Hedge     bool          `json:"hedge"`
	Timeline  []chaos.Event `json:"timeline,omitempty"`
	Snapshots []snapshot    `json:"snapshots,omitempty"`
	PreFault  *window       `json:"pre_fault,omitempty"`
	Settled   *window       `json:"settled,omitempty"`
	Totals    snapshot      `json:"totals"`
	Recovery  *recovery     `json:"recovery,omitempty"`
}

func isDisruptive(verb string) bool {
	switch verb {
	case "kill", "pause", "partition", "dead":
		return true
	}
	return false
}

func isRepair(verb string) bool {
	switch verb {
	case "restart", "heal", "mark":
		return true
	}
	return false
}

// report closes the books: a final snapshot, the pre-fault and settled
// windows, and the recovery verdict when a tolerance is set.
func (r *recorder) report(nodes, failover int, hedge bool, timeline []chaos.Event, tol float64) *chaosReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	final := snapshot{
		AtMs:      time.Since(r.start).Milliseconds(),
		Verb:      "end",
		Hits:      r.inst.Hits.Value(),
		Misses:    r.inst.Misses.Value(),
		Failovers: r.inst.Failovers.Value(),
		Exhausted: r.inst.Exhausted.Value(),
		Live:      r.fleet.Live(),
	}
	rep := &chaosReport{
		Schema: "repro/fleet-chaos-report/v1",
		Nodes:  nodes, Failover: failover, Hedge: hedge,
		Timeline: timeline, Snapshots: r.snaps, Totals: final,
	}
	// Pre-fault window: run start to the first disruption. Settled
	// window: the last repair event to the end of the run.
	var first, lastRepair *snapshot
	for i := range r.snaps {
		if first == nil && isDisruptive(r.snaps[i].Verb) {
			first = &r.snaps[i]
		}
		if isRepair(r.snaps[i].Verb) {
			lastRepair = &r.snaps[i]
		}
	}
	if first != nil {
		w := windowBetween(snapshot{}, *first)
		rep.PreFault = &w
	}
	if lastRepair != nil {
		w := windowBetween(*lastRepair, final)
		rep.Settled = &w
	}
	if tol > 0 && rep.PreFault != nil && rep.Settled != nil {
		rep.Recovery = &recovery{
			PreRatio:     rep.PreFault.Ratio,
			SettledRatio: rep.Settled.Ratio,
			Tolerance:    tol,
			Pass:         rep.Settled.Ratio >= rep.PreFault.Ratio-tol,
		}
	}
	return rep
}
