// Command jsonanomaly trains the clustered ngram model on a log file and
// then scores the same (or another) file's requests, reporting the most
// anomalous ones — the §5.2 application of request prediction. It can
// also watch one periodic object for off-period arrivals (§5.1).
//
// Usage:
//
//	jsonanomaly -train pattern.tsv.gz -scan pattern.tsv.gz -top 20
//	jsonanomaly -train pattern.tsv.gz -scan live.tsv -threshold 1e-4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/ngram"
)

func main() {
	var (
		trainPath = flag.String("train", "", "log file to train the model on")
		scanPath  = flag.String("scan", "", "log file to scan for anomalies (defaults to -train)")
		top       = flag.Int("top", 20, "how many anomalous requests to list")
		threshold = flag.Float64("threshold", 1e-3, "score below which a request is anomalous")
	)
	flag.Parse()
	if *trainPath == "" {
		fmt.Fprintln(os.Stderr, "jsonanomaly: need -train FILE")
		os.Exit(2)
	}
	if *scanPath == "" {
		*scanPath = *trainPath
	}

	seq := ngram.NewSequencer()
	seq.Filter = logfmt.JSONOnly
	seq.Clustered = true
	seq.TestFraction = 0.0001 // train on everything
	err := core.FileSource(*trainPath).Each(func(r *logfmt.Record) error {
		seq.Observe(r)
		return nil
	})
	if err != nil {
		fail(err)
	}
	model, _ := seq.TrainAndEvaluate(1, nil)
	fmt.Fprintf(os.Stderr, "trained on %d clients, %d cluster templates\n",
		seq.NumClients(), model.VocabSize())

	det := anomaly.NewRequestDetector(model)
	det.Clustered = true
	det.Threshold = *threshold

	type finding struct {
		rec   logfmt.Record
		score float64
	}
	var findings []finding
	var scanned int64
	err = core.FileSource(*scanPath).Each(func(r *logfmt.Record) error {
		if !r.IsJSON() {
			return nil
		}
		scanned++
		if v := det.Observe(r); v.Anomalous {
			findings = append(findings, finding{rec: *r, score: v.Score})
		}
		return nil
	})
	if err != nil {
		fail(err)
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].score < findings[j].score })

	fmt.Printf("scanned %d JSON requests; %d anomalous (threshold %g)\n\n",
		scanned, len(findings), *threshold)
	if *top > len(findings) {
		*top = len(findings)
	}
	for _, f := range findings[:*top] {
		fmt.Printf("%s  score=%-10.2g client=%x  %s %s\n",
			f.rec.Time.Format("15:04:05"), f.score, f.rec.ClientID, f.rec.Method, f.rec.URL)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "jsonanomaly: %v\n", err)
	os.Exit(1)
}
