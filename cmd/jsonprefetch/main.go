// Command jsonprefetch runs the prefetching simulation (§5.2
// implication): it trains the ngram model on a log file's training
// clients, replays the JSON stream through identical simulated edges
// with and without prediction-driven prefetching, and reports the
// hit-ratio gain and the prefetch waste across a K sweep.
//
// Usage:
//
//	jsonprefetch -i pattern.tsv.gz
//	jsonprefetch -i pattern.tsv.gz -k 1,2,5 -cache-mb 128 -ttl 2m
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/ngram"
	"repro/internal/prefetch"
	"repro/internal/stats"
)

func main() {
	var (
		in      = flag.String("i", "", "input log file (.tsv/.jsonl[.gz])")
		ks      = flag.String("k", "1,2,5", "comma-separated prefetch fan-outs")
		servers = flag.Int("servers", 4, "edge servers in the pool")
		cacheMB = flag.Int64("cache-mb", 64, "cache capacity per server (MiB)")
		ttl     = flag.Duration("ttl", time.Minute, "cache TTL")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "jsonprefetch: need -i FILE")
		os.Exit(2)
	}

	recs, err := core.Collect(core.FileSource(*in))
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsonprefetch: %v\n", err)
		os.Exit(1)
	}
	seq := ngram.NewSequencer()
	seq.Filter = logfmt.JSONOnly
	for i := range recs {
		seq.Observe(&recs[i])
	}
	model, _ := seq.TrainAndEvaluate(1, nil)

	replayJSON := func(fn func(*logfmt.Record)) {
		for i := range recs {
			if recs[i].IsJSON() {
				fn(&recs[i])
			}
		}
	}

	var tb stats.Table
	tb.SetHeader("Configuration", "Hit ratio", "Waste", "Origin bytes", "Prefetch bytes")
	var kvals []int
	for _, part := range strings.Split(*ks, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			fmt.Fprintf(os.Stderr, "jsonprefetch: bad K %q\n", part)
			os.Exit(2)
		}
		kvals = append(kvals, k)
	}

	cfg := prefetch.DefaultConfig()
	cfg.Servers = *servers
	cfg.CacheBytes = *cacheMB << 20
	cfg.TTL = *ttl

	first := true
	for _, k := range kvals {
		kcfg := cfg
		kcfg.K = k
		cmp := prefetch.Compare(model, kcfg, replayJSON)
		if first {
			tb.AddRowf("baseline", fmt.Sprintf("%.3f", cmp.Baseline.HitRatio()), "-",
				cmp.Baseline.OriginBytes, "-")
			first = false
		}
		tb.AddRowf(fmt.Sprintf("prefetch K=%d", k),
			fmt.Sprintf("%.3f", cmp.Prefetch.HitRatio()),
			fmt.Sprintf("%.2f", cmp.Prefetch.WasteRatio()),
			cmp.Prefetch.OriginBytes, cmp.Prefetch.PrefetchedBytes)
	}
	fmt.Print(tb.String())
}
