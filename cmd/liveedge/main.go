// Liveedge: run a real net/http caching edge server on loopback, drive
// it with synthetic clients following the paper's manifest pattern
// (Table 1: fetch /stories, then the referenced articles), then analyze
// the edge's own request log with the characterization pipeline. The
// edge is fully instrumented: an admin server exposes Prometheus
// metrics, expvar, and pprof while it runs, and the run ends with a
// sample of its own /metrics scrape.
//
// The origin is deliberately unreliable: a seeded fault injector drops
// a fraction of fetches (-fault-rate), and the edge survives it with
// the full resilience stack — retries with jittered backoff, a circuit
// breaker, and serve-stale — so the scrape sample shows the recovery
// metrics alongside the cache ones.
//
//	go run ./cmd/liveedge
//	go run ./cmd/liveedge -fault-rate 0.3 -fault-seed 9
//
// With -serve the self-driving clients are replaced by an external
// load source: the edge binds -listen (port 0 works), publishes its
// URLs through -url-file once ready (the handshake `jsonreplay
// -target-file` consumes), and serves until SIGINT/SIGTERM — how
// `make slo-check` spins it up. SIGTERM drains gracefully: readiness
// flips off first, then in-flight requests get a shutdown window.
//
//	go run ./cmd/liveedge -serve -listen 127.0.0.1:0 \
//	    -url-file /tmp/edge.url -fault-rate 0
//
// With -chaos-listen the node also serves a fault-injection control
// endpoint (see internal/fleet/chaos) on its own listener, published
// as the third URL-file line; the jsonfleet supervisor uses it to
// pause, partition, or play-dead this node mid-run without touching
// the process.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	cdnjson "repro"
	"repro/internal/defend"
	"repro/internal/edge"
	"repro/internal/fleet/chaos"
	"repro/internal/livechar"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// logger is the example's structured logger; main wires it before any
// client goroutine runs.
var logger *obs.Logger

// edgeStack bundles the wired server components so both run modes
// share one construction path.
type edgeStack struct {
	edge     *cdnjson.HTTPEdge
	faulty   *resilience.FaultyOrigin
	origin   *resilience.ResilientOrigin
	breaker  *resilience.Breaker
	defender *defend.Defender
	char     *livechar.LiveChar
	reg      *obs.Registry
	health   *obs.Health
	mu       sync.Mutex
	logs     []cdnjson.Record
}

func main() {
	var (
		faultRate  = flag.Float64("fault-rate", 0.15, "probability an origin fetch fails (seeded, reproducible)")
		faultSeed  = flag.Uint64("fault-seed", 7, "seed for fault injection and backoff jitter")
		serve      = flag.Bool("serve", false, "serve external traffic until SIGINT/SIGTERM instead of running the built-in clients")
		listen     = flag.String("listen", "127.0.0.1:0", "edge listen address in -serve mode")
		adminAddr  = flag.String("admin", "127.0.0.1:0", "admin (metrics/readyz/pprof) listen address in -serve mode")
		urlFile    = flag.String("url-file", "", "publish the edge and admin URLs to this file once ready (-serve mode handshake)")
		defendOn   = flag.Bool("defend", false, "enable the detect-and-defend admission loop (rate limits, cache-key collapse, negative caching, abuser shedding)")
		chaosAddr  = flag.String("chaos-listen", "", "serve the chaos fault-injection control endpoint on this address (-serve mode; published as the third URL-file line)")
		drainGrace = flag.Duration("drain-grace", 2*time.Second, "in-flight request window after SIGTERM before the listener closes")
		charOn     = flag.Bool("livechar", false, "enable the live traffic-characterization plane: /charz on the admin mux, livechar_* metrics, periodic char-<id>.json snapshots")
		charWindow = flag.Duration("char-window", time.Minute, "livechar tumbling window (event time)")
		charBin    = flag.Duration("char-bin", time.Second, "livechar rate-sampling bin for periodicity detection")
		charSnap   = flag.Duration("char-snapshot", 30*time.Second, "interval between char-<id>.json snapshots in -serve mode (0 disables)")
		outDir     = flag.String("out-dir", "out", "directory for run manifests and char snapshots")
		nodeName   = flag.String("node", "", "node label on livechar snapshots, for fleet merges (default: the run id)")
	)
	flag.Parse()
	runID := obs.NewRunID()
	logger = obs.NewLogger(os.Stderr, runID, *faultSeed, nil).Component("liveedge")

	st := buildEdgeStack(*faultRate, *faultSeed, *serve, *defendOn)
	if *charOn {
		node := *nodeName
		if node == "" {
			node = runID
		}
		st.char = livechar.New(livechar.Config{
			Window: *charWindow,
			Bin:    *charBin,
			Seed:   *faultSeed,
			Node:   node,
		})
		st.char.Instrument(st.reg)
		// Tap the edge's request log: the previous hook keeps running,
		// livechar sees every record first. After Start the tap is a
		// non-blocking channel send; overflow is dropped and counted.
		prevLog := st.edge.Log
		st.edge.Log = func(r *cdnjson.Record) {
			st.char.Observe(r)
			if prevLog != nil {
				prevLog(r)
			}
		}
	}
	if *serve {
		runServe(st, serveConfig{
			listen:     *listen,
			adminAddr:  *adminAddr,
			urlFile:    *urlFile,
			chaosAddr:  *chaosAddr,
			drainGrace: *drainGrace,
			runID:      runID,
			outDir:     *outDir,
			charSnap:   *charSnap,
		})
		return
	}
	runSelfDriven(st)
}

// serveConfig bundles runServe's knobs.
type serveConfig struct {
	listen, adminAddr, urlFile, chaosAddr string
	drainGrace                            time.Duration
	runID                                 string
	outDir                                string
	charSnap                              time.Duration
}

// buildEdgeStack wires the cache, the faulty origin, and the full
// resilience path, instrumented into one registry. In serve mode the
// origin answers every path (WildcardOrigin), so replayed synthetic
// streams see the real hit/miss mix instead of 404s. With defended set
// the detect-and-defend admission loop fronts the cache, keying client
// state on the X-Client-Id header jsonreplay forwards.
func buildEdgeStack(faultRate float64, faultSeed uint64, wildcard, defended bool) *edgeStack {
	st := &edgeStack{}
	var inner edge.Origin = &edge.JSONOrigin{Articles: 40, Latency: 2 * time.Millisecond}
	if wildcard {
		inner = &edge.WildcardOrigin{Inner: inner, Latency: 2 * time.Millisecond}
	}
	st.faulty = &resilience.FaultyOrigin{
		Inner:     inner,
		Seed:      faultSeed,
		ErrorRate: faultRate,
	}
	st.breaker = &resilience.Breaker{FailureThreshold: 5, OpenFor: 200 * time.Millisecond}
	st.origin = &resilience.ResilientOrigin{
		Inner:          st.faulty,
		Retry:          resilience.Backoff{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, Attempts: 3},
		Breaker:        st.breaker,
		AttemptTimeout: time.Second,
		Seed:           faultSeed + 1,
	}
	st.edge = &cdnjson.HTTPEdge{
		Cache:      edgeCache(),
		Origin:     st.origin,
		ServeStale: true,
		Degraded:   st.origin.Degraded,
		Log: func(r *cdnjson.Record) {
			st.mu.Lock()
			st.logs = append(st.logs, *r)
			st.mu.Unlock()
		},
	}
	st.reg = obs.NewRegistry()
	st.edge.Instrument(st.reg)
	if defended {
		st.defender = defend.New(defend.Config{ClientIDHeader: "X-Client-Id"})
		st.defender.Instrument(st.reg)
		st.edge.Defend = st.defender
	}
	// A small retention window: a long-lived edge traces the most recent
	// requests, not the whole history.
	st.edge.Trace = &obs.Trace{Limit: 64}
	st.origin.Obs = resilience.NewInstrumentation(st.reg)
	resilience.RegisterBreaker(st.reg, st.breaker)
	st.health = &obs.Health{}
	return st
}

// runServe is the harness-facing mode: bind real listeners, publish
// URLs once ready, serve until a signal arrives, then drain and report
// what was served.
func runServe(st *edgeStack, cfg serveConfig) {
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		logger.Error("listen failed", "addr", cfg.listen, "err", err)
		os.Exit(1)
	}
	edgeURL := "http://" + ln.Addr().String()

	// /healthz rides the data listener, not the admin mux, so the fleet
	// prober shares fate with real traffic: an injected pause, partition,
	// or play-dead hits the probe exactly as it hits requests. Draining
	// (readiness off) fails the probe too, so a supervisor stops routing
	// here before the listener closes.
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !st.health.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/", st.edge)
	var handler http.Handler = mux

	// With a chaos listener, every edge request — /healthz included —
	// routes through the injector; the control endpoint gets its own
	// listener so a partitioned node can still be healed.
	var chaosSrv *http.Server
	var chaosURL string
	if cfg.chaosAddr != "" {
		injector := &chaos.Injector{}
		handler = injector.Wrap(mux)
		cln, err := net.Listen("tcp", cfg.chaosAddr)
		if err != nil {
			logger.Error("chaos listen failed", "addr", cfg.chaosAddr, "err", err)
			os.Exit(1)
		}
		chaosURL = "http://" + cln.Addr().String()
		chaosSrv = &http.Server{Handler: injector.ControlHandler()}
		go chaosSrv.Serve(cln)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)

	// Compose the admin mux before the listener opens so a probe can
	// never observe a half-wired surface: /charz joins the built-ins
	// when the characterization plane is on.
	adminMux := obs.AdminMux(st.reg, st.health)
	if st.char != nil {
		adminMux.Handle("/charz", st.char.Handler())
	}
	adminSrv, adminURL, err := obs.ServeHandler(cfg.adminAddr, adminMux)
	if err != nil {
		logger.Error("admin listen failed", "addr", cfg.adminAddr, "err", err)
		os.Exit(1)
	}
	// Both listeners are up and the origin path is wired: flip ready,
	// THEN publish the URL file — the handshake's ordering contract.
	st.health.SetReady(true)
	if cfg.urlFile != "" {
		urls := []string{edgeURL, adminURL}
		if chaosURL != "" {
			urls = append(urls, chaosURL)
		}
		if err := edge.WriteURLFile(cfg.urlFile, urls...); err != nil {
			logger.Error("publishing URL file", "path", cfg.urlFile, "err", err)
			os.Exit(1)
		}
	}
	logger.Info("edge serving", "url", edgeURL, "admin", adminURL,
		"chaos", chaosURL, "url_file", cfg.urlFile)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The characterization plane goes async once traffic can arrive; a
	// snapshot loop writes periodic char-<id>.json artifacts whose
	// ledger steps fold into the run manifest at shutdown.
	var manifest *obs.Manifest
	var charWG sync.WaitGroup
	var charMu sync.Mutex
	charSeq := 0
	if st.char != nil {
		st.char.Start()
		manifest = obs.NewManifest("liveedge", cfg.runID)
		manifest.Config["livechar"] = true
		manifest.Config["char_window"] = st.char.Config().Window.String()
		manifest.Config["char_bin"] = st.char.Config().Bin.String()
		manifest.Config["char_snapshot"] = cfg.charSnap.String()
		manifest.Config["listen"] = cfg.listen
		if cfg.charSnap > 0 {
			charWG.Add(1)
			go func() {
				defer charWG.Done()
				tick := time.NewTicker(cfg.charSnap)
				defer tick.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
						charMu.Lock()
						charSeq++
						seq := charSeq
						charMu.Unlock()
						path, step, err := st.char.WriteSnapshot(cfg.outDir, cfg.runID, seq)
						if err != nil {
							logger.Warn("char snapshot failed", "err", err)
							continue
						}
						charMu.Lock()
						manifest.Steps = append(manifest.Steps, step)
						charMu.Unlock()
						logger.Info("char snapshot written", "path", path)
					}
				}
			}()
		}
	}

	<-ctx.Done()
	stop()

	// Graceful drain: readiness flips off first so probers and
	// supervisors stop routing here, then in-flight requests get the
	// grace window before the listener closes.
	st.health.SetReady(false)
	logger.Info("edge draining", "grace", cfg.drainGrace)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainGrace)
	defer cancel()
	srv.Shutdown(shutCtx)
	if chaosSrv != nil {
		chaosSrv.Close()
	}
	adminSrv.Close()

	if st.char != nil {
		charWG.Wait()
		st.char.Close()
		// Final snapshot after the drain so the artifact reflects the
		// whole run, then the manifest closes the books.
		charSeq++
		if path, step, err := st.char.WriteSnapshot(cfg.outDir, cfg.runID, charSeq); err != nil {
			logger.Warn("final char snapshot failed", "err", err)
		} else {
			manifest.Steps = append(manifest.Steps, step)
			logger.Info("char snapshot written", "path", path)
		}
		manifest.Finish("completed")
		manifest.AddMetrics(st.reg)
		if path, err := manifest.WriteFile(cfg.outDir); err != nil {
			logger.Warn("writing run manifest", "err", err)
		} else {
			logger.Info("run manifest written", "path", path)
		}
	}

	st.mu.Lock()
	served := len(st.logs)
	st.mu.Unlock()
	logger.Info("edge stopped", "requests_served", served,
		"origin_faults", st.faulty.Faults(), "breaker_opens", st.breaker.Opens())
}

// runSelfDriven is the original demo: built-in clients load the
// manifest pattern, then the edge's own log is characterized.
func runSelfDriven(st *edgeStack) {
	srv := httptest.NewServer(st.edge)
	defer srv.Close()
	adminMux := obs.AdminMux(st.reg, st.health)
	if st.char != nil {
		adminMux.Handle("/charz", st.char.Handler())
	}
	admin := httptest.NewServer(adminMux)
	defer admin.Close()
	// Both listeners are up and the origin path is wired: ready.
	st.health.SetReady(true)
	logger.Info("edge server listening", "url", srv.URL)
	logger.Info("admin endpoints up", "metrics", admin.URL+"/metrics",
		"readyz", admin.URL+"/readyz", "pprof", admin.URL+"/debug/pprof/")

	// Drive it: concurrent app clients load the manifest and then read
	// articles; one IoT poller posts telemetry.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Stagger arrivals as real clients would; simultaneous cold
			// starts would all miss before the first response fills the
			// cache.
			time.Sleep(time.Duration(c) * 40 * time.Millisecond)
			appClient(srv.URL, c)
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			req, _ := http.NewRequest("POST", srv.URL+"/ingest/metrics", nil)
			req.Header.Set("User-Agent", "HomeCam/1.9 (IoT; ESP32)")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	wg.Wait()

	// Analyze the edge's own log.
	st.mu.Lock()
	defer st.mu.Unlock()
	logs := st.logs
	fmt.Printf("\nedge served %d requests; analyzing its log...\n\n", len(logs))
	char := cdnjson.NewCharacterization()
	var hits, cacheable int
	for i := range logs {
		char.ObserveAny(&logs[i])
		switch logs[i].Cache {
		case cdnjson.CacheHit:
			hits++
			cacheable++
		case cdnjson.CacheMiss:
			cacheable++
		}
	}
	fmt.Printf("device shares: mobile %.0f%%, embedded %.0f%%\n",
		char.DeviceShare(cdnjson.DeviceMobile)*100,
		char.DeviceShare(cdnjson.DeviceEmbedded)*100)
	fmt.Printf("GET share: %.0f%%   uncacheable: %.0f%%\n",
		char.GETShare()*100, char.UncacheableShare()*100)
	if cacheable > 0 {
		fmt.Printf("edge cache hit ratio: %.0f%% (%d/%d cacheable requests)\n",
			float64(hits)/float64(cacheable)*100, hits, cacheable)
	}
	fmt.Printf("origin faults absorbed: %d injected over %d fetches, %d retries, %d stale serves, %d breaker opens\n",
		st.faulty.Faults(), st.faulty.Fetches(), st.origin.Obs.Retries.Value(),
		st.edge.Obs.StaleServes.Value(), st.breaker.Opens())
	fmt.Printf("request trace: %d spans retained (last %d requests), %d dropped by the retention window\n",
		len(st.edge.Trace.Spans()), st.edge.Trace.Limit, st.edge.Trace.Dropped())

	// With -livechar the same log was also characterized live; show the
	// streaming view next to the batch one.
	if st.char != nil {
		snap := st.char.Snapshot()
		fmt.Printf("\nlive characterization (%s/charz): %d events, %d drops\n",
			admin.URL, snap.Events, snap.Drops)
		if w := snap.Current; w != nil {
			for i, hh := range w.TopObjects {
				if i >= 3 {
					break
				}
				fmt.Printf("  top object %d: %s (%d reqs, err <= %d)\n", i+1, hh.Key, hh.Count, hh.Err)
			}
		}
		fmt.Printf("  predictability: top-%d hit rate %.2f over %d predictions, unigram entropy %.2f bits\n",
			snap.Predict.K, snap.Predict.HitRate, snap.Predict.Observations, snap.Predict.EntropyBits)
	}

	// Scrape our own admin endpoint to show the zero-to-metrics path.
	fmt.Printf("\nsample of %s/metrics:\n", admin.URL)
	printScrapeSample(admin.URL + "/metrics")
}

// printScrapeSample fetches a Prometheus endpoint and prints its edge_*
// and resilience_* samples (skipping comment lines and the histogram
// bucket series).
func printScrapeSample(url string) {
	resp, err := http.Get(url)
	if err != nil {
		logger.Warn("scrape failed", "err", err)
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if (strings.HasPrefix(line, "edge_") || strings.HasPrefix(line, "resilience_")) &&
			!strings.Contains(line, "_bucket{") {
			fmt.Printf("  %s\n", line)
		}
	}
}

func edgeCache() *cdnjson.EdgeCache {
	return edge.NewCache(32<<20, time.Minute, 4)
}

// appClient mimics the Table 1 flow: GET the manifest, decode it, then
// GET a few referenced articles.
func appClient(base string, id int) {
	ua := fmt.Sprintf("NewsApp/3.1 (iPhone; iOS 12.2; client %d)", id)
	get := func(path string) []byte {
		req, err := http.NewRequest("GET", base+path, nil)
		if err != nil {
			logger.Error("building request", "client", id, "err", err)
			os.Exit(1)
		}
		req.Header.Set("User-Agent", ua)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			logger.Warn("request failed", "client", id, "err", err)
			return nil
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return body
	}
	manifest := get("/stories")
	var stories []struct {
		ID int `json:"article_id"`
	}
	if err := json.Unmarshal(manifest, &stories); err != nil {
		logger.Warn("bad manifest", "client", id, "err", err)
		return
	}
	for i, s := range stories {
		if i >= 3+id%3 {
			break
		}
		get(fmt.Sprintf("/article/%d", s.ID))
		time.Sleep(5 * time.Millisecond)
	}
}
