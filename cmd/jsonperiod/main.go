// Command jsonperiod runs the §5.1 periodicity analysis over a log file:
// it extracts object and client-object flows, detects significant
// periods with the permutation-thresholded autocorrelation+Fourier
// detector, and prints the Fig. 5 period histogram, the Fig. 6 CDF, and
// the periodic-traffic statistics.
//
// Usage:
//
//	jsonperiod -i pattern.tsv.gz
//	jsonperiod -i pattern.tsv.gz -x 100 -bin 1s -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/flows"
	"repro/internal/logfmt"
	"repro/internal/periodicity"
	"repro/internal/stats"
)

func main() {
	var (
		in   = flag.String("i", "", "input log file (.tsv/.jsonl[.gz])")
		x    = flag.Int("x", 100, "permutations for the significance thresholds")
		bin  = flag.Duration("bin", time.Second, "sampling interval")
		seed = flag.Uint64("seed", 1, "permutation seed")
		list = flag.Bool("list", false, "list every periodic object")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "jsonperiod: need -i FILE")
		os.Exit(2)
	}

	ex := flows.NewExtractor()
	ex.Filter = logfmt.JSONOnly
	err := core.FileSource(*in).Each(func(r *logfmt.Record) error {
		ex.Observe(r)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsonperiod: %v\n", err)
		os.Exit(1)
	}
	fl := ex.Flows()
	fs := ex.FilterStats()
	fmt.Printf("JSON requests: %d; objects: %d; flows surviving filters: %d\n",
		ex.TotalObserved(), ex.NumObjects(), len(fl))
	fmt.Printf("filters keep %s of objects carrying %s of requests (paper: the top ~25%% of objects)\n",
		stats.Percent(fs.ObjectShare()), stats.Percent(fs.RequestShare()))

	cfg := periodicity.DefaultConfig()
	cfg.Detector.Permutations = *x
	cfg.SampleBin = *bin
	cfg.Seed = *seed
	res := periodicity.Analyze(fl, ex.TotalObserved(), cfg)

	fmt.Printf("\nperiodic requests: %s of JSON traffic (paper: 6.3%%)\n",
		stats.Percent(res.PeriodicShare()))
	fmt.Printf("periodic traffic: %s uncacheable (paper: 56.2%%), %s upload (paper: 78%%)\n",
		stats.Percent(res.PeriodicUncacheableShare()), stats.Percent(res.PeriodicUploadShare()))
	fmt.Printf("periodic objects with >50%% periodic clients: %s (paper: 20%%)\n",
		stats.Percent(res.ShareAboveMajority()))

	fmt.Println("\nFigure 5: histogram of object periods")
	h := res.PeriodHistogram(periodicity.DefaultPeriodEdges())
	labels := []string{"<=30s", "1m", "2m", "3m", "5m", "10m", "15m", "30m", "1h"}
	values := make([]float64, len(labels))
	for i := 0; i < h.NumBins() && i < len(labels); i++ {
		values[i] = float64(h.Count(i))
	}
	fmt.Print(stats.BarChart(labels, values, 50))

	fmt.Println("\nFigure 6: CDF of percent periodic clients across objects")
	fmt.Print(stats.LineChart(res.PeriodicClientCDF().Points(40), 60, 12))

	if *list {
		fmt.Println("\nPeriodic objects:")
		for _, o := range res.PeriodicObjects() {
			fmt.Printf("  %-60s period=%-8s clients=%d/%d periodic\n",
				o.URL, o.ObjectPeriod, o.PeriodicClients, o.TotalClients)
		}
	}
}
