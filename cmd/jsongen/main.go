// Command jsongen generates synthetic CDN edge request logs modeled on
// the paper's datasets (Table 2).
//
// Usage:
//
//	jsongen -preset short -scale 0.002 -o logs.tsv.gz
//	jsongen -preset long -seed 7 -o logs.jsonl
//	jsongen -duration 2h -target 150000 -domains 40 -o pattern.tsv
//	jsongen -preset short -scale 0.01 -shards 8 -o stream.tsv.gz
//	jsongen -preset short -o logs.cdnc -codec gzip -chunk-records 8192
//
// The output format is inferred from the file extension (.tsv, .jsonl,
// .cdnb, or the .cdnc chunk container, with optional .gz on the text
// and binary formats); "-" writes TSV to stdout. The -codec and
// -chunk-records flags shape the chunk container only.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/logfmt"
	"repro/internal/synth"
)

func main() {
	var (
		preset   = flag.String("preset", "short", `dataset preset: "short" (10 min, wide) or "long" (24 h, narrow)`)
		scale    = flag.Float64("scale", 0.002, "scale factor relative to the paper's dataset sizes")
		seed     = flag.Uint64("seed", 42, "generator seed; equal seeds give identical datasets")
		out      = flag.String("o", "-", "output path (.tsv/.jsonl/.cdnb[.gz]) or - for stdout")
		duration = flag.Duration("duration", 0, "override capture window")
		target   = flag.Int("target", 0, "override target record count")
		domains  = flag.Int("domains", 0, "override domain count")
		shards   = flag.Int("shards", 0, "generate with this many parallel shards (0/1 = sequential; deterministic per seed+shards)")
		utcOff   = flag.Duration("utc-offset", 0, "vantage time-zone offset shifting the diurnal cycle (e.g. -8h, 9h)")
		quiet    = flag.Bool("q", false, "suppress the summary line")

		codec     = flag.String("codec", "flate", "chunk container codec for .cdnc output: raw, flate, or gzip")
		chunkRecs = flag.Int("chunk-records", 0, "records per chunk for .cdnc output (0 = default 4096)")

		atkBust     = flag.Float64("attack-bust", 0, "cache-busting storm share of -target overlaid on the benign stream")
		atkFlash    = flag.Float64("attack-flash", 0, "flash-crowd share of -target overlaid on the benign stream")
		atkBots     = flag.Float64("attack-bots", 0, "spoofed-UA bot-flood share of -target overlaid on the benign stream")
		atkAmplify  = flag.Float64("attack-amplify", 0, "conversion-amplification share of -target overlaid on the benign stream")
		atkStart    = flag.Duration("attack-start", 0, "attack window offset from capture start (benign baseline first)")
		atkDuration = flag.Duration("attack-duration", 0, "attack window length (0 runs to capture end)")
		atkObjects  = flag.Int("attack-flash-objects", 0, "hot objects the flash crowd converges on (0 = default)")
	)
	flag.Parse()

	var cfg synth.Config
	switch *preset {
	case "short":
		cfg = synth.ShortTermConfig(*seed, *scale)
	case "long":
		cfg = synth.LongTermConfig(*seed, *scale)
	default:
		fatalf("unknown preset %q (want short or long)", *preset)
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *target > 0 {
		cfg.TargetRequests = *target
	}
	if *domains > 0 {
		cfg.Domains = *domains
	}
	cfg.UTCOffset = *utcOff
	cfg.Shards = *shards
	cfg.Attack = synth.AttackConfig{
		CacheBustShare: *atkBust,
		FlashShare:     *atkFlash,
		BotShare:       *atkBots,
		AmplifyShare:   *atkAmplify,
		FlashObjects:   *atkObjects,
		Start:          *atkStart,
		Duration:       *atkDuration,
	}
	if err := cfg.Validate(); err != nil {
		fatalf("%v", err)
	}

	chunkCodec, err := logfmt.ParseCodec(*codec)
	if err != nil {
		fatalf("%v", err)
	}
	w, closeFn, err := openOutput(*out, logfmt.ChunkConfig{Codec: chunkCodec, ChunkRecords: *chunkRecs})
	if err != nil {
		fatalf("%v", err)
	}

	summary := logfmt.NewDatasetSummary(*preset)
	start := time.Now()
	err = synth.Generate(cfg, func(r *logfmt.Record) error {
		summary.Observe(r)
		return w.Write(r)
	})
	if err != nil {
		fatalf("generate: %v", err)
	}
	if err := closeFn(); err != nil {
		fatalf("close: %v", err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "%s (wrote in %s)\n", summary, time.Since(start).Round(time.Millisecond))
	}
}

func openOutput(path string, chunkCfg logfmt.ChunkConfig) (logfmt.RecordWriter, func() error, error) {
	if path == "-" {
		w := logfmt.NewWriter(os.Stdout, logfmt.FormatTSV)
		return w, w.Close, nil
	}
	var w logfmt.RecordWriter
	var closer io.Closer
	var err error
	if logfmt.IsChunkPath(path) {
		// The chunk flags only apply here; CreateFile would use defaults.
		f, ferr := os.Create(path)
		if ferr != nil {
			return nil, nil, ferr
		}
		w, closer = logfmt.NewChunkWriter(f, chunkCfg), f
	} else {
		w, closer, err = logfmt.CreateFile(path)
	}
	if err != nil {
		return nil, nil, err
	}
	closeFn := func() error {
		if err := w.Close(); err != nil {
			closer.Close()
			return err
		}
		return closer.Close()
	}
	return w, closeFn, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "jsongen: "+format+"\n", args...)
	os.Exit(1)
}
