// Command jsonrepro regenerates every table and figure of the paper in
// one run, printing each alongside the paper's reported values.
//
// Usage:
//
//	jsonrepro                         # laptop-scale defaults
//	jsonrepro -scale 0.01 -x 100      # bigger datasets, paper's x
//	jsonrepro -only fig5,table3
//	jsonrepro -j 1                    # force the sequential scheduler
//	jsonrepro -shards 8               # shard dataset generation 8 ways
//	jsonrepro -trace                  # per-stage span table after the run
//	jsonrepro -metrics-addr :9090     # scrape /metrics while it runs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 42, "seed for all datasets and permutations")
		scale       = flag.Float64("scale", 0.002, "scale of the Table 2 presets")
		target      = flag.Int("pattern-target", 120_000, "records in the §5 pattern dataset")
		window      = flag.Duration("pattern-window", 2*time.Hour, "capture window of the pattern dataset")
		x           = flag.Int("x", 100, "periodicity permutations")
		bin         = flag.Duration("bin", 2*time.Second, "periodicity sampling interval")
		faultRate   = flag.Float64("fault-rate", 0.05, "steady-state origin error rate of the resilience experiment")
		faultSeed   = flag.Uint64("fault-seed", 0, "seed for fault injection and backoff jitter (0 derives it from -seed)")
		jobs        = flag.Int("j", runtime.GOMAXPROCS(0), "RunAll step parallelism: 1 runs the exhibits sequentially; N > 1 runs independent steps on N workers (output stays byte-identical)")
		shards      = flag.Int("shards", 1, "synth generation shards: 1 reproduces the historical streams; N > 1 generates on N goroutines (deterministic per seed+shards, different stream)")
		only        = flag.String("only", "", "comma-separated subset: fig1,table2,fig3,fig4,fig5,fig6,table3,prefetch,deprioritize,anomaly,regional,resilience")
		csvDir      = flag.String("csv", "", "also export each exhibit's data series as CSV into this directory (full runs only)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :9090) while running")
		trace       = flag.Bool("trace", false, "print a per-stage span table (wall time, records, records/sec) after the run")
	)
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "jsonrepro: -j must be >= 1")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "jsonrepro: -shards must be >= 1")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancels the run at the next step boundary; the
	// partial report still prints and the process exits 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *obs.Registry
	var tr *obs.Trace
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		_, url, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "metrics at %s/metrics (pprof at %s/debug/pprof/)\n", url, url)
	}
	if *trace {
		tr = obs.NewTrace()
	}

	cfg := experiments.Config{
		Seed:          *seed,
		Scale:         *scale,
		PatternTarget: *target,
		PatternWindow: *window,
		Permutations:  *x,
		SampleBin:     *bin,
		FaultRate:     *faultRate,
		FaultSeed:     *faultSeed,
		Jobs:          *jobs,
		Shards:        *shards,
	}
	r := experiments.NewRunner(cfg)
	r.Instrument(reg, tr)
	start := time.Now()

	interrupted := false
	if *only == "" {
		rep, err := r.RunAllContext(ctx, os.Stdout)
		switch {
		case errors.Is(err, context.Canceled):
			interrupted = true
			fmt.Printf("\n== Interrupted: partial report (%d/%d steps) ==\n",
				rep.Completed(), len(rep.Steps))
			rep.WriteStepSummary(os.Stdout)
		case err != nil:
			fail(err)
		}
		if *csvDir != "" && !interrupted {
			if err := experiments.WriteCSV(*csvDir, rep); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "CSV series written to %s\n", *csvDir)
		}
	} else {
		for _, name := range strings.Split(*only, ",") {
			if ctx.Err() != nil {
				interrupted = true
				fmt.Printf("\n== Interrupted: skipping remaining experiments ==\n")
				break
			}
			var err error
			fmt.Printf("\n== %s ==\n", name)
			switch strings.TrimSpace(strings.ToLower(name)) {
			case "fig1":
				_, err = r.Figure1(os.Stdout)
			case "table2":
				_, err = r.Table2(os.Stdout)
			case "fig3":
				_, err = r.Figure3(os.Stdout)
			case "fig4":
				_, err = r.Figure4(os.Stdout)
			case "fig5":
				_, err = r.Figure5(os.Stdout)
			case "fig6":
				_, err = r.Figure6(os.Stdout)
			case "table3":
				_, err = r.Table3(os.Stdout)
			case "prefetch":
				_, err = r.Prefetch(os.Stdout)
			case "deprioritize":
				_, err = r.Deprioritize(os.Stdout)
			case "anomaly":
				_, err = r.Anomaly(os.Stdout)
			case "regional":
				_, err = r.Regional(os.Stdout)
			case "resilience":
				_, err = r.Resilience(os.Stdout)
			default:
				err = fmt.Errorf("unknown experiment %q", name)
			}
			if err != nil {
				fail(err)
			}
		}
	}
	if *trace {
		fmt.Println("\n== Stage trace ==")
		tr.WriteTable(os.Stdout)
	}
	verb := "completed"
	if interrupted {
		verb = "interrupted"
	}
	fmt.Fprintf(os.Stderr, "\n%s in %s\n", verb, time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "jsonrepro: %v\n", err)
	os.Exit(1)
}
