// Command jsonrepro regenerates every table and figure of the paper in
// one run, printing each alongside the paper's reported values.
//
// Every run emits a run manifest (run-<id>.json) recording the full
// effective configuration, toolchain and VCS revision, the per-step
// ledger, and a final metrics snapshot — the provenance needed to
// reproduce any printed figure bit-for-bit.
//
// Usage:
//
//	jsonrepro                         # laptop-scale defaults
//	jsonrepro -scale 0.01 -x 100      # bigger datasets, paper's x
//	jsonrepro -only fig5,table3
//	jsonrepro -records logs.cdnc      # analyze a captured log instead of synth
//	jsonrepro -j 1                    # force the sequential scheduler
//	jsonrepro -shards 8               # shard dataset generation 8 ways
//	jsonrepro -trace                  # per-stage span table after the run
//	jsonrepro -trace-out t.json       # Chrome trace (about:tracing/Perfetto)
//	jsonrepro -span-log spans.jsonl   # machine-readable span log
//	jsonrepro -profile                # CPU+heap pprof bracketing the run
//	jsonrepro -metrics-addr :9090     # scrape /metrics while it runs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/ingest"
	"repro/internal/logfmt"
	"repro/internal/obs"
)

func main() {
	var (
		seed        = flag.Uint64("seed", 42, "seed for all datasets and permutations")
		scale       = flag.Float64("scale", 0.002, "scale of the Table 2 presets")
		target      = flag.Int("pattern-target", 120_000, "records in the §5 pattern dataset")
		window      = flag.Duration("pattern-window", 2*time.Hour, "capture window of the pattern dataset")
		x           = flag.Int("x", 100, "periodicity permutations")
		bin         = flag.Duration("bin", 2*time.Second, "periodicity sampling interval")
		faultRate   = flag.Float64("fault-rate", 0.05, "steady-state origin error rate of the resilience experiment")
		faultSeed   = flag.Uint64("fault-seed", 0, "seed for fault injection and backoff jitter (0 derives it from -seed)")
		jobs        = flag.Int("j", runtime.GOMAXPROCS(0), "RunAll step parallelism: 1 runs the exhibits sequentially; N > 1 runs independent steps on N workers (output stays byte-identical)")
		shards      = flag.Int("shards", 1, "synth generation shards: 1 reproduces the historical streams; N > 1 generates on N goroutines (deterministic per seed+shards, different stream)")
		records     = flag.String("records", "", "load the §4 short-term dataset from this log file (.tsv/.jsonl/.cdnb[.gz]/.cdnc, container detected by magic) instead of synthesizing it")
		only        = flag.String("only", "", "comma-separated subset: fig1,table2,fig3,fig4,fig5,fig6,table3,prefetch,deprioritize,anomaly,regional,resilience,adversarial,fleetchaos (fleetchaos is live-HTTP and excluded from full runs)")
		csvDir      = flag.String("csv", "", "also export each exhibit's data series as CSV into this directory (full runs only)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /readyz, /debug/vars, and /debug/pprof on this address (e.g. :9090) while running")
		trace       = flag.Bool("trace", false, "print a per-stage span table (wall time, records, records/sec) after the run")
		traceOut    = flag.String("trace-out", "", "write the run's span tree as Chrome trace_event JSON to this file (load in about:tracing or ui.perfetto.dev)")
		spanLog     = flag.String("span-log", "", "write the run's span tree as JSONL (one span per line, parent ids intact) to this file")
		manifestDir = flag.String("manifest-dir", "out", "directory for the run-<id>.json manifest (empty disables)")
		profile     = flag.Bool("profile", false, "capture CPU and heap pprof profiles bracketing the run (written next to the manifest)")
		verbose     = flag.Bool("v", false, "log at debug level")
	)
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "jsonrepro: -j must be >= 1")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "jsonrepro: -shards must be >= 1")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancels the run at the next step boundary; the
	// partial report still prints, the manifest records the interrupt,
	// and the process exits 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runID := obs.NewRunID()
	logger := newLogger(os.Stderr, runID, *seed, *verbose).Component("jsonrepro")
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	health := &obs.Health{}

	man := obs.NewManifest("jsonrepro", runID)
	man.Config = map[string]any{
		"seed": *seed, "scale": *scale,
		"pattern_target": *target, "pattern_window": window.String(),
		"permutations": *x, "sample_bin": bin.String(),
		"fault_rate": *faultRate, "fault_seed": *faultSeed,
		"jobs": *jobs, "shards": *shards, "only": *only,
		"records": *records,
	}

	// finish seals and writes the manifest; it runs on every exit path
	// (completed, interrupted, failed) so a crash log always has its
	// provenance record next to it.
	finish := func(outcome string, rep *experiments.Report) {
		man.Finish(outcome)
		if rep != nil {
			man.Steps = rep.ManifestSteps()
		}
		man.AddMetrics(reg)
		man.AddTrace(tr)
		if *manifestDir == "" {
			return
		}
		path, err := man.WriteFile(*manifestDir)
		if err != nil {
			logger.Error("writing run manifest", "err", err)
			return
		}
		logger.Info("run manifest written", "path", path)
	}
	fail := func(err error) {
		logger.Error("run failed", "err", err)
		finish("failed", nil)
		os.Exit(1)
	}

	if *metricsAddr != "" {
		_, url, err := obs.Serve(*metricsAddr, reg, health)
		if err != nil {
			fail(err)
		}
		logger.Info("admin endpoints up", "url", url,
			"metrics", url+"/metrics", "readyz", url+"/readyz")
	}

	cfg := experiments.Config{
		Seed:          *seed,
		Scale:         *scale,
		PatternTarget: *target,
		PatternWindow: *window,
		Permutations:  *x,
		SampleBin:     *bin,
		FaultRate:     *faultRate,
		FaultSeed:     *faultSeed,
		Jobs:          *jobs,
		Shards:        *shards,
	}
	r := experiments.NewRunner(cfg)
	r.Instrument(reg, tr)
	r.NotifyReady(health)

	if *records != "" {
		recs, stats, err := loadRecords(ctx, *records, *jobs, reg)
		if err != nil {
			fail(fmt.Errorf("loading -records %s: %w", *records, err))
		}
		r.UseShortTermRecords(recs)
		logger.Info("short-term dataset loaded from file", "path", *records,
			"records", stats.Records, "quarantined", stats.Quarantined,
			"bytes_skipped", stats.BytesSkipped)
	}

	var stopProfiles func() error
	if *profile {
		var err error
		stopProfiles, err = obs.StartProfiles(*manifestDir, runID)
		if err != nil {
			fail(err)
		}
		logger.Info("profiling started", "dir", profileDir(*manifestDir))
	}

	logger.Info("run starting", "jobs", *jobs, "shards", *shards, "scale", *scale)
	start := time.Now()

	interrupted := false
	var report *experiments.Report
	if *only == "" {
		rep, err := r.RunAllContext(ctx, os.Stdout)
		report = rep
		switch {
		case errors.Is(err, context.Canceled):
			interrupted = true
			logger.Warn("interrupted: partial report",
				"completed", rep.Completed(), "steps", len(rep.Steps))
			fmt.Printf("\n== Interrupted: partial report (%d/%d steps) ==\n",
				rep.Completed(), len(rep.Steps))
			rep.WriteStepSummary(os.Stdout)
		case err != nil:
			finishProfiles(stopProfiles, logger)
			fail(err)
		}
		if *csvDir != "" && !interrupted {
			if err := experiments.WriteCSV(*csvDir, rep); err != nil {
				fail(err)
			}
			logger.Info("CSV series written", "dir", *csvDir)
		}
	} else {
		for _, name := range strings.Split(*only, ",") {
			if ctx.Err() != nil {
				interrupted = true
				logger.Warn("interrupted: skipping remaining experiments")
				fmt.Printf("\n== Interrupted: skipping remaining experiments ==\n")
				break
			}
			var err error
			fmt.Printf("\n== %s ==\n", name)
			switch strings.TrimSpace(strings.ToLower(name)) {
			case "fig1":
				_, err = r.Figure1(os.Stdout)
			case "table2":
				_, err = r.Table2(os.Stdout)
			case "fig3":
				_, err = r.Figure3(os.Stdout)
			case "fig4":
				_, err = r.Figure4(os.Stdout)
			case "fig5":
				_, err = r.Figure5(os.Stdout)
			case "fig6":
				_, err = r.Figure6(os.Stdout)
			case "table3":
				_, err = r.Table3(os.Stdout)
			case "prefetch":
				_, err = r.Prefetch(os.Stdout)
			case "deprioritize":
				_, err = r.Deprioritize(os.Stdout)
			case "anomaly":
				_, err = r.Anomaly(os.Stdout)
			case "regional":
				_, err = r.Regional(os.Stdout)
			case "resilience":
				_, err = r.Resilience(os.Stdout)
			case "adversarial":
				_, err = r.Adversarial(os.Stdout)
			case "fleetchaos":
				_, err = r.FleetChaos(os.Stdout)
			default:
				err = fmt.Errorf("unknown experiment %q", name)
			}
			if err != nil {
				finishProfiles(stopProfiles, logger)
				fail(err)
			}
		}
	}
	finishProfiles(stopProfiles, logger)

	if *trace {
		fmt.Println("\n== Stage trace ==")
		tr.WriteTable(os.Stdout)
	}
	if *traceOut != "" {
		writeExport(*traceOut, tr.WriteChromeTrace, "chrome trace", logger, fail)
	}
	if *spanLog != "" {
		writeExport(*spanLog, tr.WriteSpanLog, "span log", logger, fail)
	}

	outcome := "completed"
	if interrupted {
		outcome = "interrupted"
	}
	finish(outcome, report)
	logger.Info("run "+outcome, "wall", time.Since(start).Round(time.Millisecond).String())
	fmt.Fprintf(os.Stderr, "\n%s in %s\n", outcome, time.Since(start).Round(time.Millisecond))
}

// loadRecords tolerantly decodes a log file into memory for the
// experiment runner. The container format is detected by magic bytes,
// so a chunk-container file decodes on the parallel per-chunk pipeline
// regardless of its extension; records are copied out of the reused
// decode batches because the runner retains them for the whole run.
func loadRecords(ctx context.Context, path string, jobs int, reg *obs.Registry) ([]logfmt.Record, ingest.Stats, error) {
	src := &ingest.FileSource{Path: path, Ctx: ctx,
		Config: ingest.PipelineConfig{
			Workers: jobs,
			Options: ingest.Options{Metrics: ingest.NewInstrumentation(reg)},
		}}
	var recs []logfmt.Record
	err := src.Each(func(r *logfmt.Record) error {
		recs = append(recs, *r)
		return nil
	})
	return recs, src.LastStats, err
}

// newLogger builds the CLI's structured logger (debug level with -v).
func newLogger(w io.Writer, runID string, seed uint64, verbose bool) *obs.Logger {
	var level slog.Leveler
	if verbose {
		level = slog.LevelDebug
	}
	return obs.NewLogger(w, runID, seed, level)
}

// finishProfiles stops an active profile bracket, logging the outcome.
func finishProfiles(stop func() error, logger *obs.Logger) {
	if stop == nil {
		return
	}
	if err := stop(); err != nil {
		logger.Error("writing profiles", "err", err)
		return
	}
	logger.Info("profiles written")
}

// profileDir names where profiles land for the log line.
func profileDir(dir string) string {
	if dir == "" {
		return "."
	}
	return dir
}

// writeExport writes one trace export file.
func writeExport(path string, write func(io.Writer) error, kind string, logger *obs.Logger, fail func(error)) {
	f, err := os.Create(path)
	if err != nil {
		fail(fmt.Errorf("creating %s: %w", kind, err))
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		fail(fmt.Errorf("writing %s to %s: %w", kind, path, errors.Join(werr, cerr)))
	}
	logger.Info(kind+" written", "path", path)
}
