// Command jsonreplay drives a recorded log file against a live HTTP
// endpoint as an open-loop load generator: requests follow the
// recorded timeline (compressed by -speed) or a fixed -rate, latency
// is measured from each request's intended start time (coordinated-
// omission-safe), and the run can be gated on an SLO expression and
// summarized into a machine-readable replay report.
//
// Usage:
//
//	jsonreplay -i pattern.tsv.gz -target http://127.0.0.1:8080 -speed 60
//	jsonreplay -i logs.cdnb -target http://edge:8080 -rate 2000 -duration 30s \
//	    -warmup 5s -slo "p99<50ms,err<1%" -out replay-run.json
//	jsonreplay -i stream.tsv -target-file /tmp/edge.url -rate 500 -duration 10s
//
// Exit status: 0 on success, 1 on a fatal or early-stop error, 2 on
// usage errors, 3 when the run finished but violated the -slo gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/replay"
)

func main() {
	var (
		in          = flag.String("i", "", "input log file (.tsv/.jsonl/.cdnb[.gz])")
		target      = flag.String("target", "", "base URL to replay against")
		targetFile  = flag.String("target-file", "", "URL file written by a serving liveedge (-url-file); waits for it, reads the target, and probes readiness")
		speed       = flag.Float64("speed", 60, "timing compression factor for the recorded timeline")
		rate        = flag.Float64("rate", 0, "fixed open-loop arrival rate in req/s (overrides the recorded timeline; loops records under -duration)")
		duration    = flag.Duration("duration", 0, "stop scheduling after this long (0 = one pass over the records)")
		warmup      = flag.Duration("warmup", 0, "exclude requests scheduled in this initial window from the statistics")
		concurrency = flag.Int("c", 16, "max in-flight requests")
		jsonOnly    = flag.Bool("json-only", false, "replay only application/json records")
		maxReqs     = flag.Int("max", 0, "stop after this many records (0 = all)")
		sloExpr     = flag.String("slo", "", `SLO gate, e.g. "p99<50ms,err<1%,rps>500"; exit 3 on violation`)
		out         = flag.String("out", "", "write a replay report (repro/replay-report/v1) to this file, e.g. replay-$ID.json, or - for stdout")
		progress    = flag.Duration("progress", time.Second, "progress line period (0 disables)")
	)
	flag.Parse()
	if *in == "" || (*target == "" && *targetFile == "") {
		fmt.Fprintln(os.Stderr, "jsonreplay: need -i FILE and -target URL (or -target-file FILE)")
		os.Exit(2)
	}
	slo, err := replay.ParseSLO(*sloExpr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsonreplay: %v\n", err)
		os.Exit(2)
	}

	runID := obs.NewRunID()
	logger := obs.NewLogger(os.Stderr, runID, 0, nil).Component("jsonreplay")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *targetFile != "" {
		urls, err := edge.AwaitURLFile(ctx, *targetFile, 30*time.Second)
		if err != nil {
			fail("waiting for %s: %v", *targetFile, err)
		}
		*target = urls[0]
		probe := urls[0]
		if len(urls) > 1 {
			probe = urls[1] + "/readyz" // admin readiness endpoint
		}
		if err := edge.AwaitReady(ctx, probe, 30*time.Second); err != nil {
			fail("readiness probe %s: %v", probe, err)
		}
		logger.Info("target ready", "target", *target, "probe", probe)
	}

	var records []logfmt.Record
	err = core.FileSource(*in).Each(func(r *logfmt.Record) error {
		if *jsonOnly && !r.IsJSON() {
			return nil
		}
		if *maxReqs > 0 && len(records) >= *maxReqs {
			return nil
		}
		records = append(records, *r)
		return nil
	})
	if err != nil {
		fail("%v", err)
	}
	if *rate > 0 {
		logger.Info("replaying open-loop", "records", len(records), "rate", *rate,
			"duration", *duration, "warmup", *warmup, "target", *target)
	} else {
		logger.Info("replaying recorded timeline", "records", len(records), "speed", *speed,
			"warmup", *warmup, "target", *target)
	}

	cfg := replay.Config{
		Target:        *target,
		Speed:         *speed,
		Rate:          *rate,
		Concurrency:   *concurrency,
		Duration:      *duration,
		Warmup:        *warmup,
		Logger:        logger,
		ProgressEvery: *progress,
	}
	if *progress <= 0 {
		cfg.Logger = nil
	}
	res, runErr := replay.Run(ctx, records, cfg)

	printSummary(res)
	rep := replay.BuildReport(runID, *in, len(records), cfg, res, slo)
	if *out != "" {
		if err := rep.Write(*out); err != nil {
			fail("%v", err)
		}
		if *out != "-" {
			logger.Info("replay report written", "path", *out)
		}
	}

	// A run that stopped early — transport collapse or cancellation —
	// must not masquerade as a clean measurement.
	if runErr != nil {
		logger.Error("stopped early", "err", runErr, "sent", res.Sent, "dropped", res.Dropped)
		os.Exit(1)
	}
	if rep.SLO != nil && !rep.SLO.Pass {
		for _, v := range rep.SLO.Violations {
			fmt.Fprintf(os.Stderr, "jsonreplay: SLO %s\n", v)
		}
		os.Exit(3)
	}
	if rep.SLO != nil {
		logger.Info("SLO met", "expr", rep.SLO.Expr)
	}
}

func printSummary(res *replay.Result) {
	fmt.Printf("offered %d, sent %d in %s (offered %.0f rps, achieved %.0f rps), %d transport errors",
		res.Offered, res.Sent, res.Wall.Round(time.Millisecond),
		res.OfferedRPS(), res.AchievedRPS(), res.Errors)
	if res.Dropped > 0 {
		fmt.Printf(", %d dropped", res.Dropped)
	}
	fmt.Println()
	statuses := make([]int, 0, len(res.Status))
	for s := range res.Status {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Printf("  HTTP %d: %d\n", s, res.Status[s])
	}
	if res.Measured == 0 {
		return
	}
	fmt.Printf("latency over %d measured requests (intended-start / service):\n", res.Measured)
	for _, q := range obs.HDRQuantiles {
		fmt.Printf("  p%-5s %9.1fms %9.1fms\n", trimPct(q),
			float64(res.Latency.Quantile(q))/1e6, float64(res.Service.Quantile(q))/1e6)
	}
	fmt.Printf("  mean  %9.1fms %9.1fms\n", res.Latency.Mean()/1e6, res.Service.Mean()/1e6)
}

// trimPct renders 0.999 as "99.9", 0.5 as "50".
func trimPct(q float64) string {
	s := fmt.Sprintf("%g", q*100)
	return s
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsonreplay: "+format+"\n", args...)
	os.Exit(1)
}
