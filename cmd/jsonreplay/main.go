// Command jsonreplay drives a recorded log file against a live HTTP
// endpoint, preserving methods, paths, and user agents while compressing
// the original timing — a load generator shaped like real (or synthetic)
// CDN traffic.
//
// Usage:
//
//	jsonreplay -i pattern.tsv.gz -target http://127.0.0.1:8080 -speed 60
//	jsonreplay -i logs.cdnb -target http://edge:8080 -json-only -max 10000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/replay"
)

func main() {
	var (
		in          = flag.String("i", "", "input log file (.tsv/.jsonl/.cdnb[.gz])")
		target      = flag.String("target", "", "base URL to replay against")
		speed       = flag.Float64("speed", 60, "timing compression factor")
		concurrency = flag.Int("c", 16, "max in-flight requests")
		jsonOnly    = flag.Bool("json-only", false, "replay only application/json records")
		maxReqs     = flag.Int("max", 0, "stop after this many records (0 = all)")
	)
	flag.Parse()
	if *in == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "jsonreplay: need -i FILE and -target URL")
		os.Exit(2)
	}

	var records []logfmt.Record
	err := core.FileSource(*in).Each(func(r *logfmt.Record) error {
		if *jsonOnly && !r.IsJSON() {
			return nil
		}
		if *maxReqs > 0 && len(records) >= *maxReqs {
			return nil
		}
		records = append(records, *r)
		return nil
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "replaying %d records at %gx against %s\n", len(records), *speed, *target)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := replay.Run(ctx, records, replay.Config{
		Target:      *target,
		Speed:       *speed,
		Concurrency: *concurrency,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsonreplay: stopped early: %v\n", err)
	}

	fmt.Printf("sent %d requests in %s (%.0f rps), %d transport errors\n",
		res.Sent, res.Wall.Round(time.Millisecond),
		float64(res.Sent)/res.Wall.Seconds(), res.Errors)
	for status, n := range res.Status {
		fmt.Printf("  HTTP %d: %d\n", status, n)
	}
	if res.Latency.N() > 0 {
		fmt.Printf("latency mean %.1fms max %.1fms\n",
			res.Latency.Mean()*1e3, res.Latency.Max()*1e3)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "jsonreplay: %v\n", err)
	os.Exit(1)
}
