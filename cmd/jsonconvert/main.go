// Command jsonconvert transcodes CDN log files between the supported
// encodings (TSV, JSON Lines, binary, and the compressed chunk
// container; the text and binary formats optionally gzipped), with
// optional filtering. Container inputs are detected by magic bytes, so
// a mislabeled file still decodes; the output encoding follows the -o
// extension (.cdnc selects the chunk container with its default codec).
//
// Usage:
//
//	jsonconvert -i logs.tsv.gz -o logs.cdnb.gz
//	jsonconvert -i logs.tsv.gz -o logs.cdnc   # recompress into chunks
//	jsonconvert -i logs.cdnc -o - -json-only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/logfmt"
)

func main() {
	var (
		in       = flag.String("i", "", "input log file (.tsv/.jsonl/.cdnb[.gz] or .cdnc)")
		out      = flag.String("o", "-", "output path or - for TSV on stdout")
		jsonOnly = flag.Bool("json-only", false, "keep only application/json records")
		host     = flag.String("host", "", "keep only records for this domain")
		quiet    = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "jsonconvert: need -i FILE")
		os.Exit(2)
	}

	rd, rcloser, err := logfmt.OpenFile(*in)
	if err != nil {
		fail(err)
	}
	defer rcloser.Close()

	var w logfmt.RecordWriter
	var finish func() error
	if *out == "-" {
		sw := logfmt.NewWriter(os.Stdout, logfmt.FormatTSV)
		w, finish = sw, sw.Close
	} else {
		fw, wcloser, err := logfmt.CreateFile(*out)
		if err != nil {
			fail(err)
		}
		w = fw
		finish = func() error {
			if err := fw.Close(); err != nil {
				wcloser.Close()
				return err
			}
			return wcloser.Close()
		}
	}

	var filter logfmt.Filter = func(*logfmt.Record) bool { return true }
	if *jsonOnly {
		filter = logfmt.And(filter, logfmt.JSONOnly)
	}
	if *host != "" {
		filter = logfmt.And(filter, logfmt.HostIs(*host))
	}

	start := time.Now()
	var kept, seen int64
	err = rd.ForEach(func(r *logfmt.Record) error {
		seen++
		if !filter(r) {
			return nil
		}
		kept++
		return w.Write(r)
	})
	if err != nil {
		fail(err)
	}
	if err := finish(); err != nil {
		fail(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "jsonconvert: %d/%d records in %s\n",
			kept, seen, time.Since(start).Round(time.Millisecond))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "jsonconvert: %v\n", err)
	os.Exit(1)
}
