package main

import (
	"math"
	"testing"
)

func TestParseBenchExtraMetrics(t *testing.T) {
	out := `goos: linux
BenchmarkDecodeBinarySeq-8   	     50	  2000000 ns/op	 350.00 MB/s	  122.60 disk-B/rec	 3000000 records/s	 100 B/op	 5 allocs/op
BenchmarkDecodeChunkSeq/codec=raw-8  	 100	  1000000 ns/op	  46.70 disk-B/rec	 7000000 records/s	 90 B/op	 4 allocs/op
PASS
`
	bs := parseBench("./internal/ingest", out)
	if len(bs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(bs))
	}
	b := bs[0]
	if b.Name != "BenchmarkDecodeBinarySeq" {
		t.Fatalf("name = %q", b.Name)
	}
	if b.NsPerOp != 2000000 || b.BPerOp != 100 || b.Allocs != 5 {
		t.Errorf("standard units misparsed: %+v", b)
	}
	if got := b.Extra["records/s"]; got != 3000000 {
		t.Errorf("records/s = %v, want 3000000", got)
	}
	if got := b.Extra["disk-B/rec"]; got != 122.60 {
		t.Errorf("disk-B/rec = %v, want 122.60", got)
	}
	if _, ok := b.Extra["MB/s"]; ok {
		t.Error("MB/s captured; it duplicates ns/op+SetBytes and should be skipped")
	}
	if got := bs[1].Name; got != "BenchmarkDecodeChunkSeq/codec=raw" {
		t.Errorf("sub-benchmark name = %q (GOMAXPROCS suffix not trimmed?)", got)
	}
}

func xbm(name string, extra map[string]float64) Benchmark {
	return Benchmark{Package: "./internal/ingest", Name: name, Iters: 10,
		NsPerOp: 1, Extra: extra}
}

func TestChunkDecodeSummary(t *testing.T) {
	bs := []Benchmark{
		// Two -count runs of the baseline: means, not first-wins.
		xbm("BenchmarkDecodeBinarySeq", map[string]float64{"records/s": 2.8e6, "disk-B/rec": 122.6}),
		xbm("BenchmarkDecodeBinarySeq", map[string]float64{"records/s": 3.2e6, "disk-B/rec": 122.6}),
		xbm("BenchmarkDecodeChunkSeq/codec=raw", map[string]float64{"records/s": 7.0e6, "disk-B/rec": 46.7}),
		xbm("BenchmarkDecodeChunkSeq/codec=flate", map[string]float64{"records/s": 2.0e6, "disk-B/rec": 15.3}),
		xbm("BenchmarkDecodeChunkParallel/codec=raw", map[string]float64{"records/s": 7.5e6, "disk-B/rec": 46.7}),
	}
	cd := chunkDecodeSummary(bs)
	if cd == nil {
		t.Fatal("summary nil with all decode benchmarks present")
	}
	if math.Abs(cd.BinarySeqRecordsPerSec-3.0e6) > 1 {
		t.Errorf("binary mean = %v, want 3.0e6", cd.BinarySeqRecordsPerSec)
	}
	if math.Abs(cd.ChunkParSpeedupVsBinary-2.5) > 0.01 {
		t.Errorf("speedup = %v, want 2.5", cd.ChunkParSpeedupVsBinary)
	}
	if math.Abs(cd.ChunkBytesRatio-15.3/122.6) > 1e-9 {
		t.Errorf("bytes ratio = %v, want %v", cd.ChunkBytesRatio, 15.3/122.6)
	}

	// A -bench filter that drops the decode benchmarks must yield nil so
	// the gates skip instead of failing on zeros.
	if cd := chunkDecodeSummary(bs[:2]); cd != nil {
		t.Errorf("summary = %+v, want nil without chunk benchmarks", cd)
	}
}
