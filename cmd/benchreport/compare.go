package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// This file is the bench regression gate: given a baseline benchreport
// JSON, compare each benchmark's mean ns/op against it and fail the run
// when anything slows down by more than the allowed fraction. The
// comparison is by benchmark name (GOMAXPROCS suffix already trimmed),
// means taken over the -count repetitions on both sides.

// Delta compares one benchmark's mean ns/op against the baseline.
type Delta struct {
	Name        string  `json:"name"`
	BaseNsPerOp float64 `json:"base_ns_per_op"`
	NewNsPerOp  float64 `json:"new_ns_per_op"`
	// Ratio is new/base: 1.0 unchanged, >1 slower, <1 faster.
	Ratio float64 `json:"ratio"`
}

// Regressed reports whether the delta exceeds the allowed fractional
// regression (0.20 allows up to 20% slower).
func (d Delta) Regressed(maxRegress float64) bool {
	return d.Ratio > 1+maxRegress
}

// compareBenchmarks computes per-benchmark deltas between a baseline's
// entries and the current run's, in the current run's order. Benchmarks
// present on only one side are skipped — a renamed or new benchmark is
// not a regression.
func compareBenchmarks(base, cur []Benchmark) []Delta {
	var out []Delta
	for _, name := range orderedNames(cur) {
		b, n := meanNs(base, name), meanNs(cur, name)
		if b <= 0 || n <= 0 {
			continue
		}
		out = append(out, Delta{Name: name, BaseNsPerOp: b, NewNsPerOp: n, Ratio: n / b})
	}
	return out
}

// orderedNames returns the distinct benchmark names in first-seen order.
func orderedNames(bs []Benchmark) []string {
	seen := make(map[string]bool)
	var names []string
	for _, b := range bs {
		if !seen[b.Name] {
			seen[b.Name] = true
			names = append(names, b.Name)
		}
	}
	return names
}

// regressions filters deltas exceeding maxRegress.
func regressions(deltas []Delta, maxRegress float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed(maxRegress) {
			out = append(out, d)
		}
	}
	return out
}

// readBaseline loads and validates a benchreport JSON document.
func readBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if !strings.HasPrefix(rep.Schema, "repro/benchreport/") {
		return nil, fmt.Errorf("%s: schema %q is not a benchreport document", path, rep.Schema)
	}
	return &rep, nil
}

// writeDeltaSummary prints one line per delta, flagging regressions.
func writeDeltaSummary(deltas []Delta, maxRegress float64) {
	for _, d := range deltas {
		mark := " "
		switch {
		case d.Regressed(maxRegress):
			mark = "!"
		case d.Ratio < 1-maxRegress:
			mark = "+"
		}
		fmt.Fprintf(os.Stderr, "benchreport: %s %-40s %12.0f -> %12.0f ns/op  (%.2fx)\n",
			mark, d.Name, d.BaseNsPerOp, d.NewNsPerOp, d.Ratio)
	}
}
