package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func bm(name string, ns float64) Benchmark {
	return Benchmark{Package: "./internal/x", Name: name, Iters: 100, NsPerOp: ns}
}

func TestCompareBenchmarks(t *testing.T) {
	base := []Benchmark{
		bm("BenchmarkFast", 100), bm("BenchmarkFast", 110), // mean 105
		bm("BenchmarkSlow", 1000),
		bm("BenchmarkGone", 42),
	}
	cur := []Benchmark{
		bm("BenchmarkFast", 105), // 1.0x
		bm("BenchmarkSlow", 1300),
		bm("BenchmarkNew", 7), // not in base: skipped
	}
	deltas := compareBenchmarks(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	if deltas[0].Name != "BenchmarkFast" || deltas[1].Name != "BenchmarkSlow" {
		t.Fatalf("delta order = %q, %q", deltas[0].Name, deltas[1].Name)
	}
	if r := deltas[0].Ratio; r < 0.99 || r > 1.01 {
		t.Errorf("Fast ratio = %.3f, want ~1.0", r)
	}
	if r := deltas[1].Ratio; r < 1.29 || r > 1.31 {
		t.Errorf("Slow ratio = %.3f, want ~1.3", r)
	}

	if deltas[0].Regressed(0.20) {
		t.Error("unchanged benchmark flagged as regressed")
	}
	if !deltas[1].Regressed(0.20) {
		t.Error("30%% slower benchmark not flagged at 20%% budget")
	}
	if deltas[1].Regressed(0.35) {
		t.Error("30%% slower benchmark flagged at 35%% budget")
	}

	bad := regressions(deltas, 0.20)
	if len(bad) != 1 || bad[0].Name != "BenchmarkSlow" {
		t.Errorf("regressions = %+v, want just BenchmarkSlow", bad)
	}
}

func TestCompareImprovementNotRegression(t *testing.T) {
	// A doctored baseline with a 2x-faster entry makes the current run
	// look 2x slower — exactly what the gate must catch.
	base := []Benchmark{bm("BenchmarkX", 500)}
	cur := []Benchmark{bm("BenchmarkX", 1000)}
	deltas := compareBenchmarks(base, cur)
	if len(deltas) != 1 || !deltas[0].Regressed(0.20) {
		t.Fatalf("2x slowdown not flagged: %+v", deltas)
	}

	// The mirror image — current run 2x faster — must pass.
	deltas = compareBenchmarks(cur, base)
	if deltas[0].Regressed(0.20) {
		t.Errorf("2x speedup flagged as regression: %+v", deltas)
	}
}

func TestReadBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "bench.json")
	rep := Report{Schema: "repro/benchreport/v1", Benchmarks: []Benchmark{bm("BenchmarkX", 10)}}
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(good)
	if err != nil {
		t.Fatalf("readBaseline: %v", err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Name != "BenchmarkX" {
		t.Errorf("baseline round-trip lost benchmarks: %+v", got.Benchmarks)
	}

	bad := filepath.Join(dir, "other.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"something/else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(bad); err == nil {
		t.Error("foreign schema accepted as baseline")
	}
	if _, err := readBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline file accepted")
	}
}
