// Command benchreport runs the repo's benchmark suite and writes a
// machine-readable JSON baseline (BENCH_*.json) so perf regressions
// show up as diffs rather than anecdotes.
//
// It shells out to `go test -bench` over the performance-critical
// packages — synth generation, the experiment scheduler, n-gram
// prediction, the DSP kernels, the log codecs, and the ingest
// pipeline — parses the standard benchmark output lines, and emits one
// JSON document with ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units (records/s, disk-B/rec) per benchmark, plus two
// derived headlines: the sequential-vs-parallel RunAll speedup and the
// chunk-container decode comparison (records/sec and bytes-per-record
// vs the binary baseline, gated by -min-chunk-speedup and
// -max-chunk-bytes-ratio).
//
// Usage:
//
//	go run ./cmd/benchreport -count 3 -out BENCH_1.json
//	go run ./cmd/benchreport -benchtime 0.5s -bench 'RunAll' -out -
//	go run ./cmd/benchreport -count 3 -replay out/replay-slo.json -out BENCH_1.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/replay"
)

// packages are the benchmark targets, in report order.
var packages = []string{
	"./internal/synth",
	"./internal/experiments",
	"./internal/ngram",
	"./internal/dsp",
	"./internal/logfmt",
	"./internal/ingest",
	"./internal/livechar",
}

// Benchmark is one parsed `go test -bench` result line. Repeated
// -count runs of the same benchmark appear as separate entries.
type Benchmark struct {
	Package string  `json:"package"`
	Name    string  `json:"name"`
	Iters   int64   `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
	BPerOp  float64 `json:"bytes_per_op,omitempty"`
	Allocs  float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "records/s",
	// "disk-B/rec" from the decode benchmarks), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the JSON document benchreport emits.
type Report struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Count      int         `json:"count"`
	BenchTime  string      `json:"benchtime"`
	Generated  string      `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`

	// Derived RunAll numbers (means over the -count runs); the speedup
	// is the headline the scheduler work is judged by. On a single-core
	// runner it sits near 1.0 — regenerate on a multi-core machine.
	RunAllSequentialNs float64 `json:"runall_sequential_ns,omitempty"`
	RunAllParallelNs   float64 `json:"runall_parallel_ns,omitempty"`
	RunAllSpeedup      float64 `json:"runall_speedup,omitempty"`

	// ChunkDecode compares the chunk-container decode path against the
	// sequential binary baseline (means over the -count runs) — the
	// numbers the log-container work is judged by. Records/sec uses the
	// raw codec (decode cost without decompression); bytes-per-record
	// uses flate (the on-disk default).
	ChunkDecode *DecodeSummary `json:"chunk_decode,omitempty"`

	// LiveChar compares the edge serve path with the live
	// characterization tap attached against the plain path — the cost
	// of -livechar, gated by -max-livechar-overhead. Like the RunAll
	// speedup, only meaningful on a multi-core runner: at GOMAXPROCS=1
	// the tap's consumer cannot overlap the request path and the
	// measurement is the tap's entire CPU cost, not the serve latency.
	LiveChar *LiveCharSummary `json:"livechar,omitempty"`

	// Baseline and Deltas are set when the run compared against a prior
	// report (-baseline): one Delta per benchmark present in both.
	Baseline string  `json:"baseline,omitempty"`
	Deltas   []Delta `json:"deltas,omitempty"`

	// Replay folds the headline numbers from a jsonreplay report
	// (-replay), putting end-to-end load-harness results next to the
	// micro-benchmarks in one baseline document.
	Replay *ReplaySummary `json:"replay,omitempty"`
}

// ReplaySummary is the end-to-end slice of a replay report: throughput,
// the coordinated-omission-safe tail, and the error budget.
type ReplaySummary struct {
	Source       string  `json:"source"`
	RunID        string  `json:"run_id,omitempty"`
	AchievedRPS  float64 `json:"achieved_rps"`
	OfferedRPS   float64 `json:"offered_rps,omitempty"`
	IntendedP50  float64 `json:"intended_p50_ms"`
	IntendedP99  float64 `json:"intended_p99_ms"`
	IntendedP999 float64 `json:"intended_p999_ms"`
	ServiceP99   float64 `json:"service_p99_ms"`
	ErrorRate    float64 `json:"error_rate"`
	SLOPass      *bool   `json:"slo_pass,omitempty"`
}

// LiveCharSummary is the derived edge-path cost of the live
// characterization tap.
type LiveCharSummary struct {
	EdgeBaselineNs float64 `json:"edge_baseline_ns"`
	EdgeLiveCharNs float64 `json:"edge_livechar_ns"`
	// Overhead is the fractional serve-path slowdown with the tap on
	// (0.03 = 3% slower).
	Overhead float64 `json:"overhead"`
	// DropRate is the tap's shed fraction during the benchmark — a low
	// Overhead bought by dropping events would show up here.
	DropRate float64 `json:"drop_rate"`
}

// DecodeSummary is the derived cross-format decode comparison.
type DecodeSummary struct {
	BinarySeqRecordsPerSec  float64 `json:"binary_seq_records_per_sec"`
	ChunkSeqRecordsPerSec   float64 `json:"chunk_seq_records_per_sec"`
	ChunkParRecordsPerSec   float64 `json:"chunk_par_records_per_sec"`
	ChunkParSpeedupVsBinary float64 `json:"chunk_par_speedup_vs_binary"`
	BinaryBytesPerRecord    float64 `json:"binary_bytes_per_record"`
	ChunkBytesPerRecord     float64 `json:"chunk_bytes_per_record"`
	ChunkBytesRatio         float64 `json:"chunk_bytes_ratio"`
}

func main() {
	var (
		count      = flag.Int("count", 3, "benchmark repetitions (go test -count)")
		benchtime  = flag.String("benchtime", "", "per-benchmark budget (go test -benchtime), e.g. 0.5s or 10x")
		bench      = flag.String("bench", ".", "benchmark name filter (go test -bench)")
		out        = flag.String("out", "BENCH_1.json", "output file, or - for stdout")
		baseline   = flag.String("baseline", "", "compare mean ns/op against this prior benchreport JSON and exit non-zero on regressions")
		maxRegress = flag.Float64("max-regress", 0.20, "allowed fractional ns/op regression against -baseline (0.20 = 20% slower)")
		replayPath = flag.String("replay", "", "fold the headline numbers from this jsonreplay report (replay-*.json) into the output; skipped with a notice if missing")

		minSpeedup  = flag.Float64("min-chunk-speedup", 0, "fail unless parallel chunk decode records/sec is at least this multiple of the sequential binary reader (0 disables; gate skipped when the decode benchmarks were filtered out)")
		maxSizeRate = flag.Float64("max-chunk-bytes-ratio", 0, "fail unless compressed chunk bytes-per-record is at most this fraction of the binary format's (0 disables; gate skipped when the decode benchmarks were filtered out)")

		maxCharOverhead = flag.Float64("max-livechar-overhead", 0, "fail if the live-characterization tap slows the edge serve path by more than this fraction (0 disables; gate skipped at GOMAXPROCS=1, where the tap's consumer cannot overlap the request path, and when the edge benchmarks were filtered out)")
	)
	flag.Parse()
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "benchreport: -count must be >= 1")
		os.Exit(2)
	}

	rep := Report{
		Schema:     "repro/benchreport/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Count:      *count,
		BenchTime:  *benchtime,
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}

	for _, pkg := range packages {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-count", strconv.Itoa(*count)}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		args = append(args, pkg)
		fmt.Fprintf(os.Stderr, "benchreport: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n%s", pkg, err, buf.String())
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, parseBench(pkg, buf.String())...)
	}

	seq := meanNs(rep.Benchmarks, "BenchmarkRunAllSequential")
	par := meanNs(rep.Benchmarks, "BenchmarkRunAllParallel")
	rep.RunAllSequentialNs = seq
	rep.RunAllParallelNs = par
	if seq > 0 && par > 0 {
		rep.RunAllSpeedup = seq / par
	}

	rep.ChunkDecode = chunkDecodeSummary(rep.Benchmarks)
	rep.LiveChar = liveCharSummary(rep.Benchmarks)

	if *replayPath != "" {
		sum, err := foldReplay(*replayPath)
		switch {
		case err != nil && os.IsNotExist(err):
			// A missing replay report is advisory, not fatal: bench runs
			// predate slo-check and must keep working without one.
			fmt.Fprintf(os.Stderr, "benchreport: no replay report at %s; skipping fold\n", *replayPath)
		case err != nil:
			fmt.Fprintf(os.Stderr, "benchreport: replay: %v\n", err)
			os.Exit(1)
		default:
			rep.Replay = sum
			fmt.Fprintf(os.Stderr, "benchreport: folded %s (%.0f rps, intended p99 %.1fms, err %.2f%%)\n",
				*replayPath, sum.AchievedRPS, sum.IntendedP99, sum.ErrorRate*100)
		}
	}

	var basRep *Report
	if *baseline != "" {
		var err error
		basRep, err = readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: baseline: %v\n", err)
			os.Exit(1)
		}
		rep.Baseline = *baseline
		rep.Deltas = compareBenchmarks(basRep.Benchmarks, rep.Benchmarks)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchreport: wrote %d benchmarks to %s (runall speedup %.2fx at GOMAXPROCS=%d)\n",
			len(rep.Benchmarks), *out, rep.RunAllSpeedup, rep.GOMAXPROCS)
	}

	// The regression gate: any benchmark whose mean ns/op exceeds the
	// baseline by more than -max-regress fails the run.
	if basRep != nil {
		writeDeltaSummary(rep.Deltas, *maxRegress)
		if bad := regressions(rep.Deltas, *maxRegress); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL: %d of %d benchmarks regressed more than %.0f%% vs %s\n",
				len(bad), len(rep.Deltas), *maxRegress*100, *baseline)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchreport: ok: %d benchmarks within %.0f%% of %s\n",
			len(rep.Deltas), *maxRegress*100, *baseline)
	}

	// The chunk-container gates: absolute floors on the decode summary
	// rather than deltas, so a fresh machine with no baseline still
	// enforces the container's reason to exist.
	if cd := rep.ChunkDecode; cd != nil {
		fmt.Fprintf(os.Stderr, "benchreport: chunk decode: par %.2fx binary (%.2fM vs %.2fM rec/s), %.1f B/rec = %.3fx binary\n",
			cd.ChunkParSpeedupVsBinary, cd.ChunkParRecordsPerSec/1e6,
			cd.BinarySeqRecordsPerSec/1e6, cd.ChunkBytesPerRecord, cd.ChunkBytesRatio)
		if *minSpeedup > 0 && cd.ChunkParSpeedupVsBinary < *minSpeedup {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL: parallel chunk decode %.2fx binary, want >= %.2fx\n",
				cd.ChunkParSpeedupVsBinary, *minSpeedup)
			os.Exit(1)
		}
		if *maxSizeRate > 0 && cd.ChunkBytesRatio > *maxSizeRate {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL: chunk bytes-per-record %.3fx binary, want <= %.3fx\n",
				cd.ChunkBytesRatio, *maxSizeRate)
			os.Exit(1)
		}
	} else if *minSpeedup > 0 || *maxSizeRate > 0 {
		fmt.Fprintln(os.Stderr, "benchreport: chunk decode benchmarks absent; skipping chunk gates")
	}

	// The livechar gate: the tap must not slow the edge serve path by
	// more than -max-livechar-overhead. The comparison needs a spare
	// core for the tap's consumer, so at GOMAXPROCS=1 the number is
	// reported but not gated (same caveat as the RunAll speedup).
	if lc := rep.LiveChar; lc != nil {
		fmt.Fprintf(os.Stderr, "benchreport: livechar tap: edge %.0f -> %.0f ns/op (%+.1f%%), drop rate %.3f\n",
			lc.EdgeBaselineNs, lc.EdgeLiveCharNs, lc.Overhead*100, lc.DropRate)
		if *maxCharOverhead > 0 {
			switch {
			case rep.GOMAXPROCS == 1:
				fmt.Fprintln(os.Stderr, "benchreport: single-core runner; skipping livechar overhead gate (re-run on a multi-core machine to gate)")
			case lc.Overhead > *maxCharOverhead:
				fmt.Fprintf(os.Stderr, "benchreport: FAIL: livechar tap adds %.1f%% to the edge path, want <= %.1f%%\n",
					lc.Overhead*100, *maxCharOverhead*100)
				os.Exit(1)
			}
		}
	} else if *maxCharOverhead > 0 {
		fmt.Fprintln(os.Stderr, "benchreport: edge livechar benchmarks absent; skipping livechar gate")
	}
}

// liveCharSummary derives the edge-path tap cost from the
// baseline/with-tap benchmark pair in internal/livechar; nil when they
// weren't in the run.
func liveCharSummary(bs []Benchmark) *LiveCharSummary {
	lc := &LiveCharSummary{
		EdgeBaselineNs: meanNs(bs, "BenchmarkEdgeServeBaseline"),
		EdgeLiveCharNs: meanNs(bs, "BenchmarkEdgeWithLiveChar"),
		DropRate:       meanExtra(bs, "BenchmarkEdgeWithLiveChar", "drop-rate"),
	}
	if lc.EdgeBaselineNs == 0 || lc.EdgeLiveCharNs == 0 {
		return nil
	}
	lc.Overhead = lc.EdgeLiveCharNs/lc.EdgeBaselineNs - 1
	return lc
}

// chunkDecodeSummary derives the cross-format decode comparison from
// the custom records/s and disk-B/rec metrics the Decode benchmarks
// report; nil when they weren't in the run (e.g. filtered by -bench).
func chunkDecodeSummary(bs []Benchmark) *DecodeSummary {
	cd := &DecodeSummary{
		BinarySeqRecordsPerSec: meanExtra(bs, "BenchmarkDecodeBinarySeq", "records/s"),
		ChunkSeqRecordsPerSec:  meanExtra(bs, "BenchmarkDecodeChunkSeq/codec=raw", "records/s"),
		ChunkParRecordsPerSec:  meanExtra(bs, "BenchmarkDecodeChunkParallel/codec=raw", "records/s"),
		BinaryBytesPerRecord:   meanExtra(bs, "BenchmarkDecodeBinarySeq", "disk-B/rec"),
		ChunkBytesPerRecord:    meanExtra(bs, "BenchmarkDecodeChunkSeq/codec=flate", "disk-B/rec"),
	}
	if cd.BinarySeqRecordsPerSec == 0 || cd.ChunkParRecordsPerSec == 0 {
		return nil
	}
	cd.ChunkParSpeedupVsBinary = cd.ChunkParRecordsPerSec / cd.BinarySeqRecordsPerSec
	if cd.BinaryBytesPerRecord > 0 {
		cd.ChunkBytesRatio = cd.ChunkBytesPerRecord / cd.BinaryBytesPerRecord
	}
	return cd
}

// parseBench extracts Benchmark entries from `go test -bench` output.
// A result line looks like:
//
//	BenchmarkGenerate-8   	     100	  11963 ns/op	 2096 B/op	  4 allocs/op
func parseBench(pkg, out string) []Benchmark {
	var res []Benchmark
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Package: pkg, Name: trimProcSuffix(fields[0]), Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BPerOp = v
			case "allocs/op":
				b.Allocs = v
			case "MB/s":
				// Redundant with ns/op given SetBytes; skip the noise.
			default:
				// Custom b.ReportMetric units (records/s, disk-B/rec, ...).
				if b.Extra == nil {
					b.Extra = make(map[string]float64)
				}
				b.Extra[unit] = v
			}
		}
		if b.NsPerOp > 0 {
			res = append(res, b)
		}
	}
	return res
}

// trimProcSuffix drops the -N GOMAXPROCS suffix go test appends to
// benchmark names, so baselines from different machines line up.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// foldReplay reads a jsonreplay report and condenses it into the
// ReplaySummary embedded in the bench baseline.
func foldReplay(path string) (*ReplaySummary, error) {
	rep, err := replay.ReadReport(path)
	if err != nil {
		return nil, err
	}
	sum := &ReplaySummary{
		Source:      path,
		RunID:       rep.RunID,
		AchievedRPS: rep.Throughput.AchievedRPS,
		OfferedRPS:  rep.Throughput.OfferedRPS,
		ErrorRate:   rep.Errors.Rate,
	}
	for _, row := range rep.Latency.Rows {
		switch row.Quantile {
		case 0.50:
			sum.IntendedP50 = row.IntendedMs
		case 0.99:
			sum.IntendedP99 = row.IntendedMs
			sum.ServiceP99 = row.ServiceMs
		case 0.999:
			sum.IntendedP999 = row.IntendedMs
		}
	}
	if rep.SLO != nil {
		pass := rep.SLO.Pass
		sum.SLOPass = &pass
	}
	return sum, nil
}

// meanNs averages ns/op over every entry named name.
func meanNs(bs []Benchmark, name string) float64 {
	var sum float64
	var n int
	for _, b := range bs {
		if b.Name == name {
			sum += b.NsPerOp
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// meanExtra averages the custom metric unit over every entry named name.
func meanExtra(bs []Benchmark, name, unit string) float64 {
	var sum float64
	var n int
	for _, b := range bs {
		if b.Name == name {
			if v, ok := b.Extra[unit]; ok {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
