// Command jsonchar runs the §4 characterization over a log file (or a
// freshly generated dataset): traffic sources by device (Fig. 3),
// browser vs non-browser shares, request methods, response sizes, and
// the per-category cacheability heatmap (Fig. 4).
//
// Usage:
//
//	jsonchar -i logs.tsv.gz
//	jsonchar -i logs.cdnb -max-error-rate 0.1 -dead-letter bad.jsonl
//	jsonchar -synth -scale 0.002
//	jsonchar -synth -shards 8         # shard generation across 8 goroutines
//	jsonchar -i logs.tsv.gz -j 4      # cap text-format decode workers
//	jsonchar -synth -trace -metrics-addr :9090
//
// File input goes through the tolerant ingest path: malformed records
// are quarantined (optionally to a -dead-letter JSONL file) and the
// run survives as long as the corrupt fraction stays under
// -max-error-rate. SIGINT/SIGTERM stops ingest early but still prints
// the characterization of what was read.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/domaincat"
	"repro/internal/ingest"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/rollup"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/uastring"
)

func main() {
	var (
		in          = flag.String("i", "", "input log file (.tsv/.jsonl/.cdnb[.gz])")
		useSynth    = flag.Bool("synth", false, "characterize a freshly generated short-term dataset")
		scale       = flag.Float64("scale", 0.002, "scale for -synth")
		seed        = flag.Uint64("seed", 42, "seed for -synth")
		jobs        = flag.Int("j", runtime.GOMAXPROCS(0), "decode workers for file ingest of the text formats")
		shards      = flag.Int("shards", 1, "generation shards for -synth: 1 reproduces the historical stream; N > 1 generates on N goroutines (deterministic per seed+shards)")
		topApps     = flag.Int("top-apps", 10, "how many applications to list")
		maxErrRate  = flag.Float64("max-error-rate", 0.05, "abort file ingest when more than this fraction of records is corrupt")
		deadLetter  = flag.String("dead-letter", "", "append quarantined record spans to this JSONL file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :9090) while running")
		trace       = flag.Bool("trace", false, "print a per-stage span table after the run")
	)
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "jsonchar: -j must be >= 1")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "jsonchar: -shards must be >= 1")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancels ingest between records; the report over the
	// records read so far still prints and the process exits 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *obs.Registry
	var tr *obs.Trace
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		_, url, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsonchar: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics at %s/metrics\n", url)
	}
	if *trace {
		tr = obs.NewTrace()
	}

	var src core.Source
	var fileSrc *ingest.FileSource
	switch {
	case *useSynth:
		cfg := synth.ShortTermConfig(*seed, *scale)
		cfg.Shards = *shards
		cfg.Obs = reg
		src = core.SynthSource(cfg)
	case *in != "":
		opts := ingest.Options{
			MaxErrorRate: *maxErrRate,
			Metrics:      ingest.NewInstrumentation(reg),
		}
		if *deadLetter != "" {
			dl, err := os.OpenFile(*deadLetter, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "jsonchar: %v\n", err)
				os.Exit(1)
			}
			defer dl.Close()
			opts.DeadLetter = ingest.NewDeadLetter(dl)
			defer opts.DeadLetter.Flush()
		}
		fileSrc = &ingest.FileSource{Path: *in, Ctx: ctx,
			Config: ingest.PipelineConfig{Workers: *jobs, Options: opts}}
		src = fileSrc
	default:
		fmt.Fprintln(os.Stderr, "jsonchar: need -i FILE or -synth")
		os.Exit(2)
	}

	char := taxonomy.NewCharacterization()
	cacheability := taxonomy.NewDomainCacheability(domaincat.NewCatalog())
	hourly := rollup.New(time.Hour)
	fine := rollup.New(10 * time.Minute)
	sp := tr.Start("ingest + characterize")
	err := src.Each(func(r *logfmt.Record) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp.AddRecords(1)
		sp.AddBytes(r.Bytes)
		char.ObserveAny(r)
		hourly.Observe(r)
		fine.Observe(r)
		if r.IsJSON() {
			cacheability.Observe(r)
		}
		return nil
	})
	sp.End()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "jsonchar: interrupted — reporting partial results")
	} else if err != nil {
		fmt.Fprintf(os.Stderr, "jsonchar: %v\n", err)
		os.Exit(1)
	}
	if fileSrc != nil {
		if st := fileSrc.LastStats; st.Quarantined > 0 {
			fmt.Fprintf(os.Stderr,
				"jsonchar: quarantined %d of %d records (%.2f%% corrupt, %d resyncs, %d bytes skipped)\n",
				st.Quarantined, st.Records+st.Quarantined, st.ErrorRate()*100,
				st.Resyncs, st.BytesSkipped)
		}
	}
	if char.Total == 0 {
		fmt.Fprintln(os.Stderr, "jsonchar: no application/json records in input")
		os.Exit(1)
	}

	fmt.Printf("JSON requests: %d\n\n", char.Total)

	fmt.Println("Figure 2: JSON traffic taxonomy (measured shares in brackets):")
	fmt.Print(taxonomy.Figure2Tree(char))
	fmt.Println()

	fmt.Println("Traffic source (share of JSON requests, Fig. 3):")
	devices := []uastring.DeviceType{uastring.DeviceMobile, uastring.DeviceUnknown,
		uastring.DeviceEmbedded, uastring.DeviceDesktop}
	labels := make([]string, len(devices))
	values := make([]float64, len(devices))
	for i, d := range devices {
		labels[i] = d.String()
		values[i] = char.DeviceShare(d)
	}
	fmt.Print(stats.BarChart(labels, values, 50))
	fmt.Printf("non-browser traffic: %s   mobile-browser: %s\n\n",
		stats.Percent(char.NonBrowserShare()), stats.Percent(char.MobileBrowserShare()))

	fmt.Printf("Top applications:\n")
	for _, kv := range char.Apps.TopK(*topApps) {
		fmt.Printf("  %-24s %d\n", kv.Key, kv.Count)
	}
	fmt.Println()

	fmt.Println("Request type:")
	fmt.Printf("  GET (download): %s   POST of remainder: %s\n\n",
		stats.Percent(char.GETShare()), stats.Percent(char.POSTShareOfRest()))

	fmt.Println("Response type:")
	j50, j75, h50, h75 := char.SizeQuantiles()
	fmt.Printf("  JSON size p50/p75: %.0f/%.0f B", j50, j75)
	if h50 > 0 {
		fmt.Printf("   (HTML: %.0f/%.0f B; JSON %s and %s smaller)",
			h50, h75, stats.Percent(1-j50/h50), stats.Percent(1-j75/h75))
	}
	fmt.Println()
	fmt.Printf("  uncacheable: %s   hit ratio on cacheable: %s\n\n",
		stats.Percent(char.UncacheableShare()), stats.Percent(char.HitRatio()))

	// Volume profile: hourly buckets for day-scale captures, 10-minute
	// buckets for shorter ones.
	series := hourly.Series("application/json")
	label := "Hourly"
	if len(series) < 3 {
		series = fine.Series("application/json")
		label = "10-minute"
	}
	if len(series) > 1 && len(series) <= 150 {
		fmt.Printf("%s JSON request volume:\n", label)
		labels := make([]string, len(series))
		values := make([]float64, len(series))
		for i, p := range series {
			labels[i] = p.Start.Format("15:04")
			values[i] = float64(p.Requests)
		}
		fmt.Print(stats.BarChart(labels, values, 40))
		fmt.Println()
	}

	never, always, mixed := cacheability.PolicyShares()
	fmt.Printf("Domain cacheability (%d domains): never %s, always %s, mixed %s\n",
		cacheability.NumDomains(), stats.Percent(never), stats.Percent(always), stats.Percent(mixed))
	fmt.Println("\nFigure 4 heatmap (rows: category, cols: cacheable share 0-100%):")
	fmt.Print(stats.Heatmap(cacheability.Heatmap(10)))

	if *trace {
		fmt.Println("\nStage trace:")
		tr.WriteTable(os.Stdout)
	}
}
