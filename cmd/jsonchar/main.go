// Command jsonchar runs the §4 characterization over a log file (or a
// freshly generated dataset): traffic sources by device (Fig. 3),
// browser vs non-browser shares, request methods, response sizes, and
// the per-category cacheability heatmap (Fig. 4).
//
// Usage:
//
//	jsonchar -i logs.tsv.gz
//	jsonchar -synth -scale 0.002
//	jsonchar -synth -trace -metrics-addr :9090
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/domaincat"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/rollup"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/uastring"
)

func main() {
	var (
		in          = flag.String("i", "", "input log file (.tsv/.jsonl[.gz])")
		useSynth    = flag.Bool("synth", false, "characterize a freshly generated short-term dataset")
		scale       = flag.Float64("scale", 0.002, "scale for -synth")
		seed        = flag.Uint64("seed", 42, "seed for -synth")
		topApps     = flag.Int("top-apps", 10, "how many applications to list")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :9090) while running")
		trace       = flag.Bool("trace", false, "print a per-stage span table after the run")
	)
	flag.Parse()

	var reg *obs.Registry
	var tr *obs.Trace
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		_, url, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsonchar: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics at %s/metrics\n", url)
	}
	if *trace {
		tr = obs.NewTrace()
	}

	var src core.Source
	switch {
	case *useSynth:
		cfg := synth.ShortTermConfig(*seed, *scale)
		cfg.Obs = reg
		src = core.SynthSource(cfg)
	case *in != "":
		src = core.FileSource(*in)
	default:
		fmt.Fprintln(os.Stderr, "jsonchar: need -i FILE or -synth")
		os.Exit(2)
	}

	char := taxonomy.NewCharacterization()
	cacheability := taxonomy.NewDomainCacheability(domaincat.NewCatalog())
	hourly := rollup.New(time.Hour)
	fine := rollup.New(10 * time.Minute)
	sp := tr.Start("ingest + characterize")
	err := src.Each(func(r *logfmt.Record) error {
		sp.AddRecords(1)
		sp.AddBytes(r.Bytes)
		char.ObserveAny(r)
		hourly.Observe(r)
		fine.Observe(r)
		if r.IsJSON() {
			cacheability.Observe(r)
		}
		return nil
	})
	sp.End()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsonchar: %v\n", err)
		os.Exit(1)
	}
	if char.Total == 0 {
		fmt.Fprintln(os.Stderr, "jsonchar: no application/json records in input")
		os.Exit(1)
	}

	fmt.Printf("JSON requests: %d\n\n", char.Total)

	fmt.Println("Figure 2: JSON traffic taxonomy (measured shares in brackets):")
	fmt.Print(taxonomy.Figure2Tree(char))
	fmt.Println()

	fmt.Println("Traffic source (share of JSON requests, Fig. 3):")
	devices := []uastring.DeviceType{uastring.DeviceMobile, uastring.DeviceUnknown,
		uastring.DeviceEmbedded, uastring.DeviceDesktop}
	labels := make([]string, len(devices))
	values := make([]float64, len(devices))
	for i, d := range devices {
		labels[i] = d.String()
		values[i] = char.DeviceShare(d)
	}
	fmt.Print(stats.BarChart(labels, values, 50))
	fmt.Printf("non-browser traffic: %s   mobile-browser: %s\n\n",
		stats.Percent(char.NonBrowserShare()), stats.Percent(char.MobileBrowserShare()))

	fmt.Printf("Top applications:\n")
	for _, kv := range char.Apps.TopK(*topApps) {
		fmt.Printf("  %-24s %d\n", kv.Key, kv.Count)
	}
	fmt.Println()

	fmt.Println("Request type:")
	fmt.Printf("  GET (download): %s   POST of remainder: %s\n\n",
		stats.Percent(char.GETShare()), stats.Percent(char.POSTShareOfRest()))

	fmt.Println("Response type:")
	j50, j75, h50, h75 := char.SizeQuantiles()
	fmt.Printf("  JSON size p50/p75: %.0f/%.0f B", j50, j75)
	if h50 > 0 {
		fmt.Printf("   (HTML: %.0f/%.0f B; JSON %s and %s smaller)",
			h50, h75, stats.Percent(1-j50/h50), stats.Percent(1-j75/h75))
	}
	fmt.Println()
	fmt.Printf("  uncacheable: %s   hit ratio on cacheable: %s\n\n",
		stats.Percent(char.UncacheableShare()), stats.Percent(char.HitRatio()))

	// Volume profile: hourly buckets for day-scale captures, 10-minute
	// buckets for shorter ones.
	series := hourly.Series("application/json")
	label := "Hourly"
	if len(series) < 3 {
		series = fine.Series("application/json")
		label = "10-minute"
	}
	if len(series) > 1 && len(series) <= 150 {
		fmt.Printf("%s JSON request volume:\n", label)
		labels := make([]string, len(series))
		values := make([]float64, len(series))
		for i, p := range series {
			labels[i] = p.Start.Format("15:04")
			values[i] = float64(p.Requests)
		}
		fmt.Print(stats.BarChart(labels, values, 40))
		fmt.Println()
	}

	never, always, mixed := cacheability.PolicyShares()
	fmt.Printf("Domain cacheability (%d domains): never %s, always %s, mixed %s\n",
		cacheability.NumDomains(), stats.Percent(never), stats.Percent(always), stats.Percent(mixed))
	fmt.Println("\nFigure 4 heatmap (rows: category, cols: cacheable share 0-100%):")
	fmt.Print(stats.Heatmap(cacheability.Heatmap(10)))

	if *trace {
		fmt.Println("\nStage trace:")
		tr.WriteTable(os.Stdout)
	}
}
