// Command jsonchar runs the §4 characterization over a log file (or a
// freshly generated dataset): traffic sources by device (Fig. 3),
// browser vs non-browser shares, request methods, response sizes, and
// the per-category cacheability heatmap (Fig. 4).
//
// Every run emits a run manifest (run-<id>.json) recording the
// effective configuration, toolchain and VCS revision, dead-letter
// counts, and a final metrics snapshot.
//
// Usage:
//
//	jsonchar -i logs.tsv.gz
//	jsonchar -i logs.cdnb -max-error-rate 0.1 -dead-letter bad.jsonl
//	jsonchar -synth -scale 0.002
//	jsonchar -synth -shards 8         # shard generation across 8 goroutines
//	jsonchar -i logs.tsv.gz -j 4      # cap text-format decode workers
//	jsonchar -synth -trace -metrics-addr :9090
//	jsonchar -i logs.tsv.gz -trace-out t.json   # Chrome trace of the ingest stages
//
// File input goes through the tolerant ingest path: malformed records
// are quarantined (optionally to a -dead-letter JSONL file) and the
// run survives as long as the corrupt fraction stays under
// -max-error-rate. SIGINT/SIGTERM stops ingest early but still prints
// the characterization of what was read.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/domaincat"
	"repro/internal/ingest"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/rollup"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/uastring"
)

func main() {
	var (
		in          = flag.String("i", "", "input log file (.tsv/.jsonl/.cdnb[.gz])")
		useSynth    = flag.Bool("synth", false, "characterize a freshly generated short-term dataset")
		scale       = flag.Float64("scale", 0.002, "scale for -synth")
		seed        = flag.Uint64("seed", 42, "seed for -synth")
		jobs        = flag.Int("j", runtime.GOMAXPROCS(0), "decode workers for file ingest of the text formats")
		shards      = flag.Int("shards", 1, "generation shards for -synth: 1 reproduces the historical stream; N > 1 generates on N goroutines (deterministic per seed+shards)")
		topApps     = flag.Int("top-apps", 10, "how many applications to list")
		maxErrRate  = flag.Float64("max-error-rate", 0.05, "abort file ingest when more than this fraction of records is corrupt")
		deadLetter  = flag.String("dead-letter", "", "append quarantined record spans to this JSONL file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :9090) while running")
		trace       = flag.Bool("trace", false, "print a per-stage span table after the run")
		traceOut    = flag.String("trace-out", "", "write the run's span tree as Chrome trace_event JSON to this file")
		spanLog     = flag.String("span-log", "", "write the run's span tree as JSONL to this file")
		manifestDir = flag.String("manifest-dir", "out", "directory for the run-<id>.json manifest (empty disables)")
		verbose     = flag.Bool("v", false, "log at debug level")
	)
	flag.Parse()
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "jsonchar: -j must be >= 1")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "jsonchar: -shards must be >= 1")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancels ingest between records; the report over the
	// records read so far still prints and the process exits 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runID := obs.NewRunID()
	var level slog.Leveler
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, runID, *seed, level).Component("jsonchar")
	reg := obs.NewRegistry()
	tr := obs.NewTrace()

	man := obs.NewManifest("jsonchar", runID)
	man.Config = map[string]any{
		"input": *in, "synth": *useSynth, "scale": *scale, "seed": *seed,
		"jobs": *jobs, "shards": *shards,
		"max_error_rate": *maxErrRate, "dead_letter": *deadLetter,
	}
	finish := func(outcome string) {
		man.Finish(outcome)
		man.AddMetrics(reg)
		man.AddTrace(tr)
		if *manifestDir == "" {
			return
		}
		path, err := man.WriteFile(*manifestDir)
		if err != nil {
			logger.Error("writing run manifest", "err", err)
			return
		}
		logger.Info("run manifest written", "path", path)
	}
	fail := func(err error) {
		logger.Error("run failed", "err", err)
		finish("failed")
		os.Exit(1)
	}

	if *metricsAddr != "" {
		_, url, err := obs.Serve(*metricsAddr, reg, nil)
		if err != nil {
			fail(err)
		}
		logger.Info("admin endpoints up", "url", url, "metrics", url+"/metrics")
	}

	// The root span of the run: the ingest pipeline stages (read+split,
	// decode, deliver) attach as children via the context, so a
	// -trace-out export shows the pipeline's overlap.
	sp := tr.Start("ingest + characterize")
	ctx = obs.ContextWithSpan(ctx, sp)

	var src core.Source
	var fileSrc *ingest.FileSource
	switch {
	case *useSynth:
		cfg := synth.ShortTermConfig(*seed, *scale)
		cfg.Shards = *shards
		cfg.Obs = reg
		cfg.Span = sp
		src = core.SynthSource(cfg)
	case *in != "":
		opts := ingest.Options{
			MaxErrorRate: *maxErrRate,
			Metrics:      ingest.NewInstrumentation(reg),
		}
		if *deadLetter != "" {
			dl, err := os.OpenFile(*deadLetter, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
			}
			defer dl.Close()
			opts.DeadLetter = ingest.NewDeadLetter(dl)
			defer opts.DeadLetter.Flush()
		}
		fileSrc = &ingest.FileSource{Path: *in, Ctx: ctx,
			Config: ingest.PipelineConfig{Workers: *jobs, Options: opts}}
		src = fileSrc
	default:
		fmt.Fprintln(os.Stderr, "jsonchar: need -i FILE or -synth")
		os.Exit(2)
	}

	char := taxonomy.NewCharacterization()
	cacheability := taxonomy.NewDomainCacheability(domaincat.NewCatalog())
	hourly := rollup.New(time.Hour)
	fine := rollup.New(10 * time.Minute)
	err := src.Each(func(r *logfmt.Record) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp.AddRecords(1)
		sp.AddBytes(r.Bytes)
		char.ObserveAny(r)
		hourly.Observe(r)
		fine.Observe(r)
		if r.IsJSON() {
			cacheability.Observe(r)
		}
		return nil
	})
	sp.End()
	outcome := "completed"
	if errors.Is(err, context.Canceled) {
		outcome = "interrupted"
		logger.Warn("interrupted: reporting partial results")
	} else if err != nil {
		if fileSrc != nil {
			man.DeadLetters = fileSrc.LastStats.Quarantined
		}
		fail(err)
	}
	if fileSrc != nil {
		st := fileSrc.LastStats
		man.DeadLetters = st.Quarantined
		if st.Quarantined > 0 {
			logger.Warn("records quarantined",
				"quarantined", st.Quarantined,
				"total", st.Records+st.Quarantined,
				"error_rate", fmt.Sprintf("%.2f%%", st.ErrorRate()*100),
				"resyncs", st.Resyncs, "bytes_skipped", st.BytesSkipped)
		}
	}
	if char.Total == 0 {
		fail(errors.New("no application/json records in input"))
	}

	fmt.Printf("JSON requests: %d\n\n", char.Total)

	fmt.Println("Figure 2: JSON traffic taxonomy (measured shares in brackets):")
	fmt.Print(taxonomy.Figure2Tree(char))
	fmt.Println()

	fmt.Println("Traffic source (share of JSON requests, Fig. 3):")
	devices := []uastring.DeviceType{uastring.DeviceMobile, uastring.DeviceUnknown,
		uastring.DeviceEmbedded, uastring.DeviceDesktop}
	labels := make([]string, len(devices))
	values := make([]float64, len(devices))
	for i, d := range devices {
		labels[i] = d.String()
		values[i] = char.DeviceShare(d)
	}
	fmt.Print(stats.BarChart(labels, values, 50))
	fmt.Printf("non-browser traffic: %s   mobile-browser: %s\n\n",
		stats.Percent(char.NonBrowserShare()), stats.Percent(char.MobileBrowserShare()))

	fmt.Printf("Top applications:\n")
	for _, kv := range char.Apps.TopK(*topApps) {
		fmt.Printf("  %-24s %d\n", kv.Key, kv.Count)
	}
	fmt.Println()

	fmt.Println("Request type:")
	fmt.Printf("  GET (download): %s   POST of remainder: %s\n\n",
		stats.Percent(char.GETShare()), stats.Percent(char.POSTShareOfRest()))

	fmt.Println("Response type:")
	j50, j75, h50, h75 := char.SizeQuantiles()
	fmt.Printf("  JSON size p50/p75: %.0f/%.0f B", j50, j75)
	if h50 > 0 {
		fmt.Printf("   (HTML: %.0f/%.0f B; JSON %s and %s smaller)",
			h50, h75, stats.Percent(1-j50/h50), stats.Percent(1-j75/h75))
	}
	fmt.Println()
	fmt.Printf("  uncacheable: %s   hit ratio on cacheable: %s\n\n",
		stats.Percent(char.UncacheableShare()), stats.Percent(char.HitRatio()))

	// Volume profile: hourly buckets for day-scale captures, 10-minute
	// buckets for shorter ones.
	series := hourly.Series("application/json")
	label := "Hourly"
	if len(series) < 3 {
		series = fine.Series("application/json")
		label = "10-minute"
	}
	if len(series) > 1 && len(series) <= 150 {
		fmt.Printf("%s JSON request volume:\n", label)
		labels := make([]string, len(series))
		values := make([]float64, len(series))
		for i, p := range series {
			labels[i] = p.Start.Format("15:04")
			values[i] = float64(p.Requests)
		}
		fmt.Print(stats.BarChart(labels, values, 40))
		fmt.Println()
	}

	never, always, mixed := cacheability.PolicyShares()
	fmt.Printf("Domain cacheability (%d domains): never %s, always %s, mixed %s\n",
		cacheability.NumDomains(), stats.Percent(never), stats.Percent(always), stats.Percent(mixed))
	fmt.Println("\nFigure 4 heatmap (rows: category, cols: cacheable share 0-100%):")
	fmt.Print(stats.Heatmap(cacheability.Heatmap(10)))

	if *trace {
		fmt.Println("\nStage trace:")
		tr.WriteTable(os.Stdout)
	}
	if *traceOut != "" {
		writeExport(*traceOut, tr.WriteChromeTrace, "chrome trace", logger, fail)
	}
	if *spanLog != "" {
		writeExport(*spanLog, tr.WriteSpanLog, "span log", logger, fail)
	}
	finish(outcome)
}

// writeExport writes one trace export file.
func writeExport(path string, write func(io.Writer) error, kind string, logger *obs.Logger, fail func(error)) {
	f, err := os.Create(path)
	if err != nil {
		fail(fmt.Errorf("creating %s: %w", kind, err))
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		fail(fmt.Errorf("writing %s to %s: %w", kind, path, errors.Join(werr, cerr)))
	}
	logger.Info(kind+" written", "path", path)
}
