// Command jsonpredict trains and evaluates the §5.2 backoff ngram
// request-prediction model on a log file, reproducing Table 3's accuracy
// grid on actual and clustered URLs.
//
// Usage:
//
//	jsonpredict -i pattern.tsv.gz
//	jsonpredict -i pattern.tsv.gz -n 5 -k 1,5,10,20 -test-frac 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/ngram"
	"repro/internal/stats"
)

func main() {
	var (
		in       = flag.String("i", "", "input log file (.tsv/.jsonl[.gz])")
		order    = flag.Int("n", 1, "history length N")
		ks       = flag.String("k", "1,5,10", "comma-separated K values")
		testFrac = flag.Float64("test-frac", 0.25, "fraction of clients held out for testing")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "jsonpredict: need -i FILE")
		os.Exit(2)
	}
	kvals, err := parseKs(*ks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsonpredict: %v\n", err)
		os.Exit(2)
	}

	run := func(clustered bool) (map[int]ngram.EvalResult, int, int) {
		s := ngram.NewSequencer()
		s.Clustered = clustered
		s.TestFraction = *testFrac
		s.Filter = logfmt.JSONOnly
		err := core.FileSource(*in).Each(func(r *logfmt.Record) error {
			s.Observe(r)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsonpredict: %v\n", err)
			os.Exit(1)
		}
		m, evals := s.TrainAndEvaluate(*order, kvals)
		return evals, m.VocabSize(), s.NumClients()
	}

	actual, vocabA, clients := run(false)
	clustered, vocabC, _ := run(true)

	fmt.Printf("clients: %d; vocabulary: %d actual URLs, %d clustered templates\n\n",
		clients, vocabA, vocabC)
	fmt.Printf("NGram accuracy (N=%d):\n", *order)
	var tb stats.Table
	tb.SetHeader("K", "Clustered URLs", "Actual URLs", "Predictions")
	for _, k := range kvals {
		tb.AddRowf(k,
			fmt.Sprintf("%.2f", clustered[k].Accuracy()),
			fmt.Sprintf("%.2f", actual[k].Accuracy()),
			actual[k].Predictions)
	}
	fmt.Print(tb.String())
	fmt.Println("\npaper (N=1): clustered .65/.84/.87, actual .45/.64/.69 for K=1/5/10")
}

func parseKs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad K value %q", part)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no K values")
	}
	return out, nil
}
