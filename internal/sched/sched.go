// Package sched simulates request scheduling at an edge server to
// evaluate the paper's proposed optimization (§5.1, §7): deprioritize
// machine-to-machine traffic, since no human is waiting on it. A
// discrete-event simulation processes a request stream on a fixed pool
// of workers under either FIFO or human-priority scheduling and reports
// per-class queueing latency, quantifying how much human-perceived
// latency the policy buys and what it costs the machine traffic.
package sched

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Class partitions requests by initiator.
type Class uint8

const (
	// ClassHuman marks human-triggered requests (a person is waiting).
	ClassHuman Class = iota
	// ClassMachine marks machine-to-machine requests (periodic polls,
	// telemetry), the deprioritization target.
	ClassMachine
)

// String returns the class label.
func (c Class) String() string {
	if c == ClassMachine {
		return "machine"
	}
	return "human"
}

// Request is one unit of work for the edge.
type Request struct {
	// Arrival is when the request reaches the server.
	Arrival time.Time
	// Service is the processing time it needs on a worker.
	Service time.Duration
	// Class is the initiator class.
	Class Class
}

// Discipline selects the queueing policy.
type Discipline uint8

const (
	// FIFO serves requests strictly in arrival order.
	FIFO Discipline = iota
	// PriorityHuman serves any queued human request before any queued
	// machine request (non-preemptive).
	PriorityHuman
)

// String returns the discipline label.
func (d Discipline) String() string {
	if d == PriorityHuman {
		return "priority-human"
	}
	return "fifo"
}

// Config parameterizes a simulation run.
type Config struct {
	// Workers is the number of concurrent request processors (>= 1).
	Workers int
	// Discipline is the queueing policy.
	Discipline Discipline
	// Obs, if non-nil, receives every request's queueing delay into the
	// sched_queue_latency_seconds histogram labeled by class, so scrapes
	// see the same per-class latency distributions the Result summarizes.
	Obs *obs.Registry
}

// ClassStats summarizes one class's latency outcomes.
type ClassStats struct {
	Requests int
	// Wait aggregates queueing delay (time from arrival to service
	// start), the component scheduling can influence.
	Wait stats.Summary
	// P50, P95, and P99 are queueing-delay percentiles in seconds.
	P50, P95, P99 float64
}

// Result is a simulation outcome.
type Result struct {
	Config  Config
	Human   ClassStats
	Machine ClassStats
	// Makespan is the total simulated span from first arrival to last
	// completion.
	Makespan time.Duration
	// Utilization is busy worker-time over Workers * Makespan.
	Utilization float64
}

// Simulate runs the request stream through the configured server. The
// input is sorted by arrival time internally; it is not modified.
func Simulate(reqs []Request, cfg Config) (Result, error) {
	if cfg.Workers < 1 {
		return Result{}, fmt.Errorf("sched: need at least one worker, got %d", cfg.Workers)
	}
	if len(reqs) == 0 {
		return Result{Config: cfg}, nil
	}
	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Arrival.Before(sorted[j].Arrival)
	})

	// Workers as a min-heap of free times.
	free := make(timeHeap, cfg.Workers)
	for i := range free {
		free[i] = sorted[0].Arrival
	}
	heap.Init(&free)

	var humanWaits, machineWaits []float64
	var res Result
	res.Config = cfg
	var busy time.Duration
	var lastCompletion time.Time

	var humanLat, machineLat *obs.Histogram
	if cfg.Obs != nil {
		cfg.Obs.Help("sched_queue_latency_seconds", "Simulated queueing delay by request class.")
		humanLat = cfg.Obs.Histogram("sched_queue_latency_seconds", nil, "class", ClassHuman.String())
		machineLat = cfg.Obs.Histogram("sched_queue_latency_seconds", nil, "class", ClassMachine.String())
	}

	serve := func(r Request, start time.Time) {
		if start.Before(r.Arrival) {
			start = r.Arrival
		}
		wait := start.Sub(r.Arrival)
		end := start.Add(r.Service)
		heap.Push(&free, end)
		busy += r.Service
		if end.After(lastCompletion) {
			lastCompletion = end
		}
		w := wait.Seconds()
		if r.Class == ClassHuman {
			humanWaits = append(humanWaits, w)
			res.Human.Wait.Add(w)
			res.Human.Requests++
			if humanLat != nil {
				humanLat.Observe(w)
			}
		} else {
			machineWaits = append(machineWaits, w)
			res.Machine.Wait.Add(w)
			res.Machine.Requests++
			if machineLat != nil {
				machineLat.Observe(w)
			}
		}
	}

	switch cfg.Discipline {
	case FIFO:
		for _, r := range sorted {
			start := heap.Pop(&free).(time.Time)
			serve(r, start)
		}
	case PriorityHuman:
		// Event loop: pull arrivals into per-class queues; whenever a
		// worker frees up, serve the oldest queued human first.
		var humanQ, machineQ queue
		i := 0
		n := len(sorted)
		for i < n || humanQ.len() > 0 || machineQ.len() > 0 {
			nextFree := free[0]
			// Admit every request that has arrived by the time a worker
			// is free; if queues are empty, jump to the next arrival.
			if humanQ.len() == 0 && machineQ.len() == 0 && i < n && sorted[i].Arrival.After(nextFree) {
				nextFree = sorted[i].Arrival
			}
			for i < n && !sorted[i].Arrival.After(nextFree) {
				if sorted[i].Class == ClassHuman {
					humanQ.push(sorted[i])
				} else {
					machineQ.push(sorted[i])
				}
				i++
			}
			var r Request
			switch {
			case humanQ.len() > 0:
				r = humanQ.pop()
			case machineQ.len() > 0:
				r = machineQ.pop()
			default:
				continue // jump forward to next arrival
			}
			start := heap.Pop(&free).(time.Time)
			serve(r, start)
		}
	default:
		return Result{}, fmt.Errorf("sched: unknown discipline %d", cfg.Discipline)
	}

	res.Human.P50, res.Human.P95, res.Human.P99 = percentiles(humanWaits)
	res.Machine.P50, res.Machine.P95, res.Machine.P99 = percentiles(machineWaits)
	res.Makespan = lastCompletion.Sub(sorted[0].Arrival)
	if res.Makespan > 0 {
		res.Utilization = busy.Seconds() / (res.Makespan.Seconds() * float64(cfg.Workers))
	}
	return res, nil
}

func percentiles(xs []float64) (p50, p95, p99 float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	qs := stats.Quantiles(xs, 0.5, 0.95, 0.99)
	return qs[0], qs[1], qs[2]
}

// queue is a FIFO of requests backed by a slice with amortized pops.
type queue struct {
	items []Request
	head  int
}

func (q *queue) push(r Request) { q.items = append(q.items, r) }
func (q *queue) len() int       { return len(q.items) - q.head }
func (q *queue) pop() Request {
	r := q.items[q.head]
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return r
}

// timeHeap is a min-heap of worker free times.
type timeHeap []time.Time

func (h timeHeap) Len() int            { return len(h) }
func (h timeHeap) Less(i, j int) bool  { return h[i].Before(h[j]) }
func (h timeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x interface{}) { *h = append(*h, x.(time.Time)) }
func (h *timeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// Compare runs the same stream under FIFO and PriorityHuman and returns
// both results.
func Compare(reqs []Request, workers int) (fifo, prio Result, err error) {
	fifo, err = Simulate(reqs, Config{Workers: workers, Discipline: FIFO})
	if err != nil {
		return
	}
	prio, err = Simulate(reqs, Config{Workers: workers, Discipline: PriorityHuman})
	return
}
