package sched

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

var t0 = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)

// burst builds n requests of the given class arriving at the same
// instant, each needing service time svc.
func burst(n int, class Class, at time.Time, svc time.Duration) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Arrival: at, Service: svc, Class: class}
	}
	return reqs
}

func TestSimulateEmptyAndErrors(t *testing.T) {
	if _, err := Simulate(nil, Config{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	res, err := Simulate(nil, Config{Workers: 1})
	if err != nil || res.Human.Requests != 0 {
		t.Errorf("empty sim: %v %+v", err, res)
	}
	if _, err := Simulate(burst(1, ClassHuman, t0, time.Second), Config{Workers: 1, Discipline: Discipline(9)}); err == nil {
		t.Error("unknown discipline accepted")
	}
}

func TestFIFOSingleWorkerWaits(t *testing.T) {
	// Three 1 s jobs arriving together: waits 0, 1, 2 s.
	reqs := burst(3, ClassHuman, t0, time.Second)
	res, err := Simulate(reqs, Config{Workers: 1, Discipline: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if res.Human.Requests != 3 {
		t.Fatalf("requests = %d", res.Human.Requests)
	}
	if got := res.Human.Wait.Mean(); got != 1 {
		t.Errorf("mean wait = %v, want 1", got)
	}
	if res.Makespan != 3*time.Second {
		t.Errorf("makespan = %v", res.Makespan)
	}
	if res.Utilization < 0.99 {
		t.Errorf("utilization = %v, want ~1", res.Utilization)
	}
}

func TestFIFOParallelWorkers(t *testing.T) {
	reqs := burst(4, ClassHuman, t0, time.Second)
	res, err := Simulate(reqs, Config{Workers: 4, Discipline: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if res.Human.Wait.Max() != 0 {
		t.Errorf("max wait = %v, want 0 with enough workers", res.Human.Wait.Max())
	}
	if res.Makespan != time.Second {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestPriorityServesHumansFirst(t *testing.T) {
	// A machine burst arrives just before a human burst; under FIFO the
	// humans wait behind the machines, under priority they jump ahead.
	var reqs []Request
	reqs = append(reqs, burst(20, ClassMachine, t0, time.Second)...)
	reqs = append(reqs, burst(5, ClassHuman, t0.Add(time.Millisecond), time.Second)...)
	fifo, prio, err := Compare(reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prio.Human.Wait.Mean() >= fifo.Human.Wait.Mean() {
		t.Errorf("priority human wait %.2fs not below FIFO %.2fs",
			prio.Human.Wait.Mean(), fifo.Human.Wait.Mean())
	}
	if prio.Machine.Wait.Mean() < fifo.Machine.Wait.Mean() {
		t.Errorf("machine traffic should pay: prio %.2fs < fifo %.2fs",
			prio.Machine.Wait.Mean(), fifo.Machine.Wait.Mean())
	}
	// Work-conserving: same total work, same utilization.
	if prio.Utilization == 0 || fifo.Utilization == 0 {
		t.Error("utilization not computed")
	}
}

func TestPriorityNonPreemptive(t *testing.T) {
	// One long machine job running; a human arrives mid-service and
	// must wait for it (non-preemptive), then be served before the
	// queued machine job.
	reqs := []Request{
		{Arrival: t0, Service: 10 * time.Second, Class: ClassMachine},
		{Arrival: t0.Add(time.Second), Service: time.Second, Class: ClassMachine},
		{Arrival: t0.Add(2 * time.Second), Service: time.Second, Class: ClassHuman},
	}
	res, err := Simulate(reqs, Config{Workers: 1, Discipline: PriorityHuman})
	if err != nil {
		t.Fatal(err)
	}
	// Human starts at 10 s (after the long job), waits 8 s.
	if got := res.Human.Wait.Mean(); got != 8 {
		t.Errorf("human wait = %v, want 8", got)
	}
	// Second machine job starts at 11 s, waits 10 s.
	if got := res.Machine.Wait.Max(); got != 10 {
		t.Errorf("machine max wait = %v, want 10", got)
	}
}

func TestIdlePeriodsSkipped(t *testing.T) {
	reqs := []Request{
		{Arrival: t0, Service: time.Second, Class: ClassHuman},
		{Arrival: t0.Add(time.Hour), Service: time.Second, Class: ClassHuman},
	}
	for _, d := range []Discipline{FIFO, PriorityHuman} {
		res, err := Simulate(reqs, Config{Workers: 1, Discipline: d})
		if err != nil {
			t.Fatal(err)
		}
		if res.Human.Wait.Max() != 0 {
			t.Errorf("%v: wait = %v across idle gap", d, res.Human.Wait.Max())
		}
		if res.Makespan != time.Hour+time.Second {
			t.Errorf("%v: makespan = %v", d, res.Makespan)
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	reqs := []Request{
		{Arrival: t0.Add(time.Second), Service: time.Second, Class: ClassHuman},
		{Arrival: t0, Service: time.Second, Class: ClassMachine},
	}
	if _, err := Simulate(reqs, Config{Workers: 1, Discipline: PriorityHuman}); err != nil {
		t.Fatal(err)
	}
	if !reqs[0].Arrival.After(reqs[1].Arrival) {
		t.Error("input slice was reordered")
	}
}

func TestWorkConservation(t *testing.T) {
	// Under both disciplines every request is served exactly once, with
	// random arrivals and classes.
	rng := stats.NewRNG(3)
	var reqs []Request
	at := t0
	for i := 0; i < 500; i++ {
		at = at.Add(time.Duration(rng.Intn(50)) * time.Millisecond)
		class := ClassHuman
		if rng.Bool(0.4) {
			class = ClassMachine
		}
		reqs = append(reqs, Request{
			Arrival: at,
			Service: time.Duration(1+rng.Intn(40)) * time.Millisecond,
			Class:   class,
		})
	}
	fifo, prio, err := Compare(reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Human.Requests+fifo.Machine.Requests != 500 {
		t.Errorf("fifo served %d", fifo.Human.Requests+fifo.Machine.Requests)
	}
	if prio.Human.Requests+prio.Machine.Requests != 500 {
		t.Errorf("prio served %d", prio.Human.Requests+prio.Machine.Requests)
	}
	if fifo.Human.Requests != prio.Human.Requests {
		t.Error("class counts differ between disciplines")
	}
	// Percentiles are ordered.
	for _, cs := range []ClassStats{fifo.Human, prio.Human, fifo.Machine, prio.Machine} {
		if cs.P50 > cs.P95 || cs.P95 > cs.P99 {
			t.Errorf("percentiles out of order: %+v", cs)
		}
	}
}

func TestClassAndDisciplineStrings(t *testing.T) {
	if ClassHuman.String() != "human" || ClassMachine.String() != "machine" {
		t.Error("class labels wrong")
	}
	if FIFO.String() != "fifo" || PriorityHuman.String() != "priority-human" {
		t.Error("discipline labels wrong")
	}
}

func TestQueueCompaction(t *testing.T) {
	var q queue
	for i := 0; i < 5000; i++ {
		q.push(Request{Service: time.Duration(i)})
	}
	for i := 0; i < 5000; i++ {
		r := q.pop()
		if r.Service != time.Duration(i) {
			t.Fatalf("pop %d returned %v", i, r.Service)
		}
	}
	if q.len() != 0 {
		t.Errorf("len = %d", q.len())
	}
}

func TestSimulateObservesQueueLatency(t *testing.T) {
	reg := obs.NewRegistry()
	reqs := append(burst(4, ClassHuman, t0, time.Second),
		burst(3, ClassMachine, t0, time.Second)...)
	if _, err := Simulate(reqs, Config{Workers: 1, Discipline: PriorityHuman, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	human := reg.Histogram("sched_queue_latency_seconds", nil, "class", "human")
	machine := reg.Histogram("sched_queue_latency_seconds", nil, "class", "machine")
	if human.Count() != 4 || machine.Count() != 3 {
		t.Errorf("latency observations = %d human / %d machine, want 4/3", human.Count(), machine.Count())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `sched_queue_latency_seconds_count{class="machine"} 3`) {
		t.Errorf("scrape missing machine latency count:\n%s", b.String())
	}
}
