package urlkit

import "testing"

func BenchmarkClusterStatic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cluster("https://api.example.com/v1/stories")
	}
}

func BenchmarkClusterVolatile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cluster("https://x.com/article/99887?user=123&lat=40.7&sid=a1B2c3D4e5F6g7H8iJ")
	}
}

func BenchmarkClusterUUID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cluster("https://x.com/session/6fa459ea-ee8a-3ca4-894e-db77e160355e")
	}
}
