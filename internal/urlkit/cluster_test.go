package urlkit

import (
	"testing"
	"testing/quick"
)

func TestClusterNumericIDs(t *testing.T) {
	a := Cluster("https://news.example.com/article/1234")
	b := Cluster("https://news.example.com/article/99887")
	if a != b {
		t.Fatalf("numeric IDs did not cluster: %q vs %q", a, b)
	}
	if a != "https://news.example.com/article/{num}" {
		t.Errorf("template = %q", a)
	}
}

func TestClusterPreservesStaticPaths(t *testing.T) {
	u := "https://api.example.com/v1/stories"
	if got := Cluster(u); got != u {
		t.Errorf("static URL changed: %q", got)
	}
}

func TestClusterUUID(t *testing.T) {
	got := Cluster("https://x.com/session/6fa459ea-ee8a-3ca4-894e-db77e160355e")
	want := "https://x.com/session/{uuid}"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestClusterHexHash(t *testing.T) {
	a := Cluster("https://x.com/blob/deadbeef01")
	b := Cluster("https://x.com/blob/0123456789abcdef")
	if a != b || a != "https://x.com/blob/{hex}" {
		t.Errorf("hex clustering: %q vs %q", a, b)
	}
	// Short or pure-alpha hex-ish words stay literal.
	if got := Cluster("https://x.com/blob/feed"); got != "https://x.com/blob/feed" {
		t.Errorf("short word templated: %q", got)
	}
}

func TestClusterOpaqueToken(t *testing.T) {
	got := Cluster("https://x.com/t/a1B2c3D4e5F6g7H8iJ")
	if got != "https://x.com/t/{opaque}" {
		t.Errorf("opaque token: %q", got)
	}
}

func TestClusterQueryValues(t *testing.T) {
	a := Cluster("https://x.com/s?user=123&lat=40.7&lon=-73.9")
	b := Cluster("https://x.com/s?lon=-71.1&user=999&lat=42.3")
	if a != b {
		t.Fatalf("query clustering order-sensitive: %q vs %q", a, b)
	}
	if a != "https://x.com/s?lat={v}&lon={v}&user={v}" {
		t.Errorf("template = %q", a)
	}
}

func TestClusterExtensionPreserved(t *testing.T) {
	got := Cluster("https://cdn.example.com/image1234.jpg")
	// File name is not purely numeric, stays; but numeric-only with
	// extension templates keeping .jpg:
	got2 := Cluster("https://cdn.example.com/567890.jpg")
	if got2 != "https://cdn.example.com/{num}.jpg" {
		t.Errorf("numeric file = %q", got2)
	}
	if got != "https://cdn.example.com/image1234.jpg" {
		t.Errorf("mixed file = %q", got)
	}
}

func TestClusterCoordinates(t *testing.T) {
	got := Cluster("https://x.com/geo/40.7128/-74.0060")
	if got != "https://x.com/geo/{num}/{num}" {
		t.Errorf("coordinates = %q", got)
	}
}

func TestClusterHostOnly(t *testing.T) {
	if got := Cluster("https://x.com"); got != "https://x.com/" {
		t.Errorf("host only = %q", got)
	}
	if got := Cluster("x.com/a/1"); got != "x.com/a/{num}" {
		t.Errorf("schemeless = %q", got)
	}
}

func TestClusterQueryNoPath(t *testing.T) {
	got := Cluster("https://x.com?id=5")
	if got != "https://x.com/?id={v}" {
		t.Errorf("got %q", got)
	}
}

func TestClusterUnparseable(t *testing.T) {
	if got := Cluster(""); got != "" {
		t.Errorf("empty = %q", got)
	}
	// No host: returned unchanged.
	if got := Cluster("/just/a/path"); got != "/just/a/path" {
		t.Errorf("relative = %q", got)
	}
}

func TestClusterIdempotent(t *testing.T) {
	urls := []string{
		"https://news.example.com/article/1234",
		"https://x.com/s?user=123",
		"https://x.com/session/6fa459ea-ee8a-3ca4-894e-db77e160355e",
		"https://api.example.com/v1/stories",
	}
	for _, u := range urls {
		once := Cluster(u)
		twice := Cluster(once)
		if once != twice {
			t.Errorf("not idempotent: %q -> %q -> %q", u, once, twice)
		}
	}
}

func TestClusterNeverPanics(t *testing.T) {
	err := quick.Check(func(s string) bool {
		Cluster(s)
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestIsNumeric(t *testing.T) {
	yes := []string{"123", "-73.9", "+5", "0.5"}
	no := []string{"", "abc", "1a", "-", ".5", "5.", "1.2.3"}
	for _, s := range yes {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range no {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
}

func TestIsUUID(t *testing.T) {
	if !isUUID("6fa459ea-ee8a-3ca4-894e-db77e160355e") {
		t.Error("valid uuid rejected")
	}
	for _, s := range []string{"", "6fa459ea", "6fa459ea-ee8a-3ca4-894e-db77e160355z",
		"6fa459eaxee8a-3ca4-894e-db77e160355e"} {
		if isUUID(s) {
			t.Errorf("isUUID(%q) = true", s)
		}
	}
}
