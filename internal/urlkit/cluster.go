// Package urlkit tokenizes and clusters request URLs.
//
// The paper's ngram evaluation (§5.2) runs on two vocabularies: actual
// URLs and *clustered* URLs, clustering "similar to URL argument
// clustering in [Klotski, NSDI'15]". Clustering maps URLs that differ
// only in client-specific identifiers (numeric IDs, UUIDs, hashes,
// coordinates, per-client query values) onto one template, revealing
// general object dependencies of an application.
package urlkit

import (
	"sort"
	"strings"
)

// Placeholder tokens substituted for volatile URL components.
const (
	PlaceholderNum  = "{num}"
	PlaceholderHex  = "{hex}"
	PlaceholderUUID = "{uuid}"
	PlaceholderB64  = "{opaque}"
	PlaceholderVal  = "{v}"
)

// Cluster maps a URL to its cluster template. Host and static path
// segments are preserved; volatile segments and query values are
// replaced by placeholders; query keys are kept and sorted so parameter
// order does not split clusters. Unparseable URLs cluster to themselves.
func Cluster(raw string) string {
	scheme, rest := splitScheme(raw)
	host, pathq := splitHostPath(rest)
	if host == "" {
		return raw
	}
	path, query := splitPathQuery(pathq)
	var b strings.Builder
	b.Grow(len(raw))
	if scheme != "" {
		b.WriteString(strings.ToLower(scheme))
		b.WriteString("://")
	}
	b.WriteString(strings.ToLower(host))
	b.WriteString(ClusterPath(path))
	if query != "" {
		if cq := clusterQuery(query); cq != "" {
			b.WriteByte('?')
			b.WriteString(cq)
		}
	}
	return b.String()
}

// ClusterPath templates one URL path: each segment that looks volatile
// is replaced by a placeholder. The path must start with '/'; an empty
// path clusters to "/".
func ClusterPath(path string) string {
	if path == "" {
		return "/"
	}
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "" {
			continue
		}
		// Keep a recognizable extension on templated file names. An
		// extension must contain a letter so decimals ("40.7128") are
		// not mistaken for one.
		name, ext := s, ""
		if j := strings.LastIndexByte(s, '.'); j > 0 && len(s)-j <= 6 && hasLetter(s[j+1:]) {
			name, ext = s[:j], s[j:]
		}
		if ph := classifySegment(name); ph != "" {
			segs[i] = ph + ext
		}
	}
	return strings.Join(segs, "/")
}

// classifySegment returns the placeholder for a volatile path segment,
// or "" if the segment is static.
func classifySegment(s string) string {
	if s == "" {
		return ""
	}
	switch {
	case isNumeric(s):
		return PlaceholderNum
	case isUUID(s):
		return PlaceholderUUID
	case isHex(s) && len(s) >= 8:
		return PlaceholderHex
	case isOpaque(s):
		return PlaceholderB64
	default:
		return ""
	}
}

func clusterQuery(query string) string {
	params := strings.Split(query, "&")
	keys := make([]string, 0, len(params))
	for _, p := range params {
		if p == "" {
			continue
		}
		k, _, _ := strings.Cut(p, "=")
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(PlaceholderVal)
	}
	return b.String()
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dots := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			// Allow signs and one decimal point so coordinates template too.
			if (c == '-' || c == '+') && i == 0 && len(s) > 1 {
				continue
			}
			if c == '.' && dots == 0 && i > 0 && i < len(s)-1 && s[i-1] != '-' && s[i-1] != '+' {
				dots++
				continue
			}
			return false
		}
	}
	return true
}

func hasLetter(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			return true
		}
	}
	return false
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	hasDigit := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			hasDigit = true
		case c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	// Require at least one digit: pure-alpha strings like "deed" are
	// more likely words than hashes.
	return hasDigit
}

func isUUID(s string) bool {
	// 8-4-4-4-12 hex groups.
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if i == 8 || i == 13 || i == 18 || i == 23 {
			continue
		}
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}

// isOpaque detects long mixed-alphanumeric tokens (session keys, base64
// blobs): length >= 16 with both letters and digits and high variety.
func isOpaque(s string) bool {
	if len(s) < 16 {
		return false
	}
	letters, digits := 0, 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			letters++
		case c == '-' || c == '_' || c == '=' || c == '+':
		default:
			return false
		}
	}
	return digits >= 2 && letters >= 2
}

func splitScheme(raw string) (scheme, rest string) {
	if i := strings.Index(raw, "://"); i > 0 {
		return raw[:i], raw[i+3:]
	}
	return "", raw
}

func splitHostPath(rest string) (host, pathq string) {
	i := strings.IndexAny(rest, "/?")
	if i < 0 {
		return rest, ""
	}
	if rest[i] == '?' {
		return rest[:i], "/" + rest[i:]
	}
	return rest[:i], rest[i:]
}

func splitPathQuery(pathq string) (path, query string) {
	if i := strings.IndexByte(pathq, '?'); i >= 0 {
		return pathq[:i], pathq[i+1:]
	}
	return pathq, ""
}
