package urlkit

import "testing"

// FuzzCluster checks the clusterer never panics and is idempotent on
// every input it produces.
func FuzzCluster(f *testing.F) {
	seeds := []string{
		"https://news.example.com/article/1234",
		"https://x.com/s?user=123&lat=40.7",
		"x.com/a/1",
		"",
		"%%%bad",
		"https://x.com/session/6fa459ea-ee8a-3ca4-894e-db77e160355e",
		"https://x.com///",
		"?only=query",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		once := Cluster(raw)
		twice := Cluster(once)
		if once != twice {
			t.Fatalf("not idempotent: %q -> %q -> %q", raw, once, twice)
		}
	})
}
