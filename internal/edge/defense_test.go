package edge

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/logfmt"
)

// TestWildcardOriginQueryVariants: distinct query strings are distinct
// objects (the satellite fix), while the same full URL stays
// deterministic and cacheability ignores the query.
func TestWildcardOriginQueryVariants(t *testing.T) {
	o := &WildcardOrigin{}
	a1, _, c1, err := o.Fetch("/v1/article/1001?cb=aaaa")
	if err != nil || !c1 {
		t.Fatalf("variant fetch: err=%v cacheable=%v", err, c1)
	}
	a2, _, _, _ := o.Fetch("/v1/article/1001?cb=bbbb")
	if string(a1) == string(a2) {
		t.Error("query variants collided on path: identical bodies")
	}
	a1b, _, _, _ := o.Fetch("/v1/article/1001?cb=aaaa")
	if string(a1) != string(a1b) {
		t.Error("same full URL not deterministic")
	}
	if _, _, cacheable, _ := o.Fetch("/ingest/ch1?cb=x"); cacheable {
		t.Error("/ingest/ with query became cacheable")
	}
	if _, _, cacheable, _ := o.Fetch("/v1/x?u=/profile/evil"); !cacheable {
		t.Error("query content changed cacheability of a cacheable path")
	}
}

// recordingOrigin captures the paths the edge fetches.
type recordingOrigin struct {
	paths []string
	inner Origin
}

func (o *recordingOrigin) Fetch(path string) ([]byte, string, bool, error) {
	o.paths = append(o.paths, path)
	return o.inner.Fetch(path)
}

// TestEdgePassesQueryToOrigin: the edge forwards path?query, so origins
// can serve per-variant objects.
func TestEdgePassesQueryToOrigin(t *testing.T) {
	o := &recordingOrigin{inner: &WildcardOrigin{}}
	e := &HTTPEdge{Cache: NewCache(1<<20, time.Minute, 4), Origin: o}
	req := httptest.NewRequest("GET", "http://x.test/v1/item/1?cb=zz", nil)
	e.ServeHTTP(httptest.NewRecorder(), req)
	if len(o.paths) != 1 || o.paths[0] != "/v1/item/1?cb=zz" {
		t.Fatalf("origin saw %v, want [/v1/item/1?cb=zz]", o.paths)
	}
}

// scriptedDefense returns canned actions and records outcomes.
type scriptedDefense struct {
	act      DefenseAction
	admitted int
	outcomes []logfmt.CacheStatus
}

func (d *scriptedDefense) Admit(now time.Time, r *http.Request) DefenseAction {
	d.admitted++
	return d.act
}

func (d *scriptedDefense) RecordOutcome(now time.Time, r *http.Request, cache logfmt.CacheStatus, status int) {
	d.outcomes = append(d.outcomes, cache)
}

func defendedEdge(d Defense) (*HTTPEdge, *[]logfmt.Record) {
	var logs []logfmt.Record
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 4),
		Origin: &WildcardOrigin{},
		Defend: d,
		Log:    func(r *logfmt.Record) { logs = append(logs, *r) },
	}
	return e, &logs
}

func TestDefenseReject(t *testing.T) {
	d := &scriptedDefense{act: DefenseAction{Reject: true, RetryAfter: 7}}
	e, logs := defendedEdge(d)
	req := httptest.NewRequest("GET", "http://x.test/v1/a", nil)
	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q, want 7", got)
	}
	if len(d.outcomes) != 0 {
		t.Error("rejected request reached RecordOutcome")
	}
	if len(*logs) != 1 || (*logs)[0].Status != http.StatusTooManyRequests {
		t.Errorf("reject not logged: %+v", *logs)
	}
}

func TestDefenseNegative(t *testing.T) {
	d := &scriptedDefense{act: DefenseAction{
		Negative: true, NegStatus: 404, NegBody: []byte(`{"error":"known bad"}`),
	}}
	e, _ := defendedEdge(d)
	req := httptest.NewRequest("GET", "http://x.test/v1/gone", nil)
	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	if rec.Header().Get("X-Cache") != "NEGATIVE" {
		t.Errorf("X-Cache %q, want NEGATIVE", rec.Header().Get("X-Cache"))
	}
	if !strings.Contains(rec.Body.String(), "known bad") {
		t.Errorf("body %q lacks negative payload", rec.Body.String())
	}
	if len(d.outcomes) != 0 {
		t.Error("negative-cached request reached RecordOutcome")
	}
}

// TestDefenseCollapseKey: with the collapse defense, distinct query
// variants of one object become a single cache entry — the second
// variant is a hit, with no second origin fetch.
func TestDefenseCollapseKey(t *testing.T) {
	d := &scriptedDefense{act: DefenseAction{CollapseKey: "http://x.test/v1/hot"}}
	o := &recordingOrigin{inner: &WildcardOrigin{}}
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 4),
		Origin: o,
		Defend: d,
	}
	for _, q := range []string{"?cb=1", "?cb=2", "?cb=3"} {
		req := httptest.NewRequest("GET", "http://x.test/v1/hot"+q, nil)
		e.ServeHTTP(httptest.NewRecorder(), req)
	}
	if len(o.paths) != 1 {
		t.Fatalf("origin fetched %d times under collapse, want 1 (%v)", len(o.paths), o.paths)
	}
	if len(d.outcomes) != 3 {
		t.Fatalf("RecordOutcome saw %d admitted requests, want 3", len(d.outcomes))
	}
	if d.outcomes[1] != logfmt.CacheHit || d.outcomes[2] != logfmt.CacheHit {
		t.Errorf("collapsed variants not hits: %v", d.outcomes)
	}
}

// TestDefenseAdmitOutcome: the zero action admits normally and outcomes
// flow back with real cache dispositions.
func TestDefenseAdmitOutcome(t *testing.T) {
	d := &scriptedDefense{}
	e, _ := defendedEdge(d)
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest("GET", "http://x.test/v1/same", nil)
		e.ServeHTTP(httptest.NewRecorder(), req)
	}
	if d.admitted != 2 || len(d.outcomes) != 2 {
		t.Fatalf("admitted=%d outcomes=%d, want 2/2", d.admitted, len(d.outcomes))
	}
	if d.outcomes[0] != logfmt.CacheMiss || d.outcomes[1] != logfmt.CacheHit {
		t.Errorf("outcomes %v, want [miss hit]", d.outcomes)
	}
}
