package edge

import (
	"net/http"
	"time"

	"repro/internal/logfmt"
)

// DefenseAction is a Defense's verdict on one request, consulted by
// HTTPEdge.ServeHTTP before any cache or origin work.
type DefenseAction struct {
	// Reject sheds the request at the edge with 429 Too Many Requests —
	// no cache lookup, no origin fetch, no amplification.
	Reject bool
	// RetryAfter is the Retry-After header value in seconds for a
	// rejected request (0 omits the header).
	RetryAfter int
	// Negative serves a remembered error response (negative cache hit):
	// the edge answers NegStatus/NegBody without consulting the origin,
	// absorbing hammered-miss storms on keys known to fail.
	Negative bool
	// NegStatus is the status of the negative response (default 404).
	NegStatus int
	// NegBody is the negative response body.
	NegBody []byte
	// NegMIME is the negative response content type (default
	// application/json).
	NegMIME string
	// CollapseKey, when non-empty, replaces the request's cache key —
	// the cache-key canonicalization defense: once a base object is
	// detected under a cache-busting query storm, all its query
	// variants collapse onto the base key, so the storm turns into
	// cache hits instead of origin fetches.
	CollapseKey string
}

// Defense is an online request-admission policy plugged into HTTPEdge.
// Implementations decide per request (rate limits, abuse scores,
// negative caches) and observe each admitted request's outcome to
// update their detectors. internal/defend provides the standard
// implementation. Implementations must be safe for concurrent use when
// the edge serves concurrent traffic.
type Defense interface {
	// Admit is called before any cache or origin work, with the edge's
	// current time. The zero DefenseAction admits the request normally.
	Admit(now time.Time, r *http.Request) DefenseAction
	// RecordOutcome is called for every admitted request once its cache
	// disposition and final status are known; rejected and
	// negative-cached requests do not reach it. Detectors use it to
	// learn miss storms and per-client behavior.
	RecordOutcome(now time.Time, r *http.Request, cache logfmt.CacheStatus, status int)
}
