package edge

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// This file is the readiness handshake between a serving liveedge
// process and the load harness: the server binds its listeners (port 0
// works), flips its readiness gate, and atomically publishes the
// resulting URLs to a file; the harness waits for the file, reads the
// target, and probes readiness before opening the traffic valve. That
// ordering is what lets `make slo-check` start both processes
// concurrently without a sleep-and-hope race.

// WriteURLFile atomically publishes the given URLs (one per line,
// conventionally edge first, admin second) to path via a same-
// directory temp file and rename, so a polling reader never observes
// a partial write.
func WriteURLFile(path string, urls ...string) error {
	if len(urls) == 0 {
		return fmt.Errorf("edge: WriteURLFile needs at least one URL")
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".url-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(strings.Join(urls, "\n") + "\n"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// AwaitURLFile polls until path exists with non-empty content or the
// timeout (or ctx) expires, and returns the published URLs.
func AwaitURLFile(ctx context.Context, path string, timeout time.Duration) ([]string, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		if data, err := os.ReadFile(path); err == nil {
			var urls []string
			for _, line := range strings.Split(string(data), "\n") {
				if line = strings.TrimSpace(line); line != "" {
					urls = append(urls, line)
				}
			}
			if len(urls) > 0 {
				return urls, nil
			}
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("edge: no URL published at %s: %w", path, ctx.Err())
		case <-tick.C:
		}
	}
}

// AwaitReady polls probeURL (typically an admin /readyz endpoint)
// until it answers 200 or the timeout (or ctx) expires.
func AwaitReady(ctx context.Context, probeURL string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	client := &http.Client{Timeout: 2 * time.Second}
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, probeURL, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("edge: %s never became ready (last: %v): %w", probeURL, lastErr, ctx.Err())
		case <-tick.C:
		}
	}
}
