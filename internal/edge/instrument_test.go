package edge

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestHTTPEdgeInstrumented drives an instrumented edge through a
// scripted request sequence and checks the exact counter values each
// step implies.
func TestHTTPEdgeInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 2),
		Origin: &JSONOrigin{Articles: 50},
	}
	e.Instrument(reg)
	srv := httptest.NewServer(e)
	defer srv.Close()

	do := func(method, path string, hdr map[string]string) (*http.Response, []byte) {
		req, err := http.NewRequest(method, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	// 1. GET /stories: cache miss, fetched from origin.
	resp, body1 := do("GET", "/stories", nil)
	etag := resp.Header.Get("ETag")
	// 2. GET /stories again: cache hit.
	_, body2 := do("GET", "/stories", nil)
	// 3. GET an unknown article: origin error, 404 served.
	resp3, body3 := do("GET", "/article/9999", nil)
	if resp3.StatusCode != 404 {
		t.Fatalf("bad article status = %d", resp3.StatusCode)
	}
	// 4. POST telemetry: uncacheable tunnel to origin.
	_, body4 := do("POST", "/ingest/metrics", nil)
	// 5. HEAD /stories: origin fetch, no body written.
	do("HEAD", "/stories", nil)
	// 6. Conditional GET with the current ETag: 304, cache hit, no body.
	resp6, _ := do("GET", "/stories", map[string]string{"If-None-Match": etag})
	if resp6.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional status = %d", resp6.StatusCode)
	}

	in := e.Obs
	wantBytes := int64(len(body1) + len(body2) + len(body3) + len(body4))
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"requests{get}", in.GETRequests.Value(), 4},
		{"requests{post}", in.POSTRequests.Value(), 1},
		{"requests{head}", in.HEADRequests.Value(), 1},
		{"requests{other}", in.OtherRequests.Value(), 0},
		{"not_modified", in.NotModified.Value(), 1},
		{"bytes_served", in.BytesServed.Value(), wantBytes},
		{"origin_fetches", in.OriginFetch.Count(), 4}, // steps 1, 3, 4, 5
		{"origin_errors", in.OriginErrors.Value(), 1},
		{"cache hits", e.Cache.MetricsSnapshot().Hits, 2},     // steps 2, 6
		{"cache misses", e.Cache.MetricsSnapshot().Misses, 2}, // steps 1, 3
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}

	// The cache metrics surface through the registry's exposition.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"edge_cache_hits_total 2",
		"edge_cache_misses_total 2",
		`edge_requests_total{method="get"} 4`,
		"# TYPE edge_origin_fetch_seconds histogram",
		`edge_origin_fetch_seconds_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

// TestHTTPEdgeInstrumentedConcurrent hammers an instrumented edge from
// many goroutines; run under -race this guards the whole serving +
// metrics path.
func TestHTTPEdgeInstrumentedConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 4),
		Origin: &JSONOrigin{Articles: 20},
	}
	e.Instrument(reg)
	srv := httptest.NewServer(e)
	defer srv.Close()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(srv.URL + "/stories")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	// Scrape concurrently with the load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var b strings.Builder
			reg.WritePrometheus(&b)
		}
	}()
	wg.Wait()

	if got := e.Obs.GETRequests.Value(); got != clients*perClient {
		t.Errorf("requests{get} = %d, want %d", got, clients*perClient)
	}
	m := e.Cache.MetricsSnapshot()
	if m.Hits+m.Misses != clients*perClient {
		t.Errorf("cache lookups = %d, want %d", m.Hits+m.Misses, clients*perClient)
	}
}
