package edge

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/logfmt"
)

func TestPoolRouteStable(t *testing.T) {
	p := NewPool(4, 1<<20, time.Minute)
	for i := 0; i < 50; i++ {
		url := fmt.Sprintf("https://x.com/obj/%d", i)
		a, b := p.Route(url), p.Route(url)
		if a != b {
			t.Fatalf("routing unstable for %s", url)
		}
	}
}

func TestPoolRouteBalanced(t *testing.T) {
	p := NewPool(4, 1<<20, time.Minute)
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[p.Route(fmt.Sprintf("https://x.com/obj/%d", i)).Name]++
	}
	for name, c := range counts {
		if c < 400 || c > 2200 {
			t.Errorf("server %s got %d/4000 objects", name, c)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d servers used", len(counts))
	}
}

func TestPoolPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(0, 1, time.Minute)
}

func replayRec(url string, cache logfmt.CacheStatus, at time.Time) logfmt.Record {
	return logfmt.Record{
		Time: at, ClientID: 1, Method: "GET", URL: url,
		MIMEType: "application/json", Status: 200, Bytes: 500, Cache: cache,
	}
}

func TestReplayCacheBehavior(t *testing.T) {
	p := NewPool(2, 1<<20, time.Minute)
	var res ReplayResult
	// Two requests to the same cacheable object: miss then hit.
	r1 := replayRec("https://x.com/a", logfmt.CacheMiss, t0)
	r2 := replayRec("https://x.com/a", logfmt.CacheHit, t0.Add(10*time.Second))
	// Uncacheable object tunnels.
	r3 := replayRec("https://x.com/priv", logfmt.CacheUncacheable, t0)
	// POST tunnels even if object cacheable.
	r4 := replayRec("https://x.com/a", logfmt.CacheMiss, t0.Add(20*time.Second))
	r4.Method = "POST"
	for _, r := range []logfmt.Record{r1, r2, r3, r4} {
		rr := r
		p.Replay(&rr, &res)
	}
	if res.Requests != 4 || res.Cacheable != 2 || res.Uncacheable != 2 {
		t.Errorf("result = %+v", res)
	}
	if res.Hits != 1 {
		t.Errorf("hits = %d", res.Hits)
	}
	if res.HitRatio() != 0.5 {
		t.Errorf("ratio = %v", res.HitRatio())
	}
	if res.OriginBytes != 1500 { // r1 miss + r3 + r4
		t.Errorf("origin bytes = %d", res.OriginBytes)
	}
	if res.ServedBytes != 2000 {
		t.Errorf("served bytes = %d", res.ServedBytes)
	}
}

func TestReplayTTLExpiry(t *testing.T) {
	p := NewPool(1, 1<<20, time.Minute)
	var res ReplayResult
	r1 := replayRec("https://x.com/a", logfmt.CacheMiss, t0)
	r2 := replayRec("https://x.com/a", logfmt.CacheMiss, t0.Add(2*time.Minute))
	p.Replay(&r1, &res)
	p.Replay(&r2, &res)
	if res.Hits != 0 {
		t.Errorf("hit after TTL: %+v", res)
	}
}

func TestPoolMetricsAggregate(t *testing.T) {
	p := NewPool(3, 1<<20, time.Minute)
	var res ReplayResult
	for i := 0; i < 30; i++ {
		r := replayRec(fmt.Sprintf("https://x.com/o%d", i%10), logfmt.CacheMiss, t0.Add(time.Duration(i)*time.Second))
		p.Replay(&r, &res)
	}
	m := p.Metrics()
	if m.Hits != 20 || m.Misses != 10 {
		t.Errorf("pool metrics = %+v", m)
	}
	var perServer int64
	for _, s := range p.Servers() {
		perServer += s.Requests.Load()
	}
	if perServer != 30 {
		t.Errorf("server requests = %d", perServer)
	}
}

func TestHTTPEdgeServesAndCaches(t *testing.T) {
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 2),
		Origin: &JSONOrigin{Articles: 50},
	}
	var logs []logfmt.Record
	e.Log = func(r *logfmt.Record) { logs = append(logs, *r) }
	srv := httptest.NewServer(e)
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return resp, sb.String()
	}

	resp, body := get("/stories")
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first fetch: %d %s", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !strings.Contains(body, "article_id") {
		t.Errorf("manifest body = %.80s", body)
	}
	resp, _ = get("/stories")
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Errorf("second fetch X-Cache = %s", resp.Header.Get("X-Cache"))
	}
	resp, _ = get("/article/1001")
	if resp.StatusCode != 200 {
		t.Errorf("article status = %d", resp.StatusCode)
	}
	resp, _ = get("/profile/alice")
	if resp.Header.Get("X-Cache") != "UNCACHEABLE" {
		t.Errorf("profile X-Cache = %s", resp.Header.Get("X-Cache"))
	}
	resp, _ = get("/nope")
	if resp.StatusCode != 404 {
		t.Errorf("missing path status = %d", resp.StatusCode)
	}

	if len(logs) != 5 {
		t.Fatalf("logged %d records", len(logs))
	}
	for i, r := range logs {
		if err := r.Validate(); err != nil {
			t.Errorf("log %d invalid: %v", i, err)
		}
		if !r.IsJSON() {
			t.Errorf("log %d mime = %s", i, r.MIMEType)
		}
	}
	if logs[0].Cache != logfmt.CacheMiss || logs[1].Cache != logfmt.CacheHit {
		t.Errorf("cache states = %v %v", logs[0].Cache, logs[1].Cache)
	}
}

func TestHTTPEdgePost(t *testing.T) {
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 1),
		Origin: &JSONOrigin{},
	}
	srv := httptest.NewServer(e)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/ingest/metrics", "application/json", strings.NewReader(`{"v":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "UNCACHEABLE" {
		t.Errorf("POST X-Cache = %s", resp.Header.Get("X-Cache"))
	}
}

func TestJSONOriginArticleBounds(t *testing.T) {
	o := &JSONOrigin{Articles: 10}
	if _, _, _, err := o.Fetch("/article/1009"); err != nil {
		t.Error("valid article rejected")
	}
	if _, _, _, err := o.Fetch("/article/1010"); err == nil {
		t.Error("out-of-range article accepted")
	}
	if _, _, _, err := o.Fetch("/article/abc"); err == nil {
		t.Error("non-numeric article accepted")
	}
}

func TestSecondHitAdmission(t *testing.T) {
	p := NewPool(1, 1<<20, time.Hour)
	p.Admission = SecondHitFilter()
	var res ReplayResult
	// First request: miss, NOT cached (one-hit so far).
	r1 := replayRec("https://x.com/a", logfmt.CacheMiss, t0)
	p.Replay(&r1, &res)
	if p.Servers()[0].Cache.Len() != 0 {
		t.Fatal("one-hit wonder was cached")
	}
	// Second request: miss again, but now admitted.
	r2 := replayRec("https://x.com/a", logfmt.CacheMiss, t0.Add(time.Second))
	p.Replay(&r2, &res)
	if p.Servers()[0].Cache.Len() != 1 {
		t.Fatal("second hit not admitted")
	}
	// Third request: hit.
	r3 := replayRec("https://x.com/a", logfmt.CacheMiss, t0.Add(2*time.Second))
	p.Replay(&r3, &res)
	if res.Hits != 1 {
		t.Errorf("hits = %d, want 1", res.Hits)
	}
}

func TestSecondHitFilterReducesChurn(t *testing.T) {
	// A stream of mostly one-hit wonders plus a recurring hot set: with
	// admission filtering the tiny cache keeps the hot set and hits
	// more, with fewer evictions.
	run := func(admit bool) (float64, int64) {
		p := NewPool(1, 12_000, time.Hour) // room for ~24 objects of 500 B
		if admit {
			p.Admission = SecondHitFilter()
		}
		var res ReplayResult
		at := t0
		for round := 0; round < 40; round++ {
			// Hot set of 10 objects...
			for h := 0; h < 10; h++ {
				r := replayRec(fmt.Sprintf("https://x.com/hot/%d", h), logfmt.CacheMiss, at)
				p.Replay(&r, &res)
				at = at.Add(time.Second)
			}
			// ...interleaved with 30 one-hit wonders per round.
			for w := 0; w < 30; w++ {
				r := replayRec(fmt.Sprintf("https://x.com/once/%d-%d", round, w), logfmt.CacheMiss, at)
				p.Replay(&r, &res)
				at = at.Add(time.Second)
			}
		}
		return res.HitRatio(), p.Metrics().Evictions
	}
	plainRatio, plainEvict := run(false)
	admitRatio, admitEvict := run(true)
	if admitRatio <= plainRatio {
		t.Errorf("admission ratio %.3f not above plain %.3f", admitRatio, plainRatio)
	}
	if admitEvict >= plainEvict {
		t.Errorf("admission evictions %d not below plain %d", admitEvict, plainEvict)
	}
}

func TestHTTPEdgeConditionalRequests(t *testing.T) {
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 1),
		Origin: &JSONOrigin{Articles: 10},
	}
	srv := httptest.NewServer(e)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stories")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on response")
	}

	req, _ := http.NewRequest("GET", srv.URL+"/stories", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 10)
	n, _ := resp2.Body.Read(body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("status = %d, want 304", resp2.StatusCode)
	}
	if n != 0 {
		t.Errorf("304 carried %d body bytes", n)
	}
	if resp2.Header.Get("ETag") != etag {
		t.Errorf("etag changed: %s", resp2.Header.Get("ETag"))
	}

	// A stale validator gets the full body.
	req2, _ := http.NewRequest("GET", srv.URL+"/stories", nil)
	req2.Header.Set("If-None-Match", `"0000000000000000"`)
	resp3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("stale validator status = %d", resp3.StatusCode)
	}
}

// TestConcurrentSecondHitFilterReplay shards a record stream across
// goroutines replaying into one pool gated by
// ConcurrentSecondHitFilter — the workload that races on the plain
// SecondHitFilter's map. Run under -race (make race) it proves the
// guarded filter is safe; the merged results must still show every
// repeated URL admitted at most once before caching.
func TestConcurrentSecondHitFilterReplay(t *testing.T) {
	p := NewPool(4, 8<<20, time.Hour)
	p.Admission = ConcurrentSecondHitFilter()
	base := time.Unix(1_700_000_000, 0)

	const workers = 8
	const perWorker = 2000
	results := make([]ReplayResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// 200 distinct URLs shared across workers: plenty of
				// admission-map collisions.
				rec := replayRec(fmt.Sprintf("https://x.com/obj/%d", i%200),
					logfmt.CacheMiss, base.Add(time.Duration(i)*time.Millisecond))
				p.Replay(&rec, &results[w])
			}
		}(w)
	}
	wg.Wait()

	var total ReplayResult
	for _, r := range results {
		total.Requests += r.Requests
		total.Cacheable += r.Cacheable
		total.Hits += r.Hits
	}
	if total.Requests != workers*perWorker {
		t.Fatalf("requests = %d, want %d", total.Requests, workers*perWorker)
	}
	// Each of the 200 URLs misses at least twice (first sight + the
	// admission-denied second sight) before hits begin; everything else
	// should hit.
	misses := total.Cacheable - total.Hits
	if misses < 400 || misses > 800 {
		t.Errorf("misses = %d, want a few hundred (2-3 per distinct URL)", misses)
	}
}

// TestReplayDegradedOrigin scripts an outage window over the replay:
// during it, expired entries serve stale, uncached objects fail, and
// uncacheable tunnels are shed.
func TestReplayDegradedOrigin(t *testing.T) {
	p := NewPool(1, 1<<20, time.Minute)
	base := time.Unix(1_700_000_000, 0)
	downFrom, downTo := base.Add(2*time.Minute), base.Add(4*time.Minute)
	p.OriginUp = func(at time.Time) bool {
		return at.Before(downFrom) || !at.Before(downTo)
	}
	var res ReplayResult

	// Warm: cached at t=0 (expires t=1m).
	rec := replayRec("https://x.com/a", logfmt.CacheMiss, base)
	p.Replay(&rec, &res)
	// t=2m30s, origin down, entry expired → stale serve.
	rec = replayRec("https://x.com/a", logfmt.CacheMiss, base.Add(150*time.Second))
	p.Replay(&rec, &res)
	if res.StaleServes != 1 {
		t.Fatalf("stale serves = %d, want 1", res.StaleServes)
	}
	// t=3m, origin down, never-seen object → failed.
	rec = replayRec("https://x.com/b", logfmt.CacheMiss, base.Add(3*time.Minute))
	p.Replay(&rec, &res)
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Failed)
	}
	// t=3m, origin down, uncacheable tunnel → shed.
	rec = replayRec("https://x.com/t", logfmt.CacheUncacheable, base.Add(3*time.Minute))
	p.Replay(&rec, &res)
	if res.Shed != 1 {
		t.Fatalf("shed = %d, want 1", res.Shed)
	}
	// t=5m, origin back: the stale entry is still expired → normal miss,
	// refetched and recached.
	rec = replayRec("https://x.com/a", logfmt.CacheMiss, base.Add(5*time.Minute))
	p.Replay(&rec, &res)
	if got := res.Availability(); got != 3.0/5.0 {
		t.Errorf("availability = %.2f, want 0.60 (3 of 5 served)", got)
	}
	if cm := p.Metrics(); cm.StaleServes != 1 {
		t.Errorf("pool cache stale serves = %d, want 1", cm.StaleServes)
	}
}
