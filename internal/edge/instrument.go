package edge

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Instrumentation holds the pre-resolved request-level metrics an
// HTTPEdge reports into, so the serving hot path pays no registry
// lookups. Create one with NewInstrumentation (or HTTPEdge.Instrument,
// which also registers the edge cache's metrics).
type Instrumentation struct {
	// GETRequests etc. count served requests by method into
	// edge_requests_total{method=...}.
	GETRequests   *obs.Counter
	POSTRequests  *obs.Counter
	HEADRequests  *obs.Counter
	OtherRequests *obs.Counter
	// NotModified counts 304 responses to conditional requests
	// (edge_not_modified_total).
	NotModified *obs.Counter
	// BytesServed sums response body bytes written to clients
	// (edge_bytes_served_total).
	BytesServed *obs.Counter
	// OriginFetch is the origin round-trip latency distribution in
	// seconds (edge_origin_fetch_seconds).
	OriginFetch *obs.Histogram
	// OriginErrors counts failed origin fetches
	// (edge_origin_errors_total).
	OriginErrors *obs.Counter
	// StaleServes counts responses served from an expired copy after an
	// origin failure (edge_stale_serves_total).
	StaleServes *obs.Counter
	// ShedMachine and ShedHuman count load-shed requests by class into
	// edge_shed_total{class=...}.
	ShedMachine *obs.Counter
	ShedHuman   *obs.Counter
}

// NewInstrumentation registers the HTTPEdge request metrics in reg and
// returns them. Calling it twice with the same registry returns the
// same underlying metrics.
func NewInstrumentation(reg *obs.Registry) *Instrumentation {
	reg.Help("edge_requests_total", "Requests served by the edge, by method.")
	reg.Help("edge_bytes_served_total", "Response body bytes written to clients.")
	reg.Help("edge_origin_fetch_seconds", "Origin fetch round-trip latency.")
	reg.Help("edge_stale_serves_total", "Responses served stale after an origin failure.")
	reg.Help("edge_shed_total", "Requests shed while the origin path was degraded, by class.")
	return &Instrumentation{
		GETRequests:   reg.Counter("edge_requests_total", "method", "get"),
		POSTRequests:  reg.Counter("edge_requests_total", "method", "post"),
		HEADRequests:  reg.Counter("edge_requests_total", "method", "head"),
		OtherRequests: reg.Counter("edge_requests_total", "method", "other"),
		NotModified:   reg.Counter("edge_not_modified_total"),
		BytesServed:   reg.Counter("edge_bytes_served_total"),
		OriginFetch:   reg.Histogram("edge_origin_fetch_seconds", nil),
		OriginErrors:  reg.Counter("edge_origin_errors_total"),
		StaleServes:   reg.Counter("edge_stale_serves_total"),
		ShedMachine:   reg.Counter("edge_shed_total", "class", sched.ClassMachine.String()),
		ShedHuman:     reg.Counter("edge_shed_total", "class", sched.ClassHuman.String()),
	}
}

// shed returns the shed counter for one request class.
func (in *Instrumentation) shed(class sched.Class) *obs.Counter {
	if class == sched.ClassMachine {
		return in.ShedMachine
	}
	return in.ShedHuman
}

// requests returns the counter for one request method.
func (in *Instrumentation) requests(method string) *obs.Counter {
	switch method {
	case http.MethodGet:
		return in.GETRequests
	case http.MethodPost:
		return in.POSTRequests
	case http.MethodHead:
		return in.HEADRequests
	default:
		return in.OtherRequests
	}
}

// Instrument wires the edge into reg: request metrics via
// NewInstrumentation plus the embedded cache's hit/miss/eviction
// counters and occupancy gauges. It returns the instrumentation it
// installed on e.
func (e *HTTPEdge) Instrument(reg *obs.Registry) *Instrumentation {
	e.Obs = NewInstrumentation(reg)
	if e.Cache != nil {
		RegisterCacheMetrics(reg, e.Cache)
	}
	return e.Obs
}

// RegisterCacheMetrics registers pull-style metrics for c in reg under
// the optional fixed label pairs: edge_cache_{hits,misses,evictions,
// expired,prefetched_hits}_total counters plus edge_cache_entries and
// edge_cache_bytes gauges. Values are read via MetricsSnapshot at
// scrape time, so the counters stay exact without adding any cost to
// the cache's hot path. Panics if the same name and label set is
// already registered (register each cache once).
func RegisterCacheMetrics(reg *obs.Registry, c *Cache, labels ...string) {
	reg.Help("edge_cache_hits_total", "Cache lookups served from cache.")
	reg.Help("edge_cache_misses_total", "Cache lookups that missed (including expiries).")
	reg.CounterFunc("edge_cache_hits_total", func() int64 { return c.MetricsSnapshot().Hits }, labels...)
	reg.CounterFunc("edge_cache_misses_total", func() int64 { return c.MetricsSnapshot().Misses }, labels...)
	reg.CounterFunc("edge_cache_evictions_total", func() int64 { return c.MetricsSnapshot().Evictions }, labels...)
	reg.CounterFunc("edge_cache_expired_total", func() int64 { return c.MetricsSnapshot().Expired }, labels...)
	reg.CounterFunc("edge_cache_prefetched_hits_total", func() int64 { return c.MetricsSnapshot().PrefetchedHits }, labels...)
	reg.CounterFunc("edge_cache_stale_serves_total", func() int64 { return c.MetricsSnapshot().StaleServes }, labels...)
	reg.GaugeFunc("edge_cache_entries", func() float64 { return float64(c.Len()) }, labels...)
	reg.GaugeFunc("edge_cache_bytes", func() float64 { return float64(c.Bytes()) }, labels...)
}

// RegisterPoolMetrics registers every server in p: its routed-request
// counter as edge_server_requests_total{server=...} and its cache via
// RegisterCacheMetrics with the same server label.
func RegisterPoolMetrics(reg *obs.Registry, p *Pool) {
	for _, s := range p.Servers() {
		s := s
		reg.CounterFunc("edge_server_requests_total", func() int64 { return s.Requests.Load() },
			"server", s.Name)
		RegisterCacheMetrics(reg, s.Cache, "server", s.Name)
	}
}
