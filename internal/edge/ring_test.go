package edge

import (
	"fmt"
	"testing"
	"time"
)

// ringKeys is a deterministic key population for remap measurements.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://api.example-%d.com/object/%d?v=%d", i%7, i, i%13)
	}
	return keys
}

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("edge-%02d", i)
	}
	return names
}

// TestRingSharedPrefixKeysBalance: keys that differ only in a short
// trailing suffix — one host serving /object/1, /object/2, ... — must
// still spread over every member. Raw FNV-64a positions such keys in
// one narrow arc (a trailing byte only reaches ~40 bits up the hash),
// which once routed an entire replay's keyspace to a single node; the
// splitmix64 finalizer in keyHash is the regression this test pins.
func TestRingSharedPrefixKeysBalance(t *testing.T) {
	const n = 3
	r := NewRing(0)
	r.Add(ringNames(n)...)

	count := map[string]int{}
	const keys = 600
	for i := 0; i < keys; i++ {
		count[r.Lookup(fmt.Sprintf("http://127.0.0.1:43210/object/%d", i))]++
	}
	if len(count) != n {
		t.Fatalf("same-prefix keys reached %d of %d members: %v", len(count), n, count)
	}
	for name, c := range count {
		frac := float64(c) / keys
		if frac < 0.5/n || frac > 2.0/n {
			t.Errorf("member %s owns %.3f of same-prefix keys, want ~%.3f", name, frac, 1.0/n)
		}
	}
}

// TestRingLeaveRemapsFraction: removing one of N members remaps only
// the keys the leaver owned — about 1/N of them — and no key moves
// between two surviving members.
func TestRingLeaveRemapsFraction(t *testing.T) {
	const n = 5
	r := NewRing(0)
	r.Add(ringNames(n)...)
	keys := ringKeys(20_000)

	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	r.Remove("edge-02")

	remapped := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after == "edge-02" {
			t.Fatalf("key %q mapped to removed member", k)
		}
		if after != before[k] {
			if before[k] != "edge-02" {
				t.Fatalf("key %q moved between survivors: %s -> %s", k, before[k], after)
			}
			remapped++
		}
	}
	frac := float64(remapped) / float64(len(keys))
	want := 1.0 / n
	if frac < want*0.6 || frac > want*1.5 {
		t.Fatalf("remapped fraction %.3f, want ~%.3f (1/N)", frac, want)
	}
}

// TestRingJoinRemapsFraction: a joining member takes over ~1/N of the
// keys, stealing only onto itself.
func TestRingJoinRemapsFraction(t *testing.T) {
	const n = 5
	r := NewRing(0)
	r.Add(ringNames(n - 1)...)
	keys := ringKeys(20_000)

	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	r.Add("edge-04")

	remapped := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after != before[k] {
			if after != "edge-04" {
				t.Fatalf("key %q moved to %s, not the joiner", k, after)
			}
			remapped++
		}
	}
	frac := float64(remapped) / float64(len(keys))
	want := 1.0 / n
	if frac < want*0.6 || frac > want*1.5 {
		t.Fatalf("remapped fraction %.3f, want ~%.3f (1/N)", frac, want)
	}
}

// TestRingDeterministic: the mapping is a pure function of the member
// set — independent rings, different add orders, and leave-then-rejoin
// histories all agree on every key.
func TestRingDeterministic(t *testing.T) {
	keys := ringKeys(5_000)

	a := NewRing(0)
	a.Add("edge-00", "edge-01", "edge-02", "edge-03")

	b := NewRing(0)
	b.Add("edge-03", "edge-01")
	b.Add("edge-00")
	b.Add("edge-02")

	c := NewRing(0)
	c.Add(ringNames(4)...)
	c.Remove("edge-01")
	c.Add("edge-01")

	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) || a.Lookup(k) != c.Lookup(k) {
			t.Fatalf("rings disagree on %q: %s / %s / %s", k, a.Lookup(k), b.Lookup(k), c.Lookup(k))
		}
	}
}

// TestRingLookupN: replica lists are distinct, owner-first, and the
// second replica is exactly where the key lands once the owner leaves
// — the invariant failover and hedging rely on.
func TestRingLookupN(t *testing.T) {
	r := NewRing(0)
	r.Add(ringNames(4)...)
	keys := ringKeys(2_000)

	for _, k := range keys {
		reps := r.LookupN(k, 3)
		if len(reps) != 3 {
			t.Fatalf("LookupN(%q, 3) = %v, want 3 distinct members", k, reps)
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("LookupN(%q) repeated member %s: %v", k, m, reps)
			}
			seen[m] = true
		}
		if reps[0] != r.Lookup(k) {
			t.Fatalf("LookupN(%q)[0] = %s, Lookup = %s", k, reps[0], r.Lookup(k))
		}
	}

	// Failover invariant: drop the owner, the key lands on replica #2.
	k := keys[42]
	reps := r.LookupN(k, 2)
	r.Remove(reps[0])
	if got := r.Lookup(k); got != reps[1] {
		t.Fatalf("after removing owner, key lands on %s, want second replica %s", got, reps[1])
	}
}

// TestRingLookupNBounds: n larger than the membership truncates, empty
// rings return nothing.
func TestRingLookupNBounds(t *testing.T) {
	r := NewRing(0)
	if got := r.LookupN("k", 2); got != nil {
		t.Fatalf("empty ring LookupN = %v, want nil", got)
	}
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want empty", got)
	}
	r.Add("edge-00", "edge-01")
	if got := r.LookupN("k", 5); len(got) != 2 {
		t.Fatalf("LookupN beyond membership = %v, want 2 members", got)
	}
}

// TestPoolRingRouting: the pool's routing is the ring's routing — the
// in-process simulation and the fleet front tier agree on placement.
func TestPoolRingRouting(t *testing.T) {
	p := NewPool(4, 1<<20, time.Minute)
	for _, k := range ringKeys(1_000) {
		if p.Route(k).Name != p.Ring().Lookup(k) {
			t.Fatalf("pool and ring disagree on %q", k)
		}
	}
}
