package edge

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkCacheLookupHit(b *testing.B) {
	c := NewCache(1<<24, time.Hour, 8)
	c.Insert("k", 100, t0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup("k", t0)
	}
}

func BenchmarkCacheInsertEvict(b *testing.B) {
	c := NewCache(1<<16, time.Hour, 4)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("https://x.com/obj/%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(keys[i%len(keys)], 256, t0, false)
	}
}

func BenchmarkPoolRoute(b *testing.B) {
	p := NewPool(8, 1<<20, time.Minute)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Route("https://x.com/v1/article/1234")
	}
}

func BenchmarkPoolReplay(b *testing.B) {
	p := NewPool(4, 1<<24, time.Minute)
	recs := make([]struct {
		url string
		at  time.Time
	}, 1024)
	for i := range recs {
		recs[i].url = fmt.Sprintf("https://x.com/obj/%d", i%128)
		recs[i].at = t0.Add(time.Duration(i) * time.Second)
	}
	var res ReplayResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := recs[i%len(recs)]
		r := replayRec(e.url, 1, e.at)
		p.Replay(&r, &res)
	}
}
