package edge

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// failableOrigin wraps JSONOrigin with a switchable temporary failure,
// standing in for an origin mid-brownout.
type failableOrigin struct {
	inner JSONOrigin
	down  bool
}

type tempErr struct{}

func (tempErr) Error() string   { return "origin down" }
func (tempErr) Temporary() bool { return true }

func (f *failableOrigin) Fetch(path string) ([]byte, string, bool, error) {
	if f.down {
		return nil, "", false, tempErr{}
	}
	return f.inner.Fetch(path)
}

// get serves one request directly through ServeHTTP (no listener, so
// the test clock is the only clock that matters).
func get(e *HTTPEdge, path, ua string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", "http://edge.test"+path, nil)
	if ua != "" {
		req.Header.Set("User-Agent", ua)
	}
	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, req)
	return rec
}

// TestHTTPEdgeServeStale drives the serve-stale path on a deterministic
// clock: fill the cache, let the entry expire, break the origin, and
// check the expired copy is served with Age and Warning headers — and
// that the same edge without ServeStale answers 503.
func TestHTTPEdgeServeStale(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	origin := &failableOrigin{inner: JSONOrigin{Articles: 10}}
	reg := obs.NewRegistry()
	e := &HTTPEdge{
		Cache:      NewCache(1<<20, time.Minute, 2),
		Origin:     origin,
		Now:        func() time.Time { return now },
		ServeStale: true,
	}
	e.Instrument(reg)

	if rec := get(e, "/stories", ""); rec.Code != 200 || rec.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("warm-up = %d %s, want 200 MISS", rec.Code, rec.Header().Get("X-Cache"))
	}
	fresh := get(e, "/stories", "")
	if fresh.Code != 200 || fresh.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second fetch = %d %s, want 200 HIT", fresh.Code, fresh.Header().Get("X-Cache"))
	}

	// Past the TTL with the origin down: the expired copy is served.
	now = now.Add(2 * time.Minute)
	origin.down = true
	rec := get(e, "/stories", "")
	if rec.Code != 200 {
		t.Fatalf("stale serve = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("X-Cache"); got != "STALE" {
		t.Errorf("X-Cache = %q, want STALE", got)
	}
	if got := rec.Header().Get("Age"); got != "120" {
		t.Errorf("Age = %q, want 120", got)
	}
	if got := rec.Header().Get("Warning"); got != `110 - "Response is Stale"` {
		t.Errorf("Warning = %q", got)
	}
	if rec.Body.String() != fresh.Body.String() {
		t.Error("stale body differs from the cached copy")
	}
	if got := e.Obs.StaleServes.Value(); got != 1 {
		t.Errorf("stale serves = %d, want 1", got)
	}

	// A path never fetched cannot be served stale: temporary error → 503.
	if rec := get(e, "/article/1001", ""); rec.Code != 503 {
		t.Errorf("uncached path during outage = %d, want 503", rec.Code)
	}

	// The same situation without ServeStale degenerates to 503.
	e2 := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 2),
		Origin: origin,
		Now:    func() time.Time { return now },
	}
	origin.down = false
	get(e2, "/stories", "")
	now = now.Add(2 * time.Minute)
	origin.down = true
	if rec := get(e2, "/stories", ""); rec.Code != 503 {
		t.Errorf("without ServeStale = %d, want 503", rec.Code)
	}
}

// TestHTTPEdgeBodiesBounded streams one-hit-wonder URLs through the
// edge and checks the body store never exceeds MaxBodies: the
// regression for the formerly unbounded-until-reset map.
func TestHTTPEdgeBodiesBounded(t *testing.T) {
	e := &HTTPEdge{
		Cache:     NewCache(64<<20, time.Hour, 2),
		Origin:    &JSONOrigin{Articles: 1000},
		MaxBodies: 16,
	}
	for i := 0; i < 500; i++ {
		if rec := get(e, fmt.Sprintf("/article/%d", 1000+i), ""); rec.Code != 200 {
			t.Fatalf("request %d = %d", i, rec.Code)
		}
		if got := e.storedBodies(); got > 16 {
			t.Fatalf("body store grew to %d entries, limit 16", got)
		}
	}
	if got := e.storedBodies(); got != 16 {
		t.Errorf("final body store = %d entries, want 16 (full)", got)
	}
	// LRU, not wholesale reset: the most recent URL still serves from
	// cache, so a hit returns without an origin fetch even mid-outage.
	fo := &failableOrigin{down: true}
	e.Origin = fo
	if rec := get(e, "/article/1499", ""); rec.Code != 200 || rec.Header().Get("X-Cache") != "HIT" {
		t.Errorf("recent URL = %d %s, want 200 HIT", rec.Code, rec.Header().Get("X-Cache"))
	}
}

// TestHTTPEdgeShedding: with the origin path degraded, machine-class
// requests that miss the cache are shed with 503 while human requests
// still reach the origin; cache hits always serve.
func TestHTTPEdgeShedding(t *testing.T) {
	degraded := false
	reg := obs.NewRegistry()
	e := &HTTPEdge{
		Cache:    NewCache(1<<20, time.Hour, 2),
		Origin:   &JSONOrigin{Articles: 10},
		Degraded: func() bool { return degraded },
	}
	e.Instrument(reg)
	const iotUA = "HomeCam/1.9 (IoT; ESP32)"
	const phoneUA = "NewsApp/3.1 (iPhone; iOS 12.2)"

	// Healthy: telemetry tunnels normally.
	req := httptest.NewRequest("POST", "http://edge.test/ingest/metrics", nil)
	req.Header.Set("User-Agent", iotUA)
	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("healthy POST = %d, want 200", rec.Code)
	}
	get(e, "/stories", phoneUA) // warm the cache

	degraded = true
	// Machine-class miss: shed.
	req = httptest.NewRequest("POST", "http://edge.test/ingest/metrics", nil)
	req.Header.Set("User-Agent", iotUA)
	rec = httptest.NewRecorder()
	e.ServeHTTP(rec, req)
	if rec.Code != 503 {
		t.Fatalf("degraded machine POST = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Error("shed response missing Retry-After")
	}
	// Embedded-device GET of an uncached path: shed too.
	if rec := get(e, "/article/1003", "Roku/DVP-9.10 (289.10E04111A)"); rec.Code != 503 {
		t.Errorf("degraded embedded GET = %d, want 503", rec.Code)
	}
	// Human GET of an uncached path still reaches the origin.
	if rec := get(e, "/article/1004", phoneUA); rec.Code != 200 {
		t.Errorf("degraded human GET = %d, want 200", rec.Code)
	}
	// Cache hits serve regardless of class.
	if rec := get(e, "/stories", iotUA); rec.Code != 200 || rec.Header().Get("X-Cache") != "HIT" {
		t.Errorf("degraded cached GET = %d %s, want 200 HIT", rec.Code, rec.Header().Get("X-Cache"))
	}
	if got := e.Obs.ShedMachine.Value(); got != 2 {
		t.Errorf("machine sheds = %d, want 2", got)
	}
	if got := e.Obs.ShedHuman.Value(); got != 0 {
		t.Errorf("human sheds = %d, want 0", got)
	}
}
