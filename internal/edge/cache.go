// Package edge simulates a CDN edge: a sharded in-memory LRU cache with
// TTL expiry, a consistent-hash pool of edge servers, an origin model,
// and a log replayer that measures the cache behavior of a request
// stream. It closes the loop on the paper's §5.2 implication — that
// ngram-predicted prefetching can improve the cache hit ratio — by
// actually running predicted prefetches against the simulated edge
// (internal/prefetch). It also provides a real net/http caching proxy
// used by the liveedge example.
package edge

import (
	"container/list"
	"hash/fnv"
	"sync"
	"time"
)

// CacheMetrics counts cache outcomes. Retrieve a consistent snapshot
// with Cache.Metrics.
type CacheMetrics struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Expired   int64
	// PrefetchedHits counts hits whose entry was inserted by a prefetch
	// rather than on demand.
	PrefetchedHits int64
	// StaleServes counts expired entries served anyway by
	// LookupWithStale while the origin was unavailable.
	StaleServes int64
}

// HitRatio returns Hits / (Hits + Misses), or 0 when empty.
func (m CacheMetrics) HitRatio() float64 {
	tot := m.Hits + m.Misses
	if tot == 0 {
		return 0
	}
	return float64(m.Hits) / float64(tot)
}

// entry is one cached object.
type entry struct {
	key        string
	size       int64
	expires    time.Time
	prefetched bool
	elem       *list.Element
}

// Cache is a sharded LRU cache with per-entry TTL, keyed by URL.
// Capacity is bounded by total byte size per shard. All methods are safe
// for concurrent use.
type Cache struct {
	shards []*cacheShard
	mask   uint64
	ttl    time.Duration
}

type cacheShard struct {
	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recent
	capBytes int64
	curBytes int64
	metrics  CacheMetrics
}

// NewCache creates a cache with the given total byte capacity, TTL, and
// shard count (rounded up to a power of two; values < 1 become 1).
func NewCache(capacityBytes int64, ttl time.Duration, shards int) *Cache {
	if capacityBytes <= 0 {
		panic("edge: NewCache with non-positive capacity")
	}
	if ttl <= 0 {
		panic("edge: NewCache with non-positive TTL")
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]*cacheShard, n), mask: uint64(n - 1), ttl: ttl}
	per := capacityBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			entries:  make(map[string]*entry),
			lru:      list.New(),
			capBytes: per,
		}
	}
	return c
}

// TTL returns the cache's entry lifetime.
func (c *Cache) TTL() time.Duration { return c.ttl }

func (c *Cache) shardFor(key string) *cacheShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return c.shards[h.Sum64()&c.mask]
}

// Lookup checks for key at the given simulated time. A hit refreshes
// recency. Expired entries count as misses and are removed.
func (c *Cache) Lookup(key string, now time.Time) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.metrics.Misses++
		return false
	}
	if now.After(e.expires) {
		s.remove(e)
		s.metrics.Expired++
		s.metrics.Misses++
		return false
	}
	s.lru.MoveToFront(e.elem)
	s.metrics.Hits++
	if e.prefetched {
		s.metrics.PrefetchedHits++
	}
	return true
}

// LookupWithStale is Lookup for a degraded origin path: a live entry is
// a hit as usual, but an expired one — which Lookup would evict and
// count a miss — is retained and reported stale so the caller can serve
// it while the origin recovers. Stale serves count in
// CacheMetrics.StaleServes, not Hits; the entry's TTL is not refreshed,
// so a later successful fetch replaces it normally.
func (c *Cache) LookupWithStale(key string, now time.Time) (hit, stale bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.metrics.Misses++
		return false, false
	}
	s.lru.MoveToFront(e.elem)
	if now.After(e.expires) {
		s.metrics.StaleServes++
		return false, true
	}
	s.metrics.Hits++
	if e.prefetched {
		s.metrics.PrefetchedHits++
	}
	return true, false
}

// Peek reports whether key is live at now without touching recency or
// metrics; prefetchers use it to avoid duplicate speculative inserts.
func (c *Cache) Peek(key string, now time.Time) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return ok && !now.After(e.expires)
}

// Insert stores key with the given body size, evicting LRU entries as
// needed. prefetched marks entries inserted speculatively. Objects
// larger than a shard's capacity are not cached.
func (c *Cache) Insert(key string, size int64, now time.Time, prefetched bool) {
	if size < 0 {
		size = 0
	}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.capBytes {
		return
	}
	if e, ok := s.entries[key]; ok {
		s.curBytes += size - e.size
		e.size = size
		e.expires = now.Add(c.ttl)
		e.prefetched = prefetched
		s.lru.MoveToFront(e.elem)
	} else {
		e := &entry{key: key, size: size, expires: now.Add(c.ttl), prefetched: prefetched}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.curBytes += size
	}
	for s.curBytes > s.capBytes {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.remove(back.Value.(*entry))
		s.metrics.Evictions++
	}
}

// remove must be called with the shard lock held.
func (s *cacheShard) remove(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.key)
	s.curBytes -= e.size
}

// Len returns the number of live entries (including not-yet-collected
// expired ones).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the current cached byte total.
func (c *Cache) Bytes() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.curBytes
		s.mu.Unlock()
	}
	return n
}

// MetricsSnapshot returns a consistent point-in-time copy of the
// aggregate cache metrics, taking each shard's mutex. Exposition and
// any other external reader must use this (or Metrics) rather than
// reaching into cache internals.
func (c *Cache) MetricsSnapshot() CacheMetrics { return c.Metrics() }

// Metrics returns a snapshot of aggregate cache metrics.
func (c *Cache) Metrics() CacheMetrics {
	var m CacheMetrics
	for _, s := range c.shards {
		s.mu.Lock()
		m.Hits += s.metrics.Hits
		m.Misses += s.metrics.Misses
		m.Evictions += s.metrics.Evictions
		m.Expired += s.metrics.Expired
		m.PrefetchedHits += s.metrics.PrefetchedHits
		m.StaleServes += s.metrics.StaleServes
		s.mu.Unlock()
	}
	return m
}
