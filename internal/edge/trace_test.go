package edge

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// attrMap flattens a span's attrs for assertion.
func attrMap(s obs.SpanStat) map[string]any {
	out := make(map[string]any, len(s.Attrs))
	for _, a := range s.Attrs {
		out[a.Key] = a.Value
	}
	return out
}

// TestHTTPEdgeRequestSpans checks the request-path trace: a miss gets a
// request span with an origin-fetch child; the following hit gets a
// lone request span labeled from the cache.
func TestHTTPEdgeRequestSpans(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	tr := &obs.Trace{Limit: 16}
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 2),
		Origin: &JSONOrigin{Articles: 10},
		Now:    func() time.Time { return now },
		Trace:  tr,
	}

	if rec := get(e, "/stories", ""); rec.Code != 200 {
		t.Fatalf("miss status = %d", rec.Code)
	}
	if rec := get(e, "/stories", ""); rec.Code != 200 {
		t.Fatalf("hit status = %d", rec.Code)
	}

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3 (miss + origin fetch + hit): %+v", len(spans), spans)
	}
	var reqs []obs.SpanStat
	var fetch obs.SpanStat
	for _, s := range spans {
		if s.Name == "origin fetch" {
			fetch = s
		} else {
			reqs = append(reqs, s)
		}
	}
	if len(reqs) != 2 {
		t.Fatalf("request spans = %d, want 2", len(reqs))
	}

	miss, hit := reqs[0], reqs[1]
	if miss.Name != "GET /stories" {
		t.Errorf("request span name = %q", miss.Name)
	}
	ma := attrMap(miss)
	if ma["method"] != "GET" || ma["path"] != "/stories" {
		t.Errorf("miss attrs = %v", ma)
	}
	if ma["status"] != int64(200) || ma["cache"] != "MISS" {
		t.Errorf("miss status/cache attrs = %v", ma)
	}
	if miss.Bytes <= 0 {
		t.Errorf("miss span bytes = %d, want body size", miss.Bytes)
	}

	if fetch.Name == "" {
		t.Fatal("miss has no origin-fetch child span")
	}
	if fetch.ParentID != miss.ID || fetch.Depth != 1 {
		t.Errorf("origin fetch parent/depth = %d/%d, want %d/1", fetch.ParentID, fetch.Depth, miss.ID)
	}
	if fetch.Bytes <= 0 {
		t.Errorf("origin fetch bytes = %d", fetch.Bytes)
	}

	ha := attrMap(hit)
	if ha["cache"] != "HIT" || ha["status"] != int64(200) {
		t.Errorf("hit attrs = %v", ha)
	}
}

// TestHTTPEdgeShedSpan checks that a shed request still leaves a span
// with its 503 and cache=shed labels.
func TestHTTPEdgeShedSpan(t *testing.T) {
	tr := obs.NewTrace()
	e := &HTTPEdge{
		Cache:    NewCache(1<<20, time.Minute, 2),
		Origin:   &JSONOrigin{Articles: 10},
		Degraded: func() bool { return true },
		Trace:    tr,
	}
	// A machine-class miss while degraded is shed with 503.
	if rec := get(e, "/stories", "HomeCam/1.9 (IoT; ESP32)"); rec.Code != 503 {
		t.Fatalf("shed status = %d, want 503", rec.Code)
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	a := attrMap(spans[0])
	if a["status"] != int64(503) || a["cache"] != "shed" {
		t.Errorf("shed span attrs = %v", a)
	}
}

// TestHTTPEdgeNoTrace is the nil contract: an untraced edge serves
// without recording or panicking.
func TestHTTPEdgeNoTrace(t *testing.T) {
	e := &HTTPEdge{
		Cache:  NewCache(1<<20, time.Minute, 2),
		Origin: &JSONOrigin{Articles: 10},
	}
	if rec := get(e, "/stories", ""); rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
}
