package edge

import (
	"sync"
	"testing"
	"time"
)

// TestCacheNegativeChurnRace hammers LookupWithStale/Insert/Lookup from
// many goroutines over a small shared key set with TTLs expiring
// mid-run — the access pattern of a negative cache absorbing a
// hammered-miss storm while the serving path reads the same shards.
// It asserts nothing beyond internal invariants; its value is running
// under `make race`.
func TestCacheNegativeChurnRace(t *testing.T) {
	c := NewCache(1<<14, 10*time.Millisecond, 4)
	keys := []string{"neg:a", "neg:b", "neg:c", "neg:d", "neg:e", "neg:f"}
	base := time.Now()
	const workers = 8
	const iters = 3000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Advance time past the TTL periodically so expiry,
				// stale retention, and eviction all race with inserts.
				now := base.Add(time.Duration(i%40) * time.Millisecond)
				k := keys[(i+w)%len(keys)]
				switch (i + w) % 3 {
				case 0:
					c.Insert(k, int64(100+i%500), now, false)
				case 1:
					hit, stale := c.LookupWithStale(k, now)
					if hit && stale {
						t.Error("LookupWithStale returned hit and stale together")
						return
					}
				default:
					c.Lookup(k, now)
				}
			}
		}(w)
	}
	wg.Wait()

	m := c.Metrics()
	if m.Hits+m.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	if c.Bytes() < 0 {
		t.Fatalf("negative byte accounting: %d", c.Bytes())
	}
}
