package edge

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"
)

// WildcardOrigin answers every path, so replayed synthetic streams —
// whose URLs the manifest-shaped JSONOrigin does not know — exercise
// the full cache hit/miss/uncacheable mix instead of collapsing into
// 404s. It first delegates to Inner (when set) and synthesizes a
// deterministic JSON body for anything Inner rejects: the body size
// and content derive from the hash of the full path including any
// query string, so the same URL always yields the same object while
// query variants are distinct resources — a cache-busting replay sees
// real per-variant origin work instead of colliding on path alone.
// Cacheability is decided on the query-stripped path.
type WildcardOrigin struct {
	// Inner, if non-nil, is consulted first; its successes pass
	// through untouched.
	Inner Origin
	// Latency simulates origin round-trip delay per synthesized fetch
	// (Inner applies its own).
	Latency time.Duration
}

// Fetch implements Origin.
func (o *WildcardOrigin) Fetch(path string) ([]byte, string, bool, error) {
	if o.Inner != nil {
		if body, mime, cacheable, err := o.Inner.Fetch(path); err == nil {
			return body, mime, cacheable, nil
		}
	}
	if o.Latency > 0 {
		time.Sleep(o.Latency)
	}
	h := fnv.New64a()
	h.Write([]byte(path))
	sum := h.Sum64()
	// 200 B .. ~4 KiB, matching the paper's JSON-object size band.
	size := 200 + int(sum%4096)
	var b strings.Builder
	b.Grow(size + 64)
	fmt.Fprintf(&b, `{"path":%q,"object":"%016x","data":"`, path, sum)
	for b.Len() < size {
		fmt.Fprintf(&b, "%016x", sum)
		sum = sum*0x100000001b3 + 0x9e3779b9
	}
	b.WriteString(`"}`)
	// Telemetry and personalized paths stay uncacheable, mirroring the
	// paper's uncacheable JSON share; everything else is cacheable. The
	// prefix test uses the query-stripped path so "?x=/profile/" games
	// nothing.
	base := path
	if i := strings.IndexByte(base, '?'); i >= 0 {
		base = base[:i]
	}
	cacheable := !strings.HasPrefix(base, "/ingest/") && !strings.HasPrefix(base, "/profile/")
	return []byte(b.String()), "application/json", cacheable, nil
}
