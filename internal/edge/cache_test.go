package edge

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1<<20, time.Minute, 4)
	if c.Lookup("a", t0) {
		t.Fatal("empty cache hit")
	}
	c.Insert("a", 100, t0, false)
	if !c.Lookup("a", t0.Add(time.Second)) {
		t.Fatal("inserted entry missed")
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(1<<20, time.Minute, 1)
	c.Insert("a", 100, t0, false)
	if !c.Lookup("a", t0.Add(59*time.Second)) {
		t.Error("entry expired early")
	}
	if c.Lookup("a", t0.Add(61*time.Second)) {
		t.Error("entry served after TTL")
	}
	if m := c.Metrics(); m.Expired != 1 {
		t.Errorf("expired = %d", m.Expired)
	}
	// Expired entry is removed.
	if c.Len() != 0 {
		t.Errorf("len = %d after expiry", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(300, time.Hour, 1)
	c.Insert("a", 100, t0, false)
	c.Insert("b", 100, t0, false)
	c.Insert("c", 100, t0, false)
	// Touch a so b is LRU.
	c.Lookup("a", t0)
	c.Insert("d", 100, t0, false)
	if c.Lookup("b", t0) {
		t.Error("LRU entry b survived eviction")
	}
	if !c.Lookup("a", t0) || !c.Lookup("c", t0) || !c.Lookup("d", t0) {
		t.Error("wrong entry evicted")
	}
	if m := c.Metrics(); m.Evictions != 1 {
		t.Errorf("evictions = %d", m.Evictions)
	}
}

func TestCacheOversizeObjectNotCached(t *testing.T) {
	c := NewCache(100, time.Hour, 1)
	c.Insert("big", 1000, t0, false)
	if c.Len() != 0 {
		t.Error("oversize object cached")
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCache(1000, time.Hour, 1)
	c.Insert("a", 100, t0, false)
	c.Insert("a", 300, t0, false)
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
	if c.Bytes() != 300 {
		t.Errorf("bytes = %d", c.Bytes())
	}
}

func TestCachePrefetchedAccounting(t *testing.T) {
	c := NewCache(1000, time.Hour, 1)
	c.Insert("p", 10, t0, true)
	c.Lookup("p", t0)
	c.Lookup("p", t0)
	m := c.Metrics()
	if m.PrefetchedHits != 2 {
		t.Errorf("prefetched hits = %d", m.PrefetchedHits)
	}
}

func TestCacheNegativeSizeClamped(t *testing.T) {
	c := NewCache(1000, time.Hour, 1)
	c.Insert("n", -5, t0, false)
	if c.Bytes() != 0 {
		t.Errorf("bytes = %d", c.Bytes())
	}
	if !c.Lookup("n", t0) {
		t.Error("zero-size entry should be cached")
	}
}

func TestCacheConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, time.Minute, 1) },
		func() { NewCache(100, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCacheShardRounding(t *testing.T) {
	c := NewCache(1<<20, time.Minute, 3)
	if len(c.shards) != 4 {
		t.Errorf("shards = %d, want 4", len(c.shards))
	}
	c = NewCache(1<<20, time.Minute, 0)
	if len(c.shards) != 1 {
		t.Errorf("shards = %d, want 1", len(c.shards))
	}
}

func TestCacheHitRatio(t *testing.T) {
	var m CacheMetrics
	if m.HitRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
	m = CacheMetrics{Hits: 3, Misses: 1}
	if m.HitRatio() != 0.75 {
		t.Errorf("ratio = %v", m.HitRatio())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(1<<20, time.Minute, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if i%3 == 0 {
					c.Insert(key, 100, t0, false)
				} else {
					c.Lookup(key, t0)
				}
			}
		}(w)
	}
	wg.Wait()
	m := c.Metrics()
	if m.Hits+m.Misses == 0 {
		t.Error("no lookups recorded")
	}
}

func TestCacheBytesTracksEvictions(t *testing.T) {
	c := NewCache(250, time.Hour, 1)
	for i := 0; i < 10; i++ {
		c.Insert(fmt.Sprintf("k%d", i), 100, t0, false)
	}
	if c.Bytes() > 250 {
		t.Errorf("bytes = %d exceeds capacity", c.Bytes())
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}
