package edge

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/uastring"
)

// Origin supplies content for cache misses, abstracting the CDN
// customer's infrastructure.
type Origin interface {
	// Fetch returns the response body, MIME type, and whether the
	// object is configured cacheable.
	Fetch(path string) (body []byte, mime string, cacheable bool, err error)
}

// HTTPEdge is a real net/http caching edge server: requests are served
// from the embedded Cache when possible and fetched from the Origin
// otherwise, and every request is logged as a logfmt.Record — the same
// schema the analyses consume, so an HTTPEdge can feed its own traffic
// into the characterization pipeline (the liveedge example does).
//
// The edge degrades rather than amplifies origin failure: with
// ServeStale set it answers a failed GET from its retained body store
// (with Age and Warning headers), and with Degraded wired to a circuit
// breaker it sheds machine-class requests with 503 instead of queueing
// them against a downed origin (internal/resilience supplies both the
// failure model and the breaker). HTTPEdge is safe for concurrent use.
type HTTPEdge struct {
	// Cache is the edge cache; required.
	Cache *Cache
	// Origin supplies misses; required. Wrap it in a
	// resilience.ResilientOrigin for retries, timeouts, and breaking.
	Origin Origin
	// Log, if non-nil, receives a record per request. The record is
	// freshly allocated per call and may be retained.
	Log func(*logfmt.Record)
	// Obs, if non-nil, receives request metrics: per-method request
	// counts, bytes served, origin fetch latency, 304 counts, stale
	// serves, and sheds. Wire it with Instrument, which also registers
	// the cache's metrics.
	Obs *Instrumentation
	// Trace, if non-nil, records one span per request (named
	// "METHOD /path", with method/path/status/cache attributes) and a
	// child span per origin fetch. The Trace's ring-buffer retention
	// bounds memory, so a long-lived edge keeps only the most recent
	// window of request spans.
	Trace *obs.Trace
	// Now supplies time (defaults to time.Now); tests override it.
	Now func() time.Time
	// ServeStale enables serve-stale-on-error: when the origin fails a
	// GET or HEAD and a previously fetched copy is still in the body
	// store, that copy is served (200, X-Cache: STALE, an Age header,
	// and the RFC 7234 "110 Response is Stale" warning) instead of the
	// error — how a real CDN shields clients from origin brownouts.
	ServeStale bool
	// Degraded, if non-nil, reports that the origin path is degraded
	// (typically resilience.ResilientOrigin.Degraded, i.e. breaker
	// open). While degraded, requests classified sched.ClassMachine
	// that cannot be served from cache are shed with 503: no human is
	// waiting on them, and a recovering origin needs the headroom.
	Degraded func() bool
	// Classify maps a request to its sched class for shedding; nil uses
	// ClassifyRequest.
	Classify func(*http.Request) sched.Class
	// Defend, if non-nil, is consulted before any cache or origin work:
	// it can reject the request outright (429), serve a negative-cache
	// response, or collapse the cache key (see Defense). Admitted
	// requests report their outcome back through RecordOutcome so the
	// defense's detectors stay current. internal/defend supplies the
	// standard detect-and-defend implementation.
	Defend Defense
	// MaxBodies bounds the retained response bodies (default 65536);
	// beyond it the least recently used body is evicted.
	MaxBodies int

	mu      sync.Mutex
	bodies  map[string]*storedBody
	bodyLRU *list.List // front = most recent
}

const maxBodyStore = 1 << 16

// storedBody is one retained response body. Bodies outlive their cache
// entry's TTL on purpose: an expired body is exactly what the
// serve-stale path needs when the origin is down.
type storedBody struct {
	body     []byte
	mime     string
	storedAt time.Time
	key      string
	elem     *list.Element
}

func (e *HTTPEdge) now() time.Time {
	if e.Now != nil {
		return e.Now()
	}
	return time.Now()
}

func (e *HTTPEdge) maxBodies() int {
	if e.MaxBodies > 0 {
		return e.MaxBodies
	}
	return maxBodyStore
}

// storeBody retains a response body for later hits and stale serves,
// evicting the least recently used entry past MaxBodies.
func (e *HTTPEdge) storeBody(key string, body []byte, mime string, now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bodies == nil {
		e.bodies = make(map[string]*storedBody)
		e.bodyLRU = list.New()
	}
	if sb, ok := e.bodies[key]; ok {
		sb.body, sb.mime, sb.storedAt = body, mime, now
		e.bodyLRU.MoveToFront(sb.elem)
		return
	}
	sb := &storedBody{body: body, mime: mime, storedAt: now, key: key}
	sb.elem = e.bodyLRU.PushFront(sb)
	e.bodies[key] = sb
	for len(e.bodies) > e.maxBodies() {
		back := e.bodyLRU.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*storedBody)
		e.bodyLRU.Remove(back)
		delete(e.bodies, victim.key)
	}
}

// loadBody returns the retained body for key, refreshing its recency.
func (e *HTTPEdge) loadBody(key string) (*storedBody, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sb, ok := e.bodies[key]
	if ok {
		e.bodyLRU.MoveToFront(sb.elem)
	}
	return sb, ok
}

// storedBodies returns the number of retained bodies (tests assert the
// MaxBodies bound holds).
func (e *HTTPEdge) storedBodies() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.bodies)
}

// ClassifyRequest is the default shed classifier, reusing the
// scheduler's taxonomy (§7): telemetry ingest, non-GET methods, and
// embedded-device user agents are machine-to-machine — no human is
// waiting — and everything else is human.
func ClassifyRequest(r *http.Request) sched.Class {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return sched.ClassMachine
	}
	if strings.HasPrefix(r.URL.Path, "/ingest/") {
		return sched.ClassMachine
	}
	if uastring.Classify(r.UserAgent()).Device == uastring.DeviceEmbedded {
		return sched.ClassMachine
	}
	return sched.ClassHuman
}

func (e *HTTPEdge) classify(r *http.Request) sched.Class {
	if e.Classify != nil {
		return e.Classify(r)
	}
	return ClassifyRequest(r)
}

// isTemporary reports whether an origin error is transient (it
// implements Temporary() bool, as resilience errors do): the edge
// answers 503 rather than 404 and may serve stale.
func isTemporary(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// ServeHTTP implements http.Handler.
func (e *HTTPEdge) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	now := e.now()
	var reqSp *obs.Span
	if e.Trace != nil {
		reqSp = e.Trace.Start(r.Method + " " + r.URL.Path)
		reqSp.SetAttrs(obs.String("method", r.Method), obs.String("path", r.URL.Path))
	}
	key := "http://" + r.Host + r.URL.String()
	status := http.StatusOK
	var body []byte
	var mime string
	cacheStatus := logfmt.CacheUncacheable
	stale := false

	if e.Defend != nil {
		act := e.Defend.Admit(now, r)
		switch {
		case act.Reject:
			if e.Obs != nil {
				e.Obs.requests(r.Method).Inc()
			}
			w.Header().Set("Content-Type", "application/json")
			if act.RetryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(act.RetryAfter))
			}
			w.WriteHeader(http.StatusTooManyRequests)
			rejBody := []byte(`{"error":"rate limited"}`)
			if r.Method != http.MethodHead {
				w.Write(rejBody)
			}
			if e.Log != nil {
				e.logRequest(r, now, "application/json", http.StatusTooManyRequests, int64(len(rejBody)), logfmt.CacheUncacheable)
			}
			reqSp.SetAttrs(obs.Int("status", http.StatusTooManyRequests), obs.String("cache", "defend-reject"))
			reqSp.End()
			return
		case act.Negative:
			if e.Obs != nil {
				e.Obs.requests(r.Method).Inc()
			}
			negStatus, negMIME := act.NegStatus, act.NegMIME
			if negStatus == 0 {
				negStatus = http.StatusNotFound
			}
			if negMIME == "" {
				negMIME = "application/json"
			}
			w.Header().Set("Content-Type", negMIME)
			w.Header().Set("X-Cache", "NEGATIVE")
			w.WriteHeader(negStatus)
			if r.Method != http.MethodHead {
				w.Write(act.NegBody)
			}
			if e.Log != nil {
				e.logRequest(r, now, negMIME, negStatus, int64(len(act.NegBody)), logfmt.CacheHit)
			}
			reqSp.SetAttrs(obs.Int("status", negStatus), obs.String("cache", "defend-negative"))
			reqSp.End()
			return
		}
		if act.CollapseKey != "" {
			key = act.CollapseKey
		}
	}

	serveFromCache := r.Method == http.MethodGet && e.Cache.Lookup(key, now)
	if serveFromCache {
		if sb, ok := e.loadBody(key); ok {
			body, mime, cacheStatus = sb.body, sb.mime, logfmt.CacheHit
		} else {
			serveFromCache = false // evicted body; refetch below
		}
	}
	if e.Obs != nil {
		e.Obs.requests(r.Method).Inc()
	}
	if !serveFromCache {
		// Load-shed while the origin path is degraded: machine-class
		// requests that would need the origin get a 503 immediately.
		if e.Degraded != nil && e.Degraded() {
			if class := e.classify(r); class == sched.ClassMachine {
				if e.Obs != nil {
					e.Obs.shed(class).Inc()
				}
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				shedBody := []byte(`{"error":"shedding load"}`)
				if r.Method != http.MethodHead {
					w.Write(shedBody)
				}
				if e.Log != nil {
					e.logRequest(r, now, "application/json", http.StatusServiceUnavailable, int64(len(shedBody)), logfmt.CacheUncacheable)
				}
				reqSp.SetAttrs(obs.Int("status", http.StatusServiceUnavailable), obs.String("cache", "shed"))
				reqSp.End()
				e.recordOutcome(now, r, logfmt.CacheUncacheable, http.StatusServiceUnavailable)
				return
			}
		}
		var fetchStart time.Time
		if e.Obs != nil {
			// Origin latency is real wall time even when e.Now is a test
			// clock: Now models the cache's notion of time, not elapsed
			// fetch cost.
			fetchStart = time.Now()
		}
		fsp := reqSp.Child("origin fetch")
		// The query string travels to the origin: query-varying objects
		// (conversion parameters, API arguments) are distinct resources,
		// which is exactly what cache-busting storms exploit.
		fetchPath := r.URL.Path
		if r.URL.RawQuery != "" {
			fetchPath += "?" + r.URL.RawQuery
		}
		b, m, cacheable, err := e.Origin.Fetch(fetchPath)
		fsp.AddBytes(int64(len(b)))
		if err != nil {
			fsp.SetAttrs(obs.Bool("error", true))
		}
		fsp.End()
		if e.Obs != nil {
			e.Obs.OriginFetch.Observe(time.Since(fetchStart).Seconds())
			if err != nil {
				e.Obs.OriginErrors.Inc()
			}
		}
		if err != nil {
			// Serve-stale degradation: a retained copy beats an error.
			if e.ServeStale && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
				if sb, ok := e.loadBody(key); ok {
					body, mime, cacheStatus = sb.body, sb.mime, logfmt.CacheHit
					stale = true
					if e.Obs != nil {
						e.Obs.StaleServes.Inc()
					}
					w.Header().Set("Age", strconv.Itoa(int(now.Sub(sb.storedAt)/time.Second)))
					w.Header().Set("Warning", `110 - "Response is Stale"`)
				}
			}
			if !stale {
				if isTemporary(err) {
					status = http.StatusServiceUnavailable
					b, m = []byte(`{"error":"origin unavailable"}`), "application/json"
				} else {
					status = http.StatusNotFound
					b, m = []byte(`{"error":"not found"}`), "application/json"
				}
				cacheable = false
				body, mime = b, m
			}
		} else {
			body, mime = b, m
			switch {
			case !cacheable || r.Method != http.MethodGet:
				cacheStatus = logfmt.CacheUncacheable
			default:
				cacheStatus = logfmt.CacheMiss
				e.Cache.Insert(key, int64(len(body)), now, false)
				e.storeBody(key, body, mime, now)
			}
		}
	}

	// Conditional requests: a matching If-None-Match short-circuits the
	// body with 304, the validation flow real CDN edges serve for
	// revalidating clients.
	etag := etagFor(body)
	if status == http.StatusOK && r.Header.Get("If-None-Match") == etag {
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Cache", cacheLabel(cacheStatus, stale))
		w.WriteHeader(http.StatusNotModified)
		if e.Obs != nil {
			e.Obs.NotModified.Inc()
		}
		if e.Log != nil {
			e.logRequest(r, now, mime, http.StatusNotModified, 0, cacheStatus)
		}
		reqSp.SetAttrs(obs.Int("status", http.StatusNotModified), obs.String("cache", cacheLabel(cacheStatus, stale)))
		reqSp.End()
		e.recordOutcome(now, r, cacheStatus, http.StatusNotModified)
		return
	}

	w.Header().Set("Content-Type", mime)
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Cache", cacheLabel(cacheStatus, stale))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if r.Method != http.MethodHead {
		w.Write(body)
		if e.Obs != nil {
			e.Obs.BytesServed.Add(int64(len(body)))
		}
	}

	if e.Log != nil {
		e.logRequest(r, now, mime, status, int64(len(body)), cacheStatus)
	}
	reqSp.AddBytes(int64(len(body)))
	reqSp.SetAttrs(obs.Int("status", status), obs.String("cache", cacheLabel(cacheStatus, stale)))
	reqSp.End()
	e.recordOutcome(now, r, cacheStatus, status)
}

// recordOutcome feeds an admitted request's result back to the defense.
func (e *HTTPEdge) recordOutcome(now time.Time, r *http.Request, cache logfmt.CacheStatus, status int) {
	if e.Defend != nil {
		e.Defend.RecordOutcome(now, r, cache, status)
	}
}

// cacheLabel renders the X-Cache header value.
func cacheLabel(s logfmt.CacheStatus, stale bool) string {
	if stale {
		return "STALE"
	}
	return strings.ToUpper(s.String())
}

func (e *HTTPEdge) logRequest(r *http.Request, now time.Time, mime string, status int, size int64, cache logfmt.CacheStatus) {
	host, _, _ := strings.Cut(r.RemoteAddr, ":")
	e.Log(&logfmt.Record{
		Time:      now,
		ClientID:  logfmt.HashClientIP(host),
		Method:    r.Method,
		URL:       "http://" + r.Host + r.URL.String(),
		UserAgent: r.UserAgent(),
		MIMEType:  mime,
		Status:    status,
		Bytes:     size,
		Cache:     cache,
	})
}

// etagFor derives a strong validator from the body.
func etagFor(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf(`"%016x"`, h.Sum64())
}

// JSONOrigin is a synthetic origin that serves the manifest pattern of
// the paper's Table 1: /stories returns a JSON manifest referencing
// /article/<id> objects, which return article bodies. Telemetry paths
// under /ingest/ accept POSTs and are uncacheable. JSONOrigin is safe
// for concurrent use.
type JSONOrigin struct {
	// Articles is the number of article objects (default 100).
	Articles int
	// Latency simulates origin round-trip delay per fetch.
	Latency time.Duration
}

func (o *JSONOrigin) articles() int {
	if o.Articles <= 0 {
		return 100
	}
	return o.Articles
}

// Fetch implements Origin. Query strings are ignored for routing: the
// manifest application serves the same object for every query variant.
func (o *JSONOrigin) Fetch(path string) ([]byte, string, bool, error) {
	if o.Latency > 0 {
		time.Sleep(o.Latency)
	}
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	switch {
	case path == "/stories":
		type story struct {
			ID    int    `json:"article_id"`
			Title string `json:"article_title"`
			Image string `json:"image_url"`
		}
		n := o.articles()
		list := make([]story, 0, 10)
		for i := 0; i < 10 && i < n; i++ {
			list = append(list, story{
				ID:    1000 + i,
				Title: fmt.Sprintf("Story %d", i),
				Image: fmt.Sprintf("/media/image%d.jpg", 1000+i),
			})
		}
		b, err := json.Marshal(list)
		return b, "application/json", true, err
	case strings.HasPrefix(path, "/article/"):
		idStr := strings.TrimPrefix(path, "/article/")
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 1000 || id >= 1000+o.articles() {
			return nil, "", false, fmt.Errorf("edge: no article %q", idStr)
		}
		doc := map[string]interface{}{
			"article": fmt.Sprintf("Lorem ipsum dolor %d...", id),
			"video":   fmt.Sprintf("/media/video%d.mp4", id),
			"images":  []string{fmt.Sprintf("/media/image%d.jpg", id)},
		}
		b, err := json.Marshal(doc)
		return b, "application/json", true, err
	case strings.HasPrefix(path, "/ingest/"):
		return []byte(`{"ok":true}`), "application/json", false, nil
	case strings.HasPrefix(path, "/profile/"):
		// Personalized: uncacheable.
		b := []byte(`{"user":"` + strings.TrimPrefix(path, "/profile/") + `","plan":"pro"}`)
		return b, "application/json", false, nil
	default:
		return nil, "", false, fmt.Errorf("edge: no route %q", path)
	}
}
