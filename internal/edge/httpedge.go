package edge

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/logfmt"
)

// Origin supplies content for cache misses, abstracting the CDN
// customer's infrastructure.
type Origin interface {
	// Fetch returns the response body, MIME type, and whether the
	// object is configured cacheable.
	Fetch(path string) (body []byte, mime string, cacheable bool, err error)
}

// HTTPEdge is a real net/http caching edge server: requests are served
// from the embedded Cache when possible and fetched from the Origin
// otherwise, and every request is logged as a logfmt.Record — the same
// schema the analyses consume, so an HTTPEdge can feed its own traffic
// into the characterization pipeline (the liveedge example does).
// HTTPEdge is safe for concurrent use.
type HTTPEdge struct {
	// Cache is the edge cache; required.
	Cache *Cache
	// Origin supplies misses; required.
	Origin Origin
	// Log, if non-nil, receives a record per request. The record is
	// freshly allocated per call and may be retained.
	Log func(*logfmt.Record)
	// Obs, if non-nil, receives request metrics: per-method request
	// counts, bytes served, origin fetch latency, and 304 counts. Wire
	// it with Instrument, which also registers the cache's metrics.
	Obs *Instrumentation
	// Now supplies time (defaults to time.Now); tests override it.
	Now func() time.Time

	mu     sync.Mutex
	bodies map[string][]byte
}

const maxBodyStore = 1 << 16

func (e *HTTPEdge) now() time.Time {
	if e.Now != nil {
		return e.Now()
	}
	return time.Now()
}

// ServeHTTP implements http.Handler.
func (e *HTTPEdge) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	now := e.now()
	key := "http://" + r.Host + r.URL.String()
	status := http.StatusOK
	var body []byte
	var mime string
	cacheStatus := logfmt.CacheUncacheable

	serveFromCache := r.Method == http.MethodGet && e.Cache.Lookup(key, now)
	if serveFromCache {
		e.mu.Lock()
		cached, ok := e.bodies[key]
		e.mu.Unlock()
		if ok {
			body, mime, cacheStatus = cached, "application/json", logfmt.CacheHit
		} else {
			serveFromCache = false // evicted body; refetch below
		}
	}
	if e.Obs != nil {
		e.Obs.requests(r.Method).Inc()
	}
	if !serveFromCache {
		var fetchStart time.Time
		if e.Obs != nil {
			// Origin latency is real wall time even when e.Now is a test
			// clock: Now models the cache's notion of time, not elapsed
			// fetch cost.
			fetchStart = time.Now()
		}
		b, m, cacheable, err := e.Origin.Fetch(r.URL.Path)
		if e.Obs != nil {
			e.Obs.OriginFetch.Observe(time.Since(fetchStart).Seconds())
			if err != nil {
				e.Obs.OriginErrors.Inc()
			}
		}
		if err != nil {
			status = http.StatusNotFound
			b, m = []byte(`{"error":"not found"}`), "application/json"
			cacheable = false
		}
		body, mime = b, m
		switch {
		case !cacheable || r.Method != http.MethodGet:
			cacheStatus = logfmt.CacheUncacheable
		default:
			cacheStatus = logfmt.CacheMiss
			e.Cache.Insert(key, int64(len(body)), now, false)
			e.mu.Lock()
			if e.bodies == nil {
				e.bodies = make(map[string][]byte)
			}
			if len(e.bodies) >= maxBodyStore {
				e.bodies = make(map[string][]byte) // crude bound for the demo proxy
			}
			e.bodies[key] = body
			e.mu.Unlock()
		}
	}

	// Conditional requests: a matching If-None-Match short-circuits the
	// body with 304, the validation flow real CDN edges serve for
	// revalidating clients.
	etag := etagFor(body)
	if status == http.StatusOK && r.Header.Get("If-None-Match") == etag {
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Cache", strings.ToUpper(cacheStatus.String()))
		w.WriteHeader(http.StatusNotModified)
		if e.Obs != nil {
			e.Obs.NotModified.Inc()
		}
		if e.Log != nil {
			e.logRequest(r, now, mime, http.StatusNotModified, 0, cacheStatus)
		}
		return
	}

	w.Header().Set("Content-Type", mime)
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Cache", strings.ToUpper(cacheStatus.String()))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if r.Method != http.MethodHead {
		w.Write(body)
		if e.Obs != nil {
			e.Obs.BytesServed.Add(int64(len(body)))
		}
	}

	if e.Log != nil {
		e.logRequest(r, now, mime, status, int64(len(body)), cacheStatus)
	}
}

func (e *HTTPEdge) logRequest(r *http.Request, now time.Time, mime string, status int, size int64, cache logfmt.CacheStatus) {
	host, _, _ := strings.Cut(r.RemoteAddr, ":")
	e.Log(&logfmt.Record{
		Time:      now,
		ClientID:  logfmt.HashClientIP(host),
		Method:    r.Method,
		URL:       "http://" + r.Host + r.URL.String(),
		UserAgent: r.UserAgent(),
		MIMEType:  mime,
		Status:    status,
		Bytes:     size,
		Cache:     cache,
	})
}

// etagFor derives a strong validator from the body.
func etagFor(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf(`"%016x"`, h.Sum64())
}

// JSONOrigin is a synthetic origin that serves the manifest pattern of
// the paper's Table 1: /stories returns a JSON manifest referencing
// /article/<id> objects, which return article bodies. Telemetry paths
// under /ingest/ accept POSTs and are uncacheable. JSONOrigin is safe
// for concurrent use.
type JSONOrigin struct {
	// Articles is the number of article objects (default 100).
	Articles int
	// Latency simulates origin round-trip delay per fetch.
	Latency time.Duration
}

func (o *JSONOrigin) articles() int {
	if o.Articles <= 0 {
		return 100
	}
	return o.Articles
}

// Fetch implements Origin.
func (o *JSONOrigin) Fetch(path string) ([]byte, string, bool, error) {
	if o.Latency > 0 {
		time.Sleep(o.Latency)
	}
	switch {
	case path == "/stories":
		type story struct {
			ID    int    `json:"article_id"`
			Title string `json:"article_title"`
			Image string `json:"image_url"`
		}
		n := o.articles()
		list := make([]story, 0, 10)
		for i := 0; i < 10 && i < n; i++ {
			list = append(list, story{
				ID:    1000 + i,
				Title: fmt.Sprintf("Story %d", i),
				Image: fmt.Sprintf("/media/image%d.jpg", 1000+i),
			})
		}
		b, err := json.Marshal(list)
		return b, "application/json", true, err
	case strings.HasPrefix(path, "/article/"):
		idStr := strings.TrimPrefix(path, "/article/")
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 1000 || id >= 1000+o.articles() {
			return nil, "", false, fmt.Errorf("edge: no article %q", idStr)
		}
		doc := map[string]interface{}{
			"article": fmt.Sprintf("Lorem ipsum dolor %d...", id),
			"video":   fmt.Sprintf("/media/video%d.mp4", id),
			"images":  []string{fmt.Sprintf("/media/image%d.jpg", id)},
		}
		b, err := json.Marshal(doc)
		return b, "application/json", true, err
	case strings.HasPrefix(path, "/ingest/"):
		return []byte(`{"ok":true}`), "application/json", false, nil
	case strings.HasPrefix(path, "/profile/"):
		// Personalized: uncacheable.
		b := []byte(`{"user":"` + strings.TrimPrefix(path, "/profile/") + `","plan":"pro"}`)
		return b, "application/json", false, nil
	default:
		return nil, "", false, fmt.Errorf("edge: no route %q", path)
	}
}
