package edge

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestURLFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edge.url")

	// Reader starts first: AwaitURLFile must tolerate the file not
	// existing yet.
	type got struct {
		urls []string
		err  error
	}
	ch := make(chan got, 1)
	go func() {
		urls, err := AwaitURLFile(context.Background(), path, 2*time.Second)
		ch <- got{urls, err}
	}()

	time.Sleep(50 * time.Millisecond)
	if err := WriteURLFile(path, "http://127.0.0.1:1234", "http://127.0.0.1:5678"); err != nil {
		t.Fatal(err)
	}
	g := <-ch
	if g.err != nil {
		t.Fatal(g.err)
	}
	if len(g.urls) != 2 || g.urls[0] != "http://127.0.0.1:1234" || g.urls[1] != "http://127.0.0.1:5678" {
		t.Fatalf("urls = %v", g.urls)
	}

	// No leftover temp files from the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory not clean after atomic publish: %v", entries)
	}
}

func TestWriteURLFileRejectsEmpty(t *testing.T) {
	if err := WriteURLFile(filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("empty URL list accepted")
	}
}

func TestAwaitURLFileTimeout(t *testing.T) {
	_, err := AwaitURLFile(context.Background(), filepath.Join(t.TempDir(), "never"), 80*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout")
	}
}

func TestAwaitReady(t *testing.T) {
	var ready atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	// Flips ready after a few failed probes.
	time.AfterFunc(80*time.Millisecond, func() { ready.Store(true) })
	if err := AwaitReady(context.Background(), srv.URL, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	ready.Store(false)
	if err := AwaitReady(context.Background(), srv.URL, 100*time.Millisecond); err == nil {
		t.Fatal("expected readiness timeout against a 503 endpoint")
	}
}

func TestWildcardOrigin(t *testing.T) {
	o := &WildcardOrigin{Inner: &JSONOrigin{Articles: 3}}

	// Known paths pass through the inner origin untouched.
	body, mime, cacheable, err := o.Fetch("/stories")
	if err != nil || mime != "application/json" || !cacheable || len(body) == 0 {
		t.Fatalf("inner passthrough: %q %v %v %v", mime, cacheable, len(body), err)
	}

	// Unknown paths synthesize a deterministic cacheable JSON body.
	b1, mime, cacheable, err := o.Fetch("/v2/widgets/17")
	if err != nil || mime != "application/json" || !cacheable {
		t.Fatalf("synthesized: %q %v %v", mime, cacheable, err)
	}
	b2, _, _, _ := o.Fetch("/v2/widgets/17")
	if string(b1) != string(b2) {
		t.Error("same path produced different bodies")
	}
	b3, _, _, _ := o.Fetch("/v2/widgets/18")
	if string(b1) == string(b3) {
		t.Error("different paths produced identical bodies")
	}
	if len(b1) < 200 || len(b1) > 5000 {
		t.Errorf("body size %d outside the paper's object band", len(b1))
	}

	// Telemetry and personalized prefixes stay uncacheable.
	for _, path := range []string{"/ingest/metrics", "/profile/alice"} {
		if _, _, cacheable, err := o.Fetch(path); err != nil || cacheable {
			t.Errorf("%s: cacheable=%v err=%v, want uncacheable", path, cacheable, err)
		}
	}
}
