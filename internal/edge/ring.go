package edge

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring over named members, the routing seam
// shared by the in-process Pool and the multi-process fleet front tier
// (internal/fleet). Each member is spread over the ring as vnodes so
// load stays balanced, and the ring for a given member set is a pure
// function of the names: add order, removal history, and rebuild count
// never change where a key lands. That determinism is what makes
// rebalancing predictable — when one of N members leaves, only the
// keys whose arcs it owned (~1/N of them) remap, and they remap the
// same way on every process that agrees on the member set.
//
// Ring is safe for concurrent use: lookups take a read lock, and
// membership changes (the health checker's up/down transitions)
// rebuild the point list under the write lock.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	members map[string]struct{}
	points  []namedPoint
}

type namedPoint struct {
	hash uint64
	name string
}

// NewRing returns an empty ring with the given vnodes per member
// (values <= 0 use the package default, vnodesPerServer).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = vnodesPerServer
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// memberPoints computes the ring points for one member name: an FNV
// base spread by splitmix64, because raw FNV of similar strings
// clusters on the ring.
func memberPoints(name string, vnodes int, out []namedPoint) []namedPoint {
	h := fnv.New64a()
	h.Write([]byte(name))
	base := h.Sum64()
	for v := 0; v < vnodes; v++ {
		x := base + uint64(v)*0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		out = append(out, namedPoint{hash: x, name: name})
	}
	return out
}

// keyHash is the ring position of a routing key: an FNV base finished
// with the splitmix64 mixer. The mix is load-bearing — raw FNV-64a
// propagates a trailing byte only ~40 bits up, so keys sharing a long
// prefix ("http://host:port/object/1", ".../object/2", ...) cluster
// into one narrow arc and a single member ends up owning all of them.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rebuild recomputes the sorted point list from the member set. Caller
// holds the write lock.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for name := range r.members {
		r.points = memberPoints(name, r.vnodes, r.points)
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break by name so the ring is deterministic even in the
		// astronomically unlikely event of a vnode hash collision.
		return r.points[i].name < r.points[j].name
	})
}

// Add inserts members (idempotent) and rebalances.
func (r *Ring) Add(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for _, n := range names {
		if _, ok := r.members[n]; !ok {
			r.members[n] = struct{}{}
			changed = true
		}
	}
	if changed {
		r.rebuild()
	}
}

// Remove deletes members (idempotent) and rebalances.
func (r *Ring) Remove(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for _, n := range names {
		if _, ok := r.members[n]; ok {
			delete(r.members, n)
			changed = true
		}
	}
	if changed {
		r.rebuild()
	}
}

// Has reports membership.
func (r *Ring) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[name]
	return ok
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the member responsible for key, or "" on an empty
// ring.
func (r *Ring) Lookup(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(keyHash(key))].name
}

// LookupN returns up to n distinct members for key in ring order: the
// owner first, then the successors a failover or hedge should try, in
// the order they would inherit the key's arc if earlier members left.
func (r *Ring) LookupN(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	start := r.search(keyHash(key))
	for i := 0; len(out) < n && i < len(r.points); i++ {
		name := r.points[(start+i)%len(r.points)].name
		dup := false
		for _, have := range out {
			if have == name {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, name)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise-after
// hash. Caller holds a lock.
func (r *Ring) search(hash uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		i = 0
	}
	return i
}
