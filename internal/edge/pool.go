package edge

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logfmt"
)

// Server is one simulated edge server with its own cache.
type Server struct {
	// Name identifies the server ("sea-01").
	Name  string
	Cache *Cache

	// Requests counts requests routed to this server. It is atomic so
	// the count stays exact under concurrent replay and can be scraped
	// while a replay runs.
	Requests atomic.Int64
}

// Pool routes requests across edge servers with consistent hashing over
// the object URL, as a CDN front-ends a rack: the same object always
// lands on the same server, maximizing its cache utility. Pool routing
// and the per-server request counters are safe for concurrent use.
//
// The routing itself lives in Ring — the same ring the multi-process
// fleet front tier (internal/fleet) uses — so the in-process
// simulation and the live fleet agree byte-for-byte on where an object
// lands.
type Pool struct {
	servers []*Server
	byName  map[string]*Server
	ring    *Ring

	// Admission optionally gates cache insertion on miss: when non-nil
	// and false for a URL, the response is served from origin but not
	// cached. CDNs use this to keep one-hit wonders from churning the
	// cache. Concurrent Replay requires a concurrency-safe filter: use
	// ConcurrentSecondHitFilter, not SecondHitFilter.
	Admission func(url string) bool

	// OriginUp, if non-nil, models origin availability at a record's
	// timestamp during Replay. While the origin is down the pool
	// degrades the way the HTTPEdge does: live cache hits still serve,
	// expired entries are served stale (ReplayResult.StaleServes),
	// uncacheable tunnels are shed (Shed), and uncached misses fail
	// (Failed). Nil means always up.
	OriginUp func(t time.Time) bool
}

// SecondHitFilter returns an admission filter implementing the classic
// "cache on second hit" policy: a URL is admitted only once it has been
// requested before, so objects fetched exactly once never displace
// recurring ones. The filter is not safe for concurrent use; replays
// that shard records across goroutines need ConcurrentSecondHitFilter.
func SecondHitFilter() func(url string) bool {
	seen := make(map[string]struct{})
	return func(url string) bool {
		if _, ok := seen[url]; ok {
			return true
		}
		seen[url] = struct{}{}
		return false
	}
}

// ConcurrentSecondHitFilter is SecondHitFilter behind a mutex, safe for
// concurrent Replay. The lock serializes only the admission check — a
// handful of map operations — so contention stays far below the cache
// shard locks the same replay already takes.
func ConcurrentSecondHitFilter() func(url string) bool {
	var mu sync.Mutex
	seen := make(map[string]struct{})
	return func(url string) bool {
		mu.Lock()
		defer mu.Unlock()
		if _, ok := seen[url]; ok {
			return true
		}
		seen[url] = struct{}{}
		return false
	}
}

// vnodesPerServer spreads each server over the ring for balance.
const vnodesPerServer = 64

// NewPool creates n servers, each with a cache of capacityBytes and the
// given TTL.
func NewPool(n int, capacityBytes int64, ttl time.Duration) *Pool {
	if n <= 0 {
		panic("edge: NewPool with n <= 0")
	}
	p := &Pool{
		byName: make(map[string]*Server, n),
		ring:   NewRing(vnodesPerServer),
	}
	for i := 0; i < n; i++ {
		srv := &Server{
			Name:  fmt.Sprintf("edge-%02d", i),
			Cache: NewCache(capacityBytes, ttl, 4),
		}
		p.servers = append(p.servers, srv)
		p.byName[srv.Name] = srv
		p.ring.Add(srv.Name)
	}
	return p
}

// Servers returns the pool's servers.
func (p *Pool) Servers() []*Server { return p.servers }

// Ring exposes the pool's consistent-hash ring.
func (p *Pool) Ring() *Ring { return p.ring }

// Route returns the server responsible for the URL.
func (p *Pool) Route(url string) *Server {
	return p.byName[p.ring.Lookup(url)]
}

// Metrics aggregates cache metrics across servers.
func (p *Pool) Metrics() CacheMetrics {
	var m CacheMetrics
	for _, s := range p.servers {
		sm := s.Cache.Metrics()
		m.Hits += sm.Hits
		m.Misses += sm.Misses
		m.Evictions += sm.Evictions
		m.Expired += sm.Expired
		m.PrefetchedHits += sm.PrefetchedHits
		m.StaleServes += sm.StaleServes
	}
	return m
}

// ReplayResult summarizes a log replay through the edge.
type ReplayResult struct {
	Requests    int64
	Cacheable   int64
	Uncacheable int64
	Hits        int64
	// OriginBytes is the traffic fetched from origin (misses and
	// uncacheable tunnels).
	OriginBytes int64
	// ServedBytes is the total response traffic actually delivered
	// (shed and failed requests deliver nothing).
	ServedBytes int64
	// StaleServes counts expired cache entries served while the origin
	// was down (see Pool.OriginUp).
	StaleServes int64
	// Shed counts uncacheable tunnels refused while the origin was down.
	Shed int64
	// Failed counts requests with no usable response: origin down and
	// nothing — live or stale — in cache.
	Failed int64
}

// HitRatio returns hits over cacheable requests.
func (r ReplayResult) HitRatio() float64 {
	if r.Cacheable == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Cacheable)
}

// Availability returns the fraction of requests answered with a usable
// response (anything not shed or failed).
func (r ReplayResult) Availability() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Requests-r.Shed-r.Failed) / float64(r.Requests)
}

// Replay streams one record through the pool: uncacheable requests
// tunnel to origin; cacheable GETs consult the responsible server's
// cache and insert on miss. The record's own Cache field is ignored —
// the simulation recomputes hits from its cache state — except that
// CacheUncacheable marks the object uncacheable. With OriginUp set,
// records arriving while the origin is down take the degraded path
// (stale serves, sheds, failures) instead of fetching.
func (p *Pool) Replay(r *logfmt.Record, res *ReplayResult) {
	res.Requests++
	srv := p.Route(r.URL)
	srv.Requests.Add(1)
	up := p.OriginUp == nil || p.OriginUp(r.Time)
	if r.Cache == logfmt.CacheUncacheable || r.Method != "GET" {
		if !up {
			res.Shed++
			return
		}
		res.Uncacheable++
		res.OriginBytes += r.Bytes
		res.ServedBytes += r.Bytes
		return
	}
	res.Cacheable++
	if !up {
		// Origin down: anything in cache — live or stale — serves;
		// everything else fails.
		hit, stale := srv.Cache.LookupWithStale(r.URL, r.Time)
		switch {
		case hit:
			res.Hits++
			res.ServedBytes += r.Bytes
		case stale:
			res.StaleServes++
			res.ServedBytes += r.Bytes
		default:
			res.Failed++
		}
		return
	}
	if srv.Cache.Lookup(r.URL, r.Time) {
		res.Hits++
		res.ServedBytes += r.Bytes
		return
	}
	res.OriginBytes += r.Bytes
	res.ServedBytes += r.Bytes
	if p.Admission != nil && !p.Admission(r.URL) {
		return
	}
	srv.Cache.Insert(r.URL, r.Bytes, r.Time, false)
}
