// Package core ties the substrates together: it abstracts where a log
// stream comes from (a file, memory, or the synthetic generator), runs
// one or many observers over a single pass, and fans records out across
// CPU cores for observers that support sharded aggregation. The
// experiment runners and the cmd/ tools are thin wrappers over this
// package.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/logfmt"
	"repro/internal/synth"
)

// Source yields a stream of log records. The *logfmt.Record passed to
// the callback may be reused between calls; observers must copy any
// retained fields. Each returns the callback's first error.
type Source interface {
	Each(fn func(*logfmt.Record) error) error
}

// MemorySource serves records from a slice.
type MemorySource []logfmt.Record

// Each implements Source.
func (m MemorySource) Each(fn func(*logfmt.Record) error) error {
	for i := range m {
		if err := fn(&m[i]); err != nil {
			return err
		}
	}
	return nil
}

// FileSource streams records from a log file (TSV or JSON Lines,
// optionally gzipped, the format inferred from the extension; the
// binary stream and chunk container are detected by magic bytes).
type FileSource string

// Each implements Source.
func (f FileSource) Each(fn func(*logfmt.Record) error) error {
	rd, closer, err := logfmt.OpenFile(string(f))
	if err != nil {
		return err
	}
	defer closer.Close()
	return rd.ForEach(fn)
}

// SynthSource generates records on the fly from a synth.Config; no
// dataset is materialized.
type SynthSource synth.Config

// Each implements Source.
func (s SynthSource) Each(fn func(*logfmt.Record) error) error {
	return synth.Generate(synth.Config(s), fn)
}

// SizeHinter is implemented by sources that can estimate their record
// count up front; Collect uses it to allocate the result slice once
// instead of growing it through the append doubling schedule.
type SizeHinter interface {
	SizeHint() int
}

// SizeHint estimates the record count (the generator hits the target
// within ~10%, so reserve a little headroom).
func (s SynthSource) SizeHint() int { return s.TargetRequests + s.TargetRequests/8 }

// Collect materializes a source into memory. Analyses that need
// multiple passes (prefetch comparison, train/test workflows) collect
// once and reuse the slice.
func Collect(src Source) ([]logfmt.Record, error) {
	var out []logfmt.Record
	if h, ok := src.(SizeHinter); ok {
		if n := h.SizeHint(); n > 0 {
			out = make([]logfmt.Record, 0, n)
		}
	}
	err := src.Each(func(r *logfmt.Record) error {
		out = append(out, *r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Observer consumes records one at a time.
type Observer interface {
	Observe(r *logfmt.Record)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(*logfmt.Record)

// Observe implements Observer.
func (f ObserverFunc) Observe(r *logfmt.Record) { f(r) }

// Run streams the source once through every observer in order.
func Run(src Source, obs ...Observer) error {
	return src.Each(func(r *logfmt.Record) error {
		for _, o := range obs {
			o.Observe(r)
		}
		return nil
	})
}

// RunParallel fans records out to per-worker observers (created by
// newShard) partitioned by client ID, so every client's records are seen
// in order by exactly one shard; merge receives all shards when the
// stream ends. Aggregations with a Merge operation (e.g.
// taxonomy.Characterization) use this to use all cores on large files.
//
// Partitioning by client keeps per-client analyses (flows, sequences)
// correct under parallelism; analyses requiring global order should use
// Run instead.
func RunParallel[T Observer](src Source, workers int, newShard func() T, merge func([]T)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]T, workers)
	chans := make([]chan logfmt.Record, workers)
	var wg sync.WaitGroup
	for i := range shards {
		shards[i] = newShard()
		chans[i] = make(chan logfmt.Record, 1024)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rec := range chans[i] {
				shards[i].Observe(&rec)
			}
		}(i)
	}
	err := src.Each(func(r *logfmt.Record) error {
		w := int(r.ClientID % uint64(workers))
		chans[w] <- *r
		return nil
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if err != nil {
		return fmt.Errorf("core: parallel run: %w", err)
	}
	merge(shards)
	return nil
}
