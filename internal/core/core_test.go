package core

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/logfmt"
	"repro/internal/synth"
	"repro/internal/taxonomy"
)

var t0 = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)

func mem(n int) MemorySource {
	recs := make(MemorySource, n)
	for i := range recs {
		recs[i] = logfmt.Record{
			Time: t0.Add(time.Duration(i) * time.Second), ClientID: uint64(i % 7),
			Method: "GET", URL: "https://x.com/a", UserAgent: "App/1 (iPhone)",
			MIMEType: "application/json", Status: 200, Bytes: 100,
			Cache: logfmt.CacheHit,
		}
	}
	return recs
}

func TestMemorySource(t *testing.T) {
	src := mem(10)
	n := 0
	if err := src.Each(func(*logfmt.Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("saw %d records", n)
	}
}

func TestMemorySourceStopsOnError(t *testing.T) {
	src := mem(10)
	wantErr := errors.New("stop")
	n := 0
	err := src.Each(func(*logfmt.Record) error {
		n++
		if n == 3 {
			return wantErr
		}
		return nil
	})
	if err != wantErr || n != 3 {
		t.Errorf("err=%v n=%d", err, n)
	}
}

func TestFileSourceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "logs.tsv.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := logfmt.NewGzipWriter(f, logfmt.FormatTSV)
	recs := mem(25)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	n := 0
	if err := FileSource(path).Each(func(r *logfmt.Record) error {
		if err := r.Validate(); err != nil {
			return err
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("read %d records", n)
	}
}

func TestFileSourceMissing(t *testing.T) {
	if err := FileSource("/nonexistent/x.tsv").Each(func(*logfmt.Record) error { return nil }); err == nil {
		t.Error("missing file should error")
	}
}

func TestSynthSource(t *testing.T) {
	cfg := synth.ShortTermConfig(3, 0.0004)
	n := 0
	if err := SynthSource(cfg).Each(func(*logfmt.Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n < 1000 {
		t.Errorf("generated only %d records", n)
	}
}

func TestCollect(t *testing.T) {
	recs, err := Collect(mem(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("collected %d", len(recs))
	}
	// Ensure copies, not aliases: mutate and re-check.
	recs[0].Bytes = 999
	recs2, _ := Collect(mem(5))
	if recs2[0].Bytes == 999 {
		t.Error("collect aliased records")
	}
}

func TestRunMultipleObservers(t *testing.T) {
	var a, b int
	err := Run(mem(8),
		ObserverFunc(func(*logfmt.Record) { a++ }),
		ObserverFunc(func(*logfmt.Record) { b++ }))
	if err != nil {
		t.Fatal(err)
	}
	if a != 8 || b != 8 {
		t.Errorf("a=%d b=%d", a, b)
	}
}

type countShard struct {
	n       int64
	clients map[uint64]bool
}

func (c *countShard) Observe(r *logfmt.Record) {
	c.n++
	c.clients[r.ClientID] = true
}

func TestRunParallelPartitionsByClient(t *testing.T) {
	src := mem(700)
	var total int64
	var shards []*countShard
	err := RunParallel(src, 4, func() *countShard {
		return &countShard{clients: map[uint64]bool{}}
	}, func(s []*countShard) {
		shards = s
		for _, sh := range s {
			atomic.AddInt64(&total, sh.n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 700 {
		t.Errorf("total = %d", total)
	}
	// A client must appear in exactly one shard.
	seen := map[uint64]int{}
	for _, sh := range shards {
		for c := range sh.clients {
			seen[c]++
		}
	}
	for c, n := range seen {
		if n != 1 {
			t.Errorf("client %d in %d shards", c, n)
		}
	}
}

func TestRunParallelMatchesSequentialCharacterization(t *testing.T) {
	recs, err := Collect(SynthSource(synth.ShortTermConfig(11, 0.0004)))
	if err != nil {
		t.Fatal(err)
	}
	src := MemorySource(recs)

	seq := taxonomy.NewCharacterization()
	if err := Run(src, ObserverFunc(seq.ObserveAny)); err != nil {
		t.Fatal(err)
	}

	// RunParallel feeds Observe; the JSON routing lives in ObserveAny,
	// so wrap each shard.
	par2 := taxonomy.NewCharacterization()
	err = RunParallel(src, 4, func() *anyShard { return &anyShard{c: taxonomy.NewCharacterization()} },
		func(shards []*anyShard) {
			for _, s := range shards {
				par2.Merge(s.c)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if par2.Total != seq.Total {
		t.Errorf("parallel total %d != sequential %d", par2.Total, seq.Total)
	}
	if par2.GETShare() != seq.GETShare() {
		t.Errorf("GET share diverged: %v vs %v", par2.GETShare(), seq.GETShare())
	}
	if par2.UncacheableShare() != seq.UncacheableShare() {
		t.Error("uncacheable share diverged")
	}
}

type anyShard struct{ c *taxonomy.Characterization }

func (a *anyShard) Observe(r *logfmt.Record) { a.c.ObserveAny(r) }

func TestRunParallelDefaultsWorkers(t *testing.T) {
	var total int64
	err := RunParallel(mem(20), 0, func() *countShard {
		return &countShard{clients: map[uint64]bool{}}
	}, func(s []*countShard) {
		for _, sh := range s {
			total += sh.n
		}
	})
	if err != nil || total != 20 {
		t.Errorf("err=%v total=%d", err, total)
	}
}

func TestRunParallelPropagatesSourceError(t *testing.T) {
	bad := FileSource("/nope")
	err := RunParallel(bad, 2, func() *countShard {
		return &countShard{clients: map[uint64]bool{}}
	}, func([]*countShard) { t.Error("merge called on error") })
	if err == nil {
		t.Error("source error swallowed")
	}
}
