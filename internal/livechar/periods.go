package livechar

import (
	"time"

	"repro/internal/dsp"
	"repro/internal/stats"
)

// This file maintains the per-bin request-rate signal behind the live
// periodicity view: a ring of fixed-width time bins (the paper samples
// request counts at 1 s) fed by event timestamps, plus the wrapper that
// runs the §5.1 autocorrelation + periodogram detector over the ring's
// contents. The ring is indexed by absolute bin number (event time /
// bin width) so replayed historical streams and live traffic both bin
// deterministically.

// binRing accumulates event counts into fixed-width bins, keeping the
// most recent `cap(counts)` bins. Not safe for concurrent use.
type binRing struct {
	binNS   int64
	counts  []int64
	first   int64 // absolute index of the oldest retained bin (-1: empty)
	last    int64 // absolute index of the newest bin
	origin  int64 // absolute index of the first bin after a (re)start
	version int64 // bumped whenever a bin changes, for detection caching
}

func newBinRing(bin time.Duration, capacity int) *binRing {
	if capacity < 4 {
		capacity = 4
	}
	return &binRing{binNS: bin.Nanoseconds(), counts: make([]int64, capacity), first: -1, last: -1, origin: -1}
}

func (r *binRing) add(tNS int64, n int64) {
	idx := tNS / r.binNS
	capacity := int64(len(r.counts))
	if r.first < 0 {
		r.first, r.last, r.origin = idx, idx, idx
		r.counts[idx%capacity] = 0
	}
	switch {
	case idx < r.first:
		return // older than the retained window: drop silently
	case idx > r.last:
		if idx-r.last >= capacity {
			// Gap swallows the whole ring: restart from idx.
			clear(r.counts)
			r.first, r.last, r.origin = idx, idx, idx
		} else {
			for b := r.last + 1; b <= idx; b++ {
				r.counts[b%capacity] = 0
			}
			r.last = idx
			if r.last-r.first >= capacity {
				r.first = r.last - capacity + 1
			}
		}
	}
	r.counts[idx%capacity] += n
	r.version++
}

// series returns the retained bins oldest-first plus the start time of
// the first returned bin. The newest bin is still filling and is
// included; detection callers may prefer to drop it.
func (r *binRing) series() (time.Time, []int64) {
	if r.first < 0 {
		return time.Time{}, nil
	}
	capacity := int64(len(r.counts))
	out := make([]int64, 0, r.last-r.first+1)
	for b := r.first; b <= r.last; b++ {
		out = append(out, r.counts[b%capacity])
	}
	return time.Unix(0, r.first*r.binNS).UTC(), out
}

// leadingPartial reports whether the oldest retained bin is the first
// bin after a (re)start — such a bin began mid-way through its
// interval, and its artificially low count is a large aperiodic spike
// that can mask real periodicity from the detector.
func (r *binRing) leadingPartial() bool {
	return r.first >= 0 && r.first == r.origin
}

// Period is one detected periodicity of the request-rate signal.
type Period struct {
	// Seconds is the period length in seconds (lag × bin width).
	Seconds float64 `json:"seconds"`
	// LagBins is the detected period in bins.
	LagBins int `json:"lag_bins"`
	// ACF is the autocorrelation value at the detected lag.
	ACF float64 `json:"acf"`
	// Power is the periodogram power of the supporting frequency.
	Power float64 `json:"power"`
}

// minDetectBins is the shortest signal worth running the detector on:
// below this the permutation thresholds are meaningless.
const minDetectBins = 16

// DetectPeriods runs the paper's §5.1 permutation-thresholded
// autocorrelation + periodogram detector over a bin series and returns
// up to maxPeriods significant periods, strongest first (empty, never
// nil, when none are significant or the signal is too short). The last
// bin is assumed complete; callers with a still-filling tail bin should
// trim it first. seed fixes the permutation RNG for reproducibility.
func DetectPeriods(counts []int64, bin time.Duration, seed uint64, maxPeriods int) []Period {
	out := []Period{}
	if len(counts) < minDetectBins {
		return out
	}
	signal := make([]float64, len(counts))
	for i, c := range counts {
		signal[i] = float64(c)
	}
	dets, err := dsp.DetectAll(signal, dsp.DefaultDetectorConfig(), stats.NewRNG(seed), maxPeriods)
	if err != nil {
		return out
	}
	for _, d := range dets {
		out = append(out, Period{
			Seconds: float64(d.Period) * bin.Seconds(),
			LagBins: d.Period,
			ACF:     d.ACFValue,
			Power:   d.Power,
		})
	}
	return out
}
