package livechar

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// This file merges per-node snapshots into one fleet-wide view — the
// jsonfleet /charz aggregation. Every sketch in a Snapshot was chosen
// to be mergeable: HDR sketches merge losslessly bucket-by-bucket,
// Space-Saving tops merge with a provable error bound (see mergeTops),
// rate bins sum after time alignment, and periodicity is recomputed
// from the merged signal rather than naively unioning per-node periods
// (a fleet-wide period only exists in the fleet-wide signal).

// maxMergedBins caps the merged rate-signal length so a node with a
// wildly wrong clock cannot make the merged series unbounded.
const maxMergedBins = 4096

// MergeSnapshots combines per-node snapshots into one fleet-wide
// snapshot labeled node. All inputs must share the window and bin
// configuration. Periodicity is re-detected on the summed rate signal
// with the given seed. Errors on zero inputs or mismatched configs.
func MergeSnapshots(node string, seed uint64, snaps ...Snapshot) (Snapshot, error) {
	if len(snaps) == 0 {
		return Snapshot{}, fmt.Errorf("livechar: no snapshots to merge")
	}
	out := Snapshot{
		Schema:    SnapshotSchema,
		Node:      node,
		WindowSec: snaps[0].WindowSec,
		BinSec:    snaps[0].BinSec,
		Periods:   []Period{},
	}
	var currents, lasts []*WindowStats
	for i := range snaps {
		s := &snaps[i]
		if s.WindowSec != out.WindowSec || s.BinSec != out.BinSec {
			return Snapshot{}, fmt.Errorf("livechar: merge config mismatch: window %gs/bin %gs vs %gs/%gs",
				s.WindowSec, s.BinSec, out.WindowSec, out.BinSec)
		}
		out.Events += s.Events
		out.Drops += s.Drops
		out.Rotations += s.Rotations
		if s.Node != "" {
			out.Nodes = append(out.Nodes, s.Node)
		}
		if s.Current != nil {
			currents = append(currents, s.Current)
		}
		if s.Last != nil {
			lasts = append(lasts, s.Last)
		}
		out.Predict.Eligible += s.Predict.Eligible
		out.Predict.Observations += s.Predict.Observations
		out.Predict.Hits += s.Predict.Hits
		out.Predict.VocabDrops += s.Predict.VocabDrops
		if s.Predict.K > out.Predict.K {
			out.Predict.K = s.Predict.K
		}
		// Node vocabularies overlap, so the sum overcounts; the max is
		// a safe lower bound on the fleet-wide vocabulary.
		if s.Predict.Vocab > out.Predict.Vocab {
			out.Predict.Vocab = s.Predict.Vocab
		}
		// Entropy does not merge exactly without the full distributions;
		// the observation-weighted mean is the published approximation.
		out.Predict.EntropyBits += s.Predict.EntropyBits * float64(s.Predict.Observations)
	}
	if out.Predict.Observations > 0 {
		out.Predict.HitRate = float64(out.Predict.Hits) / float64(out.Predict.Observations)
		out.Predict.EntropyBits /= float64(out.Predict.Observations)
	} else {
		out.Predict.EntropyBits = 0
	}

	var err error
	if out.Current, err = mergeWindowStats(currents); err != nil {
		return Snapshot{}, err
	}
	if out.Last, err = mergeWindowStats(lasts); err != nil {
		return Snapshot{}, err
	}

	out.BinsStart, out.Bins = mergeBins(snaps, out.BinSec)
	if len(out.Bins) > 2 {
		// Trim both edge bins: on live nodes the newest is still filling
		// and the oldest typically started mid-bin, and either partial
		// count is an aperiodic spike that can mask real periodicity.
		bin := time.Duration(out.BinSec * float64(time.Second))
		out.Periods = DetectPeriods(out.Bins[1:len(out.Bins)-1], bin, seed, 3)
	}
	return out, nil
}

// mergeWindowStats merges per-node window characterizations: HDR
// sketches bucket-by-bucket, heavy-hitter tops with the absent-node
// error bound, the window span as the union of node spans. Returns
// nil for no inputs.
func mergeWindowStats(wins []*WindowStats) (*WindowStats, error) {
	if len(wins) == 0 {
		return nil, nil
	}
	size, err := obs.FromHDRSnapshot(wins[0].SizeHDR)
	if err != nil {
		return nil, fmt.Errorf("livechar: rebuilding size sketch: %w", err)
	}
	inter, err := obs.FromHDRSnapshot(wins[0].InterHDR)
	if err != nil {
		return nil, fmt.Errorf("livechar: rebuilding inter-arrival sketch: %w", err)
	}
	out := &WindowStats{Start: wins[0].Start, End: wins[0].End, Events: wins[0].Events}
	objTops := [][]HeavyHitter{wins[0].TopObjects}
	domTops := [][]HeavyHitter{wins[0].TopDomains}
	objMins := []int64{wins[0].SketchMin}
	domMins := []int64{wins[0].DomSketchMin}
	for _, w := range wins[1:] {
		s, err := obs.FromHDRSnapshot(w.SizeHDR)
		if err != nil {
			return nil, fmt.Errorf("livechar: rebuilding size sketch: %w", err)
		}
		if err := size.Merge(s); err != nil {
			return nil, fmt.Errorf("livechar: merging size sketches: %w", err)
		}
		iv, err := obs.FromHDRSnapshot(w.InterHDR)
		if err != nil {
			return nil, fmt.Errorf("livechar: rebuilding inter-arrival sketch: %w", err)
		}
		if err := inter.Merge(iv); err != nil {
			return nil, fmt.Errorf("livechar: merging inter-arrival sketches: %w", err)
		}
		out.Events += w.Events
		if w.Start.Before(out.Start) {
			out.Start = w.Start
		}
		if w.End.After(out.End) {
			out.End = w.End
		}
		objTops = append(objTops, w.TopObjects)
		domTops = append(domTops, w.TopDomains)
		objMins = append(objMins, w.SketchMin)
		domMins = append(domMins, w.DomSketchMin)
	}
	out.SizeHDR = size.Snapshot()
	out.InterHDR = inter.Snapshot()
	// Keep the full union (bounded by nodes × per-node K): a key in any
	// node's top list may rank in the fleet top-K even if another key
	// beats it locally, so truncation here would lose real hitters.
	out.TopObjects = mergeTops(objTops, objMins, 0)
	out.TopDomains = mergeTops(domTops, domMins, 0)
	for _, m := range objMins {
		out.SketchMin += m
	}
	for _, m := range domMins {
		out.DomSketchMin += m
	}
	out.fillQuantiles(size, inter)
	return out, nil
}

// mergeBins sums per-node rate signals after aligning them on absolute
// bin indices (all nodes bin by event time over the same width, so
// alignment is exact). The result spans the union of node ranges,
// zero-filled where a node has no data, capped at maxMergedBins.
func mergeBins(snaps []Snapshot, binSec float64) (time.Time, []int64) {
	binNS := int64(binSec * float64(time.Second))
	if binNS <= 0 {
		return time.Time{}, nil
	}
	first, last := int64(0), int64(0)
	seen := false
	for i := range snaps {
		if len(snaps[i].Bins) == 0 {
			continue
		}
		f := snaps[i].BinsStart.UnixNano() / binNS
		l := f + int64(len(snaps[i].Bins)) - 1
		if !seen {
			first, last, seen = f, l, true
			continue
		}
		if f < first {
			first = f
		}
		if l > last {
			last = l
		}
	}
	if !seen {
		return time.Time{}, nil
	}
	if last-first+1 > maxMergedBins {
		first = last - maxMergedBins + 1
	}
	out := make([]int64, last-first+1)
	for i := range snaps {
		if len(snaps[i].Bins) == 0 {
			continue
		}
		f := snaps[i].BinsStart.UnixNano() / binNS
		for j, c := range snaps[i].Bins {
			idx := f + int64(j) - first
			if idx >= 0 && idx < int64(len(out)) {
				out[idx] += c
			}
		}
	}
	return time.Unix(0, first*binNS).UTC(), out
}
