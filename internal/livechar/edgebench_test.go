package livechar_test

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/edge"
	"repro/internal/livechar"
	"repro/internal/logfmt"
)

// The edge-overhead pair: BenchmarkEdgeServeBaseline is the plain
// request path (Log nil, so the edge skips building records entirely),
// and BenchmarkEdgeWithLiveChar is the same path with the async
// characterization tap attached — the full cost of -livechar: record
// construction plus the non-blocking hand-off. cmd/benchreport derives
// the relative overhead from the two means and gates it with
// -max-livechar-overhead; the tap's drop rate rides along as a custom
// metric so a "fast" result achieved by shedding load is visible.

func newBenchEdge() *edge.HTTPEdge {
	return &edge.HTTPEdge{
		Cache:  edge.NewCache(1<<24, time.Hour, 8),
		Origin: &edge.JSONOrigin{Articles: 64},
	}
}

// serveEdge drives b.N requests through ServeHTTP directly (no
// listener): a 64-object working set that fits the cache, from a
// rotating pool of client addresses so the per-client n-gram histories
// are exercised, not just one.
func serveEdge(b *testing.B, e *edge.HTTPEdge) {
	paths := make([]string, 64)
	for i := range paths {
		paths[i] = fmt.Sprintf("/article/%d", 1000+i)
	}
	addrs := make([]string, 32)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.0.%d.%d:4242", i/256, i%256)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "http://edge.bench"+paths[i%len(paths)], nil)
		req.RemoteAddr = addrs[i%len(addrs)]
		rec := httptest.NewRecorder()
		e.ServeHTTP(rec, req)
	}
	b.StopTimer()
}

func BenchmarkEdgeServeBaseline(b *testing.B) {
	serveEdge(b, newBenchEdge())
}

func BenchmarkEdgeWithLiveChar(b *testing.B) {
	e := newBenchEdge()
	lc := livechar.New(livechar.Config{Window: time.Minute})
	lc.Start()
	e.Log = func(r *logfmt.Record) { lc.Observe(r) }
	serveEdge(b, e)
	lc.Close()
	snap := lc.Snapshot()
	if total := snap.Events + snap.Drops; total > 0 {
		b.ReportMetric(float64(snap.Drops)/float64(total), "drop-rate")
	}
}
