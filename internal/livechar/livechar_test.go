package livechar

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/logfmt"
	"repro/internal/obs"
)

var testBase = time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)

func rec(t time.Time, client uint64, url string, bytes int64) *logfmt.Record {
	return &logfmt.Record{
		Time:     t,
		ClientID: client,
		Method:   "GET",
		URL:      url,
		Status:   200,
		Bytes:    bytes,
	}
}

func TestBinRing(t *testing.T) {
	r := newBinRing(time.Second, 8)
	if start, bins := r.series(); bins != nil || !start.IsZero() {
		t.Fatalf("empty ring series = %v %v", start, bins)
	}
	t0 := testBase.UnixNano()
	r.add(t0, 1)
	r.add(t0+500e6, 1) // same bin
	r.add(t0+3e9, 2)   // gap of 2 empty bins
	start, bins := r.series()
	if !start.Equal(testBase) {
		t.Errorf("series start = %v, want %v", start, testBase)
	}
	if want := []int64{2, 0, 0, 2}; fmt.Sprint(bins) != fmt.Sprint(want) {
		t.Errorf("bins = %v, want %v", bins, want)
	}
	// Advance past capacity: oldest bins fall off.
	r.add(t0+10e9, 1)
	_, bins = r.series()
	if len(bins) != 8 {
		t.Errorf("len(bins) = %d, want capacity 8", len(bins))
	}
	if bins[len(bins)-1] != 1 {
		t.Errorf("newest bin = %d, want 1", bins[len(bins)-1])
	}
	// Event older than the retained window is dropped.
	r.add(t0, 5)
	_, bins2 := r.series()
	if fmt.Sprint(bins2) != fmt.Sprint(bins) {
		t.Errorf("stale add mutated ring: %v vs %v", bins2, bins)
	}
	// Gap larger than the ring restarts it.
	r.add(t0+1000e9, 3)
	_, bins = r.series()
	if len(bins) != 1 || bins[0] != 3 {
		t.Errorf("post-gap bins = %v, want [3]", bins)
	}
}

func TestDetectPeriodsSyntheticSignal(t *testing.T) {
	// Square wave: burst every 10 bins over a noisy floor.
	bins := make([]int64, 300)
	for i := range bins {
		bins[i] = 5
		if i%10 == 0 {
			bins[i] = 60
		}
	}
	periods := DetectPeriods(bins, time.Second, 1, 3)
	if len(periods) == 0 {
		t.Fatal("no period detected in strongly periodic signal")
	}
	if periods[0].LagBins != 10 {
		t.Errorf("strongest period = %d bins, want 10 (all: %+v)", periods[0].LagBins, periods)
	}
	if periods[0].Seconds != 10 {
		t.Errorf("period seconds = %g, want 10", periods[0].Seconds)
	}

	if got := DetectPeriods(bins[:8], time.Second, 1, 3); len(got) != 0 {
		t.Errorf("short signal: periods = %+v, want none", got)
	}
	flat := make([]int64, 120)
	for i := range flat {
		flat[i] = 7
	}
	if got := DetectPeriods(flat, time.Second, 1, 3); len(got) != 0 {
		t.Errorf("constant signal: periods = %+v, want none", got)
	}
}

// TestLiveCharWindows drives a deterministic two-window stream inline
// and checks rotation, windowed quantiles, heavy hitters, and the
// snapshot payload shape.
func TestLiveCharWindows(t *testing.T) {
	lc := New(Config{Window: 10 * time.Second, Bin: time.Second, TopK: 3, Node: "n0"})

	// Window 1: 20 events, sizes 1000×i, popular object repeated.
	for i := 0; i < 20; i++ {
		ts := testBase.Add(time.Duration(i) * 400 * time.Millisecond)
		url := fmt.Sprintf("http://api.example.com/v1/item/%d", i%5)
		lc.Observe(rec(ts, uint64(i%3), url, int64(1000*(i+1))))
	}
	snap := lc.Snapshot()
	if snap.Rotations != 0 || snap.Current == nil || snap.Last != nil {
		t.Fatalf("pre-rotation: rotations=%d current=%v last=%v", snap.Rotations, snap.Current != nil, snap.Last != nil)
	}
	if snap.Current.Events != 20 {
		t.Errorf("current events = %d, want 20", snap.Current.Events)
	}

	// First event of the next window triggers rotation.
	lc.Observe(rec(testBase.Add(11*time.Second), 9, "http://api.example.com/v1/other", 500))
	snap = lc.Snapshot()
	if snap.Rotations != 1 || snap.Last == nil {
		t.Fatalf("post-rotation: rotations=%d last=%v", snap.Rotations, snap.Last != nil)
	}
	w := snap.Last
	if w.Events != 20 {
		t.Errorf("last window events = %d, want 20", w.Events)
	}
	if !w.Start.Equal(testBase) || !w.End.Equal(testBase.Add(10*time.Second)) {
		t.Errorf("window span = [%v, %v], want [%v, %v]", w.Start, w.End, testBase, testBase.Add(10*time.Second))
	}
	// Sizes were 1000..20000; the median must be within HDR's 1%
	// relative error of the exact 10000.
	med := float64(0)
	for _, row := range w.SizeQuantiles {
		if row.Quantile == 0.5 {
			med = float64(row.Value)
		}
	}
	if math.Abs(med-10000)/10000 > 0.02 {
		t.Errorf("windowed size median = %g, want ~10000", med)
	}
	// URLs item/0..4 appeared 4× each; top-3 counts must all be 4.
	if len(w.TopObjects) != 3 {
		t.Fatalf("top objects = %+v, want 3 entries", w.TopObjects)
	}
	for _, hh := range w.TopObjects {
		if hh.Count != 4 || hh.Err != 0 {
			t.Errorf("top object %+v, want count 4 err 0", hh)
		}
	}
	if len(w.TopDomains) == 0 || w.TopDomains[0].Key != "api.example.com" || w.TopDomains[0].Count != 20 {
		t.Errorf("top domains = %+v, want api.example.com ×20", w.TopDomains)
	}
	// Inter-arrival gaps were uniform 400 ms.
	p50 := int64(0)
	for _, row := range w.InterQuantiles {
		if row.Quantile == 0.5 {
			p50 = row.Value
		}
	}
	if math.Abs(float64(p50)-4e8)/4e8 > 0.02 {
		t.Errorf("inter-arrival median = %d ns, want ~4e8", p50)
	}

	// JSON round-trip preserves the mergeable state.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SnapshotSchema || back.Node != "n0" || back.Last.SizeHDR.Count != 20 {
		t.Errorf("round-trip lost state: schema=%q node=%q count=%d", back.Schema, back.Node, back.Last.SizeHDR.Count)
	}
}

// TestLiveCharPeriodDetection injects a bursty periodic stream and
// expects the live plane to find the injected period.
func TestLiveCharPeriodDetection(t *testing.T) {
	lc := New(Config{Window: time.Minute, Bin: time.Second, Bins: 600})
	// 5 min of traffic: 2 background events/s plus a 40-event burst
	// every 15 s.
	for sec := 0; sec < 300; sec++ {
		ts := testBase.Add(time.Duration(sec) * time.Second)
		for i := 0; i < 2; i++ {
			lc.Observe(rec(ts.Add(time.Duration(i)*100*time.Millisecond), 1, "http://bg.example.com/x", 100))
		}
		if sec%15 == 0 {
			for i := 0; i < 40; i++ {
				lc.Observe(rec(ts.Add(time.Duration(i)*time.Millisecond), 2, "http://poll.example.com/feed", 2048))
			}
		}
	}
	snap := lc.Snapshot()
	if len(snap.Periods) == 0 {
		t.Fatal("no period detected in injected 15s-periodic stream")
	}
	if got := snap.Periods[0].Seconds; math.Abs(got-15) > 1 {
		t.Errorf("strongest period = %gs, want ~15s (all: %+v)", got, snap.Periods)
	}
	if len(snap.Bins) == 0 || snap.BinsStart.IsZero() {
		t.Errorf("snapshot missing rate bins: start=%v len=%d", snap.BinsStart, len(snap.Bins))
	}
}

// TestLiveCharPredictability feeds deterministic per-client cycles; the
// online ngram model must learn them and the hit rate converge high.
func TestLiveCharPredictability(t *testing.T) {
	lc := New(Config{Window: time.Minute, PredictK: 3, NgramOrder: 2})
	cycle := []string{"http://a.example.com/1", "http://a.example.com/2", "http://a.example.com/3", "http://a.example.com/4"}
	for i := 0; i < 400; i++ {
		ts := testBase.Add(time.Duration(i) * 100 * time.Millisecond)
		lc.Observe(rec(ts, uint64(i%4), cycle[(i/4)%len(cycle)], 256))
	}
	st := lc.Snapshot().Predict
	if st.Observations == 0 {
		t.Fatal("no predictions attempted")
	}
	if st.HitRate < 0.8 {
		t.Errorf("hit rate = %.3f on a deterministic cycle, want >= 0.8 (%+v)", st.HitRate, st)
	}
	if st.Vocab != len(cycle) {
		t.Errorf("vocab = %d, want %d", st.Vocab, len(cycle))
	}
	// Uniform 4-URL unigram distribution: entropy ~2 bits.
	if math.Abs(st.EntropyBits-2) > 0.1 {
		t.Errorf("entropy = %.3f bits, want ~2", st.EntropyBits)
	}
}

// TestLiveCharAsync exercises the tap under concurrency (run with
// -race): concurrent observers, a scraping reader, clean drain on
// Close, and applied+dropped accounting for every event sent.
func TestLiveCharAsync(t *testing.T) {
	lc := New(Config{Window: time.Second, Buffer: 64})
	lc.Start()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ts := testBase.Add(time.Duration(g*perG+i) * time.Millisecond)
				lc.Observe(rec(ts, uint64(g), fmt.Sprintf("http://h%d.example.com/%d", g, i%7), int64(i)))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			lc.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	lc.Close()
	snap := lc.Snapshot()
	if got := snap.Events + snap.Drops; got != goroutines*perG {
		t.Errorf("events+drops = %d, want %d", got, goroutines*perG)
	}
	// After Close, Observe applies inline again.
	before := snap.Events
	lc.Observe(rec(testBase.Add(time.Hour), 1, "http://late.example.com/", 1))
	if got := lc.Snapshot().Events; got != before+1 {
		t.Errorf("post-Close inline observe: events = %d, want %d", got, before+1)
	}
}

// TestLiveCharInstrument pins the Prometheus surface: families present,
// rank-labeled top-K (bounded cardinality — no URL labels anywhere),
// and the HDR summaries exposed with scaled units.
func TestLiveCharInstrument(t *testing.T) {
	lc := New(Config{Window: 10 * time.Second, TopK: 3})
	reg := obs.NewRegistry()
	lc.Instrument(reg)
	for i := 0; i < 30; i++ {
		ts := testBase.Add(time.Duration(i) * 500 * time.Millisecond)
		lc.Observe(rec(ts, uint64(i%2), fmt.Sprintf("http://api.example.com/obj/%d", i%3), 4096))
	}
	lc.Observe(rec(testBase.Add(15*time.Second), 1, "http://api.example.com/obj/0", 4096)) // rotate

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"livechar_events_total 31",
		"livechar_drops_total 0",
		"livechar_window_rotations_total 1",
		"livechar_window_seconds 10",
		"livechar_size_bytes{quantile=\"0.5\"}",
		"livechar_size_bytes_count 31",
		"livechar_interarrival_seconds{quantile=",
		"livechar_topk_count{rank=\"1\"}",
		"livechar_topk_count{rank=\"3\"}",
		"livechar_predict_hit_rate",
		"livechar_predict_entropy_bits",
		"livechar_ngram_vocab 3",
		"livechar_period_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, "example.com") {
		t.Error("exposition leaks URL labels (unbounded cardinality)")
	}

	// /charz handler round-trip.
	srv := httptest.NewServer(lc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SnapshotSchema || snap.Events != 31 {
		t.Errorf("/charz snapshot: schema=%q events=%d", snap.Schema, snap.Events)
	}
	if snap.Periods == nil {
		t.Error("/charz periods field absent; must be [] even when empty")
	}
}

// TestMergeSnapshots splits one deterministic stream across two planes
// and checks the merged view equals a single plane that saw everything:
// summed HDR sketches, exact top-K counts, time-aligned bins, and
// summed prediction tallies.
func TestMergeSnapshots(t *testing.T) {
	cfg := Config{Window: 20 * time.Second, Bin: time.Second, TopK: 5}
	all, a, b := New(cfg), New(Config{Window: 20 * time.Second, Bin: time.Second, TopK: 5, Node: "n1"}), New(Config{Window: 20 * time.Second, Bin: time.Second, TopK: 5, Node: "n2"})
	for i := 0; i < 200; i++ {
		ts := testBase.Add(time.Duration(i) * 50 * time.Millisecond)
		r := rec(ts, uint64(i%6), fmt.Sprintf("http://api.example.com/obj/%d", i%4), int64(100*(i%10+1)))
		all.Observe(r)
		if i%2 == 0 {
			a.Observe(r)
		} else {
			b.Observe(r)
		}
	}
	merged, err := MergeSnapshots("fleet", 1, a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	ref := all.Snapshot()
	if merged.Events != ref.Events {
		t.Errorf("merged events = %d, want %d", merged.Events, ref.Events)
	}
	if len(merged.Nodes) != 2 {
		t.Errorf("merged nodes = %v", merged.Nodes)
	}
	if merged.Current == nil || ref.Current == nil {
		t.Fatal("missing current windows")
	}
	if merged.Current.SizeHDR.Count != ref.Current.SizeHDR.Count ||
		merged.Current.SizeHDR.Sum != ref.Current.SizeHDR.Sum {
		t.Errorf("merged size sketch count/sum = %d/%d, want %d/%d",
			merged.Current.SizeHDR.Count, merged.Current.SizeHDR.Sum,
			ref.Current.SizeHDR.Count, ref.Current.SizeHDR.Sum)
	}
	// Both halves tracked exactly (under budget), so merged top counts
	// are exact and match the single-plane reference.
	if len(merged.Current.TopObjects) != 4 {
		t.Fatalf("merged top objects = %+v", merged.Current.TopObjects)
	}
	for i, hh := range merged.Current.TopObjects {
		want := ref.Current.TopObjects[i]
		if hh.Key != want.Key || hh.Count != want.Count {
			t.Errorf("merged top[%d] = %+v, want %+v", i, hh, want)
		}
	}
	// Bins align on absolute time, so the merged rate signal is the sum.
	if fmt.Sprint(merged.Bins) != fmt.Sprint(ref.Bins) {
		t.Errorf("merged bins %v != reference %v", merged.Bins, ref.Bins)
	}
	if !merged.BinsStart.Equal(ref.BinsStart) {
		t.Errorf("merged bins start %v != %v", merged.BinsStart, ref.BinsStart)
	}
	if merged.Predict.Observations != a.Snapshot().Predict.Observations+b.Snapshot().Predict.Observations {
		t.Errorf("merged predict observations = %d", merged.Predict.Observations)
	}

	// Config mismatches refuse to merge.
	other := New(Config{Window: 30 * time.Second})
	if _, err := MergeSnapshots("x", 1, a.Snapshot(), other.Snapshot()); err == nil {
		t.Error("mismatched window merge succeeded, want error")
	}
	if _, err := MergeSnapshots("x", 1); err == nil {
		t.Error("empty merge succeeded, want error")
	}
}

// BenchmarkObserveAsync measures the hot-path cost of the tap itself:
// what the edge pays per request when livechar is enabled.
func BenchmarkObserveAsync(b *testing.B) {
	lc := New(Config{Buffer: 1 << 16})
	lc.Start()
	defer lc.Close()
	r := rec(testBase, 42, "http://api.example.com/v1/data.json", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Time = testBase.Add(time.Duration(i) * time.Microsecond)
		lc.Observe(r)
	}
}

// BenchmarkApply measures the consumer-side cost of folding one event
// into every sketch (inline mode).
func BenchmarkApply(b *testing.B) {
	lc := New(Config{})
	r := rec(testBase, 42, "http://api.example.com/v1/data.json", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Time = testBase.Add(time.Duration(i) * 100 * time.Microsecond)
		r.ClientID = uint64(i % 32)
		lc.Observe(r)
	}
}
