package livechar

import "repro/internal/ngram"

// This file wires the §5.2 backoff ngram model into the live plane as
// an online predictability gauge: for every request the predictor first
// asks the model for its top-K next-URL guesses given the client's
// recent history (scoring a hit when the actual URL is among them),
// then trains the model on the observed transition. The resulting hit
// rate is a live estimate of Table 3's prediction accuracy, and the
// model's unigram entropy is the complementary "how concentrated is
// the stream" gauge.

// predictor drives online ngram training and hit-rate accounting. Not
// safe for concurrent use; the livechar consumer owns it.
type predictor struct {
	model      *ngram.Model
	order      int
	k          int
	sample     int
	maxVocab   int
	maxClients int

	histories map[uint64][]string

	eligible     int64 // positions with history (prediction candidates)
	observations int64 // predictions attempted (1-in-sample of eligible)
	hits         int64
	vocabDrops   int64 // transitions skipped because the vocab is full
}

func newPredictor(order, k, sample, maxVocab, maxClients int) *predictor {
	return &predictor{
		model:      ngram.NewModel(order),
		order:      order,
		k:          k,
		sample:     sample,
		maxVocab:   maxVocab,
		maxClients: maxClients,
		histories:  make(map[uint64][]string),
	}
}

func (p *predictor) observe(client uint64, url string) {
	h, ok := p.histories[client]
	if !ok && len(p.histories) >= p.maxClients {
		// Client-table budget exhausted: evict an arbitrary flow (map
		// iteration order). Losing one history only costs that flow a
		// cold start; the bound is what matters.
		for victim := range p.histories {
			delete(p.histories, victim)
			break
		}
	}
	if len(h) > 0 {
		// Training sees every transition, but the hit-rate gauge only
		// scores 1-in-sample of them: PredictTopK dominates the
		// consumer's per-event cost (candidate collection plus a
		// popularity re-sort whose cache every training bump
		// invalidates), and the gauge is a statistical estimate that
		// systematic sampling leaves unbiased.
		p.eligible++
		if p.sample <= 1 || p.eligible%int64(p.sample) == 1 {
			p.observations++
			for _, cand := range p.model.PredictTopK(h, p.k) {
				if cand == url {
					p.hits++
					break
				}
			}
		}
		if p.model.VocabSize() < p.maxVocab {
			p.model.ObserveTransition(h, url)
		} else {
			p.vocabDrops++
		}
	}
	if len(h) >= p.order {
		copy(h, h[len(h)-p.order+1:])
		h = h[:p.order-1]
	}
	p.histories[client] = append(h, url)
}

func (p *predictor) hitRate() float64 {
	if p.observations == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.observations)
}

// PredictStats is the live predictability view published on /charz.
type PredictStats struct {
	// Eligible is how many requests were prediction candidates (every
	// request from a client with at least one prior request). Training
	// saw all of them.
	Eligible int64 `json:"eligible"`
	// Observations is how many next-request predictions were actually
	// scored — a 1-in-Config.PredictSample systematic sample of
	// Eligible.
	Observations int64 `json:"observations"`
	// Hits is how many times the actual URL was in the top-K guess set.
	Hits int64 `json:"hits"`
	// HitRate is Hits/Observations — the live Table 3 accuracy estimate.
	HitRate float64 `json:"hit_rate"`
	// K is the guess-set size the hit rate was measured at.
	K int `json:"k"`
	// EntropyBits is the Shannon entropy of the model's unigram
	// next-request distribution: low means few objects dominate.
	EntropyBits float64 `json:"entropy_bits"`
	// Vocab is the number of distinct URLs the model has interned.
	Vocab int `json:"vocab"`
	// VocabDrops counts transitions skipped after the vocab budget
	// filled (the model stops growing, predictions continue).
	VocabDrops int64 `json:"vocab_drops,omitempty"`
}

func (p *predictor) stats() PredictStats {
	return PredictStats{
		Eligible:     p.eligible,
		Observations: p.observations,
		Hits:         p.hits,
		HitRate:      p.hitRate(),
		K:            p.k,
		EntropyBits:  p.model.UnigramEntropyBits(),
		Vocab:        p.model.VocabSize(),
		VocabDrops:   p.vocabDrops,
	}
}
