// Package livechar is the live traffic-characterization plane: it turns
// the paper's offline analyses — response-size and inter-arrival
// distributions (§4), object/domain popularity, periodicity detection
// (§5.1), and ngram next-request prediction (§5.2) — into streaming
// operators that run against the edge request stream while it flows.
//
// The edge hot path calls Observe with each request record; after
// Start, that is a single non-blocking channel send (overflow is
// dropped and counted, never blocking the request path), and a
// consumer goroutine folds events into per-window sketches:
//
//   - response-size and inter-arrival quantiles via mergeable
//     obs.HDRHistogram sketches (cumulative for Prometheus, windowed
//     for /charz),
//   - object and domain popularity via Space-Saving heavy-hitter
//     sketches with per-entry error bounds,
//   - a per-bin request-rate ring analyzed by the §5.1 permutation
//     detector for live periodicities,
//   - an online backoff ngram model exposing a live predictability
//     (top-K hit rate) and entropy gauge.
//
// Windows rotate on event time (record timestamps), so replayed
// historical streams characterize identically to live traffic and
// tests are deterministic. Results surface three ways: livechar_*
// metrics on an obs.Registry, a JSON Snapshot (the /charz endpoint),
// and periodic char-<id>.json files folded into the run manifest.
// Snapshots from multiple nodes merge (MergeSnapshots) into one
// fleet-wide view, the property every sketch here was chosen for.
package livechar

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logfmt"
	"repro/internal/obs"
)

// SnapshotSchema identifies the /charz and char-<id>.json payload.
const SnapshotSchema = "repro/livechar/v1"

// Config parameterizes the plane. The zero value is usable: 60 s
// windows over 1 s bins, top-10 popularity, order-3 ngram model.
type Config struct {
	// Window is the tumbling characterization window (event time).
	// Default 60 s.
	Window time.Duration
	// Bin is the request-rate sampling bin for periodicity detection —
	// the paper samples request counts at 1 s. Default 1 s.
	Bin time.Duration
	// Bins is how many rate bins the periodicity ring retains; it spans
	// Bins×Bin of signal (default 600 = 10 min at 1 s), independent of
	// window rotation so long periods stay detectable.
	Bins int
	// TopK is how many heavy hitters snapshots publish. Default 10.
	TopK int
	// Capacity is the Space-Saving counter budget per sketch; the sketch
	// error bound is window-events/Capacity. Default max(256, 8×TopK).
	Capacity int
	// Buffer is the async tap's channel capacity; overflow is dropped
	// and counted. Default 8192.
	Buffer int
	// NgramOrder is the prediction model's history length. Default 3.
	NgramOrder int
	// PredictK is the guess-set size for the live hit-rate gauge
	// (Table 3's K). Default 5.
	PredictK int
	// PredictSample scores 1-in-PredictSample prediction candidates for
	// the hit-rate gauge (training still sees every transition) —
	// PredictTopK dominates the consumer's per-event cost. Default 4;
	// 1 scores every candidate.
	PredictSample int
	// MaxVocab bounds the ngram model's interned vocabulary; further
	// transitions stop training (predictions continue). Default 65536.
	MaxVocab int
	// MaxClients bounds the per-client history table. Default 16384.
	MaxClients int
	// Seed drives the period detector's permutation RNG. Default 1.
	Seed uint64
	// Node labels this plane's snapshots in fleet merges.
	Node string
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Bin <= 0 {
		c.Bin = time.Second
	}
	if c.Bins <= 0 {
		c.Bins = 600
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.Capacity <= 0 {
		c.Capacity = 8 * c.TopK
		if c.Capacity < 256 {
			c.Capacity = 256
		}
	}
	if c.Buffer <= 0 {
		c.Buffer = 8192
	}
	if c.NgramOrder <= 0 {
		c.NgramOrder = 3
	}
	if c.PredictK <= 0 {
		c.PredictK = 5
	}
	if c.PredictSample <= 0 {
		c.PredictSample = 4
	}
	if c.MaxVocab <= 0 {
		c.MaxVocab = 1 << 16
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 1 << 14
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// sizeHDRConfig covers response bodies from 1 B to 1 GiB at 2 sigfigs.
func sizeHDRConfig() obs.HDRConfig {
	return obs.HDRConfig{Lowest: 1, Highest: 1 << 30, SigFigs: 2, Unit: 1}
}

// interHDRConfig covers inter-arrival gaps up to 10 min, exposed in
// seconds.
func interHDRConfig() obs.HDRConfig {
	return obs.HDRConfig{Lowest: int64(time.Microsecond), Highest: int64(10 * time.Minute), SigFigs: 2, Unit: 1e-9}
}

// event is the compact projection of a request record the tap carries.
// The host is derived consumer-side from the URL so the producer path
// pays no parsing.
type event struct {
	tNS    int64
	client uint64
	url    string
	bytes  int64
}

// LiveChar is one node's characterization plane. Construct with New;
// call Observe from the edge request path. Until Start is called,
// Observe applies events inline (synchronously) — the mode batch
// replays and deterministic tests use; Start switches to the async
// tap. All exported methods are safe for concurrent use.
type LiveChar struct {
	cfg Config

	started atomic.Bool
	ch      chan event
	done    chan struct{}
	wg      sync.WaitGroup

	events    atomic.Int64 // applied into sketches
	drops     atomic.Int64 // tap overflow
	rotations atomic.Int64

	// Cumulative (process-lifetime) sketches, exposed on /metrics.
	// Lock-free: recorded directly in apply.
	cumSize  *obs.HDRHistogram
	cumInter *obs.HDRHistogram

	// mu guards everything below: the consumer (or inline Observe)
	// writes, Snapshot and metric closures read.
	mu         sync.Mutex
	winStartNS int64 // -1 until the first event
	lastTNS    int64 // previous event time for inter-arrival; -1 initially
	curSize    *obs.HDRHistogram
	curInter   *obs.HDRHistogram
	curObjects *SpaceSaving
	curDomains *SpaceSaving
	curEvents  int64
	last       *WindowStats // most recently completed window
	ring       *binRing
	pred       *predictor
	periods    []Period
	periodsVer int64 // ring version the cached periods were computed at
}

// New returns a plane for cfg (zero fields take defaults).
func New(cfg Config) *LiveChar {
	cfg = cfg.withDefaults()
	lc := &LiveChar{
		cfg:        cfg,
		cumSize:    obs.NewHDRHistogram(sizeHDRConfig()),
		cumInter:   obs.NewHDRHistogram(interHDRConfig()),
		curSize:    obs.NewHDRHistogram(sizeHDRConfig()),
		curInter:   obs.NewHDRHistogram(interHDRConfig()),
		curObjects: NewSpaceSaving(cfg.Capacity),
		curDomains: NewSpaceSaving(cfg.Capacity),
		ring:       newBinRing(cfg.Bin, cfg.Bins),
		pred:       newPredictor(cfg.NgramOrder, cfg.PredictK, cfg.PredictSample, cfg.MaxVocab, cfg.MaxClients),
		winStartNS: -1,
		lastTNS:    -1,
		periods:    []Period{},
	}
	return lc
}

// Config returns the effective (defaulted) configuration.
func (lc *LiveChar) Config() Config { return lc.cfg }

// Start switches the plane to async mode: Observe becomes a
// non-blocking channel send and a consumer goroutine folds events into
// the sketches. Call Close to drain and stop.
func (lc *LiveChar) Start() {
	if lc.started.Swap(true) {
		return
	}
	lc.ch = make(chan event, lc.cfg.Buffer)
	lc.done = make(chan struct{})
	lc.wg.Add(1)
	go lc.consume()
}

// Close stops the consumer after draining buffered events. Observe
// calls racing Close may be dropped (counted); after Close returns,
// Observe applies inline again.
func (lc *LiveChar) Close() {
	if !lc.started.Load() || lc.done == nil {
		return
	}
	close(lc.done)
	lc.wg.Wait()
	lc.started.Store(false)
	lc.done = nil
}

func (lc *LiveChar) consume() {
	defer lc.wg.Done()
	for {
		select {
		case ev := <-lc.ch:
			lc.mu.Lock()
			lc.apply(ev)
			lc.mu.Unlock()
		case <-lc.done:
			for {
				select {
				case ev := <-lc.ch:
					lc.mu.Lock()
					lc.apply(ev)
					lc.mu.Unlock()
				default:
					return
				}
			}
		}
	}
}

// Observe taps one request record. Async mode never blocks: if the
// buffer is full the event is dropped and counted (livechar_drops_total
// is the plane's own back-pressure signal). The record is not retained.
func (lc *LiveChar) Observe(r *logfmt.Record) {
	ev := event{
		tNS:    r.Time.UnixNano(),
		client: r.ClientID,
		url:    r.URL,
		bytes:  r.Bytes,
	}
	if lc.started.Load() {
		select {
		case lc.ch <- ev:
		default:
			lc.drops.Add(1)
		}
		return
	}
	lc.mu.Lock()
	lc.apply(ev)
	lc.mu.Unlock()
}

// apply folds one event into the sketches. Caller holds mu.
func (lc *LiveChar) apply(ev event) {
	winNS := lc.cfg.Window.Nanoseconds()
	if lc.winStartNS < 0 {
		lc.winStartNS = ev.tNS - ev.tNS%winNS
	} else if ev.tNS >= lc.winStartNS+winNS {
		lc.rotate()
		lc.winStartNS = ev.tNS - ev.tNS%winNS
	}

	lc.events.Add(1)
	lc.curEvents++
	lc.cumSize.Record(ev.bytes)
	lc.curSize.Record(ev.bytes)
	if lc.lastTNS >= 0 {
		if dt := ev.tNS - lc.lastTNS; dt >= 0 {
			lc.cumInter.Record(dt)
			lc.curInter.Record(dt)
		}
	}
	if ev.tNS > lc.lastTNS {
		lc.lastTNS = ev.tNS
	}
	lc.curObjects.Observe(ev.url)
	if host := (&logfmt.Record{URL: ev.url}).Host(); host != "" {
		lc.curDomains.Observe(host)
	}
	lc.ring.add(ev.tNS, 1)
	lc.pred.observe(ev.client, ev.url)
}

// rotate completes the current window into last and resets the
// windowed sketches in place. Caller holds mu.
func (lc *LiveChar) rotate() {
	lc.last = lc.windowStats()
	lc.curSize.Reset()
	lc.curInter.Reset()
	lc.curObjects.Reset()
	lc.curDomains.Reset()
	lc.curEvents = 0
	lc.rotations.Add(1)
	lc.refreshPeriods()
}

// windowStats captures the in-progress window. Caller holds mu.
func (lc *LiveChar) windowStats() *WindowStats {
	w := &WindowStats{
		Start:        time.Unix(0, lc.winStartNS).UTC(),
		End:          time.Unix(0, lc.winStartNS+lc.cfg.Window.Nanoseconds()).UTC(),
		Events:       lc.curEvents,
		SizeHDR:      lc.curSize.Snapshot(),
		InterHDR:     lc.curInter.Snapshot(),
		TopObjects:   lc.curObjects.Top(lc.cfg.TopK),
		TopDomains:   lc.curDomains.Top(lc.cfg.TopK),
		SketchMin:    lc.curObjects.MinCount(),
		DomSketchMin: lc.curDomains.MinCount(),
	}
	w.fillQuantiles(lc.curSize, lc.curInter)
	return w
}

// refreshPeriods reruns detection if the rate ring changed since the
// cached result. The newest (still-filling) bin is trimmed so a
// half-full tail cannot masquerade as a rate drop, and so is a partial
// leading bin (the stream started mid-bin) — either one is a large
// aperiodic spike that can mask real periodicity. Caller holds mu.
func (lc *LiveChar) refreshPeriods() {
	if lc.ring.version == lc.periodsVer {
		return
	}
	_, bins := lc.ring.series()
	if len(bins) > 0 {
		bins = bins[:len(bins)-1]
	}
	if len(bins) > 0 && lc.ring.leadingPartial() {
		bins = bins[1:]
	}
	lc.periods = DetectPeriods(bins, lc.cfg.Bin, lc.cfg.Seed, 3)
	lc.periodsVer = lc.ring.version
}

// WindowStats is the characterization of one tumbling window.
type WindowStats struct {
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Events int64     `json:"events"`

	// SizeHDR and InterHDR are the mergeable sketch states (bytes and
	// nanoseconds); the *Quantiles fields are their human-readable
	// projections.
	SizeHDR        obs.HDRSnapshot        `json:"size_bytes_hdr"`
	InterHDR       obs.HDRSnapshot        `json:"interarrival_ns_hdr"`
	SizeQuantiles  []obs.HDRPercentileRow `json:"size_quantiles,omitempty"`
	InterQuantiles []obs.HDRPercentileRow `json:"interarrival_quantiles,omitempty"`

	// TopObjects and TopDomains are the Space-Saving heavy hitters;
	// each Count overestimates truth by at most its Err. SketchMin and
	// DomSketchMin are the sketches' minimum counters: the maximum
	// frequency any unlisted key can have (0 until the counter budget
	// fills), which is also the absent-node bound in fleet merges.
	TopObjects   []HeavyHitter `json:"top_objects"`
	TopDomains   []HeavyHitter `json:"top_domains"`
	SketchMin    int64         `json:"sketch_min_count,omitempty"`
	DomSketchMin int64         `json:"domain_sketch_min_count,omitempty"`
}

func (w *WindowStats) fillQuantiles(size, inter *obs.HDRHistogram) {
	if w.SizeHDR.Count > 0 {
		w.SizeQuantiles = size.Percentiles()
	}
	if w.InterHDR.Count > 0 {
		w.InterQuantiles = inter.Percentiles()
	}
}

// Snapshot is the full /charz payload: totals, the in-progress and
// last-completed windows, the rate-bin series with detected periods,
// and the live predictability stats. It is self-contained and
// mergeable across nodes (MergeSnapshots).
type Snapshot struct {
	Schema string   `json:"schema"`
	Node   string   `json:"node,omitempty"`
	Nodes  []string `json:"nodes,omitempty"` // set on merged snapshots

	WindowSec float64 `json:"window_sec"`
	BinSec    float64 `json:"bin_sec"`

	Events    int64 `json:"events"`
	Drops     int64 `json:"drops"`
	Rotations int64 `json:"rotations"`

	Current *WindowStats `json:"current,omitempty"`
	Last    *WindowStats `json:"last,omitempty"`

	// Periods are the significant periodicities of the rate signal
	// (empty when none — human-triggered traffic's common case).
	Periods []Period `json:"periods"`

	// Bins is the request-rate signal itself (oldest first, BinsStart
	// stamping the first bin) so merges and offline re-analysis can
	// recompute detection.
	BinsStart time.Time `json:"bins_start,omitempty"`
	Bins      []int64   `json:"bins,omitempty"`

	Predict PredictStats `json:"predict"`
}

// Snapshot captures the plane's current state.
func (lc *LiveChar) Snapshot() Snapshot {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.refreshPeriods()
	s := Snapshot{
		Schema:    SnapshotSchema,
		Node:      lc.cfg.Node,
		WindowSec: lc.cfg.Window.Seconds(),
		BinSec:    lc.cfg.Bin.Seconds(),
		Events:    lc.events.Load(),
		Drops:     lc.drops.Load(),
		Rotations: lc.rotations.Load(),
		Last:      lc.last,
		Periods:   append([]Period(nil), lc.periods...),
		Predict:   lc.pred.stats(),
	}
	if s.Periods == nil {
		s.Periods = []Period{}
	}
	if lc.winStartNS >= 0 {
		s.Current = lc.windowStats()
	}
	s.BinsStart, s.Bins = lc.ring.series()
	return s
}

// Handler serves the Snapshot as indented JSON — the /charz endpoint.
func (lc *LiveChar) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(lc.Snapshot())
	})
}

// Instrument registers the livechar_* metric families on reg. Every
// family has bounded cardinality: heavy hitters are published by rank
// label (never by URL), so a hostile URL space cannot explode the
// registry. Call once, before traffic. No-op on a nil registry.
func (lc *LiveChar) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("livechar_events_total", "Requests folded into the characterization sketches.")
	reg.CounterFunc("livechar_events_total", lc.events.Load)
	reg.Help("livechar_drops_total", "Requests dropped at the tap because the buffer was full.")
	reg.CounterFunc("livechar_drops_total", lc.drops.Load)
	reg.Help("livechar_window_rotations_total", "Completed characterization windows.")
	reg.CounterFunc("livechar_window_rotations_total", lc.rotations.Load)
	reg.Help("livechar_window_seconds", "Configured characterization window length.")
	reg.GaugeFunc("livechar_window_seconds", func() float64 { return lc.cfg.Window.Seconds() })
	reg.Help("livechar_bin_seconds", "Configured rate-sampling bin width.")
	reg.GaugeFunc("livechar_bin_seconds", func() float64 { return lc.cfg.Bin.Seconds() })

	reg.Help("livechar_size_bytes", "Response sizes (cumulative HDR sketch).")
	reg.RegisterHDR("livechar_size_bytes", lc.cumSize)
	reg.Help("livechar_interarrival_seconds", "Request inter-arrival gaps (cumulative HDR sketch).")
	reg.RegisterHDR("livechar_interarrival_seconds", lc.cumInter)

	reg.Help("livechar_period_seconds", "Strongest detected request-rate period (0 = none).")
	reg.GaugeFunc("livechar_period_seconds", func() float64 {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		lc.refreshPeriods()
		if len(lc.periods) == 0 {
			return 0
		}
		return lc.periods[0].Seconds
	})
	reg.Help("livechar_period_acf", "Autocorrelation at the strongest detected period.")
	reg.GaugeFunc("livechar_period_acf", func() float64 {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		if len(lc.periods) == 0 {
			return 0
		}
		return lc.periods[0].ACF
	})

	reg.Help("livechar_topk_count", "Request count of the rank-th most popular object in the last completed window (Space-Saving estimate).")
	for rank := 1; rank <= lc.cfg.TopK; rank++ {
		r := rank - 1
		reg.GaugeFunc("livechar_topk_count", func() float64 {
			lc.mu.Lock()
			defer lc.mu.Unlock()
			w := lc.last
			if w == nil {
				w = lc.windowStatsLight()
			}
			if w == nil || r >= len(w.TopObjects) {
				return 0
			}
			return float64(w.TopObjects[r].Count)
		}, "rank", fmt.Sprintf("%d", rank))
	}
	reg.Help("livechar_topk_min_count", "Space-Saving minimum counter: max frequency of any untracked object (error bound).")
	reg.GaugeFunc("livechar_topk_min_count", func() float64 {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		if lc.last != nil {
			return float64(lc.last.SketchMin)
		}
		return float64(lc.curObjects.MinCount())
	})

	reg.Help("livechar_predict_observations_total", "Next-request predictions attempted by the online ngram model.")
	reg.CounterFunc("livechar_predict_observations_total", func() int64 {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		return lc.pred.observations
	})
	reg.Help("livechar_predict_hits_total", "Predictions whose top-K guess set contained the actual next request.")
	reg.CounterFunc("livechar_predict_hits_total", func() int64 {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		return lc.pred.hits
	})
	reg.Help("livechar_predict_hit_rate", "Live top-K next-request prediction accuracy (Table 3 estimate).")
	reg.GaugeFunc("livechar_predict_hit_rate", func() float64 {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		return lc.pred.hitRate()
	})
	reg.Help("livechar_predict_entropy_bits", "Shannon entropy of the unigram next-request distribution.")
	reg.GaugeFunc("livechar_predict_entropy_bits", func() float64 {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		return lc.pred.model.UnigramEntropyBits()
	})
	reg.Help("livechar_ngram_vocab", "Distinct URLs interned by the online ngram model.")
	reg.GaugeFunc("livechar_ngram_vocab", func() float64 {
		lc.mu.Lock()
		defer lc.mu.Unlock()
		return float64(lc.pred.model.VocabSize())
	})
}

// windowStatsLight returns current-window top objects without HDR
// snapshots — enough for the rank gauges before the first rotation.
// Caller holds mu.
func (lc *LiveChar) windowStatsLight() *WindowStats {
	if lc.winStartNS < 0 {
		return nil
	}
	return &WindowStats{
		TopObjects: lc.curObjects.Top(lc.cfg.TopK),
		SketchMin:  lc.curObjects.MinCount(),
	}
}

// WriteSnapshot writes the current snapshot to dir/char-<runID>-<seq>.json
// (creating dir if needed) and returns the path plus a manifest ledger
// step recording the write, so periodic characterization artifacts fold
// into the run manifest like any other experiment step.
func (lc *LiveChar) WriteSnapshot(dir, runID string, seq int) (string, obs.ManifestStep, error) {
	start := time.Now()
	snap := lc.Snapshot()
	if dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", obs.ManifestStep{}, fmt.Errorf("livechar: creating snapshot dir: %w", err)
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", obs.ManifestStep{}, fmt.Errorf("livechar: encoding snapshot: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(dir, fmt.Sprintf("char-%s-%d.json", runID, seq))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", obs.ManifestStep{}, fmt.Errorf("livechar: writing snapshot: %w", err)
	}
	step := obs.ManifestStep{
		Name:    "char-snapshot " + filepath.Base(path),
		Status:  "completed",
		WallNS:  int64(time.Since(start)),
		Records: snap.Events,
		Bytes:   int64(len(data)),
	}
	return path, step, nil
}
