package livechar

import "sort"

// This file implements the Space-Saving heavy-hitter sketch of Metwally,
// Agrawal and El Abbadi ("Efficient computation of frequent and top-k
// elements in data streams", ICDT 2005): a fixed budget of m counters
// tracks the stream's most frequent keys. A key already held gets its
// counter incremented; a new key evicts the current minimum counter and
// inherits its count (recording that count as the new entry's maximum
// possible overestimate). The sketch guarantees, for a stream of N
// observations:
//
//	count - err <= true frequency <= count
//	err <= N/m
//
// so any key whose true frequency exceeds N/m is guaranteed to be
// present, which is exactly the budget the paper's popularity analysis
// (top objects and domains by request share) needs from a stream it
// cannot buffer.

// HeavyHitter is one reported entry: Count overestimates the true
// frequency by at most Err.
type HeavyHitter struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
	Err   int64  `json:"err,omitempty"`
}

type ssEntry struct {
	key   string
	count int64
	err   int64
	idx   int // position in the min-heap
}

// SpaceSaving is a fixed-size heavy-hitter sketch. Not safe for
// concurrent use; callers serialize (livechar's consumer goroutine owns
// its sketches).
type SpaceSaving struct {
	capacity int
	entries  map[string]*ssEntry
	heap     []*ssEntry // min-heap by count
	n        int64      // total observations folded in
}

// NewSpaceSaving returns a sketch with the given counter budget
// (minimum 1).
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{
		capacity: capacity,
		entries:  make(map[string]*ssEntry, capacity),
	}
}

// Observe folds one occurrence of key into the sketch.
func (s *SpaceSaving) Observe(key string) { s.ObserveN(key, 1) }

// ObserveN folds n occurrences of key into the sketch (no-op for n<=0).
func (s *SpaceSaving) ObserveN(key string, n int64) {
	if n <= 0 {
		return
	}
	s.n += n
	if e, ok := s.entries[key]; ok {
		e.count += n
		s.siftDown(e.idx)
		return
	}
	if len(s.heap) < s.capacity {
		e := &ssEntry{key: key, count: n, idx: len(s.heap)}
		s.entries[key] = e
		s.heap = append(s.heap, e)
		s.siftUp(e.idx)
		return
	}
	// Evict the minimum counter: the newcomer inherits its count (the
	// classical Space-Saving step), and that inherited count is the
	// newcomer's maximum possible overestimate.
	min := s.heap[0]
	delete(s.entries, min.key)
	min.key = key
	min.err = min.count
	min.count += n
	s.entries[key] = min
	s.siftDown(0)
}

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int { return len(s.heap) }

// Observations returns the total stream length folded in.
func (s *SpaceSaving) Observations() int64 { return s.n }

// MinCount returns the smallest tracked counter — the maximum possible
// frequency of any key NOT present in the sketch (0 while the counter
// budget is not exhausted). Fleet merges use it to bound the error of
// keys missing from one node's sketch.
func (s *SpaceSaving) MinCount() int64 {
	if len(s.heap) < s.capacity {
		return 0
	}
	return s.heap[0].count
}

// Top returns up to k entries sorted by descending count (ties broken
// by key for determinism).
func (s *SpaceSaving) Top(k int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(s.heap))
	for _, e := range s.heap {
		out = append(out, HeavyHitter{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Reset clears the sketch for window rotation, keeping the allocation.
func (s *SpaceSaving) Reset() {
	clear(s.entries)
	s.heap = s.heap[:0]
	s.n = 0
}

func (s *SpaceSaving) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].count <= s.heap[i].count {
			break
		}
		s.swap(parent, i)
		i = parent
	}
}

func (s *SpaceSaving) siftDown(i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(s.heap) && s.heap[l].count < s.heap[min].count {
			min = l
		}
		if r < len(s.heap) && s.heap[r].count < s.heap[min].count {
			min = r
		}
		if min == i {
			return
		}
		s.swap(min, i)
		i = min
	}
}

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].idx = i
	s.heap[j].idx = j
}

// mergeTops combines per-node top-K reports into one fleet-wide view.
// Counts for the same key sum exactly. For the error bound, a key
// absent from one node's report may still have occurred up to that
// node's minCount times there, so the merged Err adds the reporting
// node's per-entry Err when present and the node's minCount when not —
// the standard Space-Saving merge bound. Entries come back sorted by
// descending count, truncated to k.
func mergeTops(tops [][]HeavyHitter, minCounts []int64, k int) []HeavyHitter {
	merged := make(map[string]*HeavyHitter)
	for _, top := range tops {
		for _, hh := range top {
			if m, ok := merged[hh.Key]; ok {
				m.Count += hh.Count
				m.Err += hh.Err
			} else {
				c := hh
				merged[hh.Key] = &c
			}
		}
	}
	for key, m := range merged {
		for i, top := range tops {
			found := false
			for _, hh := range top {
				if hh.Key == key {
					found = true
					break
				}
			}
			if !found {
				m.Err += minCounts[i]
			}
		}
	}
	out := make([]HeavyHitter, 0, len(merged))
	for _, m := range merged {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
