package livechar

import (
	"fmt"
	"testing"

	"repro/internal/stats"
)

func TestSpaceSavingExactUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(16)
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			s.Observe(fmt.Sprintf("k%d", i))
		}
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	if s.MinCount() != 0 {
		t.Errorf("MinCount = %d, want 0 while under budget", s.MinCount())
	}
	top := s.Top(3)
	want := []HeavyHitter{{Key: "k9", Count: 10}, {Key: "k8", Count: 9}, {Key: "k7", Count: 8}}
	for i, w := range want {
		if top[i] != w {
			t.Errorf("top[%d] = %+v, want %+v", i, top[i], w)
		}
	}
}

// TestSpaceSavingErrorBounds drives a skewed stream through a small
// sketch and checks the Metwally guarantees against exact counts:
// count-err <= true <= count for tracked keys, err <= N/m, and every
// key with true frequency > N/m is present.
func TestSpaceSavingErrorBounds(t *testing.T) {
	const capacity = 64
	s := NewSpaceSaving(capacity)
	exact := map[string]int64{}
	rng := stats.NewRNG(7)
	zipf := stats.NewZipf(1000, 1.2)
	var n int64
	for i := 0; i < 50000; i++ {
		key := fmt.Sprintf("obj-%d", zipf.Sample(rng))
		exact[key]++
		s.Observe(key)
		n++
	}
	if s.Observations() != n {
		t.Fatalf("Observations = %d, want %d", s.Observations(), n)
	}
	bound := n / capacity
	tracked := map[string]HeavyHitter{}
	for _, hh := range s.Top(0) {
		tracked[hh.Key] = hh
		if hh.Err > bound {
			t.Errorf("key %s err %d exceeds N/m = %d", hh.Key, hh.Err, bound)
		}
		truth := exact[hh.Key]
		if truth > hh.Count || truth < hh.Count-hh.Err {
			t.Errorf("key %s: true %d outside [count-err, count] = [%d, %d]",
				hh.Key, truth, hh.Count-hh.Err, hh.Count)
		}
	}
	for key, truth := range exact {
		if truth > bound {
			if _, ok := tracked[key]; !ok {
				t.Errorf("key %s with true count %d > N/m = %d missing from sketch", key, truth, bound)
			}
		}
	}
	if mc := s.MinCount(); mc <= 0 {
		t.Errorf("MinCount = %d, want > 0 once budget is full", mc)
	}
}

func TestSpaceSavingReset(t *testing.T) {
	s := NewSpaceSaving(4)
	for i := 0; i < 100; i++ {
		s.Observe(fmt.Sprintf("k%d", i%8))
	}
	s.Reset()
	if s.Len() != 0 || s.Observations() != 0 || s.MinCount() != 0 {
		t.Fatalf("after Reset: len=%d n=%d min=%d", s.Len(), s.Observations(), s.MinCount())
	}
	s.Observe("fresh")
	top := s.Top(0)
	if len(top) != 1 || top[0].Key != "fresh" || top[0].Count != 1 || top[0].Err != 0 {
		t.Errorf("post-reset top = %+v", top)
	}
}

func TestMergeTopsAbsentNodeBound(t *testing.T) {
	// Node A saw x 100 times (err 5) and y 40 times; node B (budget
	// full, min counter 7) reports only z. Merged x must sum its own
	// err with B's min counter, since x may have occurred up to 7
	// times at B unrecorded.
	a := []HeavyHitter{{Key: "x", Count: 100, Err: 5}, {Key: "y", Count: 40}}
	b := []HeavyHitter{{Key: "z", Count: 60, Err: 2}}
	merged := mergeTops([][]HeavyHitter{a, b}, []int64{0, 7}, 10)
	byKey := map[string]HeavyHitter{}
	for _, hh := range merged {
		byKey[hh.Key] = hh
	}
	if got := byKey["x"]; got.Count != 100 || got.Err != 5+7 {
		t.Errorf("x = %+v, want count 100 err 12", got)
	}
	if got := byKey["y"]; got.Count != 40 || got.Err != 7 {
		t.Errorf("y = %+v, want count 40 err 7", got)
	}
	// z is absent from A; A's sketch was under budget (min 0), so its
	// absence there is exact.
	if got := byKey["z"]; got.Count != 60 || got.Err != 2 {
		t.Errorf("z = %+v, want count 60 err 2", got)
	}
	if merged[0].Key != "x" {
		t.Errorf("merged not sorted by count: %+v", merged)
	}
}

func TestMergeTopsSharedKeySums(t *testing.T) {
	a := []HeavyHitter{{Key: "x", Count: 10, Err: 1}}
	b := []HeavyHitter{{Key: "x", Count: 20, Err: 2}}
	merged := mergeTops([][]HeavyHitter{a, b}, []int64{3, 4}, 1)
	if len(merged) != 1 || merged[0].Count != 30 || merged[0].Err != 3 {
		t.Errorf("merged = %+v, want x count 30 err 3", merged)
	}
}
