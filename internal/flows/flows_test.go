package flows

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/logfmt"
)

var t0 = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)

func rec(client uint64, ua, url string, at time.Time) logfmt.Record {
	return logfmt.Record{
		Time: at, ClientID: client, Method: "GET", URL: url,
		UserAgent: ua, MIMEType: "application/json", Status: 200,
		Bytes: 100, Cache: logfmt.CacheHit,
	}
}

func feed(e *Extractor, client uint64, ua, url string, n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		r := rec(client, ua, url, t0.Add(time.Duration(i)*gap))
		e.Observe(&r)
	}
}

func TestExtractorThresholds(t *testing.T) {
	e := NewExtractor()
	const url = "https://x.com/obj"
	// 10 clients with 10 requests each: retained.
	for c := uint64(0); c < 10; c++ {
		feed(e, c, "app/1.0", url, 10, time.Minute)
	}
	// One client with 9 requests: dropped from the flow.
	feed(e, 99, "app/1.0", url, 9, time.Minute)
	// Another object with only 3 clients: dropped entirely.
	for c := uint64(0); c < 3; c++ {
		feed(e, c, "app/1.0", "https://x.com/rare", 10, time.Minute)
	}
	flows := e.Flows()
	if len(flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(flows))
	}
	f := flows[0]
	if f.URL != url {
		t.Errorf("URL = %q", f.URL)
	}
	if len(f.Clients) != 10 {
		t.Errorf("clients = %d, want 10 (short client dropped)", len(f.Clients))
	}
	if f.NumRequests() != 100 {
		t.Errorf("requests = %d", f.NumRequests())
	}
}

func TestExtractorClientIdentity(t *testing.T) {
	// Same IP with different user agents must be distinct clients
	// (the paper keys clients by UA + hashed IP).
	e := NewExtractor()
	e.MinRequests = 1
	e.MinClients = 2
	const url = "https://x.com/obj"
	feed(e, 1, "appA/1.0", url, 2, time.Second)
	feed(e, 1, "appB/2.0", url, 2, time.Second)
	flows := e.Flows()
	if len(flows) != 1 || len(flows[0].Clients) != 2 {
		t.Fatalf("UA should split clients: %+v", flows)
	}
}

func TestExtractorCanonicalizesURLs(t *testing.T) {
	e := NewExtractor()
	e.MinRequests = 1
	e.MinClients = 1
	r1 := rec(1, "a", "https://X.com/obj?b=2&a=1", t0)
	r2 := rec(1, "a", "https://x.com:443/obj?a=1&b=2", t0.Add(time.Second))
	e.Observe(&r1)
	e.Observe(&r2)
	if e.NumObjects() != 1 {
		t.Fatalf("equivalent URLs produced %d objects", e.NumObjects())
	}
}

func TestExtractorFilter(t *testing.T) {
	e := NewExtractor()
	e.Filter = logfmt.JSONOnly
	r := rec(1, "a", "https://x.com/obj", t0)
	r.MIMEType = "text/html"
	e.Observe(&r)
	if e.TotalObserved() != 0 {
		t.Error("filtered record counted")
	}
	r.MIMEType = "application/json"
	e.Observe(&r)
	if e.TotalObserved() != 1 {
		t.Error("admitted record not counted")
	}
}

func TestRequestsSortedByTime(t *testing.T) {
	e := NewExtractor()
	e.MinRequests = 3
	e.MinClients = 1
	const url = "https://x.com/obj"
	// Feed out of order.
	for _, offset := range []int{5, 1, 3} {
		r := rec(1, "a", url, t0.Add(time.Duration(offset)*time.Second))
		e.Observe(&r)
	}
	flows := e.Flows()
	if len(flows) != 1 {
		t.Fatal("flow missing")
	}
	reqs := flows[0].Clients[0].Requests
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Time.Before(reqs[i-1].Time) {
			t.Fatal("requests not sorted")
		}
	}
}

func TestAllRequestsMergesAndSorts(t *testing.T) {
	e := NewExtractor()
	e.MinRequests = 2
	e.MinClients = 2
	const url = "https://x.com/obj"
	feed(e, 1, "a", url, 3, 2*time.Second)
	feed(e, 2, "a", url, 3, 3*time.Second)
	flows := e.Flows()
	all := flows[0].AllRequests()
	if len(all) != 6 {
		t.Fatalf("merged %d requests", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Time.Before(all[i-1].Time) {
			t.Fatal("merged requests not sorted")
		}
	}
}

func TestFlowsDeterministicOrder(t *testing.T) {
	build := func() []*ObjectFlow {
		e := NewExtractor()
		e.MinRequests = 1
		e.MinClients = 1
		for c := uint64(0); c < 20; c++ {
			url := fmt.Sprintf("https://x.com/obj/%d", c%5)
			feed(e, c, "a", url, 2, time.Second)
		}
		return e.Flows()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("flow counts differ")
	}
	for i := range a {
		if a[i].URL != b[i].URL || len(a[i].Clients) != len(b[i].Clients) {
			t.Fatal("flow order not deterministic")
		}
		for j := range a[i].Clients {
			if a[i].Clients[j].Client != b[i].Clients[j].Client {
				t.Fatal("client order not deterministic")
			}
		}
	}
}

func TestBinCounts(t *testing.T) {
	reqs := []Request{
		{Time: t0},
		{Time: t0.Add(2 * time.Second)},
		{Time: t0.Add(2500 * time.Millisecond)},
		{Time: t0.Add(5 * time.Second)},
	}
	x := BinCounts(reqs, time.Second, 0)
	if len(x) != 6 {
		t.Fatalf("signal length %d, want 6", len(x))
	}
	want := []float64{1, 0, 2, 0, 0, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Errorf("bin %d = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestBinCountsEdgeCases(t *testing.T) {
	if BinCounts(nil, time.Second, 0) != nil {
		t.Error("nil requests should return nil")
	}
	if BinCounts([]Request{{Time: t0}}, time.Second, 0) != nil {
		t.Error("single request should return nil")
	}
	reqs := []Request{{Time: t0}, {Time: t0.Add(time.Hour)}}
	if BinCounts(reqs, 0, 0) != nil {
		t.Error("zero bin width should return nil")
	}
	x := BinCounts(reqs, time.Second, 100)
	if len(x) != 100 {
		t.Errorf("maxBins cap not applied: %d", len(x))
	}
	// Sub-bin span: both requests in the same second.
	same := []Request{{Time: t0}, {Time: t0.Add(100 * time.Millisecond)}}
	if BinCounts(same, time.Second, 0) != nil {
		t.Error("sub-bin span should return nil")
	}
}

func TestHashUADistinct(t *testing.T) {
	if HashUA("a") == HashUA("b") {
		t.Error("different UAs hashed equal")
	}
	if HashUA("a") != HashUA("a") {
		t.Error("hash not deterministic")
	}
}

func TestFilterStats(t *testing.T) {
	e := NewExtractor()
	const url = "https://x.com/popular"
	// Popular object: 10 clients x 12 requests (kept).
	for c := uint64(0); c < 10; c++ {
		feed(e, c, "app/1.0", url, 12, time.Minute)
	}
	// Unpopular objects: 5 one-request objects (dropped).
	for i := 0; i < 5; i++ {
		r := rec(100+uint64(i), "app/1.0", fmt.Sprintf("https://x.com/rare/%d", i), t0)
		e.Observe(&r)
	}
	s := e.FilterStats()
	if s.ObjectsTotal != 6 || s.ObjectsKept != 1 {
		t.Errorf("objects = %d/%d", s.ObjectsKept, s.ObjectsTotal)
	}
	if s.RequestsTotal != 125 || s.RequestsKept != 120 {
		t.Errorf("requests = %d/%d", s.RequestsKept, s.RequestsTotal)
	}
	// Popular objects carry most requests despite being few.
	if s.ObjectShare() > 0.2 || s.RequestShare() < 0.9 {
		t.Errorf("shares: objects %.2f requests %.2f", s.ObjectShare(), s.RequestShare())
	}
}

func TestFilterStatsEmpty(t *testing.T) {
	e := NewExtractor()
	s := e.FilterStats()
	if s.ObjectShare() != 0 || s.RequestShare() != 0 {
		t.Error("empty stats should be zero")
	}
}
