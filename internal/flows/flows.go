// Package flows extracts request flows from CDN log streams.
//
// Following §5.1 of the paper: an *object flow* is the sequence of
// requests made by all clients to one object (identified by its unique
// URL); a *client-object flow* is the subsequence of an object flow
// issued by one client, where a client is identified by a (user agent,
// anonymized client IP) pair. To obtain significant results, the paper
// filters out client-object flows with fewer than 10 requests and object
// flows with fewer than 10 clients.
package flows

import (
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/logfmt"
)

// ClientKey identifies a client as the paper does: by anonymized client
// IP plus user agent (hashed, so the key is compact and comparable).
type ClientKey struct {
	ClientID uint64
	UAHash   uint64
}

// HashUA hashes a raw user-agent header for ClientKey.
func HashUA(ua string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(ua))
	return h.Sum64()
}

// ClientKeyFor builds the flow key for one log record.
func ClientKeyFor(r *logfmt.Record) ClientKey {
	return ClientKey{ClientID: r.ClientID, UAHash: HashUA(r.UserAgent)}
}

// Request is the per-request information a flow retains: enough for the
// periodicity analysis (times), the cacheability/upload accounting of
// §5.1's results, and the prediction analysis (URL ordering).
type Request struct {
	Time   time.Time
	Upload bool
	Cached bool // response was cacheable (hit or miss)
}

// ClientFlow is one client's request subsequence for one object.
type ClientFlow struct {
	Client   ClientKey
	Requests []Request
}

// Len returns the number of requests in the flow.
func (f *ClientFlow) Len() int { return len(f.Requests) }

// ObjectFlow groups every request to one object URL.
type ObjectFlow struct {
	// URL is the canonicalized object URL.
	URL string
	// Clients holds the per-client subsequences, in arbitrary order.
	Clients []*ClientFlow
}

// NumRequests returns the total number of requests across clients.
func (f *ObjectFlow) NumRequests() int {
	n := 0
	for _, c := range f.Clients {
		n += len(c.Requests)
	}
	return n
}

// AllRequests returns every request to the object sorted by time,
// merging the per-client subsequences.
func (f *ObjectFlow) AllRequests() []Request {
	out := make([]Request, 0, f.NumRequests())
	for _, c := range f.Clients {
		out = append(out, c.Requests...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Extractor accumulates flows from a log stream. Feed records with
// Observe, then call Flows for the filtered result. Extractor is not
// safe for concurrent use.
type Extractor struct {
	// MinRequests is the minimum client-object flow length (paper: 10).
	MinRequests int
	// MinClients is the minimum number of (retained) clients per object
	// flow (paper: 10).
	MinClients int
	// Filter optionally restricts which records are considered;
	// nil admits every record.
	Filter logfmt.Filter

	objects map[string]map[ClientKey]*ClientFlow
	total   int64
}

// NewExtractor returns an extractor with the paper's thresholds
// (10 requests per client-object flow, 10 clients per object flow).
func NewExtractor() *Extractor {
	return &Extractor{
		MinRequests: 10,
		MinClients:  10,
		objects:     make(map[string]map[ClientKey]*ClientFlow),
	}
}

// Observe folds one record into the flow state.
func (e *Extractor) Observe(r *logfmt.Record) {
	if e.Filter != nil && !e.Filter(r) {
		return
	}
	e.total++
	url := logfmt.CanonicalURL(r.URL)
	clients := e.objects[url]
	if clients == nil {
		clients = make(map[ClientKey]*ClientFlow)
		e.objects[url] = clients
	}
	key := ClientKeyFor(r)
	cf := clients[key]
	if cf == nil {
		cf = &ClientFlow{Client: key}
		clients[key] = cf
	}
	cf.Requests = append(cf.Requests, Request{
		Time:   r.Time,
		Upload: r.IsUpload(),
		Cached: r.Cache.Cacheable(),
	})
}

// TotalObserved returns the number of records admitted by the filter.
func (e *Extractor) TotalObserved() int64 { return e.total }

// NumObjects returns the number of distinct object URLs seen (before
// filtering).
func (e *Extractor) NumObjects() int { return len(e.objects) }

// Flows returns the object flows that survive both thresholds:
// client-object flows shorter than MinRequests are dropped, then object
// flows with fewer than MinClients remaining clients are dropped.
// Request lists are sorted by time. The result is sorted by URL for
// deterministic iteration.
func (e *Extractor) Flows() []*ObjectFlow {
	urls := make([]string, 0, len(e.objects))
	for url := range e.objects {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	var out []*ObjectFlow
	for _, url := range urls {
		clients := e.objects[url]
		of := &ObjectFlow{URL: url}
		keys := make([]ClientKey, 0, len(clients))
		for k := range clients {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].ClientID != keys[j].ClientID {
				return keys[i].ClientID < keys[j].ClientID
			}
			return keys[i].UAHash < keys[j].UAHash
		})
		for _, k := range keys {
			cf := clients[k]
			if len(cf.Requests) < e.MinRequests {
				continue
			}
			sort.Slice(cf.Requests, func(i, j int) bool {
				return cf.Requests[i].Time.Before(cf.Requests[j].Time)
			})
			of.Clients = append(of.Clients, cf)
		}
		if len(of.Clients) >= e.MinClients {
			out = append(out, of)
		}
	}
	return out
}

// FilterStats reports how much of the observed traffic survives the flow
// filters: the paper notes its thresholds retain "flows containing the
// top 25% of objects requested".
type FilterStats struct {
	// ObjectsTotal and ObjectsKept count distinct URLs before and after
	// filtering.
	ObjectsTotal, ObjectsKept int
	// RequestsTotal and RequestsKept count requests before and after.
	RequestsTotal, RequestsKept int64
}

// ObjectShare returns the fraction of objects kept.
func (s FilterStats) ObjectShare() float64 {
	if s.ObjectsTotal == 0 {
		return 0
	}
	return float64(s.ObjectsKept) / float64(s.ObjectsTotal)
}

// RequestShare returns the fraction of requests kept; filtered flows are
// the *popular* objects, so this typically far exceeds ObjectShare.
func (s FilterStats) RequestShare() float64 {
	if s.RequestsTotal == 0 {
		return 0
	}
	return float64(s.RequestsKept) / float64(s.RequestsTotal)
}

// FilterStats computes the filter coverage for the current state. It
// applies the same thresholds as Flows.
func (e *Extractor) FilterStats() FilterStats {
	s := FilterStats{ObjectsTotal: len(e.objects), RequestsTotal: e.total}
	for _, clients := range e.objects {
		kept := 0
		var keptReqs int64
		for _, cf := range clients {
			if len(cf.Requests) >= e.MinRequests {
				kept++
				keptReqs += int64(len(cf.Requests))
			}
		}
		if kept >= e.MinClients {
			s.ObjectsKept++
			s.RequestsKept += keptReqs
		}
	}
	return s
}

// BinCounts converts a request sequence into a uniformly sampled count
// signal with the given bin width (the paper samples at 1 second),
// spanning from the first to the last request. It returns nil for
// sequences with fewer than two requests or a non-positive bin width.
// The signal length is capped at maxBins (0 means no cap) to bound
// memory for pathological spans.
func BinCounts(reqs []Request, bin time.Duration, maxBins int) []float64 {
	if len(reqs) < 2 || bin <= 0 {
		return nil
	}
	start := reqs[0].Time
	end := reqs[len(reqs)-1].Time
	span := end.Sub(start)
	n := int(span/bin) + 1
	if n < 2 {
		return nil
	}
	if maxBins > 0 && n > maxBins {
		n = maxBins
	}
	x := make([]float64, n)
	for _, r := range reqs {
		i := int(r.Time.Sub(start) / bin)
		if i >= 0 && i < n {
			x[i]++
		}
	}
	return x
}
