// Package domaincat categorizes domains by industry, standing in for the
// commercial categorization service (Symantec SiteReview) the paper uses
// for Fig. 4. A Catalog maps domain names to one of the eleven industry
// categories the paper charts, with a deterministic keyword fallback for
// domains that are not explicitly registered.
package domaincat

import (
	"hash/fnv"
	"strings"
	"sync"
)

// Category is one of the industry categories from Fig. 4.
type Category uint8

const (
	// CategoryUnknown is used when no category can be assigned.
	CategoryUnknown Category = iota
	CategoryNewsMedia
	CategorySports
	CategoryEntertainment
	CategoryFinancial
	CategoryStreaming
	CategoryGaming
	CategoryRetail
	CategoryTechnology
	CategoryTravel
	CategorySocial
	CategoryAdsAnalytics
)

var categoryNames = [...]string{
	"Unknown", "News/Media", "Sports", "Entertainment", "Financial Service",
	"Streaming", "Gaming", "Retail", "Technology", "Travel", "Social",
	"Ads/Analytics",
}

// String returns the category label used in Fig. 4.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "Unknown"
}

// Categories returns the eleven industry categories (excluding Unknown)
// in display order.
func Categories() []Category {
	out := make([]Category, 0, 11)
	for c := CategoryNewsMedia; c <= CategoryAdsAnalytics; c++ {
		out = append(out, c)
	}
	return out
}

// ParseCategory resolves a label back to its Category;
// ok is false for unrecognized labels.
func ParseCategory(label string) (cat Category, ok bool) {
	for i, n := range categoryNames {
		if strings.EqualFold(label, n) {
			return Category(i), true
		}
	}
	return CategoryUnknown, false
}

// keywordRules back the fallback classification: a domain containing the
// keyword is assigned the category. First match wins.
var keywordRules = []struct {
	keyword string
	cat     Category
}{
	{"news", CategoryNewsMedia},
	{"daily", CategoryNewsMedia},
	{"press", CategoryNewsMedia},
	{"sport", CategorySports},
	{"league", CategorySports},
	{"score", CategorySports},
	{"stream", CategoryStreaming},
	{"video", CategoryStreaming},
	{"music", CategoryStreaming},
	{"game", CategoryGaming},
	{"play", CategoryGaming},
	{"bank", CategoryFinancial},
	{"pay", CategoryFinancial},
	{"trade", CategoryFinancial},
	{"finance", CategoryFinancial},
	{"shop", CategoryRetail},
	{"store", CategoryRetail},
	{"market", CategoryRetail},
	{"travel", CategoryTravel},
	{"hotel", CategoryTravel},
	{"flight", CategoryTravel},
	{"social", CategorySocial},
	{"chat", CategorySocial},
	{"friend", CategorySocial},
	{"ads", CategoryAdsAnalytics},
	{"track", CategoryAdsAnalytics},
	{"metric", CategoryAdsAnalytics},
	{"analytics", CategoryAdsAnalytics},
	{"tech", CategoryTechnology},
	{"cloud", CategoryTechnology},
	{"api", CategoryTechnology},
	{"tv", CategoryEntertainment},
	{"movie", CategoryEntertainment},
	{"show", CategoryEntertainment},
}

// Catalog maps domains to categories. Explicit registrations take
// precedence over keyword matching; if neither applies, the domain hashes
// deterministically onto a category so repeated lookups agree (mirroring
// that the commercial service categorizes essentially every domain).
// Catalog is safe for concurrent lookups after registration completes.
type Catalog struct {
	mu       sync.RWMutex
	explicit map[string]Category
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{explicit: make(map[string]Category)}
}

// Register assigns an explicit category to a domain (case-insensitive).
func (c *Catalog) Register(domain string, cat Category) {
	c.mu.Lock()
	c.explicit[strings.ToLower(domain)] = cat
	c.mu.Unlock()
}

// Len returns the number of explicitly registered domains.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.explicit)
}

// Lookup returns the category for a domain: explicit registration first,
// then keyword inference, then a deterministic hash assignment.
func (c *Catalog) Lookup(domain string) Category {
	d := strings.ToLower(domain)
	c.mu.RLock()
	cat, ok := c.explicit[d]
	c.mu.RUnlock()
	if ok {
		return cat
	}
	if cat, ok := Infer(d); ok {
		return cat
	}
	return hashCategory(d)
}

// Infer attempts keyword-based categorization only, reporting whether a
// keyword matched.
func Infer(domain string) (Category, bool) {
	d := strings.ToLower(domain)
	for _, r := range keywordRules {
		if strings.Contains(d, r.keyword) {
			return r.cat, true
		}
	}
	return CategoryUnknown, false
}

func hashCategory(domain string) Category {
	h := fnv.New32a()
	h.Write([]byte(domain))
	n := len(categoryNames) - 1 // exclude Unknown
	return Category(1 + h.Sum32()%uint32(n))
}
