package domaincat

import (
	"testing"
	"testing/quick"
)

func TestCategoryString(t *testing.T) {
	if CategoryNewsMedia.String() != "News/Media" {
		t.Errorf("got %q", CategoryNewsMedia.String())
	}
	if Category(99).String() != "Unknown" {
		t.Error("out-of-range category should be Unknown")
	}
}

func TestCategoriesListsEleven(t *testing.T) {
	cats := Categories()
	if len(cats) != 11 {
		t.Fatalf("got %d categories, want 11 (paper's Fig. 4)", len(cats))
	}
	seen := map[Category]bool{}
	for _, c := range cats {
		if c == CategoryUnknown {
			t.Error("Unknown should not be listed")
		}
		if seen[c] {
			t.Errorf("duplicate category %v", c)
		}
		seen[c] = true
	}
}

func TestParseCategory(t *testing.T) {
	for _, c := range Categories() {
		got, ok := ParseCategory(c.String())
		if !ok || got != c {
			t.Errorf("ParseCategory(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseCategory("nonsense"); ok {
		t.Error("nonsense parsed")
	}
}

func TestInferKeywords(t *testing.T) {
	cases := map[string]Category{
		"worldnews.example.com":   CategoryNewsMedia,
		"sportscores.example.com": CategoryNewsMedia, // "news" not present; "sport" matches first? see below
		"mybank.example.com":      CategoryFinancial,
		"gamehub.example.com":     CategoryGaming,
		"streambox.example.com":   CategoryStreaming,
		"adstracker.example.com":  CategoryAdsAnalytics,
	}
	// Correction: sportscores contains "sport" -> Sports.
	cases["sportscores.example.com"] = CategorySports
	for d, want := range cases {
		got, ok := Infer(d)
		if !ok || got != want {
			t.Errorf("Infer(%q) = %v (ok=%v), want %v", d, got, ok, want)
		}
	}
	if _, ok := Infer("zzqqx.example.com"); ok {
		t.Error("no keyword should match")
	}
}

func TestCatalogExplicitWins(t *testing.T) {
	c := NewCatalog()
	c.Register("GameHub.example.com", CategoryFinancial)
	if got := c.Lookup("gamehub.example.com"); got != CategoryFinancial {
		t.Errorf("explicit registration ignored: %v", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCatalogHashFallbackDeterministic(t *testing.T) {
	c := NewCatalog()
	a := c.Lookup("zzqqx1.example.com")
	b := c.Lookup("zzqqx1.example.com")
	if a != b {
		t.Error("hash fallback not deterministic")
	}
	if a == CategoryUnknown {
		t.Error("hash fallback should never be Unknown")
	}
}

func TestCatalogFallbackSpreads(t *testing.T) {
	c := NewCatalog()
	seen := map[Category]bool{}
	for i := 0; i < 200; i++ {
		d := "zz" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + "qx.example.com"
		seen[c.Lookup(d)] = true
	}
	if len(seen) < 8 {
		t.Errorf("hash fallback uses only %d categories", len(seen))
	}
}

func TestLookupNeverUnknownAndNeverPanics(t *testing.T) {
	c := NewCatalog()
	err := quick.Check(func(s string) bool {
		return c.Lookup(s) != CategoryUnknown
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCatalogConcurrent(t *testing.T) {
	c := NewCatalog()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			c.Register("d.example.com", CategorySports)
		}
		close(done)
	}()
	for i := 0; i < 100; i++ {
		c.Lookup("d.example.com")
		c.Lookup("other.example.com")
	}
	<-done
}
