// Package synth generates synthetic CDN edge-server request logs whose
// aggregate structure matches the JSON traffic the paper measured on
// Akamai (§3-§5): the device and application mix of Fig. 3, the
// request-method split, the cacheability structure of Fig. 4, the
// manifest-driven request chains that make requests predictable (§5.2),
// and the periodic machine-to-machine flows of §5.1.
//
// The generator is an event-driven simulation: a population of client
// actors (mobile apps, browsers, embedded devices, pollers, telemetry
// uploaders, unknown agents) is scheduled on a single event queue, and
// each actor emits log records when it fires. Everything is
// deterministic given Config.Seed.
package synth

import (
	"errors"
	"math"
	"time"

	"repro/internal/obs"
)

// SourceMix sets the share of JSON requests attributable to each traffic
// source archetype. The shares should sum to roughly 1; Validate
// enforces a tolerance.
type SourceMix struct {
	// MobileApp is native mobile application traffic (paper: >=52%).
	MobileApp float64
	// MobileBrowser is browser traffic from mobile devices (paper: 2.5%).
	MobileBrowser float64
	// DesktopBrowser is desktop browser traffic.
	DesktopBrowser float64
	// DesktopApp is native desktop application traffic.
	DesktopApp float64
	// Embedded is game consoles, smart TVs, watches, IoT (paper: 12%).
	Embedded float64
	// Unknown is traffic with missing or unidentifiable user agents
	// (paper: 24%).
	Unknown float64
}

// DefaultSourceMix returns the paper's Figure 3 shares.
func DefaultSourceMix() SourceMix {
	return SourceMix{
		MobileApp:      0.55,
		MobileBrowser:  0.025,
		DesktopBrowser: 0.08,
		DesktopApp:     0.005,
		Embedded:       0.12,
		Unknown:        0.22,
	}
}

// Sum returns the total of all shares.
func (m SourceMix) Sum() float64 {
	return m.MobileApp + m.MobileBrowser + m.DesktopBrowser +
		m.DesktopApp + m.Embedded + m.Unknown
}

// Config parameterizes one synthetic dataset.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed uint64
	// Start is the capture start time.
	Start time.Time
	// Duration is the capture window (paper: 10 min short-term, 24 h
	// long-term).
	Duration time.Duration
	// Domains is the number of distinct customer domains.
	Domains int
	// TargetRequests is the approximate total record count to emit; the
	// generator sizes the client population to hit it within ~10%.
	TargetRequests int
	// Mix is the traffic source composition.
	Mix SourceMix
	// PeriodicShare is the fraction of JSON requests that belong to
	// periodic machine-to-machine flows (paper: 6.3%).
	PeriodicShare float64
	// UncacheableShare is the fraction of JSON traffic configured
	// uncacheable (paper: ~55%). Reached jointly through domain policies
	// and traffic weighting.
	UncacheableShare float64
	// NonJSONShare is the fraction of total records that are not
	// application/json (HTML, scripts, images) so that content-type
	// comparisons are exercised; the paper's datasets are JSON-filtered,
	// so analyses apply the JSON filter first.
	NonJSONShare float64
	// UTCOffset shifts the human diurnal activity cycle, modeling a
	// vantage point in another region (the paper's long-term dataset is
	// Seattle-only and its §7 limitations call for more regions).
	// Machine traffic is unaffected. Zero keeps the default phase.
	UTCOffset time.Duration
	// Attack overlays seeded adversarial traffic populations on the
	// normal stream: cache-busting query storms, flash crowds, bot
	// floods with spoofed user agents, and compression-conversion
	// amplification probes. Attack actors draw on their own RNG stream
	// and never touch the benign simulation's state, so a given Seed
	// produces the identical benign subsequence whether or not the
	// attack is enabled (see AttackMask). The zero value disables all
	// attack traffic.
	Attack AttackConfig
	// Shards splits the client population across this many independent
	// sub-generators running on their own goroutines, their outputs
	// k-way merged by timestamp. 0 or 1 keeps the single-goroutine
	// generator and reproduces the historical stream for a given Seed
	// exactly; Shards > 1 yields a different — but fully deterministic —
	// stream per (Seed, TargetRequests, Shards). All shards share one
	// domain universe and user-agent pool, so aggregate structure
	// (domain popularity, device mix) is unchanged.
	Shards int
	// Obs, if non-nil, receives generation metrics: every emitted record
	// increments synth_records_generated_total and adds its body size to
	// synth_bytes_generated_total, so a scrape of a running generator
	// shows its record rate.
	Obs *obs.Registry
	// Span, if non-nil, is the parent tracing span of this generation.
	// Sharded generation opens one child span per shard under it (with
	// shard index and request-budget attributes), so a trace export shows
	// where generation wall time went. Single-goroutine generation adds
	// no children — the parent span's own tallies cover it.
	Span *obs.Span
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Start.IsZero():
		return errors.New("synth: Config.Start is zero")
	case c.Duration <= 0:
		return errors.New("synth: Config.Duration must be positive")
	case c.Domains <= 0:
		return errors.New("synth: Config.Domains must be positive")
	case c.TargetRequests <= 0:
		return errors.New("synth: Config.TargetRequests must be positive")
	case c.PeriodicShare < 0 || c.PeriodicShare >= 1:
		return errors.New("synth: Config.PeriodicShare out of [0,1)")
	case c.UncacheableShare < 0 || c.UncacheableShare > 1:
		return errors.New("synth: Config.UncacheableShare out of [0,1]")
	case c.NonJSONShare < 0 || c.NonJSONShare >= 1:
		return errors.New("synth: Config.NonJSONShare out of [0,1)")
	case c.Shards < 0 || c.Shards > MaxShards:
		return errors.New("synth: Config.Shards out of [0,1024]")
	}
	s := c.Mix.Sum()
	if s < 0.95 || s > 1.05 {
		return errors.New("synth: Config.Mix shares must sum to ~1")
	}
	return c.Attack.validate()
}

// captureStart is the fixed reference capture time used by the presets
// (early May 2019, matching the paper's measurement period).
var captureStart = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)

// ShortTermConfig returns a preset modeled on the paper's short-term
// dataset (Table 2: 25 million logs over 10 minutes across ~5K domains,
// network wide), scaled down by the given factor (e.g. scale=0.001 gives
// 25K records over the same 10 minutes across ~50 domains). Domain count
// scales with sqrt(scale) so per-domain request density stays realistic.
func ShortTermConfig(seed uint64, scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	domains := int(5000 * math.Sqrt(scale))
	if domains < 12 {
		domains = 12
	}
	return Config{
		Seed:             seed,
		Start:            captureStart,
		Duration:         10 * time.Minute,
		Domains:          domains,
		TargetRequests:   int(25_000_000 * scale),
		Mix:              DefaultSourceMix(),
		PeriodicShare:    0.063,
		UncacheableShare: 0.55,
		NonJSONShare:     0.28,
	}
}

// LongTermConfig returns a preset modeled on the paper's long-term
// dataset (Table 2: 10 million logs over 24 hours from ~170 domains at
// one vantage), scaled down by the given factor.
func LongTermConfig(seed uint64, scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	domains := int(170 * math.Sqrt(scale))
	if domains < 12 {
		domains = 12
	}
	return Config{
		Seed:             seed,
		Start:            captureStart,
		Duration:         24 * time.Hour,
		Domains:          domains,
		TargetRequests:   int(10_000_000 * scale),
		Mix:              DefaultSourceMix(),
		PeriodicShare:    0.063,
		UncacheableShare: 0.55,
		NonJSONShare:     0.28,
	}
}
