package synth

import (
	"math"
	"time"

	"repro/internal/stats"
)

// MonthCounter is one month of CDN-wide content-type accounting, the raw
// input behind Fig. 1 (ratio of JSON to HTML requests since 2016) and the
// §4 observation that mean JSON response size shrank ~28% over the
// period.
type MonthCounter struct {
	// Month is the first day of the month (UTC).
	Month time.Time
	// JSONRequests and HTMLRequests are the month's request totals.
	JSONRequests int64
	HTMLRequests int64
	// JSONMeanBytes and HTMLMeanBytes are mean response sizes.
	JSONMeanBytes float64
	HTMLMeanBytes float64
}

// Ratio returns JSON:HTML requests for the month (0 if no HTML).
func (m MonthCounter) Ratio() float64 {
	if m.HTMLRequests == 0 {
		return 0
	}
	return float64(m.JSONRequests) / float64(m.HTMLRequests)
}

// TrendConfig parameterizes the multi-year counter series.
type TrendConfig struct {
	Seed uint64
	// From and To bound the series, inclusive of From's month and
	// exclusive of To's.
	From, To time.Time
	// StartRatio is the JSON:HTML ratio in the first month and EndRatio
	// in the last (paper: JSON starts below HTML in 2016 and ends >4x
	// in 2019).
	StartRatio, EndRatio float64
	// SizeShrink is the total fractional decrease of the mean JSON
	// response size over the window (paper: ~0.28 since 2016).
	SizeShrink float64
	// BaseHTMLRequests is the monthly HTML request volume at the start.
	BaseHTMLRequests int64
}

// DefaultTrendConfig covers January 2016 through May 2019 with the
// paper's endpoints.
func DefaultTrendConfig(seed uint64) TrendConfig {
	return TrendConfig{
		Seed:             seed,
		From:             time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
		To:               time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC),
		StartRatio:       0.8,
		EndRatio:         4.2,
		SizeShrink:       0.28,
		BaseHTMLRequests: 1_000_000,
	}
}

// GenerateTrend produces the monthly counter series: the JSON:HTML ratio
// grows geometrically from StartRatio to EndRatio with small
// month-to-month noise, HTML volume grows mildly, and mean JSON size
// declines by SizeShrink over the window.
func GenerateTrend(cfg TrendConfig) []MonthCounter {
	if !cfg.From.Before(cfg.To) {
		return nil
	}
	rng := stats.NewRNG(cfg.Seed)
	var months []time.Time
	for m := time.Date(cfg.From.Year(), cfg.From.Month(), 1, 0, 0, 0, 0, time.UTC); m.Before(cfg.To); m = m.AddDate(0, 1, 0) {
		months = append(months, m)
	}
	n := len(months)
	out := make([]MonthCounter, n)
	const jsonSize0, htmlSize0 = 1100.0, 1400.0
	for i, m := range months {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		// Geometric interpolation of the ratio with +/-4% noise.
		ratio := cfg.StartRatio * math.Pow(cfg.EndRatio/cfg.StartRatio, frac)
		ratio *= 1 + 0.04*(rng.Float64()*2-1)
		html := float64(cfg.BaseHTMLRequests) * (1 + 0.3*frac) * (1 + 0.03*(rng.Float64()*2-1))
		out[i] = MonthCounter{
			Month:         m,
			HTMLRequests:  int64(html),
			JSONRequests:  int64(html * ratio),
			JSONMeanBytes: jsonSize0 * (1 - cfg.SizeShrink*frac) * (1 + 0.02*(rng.Float64()*2-1)),
			HTMLMeanBytes: htmlSize0 * (1 + 0.02*(rng.Float64()*2-1)),
		}
	}
	return out
}
