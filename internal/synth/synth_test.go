package synth

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/logfmt"
	"repro/internal/uastring"
)

// collect generates a small short-term dataset once per test binary and
// shares it across calibration tests.
var testRecords []logfmt.Record

func dataset(t *testing.T) []logfmt.Record {
	t.Helper()
	if testRecords != nil {
		return testRecords
	}
	cfg := ShortTermConfig(42, 0.002) // ~50K records
	err := Generate(cfg, func(r *logfmt.Record) error {
		testRecords = append(testRecords, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(testRecords) == 0 {
		t.Fatal("no records generated")
	}
	return testRecords
}

func TestConfigValidate(t *testing.T) {
	good := ShortTermConfig(1, 0.001)
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Start = time.Time{} },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Domains = 0 },
		func(c *Config) { c.TargetRequests = 0 },
		func(c *Config) { c.PeriodicShare = -0.1 },
		func(c *Config) { c.PeriodicShare = 1 },
		func(c *Config) { c.UncacheableShare = 1.2 },
		func(c *Config) { c.NonJSONShare = 1 },
		func(c *Config) { c.Mix = SourceMix{MobileApp: 0.2} },
	}
	for i, mutate := range bad {
		c := ShortTermConfig(1, 0.001)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultSourceMixSums(t *testing.T) {
	if s := DefaultSourceMix().Sum(); math.Abs(s-1) > 0.01 {
		t.Errorf("mix sums to %v", s)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen := func() []logfmt.Record {
		var recs []logfmt.Record
		cfg := ShortTermConfig(7, 0.0004)
		if err := Generate(cfg, func(r *logfmt.Record) error {
			recs = append(recs, *r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestGenerateRecordCountNearTarget(t *testing.T) {
	cfg := ShortTermConfig(42, 0.002)
	recs := dataset(t)
	got := float64(len(recs))
	want := float64(cfg.TargetRequests)
	if got < want*0.7 || got > want*1.4 {
		t.Errorf("generated %d records, target %d", len(recs), cfg.TargetRequests)
	}
}

func TestGenerateRecordsValidAndInWindow(t *testing.T) {
	cfg := ShortTermConfig(42, 0.002)
	end := cfg.Start.Add(cfg.Duration)
	for i, r := range dataset(t) {
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v (%+v)", i, err, r)
		}
		if r.Time.Before(cfg.Start) || r.Time.After(end) {
			t.Fatalf("record %d outside window: %v", i, r.Time)
		}
	}
}

func TestGenerateJSONShare(t *testing.T) {
	recs := dataset(t)
	json := 0
	for _, r := range recs {
		if r.IsJSON() {
			json++
		}
	}
	share := float64(json) / float64(len(recs))
	if share < 0.6 || share > 0.85 {
		t.Errorf("JSON share = %.3f, want ~0.72", share)
	}
}

// jsonShares computes per-class request shares among JSON records.
func jsonShares(recs []logfmt.Record) (mobile, desktop, embedded, unknown, browser, getFrac, postOfRest, uncache float64) {
	var total, nMob, nDesk, nEmb, nUnk, nBrowser, nGet, nPost, nOther, nUncache int
	for _, r := range recs {
		if !r.IsJSON() {
			continue
		}
		total++
		cls := uastring.Classify(r.UserAgent)
		switch cls.Device {
		case uastring.DeviceMobile:
			nMob++
		case uastring.DeviceDesktop:
			nDesk++
		case uastring.DeviceEmbedded:
			nEmb++
		default:
			nUnk++
		}
		if cls.Browser {
			nBrowser++
		}
		switch r.Method {
		case "GET":
			nGet++
		case "POST":
			nPost++
		default:
			nOther++
		}
		if r.Cache == logfmt.CacheUncacheable {
			nUncache++
		}
	}
	ft := float64(total)
	mobile, desktop, embedded, unknown = float64(nMob)/ft, float64(nDesk)/ft, float64(nEmb)/ft, float64(nUnk)/ft
	browser = float64(nBrowser) / ft
	getFrac = float64(nGet) / ft
	if nPost+nOther > 0 {
		postOfRest = float64(nPost) / float64(nPost+nOther)
	}
	uncache = float64(nUncache) / ft
	return
}

func TestCalibrationDeviceShares(t *testing.T) {
	mobile, desktop, embedded, unknown, browser, _, _, _ := jsonShares(dataset(t))
	check := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s share = %.3f, want %.2f±%.2f", name, got, want, tol)
		}
	}
	check("mobile", mobile, 0.55, 0.08)
	check("embedded", embedded, 0.12, 0.05)
	check("unknown", unknown, 0.24, 0.07)
	check("desktop", desktop, 0.09, 0.04)
	check("browser", browser, 0.12, 0.05)
}

func TestCalibrationMethods(t *testing.T) {
	_, _, _, _, _, getFrac, postOfRest, _ := jsonShares(dataset(t))
	if math.Abs(getFrac-0.84) > 0.05 {
		t.Errorf("GET share = %.3f, want 0.84±0.05", getFrac)
	}
	if postOfRest < 0.90 {
		t.Errorf("POST of non-GET = %.3f, want >= 0.90", postOfRest)
	}
}

func TestCalibrationCacheability(t *testing.T) {
	_, _, _, _, _, _, _, uncache := jsonShares(dataset(t))
	if math.Abs(uncache-0.55) > 0.12 {
		t.Errorf("uncacheable share = %.3f, want 0.55±0.12", uncache)
	}
}

func TestCalibrationSizes(t *testing.T) {
	var jsonSizes, htmlSizes []float64
	for _, r := range dataset(t) {
		if r.Bytes <= 0 {
			continue
		}
		if r.IsJSON() {
			jsonSizes = append(jsonSizes, float64(r.Bytes))
		} else if strings.HasPrefix(r.MIMEType, "text/html") {
			htmlSizes = append(htmlSizes, float64(r.Bytes))
		}
	}
	if len(htmlSizes) < 100 {
		t.Fatalf("only %d HTML records", len(htmlSizes))
	}
	sortedJSON := append([]float64(nil), jsonSizes...)
	sortedHTML := append([]float64(nil), htmlSizes...)
	jq := quantiles(sortedJSON)
	hq := quantiles(sortedHTML)
	if jq[0] >= hq[0] {
		t.Errorf("JSON median %v not below HTML median %v", jq[0], hq[0])
	}
	if jq[1] >= hq[1]*0.5 {
		t.Errorf("JSON p75 %v not well below HTML p75 %v", jq[1], hq[1])
	}
}

func quantiles(xs []float64) [2]float64 {
	// simple sort-based p50/p75
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return [2]float64{xs[len(xs)/2], xs[len(xs)*3/4]}
}

func TestUniverseDomainPolicies(t *testing.T) {
	u := BuildUniverse(500, newTestRNG())
	if len(u.Domains) != 500 {
		t.Fatalf("universe has %d domains", len(u.Domains))
	}
	var never, always int
	for _, d := range u.Domains {
		switch d.Policy {
		case PolicyNever:
			never++
		case PolicyAlways:
			always++
		}
		if got := u.Catalog.Lookup(d.Name); got != d.Category {
			t.Errorf("catalog lookup %q = %v, want %v", d.Name, got, d.Category)
		}
		if d.App == nil || len(d.App.Contents) == 0 || len(d.App.Manifests) == 0 {
			t.Errorf("domain %q has no app model", d.Name)
		}
	}
	nf, af := float64(never)/500, float64(always)/500
	if math.Abs(nf-0.5) > 0.12 {
		t.Errorf("never-cacheable domains = %.2f, want ~0.50", nf)
	}
	if math.Abs(af-0.3) > 0.12 {
		t.Errorf("always-cacheable domains = %.2f, want ~0.30", af)
	}
}

func TestUniverseCategorySeparation(t *testing.T) {
	u := BuildUniverse(800, newTestRNG())
	byCat := map[string][2]int{} // category -> [never, total]
	for _, d := range u.Domains {
		e := byCat[d.Category.String()]
		if d.Policy == PolicyNever {
			e[0]++
		}
		e[1]++
		byCat[d.Category.String()] = e
	}
	frac := func(cat string) float64 {
		e := byCat[cat]
		return float64(e[0]) / float64(e[1])
	}
	if frac("News/Media") > 0.3 {
		t.Errorf("News/Media never-frac = %.2f, want low", frac("News/Media"))
	}
	if frac("Financial Service") < 0.7 {
		t.Errorf("Financial never-frac = %.2f, want high", frac("Financial Service"))
	}
	if frac("Gaming") < 0.6 {
		t.Errorf("Gaming never-frac = %.2f, want high", frac("Gaming"))
	}
}

func TestAppModelSuccessors(t *testing.T) {
	u := BuildUniverse(20, newTestRNG())
	m := u.Domains[0].App
	rng := newTestRNG()
	// The dominant successor must be followed ~45% of the time.
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if m.NextContent(3, rng) == m.primary[3] {
			hits++
		}
	}
	got := float64(hits) / trials
	// primary can also be drawn from the tail, so allow a band above .45.
	if got < 0.42 || got > 0.60 {
		t.Errorf("primary successor rate = %.3f", got)
	}
}

func TestGenerateEmitErrorStops(t *testing.T) {
	cfg := ShortTermConfig(3, 0.0004)
	wantErr := errSentinel{}
	calls := 0
	err := Generate(cfg, func(*logfmt.Record) error {
		calls++
		if calls >= 10 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("got %v", err)
	}
	if calls > 11 {
		t.Errorf("emit called %d times after error", calls)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

func TestGenerateInvalidConfig(t *testing.T) {
	var cfg Config
	if err := Generate(cfg, func(*logfmt.Record) error { return nil }); err == nil {
		t.Error("zero config accepted")
	}
}

func TestPeriodicShareRoughlyOnTarget(t *testing.T) {
	// Count requests to /poll/ and /ingest/ URLs among JSON records.
	recs := dataset(t)
	var periodic, json int
	for _, r := range recs {
		if !r.IsJSON() {
			continue
		}
		json++
		if strings.Contains(r.URL, "/poll/") || strings.Contains(r.URL, "/ingest/") {
			periodic++
		}
	}
	share := float64(periodic) / float64(json)
	// Fleet granularity is coarse at small scale; wide band.
	if share < 0.02 || share > 0.15 {
		t.Errorf("periodic share = %.3f, want ~0.063", share)
	}
}

func TestDiurnalIdleScale(t *testing.T) {
	peak := time.Date(2019, 5, 1, 20, 0, 0, 0, time.UTC)
	trough := time.Date(2019, 5, 1, 8, 0, 0, 0, time.UTC)
	if s := diurnalIdleScale(peak); s > 1.05 {
		t.Errorf("peak scale = %v, want ~1", s)
	}
	if s := diurnalIdleScale(trough); s < 1.5 {
		t.Errorf("trough scale = %v, want clearly above peak", s)
	}
	// Always positive and bounded.
	for h := 0; h < 24; h++ {
		s := diurnalIdleScale(time.Date(2019, 5, 1, h, 0, 0, 0, time.UTC))
		if s <= 0 || s > 5 {
			t.Errorf("hour %d scale = %v", h, s)
		}
	}
}

func TestDiurnalRateVariationIn24h(t *testing.T) {
	// Generate a full-day dataset and check that human JSON request
	// volume varies across the day while poll volume stays flat.
	cfg := LongTermConfig(21, 0.0005)
	hourCounts := make([]int, 24)
	pollCounts := make([]int, 24)
	err := Generate(cfg, func(r *logfmt.Record) error {
		if !r.IsJSON() {
			return nil
		}
		h := r.Time.Hour()
		if strings.Contains(r.URL, "/poll/") || strings.Contains(r.URL, "/ingest/") {
			pollCounts[h]++
		} else {
			hourCounts[h]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	min, max := hourCounts[0], hourCounts[0]
	for _, c := range hourCounts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || float64(max)/float64(min) < 1.3 {
		t.Errorf("human hourly volume too flat: min=%d max=%d", min, max)
	}
	pmin, pmax := pollCounts[0], pollCounts[0]
	for _, c := range pollCounts {
		if c < pmin {
			pmin = c
		}
		if c > pmax {
			pmax = c
		}
	}
	if pmin > 0 && float64(pmax)/float64(pmin) > 1.6 {
		t.Errorf("poll hourly volume too variable: min=%d max=%d", pmin, pmax)
	}
}

func TestUTCOffsetShiftsDiurnalPeak(t *testing.T) {
	// Two vantages nine hours apart must show human activity peaks at
	// different hours of the same UTC day.
	peakHour := func(offset time.Duration) int {
		cfg := LongTermConfig(31, 0.0004)
		cfg.UTCOffset = offset
		counts := make([]int, 24)
		err := Generate(cfg, func(r *logfmt.Record) error {
			if r.IsJSON() && !strings.Contains(r.URL, "/poll/") && !strings.Contains(r.URL, "/ingest/") {
				counts[r.Time.Hour()]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for h := 1; h < 24; h++ {
			if counts[h] > counts[best] {
				best = h
			}
		}
		return best
	}
	a := peakHour(0)
	b := peakHour(9 * time.Hour)
	diff := (a - b + 24) % 24
	if diff > 12 {
		diff = 24 - diff
	}
	if diff < 4 {
		t.Errorf("peaks %dh and %dh too close for a 9h offset", a, b)
	}
}

func TestTrendGeneration(t *testing.T) {
	cfg := DefaultTrendConfig(5)
	months := GenerateTrend(cfg)
	if len(months) != 40 {
		t.Fatalf("got %d months, want 40 (2016-01..2019-04)", len(months))
	}
	first, last := months[0], months[len(months)-1]
	if r := first.Ratio(); r > 1.1 {
		t.Errorf("2016 ratio = %.2f, want < ~1", r)
	}
	if r := last.Ratio(); r < 3.5 {
		t.Errorf("2019 ratio = %.2f, want > 4-ish", r)
	}
	shrink := 1 - last.JSONMeanBytes/first.JSONMeanBytes
	if math.Abs(shrink-0.28) > 0.08 {
		t.Errorf("size shrink = %.3f, want ~0.28", shrink)
	}
	// Months are consecutive.
	for i := 1; i < len(months); i++ {
		if want := months[i-1].Month.AddDate(0, 1, 0); !months[i].Month.Equal(want) {
			t.Fatalf("month %d = %v, want %v", i, months[i].Month, want)
		}
	}
}

func TestTrendDeterministic(t *testing.T) {
	a := GenerateTrend(DefaultTrendConfig(9))
	b := GenerateTrend(DefaultTrendConfig(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trend not deterministic")
		}
	}
}

func TestTrendEmptyRange(t *testing.T) {
	cfg := DefaultTrendConfig(1)
	cfg.To = cfg.From
	if GenerateTrend(cfg) != nil {
		t.Error("empty range should return nil")
	}
}

func TestMonthCounterRatioZeroHTML(t *testing.T) {
	m := MonthCounter{JSONRequests: 5}
	if m.Ratio() != 0 {
		t.Error("zero HTML should give ratio 0")
	}
}

// TestCalibrationAtLargerScale re-checks the headline marginals at 5x the
// default test scale, guarding against calibration that only holds at one
// dataset size. Skipped with -short.
func TestCalibrationAtLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("larger-scale calibration skipped in -short")
	}
	var recs []logfmt.Record
	cfg := ShortTermConfig(1234, 0.01) // ~250K records
	err := Generate(cfg, func(r *logfmt.Record) error {
		recs = append(recs, *r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mobile, desktop, embedded, unknown, browser, getFrac, postOfRest, uncache := jsonShares(recs)
	check := func(name string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, want %.2f±%.2f", name, got, want, tol)
		}
	}
	check("mobile", mobile, 0.55, 0.06)
	check("embedded", embedded, 0.12, 0.04)
	check("unknown", unknown, 0.24, 0.06)
	check("desktop", desktop, 0.09, 0.04)
	check("browser", browser, 0.12, 0.04)
	check("GET", getFrac, 0.84, 0.04)
	check("uncacheable", uncache, 0.55, 0.10)
	if postOfRest < 0.92 {
		t.Errorf("POST of rest = %.3f", postOfRest)
	}
}
