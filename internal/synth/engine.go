package synth

import (
	"container/heap"
	"math"
	"strings"
	"time"

	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/stats"
)

// pollDevice splits periodic traffic across device families: embedded
// boxes, headless scripts without user agents, and mobile telemetry SDKs.
const (
	pollEmbeddedFrac = 0.40
	pollUnknownFrac  = 0.45
	pollMobileFrac   = 0.15
)

// pollPeriods are the machine-to-machine intervals behind Fig. 5's
// spikes, with their relative frequency.
var pollPeriods = []struct {
	d time.Duration
	w float64
}{
	{30 * time.Second, 0.18},
	{time.Minute, 0.22},
	{2 * time.Minute, 0.12},
	{3 * time.Minute, 0.10},
	{5 * time.Minute, 0.12},
	{10 * time.Minute, 0.10},
	{15 * time.Minute, 0.08},
	{30 * time.Minute, 0.05},
	{time.Hour, 0.03},
}

// Generate produces the synthetic dataset described by cfg, calling emit
// for each record. Records are approximately time ordered (sub-resource
// fetches trail their trigger by under a second); analyses that need
// strict ordering sort per flow. The *logfmt.Record passed to emit is
// reused across calls; emit must copy any fields it retains. Generate
// stops early and returns emit's error if emit fails.
//
// With cfg.Shards > 1 the client population is split across that many
// independent sub-generators running concurrently, and their streams are
// merged by timestamp before reaching emit (see generateSharded); emit
// itself is always called from a single goroutine.
func Generate(cfg Config, emit func(*logfmt.Record) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Shards > 1 {
		return generateSharded(cfg, emit)
	}
	g := newGenerator(cfg, emit)
	g.buildPopulation()
	g.buildAttackPopulation()
	return g.run()
}

// GenerateToWriter runs Generate, writing records to w.
func GenerateToWriter(cfg Config, w *logfmt.Writer) error {
	return Generate(cfg, w.Write)
}

// generator is the event-driven simulation state.
type generator struct {
	cfg      Config
	rng      *stats.RNG
	universe *Universe
	pools    *uaPools
	emit     func(*logfmt.Record) error
	emitErr  error

	queue eventQueue
	seq   int64
	end   time.Time

	// cacheable memoizes per-base-URL cache configuration; lastServed
	// drives the hit/miss model (a fresh edge cache with a uniform TTL).
	cacheable  map[string]bool
	lastServed map[string]time.Time

	// attackRNG is the adversarial overlay's dedicated random stream
	// (derived from Seed, split per shard); attackServed is the attack
	// actors' own serve map so their hit model never writes benign
	// state; nextAttackID mints from the attack client-ID namespace.
	// See attack.go for why the separation matters.
	attackRNG    *stats.RNG
	attackServed map[string]time.Time
	nextAttackID uint64

	// recCtr/byteCtr are pre-resolved from cfg.Obs (nil when
	// uninstrumented) so emission pays no registry lookups.
	recCtr  *obs.Counter
	byteCtr *obs.Counter

	htmlSizes  stats.LogNormal
	assetSizes stats.LogNormal

	// idPrefix namespaces client IDs per shard ("" for the unsharded
	// generator, preserving its historical ID stream); fleetBase offsets
	// poll-fleet indices so sharded fleets never share a URL.
	idPrefix  string
	fleetBase int

	// urls interns the per-domain asset/page/image URL strings so the
	// hot emit paths do not rebuild an identical string per request.
	urls map[*Domain]*domainURLs

	nextClientID uint64
	rec          logfmt.Record
}

// domainURLs caches the formatted sub-resource URLs of one domain.
type domainURLs struct {
	pages  [browserPageMod]string
	assets [browserAssetPerPg]string
	images map[int]string
}

// domainURLs returns (creating on first use) d's URL cache.
func (g *generator) domainURLs(d *Domain) *domainURLs {
	u := g.urls[d]
	if u == nil {
		u = &domainURLs{images: make(map[int]string)}
		g.urls[d] = u
	}
	return u
}

// pageURL returns the interned HTML page URL for page index i (mod the
// page rotation).
func (g *generator) pageURL(d *Domain, i int) string {
	u := g.domainURLs(d)
	if u.pages[i] == "" {
		u.pages[i] = "https://" + d.Name + "/pages/p" + itoa(i) + ".html"
	}
	return u.pages[i]
}

// assetURL returns the interned static-asset URL for asset slot i.
func (g *generator) assetURL(d *Domain, i int) string {
	u := g.domainURLs(d)
	if u.assets[i] == "" {
		u.assets[i] = "https://" + d.Name + "/static/app" + itoa(i) + ".js"
	}
	return u.assets[i]
}

// imageURL returns the interned media URL referenced by content index i.
func (g *generator) imageURL(d *Domain, i int) string {
	u := g.domainURLs(d)
	s, ok := u.images[i]
	if !ok {
		s = "https://" + d.Name + "/media/img" + itoa(1000+i) + ".jpg"
		u.images[i] = s
	}
	return s
}

func newGenerator(cfg Config, emit func(*logfmt.Record) error) *generator {
	rng := stats.NewRNG(cfg.Seed)
	// HTML sizes carry a heavy tail so that the paper's p75 comparison
	// (JSON 87% smaller than HTML at p75) holds against the lighter
	// JSON distribution.
	html, err := stats.LogNormalFromMedianP90(1050, 150000)
	if err != nil {
		panic(err) // constants are valid
	}
	asset, err := stats.LogNormalFromMedianP90(18000, 160000)
	if err != nil {
		panic(err)
	}
	g := &generator{
		cfg:        cfg,
		rng:        rng,
		universe:   BuildUniverse(cfg.Domains, rng.Split()),
		pools:      buildUAPools(rng.Split()),
		emit:       emit,
		end:        cfg.Start.Add(cfg.Duration),
		cacheable:  make(map[string]bool),
		lastServed: make(map[string]time.Time),
		htmlSizes:  html,
		assetSizes: asset,
		urls:       make(map[*Domain]*domainURLs),
		attackRNG:  stats.NewRNG(cfg.Seed ^ attackSeedSalt),
	}
	if cfg.Obs != nil {
		cfg.Obs.Help("synth_records_generated_total", "Log records emitted by the synthetic generator.")
		g.recCtr = cfg.Obs.Counter("synth_records_generated_total")
		g.byteCtr = cfg.Obs.Counter("synth_bytes_generated_total")
	}
	return g
}

// Universe exposes the generated domain population (for tests and the
// experiment runners that join on categories).
func (g *generator) Universe() *Universe { return g.universe }

func (g *generator) newClientID() uint64 {
	g.nextClientID++
	if g.idPrefix != "" {
		// Sharded generators draw from a per-shard ID namespace so no
		// two shards can mint the same client.
		return logfmt.HashClientIP(g.idPrefix + itoa(int(g.nextClientID)) + "-client")
	}
	// Spread IDs as if hashed IPs.
	return logfmt.HashClientIP(string(rune(g.nextClientID)) + "-client")
}

// buildPopulation sizes and creates the actor population from the
// config targets, using the behavioral constants from clients.go.
func (g *generator) buildPopulation() {
	cfg := g.cfg
	d := cfg.Duration.Seconds()
	tJSON := float64(cfg.TargetRequests) * (1 - cfg.NonJSONShare)
	tPeriodic := tJSON * cfg.PeriodicShare

	// Periodic poll fleets first.
	g.buildPollFleets(tPeriodic)

	mix := cfg.Mix
	norm := mix.Sum()

	// Per-actor JSON request rates implied by the behavior constants.
	appRate := (appSessionLen + 2.0) / ((appSessionLen+1)*appThinkMean + appIdleMean)
	embRate := (embSessionLen + 2.0) / ((embSessionLen+1)*embThinkMean + embIdleMean)
	browserRate := float64(browserJSONPerPg) / browserPageGap
	unknownRate := 1.0 / unknownGapMean

	// Budgets net of the poller attribution per device family.
	budget := func(share, pollFrac float64) float64 {
		b := share/norm*tJSON - pollFrac*tPeriodic
		if b < 0 {
			b = 0
		}
		return b
	}
	nApp := countFor(budget(mix.MobileApp, pollMobileFrac), appRate, d)
	nEmb := countFor(budget(mix.Embedded, pollEmbeddedFrac), embRate, d)
	nUnknown := countFor(budget(mix.Unknown, pollUnknownFrac), unknownRate, d)
	nMobBrowser := countFor(budget(mix.MobileBrowser, 0), browserRate, d)
	nDeskBrowser := countFor(budget(mix.DesktopBrowser, 0), browserRate, d)
	nDeskApp := countFor(budget(mix.DesktopApp, 0), appRate, d)

	for i := 0; i < nApp; i++ {
		c := newAppClient(g.newClientID(), pickUA(g.pools.mobileApp, g.rng),
			g.universe.SampleDomain(g.rng), g.rng.Split(), false)
		g.schedule(c, g.randomStart(appIdleMean))
	}
	for i := 0; i < nDeskApp; i++ {
		c := newAppClient(g.newClientID(), pickUA(g.pools.desktopApp, g.rng),
			g.universe.SampleDomain(g.rng), g.rng.Split(), false)
		g.schedule(c, g.randomStart(appIdleMean))
	}
	for i := 0; i < nEmb; i++ {
		c := newAppClient(g.newClientID(), pickUA(g.pools.embedded, g.rng),
			g.universe.SampleDomain(g.rng), g.rng.Split(), true)
		g.schedule(c, g.randomStart(embIdleMean))
	}
	for i := 0; i < nMobBrowser; i++ {
		c := &browserClient{id: g.newClientID(), ua: pickUA(g.pools.mobileBrowser, g.rng),
			domain: g.universe.SampleDomain(g.rng), rng: g.rng.Split()}
		g.schedule(c, g.randomStart(browserPageGap))
	}
	for i := 0; i < nDeskBrowser; i++ {
		c := &browserClient{id: g.newClientID(), ua: pickUA(g.pools.desktopBrowser, g.rng),
			domain: g.universe.SampleDomain(g.rng), rng: g.rng.Split()}
		g.schedule(c, g.randomStart(browserPageGap))
	}
	for i := 0; i < nUnknown; i++ {
		ua := "" // most unknown traffic has no user agent at all
		if g.rng.Bool(0.25) {
			ua = pickUA(g.pools.unknown, g.rng)
		}
		c := &unknownClient{id: g.newClientID(), ua: ua,
			domain: g.universe.SampleDomain(g.rng), rng: g.rng.Split(),
			scan: g.rng.Bool(0.3)}
		g.schedule(c, g.randomStart(unknownGapMean))
	}
}

// buildPollFleets creates periodic poll targets and their client fleets.
// The periodic budget is allocated across the period buckets by weight
// so the histogram of Fig. 5 shows every feasible interval even in small
// datasets; within each bucket, fleets are created until that bucket's
// share is spent. Periods too long for the capture window (a client
// needs >= 10 polls to survive the flow filter) are excluded and their
// weight redistributed.
func (g *generator) buildPollFleets(budget float64) {
	if budget < 1 {
		return
	}
	d := g.cfg.Duration.Seconds()
	// Feasible periods: at least 10 polls per client in the window.
	type bucket struct {
		period time.Duration
		w      float64
	}
	var feasible []bucket
	totalW := 0.0
	for _, p := range pollPeriods {
		if d/p.d.Seconds() >= 10 {
			feasible = append(feasible, bucket{p.d, p.w})
			totalW += p.w
		}
	}
	if len(feasible) == 0 {
		return
	}
	idx := g.fleetBase
	for _, b := range feasible {
		share := budget * b.w / totalW
		perPoller := d / b.period.Seconds()
		minFleet := 10.0 * perPoller // smallest viable fleet's requests
		spent := 0.0
		// Create at least one fleet per feasible period so every spike
		// in Fig. 5 is populated — unless the bucket's budget is so far
		// below one viable fleet that it would blow the periodic share.
		for (spent == 0 && share >= 0.3*minFleet) || spent+minFleet*0.7 <= share {
			spent += g.buildOneFleet(b.period, idx, perPoller)
			idx++
		}
	}
}

// buildOneFleet creates one poll target with its periodic and sporadic
// clients and returns the expected request count it adds.
func (g *generator) buildOneFleet(period time.Duration, idx int, perPoller float64) float64 {
	d := g.cfg.Duration.Seconds()
	domain := g.universe.SampleDomain(g.rng)
	// Upload (78%) and uncacheable (56.2%) flags are stratified over the
	// fleet index with low-discrepancy (Weyl) sequences rather than
	// drawn independently: small datasets have few fleets, and plain
	// sampling would leave the periodic-traffic mix far from the paper's
	// shares in any one run.
	t := &pollTarget{
		domain:      domain,
		period:      period,
		upload:      weylFrac(idx, 0.6180339887) < 0.78,
		uncacheable: weylFrac(idx, 0.7548776662) < 0.562,
		size:        int64(120 + g.rng.Intn(900)),
	}
	if t.upload {
		t.url = "https://" + domain.Name + "/ingest/ch" + itoa(idx)
	} else {
		t.url = "https://" + domain.Name + "/poll/ch" + itoa(idx)
	}
	// Fleet composition: a fraction (u^3, so ~20% of objects exceed 50%)
	// of clients poll periodically; the rest are sporadic requesters of
	// the same object. At least 10 pollers keep the object flow above
	// the analysis filters, and sporadic clients request at a third of
	// the poll rate so the object flow's aggregate signal stays
	// detectably periodic (periodic clients dominate request volume even
	// when they are a minority of clients, which is how Fig. 6's
	// sub-majority periodic objects can still have object-level periods).
	total := 21 + g.rng.Intn(7)
	u := g.rng.Float64()
	periodic := int(u * u * u * float64(total))
	if periodic < 10 {
		periodic = 10
	}
	expected := 0.0
	for i := 0; i < periodic; i++ {
		c := &pollClient{id: g.newClientID(), ua: g.pollUA(), target: t, rng: g.rng.Split()}
		offset := time.Duration(g.rng.Float64() * float64(period))
		g.schedule(c, g.cfg.Start.Add(offset))
		expected += perPoller
	}
	// Sporadic clients request at a third of the poll rate, but never so
	// slowly that they drop below the analysis flow filter (>= ~12
	// requests in the window) — otherwise long-period objects would
	// appear fully periodic in Fig. 6.
	gapMean := 3 * period.Seconds()
	if max := d / 12; gapMean > max {
		gapMean = max
	}
	for i := 0; i < total-periodic; i++ {
		c := &sporadicClient{id: g.newClientID(), ua: g.pollUA(), target: t,
			rng: g.rng.Split(), gapMean: gapMean}
		g.schedule(c, g.randomStart(gapMean))
		expected += d / gapMean
	}
	return expected
}

// pollUA draws a user agent for machine-to-machine clients with the
// configured device split.
func (g *generator) pollUA() string {
	switch v := g.rng.Float64(); {
	case v < pollEmbeddedFrac:
		return pickUA(g.pools.embedded, g.rng)
	case v < pollEmbeddedFrac+pollMobileFrac:
		return pickUA(g.pools.mobileApp, g.rng)
	default:
		if g.rng.Bool(0.3) {
			return pickUA(g.pools.unknown, g.rng)
		}
		return ""
	}
}

func countFor(budget, rate, duration float64) int {
	if budget <= 0 || rate <= 0 || duration <= 0 {
		return 0
	}
	return int(math.Ceil(budget / (rate * duration)))
}

func (g *generator) randomStart(cycleMean float64) time.Time {
	span := cycleMean * 2
	if max := g.cfg.Duration.Seconds(); span > max {
		span = max
	}
	return g.cfg.Start.Add(secs(g.rng.Float64() * span))
}

// ---- event queue ----

type event struct {
	at  time.Time
	seq int64
	a   actor
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

func (g *generator) schedule(a actor, at time.Time) {
	if at.After(g.end) {
		return
	}
	g.seq++
	heap.Push(&g.queue, event{at: at, seq: g.seq, a: a})
}

func (g *generator) run() error {
	heap.Init(&g.queue)
	for g.queue.Len() > 0 {
		e := heap.Pop(&g.queue).(event)
		if e.at.After(g.end) {
			continue
		}
		next := e.a.fire(e.at, g)
		if g.emitErr != nil {
			return g.emitErr
		}
		if !next.IsZero() {
			g.schedule(e.a, next)
		}
	}
	return nil
}

// ---- record emission ----

func (g *generator) send(r *logfmt.Record) {
	if g.emitErr != nil || r.Time.After(g.end) {
		return
	}
	if g.recCtr != nil {
		g.recCtr.Inc()
		g.byteCtr.Add(r.Bytes)
	}
	if err := g.emit(r); err != nil {
		g.emitErr = err
	}
}

// cacheFor computes the cache disposition for a request to url at time
// now. baseKey strips per-client query tokens so configuration is
// per-object.
func (g *generator) cacheFor(url string, d *Domain, method string, now time.Time, ttl time.Duration) logfmt.CacheStatus {
	base := url
	if i := strings.IndexByte(base, '?'); i >= 0 {
		base = base[:i]
	}
	c, ok := g.cacheable[base]
	if !ok {
		c = d.ObjectCacheable(g.rng)
		g.cacheable[base] = c
	}
	if !c {
		return logfmt.CacheUncacheable
	}
	if method != "GET" {
		// Non-GET requests tunnel to origin even on cacheable objects.
		return logfmt.CacheMiss
	}
	if base != url {
		// Personalized (tokenized) variants never hit the shared cache.
		return logfmt.CacheMiss
	}
	if last, ok := g.lastServed[base]; ok && now.Sub(last) < ttl {
		return logfmt.CacheHit
	}
	g.lastServed[base] = now
	return logfmt.CacheMiss
}

func (g *generator) emitJSON(id uint64, ua, method, url string, d *Domain, at time.Time) {
	size := d.App.SampleSize(g.rng)
	status := 200
	switch method {
	case "POST":
		size /= 3
		if g.rng.Bool(0.3) {
			status, size = 204, 0
		}
	case "HEAD":
		size = 0
	default:
		if g.rng.Bool(0.005) {
			status, size = 404, 80
		}
	}
	g.rec = logfmt.Record{
		Time: at, ClientID: id, Method: method, URL: url, UserAgent: ua,
		MIMEType: "application/json", Status: status, Bytes: size,
		Cache: g.cacheFor(url, d, method, at, cacheTTL),
	}
	g.send(&g.rec)
}

func (g *generator) emitPoll(id uint64, ua, method string, t *pollTarget, at time.Time) {
	status := 200
	size := t.size
	if method == "POST" && g.rng.Bool(0.5) {
		status, size = 204, 0
	}
	// The target's own cacheability flag overrides the domain policy:
	// the paper reports periodic traffic is 56.2% uncacheable, a mix
	// independent of the hosting property's overall configuration.
	cache := logfmt.CacheUncacheable
	if !t.uncacheable {
		if method != "GET" {
			cache = logfmt.CacheMiss
		} else if last, ok := g.lastServed[t.url]; ok && at.Sub(last) < cacheTTL {
			cache = logfmt.CacheHit
		} else {
			g.lastServed[t.url] = at
			cache = logfmt.CacheMiss
		}
	}
	g.rec = logfmt.Record{
		Time: at, ClientID: id, Method: method, URL: t.url, UserAgent: ua,
		MIMEType: "application/json", Status: status, Bytes: size,
		Cache: cache,
	}
	g.send(&g.rec)
}

func (g *generator) emitHTML(id uint64, ua, url string, at time.Time) {
	size := int64(g.htmlSizes.Sample(g.rng))
	g.rec = logfmt.Record{
		Time: at, ClientID: id, Method: "GET", URL: url, UserAgent: ua,
		MIMEType: "text/html", Status: 200, Bytes: size,
		Cache: logfmt.CacheHit,
	}
	g.send(&g.rec)
}

func (g *generator) emitAsset(id uint64, ua, url, mime string, at time.Time) {
	if at.After(g.end) {
		return
	}
	size := int64(g.assetSizes.Sample(g.rng))
	g.rec = logfmt.Record{
		Time: at, ClientID: id, Method: "GET", URL: url, UserAgent: ua,
		MIMEType: mime, Status: 200, Bytes: size,
		Cache: logfmt.CacheHit,
	}
	g.send(&g.rec)
}

// weylFrac returns the fractional part of n*alpha, a low-discrepancy
// sequence over [0,1).
func weylFrac(n int, alpha float64) float64 {
	v := float64(n+1) * alpha
	return v - math.Floor(v)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
