package synth

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/logfmt"
	"repro/internal/stats"
)

// This file overlays adversarial traffic populations on the benign
// stream: the attack archetypes a CDN edge must survive (cache-busting
// query storms, flash crowds, bot floods with spoofed agents, and
// compression-conversion amplification probes). Attack actors share the
// benign simulation's event queue — records interleave in time — but
// they draw every random decision from a dedicated RNG stream and write
// only attack-local state, so the benign records of a given Seed are
// identical whether or not an attack is configured. That invariant is
// what makes ground-truth labeling possible (AttackMask) and lets the
// defense experiments A/B the same benign traffic with and without an
// overlaid attack.

// attackSeedSalt derives the attack RNG stream from Config.Seed without
// perturbing the benign stream (which consumes stats.NewRNG(Seed)).
const attackSeedSalt = 0x61747461636b5f37 // "attack_7"

// Per-attacker request rates (req/s) used to size the fleets, chosen so
// each population has a distinct client-count signature: cache busters
// are a few very hot nodes, flash crowds are many near-human clients,
// bot floods and amplification probes sit in between.
const (
	cacheBustRate = 4.0
	flashRate     = 0.6
	botRate       = 2.0
	amplifyRate   = 2.5
)

// AttackConfig sizes the adversarial overlay. Each share is the number
// of attack requests emitted as a fraction of Config.TargetRequests,
// added on top of (never displacing) the benign stream; shares above 1
// model floods that dwarf legitimate traffic. The zero value disables
// everything.
type AttackConfig struct {
	// CacheBustShare sizes the cache-busting query storm: attackers
	// request cacheable objects with a unique query string per request,
	// so every request misses the cache key and tunnels to origin.
	CacheBustShare float64
	// FlashShare sizes the flash crowd: a large fleet of realistic
	// clients hammering FlashObjects hot objects of the most popular
	// always-cacheable domain.
	FlashShare float64
	// FlashObjects is how many hot objects the flash crowd converges on
	// (default 5 when zero).
	FlashObjects int
	// BotShare sizes the bot flood: clients with spoofed user agents
	// drawn from the legitimate pools, walking content objects uniformly
	// at random — off the successor graph the ngram model learns from
	// benign traffic.
	BotShare float64
	// AmplifyShare sizes the compression-conversion amplification probe:
	// small requests carrying unique conversion queries against large
	// media objects, each forcing a large origin re-fetch (the
	// "bandwidth nightmare" pattern).
	AmplifyShare float64
	// Start offsets the attack window from Config.Start, so detectors
	// observe a clean baseline first. Zero starts attacks immediately.
	Start time.Duration
	// Duration bounds the attack window; zero runs to the capture end.
	Duration time.Duration
}

// Enabled reports whether any attack population is configured.
func (a AttackConfig) Enabled() bool {
	return a.CacheBustShare > 0 || a.FlashShare > 0 || a.BotShare > 0 ||
		a.AmplifyShare > 0
}

// Sum returns the total attack share (attack requests as a fraction of
// Config.TargetRequests).
func (a AttackConfig) Sum() float64 {
	return a.CacheBustShare + a.FlashShare + a.BotShare + a.AmplifyShare
}

// validate reports the first problem with the attack configuration.
func (a AttackConfig) validate() error {
	switch {
	case a.CacheBustShare < 0 || a.CacheBustShare > 4:
		return errors.New("synth: AttackConfig.CacheBustShare out of [0,4]")
	case a.FlashShare < 0 || a.FlashShare > 4:
		return errors.New("synth: AttackConfig.FlashShare out of [0,4]")
	case a.BotShare < 0 || a.BotShare > 4:
		return errors.New("synth: AttackConfig.BotShare out of [0,4]")
	case a.AmplifyShare < 0 || a.AmplifyShare > 4:
		return errors.New("synth: AttackConfig.AmplifyShare out of [0,4]")
	case a.FlashObjects < 0:
		return errors.New("synth: AttackConfig.FlashObjects negative")
	case a.Start < 0:
		return errors.New("synth: AttackConfig.Start negative")
	case a.Duration < 0:
		return errors.New("synth: AttackConfig.Duration negative")
	}
	return nil
}

// newAttackClientID mints a client ID from the attack namespace, which
// is disjoint from the benign namespace (and per-shard via idPrefix) so
// labeling by ID never collides.
func (g *generator) newAttackClientID() uint64 {
	g.nextAttackID++
	return logfmt.HashClientIP("atk/" + g.idPrefix + itoa(int(g.nextAttackID)) + "-bot")
}

// buildAttackPopulation creates the configured attack actors. It must
// run after buildPopulation — benign client IDs and RNG draws are all
// minted by then, so nothing here can perturb them.
func (g *generator) buildAttackPopulation() {
	a := g.cfg.Attack
	if !a.Enabled() {
		return
	}
	winStart := g.cfg.Start.Add(a.Start)
	winEnd := g.end
	if a.Duration > 0 && winStart.Add(a.Duration).Before(winEnd) {
		winEnd = winStart.Add(a.Duration)
	}
	winSec := winEnd.Sub(winStart).Seconds()
	if winSec <= 0 {
		return
	}
	g.attackServed = make(map[string]time.Time)
	rng := g.attackRNG
	target := float64(g.cfg.TargetRequests)

	g.buildCacheBusters(a.CacheBustShare*target, winStart, winEnd, winSec, rng)
	g.buildFlashCrowd(a, a.FlashShare*target, winStart, winEnd, winSec, rng)
	g.buildBotFlood(a.BotShare*target, winStart, winEnd, winSec, rng)
	g.buildAmplifiers(a.AmplifyShare*target, winStart, winEnd, winSec, rng)
}

// attackFleet sizes a fleet for a request budget at a per-client rate
// and returns (clients, per-client mean gap seconds). The gap is
// re-derived from the rounded fleet size so the budget is met exactly
// in expectation.
func attackFleet(budget, rate, winSec float64) (int, float64) {
	if budget < 1 || rate <= 0 || winSec <= 0 {
		return 0, 0
	}
	n := int(budget/(rate*winSec) + 0.5)
	if n < 1 {
		n = 1
	}
	return n, float64(n) * winSec / budget
}

// attackBase carries the state shared by every attack actor: identity,
// pacing, and the attack window bound.
type attackBase struct {
	id      uint64
	ua      string
	rng     *stats.RNG
	gapMean float64
	winEnd  time.Time
	n       int
}

// next returns the actor's next wake-up, retiring it past the window.
func (b *attackBase) next(now time.Time) time.Time {
	t := now.Add(secs(stats.Exponential{Mean: b.gapMean}.Sample(b.rng)))
	if t.After(b.winEnd) {
		return time.Time{}
	}
	return t
}

// attackStart jitters a fleet member's first fire into the window.
func attackStart(winStart time.Time, gapMean, winSec float64, rng *stats.RNG) time.Time {
	span := gapMean * 2
	if span > winSec {
		span = winSec
	}
	return winStart.Add(secs(rng.Float64() * span))
}

// policyCache maps a domain's cache policy to the status of a request
// whose unique query variant can never match a shared cache entry.
func policyCache(d *Domain) logfmt.CacheStatus {
	if d.Policy == PolicyNever {
		return logfmt.CacheUncacheable
	}
	return logfmt.CacheMiss
}

// emitAttack writes one attack record through the shared send path, so
// generation counters and the end-of-window guard apply unchanged.
func (g *generator) emitAttack(id uint64, ua, method, url, mime string, status int, size int64, cache logfmt.CacheStatus, at time.Time) {
	g.rec = logfmt.Record{
		Time: at, ClientID: id, Method: method, URL: url, UserAgent: ua,
		MIMEType: mime, Status: status, Bytes: size, Cache: cache,
	}
	g.send(&g.rec)
}

// ---- cache-busting query storm ----

// cacheBustClient hammers one cacheable content object with a unique
// query string per request: every request is a distinct cache key, so
// the whole storm tunnels to origin (and, replayed against a live edge,
// evicts legitimate entries from the LRU).
type cacheBustClient struct {
	attackBase
	target string // base content URL
	cache  logfmt.CacheStatus
}

func (c *cacheBustClient) fire(now time.Time, g *generator) time.Time {
	c.n++
	url := c.target + "?cb=" + fmt.Sprintf("%08x", uint32(c.rng.Uint64())) + itoa(c.n)
	size := int64(120 + c.rng.Intn(600))
	g.emitAttack(c.id, c.ua, "GET", url, "application/json", 200, size, c.cache, now)
	return c.next(now)
}

func (g *generator) buildCacheBusters(budget float64, winStart, winEnd time.Time, winSec float64, rng *stats.RNG) {
	n, gap := attackFleet(budget, cacheBustRate, winSec)
	for i := 0; i < n; i++ {
		// Bust objects on cacheable-leaning domains: storms against
		// never-cache properties waste no cache capacity and are not
		// the interesting case.
		d := g.universe.SampleDomain(rng)
		for tries := 0; d.Policy == PolicyNever && tries < 8; tries++ {
			d = g.universe.SampleDomain(rng)
		}
		m := d.App
		c := &cacheBustClient{
			attackBase: attackBase{
				id: g.newAttackClientID(), ua: pickUA(g.pools.mobileApp, rng),
				rng: rng.Split(), gapMean: gap, winEnd: winEnd,
			},
			target: m.Contents[rng.Intn(len(m.Contents))],
			cache:  policyCache(d),
		}
		g.schedule(c, attackStart(winStart, gap, winSec, rng))
	}
}

// ---- flash crowd ----

// flashCrowd is the shared state of one flash-crowd event: the hot
// object set and an attack-local serve map modeling their cache
// residency (writes never touch the benign hit model).
type flashCrowd struct {
	hot    []string
	served map[string]time.Time
}

// flashClient is one member of the crowd: a realistic client requesting
// the hot objects at a near-human rate. Individually benign; the volume
// is the attack.
type flashClient struct {
	attackBase
	crowd *flashCrowd
}

func (c *flashClient) fire(now time.Time, g *generator) time.Time {
	url := c.crowd.hot[c.rng.Intn(len(c.crowd.hot))]
	// Hit model: warm if either the benign stream (read-only lookup) or
	// the crowd itself served the object within the TTL.
	cache := logfmt.CacheHit
	last, ok := c.crowd.served[url]
	if bl, bok := g.lastServed[url]; bok && bl.After(last) {
		last, ok = bl, true
	}
	if !ok || now.Sub(last) >= cacheTTL {
		cache = logfmt.CacheMiss
		c.crowd.served[url] = now
	}
	size := int64(300 + c.rng.Intn(1200))
	g.emitAttack(c.id, c.ua, "GET", url, "application/json", 200, size, cache, now)
	return c.next(now)
}

// flashDomain picks the crowd's target deterministically — the highest
// weight always-cacheable domain — so every shard's crowd converges on
// the same handful of hot objects.
func (g *generator) flashDomain() *Domain {
	var best *Domain
	for _, d := range g.universe.Domains {
		if d.Policy != PolicyAlways {
			continue
		}
		if best == nil || d.Weight > best.Weight {
			best = d
		}
	}
	if best == nil {
		for _, d := range g.universe.Domains {
			if best == nil || d.Weight > best.Weight {
				best = d
			}
		}
	}
	return best
}

func (g *generator) buildFlashCrowd(a AttackConfig, budget float64, winStart, winEnd time.Time, winSec float64, rng *stats.RNG) {
	n, gap := attackFleet(budget, flashRate, winSec)
	if n == 0 {
		return
	}
	d := g.flashDomain()
	k := a.FlashObjects
	if k <= 0 {
		k = 5
	}
	if k > len(d.App.Contents) {
		k = len(d.App.Contents)
	}
	crowd := &flashCrowd{hot: d.App.Contents[:k], served: g.attackServed}
	for i := 0; i < n; i++ {
		pool := g.pools.mobileApp
		if rng.Bool(0.3) {
			pool = g.pools.desktopBrowser
		}
		c := &flashClient{
			attackBase: attackBase{
				id: g.newAttackClientID(), ua: pickUA(pool, rng),
				rng: rng.Split(), gapMean: gap, winEnd: winEnd,
			},
			crowd: crowd,
		}
		g.schedule(c, attackStart(winStart, gap, winSec, rng))
	}
}

// ---- bot flood ----

// botClient floods with spoofed user agents: each request wears a fresh
// agent sampled from the legitimate pools (so UA filters see nothing
// unusual) while walking content objects uniformly at random across
// domains — a request sequence far off the successor graph the ngram
// model learns, which is what the request-pattern detector keys on.
type botClient struct {
	attackBase
}

func (c *botClient) fire(now time.Time, g *generator) time.Time {
	d := g.universe.SampleDomain(c.rng)
	m := d.App
	url := m.Contents[c.rng.Intn(len(m.Contents))]
	pool := g.pools.mobileApp
	switch c.rng.Intn(3) {
	case 1:
		pool = g.pools.desktopBrowser
	case 2:
		pool = g.pools.embedded
	}
	ua := pickUA(pool, c.rng)
	size := int64(100 + c.rng.Intn(800))
	g.emitAttack(c.id, ua, "GET", url, "application/json", 200, size, policyCache(d), now)
	return c.next(now)
}

func (g *generator) buildBotFlood(budget float64, winStart, winEnd time.Time, winSec float64, rng *stats.RNG) {
	n, gap := attackFleet(budget, botRate, winSec)
	for i := 0; i < n; i++ {
		c := &botClient{attackBase{
			id: g.newAttackClientID(), rng: rng.Split(),
			gapMean: gap, winEnd: winEnd,
		}}
		g.schedule(c, attackStart(winStart, gap, winSec, rng))
	}
}

// ---- compression-conversion amplification ----

// amplifyClient models the conversion-amplification probe: each request
// carries a unique conversion query ("serve me the identity encoding")
// against one large media object the client hammers for the whole
// window, so a few bytes of request force the edge into a large origin
// re-fetch every time — per-request origin amplification, the pattern
// the defend loop's amplification ceiling gates on.
type amplifyClient struct {
	attackBase
	domain *Domain
	obj    int
}

func (c *amplifyClient) fire(now time.Time, g *generator) time.Time {
	c.n++
	url := "https://" + c.domain.Name + "/media/img" + itoa(c.obj) +
		".jpg?conv=identity&seq=" + itoa(c.n)
	size := 4 * int64(g.assetSizes.Sample(c.rng))
	g.emitAttack(c.id, c.ua, "GET", url, "image/jpeg", 200, size, logfmt.CacheMiss, now)
	return c.next(now)
}

func (g *generator) buildAmplifiers(budget float64, winStart, winEnd time.Time, winSec float64, rng *stats.RNG) {
	n, gap := attackFleet(budget, amplifyRate, winSec)
	for i := 0; i < n; i++ {
		c := &amplifyClient{
			attackBase: attackBase{
				id: g.newAttackClientID(), ua: pickUA(g.pools.unknown, rng),
				rng: rng.Split(), gapMean: gap, winEnd: winEnd,
			},
			domain: g.universe.SampleDomain(rng),
			obj:    1000 + rng.Intn(40),
		}
		g.schedule(c, attackStart(winStart, gap, winSec, rng))
	}
}

// ---- ground-truth labeling ----

// AttackMask labels each record of a combined stream as attack traffic
// by subtracting the benign stream: generate once with Config.Attack
// set and once with it zeroed (same Seed and Shards), and the benign
// records appear in the combined stream unchanged and in order. The
// returned mask is true at attack positions. It errors if benign is not
// an ordered subsequence of combined — which would mean the overlay
// invariant is broken (or the two streams came from different configs).
func AttackMask(combined, benign []logfmt.Record) ([]bool, error) {
	mask := make([]bool, len(combined))
	j := 0
	for i := range combined {
		if j < len(benign) && combined[i] == benign[j] {
			j++
			continue
		}
		mask[i] = true
	}
	if j != len(benign) {
		return nil, fmt.Errorf("synth: benign stream is not a subsequence of the combined stream (%d of %d records matched)", j, len(benign))
	}
	return mask, nil
}
