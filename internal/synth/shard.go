package synth

import (
	"sync"

	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/stats"
)

// MaxShards bounds Config.Shards; far above any sensible core count, it
// exists only to keep a typo from spawning a million goroutines.
const MaxShards = 1024

// shardBatchSize is how many records a shard accumulates before handing
// them to the merger; shardQueueDepth bounds the batches in flight per
// shard, so total buffered memory is
// shards * (shardQueueDepth+1) * shardBatchSize records.
const (
	shardBatchSize  = 1024
	shardQueueDepth = 2
)

// generateSharded splits the client population across cfg.Shards
// independent sub-generators, runs them concurrently, and merges their
// record streams by timestamp into emit.
//
// Determinism: shard s derives its population RNG with
// stats.RNG.SplitIndexed(s) — a pure function of (Seed, s) — and every
// shard builds the same domain universe and user-agent pools from the
// base seed, so a given (Seed, TargetRequests, Shards) always yields the
// same merged stream, byte for byte, regardless of scheduling. The merge
// picks the stream whose head record has the earliest timestamp (ties
// broken by shard index), which also keeps the output as time-ordered as
// the single-goroutine generator's.
//
// All shards must run concurrently (the merge needs every stream's head
// before it can emit), so parallelism is bounded by backpressure — each
// shard may buffer at most shardQueueDepth batches ahead — rather than
// by a worker pool; the Go scheduler time-slices shards over GOMAXPROCS.
func generateSharded(cfg Config, emit func(*logfmt.Record) error) error {
	shards := cfg.Shards
	base := stats.NewRNG(cfg.Seed)

	// stop aborts the producers early when emit fails.
	stop := make(chan struct{})
	defer close(stop)

	streams := make([]*shardStream, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		scfg := cfg
		// Split the request budget evenly, spreading the remainder over
		// the low shards.
		scfg.TargetRequests = cfg.TargetRequests / shards
		if s < cfg.TargetRequests%shards {
			scfg.TargetRequests++
		}
		if scfg.TargetRequests == 0 {
			scfg.TargetRequests = 1
		}
		st := newShardStream(stop)
		streams[s] = st
		wg.Add(1)
		go func(s int, scfg Config) {
			defer wg.Done()
			defer st.close()
			emit := st.emit
			if ssp := cfg.Span.Child("shard " + itoa(s)); ssp != nil {
				ssp.SetAttrs(obs.Int("shard", s), obs.Int("target_requests", scfg.TargetRequests))
				defer ssp.End()
				emit = func(r *logfmt.Record) error {
					ssp.AddRecords(1)
					ssp.AddBytes(r.Bytes)
					return st.emit(r)
				}
			}
			g := newGenerator(scfg, emit)
			// The population RNG is re-pointed at the shard's own
			// stream; universe and UA pools were already built from the
			// base seed inside newGenerator, so they are identical
			// across shards.
			g.rng = base.SplitIndexed(uint64(s))
			// The attack overlay RNG splits the same way so its stream
			// is a pure function of (Seed, shard), independent of the
			// benign stream.
			g.attackRNG = stats.NewRNG(cfg.Seed ^ attackSeedSalt).SplitIndexed(uint64(s))
			g.idPrefix = itoa(s) + "/"
			g.fleetBase = s << 20
			g.buildPopulation()
			g.buildAttackPopulation()
			errs[s] = g.run()
		}(s, scfg)
	}

	mergeErr := mergeStreams(streams, emit)
	if mergeErr != nil {
		// Unblock producers still waiting to send, then collect them.
		for _, st := range streams {
			st.drain()
		}
	}
	wg.Wait()
	if mergeErr != nil {
		return mergeErr
	}
	for _, err := range errs {
		if err != nil && err != errShardStopped {
			return err
		}
	}
	return nil
}

// errShardStopped aborts a shard generator after the merger has failed;
// it is internal bookkeeping, never returned to the caller.
var errShardStopped = &shardStoppedError{}

type shardStoppedError struct{}

func (*shardStoppedError) Error() string { return "synth: shard stopped" }

// shardStream carries one shard's records to the merger in batches.
type shardStream struct {
	ch   chan []logfmt.Record
	stop <-chan struct{}

	// Producer side.
	batch []logfmt.Record

	// Consumer side.
	cur []logfmt.Record
	pos int
	eof bool
}

func newShardStream(stop <-chan struct{}) *shardStream {
	return &shardStream{
		ch:    make(chan []logfmt.Record, shardQueueDepth),
		stop:  stop,
		batch: make([]logfmt.Record, 0, shardBatchSize),
	}
}

// emit is the shard generator's emit callback: it copies r into the
// current batch and ships the batch when full.
func (st *shardStream) emit(r *logfmt.Record) error {
	st.batch = append(st.batch, *r)
	if len(st.batch) < shardBatchSize {
		return nil
	}
	return st.flush()
}

func (st *shardStream) flush() error {
	if len(st.batch) == 0 {
		return nil
	}
	select {
	case st.ch <- st.batch:
		st.batch = make([]logfmt.Record, 0, shardBatchSize)
		return nil
	case <-st.stop:
		return errShardStopped
	}
}

// close ships the final partial batch and closes the channel; called by
// the producer goroutine when its generator returns.
func (st *shardStream) close() {
	_ = st.flush()
	close(st.ch)
}

// next advances the consumer cursor, pulling the next batch when the
// current one is exhausted. It returns false at end of stream.
func (st *shardStream) next() bool {
	if st.eof {
		return false
	}
	st.pos++
	for st.pos >= len(st.cur) {
		batch, ok := <-st.ch
		if !ok {
			st.eof = true
			return false
		}
		st.cur, st.pos = batch, 0
	}
	return true
}

// head returns the record at the consumer cursor; valid only after a
// true next().
func (st *shardStream) head() *logfmt.Record { return &st.cur[st.pos] }

// drain discards any in-flight batches so a blocked producer can exit.
func (st *shardStream) drain() {
	for range st.ch {
	}
}

// mergeStreams k-way merges the shard streams by record timestamp,
// breaking ties by shard index. Shard counts are small, so a linear scan
// over stream heads beats a heap and keeps the pick order obvious.
func mergeStreams(streams []*shardStream, emit func(*logfmt.Record) error) error {
	live := 0
	for _, st := range streams {
		st.pos = -1 // so the first next() lands on index 0
		if st.next() {
			live++
		}
	}
	for live > 0 {
		min := -1
		for i, st := range streams {
			if st.eof {
				continue
			}
			if min < 0 || st.head().Time.Before(streams[min].head().Time) {
				min = i
			}
		}
		st := streams[min]
		if err := emit(st.head()); err != nil {
			return err
		}
		if !st.next() {
			live--
		}
	}
	return nil
}
