package synth

import (
	"fmt"

	"repro/internal/stats"
)

// This file builds the user-agent pools for each traffic source
// archetype. The pools reproduce the paper's reported *distinct UA
// string* mix (73% mobile, 17% embedded, 3% desktop, 7% unknown) by
// sizing each pool proportionally, while request volume shares are
// controlled separately by the client population.

// uaPools holds the generated user-agent strings per archetype.
type uaPools struct {
	mobileApp      []string
	mobileBrowser  []string
	desktopBrowser []string
	desktopApp     []string
	embedded       []string
	unknown        []string // opaque but present user agents
}

func buildUAPools(rng *stats.RNG) *uaPools {
	p := &uaPools{}

	appNames := []string{
		"NewsApp", "ScoreCenter", "StreamBox", "ChatNow", "ShopFast",
		"BankSecure", "RideShare", "WeatherNow", "FitTrack", "PhotoShare",
		"GameLobby", "MapQuestr", "PodPlayer", "MailDart", "TranslateGo",
	}
	iosVersions := []string{"11.4.1", "12.1.4", "12.2", "12.3"}
	androidVersions := []string{"7.0", "8.0.0", "8.1.0", "9"}
	androidModels := []string{"SM-G960F", "SM-N960U", "Pixel 3", "Moto G6", "LG-H870"}

	// Mobile native apps: the largest pool. Mix of branded UAs,
	// okhttp/CFNetwork SDK agents, and Dalvik agents.
	for _, name := range appNames {
		for _, v := range []string{"2.0", "3.1", "4.0.2"} {
			ios := iosVersions[rng.Intn(len(iosVersions))]
			p.mobileApp = append(p.mobileApp,
				fmt.Sprintf("%s/%s (iPhone; iOS %s; Scale/2.00)", name, v, ios))
			av := androidVersions[rng.Intn(len(androidVersions))]
			model := androidModels[rng.Intn(len(androidModels))]
			p.mobileApp = append(p.mobileApp,
				fmt.Sprintf("%s/%s (Linux; Android %s; %s)", name, v, av, model))
		}
	}
	for i := 0; i < 20; i++ {
		p.mobileApp = append(p.mobileApp,
			fmt.Sprintf("okhttp/3.%d.%d", 9+rng.Intn(4), rng.Intn(3)))
		p.mobileApp = append(p.mobileApp,
			fmt.Sprintf("AppSDK/%d CFNetwork/978.0.7 Darwin/18.5.0", 300+rng.Intn(200)))
		av := androidVersions[rng.Intn(len(androidVersions))]
		model := androidModels[rng.Intn(len(androidModels))]
		p.mobileApp = append(p.mobileApp,
			fmt.Sprintf("Dalvik/2.1.0 (Linux; U; Android %s; %s Build/OPM1)", av, model))
	}

	for _, ios := range iosVersions {
		iosTok := replaceDots(ios)
		p.mobileBrowser = append(p.mobileBrowser,
			fmt.Sprintf("Mozilla/5.0 (iPhone; CPU iPhone OS %s like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/12.1 Mobile/15E148 Safari/604.1", iosTok),
			fmt.Sprintf("Mozilla/5.0 (iPhone; CPU iPhone OS %s like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) CriOS/74.0.3729.121 Mobile/15E148 Safari/605.1", iosTok))
	}
	for _, av := range androidVersions {
		model := androidModels[rng.Intn(len(androidModels))]
		p.mobileBrowser = append(p.mobileBrowser,
			fmt.Sprintf("Mozilla/5.0 (Linux; Android %s; %s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/74.0.3729.136 Mobile Safari/537.36", av, model))
	}

	p.desktopBrowser = []string{
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/74.0.3729.131 Safari/537.36",
		"Mozilla/5.0 (Windows NT 6.1; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/73.0.3683.103 Safari/537.36",
		"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_14_4) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/12.1 Safari/605.1.15",
		"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_6) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/74.0.3729.131 Safari/537.36",
		"Mozilla/5.0 (X11; Linux x86_64; rv:66.0) Gecko/20100101 Firefox/66.0",
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/74.0.3729.131 Safari/537.36 Edg/74.1.96.24",
	}
	p.desktopApp = []string{
		"WeatherDesk/5.2 (Windows NT 10.0; x64)",
		"TraderTerminal/9.0 (Macintosh; Intel Mac OS X 10_14)",
		"SyncAgent/3.3 (X11; Linux x86_64)",
	}

	// Embedded: consoles, TVs, watches, set-tops, IoT. Firmware version
	// variants widen the distinct-UA pool toward the paper's 17% share
	// of UA strings.
	embeddedBases := []string{
		"Mozilla/5.0 (PlayStation 4 %s) AppleWebKit/605.1.15 (KHTML, like Gecko)",
		"Mozilla/5.0 (PlayStation 3 %s) AppleWebKit/531.22.8 (KHTML, like Gecko)",
		"Mozilla/5.0 (Nintendo Switch; WebApplet) AppleWebKit/606.4 (KHTML, like Gecko) NF/%s",
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64; Xbox; Xbox One) AppleWebKit/537.36 (KHTML, like Gecko) fw/%s",
		"Roku/DVP-9.10 (519.10E%s)",
		"Mozilla/5.0 (SMART-TV; Linux; Tizen 5.0) AppleWebKit/537.36 TV/%s",
		"Mozilla/5.0 (smart-tv; linux; bravia) AppleWebKit/537.36 BRAVIA/%s",
		"AppleTV11,1/%s",
		"ScoreApp/2.0 (Apple Watch; watchOS %s)",
		"FitTrack/4.4 (Wear OS %s; sawshark)",
		"HomeCam/1.9 (IoT; ESP32; fw %s)",
		"ThermoSense/2.2 (IoT; micropython %s)",
		"StickCast/3.1 (CrKey armv7l 1.42.%s)",
	}
	for _, base := range embeddedBases {
		for v := 0; v < 3; v++ {
			p.embedded = append(p.embedded,
				fmt.Sprintf(base, fmt.Sprintf("%d.%d%d", 4+v, rng.Intn(9), rng.Intn(9))))
		}
	}

	// Opaque-but-present agents (unidentifiable): version strings,
	// internal tool names, bare tokens.
	for i := 0; i < 8; i++ {
		p.unknown = append(p.unknown, fmt.Sprintf("svc-%02d/%d.%d", i, 1+rng.Intn(4), rng.Intn(10)))
	}
	p.unknown = append(p.unknown,
		"curl/7.64.0",
		"python-requests/2.21.0",
		"Go-http-client/1.1",
		"Java/1.8.0_202",
	)
	return p
}

func replaceDots(v string) string {
	out := make([]byte, len(v))
	for i := 0; i < len(v); i++ {
		if v[i] == '.' {
			out[i] = '_'
		} else {
			out[i] = v[i]
		}
	}
	return string(out)
}

// pickUA draws one agent from a pool, Zipf-weighted so a few agent
// versions dominate (as app-store version distributions do).
func pickUA(pool []string, rng *stats.RNG) string {
	if len(pool) == 0 {
		return ""
	}
	// Cheap rank-biased choice: square of a uniform biases to low ranks.
	u := rng.Float64()
	i := int(u * u * float64(len(pool)))
	if i >= len(pool) {
		i = len(pool) - 1
	}
	return pool[i]
}
