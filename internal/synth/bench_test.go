package synth

import (
	"runtime"
	"strconv"
	"testing"

	"repro/internal/logfmt"
)

// benchGenerate runs one full Generate pass per iteration, discarding
// records; allocation counts surface the record-path interning work.
func benchGenerate(b *testing.B, shards int) {
	cfg := ShortTermConfig(42, 0.002) // ~50K records
	cfg.Shards = shards
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := Generate(cfg, func(r *logfmt.Record) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "records/op")
	}
}

func BenchmarkGenerate(b *testing.B) { benchGenerate(b, 1) }

func BenchmarkGenerateSharded(b *testing.B) {
	for _, shards := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			benchGenerate(b, shards)
		})
	}
}
