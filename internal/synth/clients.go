package synth

import (
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
)

// actor is one simulated client. fire emits the actor's records for the
// current wake-up via g.emit and returns the next wake-up time; a zero
// time retires the actor.
type actor interface {
	fire(now time.Time, g *generator) time.Time
}

// Behavioral constants shared by actors and the population sizing in
// engine.go. Changing one changes both, keeping sizing consistent.
const (
	appThinkMean      = 12.0 // seconds between in-session requests
	appIdleMean       = 90.0 // seconds between sessions
	appSessionLen     = 12   // mean content fetches per session
	appImageProb      = 0.35 // non-JSON asset fetch per content view
	appPostProb       = 0.112
	appOtherProb      = 0.007
	browserPageGap    = 40.0 // seconds between page loads
	browserJSONPerPg  = 2
	browserAssetPerPg = 3
	browserPageMod    = 24 // distinct HTML pages per domain
	embThinkMean      = 20.0
	embSessionLen     = 8
	embIdleMean       = 120.0
	embImageProb      = 0.30
	unknownGapMean    = 20.0
	cacheTTL          = 60 * time.Second
	assetTTL          = 10 * time.Minute
)

// appClient models a native application (mobile, embedded, or desktop)
// driving the manifest pattern of Table 1: fetch a feed manifest, then
// walk content objects along the app's successor graph, occasionally
// fetching referenced media (non-JSON) and posting actions.
type appClient struct {
	id        uint64
	ua        string
	domain    *Domain
	rng       *stats.RNG
	token     string // per-client session token; "" when unused
	browsing  bool
	remaining int
	current   int // current content index
	thinkMean float64
	idleMean  float64
	sessLen   int
	imageProb float64
}

func newAppClient(id uint64, ua string, d *Domain, rng *stats.RNG, embedded bool) *appClient {
	c := &appClient{
		id: id, ua: ua, domain: d, rng: rng,
		thinkMean: appThinkMean, idleMean: appIdleMean,
		sessLen: appSessionLen, imageProb: appImageProb,
	}
	if embedded {
		c.thinkMean, c.idleMean = embThinkMean, embIdleMean
		c.sessLen, c.imageProb = embSessionLen, embImageProb
	}
	if rng.Bool(d.App.SessionTokenProb) {
		c.token = fmt.Sprintf("sid=%016xa%dz", rng.Uint64(), rng.Intn(90)+10)
	}
	return c
}

func (c *appClient) fire(now time.Time, g *generator) time.Time {
	m := c.domain.App
	if !c.browsing {
		// Session start: fetch a manifest.
		c.browsing = true
		c.remaining = 1 + int(stats.Exponential{Mean: float64(c.sessLen)}.Sample(c.rng))
		c.current = m.EntryContent(c.rng)
		url := m.Manifests[c.rng.Intn(len(m.Manifests))]
		g.emitJSON(c.id, c.ua, "GET", url, c.domain, now)
		return now.Add(c.think())
	}
	// Content view.
	url := m.Contents[c.current]
	if c.token != "" {
		url += "?" + c.token
	}
	method := "GET"
	switch v := c.rng.Float64(); {
	case v < appPostProb:
		method = "POST"
	case v < appPostProb+appOtherProb:
		method = "HEAD"
	}
	g.emitJSON(c.id, c.ua, method, url, c.domain, now)
	if c.rng.Bool(c.imageProb) {
		img := g.imageURL(c.domain, c.current)
		g.emitAsset(c.id, c.ua, img, "image/jpeg", now.Add(time.Duration(c.rng.Intn(900))*time.Millisecond))
	}
	c.remaining--
	if c.remaining <= 0 {
		c.browsing = false
		return now.Add(c.idle(now.Add(g.cfg.UTCOffset)))
	}
	c.current = m.NextContent(c.current, c.rng)
	return now.Add(c.think())
}

func (c *appClient) think() time.Duration {
	return secs(stats.Exponential{Mean: c.thinkMean}.Sample(c.rng))
}

func (c *appClient) idle(now time.Time) time.Duration {
	// Human inter-session gaps follow a diurnal cycle: long at night,
	// short in the evening peak. Machine traffic (pollers) is
	// deliberately not modulated — its flat rate against the human
	// cycle is part of what makes it identifiable.
	mean := c.idleMean * diurnalIdleScale(now)
	return secs(stats.Exponential{Mean: mean}.Sample(c.rng))
}

// diurnalIdleScale stretches idle gaps away from the activity peak.
// Activity peaks around 20:00 local (scale ~0.7) and bottoms out around
// 04:00 (scale ~2.6), a mild day/night swing visible in day-long
// datasets without starving any hour.
func diurnalIdleScale(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60
	// Cosine centered on the 20:00 peak.
	phase := (h - 20) / 24 * 2 * math.Pi
	activity := 0.62 + 0.38*math.Cos(phase)
	return 1 / activity
}

// browserClient models browser page loads: each load fetches an HTML
// document, several static assets, and a couple of JSON XHRs.
type browserClient struct {
	id     uint64
	ua     string
	domain *Domain
	rng    *stats.RNG
	page   int
}

func (c *browserClient) fire(now time.Time, g *generator) time.Time {
	c.page++
	d := c.domain
	html := g.pageURL(d, c.page%browserPageMod)
	g.emitHTML(c.id, c.ua, html, now)
	for i := 0; i < browserAssetPerPg; i++ {
		asset := g.assetURL(d, i)
		g.emitAsset(c.id, c.ua, asset, "application/javascript", now.Add(time.Duration(50+i*30)*time.Millisecond))
	}
	m := d.App
	cur := m.EntryContent(c.rng)
	for i := 0; i < browserJSONPerPg; i++ {
		at := now.Add(time.Duration(200+i*150) * time.Millisecond)
		method := "GET"
		if c.rng.Bool(appPostProb) {
			method = "POST"
		}
		g.emitJSON(c.id, c.ua, method, m.Contents[cur], d, at)
		cur = m.NextContent(cur, c.rng)
	}
	gap := browserPageGap * diurnalIdleScale(now.Add(g.cfg.UTCOffset))
	return now.Add(secs(stats.Exponential{Mean: gap}.Sample(c.rng)))
}

// pollTarget is one machine-to-machine object: a URL polled by a fleet
// of clients at a fixed period (§5.1).
type pollTarget struct {
	url         string
	domain      *Domain
	period      time.Duration
	upload      bool
	uncacheable bool
	size        int64
}

// pollClient requests its target every period with small network jitter,
// the machine-generated behavior behind Fig. 5's spikes.
type pollClient struct {
	id     uint64
	ua     string
	target *pollTarget
	rng    *stats.RNG
}

func (c *pollClient) fire(now time.Time, g *generator) time.Time {
	method := "GET"
	if c.target.upload {
		method = "POST"
	}
	g.emitPoll(c.id, c.ua, method, c.target, now)
	// Jitter: +/- ~400 ms of the nominal period, as program and network
	// delays would add.
	jitter := time.Duration((c.rng.Float64() - 0.5) * 8e8)
	return now.Add(c.target.period + jitter)
}

// sporadicClient requests one poll target at random (exponential) gaps;
// these clients share the object flow with pollers but have no period,
// diluting Fig. 6's per-object periodic-client share.
type sporadicClient struct {
	id      uint64
	ua      string
	target  *pollTarget
	rng     *stats.RNG
	gapMean float64
}

func (c *sporadicClient) fire(now time.Time, g *generator) time.Time {
	method := "GET"
	if c.target.upload && c.rng.Bool(0.7) {
		method = "POST"
	}
	g.emitPoll(c.id, c.ua, method, c.target, now)
	return now.Add(secs(stats.Exponential{Mean: c.gapMean}.Sample(c.rng)))
}

// unknownClient models scripted traffic with missing or opaque user
// agents: steady Zipf-popular object fetches against one domain.
type unknownClient struct {
	id      uint64
	ua      string // usually ""
	domain  *Domain
	rng     *stats.RNG
	scan    bool // sequential scan (crawler-like) vs popularity sampling
	nextIdx int
}

func (c *unknownClient) fire(now time.Time, g *generator) time.Time {
	m := c.domain.App
	var url string
	if c.scan {
		url = m.Contents[c.nextIdx%len(m.Contents)]
		c.nextIdx++
	} else {
		url = m.Contents[m.tail.Sample(c.rng)]
	}
	method := "GET"
	if c.rng.Bool(appPostProb) {
		method = "POST"
	}
	g.emitJSON(c.id, c.ua, method, url, c.domain, now)
	return now.Add(secs(stats.Exponential{Mean: unknownGapMean}.Sample(c.rng)))
}

func secs(s float64) time.Duration {
	if s < 0.05 {
		s = 0.05
	}
	return time.Duration(s * float64(time.Second))
}
