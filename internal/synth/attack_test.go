package synth

import (
	"strings"
	"testing"
	"time"

	"repro/internal/logfmt"
)

func attackTestConfig(shards int) Config {
	cfg := ShortTermConfig(99, 0.001)
	cfg.Duration = 5 * time.Minute
	cfg.TargetRequests = 12_000
	cfg.Shards = shards
	cfg.Attack = AttackConfig{
		CacheBustShare: 0.20,
		FlashShare:     0.15,
		FlashObjects:   4,
		BotShare:       0.15,
		AmplifyShare:   0.10,
	}
	return cfg
}

func collect(t *testing.T, cfg Config) []logfmt.Record {
	t.Helper()
	var recs []logfmt.Record
	if err := Generate(cfg, func(r *logfmt.Record) error {
		recs = append(recs, *r)
		return nil
	}); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return recs
}

// TestAttackOverlayPreservesBenignStream is the overlay invariant: the
// benign stream of a seed is byte-identical, in order, whether or not
// an attack is configured on top of it.
func TestAttackOverlayPreservesBenignStream(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := attackTestConfig(shards)
		combined := collect(t, cfg)
		benignCfg := cfg
		benignCfg.Attack = AttackConfig{}
		benign := collect(t, benignCfg)

		if len(combined) <= len(benign) {
			t.Fatalf("shards=%d: combined stream (%d) not larger than benign (%d)",
				shards, len(combined), len(benign))
		}
		mask, err := AttackMask(combined, benign)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		attacks := 0
		for _, m := range mask {
			if m {
				attacks++
			}
		}
		if attacks != len(combined)-len(benign) {
			t.Fatalf("shards=%d: mask marks %d attacks, want %d",
				shards, attacks, len(combined)-len(benign))
		}
		// The configured share should be roughly met (fleet sizing is
		// approximate; allow a wide band).
		want := cfg.Attack.Sum() * float64(cfg.TargetRequests)
		if f := float64(attacks); f < 0.5*want || f > 1.6*want {
			t.Errorf("shards=%d: %d attack records, want within [0.5,1.6]x of %.0f",
				shards, attacks, want)
		}
	}
}

// TestAttackDeterministic checks equal configs give identical combined
// streams, sharded and not.
func TestAttackDeterministic(t *testing.T) {
	for _, shards := range []int{1, 3} {
		cfg := attackTestConfig(shards)
		a := collect(t, cfg)
		b := collect(t, cfg)
		if len(a) != len(b) {
			t.Fatalf("shards=%d: lengths differ: %d vs %d", shards, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shards=%d: record %d differs:\n%+v\n%+v", shards, i, a[i], b[i])
			}
		}
	}
}

// TestAttackShapes verifies each population's signature in the labeled
// attack subset.
func TestAttackShapes(t *testing.T) {
	cfg := attackTestConfig(1)
	combined := collect(t, cfg)
	benignCfg := cfg
	benignCfg.Attack = AttackConfig{}
	mask, err := AttackMask(combined, collect(t, benignCfg))
	if err != nil {
		t.Fatal(err)
	}

	var bust, flash, amplify, bot int
	bustQueries := map[string]bool{}
	flashURLs := map[string]bool{}
	var amplifyBytes, amplifyN int64
	for i, r := range combined {
		if !mask[i] {
			continue
		}
		switch {
		case strings.Contains(r.URL, "?cb="):
			bust++
			bustQueries[r.URL] = true
		case strings.Contains(r.URL, "conv=identity"):
			amplify++
			amplifyBytes += r.Bytes
			amplifyN++
			if r.Cache != logfmt.CacheMiss {
				t.Errorf("amplification record cached %v, want miss: %s", r.Cache, r.URL)
			}
		case strings.Contains(r.URL, "/v1/"):
			// Flash or bot content fetch; split below by UA presence on
			// the hot set.
			flashURLs[r.URL] = true
			bot++
		}
	}
	if bust == 0 || amplify == 0 || bot == 0 {
		t.Fatalf("missing populations: bust=%d amplify=%d flash/bot=%d", bust, amplify, bot)
	}
	// Cache busting: every request is a unique cache key.
	if len(bustQueries) != bust {
		t.Errorf("cache-bust queries not unique: %d distinct of %d requests", len(bustQueries), bust)
	}
	// Flash crowd: its hot set is a handful of objects, so the distinct
	// content URLs touched by flash+bot stay far below the request count.
	if flash = len(flashURLs); flash >= bot {
		t.Errorf("no URL concentration: %d distinct URLs over %d requests", flash, bot)
	}
	// Amplification: large bodies forced from origin.
	if mean := amplifyBytes / amplifyN; mean < 20_000 {
		t.Errorf("amplification mean body %d bytes, want large (>=20k)", mean)
	}
}

// TestAttackWindow confirms Start/Duration bound the overlay in time.
func TestAttackWindow(t *testing.T) {
	cfg := attackTestConfig(1)
	cfg.Attack.Start = 2 * time.Minute
	cfg.Attack.Duration = time.Minute
	combined := collect(t, cfg)
	benignCfg := cfg
	benignCfg.Attack = AttackConfig{}
	mask, err := AttackMask(combined, collect(t, benignCfg))
	if err != nil {
		t.Fatal(err)
	}
	lo := cfg.Start.Add(cfg.Attack.Start)
	hi := lo.Add(cfg.Attack.Duration)
	n := 0
	for i, r := range combined {
		if !mask[i] {
			continue
		}
		n++
		if r.Time.Before(lo) || r.Time.After(hi) {
			t.Fatalf("attack record at %v outside window [%v, %v]", r.Time, lo, hi)
		}
	}
	if n == 0 {
		t.Fatal("no attack records in window")
	}
}

// TestAttackConfigValidate exercises the validation bounds.
func TestAttackConfigValidate(t *testing.T) {
	cfg := attackTestConfig(1)
	cfg.Attack.BotShare = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative share accepted")
	}
	cfg.Attack.BotShare = 5
	if err := cfg.Validate(); err == nil {
		t.Error("share > 4 accepted")
	}
	cfg.Attack = AttackConfig{CacheBustShare: 0.5, Start: -time.Second}
	if err := cfg.Validate(); err == nil {
		t.Error("negative start accepted")
	}
	cfg.Attack = AttackConfig{CacheBustShare: 0.5}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid attack config rejected: %v", err)
	}
}
