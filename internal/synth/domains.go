package synth

import (
	"fmt"
	"math"

	"repro/internal/domaincat"
	"repro/internal/stats"
)

// CachePolicy is a domain's CDN cacheability configuration. The paper
// finds ~50% of domains never cache on the CDN, ~30% always cache, and
// the rest mix (Fig. 4 discussion).
type CachePolicy uint8

const (
	// PolicyNever marks domains whose JSON is always uncacheable
	// (personalized or one-time-use content).
	PolicyNever CachePolicy = iota
	// PolicyAlways marks domains serving fully static JSON.
	PolicyAlways
	// PolicyMixed marks domains with per-object configuration.
	PolicyMixed
)

// String returns a short policy label.
func (p CachePolicy) String() string {
	switch p {
	case PolicyNever:
		return "never"
	case PolicyAlways:
		return "always"
	default:
		return "mixed"
	}
}

// Domain is one CDN customer property in the synthetic universe.
type Domain struct {
	// Name is the domain name; it embeds a category keyword so that
	// keyword-based categorization agrees with the assigned category.
	Name string
	// Category is the industry category (Fig. 4).
	Category domaincat.Category
	// Policy is the domain's cacheability configuration.
	Policy CachePolicy
	// MixedCacheProb is the per-object probability of being cacheable
	// when Policy is PolicyMixed.
	MixedCacheProb float64
	// Weight is the domain's relative traffic volume.
	Weight float64

	// App is the request-chain model used by application clients of
	// this domain (manifests, content objects, successor structure).
	App *AppModel
}

// categoryProfile describes how a category's domains behave, derived
// from Fig. 4: News/Media, Sports, Entertainment serve highly static
// content; Financial, Streaming, Gaming serve personalized or
// one-time-use content.
type categoryProfile struct {
	cat        domaincat.Category
	nameStem   string // keyword embedded in generated names
	pNever     float64
	pAlways    float64 // remainder is mixed
	domainFrac float64 // share of the domain universe
}

var categoryProfiles = []categoryProfile{
	{domaincat.CategoryNewsMedia, "news", 0.10, 0.70, 0.12},
	{domaincat.CategorySports, "sports", 0.12, 0.66, 0.09},
	{domaincat.CategoryEntertainment, "showtv", 0.18, 0.58, 0.09},
	{domaincat.CategoryFinancial, "bank", 0.88, 0.04, 0.10},
	{domaincat.CategoryStreaming, "stream", 0.82, 0.06, 0.10},
	{domaincat.CategoryGaming, "game", 0.80, 0.06, 0.11},
	{domaincat.CategoryRetail, "shop", 0.55, 0.22, 0.09},
	{domaincat.CategoryTechnology, "cloudapi", 0.45, 0.30, 0.10},
	{domaincat.CategoryTravel, "travel", 0.50, 0.25, 0.06},
	{domaincat.CategorySocial, "chat", 0.70, 0.10, 0.08},
	{domaincat.CategoryAdsAnalytics, "track", 0.60, 0.18, 0.06},
}

// Universe is the synthetic domain population plus derived samplers.
type Universe struct {
	Domains []*Domain
	// Catalog maps every generated domain to its category.
	Catalog *domaincat.Catalog

	pick *stats.WeightedChoice
}

// BuildUniverse creates n domains distributed over the category
// profiles, with Zipf-like traffic weights so a few domains dominate
// volume, as on a real CDN.
func BuildUniverse(n int, rng *stats.RNG) *Universe {
	if n <= 0 {
		panic("synth: BuildUniverse with n <= 0")
	}
	u := &Universe{Catalog: domaincat.NewCatalog()}
	// Allocate counts per category (largest remainder keeps the total).
	counts := make([]int, len(categoryProfiles))
	assigned := 0
	for i, p := range categoryProfiles {
		counts[i] = int(p.domainFrac * float64(n))
		assigned += counts[i]
	}
	for i := 0; assigned < n; i, assigned = (i+1)%len(counts), assigned+1 {
		counts[i]++
	}
	for ci, p := range categoryProfiles {
		for j := 0; j < counts[ci]; j++ {
			d := &Domain{
				Name:     fmt.Sprintf("api.%s%d.example.com", p.nameStem, j),
				Category: p.cat,
			}
			switch v := rng.Float64(); {
			case v < p.pNever:
				d.Policy = PolicyNever
			case v < p.pNever+p.pAlways:
				d.Policy = PolicyAlways
			default:
				d.Policy = PolicyMixed
				d.MixedCacheProb = 0.3 + 0.4*rng.Float64()
			}
			d.App = buildAppModel(d, rng)
			u.Catalog.Register(d.Name, d.Category)
			u.Domains = append(u.Domains, d)
		}
	}
	// Zipf-ish traffic weights assigned over a *shuffled* rank order so
	// volume does not correlate with category. A mild tilt makes
	// always-cacheable domains slightly more popular (large media
	// properties cache aggressively), which lands the request-weighted
	// uncacheable share near the paper's 55% while the domain-level
	// policy split stays ~50/30/20.
	ranks := rng.Perm(n)
	weights := make([]float64, n)
	for i, d := range u.Domains {
		w := math.Pow(1/float64(ranks[i]+1), 0.8) * (0.5 + rng.Float64())
		switch d.Policy {
		case PolicyAlways:
			w *= 1.15
		case PolicyNever:
			w *= 0.9
		}
		d.Weight = w
		weights[i] = w
	}
	u.pick = stats.NewWeightedChoice(weights)
	return u
}

// SampleDomain draws a domain in proportion to traffic weight.
func (u *Universe) SampleDomain(rng *stats.RNG) *Domain {
	return u.Domains[u.pick.Sample(rng)]
}

// ObjectCacheable decides whether one object on the domain is
// configured cacheable, given the domain policy.
func (d *Domain) ObjectCacheable(rng *stats.RNG) bool {
	switch d.Policy {
	case PolicyNever:
		return false
	case PolicyAlways:
		return true
	default:
		return rng.Bool(d.MixedCacheProb)
	}
}

// AppModel is the per-domain application request-chain structure: a set
// of manifest objects that sessions start from, content objects
// reachable from them, and a successor graph with one dominant next
// object per state (giving the ~70% next-request predictability of
// §5.2) plus a popularity tail.
type AppModel struct {
	// Manifests are session entry objects ("/api/v1/<feed>").
	Manifests []string
	// Contents are content object paths ("/api/v1/article/<id>").
	Contents []string
	// primary[i] is the dominant successor content index of content i.
	primary []int
	// PrimaryProb is the probability of following the dominant edge.
	PrimaryProb float64
	// tail samples non-primary successors by popularity.
	tail *stats.Zipf
	// SessionTokenProb is the probability that a client's content
	// requests carry a per-client opaque query token, which fragments
	// raw-URL vocabularies but clusters away (§5.2's clustered URLs).
	SessionTokenProb float64
	// sizes samples response body sizes for this domain's JSON.
	sizes stats.LogNormal
}

// buildAppModel creates the request-chain structure for one domain.
func buildAppModel(d *Domain, rng *stats.RNG) *AppModel {
	nManifests := 1 + rng.Intn(3)
	nContents := 20 + rng.Intn(60)
	m := &AppModel{
		PrimaryProb:      0.5,
		SessionTokenProb: 0.08,
		tail:             stats.NewZipf(nContents, 1.1),
	}
	// Several content kinds per domain so that URL clustering yields
	// multiple templates per application rather than collapsing the
	// whole catalog onto one (which would make clustered prediction
	// trivially accurate).
	kinds := [...]string{"article", "item", "score", "clip", "offer", "card"}
	kindOffset := rng.Intn(len(kinds))
	nKinds := 2 + rng.Intn(3)
	for i := 0; i < nManifests; i++ {
		m.Manifests = append(m.Manifests, fmt.Sprintf("https://%s/v1/feed/%d", d.Name, i))
	}
	for i := 0; i < nContents; i++ {
		kind := kinds[(kindOffset+i%nKinds)%len(kinds)]
		m.Contents = append(m.Contents, fmt.Sprintf("https://%s/v1/%s/%d", d.Name, kind, 1000+i))
	}
	m.primary = make([]int, nContents)
	for i := range m.primary {
		m.primary[i] = (i + 1) % nContents
	}
	// JSON responses: median ~950 B per domain; combined with the
	// smaller POST responses this lands the corpus median ~24% below
	// HTML's, matching §4.
	ln, err := stats.LogNormalFromMedianP90(800+300*rng.Float64(), 9000)
	if err != nil {
		panic(err) // unreachable: arguments are constructed valid
	}
	m.sizes = ln
	return m
}

// NextContent samples the successor of content index i.
func (m *AppModel) NextContent(i int, rng *stats.RNG) int {
	if rng.Bool(m.PrimaryProb) {
		return m.primary[i]
	}
	return m.tail.Sample(rng)
}

// EntryContent samples the first content object after a manifest fetch:
// heavily biased toward the top of the feed, as users open lead stories.
func (m *AppModel) EntryContent(rng *stats.RNG) int {
	return m.tail.Sample(rng)
}

// SampleSize draws a JSON response size in bytes.
func (m *AppModel) SampleSize(rng *stats.RNG) int64 {
	s := int64(m.sizes.Sample(rng))
	if s < 60 {
		s = 60
	}
	return s
}
