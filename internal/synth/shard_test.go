package synth

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/logfmt"
)

// generateAll collects every record of one Generate run.
func generateAll(t *testing.T, cfg Config) []logfmt.Record {
	t.Helper()
	var out []logfmt.Record
	if err := Generate(cfg, func(r *logfmt.Record) error {
		out = append(out, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func shardTestConfig(shards int) Config {
	cfg := ShortTermConfig(7, 0.0008) // ~20K records
	cfg.Shards = shards
	return cfg
}

func recordsEqual(t *testing.T, a, b []logfmt.Record, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d records", what, len(a), len(b))
	}
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].ClientID != b[i].ClientID ||
			a[i].Method != b[i].Method || a[i].URL != b[i].URL ||
			a[i].UserAgent != b[i].UserAgent || a[i].MIMEType != b[i].MIMEType ||
			a[i].Status != b[i].Status || a[i].Bytes != b[i].Bytes ||
			a[i].Cache != b[i].Cache {
			t.Fatalf("%s: record %d differs:\n  %+v\n  %+v", what, i, a[i], b[i])
		}
	}
}

func TestShardedGenerateDeterministic(t *testing.T) {
	for _, shards := range []int{2, 4} {
		a := generateAll(t, shardTestConfig(shards))
		b := generateAll(t, shardTestConfig(shards))
		recordsEqual(t, a, b, "shards="+itoa(shards))
		if len(a) == 0 {
			t.Fatalf("shards=%d produced no records", shards)
		}
	}
}

func TestShardsOneMatchesUnsharded(t *testing.T) {
	// Shards == 1 and Shards == 0 both take the single-goroutine path
	// and must reproduce the historical stream exactly.
	zero := generateAll(t, shardTestConfig(0))
	one := generateAll(t, shardTestConfig(1))
	recordsEqual(t, zero, one, "shards=1 vs unsharded")
}

func TestShardedCountNearTarget(t *testing.T) {
	cfg := shardTestConfig(4)
	recs := generateAll(t, cfg)
	lo := float64(cfg.TargetRequests) * 0.80
	hi := float64(cfg.TargetRequests) * 1.25
	if n := float64(len(recs)); n < lo || n > hi {
		t.Errorf("sharded run emitted %d records, want within [%0.f, %0.f] of target %d",
			len(recs), lo, hi, cfg.TargetRequests)
	}
}

func TestShardedSharesUniverse(t *testing.T) {
	cfg := shardTestConfig(3)
	recs := generateAll(t, cfg)
	hosts := map[string]bool{}
	for i := range recs {
		u := recs[i].URL
		u = strings.TrimPrefix(u, "https://")
		if j := strings.IndexByte(u, '/'); j >= 0 {
			u = u[:j]
		}
		hosts[u] = true
	}
	// Every shard draws from the same BuildUniverse(cfg.Domains, ...) —
	// the union of hosts cannot exceed the universe.
	if len(hosts) > cfg.Domains {
		t.Errorf("sharded run touched %d hosts, universe has only %d domains",
			len(hosts), cfg.Domains)
	}
	// Records stay inside the capture window.
	end := cfg.Start.Add(cfg.Duration)
	for i := range recs {
		if recs[i].Time.Before(cfg.Start) || recs[i].Time.After(end) {
			t.Fatalf("record %d at %v outside window [%v, %v]", i, recs[i].Time, cfg.Start, end)
		}
	}
}

func TestShardedRoughlyTimeOrdered(t *testing.T) {
	// The merge emits by stream-head timestamp; since each shard's own
	// stream is only approximately ordered (sub-resource fetches trail
	// their trigger by < 1s), inversions in the merged stream stay
	// inside that same bound.
	recs := generateAll(t, shardTestConfig(4))
	var worst float64
	for i := 1; i < len(recs); i++ {
		if d := recs[i-1].Time.Sub(recs[i].Time).Seconds(); d > worst {
			worst = d
		}
	}
	if worst > 1.5 {
		t.Errorf("merged stream has a %.2fs inversion, want < 1.5s", worst)
	}
}

func TestShardedEmitErrorStops(t *testing.T) {
	cfg := shardTestConfig(4)
	sentinel := errors.New("stop here")
	n := 0
	err := Generate(cfg, func(r *logfmt.Record) error {
		n++
		if n == 500 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
	if n != 500 {
		t.Fatalf("emit called %d times after error, want exactly 500", n)
	}
}

func TestShardedClientIDsDisjoint(t *testing.T) {
	// A client ID appearing in the merged stream must always carry the
	// same user agent family — shards minting colliding IDs would show
	// up as one "client" flip-flopping identities.
	recs := generateAll(t, shardTestConfig(4))
	ua := map[uint64]string{}
	collisions := 0
	for i := range recs {
		if prev, ok := ua[recs[i].ClientID]; ok {
			if prev != recs[i].UserAgent {
				collisions++
			}
		} else {
			ua[recs[i].ClientID] = recs[i].UserAgent
		}
	}
	if collisions > 0 {
		t.Errorf("%d records saw a client ID with two user agents (shard ID collision?)", collisions)
	}
}
