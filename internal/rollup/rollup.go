// Package rollup aggregates log streams into time-bucketed per-content-
// type counters — the kind of CDN-wide rollup behind Fig. 1, which the
// paper builds from "counts of the total number of JSON and HTML
// requests recorded by all CDN edge servers". A Rollup is mergeable
// across shards and exportable as time series.
package rollup

import (
	"sort"
	"strings"
	"time"

	"repro/internal/logfmt"
	"repro/internal/stats"
)

// Rollup buckets request and byte counts by time interval and content
// type. The zero value is not usable; construct with New. Rollup is not
// safe for concurrent use; shard and Merge instead.
type Rollup struct {
	bucket  time.Duration
	buckets map[int64]*bucketCounters
}

type bucketCounters struct {
	requests map[string]int64
	bytes    map[string]int64
}

// New creates a rollup with the given bucket width (e.g. time.Hour).
// It panics if bucket is not positive.
func New(bucket time.Duration) *Rollup {
	if bucket <= 0 {
		panic("rollup: bucket must be positive")
	}
	return &Rollup{bucket: bucket, buckets: make(map[int64]*bucketCounters)}
}

// Bucket returns the configured bucket width.
func (r *Rollup) Bucket() time.Duration { return r.bucket }

// normalizeMIME strips parameters and lowercases ("Application/JSON;
// charset=utf8" -> "application/json").
func normalizeMIME(mt string) string {
	if i := strings.IndexByte(mt, ';'); i >= 0 {
		mt = mt[:i]
	}
	mt = strings.TrimSpace(strings.ToLower(mt))
	if mt == "" {
		return "unknown"
	}
	return mt
}

// Observe folds one record.
func (r *Rollup) Observe(rec *logfmt.Record) {
	key := rec.Time.UnixNano() / int64(r.bucket)
	b := r.buckets[key]
	if b == nil {
		b = &bucketCounters{
			requests: make(map[string]int64),
			bytes:    make(map[string]int64),
		}
		r.buckets[key] = b
	}
	mt := normalizeMIME(rec.MIMEType)
	b.requests[mt]++
	b.bytes[mt] += rec.Bytes
}

// Merge folds other (same bucket width) into r. It panics on mismatched
// widths, which would silently misalign series.
func (r *Rollup) Merge(other *Rollup) {
	if other.bucket != r.bucket {
		panic("rollup: merging mismatched bucket widths")
	}
	for key, ob := range other.buckets {
		b := r.buckets[key]
		if b == nil {
			b = &bucketCounters{
				requests: make(map[string]int64),
				bytes:    make(map[string]int64),
			}
			r.buckets[key] = b
		}
		for mt, n := range ob.requests {
			b.requests[mt] += n
		}
		for mt, n := range ob.bytes {
			b.bytes[mt] += n
		}
	}
}

// NumBuckets returns the number of non-empty buckets.
func (r *Rollup) NumBuckets() int { return len(r.buckets) }

// ContentTypes returns every content type observed, sorted.
func (r *Rollup) ContentTypes() []string {
	set := map[string]struct{}{}
	for _, b := range r.buckets {
		for mt := range b.requests {
			set[mt] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for mt := range set {
		out = append(out, mt)
	}
	sort.Strings(out)
	return out
}

// SeriesPoint is one bucket of one content type's series.
type SeriesPoint struct {
	Start    time.Time
	Requests int64
	Bytes    int64
}

// Series returns the time-ordered request/byte series for a content
// type, with empty interior buckets filled as zeros so the series is
// uniform.
func (r *Rollup) Series(contentType string) []SeriesPoint {
	mt := normalizeMIME(contentType)
	if len(r.buckets) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(r.buckets))
	for k := range r.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	first, last := keys[0], keys[len(keys)-1]
	out := make([]SeriesPoint, 0, last-first+1)
	for k := first; k <= last; k++ {
		p := SeriesPoint{Start: time.Unix(0, k*int64(r.bucket)).UTC()}
		if b := r.buckets[k]; b != nil {
			p.Requests = b.requests[mt]
			p.Bytes = b.bytes[mt]
		}
		out = append(out, p)
	}
	return out
}

// Ratio returns the time-ordered ratio of two content types' request
// counts per bucket (0 where the denominator is empty) — the Fig. 1
// computation applied to raw logs.
func (r *Rollup) Ratio(numerator, denominator string) []stats.Point {
	num := r.Series(numerator)
	den := r.Series(denominator)
	out := make([]stats.Point, len(num))
	for i := range num {
		out[i].X = float64(i)
		if i < len(den) && den[i].Requests > 0 {
			out[i].Y = float64(num[i].Requests) / float64(den[i].Requests)
		}
	}
	return out
}

// Total returns the all-bucket request count for a content type.
func (r *Rollup) Total(contentType string) int64 {
	mt := normalizeMIME(contentType)
	var n int64
	for _, b := range r.buckets {
		n += b.requests[mt]
	}
	return n
}
