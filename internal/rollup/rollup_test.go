package rollup

import (
	"testing"
	"time"

	"repro/internal/logfmt"
)

var t0 = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)

func rec(at time.Time, mime string, size int64) logfmt.Record {
	return logfmt.Record{
		Time: at, ClientID: 1, Method: "GET", URL: "https://x.com/a",
		MIMEType: mime, Status: 200, Bytes: size, Cache: logfmt.CacheHit,
	}
}

func TestRollupBucketsAndSeries(t *testing.T) {
	r := New(time.Hour)
	feeds := []struct {
		offset time.Duration
		mime   string
		size   int64
	}{
		{0, "application/json", 100},
		{10 * time.Minute, "application/json; charset=utf8", 200},
		{30 * time.Minute, "text/html", 1000},
		{90 * time.Minute, "application/json", 300},
		// Hour 2 empty for JSON; hour 3 has one.
		{3*time.Hour + time.Minute, "application/json", 400},
	}
	for _, f := range feeds {
		rr := rec(t0.Add(f.offset), f.mime, f.size)
		r.Observe(&rr)
	}
	if r.NumBuckets() != 3 {
		t.Errorf("buckets = %d, want 3 non-empty", r.NumBuckets())
	}
	series := r.Series("application/json")
	if len(series) != 4 {
		t.Fatalf("series length = %d, want 4 (zero-filled)", len(series))
	}
	wantReqs := []int64{2, 1, 0, 1}
	wantBytes := []int64{300, 300, 0, 400}
	for i := range wantReqs {
		if series[i].Requests != wantReqs[i] || series[i].Bytes != wantBytes[i] {
			t.Errorf("bucket %d = %+v, want reqs=%d bytes=%d",
				i, series[i], wantReqs[i], wantBytes[i])
		}
	}
	if series[0].Start != t0 {
		t.Errorf("first bucket start = %v", series[0].Start)
	}
	if got := r.Total("application/json"); got != 4 {
		t.Errorf("total = %d", got)
	}
}

func TestRollupMIMENormalization(t *testing.T) {
	r := New(time.Hour)
	for _, mt := range []string{"APPLICATION/JSON", "application/json; charset=x", "application/json"} {
		rr := rec(t0, mt, 1)
		r.Observe(&rr)
	}
	if got := r.Total("Application/Json"); got != 3 {
		t.Errorf("normalized total = %d", got)
	}
	empty := rec(t0, "", 1)
	r.Observe(&empty)
	if got := r.Total("unknown"); got != 1 {
		t.Errorf("unknown total = %d", got)
	}
}

func TestRollupRatio(t *testing.T) {
	r := New(time.Hour)
	// Hour 0: 4 json, 2 html -> 2.0; hour 1: 3 json, 0 html -> 0.
	for i := 0; i < 4; i++ {
		rr := rec(t0, "application/json", 1)
		r.Observe(&rr)
	}
	for i := 0; i < 2; i++ {
		rr := rec(t0, "text/html", 1)
		r.Observe(&rr)
	}
	for i := 0; i < 3; i++ {
		rr := rec(t0.Add(time.Hour), "application/json", 1)
		r.Observe(&rr)
	}
	ratio := r.Ratio("application/json", "text/html")
	if len(ratio) != 2 {
		t.Fatalf("ratio points = %d", len(ratio))
	}
	if ratio[0].Y != 2 {
		t.Errorf("hour 0 ratio = %v", ratio[0].Y)
	}
	if ratio[1].Y != 0 {
		t.Errorf("hour 1 ratio (no html) = %v", ratio[1].Y)
	}
}

func TestRollupMerge(t *testing.T) {
	a, b := New(time.Hour), New(time.Hour)
	ra := rec(t0, "application/json", 10)
	rb := rec(t0, "application/json", 20)
	rc := rec(t0.Add(time.Hour), "text/html", 30)
	a.Observe(&ra)
	b.Observe(&rb)
	b.Observe(&rc)
	a.Merge(b)
	if a.Total("application/json") != 2 || a.Total("text/html") != 1 {
		t.Errorf("merged totals wrong")
	}
	s := a.Series("application/json")
	if s[0].Bytes != 30 {
		t.Errorf("merged bytes = %d", s[0].Bytes)
	}
}

func TestRollupMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	New(time.Hour).Merge(New(time.Minute))
}

func TestRollupConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bucket accepted")
		}
	}()
	New(0)
}

func TestRollupEmpty(t *testing.T) {
	r := New(time.Hour)
	if r.Series("application/json") != nil {
		t.Error("empty series should be nil")
	}
	if len(r.ContentTypes()) != 0 {
		t.Error("empty content types")
	}
}

func TestRollupContentTypes(t *testing.T) {
	r := New(time.Hour)
	for _, mt := range []string{"text/html", "application/json", "image/jpeg"} {
		rr := rec(t0, mt, 1)
		r.Observe(&rr)
	}
	got := r.ContentTypes()
	want := []string{"application/json", "image/jpeg", "text/html"}
	if len(got) != len(want) {
		t.Fatalf("types = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("types[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
