// Package fleet is the front tier of a multi-process edge fleet: an
// HTTP router that spreads requests over N live edge nodes (liveedge
// processes) with the same consistent-hash ring the in-process
// edge.Pool uses, so an object always lands on the node whose cache
// already holds it. The paper's deployment shape is an Akamai-style
// hierarchy of many edge servers; this package is the layer that makes
// that shape survivable:
//
//   - active health checking: every node is probed periodically and
//     carried through a three-state machine (up → suspect → down);
//     down members leave the ring, so no key routes to a dead node,
//     and rejoining members earn their way back with consecutive
//     healthy probes;
//   - automatic rebalancing: ring membership follows health, so a
//     node's keys remap to its ring successors (~1/N of the keyspace)
//     the moment it is declared down, and remap back on rejoin;
//   - bounded failover: a connect error or 5xx forwards the request to
//     the next distinct ring replica, up to Config.MaxFailover extra
//     attempts — this is what keeps the error rate flat during the
//     detection window between a crash and the health checker noticing;
//   - tail-latency hedging: optionally, a GET that outlives a
//     p99-derived delay fires a second copy at the next replica and the
//     first response wins (the loser is canceled) — the classic
//     tail-at-scale discipline.
//
// The router is deliberately cache-oblivious: nodes own their caches
// and defenses; the front tier owns placement, liveness, and retries.
package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/edge"
	"repro/internal/obs"
)

// MemberState is the health checker's verdict on one node.
type MemberState int32

const (
	// StateUp: serving and in the ring.
	StateUp MemberState = iota
	// StateSuspect: failed recent probes but not yet evicted; still in
	// the ring (a single dropped probe must not reshuffle the keyspace).
	StateSuspect
	// StateDown: evicted from the ring; no key routes here until the
	// node earns its way back with consecutive healthy probes.
	StateDown
)

func (s MemberState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	default:
		return "down"
	}
}

// Member is one edge node as the front tier sees it.
type Member struct {
	// Name identifies the node on the ring ("edge-00"); it must be
	// stable across restarts or the rejoining node inherits a
	// different keyspace slice.
	Name string
	// URL is the node's traffic base URL ("http://127.0.0.1:4123").
	URL string
	// HealthURL is the liveness probe target, typically the node's
	// admin "/healthz". Empty disables probing for this member (it is
	// pinned up — useful in tests).
	HealthURL string

	state atomic.Int32
	// fails/oks are consecutive probe outcomes, owned by the health
	// checker goroutine.
	fails, oks int
}

// State returns the member's current health state.
func (m *Member) State() MemberState { return MemberState(m.state.Load()) }

// MemberStatus is a point-in-time snapshot for reports and tests.
type MemberStatus struct {
	Name  string      `json:"name"`
	URL   string      `json:"url"`
	State MemberState `json:"-"`
	// StateName is State rendered for JSON reports.
	StateName string `json:"state"`
	Requests  int64  `json:"requests"`
}

// Config tunes the front tier. The zero value gets working defaults
// from withDefaults.
type Config struct {
	// Probe is the health-check period (default 200ms); ProbeTimeout
	// bounds one probe (default 500ms) — a node slower than this is as
	// good as dead to the fleet.
	Probe        time.Duration
	ProbeTimeout time.Duration
	// SuspectAfter / DownAfter / UpAfter are the consecutive-probe
	// thresholds of the three-state machine (defaults 1, 3, 2).
	SuspectAfter int
	DownAfter    int
	UpAfter      int
	// MaxFailover is how many extra ring replicas a request may try
	// after a connect error or 5xx (default 2; 0 disables failover —
	// the negative control scripts/chaos-check.sh uses to prove the
	// availability gate bites).
	MaxFailover int
	// Hedge enables tail-latency hedging for GETs: when the primary
	// attempt outlives the hedge delay, a second copy goes to the next
	// ring replica and the first response wins.
	Hedge bool
	// HedgeQuantile is the observed-latency quantile the hedge delay
	// tracks (default 0.99); HedgeMin floors it (default 10ms) so a
	// warm cache does not hedge every request.
	HedgeQuantile float64
	HedgeMin      time.Duration
	// Timeout bounds one proxied attempt (default 5s).
	Timeout time.Duration
	// Transport optionally overrides the proxy transport.
	Transport http.RoundTripper
	// Logger, when non-nil, receives member state transitions and
	// drain events.
	Logger *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.Probe <= 0 {
		c.Probe = 200 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.DownAfter < c.SuspectAfter {
		c.DownAfter = c.SuspectAfter
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.MaxFailover < 0 {
		c.MaxFailover = 0
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.99
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	return c
}

// Fleet is the front-tier router. Create with New, then StartHealth to
// begin probing; it implements http.Handler.
type Fleet struct {
	cfg    Config
	ring   *edge.Ring
	client *http.Client

	mu      sync.RWMutex
	members map[string]*Member
	order   []string // registration order, for stable snapshots

	// lat is the rolling proxied-latency distribution the hedge delay
	// derives from (service time of successful primary attempts).
	lat *obs.HDRHistogram

	inst     *Instrumentation
	draining atomic.Bool

	checkerStop   chan struct{}
	checkerDone   chan struct{}
	checkerCancel sync.Once
}

// New builds a fleet over the given members. All members start up and
// in the ring; the health checker demotes the ones that fail probes.
func New(cfg Config, members ...*Member) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:         cfg,
		ring:        edge.NewRing(0),
		members:     make(map[string]*Member, len(members)),
		lat:         obs.NewHDRHistogram(obs.LatencyHDRConfig()),
		checkerStop: make(chan struct{}),
		checkerDone: make(chan struct{}),
	}
	transport := cfg.Transport
	if transport == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 256
		transport = t
	}
	f.client = &http.Client{Transport: transport, Timeout: cfg.Timeout}
	for _, m := range members {
		f.members[m.Name] = m
		f.order = append(f.order, m.Name)
		m.state.Store(int32(StateUp))
		f.ring.Add(m.Name)
	}
	return f
}

// Ring exposes the routing ring (tests assert rebalancing on it).
func (f *Fleet) Ring() *edge.Ring { return f.ring }

// Members returns point-in-time member snapshots in registration order.
func (f *Fleet) Members() []MemberStatus {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]MemberStatus, 0, len(f.order))
	for _, name := range f.order {
		m := f.members[name]
		st := m.State()
		var reqs int64
		if f.inst != nil {
			reqs = f.inst.memberRequests(name).Value()
		}
		out = append(out, MemberStatus{
			Name: m.Name, URL: m.URL, State: st, StateName: st.String(), Requests: reqs,
		})
	}
	return out
}

// Live returns how many members are currently in the ring.
func (f *Fleet) Live() int { return f.ring.Len() }

// Draining reports whether Drain has been called.
func (f *Fleet) Draining() bool { return f.draining.Load() }

// Drain begins a graceful shutdown: new requests are refused with 503
// (Connection: close) while in-flight ones finish under the caller's
// http.Server.Shutdown, and the health checker stops. Idempotent.
func (f *Fleet) Drain() {
	if f.draining.CompareAndSwap(false, true) {
		if f.cfg.Logger != nil {
			f.cfg.Logger.Info("fleet draining")
		}
		f.stopHealth()
	}
}

// HedgeDelay returns the current hedge trigger: the configured
// quantile of observed proxied latency, floored at HedgeMin.
func (f *Fleet) HedgeDelay() time.Duration {
	d := time.Duration(f.lat.Quantile(f.cfg.HedgeQuantile))
	if d < f.cfg.HedgeMin {
		d = f.cfg.HedgeMin
	}
	if max := f.cfg.Timeout / 2; max > 0 && d > max {
		d = max
	}
	return d
}

// proxyResult is one buffered upstream response.
type proxyResult struct {
	status int
	header http.Header
	body   []byte
	member string
}

// maxProxyBody bounds one buffered upstream response (and request)
// body; the workload is small JSON objects, so 32 MiB is generous.
const maxProxyBody = 32 << 20

// retryable reports whether a status should fail over to the next
// replica: any 5xx, since the next node either has the object cached
// or its own healthy origin path.
func retryable(status int) bool { return status >= 500 }

// hopHeaders are not forwarded in either direction (RFC 7230 §6.1).
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}

// ServeHTTP implements http.Handler: route on the object URL, forward
// to the responsible live node, fail over on connect/5xx errors, and
// optionally hedge slow GETs.
func (f *Fleet) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.draining.Load() {
		w.Header().Set("Connection", "close")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// Route on the same key the nodes cache on, so placement and cache
	// affinity agree.
	key := "http://" + r.Host + r.URL.String()

	// One extra candidate beyond the failover budget so the hedge has
	// a distinct target even when every failover attempt is spent.
	cands := f.ring.LookupN(key, f.cfg.MaxFailover+2)
	if len(cands) == 0 {
		if f.inst != nil {
			f.inst.NoMembers.Inc()
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no live fleet members", http.StatusServiceUnavailable)
		return
	}

	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
		if err != nil {
			http.Error(w, "reading request body", http.StatusBadGateway)
			return
		}
		body = b
	}

	var (
		res     *proxyResult
		lastErr error
	)
	attempts := f.cfg.MaxFailover + 1
	if attempts > len(cands) {
		attempts = len(cands)
	}
	for i := 0; i < attempts; i++ {
		if i > 0 && f.inst != nil {
			f.inst.Failovers.Inc()
		}
		hedgeable := f.cfg.Hedge && i == 0 && r.Method == http.MethodGet &&
			len(body) == 0 && len(cands) > 1
		var err error
		if hedgeable {
			res, err = f.hedgedAttempt(r.Context(), cands[0], cands[1], r, body)
		} else {
			res, err = f.attempt(r.Context(), cands[i], r, body)
		}
		if err != nil {
			lastErr = err
			res = nil
			continue
		}
		if retryable(res.status) && i+1 < attempts {
			lastErr = fmt.Errorf("fleet: %s answered %d", res.member, res.status)
			res = nil
			continue
		}
		break
	}
	if res == nil {
		if f.inst != nil {
			f.inst.Exhausted.Inc()
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":"all replicas failed","detail":%q}`, fmt.Sprint(lastErr))
		return
	}

	if f.inst != nil {
		f.inst.memberRequests(res.member).Inc()
		switch res.header.Get("X-Cache") {
		case "HIT", "STALE", "NEGATIVE":
			f.inst.Hits.Inc()
		case "MISS":
			f.inst.Misses.Inc()
		}
	}
	copyHeaders(w.Header(), res.header)
	w.Header().Set("X-Fleet-Node", res.member)
	w.WriteHeader(res.status)
	if r.Method != http.MethodHead {
		w.Write(res.body)
	}
}

// attempt proxies one request to one member, buffering the response.
func (f *Fleet) attempt(ctx context.Context, name string, r *http.Request, body []byte) (*proxyResult, error) {
	f.mu.RLock()
	m := f.members[name]
	f.mu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("fleet: unknown member %q", name)
	}
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, m.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	req.Host = r.Host // cache keys on the nodes include the original host

	start := time.Now()
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, err
	}
	f.lat.Record(time.Since(start).Nanoseconds())
	return &proxyResult{
		status: resp.StatusCode,
		header: resp.Header.Clone(),
		body:   respBody,
		member: name,
	}, nil
}

// hedgedAttempt races the primary against a delayed hedge to the next
// replica: the first usable response wins and the loser's context is
// canceled. An attempt error or retryable status only loses the race —
// it is returned solely when both legs fail.
func (f *Fleet) hedgedAttempt(ctx context.Context, primary, backup string, r *http.Request, body []byte) (*proxyResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the losing leg

	type legOut struct {
		res    *proxyResult
		err    error
		hedged bool
	}
	out := make(chan legOut, 2)
	run := func(name string, hedged bool) {
		res, err := f.attempt(ctx, name, r, body)
		out <- legOut{res: res, err: err, hedged: hedged}
	}
	go run(primary, false)

	timer := time.NewTimer(f.HedgeDelay())
	defer timer.Stop()

	hedgeFired := false
	legs := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedgeFired {
				hedgeFired = true
				legs++
				if f.inst != nil {
					f.inst.Hedges.Inc()
				}
				go run(backup, true)
			}
		case o := <-out:
			usable := o.err == nil && !retryable(o.res.status)
			if usable {
				if f.inst != nil && hedgeFired {
					if o.hedged {
						f.inst.HedgesWon.Inc()
					} else {
						f.inst.HedgesWasted.Inc()
					}
				}
				return o.res, nil
			}
			if o.err != nil && firstErr == nil {
				firstErr = o.err
			} else if o.err == nil && firstErr == nil {
				firstErr = fmt.Errorf("fleet: %s answered %d", o.res.member, o.res.status)
			}
			legs--
			if legs == 0 {
				// Every launched leg failed. When the primary failed
				// before the hedge delay, the hedge never fired — the
				// caller's failover loop takes over rather than burning
				// the hedge on a dead node.
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// memberNames returns the registered names, sorted (for probing).
func (f *Fleet) memberNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, len(f.order))
	copy(out, f.order)
	sort.Strings(out)
	return out
}

// UpdateMemberURL repoints a member (a restarted node that came back
// on a different port). The name — and therefore its ring slice — is
// unchanged.
func (f *Fleet) UpdateMemberURL(name, url, healthURL string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.members[name]
	if m == nil {
		return fmt.Errorf("fleet: unknown member %q", name)
	}
	m.URL = url
	if healthURL != "" {
		m.HealthURL = healthURL
	}
	return nil
}

// label sanitizes a member name for use as a metric label value.
func label(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
