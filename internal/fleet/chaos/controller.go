package chaos

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// Target is what a Controller drives: something that can crash,
// resurrect, and fault-inject named nodes. The in-process experiment
// implements it over httptest servers and Injectors; the jsonfleet
// supervisor implements it with SIGKILL/respawn plus each child's
// chaos control endpoint.
type Target interface {
	// Kill terminates the node's process (or closes its listener).
	Kill(node string) error
	// Restart brings a killed node back at its previous address.
	Restart(node string) error
	// Inject sets the node's fault mode (pause/partition/dead/ok).
	Inject(node string, mode Mode, delay time.Duration) error
}

// Controller executes a timeline against a Target in real time.
type Controller struct {
	Target Target
	// OnEvent, if set, is called for every event as it fires — mark
	// events exist solely for this hook (counter-snapshot windows).
	OnEvent func(Event)
	// Log, if set, receives a line per applied event.
	Log func(format string, args ...any)
}

// Run applies each event at its offset from now. It returns the first
// application error, or ctx's error if canceled mid-run; mark events
// never fail.
func (c *Controller) Run(ctx context.Context, events []Event) error {
	start := time.Now()
	for _, ev := range events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
		}
		if c.Log != nil {
			c.Log("chaos +%s: %s %s", time.Since(start).Round(time.Millisecond), ev.Verb, ev.Node)
		}
		if err := c.apply(ev); err != nil {
			return fmt.Errorf("chaos: applying %q: %w", ev.String(), err)
		}
		if c.OnEvent != nil {
			c.OnEvent(ev)
		}
	}
	return nil
}

// apply dispatches one event to the target.
func (c *Controller) apply(ev Event) error {
	switch ev.Verb {
	case "mark":
		return nil
	case "kill":
		return c.Target.Kill(ev.Node)
	case "restart":
		return c.Target.Restart(ev.Node)
	case "pause":
		return c.Target.Inject(ev.Node, ModePause, ev.Delay)
	case "partition":
		return c.Target.Inject(ev.Node, ModePartition, 0)
	case "dead":
		return c.Target.Inject(ev.Node, ModeDead, 0)
	case "heal":
		return c.Target.Inject(ev.Node, ModeOK, 0)
	default:
		return fmt.Errorf("unknown verb %q", ev.Verb)
	}
}

// InjectHTTP posts a fault to a node's chaos control endpoint — the
// supervisor-side half of Inject for out-of-process nodes.
func InjectHTTP(ctx context.Context, client *http.Client, controlURL string, mode Mode, delay time.Duration) error {
	url := fmt.Sprintf("%s/chaos?mode=%s", controlURL, mode)
	if delay > 0 {
		url += "&delay=" + delay.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos: control %s answered %d", controlURL, resp.StatusCode)
	}
	return nil
}
