package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
}

func TestInjectorModes(t *testing.T) {
	var in Injector
	srv := httptest.NewServer(in.Wrap(okHandler()))
	defer srv.Close()

	// ok: passes through.
	resp, err := http.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("ok mode: %v %v", resp, err)
	}
	resp.Body.Close()

	// dead: 503.
	in.Set(ModeDead, 0)
	resp, err = http.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead mode: %v %v", resp, err)
	}
	resp.Body.Close()

	// pause: response delayed.
	in.Set(ModePause, 80*time.Millisecond)
	start := time.Now()
	resp, err = http.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pause mode: %v %v", resp, err)
	}
	resp.Body.Close()
	if took := time.Since(start); took < 80*time.Millisecond {
		t.Fatalf("pause mode answered in %s, want >= 80ms", took)
	}

	// partition: transport-level error, no HTTP response.
	in.Set(ModePartition, 0)
	if _, err = http.Get(srv.URL); err == nil {
		t.Fatal("partition mode produced a clean HTTP response, want a transport error")
	}

	// heal: back to normal.
	in.Heal()
	resp, err = http.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("after heal: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestControlHandler(t *testing.T) {
	var in Injector
	ctl := httptest.NewServer(in.ControlHandler())
	defer ctl.Close()

	if err := InjectHTTP(context.Background(), http.DefaultClient, ctl.URL, ModePause, 300*time.Millisecond); err != nil {
		t.Fatalf("InjectHTTP: %v", err)
	}
	if mode, delay := in.State(); mode != ModePause || delay != 300*time.Millisecond {
		t.Fatalf("state after control POST: %s %s", mode, delay)
	}

	resp, err := http.Get(ctl.URL + "/chaos")
	if err != nil {
		t.Fatalf("GET /chaos: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"mode":"pause"`) || !strings.Contains(string(body), `"delay_ms":300`) {
		t.Fatalf("GET /chaos = %s", body)
	}

	// Bad mode rejected, state unchanged.
	r2, _ := http.Post(ctl.URL+"/chaos?mode=explode", "", nil)
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode answered %d, want 400", r2.StatusCode)
	}
	r2.Body.Close()
	if mode, _ := in.State(); mode != ModePause {
		t.Fatalf("state changed by rejected POST: %s", mode)
	}
}

func TestParseTimeline(t *testing.T) {
	const text = `
# fleet chaos: kill one node, bring it back
+500ms kill edge-01
+2s    restart edge-01
@4s    pause edge-02 300ms
+1s    heal edge-02
+500ms mark settled
`
	events, err := ParseTimeline(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseTimeline: %v", err)
	}
	want := []Event{
		{At: 500 * time.Millisecond, Verb: "kill", Node: "edge-01"},
		{At: 2500 * time.Millisecond, Verb: "restart", Node: "edge-01"},
		{At: 4 * time.Second, Verb: "pause", Node: "edge-02", Delay: 300 * time.Millisecond},
		{At: 5 * time.Second, Verb: "heal", Node: "edge-02"},
		{At: 5500 * time.Millisecond, Verb: "mark", Node: "settled"},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(events), len(want), events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestParseTimelineErrors(t *testing.T) {
	for _, bad := range []string{
		"500ms kill edge-01",     // no +/@ prefix
		"+1s explode edge-01",    // unknown verb
		"+1s pause edge-01",      // missing delay
		"+1s kill edge-01 extra", // trailing args
		"+1s pause edge-01 -3s",  // negative delay
		"+nope kill edge-01",     // bad duration
	} {
		if _, err := ParseTimeline(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTimeline(%q) accepted, want error", bad)
		}
	}
}

func TestGenerateTimelineDeterministic(t *testing.T) {
	nodes := []string{"edge-00", "edge-01", "edge-02"}
	a := GenerateTimeline(42, nodes, 10*time.Second, 3)
	b := GenerateTimeline(42, nodes, 10*time.Second, 3)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := GenerateTimeline(43, nodes, 10*time.Second, 3)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical timelines")
	}

	// Every fault is repaired before the run ends, and sorted order.
	broken := map[string]bool{}
	var last time.Duration
	for _, ev := range a {
		if ev.At < last {
			t.Fatalf("events out of order: %+v", a)
		}
		last = ev.At
		switch ev.Verb {
		case "kill", "pause", "partition", "dead":
			broken[ev.Node] = true
		case "restart", "heal":
			delete(broken, ev.Node)
		}
		if ev.At > 10*time.Second {
			t.Fatalf("event past run end: %+v", ev)
		}
	}
	if len(broken) != 0 {
		t.Fatalf("nodes left broken at run end: %v", broken)
	}
}

// fakeTarget records applied actions.
type fakeTarget struct {
	mu      sync.Mutex
	actions []string
}

func (f *fakeTarget) record(s string) {
	f.mu.Lock()
	f.actions = append(f.actions, s)
	f.mu.Unlock()
}
func (f *fakeTarget) Kill(n string) error    { f.record("kill " + n); return nil }
func (f *fakeTarget) Restart(n string) error { f.record("restart " + n); return nil }
func (f *fakeTarget) Inject(n string, m Mode, d time.Duration) error {
	f.record(fmt.Sprintf("inject %s %s %s", n, m, d))
	return nil
}

func TestControllerRun(t *testing.T) {
	tgt := &fakeTarget{}
	var marks []string
	c := &Controller{
		Target:  tgt,
		OnEvent: func(ev Event) { marks = append(marks, ev.Verb+":"+ev.Node) },
	}
	events := []Event{
		{At: 0, Verb: "kill", Node: "edge-01"},
		{At: 10 * time.Millisecond, Verb: "mark", Node: "mid"},
		{At: 20 * time.Millisecond, Verb: "restart", Node: "edge-01"},
		{At: 30 * time.Millisecond, Verb: "pause", Node: "edge-00", Delay: 5 * time.Millisecond},
		{At: 40 * time.Millisecond, Verb: "heal", Node: "edge-00"},
	}
	if err := c.Run(context.Background(), events); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{
		"kill edge-01",
		"restart edge-01",
		"inject edge-00 pause 5ms",
		"inject edge-00 ok 0s",
	}
	if len(tgt.actions) != len(want) {
		t.Fatalf("actions %v, want %v", tgt.actions, want)
	}
	for i := range want {
		if tgt.actions[i] != want[i] {
			t.Fatalf("action %d = %q, want %q", i, tgt.actions[i], want[i])
		}
	}
	if len(marks) != len(events) {
		t.Fatalf("OnEvent fired %d times, want %d", len(marks), len(events))
	}
}

func TestControllerCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Controller{Target: &fakeTarget{}}
	err := c.Run(ctx, []Event{{At: time.Hour, Verb: "kill", Node: "edge-00"}})
	if err == nil {
		t.Fatal("canceled Run returned nil")
	}
}
