// Package chaos is the fleet's deterministic fault injector: an HTTP
// middleware that makes one node misbehave on command (pause, drop
// connections, play dead), a scripted timeline of such commands, and a
// controller that executes a timeline against a running fleet. Faults
// are injected at the node boundary — the front tier, health checker,
// and replay harness all see exactly what a real slow, partitioned, or
// crashed node would produce — so availability claims are measured,
// not assumed.
package chaos

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Mode is a node's injected failure mode.
type Mode string

const (
	// ModeOK: no fault; requests pass through.
	ModeOK Mode = "ok"
	// ModePause: every request (including health probes) is delayed by
	// the configured duration before being served — a slow node.
	ModePause Mode = "pause"
	// ModePartition: every connection is severed mid-request without a
	// response — the front sees what a network partition produces
	// (EOF / connection reset), not a clean HTTP error.
	ModePartition Mode = "partition"
	// ModeDead: every request is answered 503 — a crashed-but-listening
	// process (systemd restarting it, a wedged event loop).
	ModeDead Mode = "dead"
)

// valid reports whether m is a recognized mode.
func (m Mode) valid() bool {
	switch m {
	case ModeOK, ModePause, ModePartition, ModeDead:
		return true
	}
	return false
}

// Injector wraps a node's handler and applies the currently-set fault
// to every request. The zero value is usable and starts in ModeOK.
type Injector struct {
	mu    sync.RWMutex
	mode  Mode
	delay time.Duration
}

// Set switches the injected fault. delay is only meaningful for
// ModePause.
func (in *Injector) Set(mode Mode, delay time.Duration) {
	in.mu.Lock()
	in.mode = mode
	in.delay = delay
	in.mu.Unlock()
}

// Heal returns the node to ModeOK.
func (in *Injector) Heal() { in.Set(ModeOK, 0) }

// State returns the current fault.
func (in *Injector) State() (Mode, time.Duration) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.mode == "" {
		return ModeOK, 0
	}
	return in.mode, in.delay
}

// Wrap returns next with the injector's fault applied in front of it.
// Wrap the node's whole mux — health endpoint included — so the
// fleet's prober sees the fault too.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mode, delay := in.State()
		switch mode {
		case ModePause:
			time.Sleep(delay)
		case ModePartition:
			// Abort the connection without writing a response: the client
			// observes EOF/ECONNRESET, indistinguishable from a mid-flight
			// network partition.
			panic(http.ErrAbortHandler)
		case ModeDead:
			http.Error(w, "chaos: node dead", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ControlHandler returns the injector's HTTP control surface, served
// on a separate listener so faults never block their own cure:
//
//	GET  /chaos              -> {"mode":"ok","delay_ms":0}
//	POST /chaos?mode=pause&delay=300ms
//	POST /chaos?mode=partition
//	POST /chaos?mode=ok      (heal)
func (in *Injector) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/chaos", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			mode, delay := in.State()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"mode": string(mode), "delay_ms": delay.Milliseconds(),
			})
		case http.MethodPost:
			mode := Mode(r.URL.Query().Get("mode"))
			if !mode.valid() {
				http.Error(w, fmt.Sprintf("chaos: unknown mode %q", mode), http.StatusBadRequest)
				return
			}
			var delay time.Duration
			if s := r.URL.Query().Get("delay"); s != "" {
				d, err := time.ParseDuration(s)
				if err != nil || d < 0 {
					http.Error(w, fmt.Sprintf("chaos: bad delay %q", s), http.StatusBadRequest)
					return
				}
				delay = d
			}
			in.Set(mode, delay)
			fmt.Fprintf(w, "chaos: mode=%s delay=%s\n", mode, delay)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}
