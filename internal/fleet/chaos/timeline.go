package chaos

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// A timeline is the scripted half of a chaos run: a list of events at
// offsets from the start of the run. The text form is one event per
// line,
//
//	# offsets starting "+" are relative to the previous event,
//	# "@" offsets are absolute from run start.
//	+500ms kill edge-01
//	+2s    restart edge-01
//	@4s    pause edge-02 300ms
//	+1s    heal edge-02
//	+500ms mark settled
//
// Verbs: kill, restart, pause <delay>, partition, dead, heal, mark.
// kill/restart need a process supervisor; pause/partition/dead/heal
// go through a node's chaos control endpoint; mark takes a window
// label instead of a node and only pings observers (the supervisor
// snapshots its hit/error counters there).

// Event is one scripted fault action.
type Event struct {
	// At is the offset from the start of the run.
	At time.Duration `json:"at"`
	// Verb is the action: kill, restart, pause, partition, dead, heal,
	// or mark.
	Verb string `json:"verb"`
	// Node names the target member; for mark it is the window label.
	Node string `json:"node"`
	// Delay is the pause duration (pause verb only).
	Delay time.Duration `json:"delay,omitempty"`
}

// String renders the event in timeline syntax with an absolute offset.
func (e Event) String() string {
	s := fmt.Sprintf("@%s %s %s", e.At, e.Verb, e.Node)
	if e.Verb == "pause" {
		s += " " + e.Delay.String()
	}
	return s
}

// timelineVerbs maps each verb to whether it takes a delay argument.
var timelineVerbs = map[string]bool{
	"kill": false, "restart": false, "pause": true,
	"partition": false, "dead": false, "heal": false, "mark": false,
}

// ParseTimeline reads timeline text. Blank lines and #-comments are
// skipped. Events are returned sorted by offset (stable, so same-
// offset events keep file order).
func ParseTimeline(r io.Reader) ([]Event, error) {
	var events []Event
	var cursor time.Duration // running offset for "+" deltas
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("chaos: line %d: want \"<offset> <verb> <node>\", got %q", lineno, line)
		}
		off := fields[0]
		var at time.Duration
		switch {
		case strings.HasPrefix(off, "+"):
			d, err := time.ParseDuration(off[1:])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("chaos: line %d: bad relative offset %q", lineno, off)
			}
			at = cursor + d
		case strings.HasPrefix(off, "@"):
			d, err := time.ParseDuration(off[1:])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("chaos: line %d: bad absolute offset %q", lineno, off)
			}
			at = d
		default:
			return nil, fmt.Errorf("chaos: line %d: offset %q must start with + or @", lineno, off)
		}
		cursor = at

		verb := fields[1]
		wantsDelay, ok := timelineVerbs[verb]
		if !ok {
			return nil, fmt.Errorf("chaos: line %d: unknown verb %q", lineno, verb)
		}
		ev := Event{At: at, Verb: verb, Node: fields[2]}
		if wantsDelay {
			if len(fields) < 4 {
				return nil, fmt.Errorf("chaos: line %d: %s needs a delay argument", lineno, verb)
			}
			d, err := time.ParseDuration(fields[3])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("chaos: line %d: bad delay %q", lineno, fields[3])
			}
			ev.Delay = d
		} else if len(fields) > 3 {
			return nil, fmt.Errorf("chaos: line %d: trailing arguments after %q", lineno, verb)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// GenerateTimeline produces a seeded random fault schedule over the
// given nodes: each disruption picks a node, a fault (kill, pause, or
// partition), a start offset, and a repair (restart/heal) before the
// run ends — no node is left broken at the end, so recovery is always
// measurable. Same seed, same schedule.
func GenerateTimeline(seed int64, nodes []string, total time.Duration, disruptions int) []Event {
	rng := rand.New(rand.NewSource(seed))
	var events []Event
	if len(nodes) == 0 || disruptions <= 0 || total <= 0 {
		return events
	}
	// Leave the final quarter of the run fault-free so the recovery
	// window the gate measures is clean.
	window := total * 3 / 4
	for i := 0; i < disruptions; i++ {
		node := nodes[rng.Intn(len(nodes))]
		start := time.Duration(rng.Int63n(int64(window / 2)))
		dur := window/4 + time.Duration(rng.Int63n(int64(window/4)))
		if start+dur > window {
			dur = window - start
		}
		switch rng.Intn(3) {
		case 0:
			events = append(events,
				Event{At: start, Verb: "kill", Node: node},
				Event{At: start + dur, Verb: "restart", Node: node})
		case 1:
			delay := 50*time.Millisecond + time.Duration(rng.Int63n(int64(250*time.Millisecond)))
			events = append(events,
				Event{At: start, Verb: "pause", Node: node, Delay: delay},
				Event{At: start + dur, Verb: "heal", Node: node})
		default:
			events = append(events,
				Event{At: start, Verb: "partition", Node: node},
				Event{At: start + dur, Verb: "heal", Node: node})
		}
	}
	events = append(events, Event{At: total - total/8, Verb: "mark", Node: "settled"})
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}
