package fleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// testNode is a controllable fake edge node: it serves a JSON body
// with an X-Cache header, can be delayed, made to fail with 5xx, or
// "killed" (connections refused by closing the listener).
type testNode struct {
	name   string
	srv    *httptest.Server
	delay  atomic.Int64 // response delay, ns
	broken atomic.Bool  // answer 503
	hits   atomic.Int64
}

func newTestNode(t *testing.T, name string) *testNode {
	t.Helper()
	n := &testNode{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if n.broken.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if d := n.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if n.broken.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		n.hits.Add(1)
		w.Header().Set("X-Cache", "HIT")
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"node":%q,"path":%q}`, n.name, r.URL.Path)
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func (n *testNode) member() *Member {
	return &Member{Name: n.name, URL: n.srv.URL, HealthURL: n.srv.URL + "/healthz"}
}

func testFleet(t *testing.T, cfg Config, nodes ...*testNode) (*Fleet, *httptest.Server) {
	t.Helper()
	members := make([]*Member, len(nodes))
	for i, n := range nodes {
		members[i] = n.member()
	}
	f := New(cfg, members...)
	front := httptest.NewServer(f)
	t.Cleanup(front.Close)
	return f, front
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// TestRoutingAffinity: the same path always lands on the same node,
// and the X-Fleet-Node header names it.
func TestRoutingAffinity(t *testing.T) {
	nodes := []*testNode{newTestNode(t, "edge-00"), newTestNode(t, "edge-01"), newTestNode(t, "edge-02")}
	_, front := testFleet(t, Config{}, nodes...)

	owner := map[string]string{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			path := fmt.Sprintf("/object/%d", i)
			resp, _ := get(t, front.URL+path)
			node := resp.Header.Get("X-Fleet-Node")
			if node == "" {
				t.Fatalf("no X-Fleet-Node header for %s", path)
			}
			if prev, ok := owner[path]; ok && prev != node {
				t.Fatalf("path %s moved %s -> %s with stable membership", path, prev, node)
			}
			owner[path] = node
		}
	}
	seen := map[string]bool{}
	for _, n := range owner {
		seen[n] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all paths landed on one node: %v", owner)
	}
}

// TestFailoverOnConnectError: with one node's listener closed,
// requests owned by it fail over to the next replica and still
// succeed.
func TestFailoverOnConnectError(t *testing.T) {
	nodes := []*testNode{newTestNode(t, "edge-00"), newTestNode(t, "edge-01"), newTestNode(t, "edge-02")}
	f, front := testFleet(t, Config{MaxFailover: 2}, nodes...)
	reg := obs.NewRegistry()
	inst := f.Instrument(reg)

	nodes[1].srv.Close() // connection refused from now on

	for i := 0; i < 60; i++ {
		resp, body := get(t, front.URL+fmt.Sprintf("/object/%d", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /object/%d = %d (%s), want 200 via failover", i, resp.StatusCode, body)
		}
		if node := resp.Header.Get("X-Fleet-Node"); node == "edge-01" {
			t.Fatalf("dead node answered /object/%d", i)
		}
	}
	if inst.Failovers.Value() == 0 {
		t.Fatal("no failovers recorded; dead node owned no keys? (vanishingly unlikely)")
	}
}

// TestFailoverDisabled: the same dead node with MaxFailover 0 turns
// into 502s — the negative control the chaos gate relies on.
func TestFailoverDisabled(t *testing.T) {
	nodes := []*testNode{newTestNode(t, "edge-00"), newTestNode(t, "edge-01"), newTestNode(t, "edge-02")}
	_, front := testFleet(t, Config{MaxFailover: -1}, nodes...) // -1 clamps to 0

	nodes[1].srv.Close()

	errors := 0
	for i := 0; i < 60; i++ {
		resp, _ := get(t, front.URL+fmt.Sprintf("/object/%d", i))
		if resp.StatusCode == http.StatusBadGateway {
			errors++
		}
	}
	if errors == 0 {
		t.Fatal("failover disabled but no 502s: dead node never consulted")
	}
}

// TestFailoverOn5xx: a node answering 503 is retried on the next
// replica.
func TestFailoverOn5xx(t *testing.T) {
	nodes := []*testNode{newTestNode(t, "edge-00"), newTestNode(t, "edge-01")}
	_, front := testFleet(t, Config{MaxFailover: 1}, nodes...)

	nodes[0].broken.Store(true)
	for i := 0; i < 30; i++ {
		resp, _ := get(t, front.URL+fmt.Sprintf("/object/%d", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET = %d, want 200 via 5xx failover", resp.StatusCode)
		}
		if node := resp.Header.Get("X-Fleet-Node"); node != "edge-01" {
			t.Fatalf("healthy response from %s, want edge-01", node)
		}
	}
}

// TestHealthTransitions: probes demote a broken node through suspect
// to down (leaving the ring), and promote it back up on recovery.
func TestHealthTransitions(t *testing.T) {
	nodes := []*testNode{newTestNode(t, "edge-00"), newTestNode(t, "edge-01"), newTestNode(t, "edge-02")}
	f, _ := testFleet(t, Config{
		Probe:        20 * time.Millisecond,
		ProbeTimeout: 100 * time.Millisecond,
		SuspectAfter: 1,
		DownAfter:    3,
		UpAfter:      2,
	}, nodes...)
	stop := f.StartHealth()
	defer stop()

	waitState := func(m *Member, want MemberState) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if m.State() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("member %s never reached %s (now %s)", m.Name, want, m.State())
	}

	f.mu.RLock()
	m := f.members["edge-01"]
	f.mu.RUnlock()

	nodes[1].broken.Store(true)
	waitState(m, StateDown)
	if f.ring.Has("edge-01") {
		t.Fatal("down member still in ring")
	}
	if f.Live() != 2 {
		t.Fatalf("Live = %d, want 2", f.Live())
	}
	// No key may route to the down member.
	for i := 0; i < 200; i++ {
		if got := f.ring.Lookup(fmt.Sprintf("/object/%d", i)); got == "edge-01" {
			t.Fatal("key routed to down member")
		}
	}

	nodes[1].broken.Store(false)
	waitState(m, StateUp)
	if !f.ring.Has("edge-01") {
		t.Fatal("recovered member not back in ring")
	}
}

// TestHedging: a slow primary is beaten by a hedge to the next
// replica; the response arrives well before the primary's delay and
// the hedge counters move.
func TestHedging(t *testing.T) {
	nodes := []*testNode{newTestNode(t, "edge-00"), newTestNode(t, "edge-01"), newTestNode(t, "edge-02")}
	f, front := testFleet(t, Config{
		Hedge:    true,
		HedgeMin: 20 * time.Millisecond,
	}, nodes...)
	reg := obs.NewRegistry()
	inst := f.Instrument(reg)

	// Find a path owned by edge-01, then make edge-01 slow.
	var path string
	for i := 0; ; i++ {
		p := fmt.Sprintf("/object/%d", i)
		if f.ring.Lookup("http://"+front.Listener.Addr().String()+p) == "edge-01" {
			path = p
			break
		}
	}
	nodes[1].delay.Store(int64(400 * time.Millisecond))

	start := time.Now()
	resp, _ := get(t, front.URL+path)
	took := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged GET = %d, want 200", resp.StatusCode)
	}
	if node := resp.Header.Get("X-Fleet-Node"); node == "edge-01" {
		t.Fatal("slow primary won; hedge never fired?")
	}
	if took >= 400*time.Millisecond {
		t.Fatalf("hedged request took %s, no better than the slow primary", took)
	}
	if inst.Hedges.Value() == 0 || inst.HedgesWon.Value() == 0 {
		t.Fatalf("hedge counters: launched %d won %d, want both > 0",
			inst.Hedges.Value(), inst.HedgesWon.Value())
	}
}

// TestDrain: a draining front refuses new work with 503.
func TestDrain(t *testing.T) {
	nodes := []*testNode{newTestNode(t, "edge-00")}
	f, front := testFleet(t, Config{}, nodes...)
	stop := f.StartHealth()
	defer stop()

	resp, _ := get(t, front.URL+"/object/1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain GET = %d", resp.StatusCode)
	}
	f.Drain()
	resp, _ = get(t, front.URL+"/object/1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining GET = %d, want 503", resp.StatusCode)
	}
	if !f.Draining() {
		t.Fatal("Draining() false after Drain")
	}
}

// TestMembersSnapshot: snapshots carry state names and registration
// order.
func TestMembersSnapshot(t *testing.T) {
	nodes := []*testNode{newTestNode(t, "edge-00"), newTestNode(t, "edge-01")}
	f, front := testFleet(t, Config{}, nodes...)
	reg := obs.NewRegistry()
	f.Instrument(reg)
	get(t, front.URL+"/object/1")

	ms := f.Members()
	if len(ms) != 2 || ms[0].Name != "edge-00" || ms[1].Name != "edge-01" {
		t.Fatalf("snapshot order wrong: %+v", ms)
	}
	var total int64
	for _, m := range ms {
		if m.StateName != "up" {
			t.Fatalf("member %s state %q, want up", m.Name, m.StateName)
		}
		total += m.Requests
	}
	if total != 1 {
		t.Fatalf("snapshot requests total %d, want 1", total)
	}
}
