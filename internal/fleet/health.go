package fleet

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// This file is the fleet's active health checker: a single goroutine
// probes every member's HealthURL each Config.Probe period and drives
// the three-state machine
//
//	up --SuspectAfter consecutive failures--> suspect
//	suspect --DownAfter total consecutive failures--> down (leaves ring)
//	down --UpAfter consecutive successes--> up (rejoins ring)
//
// Ring membership follows the verdicts, which is the rebalancing: a
// down member's keyspace slice remaps to its ring successors, and
// remaps back when it rejoins. Probes for all members run concurrently
// within a tick so one hung node (ProbeTimeout) cannot delay detection
// of another.

// StartHealth launches the background health checker. It returns
// immediately; call Drain (or the returned stop function) to stop it.
// Members with an empty HealthURL are pinned up and never probed.
func (f *Fleet) StartHealth() (stop func()) {
	probeClient := &http.Client{
		Timeout: f.cfg.ProbeTimeout,
		// Probes must see the node's state now, not a pooled connection's
		// past: keep-alives off so a killed node fails its next probe.
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	go func() {
		defer close(f.checkerDone)
		tick := time.NewTicker(f.cfg.Probe)
		defer tick.Stop()
		for {
			select {
			case <-f.checkerStop:
				return
			case <-tick.C:
				f.probeAll(probeClient)
			}
		}
	}()
	return f.stopHealth
}

// stopHealth stops the checker goroutine and waits for it to exit.
func (f *Fleet) stopHealth() {
	f.checkerCancel.Do(func() {
		close(f.checkerStop)
		<-f.checkerDone
	})
}

// probeAll probes every member concurrently and applies the verdicts.
func (f *Fleet) probeAll(client *http.Client) {
	names := f.memberNames()
	var wg sync.WaitGroup
	for _, name := range names {
		f.mu.RLock()
		m := f.members[name]
		f.mu.RUnlock()
		if m == nil || m.HealthURL == "" {
			continue
		}
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			f.observeProbe(m, probe(client, m.HealthURL))
		}(m)
	}
	wg.Wait()
}

// probe performs one health check: any 200 within the timeout is
// healthy.
func probe(client *http.Client, url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// observeProbe folds one probe outcome into the member's state machine
// and rebalances the ring on transitions. Serialized under f.mu so
// concurrent probes of different members cannot interleave ring
// rebuilds.
func (f *Fleet) observeProbe(m *Member, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	prev := m.State()
	if ok {
		m.oks++
		m.fails = 0
		if prev != StateUp && m.oks >= f.cfg.UpAfter {
			f.transition(m, prev, StateUp)
		}
		return
	}
	m.fails++
	m.oks = 0
	switch {
	case prev == StateUp && m.fails >= f.cfg.SuspectAfter && m.fails < f.cfg.DownAfter:
		f.transition(m, prev, StateSuspect)
	case prev != StateDown && m.fails >= f.cfg.DownAfter:
		f.transition(m, prev, StateDown)
	}
}

// transition applies a state change: ring membership follows the
// state, metrics and the log record it. Caller holds f.mu.
func (f *Fleet) transition(m *Member, from, to MemberState) {
	m.state.Store(int32(to))
	switch {
	case to == StateDown:
		f.ring.Remove(m.Name)
	case to == StateUp && from == StateDown:
		f.ring.Add(m.Name)
	}
	if f.inst != nil {
		f.inst.transitions(m.Name, to.String()).Inc()
	}
	if f.cfg.Logger != nil {
		f.cfg.Logger.Info("fleet member transition",
			"member", m.Name, "from", from.String(), "to", to.String(),
			"live", f.ring.Len())
	}
}
