package fleet

import (
	"sync"

	"repro/internal/obs"
)

// Instrumentation is the front tier's fleet_* metric bundle.
type Instrumentation struct {
	reg *obs.Registry

	// Failovers counts retries to the next ring replica after a
	// connect error or 5xx; Exhausted counts requests that failed every
	// replica in budget (answered 502).
	Failovers *obs.Counter
	Exhausted *obs.Counter
	// Hedges counts hedge requests launched; HedgesWon the hedges whose
	// response was used; HedgesWasted the ones the primary beat.
	Hedges       *obs.Counter
	HedgesWon    *obs.Counter
	HedgesWasted *obs.Counter
	// Hits/Misses tally node X-Cache verdicts as seen from the front —
	// the fleet-wide hit ratio the chaos gate asserts recovery on.
	Hits   *obs.Counter
	Misses *obs.Counter
	// NoMembers counts requests refused because the ring was empty.
	NoMembers *obs.Counter

	mu         sync.Mutex
	memberReqs map[string]*obs.Counter
	memberTran map[string]*obs.Counter
}

// Instrument registers the fleet's metrics on reg and starts exporting
// per-member state gauges. Call once, before StartHealth.
func (f *Fleet) Instrument(reg *obs.Registry) *Instrumentation {
	reg.Help("fleet_failovers_total", "Requests retried on the next ring replica after a connect error or 5xx.")
	reg.Help("fleet_hedges_total", "Tail-latency hedge requests launched.")
	reg.Help("fleet_member_state", "Member health state (0=up, 1=suspect, 2=down).")
	reg.Help("fleet_member_requests_total", "Requests answered by each member, as routed by the front tier.")
	reg.Help("fleet_member_transitions_total", "Health state transitions by member and new state.")
	reg.Help("fleet_hits_total", "Node cache hits (X-Cache HIT/STALE/NEGATIVE) observed at the front tier.")
	inst := &Instrumentation{
		reg:          reg,
		Failovers:    reg.Counter("fleet_failovers_total"),
		Exhausted:    reg.Counter("fleet_exhausted_total"),
		Hedges:       reg.Counter("fleet_hedges_total"),
		HedgesWon:    reg.Counter("fleet_hedges_won_total"),
		HedgesWasted: reg.Counter("fleet_hedges_wasted_total"),
		Hits:         reg.Counter("fleet_hits_total"),
		Misses:       reg.Counter("fleet_misses_total"),
		NoMembers:    reg.Counter("fleet_no_members_total"),
		memberReqs:   make(map[string]*obs.Counter),
		memberTran:   make(map[string]*obs.Counter),
	}
	f.inst = inst
	reg.GaugeFunc("fleet_members_live", func() float64 { return float64(f.ring.Len()) })
	f.mu.RLock()
	for _, name := range f.order {
		m := f.members[name]
		reg.GaugeFunc("fleet_member_state", func() float64 {
			return float64(m.State())
		}, "member", label(m.Name))
	}
	f.mu.RUnlock()
	return inst
}

// memberRequests returns (creating) the per-member request counter.
func (i *Instrumentation) memberRequests(name string) *obs.Counter {
	i.mu.Lock()
	defer i.mu.Unlock()
	c := i.memberReqs[name]
	if c == nil {
		c = i.reg.Counter("fleet_member_requests_total", "member", label(name))
		i.memberReqs[name] = c
	}
	return c
}

// transitions returns (creating) the per-member, per-state transition
// counter.
func (i *Instrumentation) transitions(name, to string) *obs.Counter {
	key := name + "\x00" + to
	i.mu.Lock()
	defer i.mu.Unlock()
	c := i.memberTran[key]
	if c == nil {
		c = i.reg.Counter("fleet_member_transitions_total", "member", label(name), "to", to)
		i.memberTran[key] = c
	}
	return c
}

// HitRatio returns the fleet-wide cache hit ratio observed since the
// given counter snapshot (hits0, misses0) — the chaos gate samples it
// per timeline window.
func (i *Instrumentation) HitRatio(hits0, misses0 int64) float64 {
	h := i.Hits.Value() - hits0
	m := i.Misses.Value() - misses0
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
