package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/domaincat"
	"repro/internal/stats"
	"repro/internal/taxonomy"
)

// Figure4Result carries the cacheability analysis of Fig. 4.
type Figure4Result struct {
	Heatmap *stats.Matrix
	// UncacheableShare is the request-weighted uncacheable fraction
	// (paper: ~55%).
	UncacheableShare float64
	// NeverShare/AlwaysShare are the fractions of domains that never /
	// always serve cacheable JSON (paper: ~50% / ~30%).
	NeverShare, AlwaysShare, MixedShare float64
	// CacheableByCategory maps category label to the mean cacheable
	// share of its domains, to check the industry split (News/Sports
	// high; Financial/Streaming/Gaming low).
	CacheableByCategory map[string]float64
}

// Figure4 regenerates Fig. 4: the heatmap of domain cacheability by
// industry category, plus the §4 cacheability statistics.
func (r *Runner) Figure4(w io.Writer) (Figure4Result, error) {
	w = out(w)
	recs, err := r.ShortTermRecords()
	if err != nil {
		return Figure4Result{}, err
	}
	catalog := domaincat.NewCatalog() // generated names carry keywords; Infer covers them
	dc := taxonomy.NewDomainCacheability(catalog)
	char := taxonomy.NewCharacterization()
	catShares := map[string]*stats.Summary{}
	perDomain := map[string]*[2]int64{} // host -> [cacheable, total]
	for i := range recs {
		rec := &recs[i]
		if !rec.IsJSON() {
			continue
		}
		dc.Observe(rec)
		char.Observe(rec)
		host := rec.Host()
		e := perDomain[host]
		if e == nil {
			e = &[2]int64{}
			perDomain[host] = e
		}
		if rec.Cache.Cacheable() {
			e[0]++
		}
		e[1]++
	}
	// Accumulate per-category shares in sorted host order: float addition
	// is order-sensitive in the last bits, and map iteration would make
	// the means differ from run to run.
	hosts := make([]string, 0, len(perDomain))
	for host := range perDomain {
		hosts = append(hosts, host)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		e := perDomain[host]
		cat := catalog.Lookup(host).String()
		s := catShares[cat]
		if s == nil {
			s = &stats.Summary{}
			catShares[cat] = s
		}
		s.Add(float64(e[0]) / float64(e[1]))
	}

	never, always, mixed := dc.PolicyShares()
	res := Figure4Result{
		Heatmap:             dc.Heatmap(10),
		UncacheableShare:    char.UncacheableShare(),
		NeverShare:          never,
		AlwaysShare:         always,
		MixedShare:          mixed,
		CacheableByCategory: map[string]float64{},
	}
	for cat, s := range catShares {
		res.CacheableByCategory[cat] = s.Mean()
	}

	fmt.Fprintln(w, "Figure 4: Heatmap of domain cacheability by category")
	fmt.Fprintln(w, "(rows: categories; columns: share of the domain's JSON that is cacheable)")
	fmt.Fprint(w, stats.Heatmap(res.Heatmap))
	compareRow(w, "JSON traffic uncacheable", "~55%", pct(res.UncacheableShare))
	compareRow(w, "domains never cacheable", "~50%", pct(res.NeverShare))
	compareRow(w, "domains always cacheable", "~30%", pct(res.AlwaysShare))
	compareRow(w, "News/Media mean cacheable share", "high",
		pct(res.CacheableByCategory[domaincat.CategoryNewsMedia.String()]))
	compareRow(w, "Financial mean cacheable share", "low",
		pct(res.CacheableByCategory[domaincat.CategoryFinancial.String()]))
	compareRow(w, "Gaming mean cacheable share", "low",
		pct(res.CacheableByCategory[domaincat.CategoryGaming.String()]))
	return res, nil
}
