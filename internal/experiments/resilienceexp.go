package experiments

import (
	"fmt"
	"io"
	"net/http/httptest"
	"time"

	"repro/internal/edge"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// ResilienceResult carries the robustness experiment: availability of
// the edge under a faulty origin and a scripted brownout, with and
// without the resilience stack (retries + breaker + serve-stale +
// shedding).
type ResilienceResult struct {
	// Requests is the per-stack request count.
	Requests int
	// BaselineOK and ResilientOK count 200 responses.
	BaselineOK, ResilientOK int
	// BaselineAvailability and ResilientAvailability are the 200
	// fractions.
	BaselineAvailability, ResilientAvailability float64
	// Retries, StaleServes, and Shed are the resilient stack's recovery
	// actions; BreakerOpens counts breaker trips.
	Retries, StaleServes, Shed, BreakerOpens int64
}

// resilienceStack is one edge + origin under test, driven on a
// deterministic simulated clock shared by the edge cache, the fault
// injector, and the breaker, so brownout windows and TTL expiries line
// up identically across runs and across the two stacks.
type resilienceStack struct {
	edge    *edge.HTTPEdge
	faulty  *resilience.FaultyOrigin
	breaker *resilience.Breaker
	inst    *resilience.Instrumentation
	clock   time.Time
	ok      int
}

// resilienceEpoch anchors the simulated clock; any fixed instant works.
var resilienceEpoch = time.Unix(1_700_000_000, 0).UTC()

func newResilienceStack(resilient bool, faultRate float64, seed uint64, brownout resilience.Window, reg *obs.Registry) *resilienceStack {
	s := &resilienceStack{clock: resilienceEpoch}
	now := func() time.Time { return s.clock }
	noSleep := func(time.Duration) {}
	s.faulty = &resilience.FaultyOrigin{
		Inner:     &edge.JSONOrigin{Articles: 30},
		Seed:      seed,
		ErrorRate: faultRate,
		Brownouts: []resilience.Window{brownout},
		Now:       now,
		Sleep:     noSleep,
	}
	s.edge = &edge.HTTPEdge{
		Cache:  edge.NewCache(8<<20, 30*time.Second, 4),
		Origin: s.faulty,
		Now:    now,
	}
	// Each stack always reports into a registry — the runner's (under a
	// stack=... label) when instrumented, a private one otherwise — so
	// the result can read recovery counters either way.
	child := obs.NewRegistry()
	if reg != nil {
		name := "baseline"
		if resilient {
			name = "resilient"
		}
		child = reg.With("stack", name)
	}
	s.edge.Obs = edge.NewInstrumentation(child)
	if !resilient {
		return s
	}
	s.breaker = &resilience.Breaker{
		FailureThreshold: 5,
		OpenFor:          5 * time.Second,
		ProbeSuccesses:   2,
		Now:              now,
	}
	ro := &resilience.ResilientOrigin{
		Inner:   s.faulty,
		Retry:   resilience.Backoff{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond, Attempts: 3},
		Breaker: s.breaker,
		Seed:    seed + 1,
		Sleep:   noSleep,
	}
	s.edge.Origin = ro
	s.edge.ServeStale = true
	s.edge.Degraded = ro.Degraded
	ro.Obs = resilience.NewInstrumentation(child)
	resilience.RegisterBreaker(child, s.breaker)
	s.inst = ro.Obs
	return s
}

// step serves one scripted request at simulated second i and advances
// the clock. The mix echoes the liveedge workload: manifest and article
// GETs from a phone app (human class) and periodic telemetry POSTs from
// an IoT device (machine class, the shed target).
func (s *resilienceStack) step(i int) {
	s.clock = resilienceEpoch.Add(time.Duration(i) * time.Second)
	method, path, ua := "GET", "", "NewsApp/3.1 (iPhone; iOS 12.2)"
	switch {
	case i%10 == 9:
		method, path, ua = "POST", "/ingest/metrics", "HomeCam/1.9 (IoT; ESP32)"
	case i%3 == 0:
		path = "/stories"
	default:
		path = fmt.Sprintf("/article/%d", 1000+i%7)
	}
	req := httptest.NewRequest(method, "http://edge.local"+path, nil)
	req.Header.Set("User-Agent", ua)
	rec := httptest.NewRecorder()
	s.edge.ServeHTTP(rec, req)
	if rec.Code == 200 {
		s.ok++
	}
}

// Resilience runs the brownout experiment: the same deterministic
// request schedule is served twice from identical faulty origins — once
// by a bare edge, once by the full resilience stack — and availability
// (fraction of 200s) is compared. The schedule covers 30 simulated
// minutes at 1 req/s with a 5-minute total outage in the middle; the
// steady-state fault rate and seed come from Config.FaultRate and
// Config.FaultSeed.
func (r *Runner) Resilience(w io.Writer) (ResilienceResult, error) {
	w = out(w)
	const (
		steps         = 1800 // 30 min at 1 req/s
		brownoutStart = 600 * time.Second
		brownoutEnd   = 900 * time.Second
	)
	brownout := resilience.Window{
		From: resilienceEpoch.Add(brownoutStart),
		To:   resilienceEpoch.Add(brownoutEnd),
	}
	rate := r.cfg.FaultRate
	seed := r.cfg.FaultSeed

	baseline := newResilienceStack(false, rate, seed, brownout, r.obsReg)
	resilient := newResilienceStack(true, rate, seed, brownout, r.obsReg)
	for i := 0; i < steps; i++ {
		baseline.step(i)
		resilient.step(i)
	}

	res := ResilienceResult{
		Requests:     steps,
		BaselineOK:   baseline.ok,
		ResilientOK:  resilient.ok,
		Retries:      resilient.inst.Retries.Value(),
		StaleServes:  resilient.edge.Obs.StaleServes.Value(),
		Shed:         resilient.edge.Obs.ShedMachine.Value() + resilient.edge.Obs.ShedHuman.Value(),
		BreakerOpens: resilient.breaker.Opens(),
	}
	res.BaselineAvailability = float64(res.BaselineOK) / float64(steps)
	res.ResilientAvailability = float64(res.ResilientOK) / float64(steps)

	fmt.Fprintln(w, "Availability under origin faults and a 5-minute brownout")
	fmt.Fprintf(w, "  %d requests per stack, steady-state fault rate %.1f%%, seed %d\n",
		steps, rate*100, seed)
	fmt.Fprintf(w, "  baseline:  %5d/%d 200s  availability %s\n", res.BaselineOK, steps, pct(res.BaselineAvailability))
	fmt.Fprintf(w, "  resilient: %5d/%d 200s  availability %s\n", res.ResilientOK, steps, pct(res.ResilientAvailability))
	fmt.Fprintf(w, "  recovery actions: %d retries, %d stale serves, %d shed, %d breaker opens\n",
		res.Retries, res.StaleServes, res.Shed, res.BreakerOpens)
	compareRow(w, "availability gain from resilience", "qualitative",
		pct(res.ResilientAvailability-res.BaselineAvailability))
	return res, nil
}
