package experiments

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/logfmt"
)

// encodeFrames writes recs in the binary format, returning the stream
// and each frame's [start, end) offsets.
func encodeFrames(t *testing.T, recs []logfmt.Record) ([]byte, [][2]int) {
	t.Helper()
	var buf bytes.Buffer
	w := logfmt.NewBinaryWriter(&buf)
	frames := make([][2]int, len(recs))
	prev := 5 // binary magic
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil { // flush to observe the frame end
			t.Fatal(err)
		}
		frames[i] = [2]int{prev, buf.Len()}
		prev = buf.Len()
	}
	return buf.Bytes(), frames
}

// corruptAndDecode smashes every strideth frame's trailing byte and
// decodes the stream tolerantly, returning the surviving records.
func corruptAndDecode(t *testing.T, recs []logfmt.Record, stride int) ([]logfmt.Record, ingest.Stats) {
	t.Helper()
	stream, frames := encodeFrames(t, recs)
	for i := stride - 1; i < len(frames); i += stride {
		stream[frames[i][1]-1] = 0xEE
	}
	tr := ingest.NewTolerantReader(logfmt.NewBinaryReader(bytes.NewReader(stream)),
		ingest.Options{MaxErrorRate: 0.05})
	var out []logfmt.Record
	if err := tr.ForEach(func(r *logfmt.Record) error {
		out = append(out, *r)
		return nil
	}); err != nil {
		t.Fatalf("tolerant decode: %v", err)
	}
	return out, tr.Stats()
}

func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

// TestToleranceCorruptStream runs Figure 1 and Table 2 over a stream
// with ~1% seeded corruption pushed through the tolerant ingest path
// and checks the results stay within a small tolerance of the
// clean-stream run.
func TestToleranceCorruptStream(t *testing.T) {
	r1 := runner()
	short, err := r1.ShortTermRecords()
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := r1.PatternRecords()
	if err != nil {
		t.Fatal(err)
	}
	fig1Clean, err := r1.Figure1(nil)
	if err != nil {
		t.Fatal(err)
	}
	t2Clean, err := r1.Table2(nil)
	if err != nil {
		t.Fatal(err)
	}

	shortTol, shortStats := corruptAndDecode(t, short, 100)
	patternTol, patternStats := corruptAndDecode(t, pattern, 100)
	if shortStats.Quarantined == 0 || patternStats.Quarantined == 0 {
		t.Fatalf("corruption not injected: %+v %+v", shortStats, patternStats)
	}

	r2 := NewRunner(r1.Config())
	r2.UseShortTermRecords(shortTol)
	r2.UsePatternRecords(patternTol)
	fig1Tol, err := r2.Figure1(nil)
	if err != nil {
		t.Fatal(err)
	}
	t2Tol, err := r2.Table2(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Figure 1's trend counters are seeded by config, not the stream.
	if !within(fig1Tol.EndRatio, fig1Clean.EndRatio, 0.01) ||
		!within(fig1Tol.SizeShrink, fig1Clean.SizeShrink, 0.01) {
		t.Errorf("Figure 1 diverged: %+v vs %+v", fig1Tol, fig1Clean)
	}
	// Table 2 loses exactly the quarantined ~1%; every reported shape
	// statistic stays within a few percent of the clean run.
	for _, cmp := range []struct {
		name       string
		got, want  float64
		tol        float64
	}{
		{"short records", float64(t2Tol.Short.Records()), float64(t2Clean.Short.Records()), 0.02},
		{"pattern records", float64(t2Tol.Pattern.Records()), float64(t2Clean.Pattern.Records()), 0.02},
		{"short domains", float64(t2Tol.Short.Domains()), float64(t2Clean.Short.Domains()), 0.05},
		{"pattern domains", float64(t2Tol.Pattern.Domains()), float64(t2Clean.Pattern.Domains()), 0.05},
		{"short clients", float64(t2Tol.Short.Clients()), float64(t2Clean.Short.Clients()), 0.05},
		{"short duration", t2Tol.Short.Duration().Seconds(), t2Clean.Short.Duration().Seconds(), 0.05},
		{"pattern duration", t2Tol.Pattern.Duration().Seconds(), t2Clean.Pattern.Duration().Seconds(), 0.05},
	} {
		if !within(cmp.got, cmp.want, cmp.tol) {
			t.Errorf("%s: tolerant %.0f vs clean %.0f exceeds %.0f%% tolerance",
				cmp.name, cmp.got, cmp.want, cmp.tol*100)
		}
	}
	if t2Tol.Short.Records() != t2Clean.Short.Records()-shortStats.Quarantined {
		t.Errorf("short records %d + quarantined %d != clean %d",
			t2Tol.Short.Records(), shortStats.Quarantined, t2Clean.Short.Records())
	}
}

// cancelAfterWriter cancels a context once a marker string flows
// through it, so a RunAll can be interrupted at a deterministic point.
type cancelAfterWriter struct {
	w      io.Writer
	marker string
	cancel context.CancelFunc
}

func (c *cancelAfterWriter) Write(p []byte) (int, error) {
	if strings.Contains(string(p), c.marker) {
		c.cancel()
	}
	return c.w.Write(p)
}

func TestRunAllContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sb strings.Builder
	w := &cancelAfterWriter{w: &sb, marker: "== Table 2 ==", cancel: cancel}
	rep, err := runner().RunAllContext(ctx, w)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled run must still return the partial report")
	}
	// The header is printed before the step runs, so Table 2 itself
	// completes; everything after is skipped.
	if got := rep.Completed(); got != 2 {
		t.Errorf("completed %d steps, want 2", got)
	}
	if rep.Steps[0].State != StepCompleted || rep.Steps[1].State != StepCompleted {
		t.Errorf("first two steps %v/%v, want completed", rep.Steps[0].State, rep.Steps[1].State)
	}
	for _, st := range rep.Steps[2:] {
		if st.State != StepSkipped {
			t.Errorf("step %q = %v, want skipped", st.Name, st.State)
		}
	}
	if rep.Figure1.EndRatio == 0 {
		t.Error("completed Figure 1 result missing from partial report")
	}
	var sum strings.Builder
	rep.WriteStepSummary(&sum)
	if !strings.Contains(sum.String(), "skipped") || !strings.Contains(sum.String(), "completed") {
		t.Errorf("step summary missing states:\n%s", sum.String())
	}
}

func TestRunAllStepsLedgerComplete(t *testing.T) {
	rep, err := runner().RunAll(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Completed(); got != len(rep.Steps) || got == 0 {
		t.Errorf("completed %d of %d steps", got, len(rep.Steps))
	}
}
