package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestInstrumentedRunner checks that an instrumented runner reports
// dataset generation through both the registry and the tracer.
func TestInstrumentedRunner(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.0004
	cfg.PatternTarget = 5_000
	cfg.PatternWindow = 30 * time.Minute
	r := NewRunner(cfg)

	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	r.Instrument(reg, tr)

	recs, err := r.ShortTermRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records generated")
	}
	if got := reg.Counter("synth_records_generated_total").Value(); got != int64(len(recs)) {
		t.Errorf("synth_records_generated_total = %d, want %d", got, len(recs))
	}

	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "synth short-term dataset" {
		t.Fatalf("spans = %+v, want one synth span", spans)
	}
	if spans[0].Records != int64(len(recs)) || spans[0].Bytes <= 0 {
		t.Errorf("span tallies = %+v", spans[0])
	}

	var b strings.Builder
	tr.WriteTable(&b)
	if !strings.Contains(b.String(), "synth short-term dataset") {
		t.Errorf("trace table missing stage:\n%s", b.String())
	}
}
