package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/livechar"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Live-characterization convergence budgets: how close the streaming
// sketches must land to batch ground truth computed over the same
// synthetic stream. The same numbers back the multi-process run in
// scripts/char-check.sh.
const (
	// LiveCharQuantileTol is the worst allowed relative error between a
	// streaming HDR quantile and the exact batch quantile. The sketch's
	// own bound is 1% (2 sigfigs); 5% leaves headroom for bucket-edge
	// rounding on small windows.
	LiveCharQuantileTol = 0.05
	// LiveCharTopOverlapMin is the minimum fraction of the exact top-10
	// objects the Space-Saving sketch must report.
	LiveCharTopOverlapMin = 0.8
)

// QuantilePair is one streaming-vs-batch quantile comparison.
type QuantilePair struct {
	Q      float64
	Stream int64
	Batch  int64
	RelErr float64
}

// LiveCharResult carries the streaming-convergence experiment: a
// synthetic stream with known size distribution, Zipf popularity, an
// injected rate period, and deterministic client flows is pushed
// through the live plane, and every streaming estimate is compared to
// batch ground truth over the identical events.
type LiveCharResult struct {
	Events int64

	// Response-size and inter-arrival quantiles, stream vs batch, with
	// the worst relative error across both.
	SizeQuantiles  []QuantilePair
	InterQuantiles []QuantilePair
	MaxRelErr      float64

	// TopOverlap is |streaming top-10 ∩ exact top-10| / 10.
	TopOverlap float64

	// Periodicity: the injected burst period and what the detector
	// found on the live rate bins.
	InjectedPeriodSec float64
	DetectedPeriodSec float64
	PeriodDetected    bool

	// Online prediction over the stream's flow clients.
	PredictHitRate      float64
	PredictObservations int64
	EntropyBits         float64

	// MergedConsistent: splitting the stream across two planes and
	// merging their snapshots reproduces the single-plane sketch state
	// (counts, sums, top keys).
	MergedConsistent bool
}

// liveCharBase anchors the synthetic stream's event time; any fixed
// instant works, determinism is what matters.
var liveCharBase = time.Date(2026, 5, 1, 0, 0, 0, 0, time.UTC)

// LiveChar runs the streaming-convergence experiment: §4's size and
// inter-arrival distributions, §5.1's periodicity, and §5.2's
// prediction, all estimated live by internal/livechar from one pass
// over a synthetic stream, then checked against exact batch answers.
func (r *Runner) LiveChar(w io.Writer) (LiveCharResult, error) {
	defer r.span("experiment.livechar").End()
	const (
		durationSec = 240
		burstEvery  = 15 // seconds — the injected period
		burstSize   = 40
		objects     = 500
		flowClients = 8
	)
	rng := stats.NewRNG(r.cfg.Seed + 77)
	zipf := stats.NewZipf(objects, 1.1)
	sizes := stats.LogNormal{Mu: 7.2, Sigma: 1.1} // median ~1.3 KB bodies

	// Deterministic flow clients: each cycles its own 6-URL sequence —
	// the predictable fraction of real app traffic.
	flows := make([][]string, flowClients)
	for c := range flows {
		seq := make([]string, 6)
		for j := range seq {
			seq[j] = fmt.Sprintf("http://app.example.com/flow%d/step%d", c, j)
		}
		flows[c] = seq
	}
	flowPos := make([]int, flowClients)

	var events []logfmt.Record
	for sec := 0; sec < durationSec; sec++ {
		base := liveCharBase.Add(time.Duration(sec) * time.Second)
		// Background: ~20 Zipf-popularity requests per second from a
		// rotating anonymous client pool.
		n := 15 + rng.Intn(10)
		for i := 0; i < n; i++ {
			events = append(events, logfmt.Record{
				Time:     base.Add(time.Duration(rng.Float64() * float64(time.Second))),
				ClientID: uint64(100 + rng.Intn(64)),
				Method:   "GET",
				URL:      fmt.Sprintf("http://api.example.com/obj/%d", zipf.Sample(rng)),
				Status:   200,
				Bytes:    int64(sizes.Sample(rng)) + 1,
			})
		}
		// Flow clients: 4 structured requests per second.
		for i := 0; i < 4; i++ {
			c := (sec*4 + i) % flowClients
			events = append(events, logfmt.Record{
				Time:     base.Add(time.Duration((float64(i) + rng.Float64()) * 250 * float64(time.Millisecond))),
				ClientID: uint64(c),
				Method:   "GET",
				URL:      flows[c][flowPos[c]%len(flows[c])],
				Status:   200,
				Bytes:    int64(sizes.Sample(rng)) + 1,
			})
			flowPos[c]++
		}
		// The injected periodicity: a polling burst every burstEvery s.
		if sec%burstEvery == 0 {
			for i := 0; i < burstSize; i++ {
				events = append(events, logfmt.Record{
					Time:     base.Add(time.Duration(i) * 2 * time.Millisecond),
					ClientID: 99,
					Method:   "GET",
					URL:      "http://poll.example.com/feed",
					Status:   200,
					Bytes:    2048,
				})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })

	// One plane sees everything; two more see an interleaved split, to
	// check the fleet-merge path against the single-plane reference.
	cfg := livechar.Config{
		Window: 2 * durationSec * time.Second, // whole stream in one window
		Bin:    time.Second,
		Bins:   durationSec + 60,
		TopK:   10,
		Seed:   r.cfg.Seed,
	}
	full := livechar.New(cfg)
	nodeCfg := cfg
	nodeCfg.Node = "a"
	half1 := livechar.New(nodeCfg)
	nodeCfg.Node = "b"
	half2 := livechar.New(nodeCfg)
	for i := range events {
		full.Observe(&events[i])
		if i%2 == 0 {
			half1.Observe(&events[i])
		} else {
			half2.Observe(&events[i])
		}
	}
	snap := full.Snapshot()
	if snap.Current == nil {
		return LiveCharResult{}, fmt.Errorf("livechar experiment: no current window after %d events", len(events))
	}

	// Batch ground truth from the identical events.
	sizeSamples := make([]int64, len(events))
	urlCounts := map[string]int64{}
	for i := range events {
		sizeSamples[i] = events[i].Bytes
		urlCounts[events[i].URL]++
	}
	interSamples := make([]int64, 0, len(events)-1)
	for i := 1; i < len(events); i++ {
		interSamples = append(interSamples, events[i].Time.Sub(events[i-1].Time).Nanoseconds())
	}

	res := LiveCharResult{
		Events:              snap.Events,
		InjectedPeriodSec:   burstEvery,
		PredictHitRate:      snap.Predict.HitRate,
		PredictObservations: snap.Predict.Observations,
		EntropyBits:         snap.Predict.EntropyBits,
	}

	for _, q := range []float64{0.50, 0.90, 0.99} {
		res.SizeQuantiles = append(res.SizeQuantiles,
			quantilePair(q, snap.Current.SizeQuantiles, sizeSamples))
		res.InterQuantiles = append(res.InterQuantiles,
			quantilePair(q, snap.Current.InterQuantiles, interSamples))
	}
	for _, qp := range append(append([]QuantilePair{}, res.SizeQuantiles...), res.InterQuantiles...) {
		if qp.RelErr > res.MaxRelErr {
			res.MaxRelErr = qp.RelErr
		}
	}

	// Top-10 overlap against exact counts.
	type kc struct {
		k string
		c int64
	}
	exact := make([]kc, 0, len(urlCounts))
	for k, c := range urlCounts {
		exact = append(exact, kc{k, c})
	}
	sort.Slice(exact, func(i, j int) bool {
		if exact[i].c != exact[j].c {
			return exact[i].c > exact[j].c
		}
		return exact[i].k < exact[j].k
	})
	exactTop := map[string]bool{}
	for i := 0; i < 10 && i < len(exact); i++ {
		exactTop[exact[i].k] = true
	}
	hits := 0
	for _, hh := range snap.Current.TopObjects {
		if exactTop[hh.Key] {
			hits++
		}
	}
	res.TopOverlap = float64(hits) / float64(len(exactTop))

	if len(snap.Periods) > 0 {
		res.DetectedPeriodSec = snap.Periods[0].Seconds
		res.PeriodDetected = math.Abs(res.DetectedPeriodSec-res.InjectedPeriodSec) <= 1
	}

	// Merge path: the two half-planes must reproduce the full plane.
	merged, err := livechar.MergeSnapshots("fleet", r.cfg.Seed, half1.Snapshot(), half2.Snapshot())
	if err != nil {
		return res, fmt.Errorf("livechar experiment: merging halves: %w", err)
	}
	res.MergedConsistent = merged.Current != nil &&
		merged.Current.SizeHDR.Count == snap.Current.SizeHDR.Count &&
		merged.Current.SizeHDR.Sum == snap.Current.SizeHDR.Sum &&
		sameTopKeys(merged.Current.TopObjects, snap.Current.TopObjects, 5)

	fmt.Fprintf(w, "live characterization convergence (%d events, seed %d)\n", res.Events, r.cfg.Seed)
	fmt.Fprintf(w, "  %-22s %12s %12s %8s\n", "quantile", "stream", "batch", "rel err")
	for _, qp := range res.SizeQuantiles {
		fmt.Fprintf(w, "  size p%-19.0f %12d %12d %7.2f%%\n", qp.Q*100, qp.Stream, qp.Batch, qp.RelErr*100)
	}
	for _, qp := range res.InterQuantiles {
		fmt.Fprintf(w, "  interarrival p%-11.0f %12d %12d %7.2f%%\n", qp.Q*100, qp.Stream, qp.Batch, qp.RelErr*100)
	}
	fmt.Fprintf(w, "  top-10 overlap: %.0f%%   injected period %gs -> detected %gs (ok=%v)\n",
		res.TopOverlap*100, res.InjectedPeriodSec, res.DetectedPeriodSec, res.PeriodDetected)
	fmt.Fprintf(w, "  predict hit rate %.2f over %d, entropy %.2f bits, fleet merge consistent=%v\n",
		res.PredictHitRate, res.PredictObservations, res.EntropyBits, res.MergedConsistent)
	return res, nil
}

// quantilePair looks up quantile q in the streaming percentile rows and
// compares it to the exact batch quantile over samples (the same
// ceil(q*n)-th order statistic the HDR sketch reports).
func quantilePair(q float64, rows []obs.HDRPercentileRow, samples []int64) QuantilePair {
	qp := QuantilePair{Q: q}
	for _, row := range rows {
		if row.Quantile == q {
			qp.Stream = row.Value
			break
		}
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) > 0 {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		qp.Batch = sorted[idx]
	}
	if qp.Batch != 0 {
		qp.RelErr = math.Abs(float64(qp.Stream)-float64(qp.Batch)) / float64(qp.Batch)
	}
	return qp
}

func sameTopKeys(a, b []livechar.HeavyHitter, k int) bool {
	if len(a) < k || len(b) < k {
		return false
	}
	as := map[string]bool{}
	for i := 0; i < k; i++ {
		as[a[i].Key] = true
	}
	for i := 0; i < k; i++ {
		if !as[b[i].Key] {
			return false
		}
	}
	return true
}
