package experiments

import (
	"fmt"
	"io"

	"repro/internal/logfmt"
	"repro/internal/ngram"
	"repro/internal/prefetch"
	"repro/internal/stats"
)

// PrefetchResult carries the §5.2-implication experiment: replaying the
// pattern dataset through the simulated edge with and without
// prediction-driven prefetching.
type PrefetchResult struct {
	Comparison prefetch.Comparison
	// BaselineHitRatio and PrefetchHitRatio are cache hit ratios over
	// cacheable requests.
	BaselineHitRatio float64
	PrefetchHitRatio float64
	// Waste is the share of prefetches that never produced a hit.
	Waste float64
	// KSweep maps prefetch fan-out K to (hit ratio, waste).
	KSweep map[int][2]float64
	// Push is the server-push alternative (§5.2 mentions HTTP Server
	// Push explicitly): the share of requests a correct push eliminates.
	Push prefetch.PushResult
}

// Prefetch runs the prefetching experiment: an ngram model is trained on
// the training clients, then the whole stream replays against identical
// edge pools with and without prefetching. The paper suggests this
// optimization; the experiment quantifies it on the simulated edge.
func (r *Runner) Prefetch(w io.Writer) (PrefetchResult, error) {
	w = out(w)
	recs, err := r.PatternRecords()
	if err != nil {
		return PrefetchResult{}, err
	}
	seq := ngram.NewSequencer()
	seq.Filter = logfmt.JSONOnly
	for i := range recs {
		seq.Observe(&recs[i])
	}
	model, _ := seq.TrainAndEvaluate(1, nil)

	replayJSON := func(fn func(*logfmt.Record)) {
		for i := range recs {
			if recs[i].IsJSON() {
				fn(&recs[i])
			}
		}
	}

	cfg := prefetch.DefaultConfig()
	cmp := prefetch.Compare(model, cfg, replayJSON)
	res := PrefetchResult{
		Comparison:       cmp,
		BaselineHitRatio: cmp.Baseline.HitRatio(),
		PrefetchHitRatio: cmp.Prefetch.HitRatio(),
		Waste:            cmp.Prefetch.WasteRatio(),
		KSweep:           map[int][2]float64{},
	}

	fmt.Fprintln(w, "Prefetching (§5.2 implication): edge hit ratio with ngram prefetch")
	var tb stats.Table
	tb.SetHeader("Configuration", "Hit ratio", "Prefetch waste")
	tb.AddRowf("baseline (no prefetch)", fmt.Sprintf("%.3f", res.BaselineHitRatio), "-")
	tb.AddRowf("prefetch K=1", fmt.Sprintf("%.3f", res.PrefetchHitRatio), fmt.Sprintf("%.2f", res.Waste))
	for _, k := range []int{2, 5} {
		kcfg := cfg
		kcfg.K = k
		kcmp := prefetch.Compare(model, kcfg, replayJSON)
		hr, waste := kcmp.Prefetch.HitRatio(), kcmp.Prefetch.WasteRatio()
		res.KSweep[k] = [2]float64{hr, waste}
		tb.AddRowf(fmt.Sprintf("prefetch K=%d", k), fmt.Sprintf("%.3f", hr), fmt.Sprintf("%.2f", waste))
	}
	fmt.Fprint(w, tb.String())
	compareRow(w, "prefetching improves cacheable hit ratio", "qualitative",
		fmt.Sprintf("+%.1f points", (res.PrefetchHitRatio-res.BaselineHitRatio)*100))

	// Server push: the client-side variant of the same prediction.
	push := prefetch.NewPushSimulator(model)
	replayJSON(func(r *logfmt.Record) { push.Observe(r) })
	res.Push = push.Result()
	compareRow(w, "server push eliminates requests", "qualitative",
		fmt.Sprintf("%s of GETs (%d pushes, %.0f%% of pushed bytes used)",
			pct(res.Push.EliminationRate()), res.Push.Pushes,
			100*float64(res.Push.UsedBytes)/float64(max64(res.Push.PushedBytes, 1))))
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
