package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testRunner uses a small but pattern-bearing configuration shared
// across tests (datasets generate once).
var (
	runnerOnce sync.Once
	testRunner *Runner
)

func runner() *Runner {
	runnerOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Scale = 0.001
		cfg.PatternTarget = 60_000
		cfg.PatternWindow = time.Hour
		cfg.Permutations = 30
		cfg.SampleBin = 2 * time.Second
		testRunner = NewRunner(cfg)
	})
	return testRunner
}

func TestFigure1Shape(t *testing.T) {
	var sb strings.Builder
	res, err := runner().Figure1(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.EndRatio < 3.5 {
		t.Errorf("end ratio = %.2f, want > 4-ish", res.EndRatio)
	}
	if res.StartRatio > 1.2 {
		t.Errorf("start ratio = %.2f, want < ~1", res.StartRatio)
	}
	if res.SizeShrink < 0.18 || res.SizeShrink > 0.38 {
		t.Errorf("size shrink = %.2f, want ~0.28", res.SizeShrink)
	}
	if !strings.Contains(sb.String(), "Figure 1") {
		t.Error("output missing header")
	}
}

func TestTable2Shape(t *testing.T) {
	var sb strings.Builder
	res, err := runner().Table2(&sb)
	if err != nil {
		t.Fatal(err)
	}
	// Short is wide (more domains) and short; pattern is narrow and long.
	if res.Short.Domains() <= res.Pattern.Domains() {
		t.Errorf("short domains %d should exceed long domains %d",
			res.Short.Domains(), res.Pattern.Domains())
	}
	if res.Short.Duration() >= res.Pattern.Duration() {
		t.Errorf("short duration %v should be below long %v",
			res.Short.Duration(), res.Pattern.Duration())
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := runner().Figure3(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ordering: mobile > unknown > embedded > desktop.
	if !(res.MobileShare > res.UnknownShare && res.UnknownShare > res.EmbeddedShare &&
		res.EmbeddedShare > res.DesktopShare) {
		t.Errorf("device ordering broken: %.2f %.2f %.2f %.2f",
			res.MobileShare, res.UnknownShare, res.EmbeddedShare, res.DesktopShare)
	}
	if res.NonBrowser < 0.8 {
		t.Errorf("non-browser = %.2f, want ~0.88", res.NonBrowser)
	}
	if res.GETShare < 0.78 || res.GETShare > 0.9 {
		t.Errorf("GET share = %.2f", res.GETShare)
	}
	if res.POSTOfRest < 0.9 {
		t.Errorf("POST of rest = %.2f", res.POSTOfRest)
	}
	if res.MedianSmaller <= 0 {
		t.Errorf("JSON median not smaller than HTML: %.2f", res.MedianSmaller)
	}
	if res.P75Smaller <= res.MedianSmaller {
		t.Errorf("p75 gap %.2f should exceed median gap %.2f", res.P75Smaller, res.MedianSmaller)
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := runner().Figure4(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.UncacheableShare < 0.4 || res.UncacheableShare > 0.7 {
		t.Errorf("uncacheable = %.2f, want ~0.55", res.UncacheableShare)
	}
	if res.NeverShare < 0.3 || res.NeverShare > 0.7 {
		t.Errorf("never share = %.2f, want ~0.5", res.NeverShare)
	}
	news := res.CacheableByCategory["News/Media"]
	fin := res.CacheableByCategory["Financial Service"]
	if news <= fin {
		t.Errorf("News cacheable %.2f should exceed Financial %.2f", news, fin)
	}
	if res.Heatmap.Rows() != 11 {
		t.Errorf("heatmap rows = %d, want 11 categories", res.Heatmap.Rows())
	}
}

func TestPeriodicityShape(t *testing.T) {
	res, err := runner().Figure5(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeriodicObjects == 0 {
		t.Fatal("no periodic objects detected")
	}
	if res.PeriodicShare < 0.01 || res.PeriodicShare > 0.25 {
		t.Errorf("periodic share = %.3f, want single-digit percent", res.PeriodicShare)
	}
	if res.UploadShare < 0.4 {
		t.Errorf("periodic upload share = %.2f, want high (~0.78)", res.UploadShare)
	}
	if res.Histogram.Total() == 0 {
		t.Error("empty period histogram")
	}
	// Figure 6 reuses the analysis.
	res6, err := runner().Figure6(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res6 != res {
		t.Error("Figure6 should reuse the periodicity analysis")
	}
	if res.MajorityShare < 0 || res.MajorityShare > 1 {
		t.Errorf("majority share = %v", res.MajorityShare)
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := runner().Table3(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range table3Ks {
		if res.Actual[k] <= 0 || res.Actual[k] > 1 {
			t.Errorf("actual[%d] = %v", k, res.Actual[k])
		}
	}
	// Monotone in K.
	if !(res.Actual[1] < res.Actual[5] && res.Actual[5] <= res.Actual[10]) {
		t.Errorf("actual accuracies not increasing: %v", res.Actual)
	}
	if !(res.Clustered[1] < res.Clustered[5] && res.Clustered[5] <= res.Clustered[10]) {
		t.Errorf("clustered accuracies not increasing: %v", res.Clustered)
	}
	// Clustering helps at every K.
	for _, k := range table3Ks {
		if res.Clustered[k] <= res.Actual[k] {
			t.Errorf("K=%d: clustered %v not above actual %v", k, res.Clustered[k], res.Actual[k])
		}
	}
	if res.ClusteredVocab >= res.ActualVocab {
		t.Errorf("clustering did not shrink vocab: %d vs %d", res.ClusteredVocab, res.ActualVocab)
	}
	// Rough magnitude: top-1 actual around the paper's .45.
	if res.Actual[1] < 0.2 || res.Actual[1] > 0.75 {
		t.Errorf("actual top-1 = %v, want ~0.45", res.Actual[1])
	}
}

func TestPrefetchShape(t *testing.T) {
	res, err := runner().Prefetch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefetchHitRatio <= res.BaselineHitRatio {
		t.Errorf("prefetch %.3f not above baseline %.3f",
			res.PrefetchHitRatio, res.BaselineHitRatio)
	}
	if res.Waste < 0 || res.Waste > 1 {
		t.Errorf("waste = %v", res.Waste)
	}
	if len(res.KSweep) != 2 {
		t.Errorf("K sweep entries = %d", len(res.KSweep))
	}
	if res.Push.Requests == 0 || res.Push.EliminationRate() <= 0 {
		t.Errorf("push result empty: %+v", res.Push)
	}
	if res.Push.EliminationRate() > 0.9 {
		t.Errorf("push elimination %.2f implausibly high", res.Push.EliminationRate())
	}
}

func TestDeprioritizeShape(t *testing.T) {
	res, err := runner().Deprioritize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MachineShare <= 0 || res.MachineShare > 0.3 {
		t.Errorf("machine share = %.3f, want small positive", res.MachineShare)
	}
	if res.Priority.Human.P95 > res.FIFO.Human.P95 {
		t.Errorf("priority human p95 %.4f exceeds FIFO %.4f",
			res.Priority.Human.P95, res.FIFO.Human.P95)
	}
	if res.Priority.Machine.Wait.Mean() < res.FIFO.Machine.Wait.Mean() {
		t.Errorf("machine traffic should wait longer under priority: %.4f vs %.4f",
			res.Priority.Machine.Wait.Mean(), res.FIFO.Machine.Wait.Mean())
	}
	// Same requests served either way.
	if res.Priority.Human.Requests != res.FIFO.Human.Requests {
		t.Error("class counts differ between disciplines")
	}
}

func TestAnomalyShape(t *testing.T) {
	res, err := runner().Anomaly(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestInjected == 0 || res.PeriodInjected == 0 {
		t.Fatalf("no anomalies injected: %+v", res)
	}
	if res.RequestRecall < 0.7 {
		t.Errorf("request recall = %.2f, want high (foreign URLs score 0)", res.RequestRecall)
	}
	if res.RequestPrecision < 0.3 {
		t.Errorf("request precision = %.2f, too many false alarms", res.RequestPrecision)
	}
	if res.PeriodRecall < 0.8 {
		t.Errorf("period recall = %.2f, bursts should be caught", res.PeriodRecall)
	}
	if res.PeriodPrecision < 0.5 {
		t.Errorf("period precision = %.2f", res.PeriodPrecision)
	}
}

func TestRegionalShape(t *testing.T) {
	res, err := runner().Regional(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PeakHour) != 3 {
		t.Fatalf("vantages = %d", len(res.PeakHour))
	}
	// Seattle (-8h) and Tokyo (+9h) are 17 hours apart; their UTC peaks
	// must differ substantially.
	diff := (res.PeakHour["seattle"] - res.PeakHour["tokyo"] + 24) % 24
	if diff > 12 {
		diff = 24 - diff
	}
	if diff < 3 {
		t.Errorf("seattle %02d and tokyo %02d peaks too close",
			res.PeakHour["seattle"], res.PeakHour["tokyo"])
	}
	// Structural shares are vantage-independent: all vantages must agree
	// closely even if the tiny-scale absolute value drifts.
	for label, share := range res.JSONShare {
		if share < 0.45 || share > 0.9 {
			t.Errorf("%s JSON share = %.2f", label, share)
		}
		if diff := share - res.JSONShare["seattle"]; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s share %.2f diverges from seattle %.2f",
				label, share, res.JSONShare["seattle"])
		}
	}
}

func TestRunAllProducesReport(t *testing.T) {
	var sb strings.Builder
	rep, err := runner().RunAll(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Periods == nil {
		t.Fatal("missing periodicity result")
	}
	outStr := sb.String()
	for _, want := range []string{"Figure 1", "Table 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "Table 3", "Prefetching", "Deprioritizing"} {
		if !strings.Contains(outStr, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	rep, err := runner().RunAll(&sb)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCSV(dir, rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure1.csv", "figure3.csv", "figure4.csv",
		"figure5.csv", "figure6.csv", "table3.csv", "prefetch.csv", "deprioritize.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Errorf("%s has only %d lines", name, lines)
		}
	}
	if err := WriteCSV(dir, nil); err == nil {
		t.Error("nil report accepted")
	}
}

func TestConfigSanitize(t *testing.T) {
	r := NewRunner(Config{})
	c := r.Config()
	if c.Scale <= 0 || c.PatternTarget <= 0 || c.Permutations <= 0 ||
		c.PatternWindow <= 0 || c.SampleBin <= 0 {
		t.Errorf("unsanitized config: %+v", c)
	}
}
