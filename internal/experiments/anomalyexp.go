package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/anomaly"
	"repro/internal/flows"
	"repro/internal/logfmt"
	"repro/internal/ngram"
	"repro/internal/stats"
)

// AnomalyResult carries the evaluation of the two anomaly detectors the
// paper sketches (§5.1 and §5.2): known anomalies are injected into test
// client flows and the detectors' precision and recall are measured.
type AnomalyResult struct {
	// Request-level detector (ngram likelihood).
	RequestPrecision, RequestRecall float64
	RequestInjected, RequestFlagged int
	// Period-level detector (off-period arrivals).
	PeriodPrecision, PeriodRecall float64
	PeriodInjected, PeriodFlagged int
}

// Anomaly evaluates both detectors on the pattern dataset. For the
// request detector, a foreign URL is injected into each test client's
// flow (an exfiltration-style request the application never makes). For
// the period detector, bursts are injected into a synthetic poller's
// arrival sequence at a known rate.
func (r *Runner) Anomaly(w io.Writer) (AnomalyResult, error) {
	w = out(w)
	recs, err := r.PatternRecords()
	if err != nil {
		return AnomalyResult{}, err
	}
	var res AnomalyResult

	// ---- request-level detector ----
	// The model trains on the clustered vocabulary, per the paper's own
	// suggestion: raw personalized URLs would be unseen by construction
	// and all alarm. The detector clusters incoming requests itself, so
	// the replayed test flows use raw URLs. Both sequencers split
	// clients identically (the split hashes the client key).
	clustered := ngram.NewSequencer()
	clustered.Filter = logfmt.JSONOnly
	clustered.Clustered = true
	raw := ngram.NewSequencer()
	raw.Filter = logfmt.JSONOnly
	for i := range recs {
		clustered.Observe(&recs[i])
		raw.Observe(&recs[i])
	}
	train, _ := clustered.Split()
	_, test := raw.Split()
	model := ngram.NewModel(1)
	for _, s := range train {
		model.Train(s)
	}
	det := anomaly.NewRequestDetector(model)
	det.Clustered = true

	rng := stats.NewRNG(r.cfg.Seed + 99)
	var tp, fp, fn int
	now := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	for ci, flow := range test {
		if len(flow) < det.MinHistory+2 {
			continue
		}
		// Inject one foreign URL at a random position past the warm-up.
		injectAt := det.MinHistory + 1 + rng.Intn(len(flow)-det.MinHistory-1)
		clientID := uint64(1_000_000 + ci)
		for i, url := range flow {
			if i == injectAt {
				odd := logfmt.Record{
					Time: now, ClientID: clientID, Method: "GET",
					URL:       fmt.Sprintf("https://exfil-%d.evil.example.com/x", ci),
					UserAgent: "App/1.0", MIMEType: "application/json",
					Status: 200, Bytes: 64, Cache: logfmt.CacheUncacheable,
				}
				v := det.Observe(&odd)
				if v.Anomalous {
					tp++
				} else {
					fn++
				}
				res.RequestInjected++
			}
			rec := logfmt.Record{
				Time: now, ClientID: clientID, Method: "GET", URL: url,
				UserAgent: "App/1.0", MIMEType: "application/json",
				Status: 200, Bytes: 100, Cache: logfmt.CacheHit,
			}
			v := det.Observe(&rec)
			if v.Anomalous {
				fp++
			}
			now = now.Add(time.Second)
		}
	}
	res.RequestFlagged = tp + fp
	if res.RequestFlagged > 0 {
		res.RequestPrecision = float64(tp) / float64(res.RequestFlagged)
	}
	if res.RequestInjected > 0 {
		res.RequestRecall = float64(tp) / float64(res.RequestInjected)
	}

	// ---- period-level detector ----
	const period = 30 * time.Second
	pdet := anomaly.NewPeriodDetector(period)
	client := flows.ClientKey{ClientID: 42}
	at := now
	var ptp, pfp, pfn int
	for i := 0; i < 400; i++ {
		burst := i > 0 && rng.Bool(0.05)
		if burst {
			at = at.Add(3 * time.Second) // far off the 30 s period
			res.PeriodInjected++
		} else {
			jitter := time.Duration((rng.Float64() - 0.5) * float64(2*time.Second))
			at = at.Add(period + jitter)
		}
		v := pdet.Observe(client, at)
		switch {
		case burst && v.Anomalous:
			ptp++
		case burst && !v.Anomalous:
			pfn++
		case !burst && v.Anomalous:
			pfp++
		}
	}
	res.PeriodFlagged = ptp + pfp
	if res.PeriodFlagged > 0 {
		res.PeriodPrecision = float64(ptp) / float64(res.PeriodFlagged)
	}
	if res.PeriodInjected > 0 {
		res.PeriodRecall = float64(ptp) / float64(res.PeriodInjected)
	}
	_ = pfn

	fmt.Fprintln(w, "Anomaly detection (§5 applications): injected-anomaly evaluation")
	var tb stats.Table
	tb.SetHeader("Detector", "Injected", "Flagged", "Precision", "Recall")
	tb.AddRowf("ngram request likelihood", res.RequestInjected, res.RequestFlagged,
		fmt.Sprintf("%.2f", res.RequestPrecision), fmt.Sprintf("%.2f", res.RequestRecall))
	tb.AddRowf("period deviation", res.PeriodInjected, res.PeriodFlagged,
		fmt.Sprintf("%.2f", res.PeriodPrecision), fmt.Sprintf("%.2f", res.PeriodRecall))
	fmt.Fprint(w, tb.String())
	return res, nil
}
