package experiments

import (
	"io"
	"runtime"
	"testing"
)

// benchConfig is deliberately tiny: the benchmark's job is to expose
// the sequential-vs-parallel wall-clock ratio (benchreport derives
// runall_speedup from these two), not to stress the analyses.
func benchConfig() Config {
	cfg := smallConfig()
	cfg.PatternTarget = 30_000
	cfg.Permutations = 20
	return cfg
}

func benchRunAll(b *testing.B, cfg Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration so dataset generation — the cost
		// the shards and the scheduler's resource phase attack — is
		// measured, not memoized away.
		rep, err := NewRunner(cfg).RunAll(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed() != len(rep.Steps) {
			b.Fatalf("completed %d of %d steps", rep.Completed(), len(rep.Steps))
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) {
	benchRunAll(b, benchConfig())
}

func BenchmarkRunAllParallel(b *testing.B) {
	cfg := benchConfig()
	cfg.Jobs = runtime.GOMAXPROCS(0)
	if cfg.Jobs < 2 {
		cfg.Jobs = 2
	}
	benchRunAll(b, cfg)
}

func BenchmarkRunAllParallelSharded(b *testing.B) {
	cfg := benchConfig()
	cfg.Jobs = runtime.GOMAXPROCS(0)
	if cfg.Jobs < 2 {
		cfg.Jobs = 2
	}
	cfg.Shards = runtime.GOMAXPROCS(0)
	benchRunAll(b, cfg)
}
