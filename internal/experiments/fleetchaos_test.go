package experiments

import (
	"io"
	"testing"
	"time"
)

// TestFleetChaosScaled runs the fleet-chaos scenario at reduced scale:
// a kill/rejoin cycle compressed into ~2.5 s per run. The assertions
// are the acceptance criteria, just with the clock shrunk — the full-
// size variant runs under `make chaos-check`.
func TestFleetChaosScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("live-HTTP fleet scenario; skipped with -short")
	}
	r := NewRunner(DefaultConfig())
	res, err := r.fleetChaos(io.Discard, fleetChaosParams{
		nodes:    3,
		rate:     200,
		duration: 2500 * time.Millisecond,
		warmup:   200 * time.Millisecond,
		killAt:   600 * time.Millisecond,
		rejoinAt: 1300 * time.Millisecond,
		settleAt: 1900 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fleetChaos: %v", err)
	}
	if res.ErrorRate > FleetChaosErrBudget {
		t.Errorf("failover-on error rate %.4f exceeds budget %.2f", res.ErrorRate, FleetChaosErrBudget)
	}
	if res.P99 > FleetChaosP99SLO {
		t.Errorf("intended p99 %s exceeds SLO %s", res.P99, FleetChaosP99SLO)
	}
	if !res.Recovered {
		t.Errorf("hit ratio did not recover: pre %.3f settled %.3f", res.PreFaultHitRatio, res.SettledHitRatio)
	}
	if !res.BaselineViolates {
		t.Errorf("negative control passed the budget (%.4f): the gate tests nothing", res.BaselineErrorRate)
	}
	if len(res.PerNode) < 2 {
		t.Errorf("per-node breakdown too thin: %v", res.PerNode)
	}
	if res.Measured == 0 {
		t.Error("no measured requests")
	}
}
