package experiments

import (
	"fmt"
	"io"

	"repro/internal/logfmt"
	"repro/internal/stats"
)

// Table2Result summarizes the generated datasets like the paper's
// Table 2 (dataset inventory).
type Table2Result struct {
	Short, Pattern *logfmt.DatasetSummary
}

// Table2 regenerates Table 2: record count, duration, and distinct
// domains of each dataset. The generated datasets are scaled-down
// stand-ins; the row shape (wide-short vs narrow-long) is what carries.
func (r *Runner) Table2(w io.Writer) (Table2Result, error) {
	w = out(w)
	short, err := r.ShortTermRecords()
	if err != nil {
		return Table2Result{}, err
	}
	pattern, err := r.PatternRecords()
	if err != nil {
		return Table2Result{}, err
	}
	res := Table2Result{
		Short:   logfmt.NewDatasetSummary("Short-term"),
		Pattern: logfmt.NewDatasetSummary("Long-term"),
	}
	for i := range short {
		res.Short.Observe(&short[i])
	}
	for i := range pattern {
		res.Pattern.Observe(&pattern[i])
	}

	fmt.Fprintln(w, "Table 2: Summary of our datasets (scaled)")
	var tb stats.Table
	tb.SetHeader("Dataset", "# of Logs", "Duration", "# of Domains", "# of Clients")
	for _, d := range []*logfmt.DatasetSummary{res.Short, res.Pattern} {
		tb.AddRowf(d.Name, d.Records(), d.Duration().Round(1e9), d.Domains(), d.Clients())
	}
	fmt.Fprint(w, tb.String())
	compareRow(w, "short-term shape", "25M logs / 10 mins / ~5K domains",
		fmt.Sprintf("%d logs / %s / %d domains (scale %g)",
			res.Short.Records(), res.Short.Duration().Round(1e9), res.Short.Domains(), r.cfg.Scale))
	compareRow(w, "long-term shape", "10M logs / 24 hrs / ~170 domains",
		fmt.Sprintf("%d logs / %s / %d domains",
			res.Pattern.Records(), res.Pattern.Duration().Round(1e9), res.Pattern.Domains()))
	return res, nil
}
