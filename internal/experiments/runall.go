package experiments

import (
	"fmt"
	"io"
)

// Report holds every experiment's structured result.
type Report struct {
	Figure1      Figure1Result
	Table2       Table2Result
	Figure3      Figure3Result
	Figure4      Figure4Result
	Periods      *PeriodicityResult
	Table3       Table3Result
	Prefetch     PrefetchResult
	Deprioritize DeprioritizeResult
	Anomaly      AnomalyResult
	Regional     RegionalResult
}

// RunAll executes every experiment in paper order, writing the formatted
// tables and figures to w.
func (r *Runner) RunAll(w io.Writer) (*Report, error) {
	w = out(w)
	var rep Report
	var err error

	section := func(name string) {
		fmt.Fprintf(w, "\n== %s ==\n", name)
	}

	section("Figure 1")
	if rep.Figure1, err = r.Figure1(w); err != nil {
		return nil, fmt.Errorf("figure 1: %w", err)
	}
	section("Table 2")
	if rep.Table2, err = r.Table2(w); err != nil {
		return nil, fmt.Errorf("table 2: %w", err)
	}
	section("Figure 3 and §4 request/response types")
	if rep.Figure3, err = r.Figure3(w); err != nil {
		return nil, fmt.Errorf("figure 3: %w", err)
	}
	section("Figure 4 and §4 cacheability")
	if rep.Figure4, err = r.Figure4(w); err != nil {
		return nil, fmt.Errorf("figure 4: %w", err)
	}
	section("Figure 5 and §5.1 periodicity")
	if rep.Periods, err = r.Figure5(w); err != nil {
		return nil, fmt.Errorf("figure 5: %w", err)
	}
	section("Figure 6")
	if _, err = r.Figure6(w); err != nil {
		return nil, fmt.Errorf("figure 6: %w", err)
	}
	section("Table 3 and §5.2 prediction")
	if rep.Table3, err = r.Table3(w); err != nil {
		return nil, fmt.Errorf("table 3: %w", err)
	}
	section("Prefetch simulation (§5.2 implication)")
	if rep.Prefetch, err = r.Prefetch(w); err != nil {
		return nil, fmt.Errorf("prefetch: %w", err)
	}
	section("Deprioritization (§7 implication)")
	if rep.Deprioritize, err = r.Deprioritize(w); err != nil {
		return nil, fmt.Errorf("deprioritize: %w", err)
	}
	section("Anomaly detection (§5 applications)")
	if rep.Anomaly, err = r.Anomaly(w); err != nil {
		return nil, fmt.Errorf("anomaly: %w", err)
	}
	section("Regional vantages (§7 limitation)")
	if rep.Regional, err = r.Regional(w); err != nil {
		return nil, fmt.Errorf("regional: %w", err)
	}
	return &rep, nil
}
