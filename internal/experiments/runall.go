package experiments

import (
	"fmt"
	"io"
)

// Report holds every experiment's structured result.
type Report struct {
	Figure1      Figure1Result
	Table2       Table2Result
	Figure3      Figure3Result
	Figure4      Figure4Result
	Periods      *PeriodicityResult
	Table3       Table3Result
	Prefetch     PrefetchResult
	Deprioritize DeprioritizeResult
	Anomaly      AnomalyResult
	Regional     RegionalResult
	Resilience   ResilienceResult
}

// RunAll executes every experiment in paper order, writing the formatted
// tables and figures to w. When the runner is instrumented (see
// Instrument), each figure/table runs inside its own tracer span, so a
// -trace run prints where the wall time went.
func (r *Runner) RunAll(w io.Writer) (*Report, error) {
	w = out(w)
	var rep Report

	steps := []struct {
		title string // section heading and span name
		errAs string // error-wrapping label
		fn    func(io.Writer) error
	}{
		{"Figure 1", "figure 1", func(w io.Writer) (err error) {
			rep.Figure1, err = r.Figure1(w)
			return
		}},
		{"Table 2", "table 2", func(w io.Writer) (err error) {
			rep.Table2, err = r.Table2(w)
			return
		}},
		{"Figure 3 and §4 request/response types", "figure 3", func(w io.Writer) (err error) {
			rep.Figure3, err = r.Figure3(w)
			return
		}},
		{"Figure 4 and §4 cacheability", "figure 4", func(w io.Writer) (err error) {
			rep.Figure4, err = r.Figure4(w)
			return
		}},
		{"Figure 5 and §5.1 periodicity", "figure 5", func(w io.Writer) (err error) {
			rep.Periods, err = r.Figure5(w)
			return
		}},
		{"Figure 6", "figure 6", func(w io.Writer) (err error) {
			_, err = r.Figure6(w)
			return
		}},
		{"Table 3 and §5.2 prediction", "table 3", func(w io.Writer) (err error) {
			rep.Table3, err = r.Table3(w)
			return
		}},
		{"Prefetch simulation (§5.2 implication)", "prefetch", func(w io.Writer) (err error) {
			rep.Prefetch, err = r.Prefetch(w)
			return
		}},
		{"Deprioritization (§7 implication)", "deprioritize", func(w io.Writer) (err error) {
			rep.Deprioritize, err = r.Deprioritize(w)
			return
		}},
		{"Anomaly detection (§5 applications)", "anomaly", func(w io.Writer) (err error) {
			rep.Anomaly, err = r.Anomaly(w)
			return
		}},
		{"Regional vantages (§7 limitation)", "regional", func(w io.Writer) (err error) {
			rep.Regional, err = r.Regional(w)
			return
		}},
		{"Resilience under origin faults (robustness)", "resilience", func(w io.Writer) (err error) {
			rep.Resilience, err = r.Resilience(w)
			return
		}},
	}

	for _, st := range steps {
		fmt.Fprintf(w, "\n== %s ==\n", st.title)
		sp := r.span(st.errAs)
		err := st.fn(w)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", st.errAs, err)
		}
	}
	return &rep, nil
}
