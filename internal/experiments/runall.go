package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// StepState classifies how one RunAll step ended.
type StepState uint8

const (
	// StepCompleted means the step ran to completion.
	StepCompleted StepState = iota
	// StepSkipped means the run was cancelled (or an earlier step
	// failed) before the step started.
	StepSkipped
	// StepFailed means the step returned an error.
	StepFailed
)

// String returns the lowercase name of the state.
func (s StepState) String() string {
	switch s {
	case StepCompleted:
		return "completed"
	case StepSkipped:
		return "skipped"
	default:
		return "failed"
	}
}

// StepStatus records one RunAll step's outcome for the report, so a
// cancelled or failed run still says exactly what it finished.
type StepStatus struct {
	// Name is the section title ("Figure 1", ...).
	Name string
	// State is how the step ended.
	State StepState
	// Wall is the step's wall time, recorded for completed and failed
	// steps alike (zero for skipped steps, which never started).
	Wall time.Duration
	// Records and Bytes are the record and body-byte counts of the
	// shared datasets the step read (zero for steps that generate their
	// own inputs and for steps that never ran) — the per-step data
	// provenance carried into run manifests.
	Records int64
	Bytes   int64
}

// Report holds every experiment's structured result.
type Report struct {
	Figure1      Figure1Result
	Table2       Table2Result
	Figure3      Figure3Result
	Figure4      Figure4Result
	Periods      *PeriodicityResult
	Table3       Table3Result
	Prefetch     PrefetchResult
	Deprioritize DeprioritizeResult
	Anomaly      AnomalyResult
	Regional     RegionalResult
	Resilience   ResilienceResult
	Adversarial  AdversarialResult

	// Steps is the per-step outcome ledger, in paper order. On a
	// cancelled or failed run it records which results above are
	// populated.
	Steps []StepStatus
}

// Completed returns how many steps finished.
func (rep *Report) Completed() int {
	n := 0
	for _, st := range rep.Steps {
		if st.State == StepCompleted {
			n++
		}
	}
	return n
}

// WriteStepSummary prints one line per step with its outcome — the
// partial-report footer of an interrupted run. Completed and failed
// steps include their wall time; skipped steps never started.
func (rep *Report) WriteStepSummary(w io.Writer) {
	for _, st := range rep.Steps {
		switch st.State {
		case StepSkipped:
			fmt.Fprintf(w, "  %-44s %s\n", st.Name, st.State)
		default:
			fmt.Fprintf(w, "  %-44s %s (%s)\n", st.Name, st.State, st.Wall.Round(time.Millisecond))
		}
	}
}

// ManifestSteps projects the step ledger into run-manifest entries, the
// form run-<id>.json records.
func (rep *Report) ManifestSteps() []obs.ManifestStep {
	out := make([]obs.ManifestStep, len(rep.Steps))
	for i, st := range rep.Steps {
		out[i] = obs.ManifestStep{
			Name:    st.Name,
			Status:  st.State.String(),
			WallNS:  int64(st.Wall),
			Records: st.Records,
			Bytes:   st.Bytes,
		}
	}
	return out
}

// RunAll executes every experiment in paper order, writing the formatted
// tables and figures to w. It is RunAllContext without cancellation.
func (r *Runner) RunAll(w io.Writer) (*Report, error) {
	return r.RunAllContext(context.Background(), w)
}

// stepNeed is a bitmask of the shared resources a RunAll step reads.
// The parallel scheduler materializes the union of the selected steps'
// needs up front, so the steps themselves — which all draw on local
// RNGs and never mutate shared state — can run in any order, on any
// number of goroutines, and still compute exactly the sequential
// results.
type stepNeed uint8

const (
	// needShort is the §4 short-term dataset (ShortTermRecords).
	needShort stepNeed = 1 << iota
	// needPattern is the §5 pattern dataset (PatternRecords).
	needPattern
	// needPeriodicity is the memoized §5.1 periodicity analysis, which
	// itself consumes the pattern dataset.
	needPeriodicity
)

// stepSpec declares one RunAll step: its section heading, its
// error-wrapping label (also the tracer span name), the shared
// resources it reads, and the closure that runs it.
type stepSpec struct {
	title string // section heading and span name
	errAs string // error-wrapping label
	needs stepNeed
	fn    func(io.Writer) error
}

// stepSpecs returns the steps in paper order, writing results into rep.
// Steps that generate their own inputs (Figure 1's arrival sketch, the
// regional and resilience simulations) declare no needs.
func (r *Runner) stepSpecs(rep *Report) []stepSpec {
	return []stepSpec{
		{"Figure 1", "figure 1", 0, func(w io.Writer) (err error) {
			rep.Figure1, err = r.Figure1(w)
			return
		}},
		{"Table 2", "table 2", needShort | needPattern, func(w io.Writer) (err error) {
			rep.Table2, err = r.Table2(w)
			return
		}},
		{"Figure 3 and §4 request/response types", "figure 3", needShort, func(w io.Writer) (err error) {
			rep.Figure3, err = r.Figure3(w)
			return
		}},
		{"Figure 4 and §4 cacheability", "figure 4", needShort, func(w io.Writer) (err error) {
			rep.Figure4, err = r.Figure4(w)
			return
		}},
		{"Figure 5 and §5.1 periodicity", "figure 5", needPattern | needPeriodicity, func(w io.Writer) (err error) {
			rep.Periods, err = r.Figure5(w)
			return
		}},
		{"Figure 6", "figure 6", needPattern | needPeriodicity, func(w io.Writer) (err error) {
			_, err = r.Figure6(w)
			return
		}},
		{"Table 3 and §5.2 prediction", "table 3", needPattern, func(w io.Writer) (err error) {
			rep.Table3, err = r.Table3(w)
			return
		}},
		{"Prefetch simulation (§5.2 implication)", "prefetch", needPattern, func(w io.Writer) (err error) {
			rep.Prefetch, err = r.Prefetch(w)
			return
		}},
		{"Deprioritization (§7 implication)", "deprioritize", needPattern | needPeriodicity, func(w io.Writer) (err error) {
			rep.Deprioritize, err = r.Deprioritize(w)
			return
		}},
		{"Anomaly detection (§5 applications)", "anomaly", needPattern, func(w io.Writer) (err error) {
			rep.Anomaly, err = r.Anomaly(w)
			return
		}},
		{"Regional vantages (§7 limitation)", "regional", 0, func(w io.Writer) (err error) {
			rep.Regional, err = r.Regional(w)
			return
		}},
		{"Resilience under origin faults (robustness)", "resilience", 0, func(w io.Writer) (err error) {
			rep.Resilience, err = r.Resilience(w)
			return
		}},
		{"Adversarial traffic and edge defenses (robustness)", "adversarial", 0, func(w io.Writer) (err error) {
			rep.Adversarial, err = r.Adversarial(w)
			return
		}},
	}
}

// RunAllContext executes every experiment in paper order, writing the
// formatted tables and figures to w. When the runner is instrumented
// (see Instrument), each figure/table runs inside its own tracer span,
// so a -trace run prints where the wall time went.
//
// With Config.Jobs > 1 the independent steps run concurrently on a
// bounded worker pool (see sched.go); each step's text is buffered and
// flushed in paper order, so the report bytes are identical to the
// sequential run.
//
// Cancelling ctx stops the run at the next step boundary: the returned
// Report is still valid, with completed steps' results populated and
// the rest marked skipped in Steps, and the error is ctx's error. A
// step failure likewise returns the partial report alongside the error.
func (r *Runner) RunAllContext(ctx context.Context, w io.Writer) (*Report, error) {
	w = out(w)
	var rep Report
	steps := r.stepSpecs(&rep)
	rep.Steps = make([]StepStatus, len(steps))
	for i, st := range steps {
		rep.Steps[i] = StepStatus{Name: st.title, State: StepSkipped}
	}

	// The RunAll root span: every step, materialization, and dataset
	// span opened during the run hangs off it, so the trace export is a
	// single tree (RunAll → step → dataset → shard).
	if root := r.trace.Start("RunAll"); root != nil {
		root.SetAttrs(
			obs.Int64("seed", int64(r.cfg.Seed)),
			obs.Float("scale", r.cfg.Scale),
			obs.Int("jobs", r.cfg.Jobs),
			obs.Int("shards", r.cfg.Shards),
		)
		r.spanMu.Lock()
		r.rootSp = root
		r.spanMu.Unlock()
		defer func() {
			r.spanMu.Lock()
			r.rootSp, r.curSp = nil, nil
			r.spanMu.Unlock()
			root.End()
		}()
	}

	if r.cfg.Jobs > 1 {
		err := r.runAllParallel(ctx, w, steps, &rep)
		return &rep, err
	}

	for i, st := range steps {
		if err := ctx.Err(); err != nil {
			return &rep, err
		}
		fmt.Fprintf(w, "\n== %s ==\n", st.title)
		sp := r.span(st.errAs)
		r.setCur(sp)
		start := time.Now()
		err := st.fn(w)
		r.setCur(nil)
		sp.End()
		rep.Steps[i].Wall = time.Since(start)
		rep.Steps[i].Records, rep.Steps[i].Bytes = r.datasetTotals(st.needs)
		if err != nil {
			rep.Steps[i].State = StepFailed
			return &rep, fmt.Errorf("%s: %w", st.errAs, err)
		}
		rep.Steps[i].State = StepCompleted
	}
	return &rep, nil
}
