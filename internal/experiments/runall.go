package experiments

import (
	"context"
	"fmt"
	"io"
	"time"
)

// StepState classifies how one RunAll step ended.
type StepState uint8

const (
	// StepCompleted means the step ran to completion.
	StepCompleted StepState = iota
	// StepSkipped means the run was cancelled (or an earlier step
	// failed) before the step started.
	StepSkipped
	// StepFailed means the step returned an error.
	StepFailed
)

// String returns the lowercase name of the state.
func (s StepState) String() string {
	switch s {
	case StepCompleted:
		return "completed"
	case StepSkipped:
		return "skipped"
	default:
		return "failed"
	}
}

// StepStatus records one RunAll step's outcome for the report, so a
// cancelled or failed run still says exactly what it finished.
type StepStatus struct {
	// Name is the section title ("Figure 1", ...).
	Name string
	// State is how the step ended.
	State StepState
	// Wall is the step's wall time (zero for skipped steps).
	Wall time.Duration
}

// Report holds every experiment's structured result.
type Report struct {
	Figure1      Figure1Result
	Table2       Table2Result
	Figure3      Figure3Result
	Figure4      Figure4Result
	Periods      *PeriodicityResult
	Table3       Table3Result
	Prefetch     PrefetchResult
	Deprioritize DeprioritizeResult
	Anomaly      AnomalyResult
	Regional     RegionalResult
	Resilience   ResilienceResult

	// Steps is the per-step outcome ledger, in paper order. On a
	// cancelled or failed run it records which results above are
	// populated.
	Steps []StepStatus
}

// Completed returns how many steps finished.
func (rep *Report) Completed() int {
	n := 0
	for _, st := range rep.Steps {
		if st.State == StepCompleted {
			n++
		}
	}
	return n
}

// WriteStepSummary prints one line per step with its outcome — the
// partial-report footer of an interrupted run.
func (rep *Report) WriteStepSummary(w io.Writer) {
	for _, st := range rep.Steps {
		switch st.State {
		case StepCompleted:
			fmt.Fprintf(w, "  %-44s %s (%s)\n", st.Name, st.State, st.Wall.Round(time.Millisecond))
		default:
			fmt.Fprintf(w, "  %-44s %s\n", st.Name, st.State)
		}
	}
}

// RunAll executes every experiment in paper order, writing the formatted
// tables and figures to w. It is RunAllContext without cancellation.
func (r *Runner) RunAll(w io.Writer) (*Report, error) {
	return r.RunAllContext(context.Background(), w)
}

// RunAllContext executes every experiment in paper order, writing the
// formatted tables and figures to w. When the runner is instrumented
// (see Instrument), each figure/table runs inside its own tracer span,
// so a -trace run prints where the wall time went.
//
// Cancelling ctx stops the run at the next step boundary: the returned
// Report is still valid, with completed steps' results populated and
// the rest marked skipped in Steps, and the error is ctx's error. A
// step failure likewise returns the partial report alongside the error.
func (r *Runner) RunAllContext(ctx context.Context, w io.Writer) (*Report, error) {
	w = out(w)
	var rep Report

	steps := []struct {
		title string // section heading and span name
		errAs string // error-wrapping label
		fn    func(io.Writer) error
	}{
		{"Figure 1", "figure 1", func(w io.Writer) (err error) {
			rep.Figure1, err = r.Figure1(w)
			return
		}},
		{"Table 2", "table 2", func(w io.Writer) (err error) {
			rep.Table2, err = r.Table2(w)
			return
		}},
		{"Figure 3 and §4 request/response types", "figure 3", func(w io.Writer) (err error) {
			rep.Figure3, err = r.Figure3(w)
			return
		}},
		{"Figure 4 and §4 cacheability", "figure 4", func(w io.Writer) (err error) {
			rep.Figure4, err = r.Figure4(w)
			return
		}},
		{"Figure 5 and §5.1 periodicity", "figure 5", func(w io.Writer) (err error) {
			rep.Periods, err = r.Figure5(w)
			return
		}},
		{"Figure 6", "figure 6", func(w io.Writer) (err error) {
			_, err = r.Figure6(w)
			return
		}},
		{"Table 3 and §5.2 prediction", "table 3", func(w io.Writer) (err error) {
			rep.Table3, err = r.Table3(w)
			return
		}},
		{"Prefetch simulation (§5.2 implication)", "prefetch", func(w io.Writer) (err error) {
			rep.Prefetch, err = r.Prefetch(w)
			return
		}},
		{"Deprioritization (§7 implication)", "deprioritize", func(w io.Writer) (err error) {
			rep.Deprioritize, err = r.Deprioritize(w)
			return
		}},
		{"Anomaly detection (§5 applications)", "anomaly", func(w io.Writer) (err error) {
			rep.Anomaly, err = r.Anomaly(w)
			return
		}},
		{"Regional vantages (§7 limitation)", "regional", func(w io.Writer) (err error) {
			rep.Regional, err = r.Regional(w)
			return
		}},
		{"Resilience under origin faults (robustness)", "resilience", func(w io.Writer) (err error) {
			rep.Resilience, err = r.Resilience(w)
			return
		}},
	}

	rep.Steps = make([]StepStatus, len(steps))
	for i, st := range steps {
		rep.Steps[i] = StepStatus{Name: st.title, State: StepSkipped}
	}
	for i, st := range steps {
		if err := ctx.Err(); err != nil {
			return &rep, err
		}
		fmt.Fprintf(w, "\n== %s ==\n", st.title)
		sp := r.span(st.errAs)
		start := time.Now()
		err := st.fn(w)
		sp.End()
		if err != nil {
			rep.Steps[i].State = StepFailed
			return &rep, fmt.Errorf("%s: %w", st.errAs, err)
		}
		rep.Steps[i].State = StepCompleted
		rep.Steps[i].Wall = time.Since(start)
	}
	return &rep, nil
}
