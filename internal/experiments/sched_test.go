package experiments

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// smallConfig is the tiny-but-pattern-bearing configuration the
// scheduler tests run the full report at, twice.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.001
	cfg.PatternTarget = 60_000
	cfg.PatternWindow = time.Hour
	cfg.Permutations = 30
	cfg.SampleBin = 2 * time.Second
	return cfg
}

// zeroWalls clears the per-step wall times, the only part of a Report
// that legitimately differs between runs.
func zeroWalls(rep *Report) {
	for i := range rep.Steps {
		rep.Steps[i].Wall = 0
	}
}

// TestRunAllParallelGolden is the tentpole's contract: a parallel run
// emits byte-identical report text and an identical Report struct to
// the sequential run.
func TestRunAllParallelGolden(t *testing.T) {
	var seqText strings.Builder
	seqRep, err := NewRunner(smallConfig()).RunAll(&seqText)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := smallConfig()
	parCfg.Jobs = 4
	var parText strings.Builder
	parRep, err := NewRunner(parCfg).RunAll(&parText)
	if err != nil {
		t.Fatal(err)
	}

	if seqText.String() != parText.String() {
		t.Errorf("parallel report text differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seqText.String(), parText.String())
	}
	zeroWalls(seqRep)
	zeroWalls(parRep)
	if !reflect.DeepEqual(seqRep, parRep) {
		t.Error("parallel Report struct differs from sequential")
	}
	if got := parRep.Completed(); got != len(parRep.Steps) {
		t.Errorf("parallel run completed %d of %d steps", got, len(parRep.Steps))
	}
}

// TestRunAllParallelCancelledBeforeStart returns the all-skipped ledger
// and ctx's error without running anything.
func TestRunAllParallelCancelledBeforeStart(t *testing.T) {
	cfg := smallConfig()
	cfg.Jobs = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	rep, err := NewRunner(cfg).RunAllContext(ctx, &sb)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil {
		t.Fatal("cancelled run must still return the report ledger")
	}
	for _, st := range rep.Steps {
		if st.State != StepSkipped {
			t.Errorf("step %q = %v, want skipped", st.Name, st.State)
		}
	}
	if sb.Len() != 0 {
		t.Errorf("cancelled-before-start run wrote output:\n%s", sb.String())
	}
}

// TestWriteStepSummaryFailedWall checks that failed steps report their
// wall time (they ran), while skipped steps (which never started) do
// not.
func TestWriteStepSummaryFailedWall(t *testing.T) {
	rep := &Report{Steps: []StepStatus{
		{Name: "Figure 1", State: StepCompleted, Wall: 120 * time.Millisecond},
		{Name: "Table 2", State: StepFailed, Wall: 45 * time.Millisecond},
		{Name: "Figure 3", State: StepSkipped},
	}}
	var sb strings.Builder
	rep.WriteStepSummary(&sb)
	out := sb.String()
	if !strings.Contains(out, "failed (45ms)") {
		t.Errorf("failed step missing wall time:\n%s", out)
	}
	if !strings.Contains(out, "completed (120ms)") {
		t.Errorf("completed step missing wall time:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "skipped") && strings.Contains(line, "ms") {
			t.Errorf("skipped step reports a wall time: %q", line)
		}
	}
}

// TestRunAllParallelJobsCap checks Jobs beyond the step count is
// harmless and sanitize keeps the sequential default.
func TestRunAllParallelJobsCap(t *testing.T) {
	cfg := Config{}
	cfg.sanitize()
	if cfg.Jobs != 1 {
		t.Errorf("default Jobs = %d, want 1 (sequential)", cfg.Jobs)
	}
	if cfg.Shards != 1 {
		t.Errorf("default Shards = %d, want 1", cfg.Shards)
	}
}
