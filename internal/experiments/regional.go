package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/stats"
	"repro/internal/synth"
)

// RegionalResult carries the multi-vantage comparison the paper's §7
// limitations call for ("future studies can analyze ... more regions").
type RegionalResult struct {
	// PeakHour maps vantage label to the UTC hour of peak human JSON
	// volume.
	PeakHour map[string]int
	// JSONShare maps vantage label to its JSON share of requests, which
	// should be vantage-independent (the content mix is structural).
	JSONShare map[string]float64
}

// regionalVantages are three stand-in vantage points with their local
// time offsets.
var regionalVantages = []struct {
	label  string
	offset time.Duration
}{
	{"seattle", -8 * time.Hour},
	{"frankfurt", 1 * time.Hour},
	{"tokyo", 9 * time.Hour},
}

// Regional generates a day of traffic at three vantage points and
// compares their hourly activity profiles: the diurnal peak follows the
// local time zone while structural properties (the JSON share) do not.
func (r *Runner) Regional(w io.Writer) (RegionalResult, error) {
	w = out(w)
	res := RegionalResult{
		PeakHour:  map[string]int{},
		JSONShare: map[string]float64{},
	}
	fmt.Fprintln(w, "Regional vantages (§7 limitation): hourly human JSON volume by vantage")
	var tb stats.Table
	tb.SetHeader("Vantage", "UTC offset", "peak UTC hour", "JSON share")
	for _, v := range regionalVantages {
		cfg := synth.LongTermConfig(r.cfg.Seed+7, 0.0008)
		cfg.UTCOffset = v.offset
		hours := make([]int, 24)
		var jsonN, total int
		err := core.SynthSource(cfg).Each(func(rec *logfmt.Record) error {
			total++
			if !rec.IsJSON() {
				return nil
			}
			jsonN++
			if !isPollURL(rec.URL) {
				hours[rec.Time.Hour()]++
			}
			return nil
		})
		if err != nil {
			return RegionalResult{}, fmt.Errorf("experiments: vantage %s: %w", v.label, err)
		}
		peak := 0
		for h := 1; h < 24; h++ {
			if hours[h] > hours[peak] {
				peak = h
			}
		}
		res.PeakHour[v.label] = peak
		res.JSONShare[v.label] = float64(jsonN) / float64(total)
		tb.AddRowf(v.label, v.offset, fmt.Sprintf("%02d:00", peak),
			fmt.Sprintf("%.2f", res.JSONShare[v.label]))
	}
	fmt.Fprint(w, tb.String())
	compareRow(w, "diurnal peak follows local timezone", "qualitative",
		fmt.Sprintf("peaks at %02d/%02d/%02d UTC", res.PeakHour["seattle"],
			res.PeakHour["frankfurt"], res.PeakHour["tokyo"]))
	return res, nil
}

func isPollURL(url string) bool {
	return strings.Contains(url, "/poll/") || strings.Contains(url, "/ingest/")
}
