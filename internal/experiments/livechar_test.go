package experiments

import (
	"io"
	"testing"
)

// TestLiveCharConvergence is the acceptance gate for the live
// characterization plane: streaming estimates over a synthetic stream
// must converge to batch ground truth — quantiles within
// LiveCharQuantileTol, top-10 overlap at least LiveCharTopOverlapMin,
// the injected synthetic period detected, and the split-and-merge path
// reproducing the single-plane sketch state.
func TestLiveCharConvergence(t *testing.T) {
	r := NewRunner(DefaultConfig())
	res, err := r.LiveChar(io.Discard)
	if err != nil {
		t.Fatalf("LiveChar: %v", err)
	}
	if res.Events < 4000 {
		t.Fatalf("suspiciously small stream: %d events", res.Events)
	}
	for _, qp := range append(append([]QuantilePair{}, res.SizeQuantiles...), res.InterQuantiles...) {
		if qp.RelErr > LiveCharQuantileTol {
			t.Errorf("q%.2f: stream %d vs batch %d — rel err %.3f exceeds %.2f",
				qp.Q, qp.Stream, qp.Batch, qp.RelErr, LiveCharQuantileTol)
		}
	}
	if res.TopOverlap < LiveCharTopOverlapMin {
		t.Errorf("top-10 overlap %.2f below %.2f", res.TopOverlap, LiveCharTopOverlapMin)
	}
	if !res.PeriodDetected {
		t.Errorf("injected %gs period not detected (got %gs)",
			res.InjectedPeriodSec, res.DetectedPeriodSec)
	}
	if res.PredictHitRate <= 0.1 || res.PredictObservations == 0 {
		t.Errorf("online prediction learned nothing: hit rate %.3f over %d",
			res.PredictHitRate, res.PredictObservations)
	}
	if !res.MergedConsistent {
		t.Error("two-node merge does not reproduce the single-plane sketches")
	}

	// Determinism: the experiment is seeded end to end.
	res2, err := r.LiveChar(io.Discard)
	if err != nil {
		t.Fatalf("LiveChar rerun: %v", err)
	}
	if res2.Events != res.Events || res2.TopOverlap != res.TopOverlap ||
		res2.DetectedPeriodSec != res.DetectedPeriodSec ||
		res2.PredictHitRate != res.PredictHitRate {
		t.Errorf("rerun diverged: %+v vs %+v", res2, res)
	}
}
