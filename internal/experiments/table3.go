package experiments

import (
	"fmt"
	"io"

	"repro/internal/logfmt"
	"repro/internal/ngram"
	"repro/internal/stats"
)

// Table3Result carries the ngram prediction accuracies of Table 3.
type Table3Result struct {
	// Accuracy[clustered][k] for K in {1, 5, 10} at N = 1.
	Clustered map[int]float64
	Actual    map[int]float64
	// N5Gain is the top-10 accuracy gain from N=5 over N=1 on actual
	// URLs (paper: <= ~5%).
	N5Gain float64
	// Vocabulary sizes show how much clustering shrinks the URL space.
	ActualVocab, ClusteredVocab int
}

// table3Ks are the K values the paper reports.
var table3Ks = []int{1, 5, 10}

// Table3 regenerates Table 3: backoff ngram top-K accuracy on actual and
// clustered URLs with history N=1, plus the N=5 check. Only
// application/json GET-dominated traffic enters the model, as in the
// paper.
func (r *Runner) Table3(w io.Writer) (Table3Result, error) {
	w = out(w)
	recs, err := r.PatternRecords()
	if err != nil {
		return Table3Result{}, err
	}
	res := Table3Result{
		Clustered: map[int]float64{},
		Actual:    map[int]float64{},
	}

	build := func(clustered bool) *ngram.Sequencer {
		s := ngram.NewSequencer()
		s.Clustered = clustered
		s.Filter = logfmt.JSONOnly
		for i := range recs {
			s.Observe(&recs[i])
		}
		return s
	}

	actualSeq := build(false)
	mActual, evalActual := actualSeq.TrainAndEvaluate(1, table3Ks)
	for k, e := range evalActual {
		res.Actual[k] = e.Accuracy()
	}
	res.ActualVocab = mActual.VocabSize()

	clusteredSeq := build(true)
	mClustered, evalClustered := clusteredSeq.TrainAndEvaluate(1, table3Ks)
	for k, e := range evalClustered {
		res.Clustered[k] = e.Accuracy()
	}
	res.ClusteredVocab = mClustered.VocabSize()

	// N=5 check on actual URLs.
	_, evalN5 := actualSeq.TrainAndEvaluate(5, []int{10})
	res.N5Gain = evalN5[10].Accuracy() - res.Actual[10]

	fmt.Fprintln(w, "Table 3: NGram model accuracy for URLs (history N=1)")
	var tb stats.Table
	tb.SetHeader("K", "Clustered URLs", "Actual URLs", "Paper (clustered)", "Paper (actual)")
	paperClustered := map[int]string{1: ".65", 5: ".84", 10: ".87"}
	paperActual := map[int]string{1: ".45", 5: ".64", 10: ".69"}
	for _, k := range table3Ks {
		tb.AddRowf(k,
			fmt.Sprintf("%.2f", res.Clustered[k]),
			fmt.Sprintf("%.2f", res.Actual[k]),
			paperClustered[k], paperActual[k])
	}
	fmt.Fprint(w, tb.String())
	compareRow(w, "N=5 top-10 gain over N=1 (actual URLs)", "<=5%", pct(res.N5Gain))
	fmt.Fprintf(w, "  vocabulary: %d actual URLs -> %d clustered templates\n",
		res.ActualVocab, res.ClusteredVocab)
	return res, nil
}
