package experiments

import (
	"fmt"
	"io"

	"repro/internal/stats"
	"repro/internal/synth"
)

// Figure1Result is the JSON:HTML ratio trend (Fig. 1) plus the §4 size
// trend that shares the same counters.
type Figure1Result struct {
	Months []synth.MonthCounter
	// StartRatio and EndRatio are the first and last months' JSON:HTML
	// request ratios (paper: JSON ends >4x HTML).
	StartRatio, EndRatio float64
	// SizeShrink is the fractional decline of mean JSON response size
	// over the window (paper: ~28% since 2016).
	SizeShrink float64
}

// Figure1 regenerates Fig. 1: the monthly ratio of JSON to HTML requests
// on the CDN from 2016 through the capture, from raw monthly counters.
func (r *Runner) Figure1(w io.Writer) (Figure1Result, error) {
	w = out(w)
	months := synth.GenerateTrend(synth.DefaultTrendConfig(r.cfg.Seed))
	if len(months) == 0 {
		return Figure1Result{}, fmt.Errorf("experiments: empty trend")
	}
	res := Figure1Result{
		Months:     months,
		StartRatio: months[0].Ratio(),
		EndRatio:   months[len(months)-1].Ratio(),
	}
	first, last := months[0], months[len(months)-1]
	if first.JSONMeanBytes > 0 {
		res.SizeShrink = 1 - last.JSONMeanBytes/first.JSONMeanBytes
	}

	fmt.Fprintln(w, "Figure 1: Ratio of JSON to HTML requests on the CDN")
	pts := make([]stats.Point, len(months))
	for i, m := range months {
		pts[i] = stats.Point{X: float64(i), Y: m.Ratio()}
	}
	fmt.Fprint(w, stats.LineChart(pts, 60, 12))
	fmt.Fprintf(w, "months: %s .. %s\n", first.Month.Format("2006-01"), last.Month.Format("2006-01"))
	compareRow(w, "JSON:HTML ratio at end of window", ">4x", fmt.Sprintf("%.1fx", res.EndRatio))
	compareRow(w, "mean JSON size decline since 2016", "~28%", pct(res.SizeShrink))
	return res, nil
}
