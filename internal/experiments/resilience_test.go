package experiments

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestResilienceAvailability is the acceptance gate for the robustness
// stack: under the same seeded FaultyOrigin and scripted brownout,
// availability with resilience enabled must be strictly higher than
// without, and the recovery machinery must actually have fired.
func TestResilienceAvailability(t *testing.T) {
	var sb strings.Builder
	res, err := runner().Resilience(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResilientAvailability <= res.BaselineAvailability {
		t.Fatalf("resilient availability %.3f not higher than baseline %.3f",
			res.ResilientAvailability, res.BaselineAvailability)
	}
	// The brownout alone costs the baseline most of a 5-of-30-minute
	// window; the resilient stack should stay close to fully available.
	if res.ResilientAvailability < 0.9 {
		t.Errorf("resilient availability = %.3f, want >= 0.9", res.ResilientAvailability)
	}
	if res.BaselineAvailability > 0.95 {
		t.Errorf("baseline availability = %.3f — faults not biting, experiment is vacuous",
			res.BaselineAvailability)
	}
	if res.Retries == 0 {
		t.Error("no retries recorded")
	}
	if res.StaleServes == 0 {
		t.Error("no stale serves recorded")
	}
	if res.BreakerOpens == 0 {
		t.Error("breaker never opened during a 5-minute outage")
	}
	if !strings.Contains(sb.String(), "availability") {
		t.Error("output missing availability lines")
	}
}

// TestResilienceDeterministic: the experiment is a pure function of its
// seeds — two runs agree exactly.
func TestResilienceDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewRunner(cfg).Resilience(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(cfg).Resilience(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("results differ across runs:\n%+v\n%+v", a, b)
	}
}

// TestResilienceMetricsExposed runs the experiment on an instrumented
// runner and checks the breaker, retry, stale-serve, and shed series
// appear in the Prometheus exposition.
func TestResilienceMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRunner(DefaultConfig())
	r.Instrument(reg, nil)
	if _, err := r.Resilience(nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`resilience_breaker_state{stack="resilient"}`,
		`resilience_breaker_opens_total{stack="resilient"}`,
		`resilience_retries_total{stack="resilient"}`,
		`resilience_attempts_total{result="ok",stack="resilient"}`,
		`edge_stale_serves_total{stack="resilient"}`,
		`edge_shed_total{class="machine",stack="resilient"}`,
		`edge_requests_total{method="get",stack="baseline"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %s", want)
		}
	}
}
