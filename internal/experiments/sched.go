package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file is the parallel RunAll scheduler. The paper's analyses are
// all functions of the log stream: once the shared datasets exist, each
// figure/table reads them (and its own local RNG streams) without
// mutating anything another step can see. The scheduler exploits
// exactly that — it materializes the union of the selected steps'
// declared needs up front (short-term and pattern datasets generated
// concurrently, then the memoized periodicity analysis), then runs the
// steps themselves on Config.Jobs workers. Each step writes into its
// own buffer; buffers flush to the caller's writer in paper order, as
// soon as the prefix of finished steps allows, so the emitted report is
// byte-identical to a sequential run.

// stepOutcome is one step's buffered text and result, filled in by a
// worker and consumed by the ordered flusher.
type stepOutcome struct {
	buf  bytes.Buffer
	err  error
	wall time.Duration
	done bool // set by the flusher when the outcome arrives
}

// runAllParallel executes steps on r.cfg.Jobs workers. It assumes
// rep.Steps is pre-populated with every step marked skipped; it flips
// states to completed/failed as outcomes arrive. Dispatch is strictly
// in paper order and stops at the first failure or cancellation, so
// the started steps always form a prefix: in-flight steps finish (and
// their text is flushed), unstarted steps stay skipped.
func (r *Runner) runAllParallel(ctx context.Context, w io.Writer, steps []stepSpec, rep *Report) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Dataset generation reports under one "materialize datasets" span,
	// so the trace shows the up-front phase distinctly from the steps.
	msp := r.span("materialize datasets")
	r.setCur(msp)
	errAs, merr := r.materialize(ctx, steps)
	r.setCur(nil)
	msp.End()
	if merr != nil {
		// A dataset failed; in a sequential run the first step needing it
		// would have reported this, so attribute it the same way.
		for i, st := range steps {
			if st.errAs == errAs {
				rep.Steps[i].State = StepFailed
				break
			}
		}
		return fmt.Errorf("%s: %w", errAs, merr)
	}

	var running *obs.Gauge
	var wallHist *obs.Histogram
	if r.obsReg != nil {
		running = r.obsReg.Gauge("experiments_steps_running")
		wallHist = r.obsReg.Histogram("experiments_step_wall_seconds", nil)
	}

	jobs := r.cfg.Jobs
	if jobs > len(steps) {
		jobs = len(steps)
	}
	outs := make([]*stepOutcome, len(steps))
	for i := range outs {
		outs[i] = &stepOutcome{}
	}

	var abort atomic.Bool
	idxCh := make(chan int)
	doneCh := make(chan int, len(steps))

	var wg sync.WaitGroup
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idxCh {
				st, o := steps[i], outs[i]
				fmt.Fprintf(&o.buf, "\n== %s ==\n", st.title)
				if running != nil {
					running.Inc()
				}
				sp := r.span(st.errAs)
				sp.SetAttrs(obs.Int("worker", worker))
				start := time.Now()
				o.err = st.fn(&o.buf)
				sp.End()
				o.wall = time.Since(start)
				if wallHist != nil {
					wallHist.ObserveSince(start)
				}
				if running != nil {
					running.Dec()
				}
				if o.err != nil {
					abort.Store(true)
				}
				doneCh <- i
			}
		}(k)
	}

	// Dispatch in paper order; stop feeding on failure or cancellation.
	go func() {
		defer close(idxCh)
		for i := range steps {
			if abort.Load() {
				return
			}
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(doneCh)
	}()

	// Flush finished buffers in order: because dispatch is a strict
	// prefix, streaming the contiguous done-prefix covers every started
	// step by the time doneCh closes.
	next := 0
	for i := range doneCh {
		o := outs[i]
		o.done = true
		rep.Steps[i].Wall = o.wall
		rep.Steps[i].Records, rep.Steps[i].Bytes = r.datasetTotals(steps[i].needs)
		if o.err != nil {
			rep.Steps[i].State = StepFailed
		} else {
			rep.Steps[i].State = StepCompleted
		}
		for next < len(steps) && outs[next].done {
			if _, err := w.Write(outs[next].buf.Bytes()); err != nil {
				// Keep collecting outcomes so the report ledger is right,
				// but there is nowhere left to write the text.
				w = io.Discard
			}
			next++
		}
	}

	// First failure in paper order wins, matching the sequential path.
	for i := range steps {
		if outs[i].err != nil {
			return fmt.Errorf("%s: %w", steps[i].errAs, outs[i].err)
		}
	}
	return ctx.Err()
}

// materialize generates the union of the steps' declared resources:
// the short-term and pattern datasets concurrently, then the
// periodicity analysis (which consumes the pattern dataset). On error
// it returns the errAs label of the first paper-order step that needs
// the failed resource, so the caller can attribute the failure the way
// a sequential run would.
func (r *Runner) materialize(ctx context.Context, steps []stepSpec) (string, error) {
	var need stepNeed
	for _, st := range steps {
		need |= st.needs
	}
	if need == 0 {
		return "", nil
	}
	if err := ctx.Err(); err != nil {
		return firstNeeding(steps, need), err
	}

	var wg sync.WaitGroup
	var shortErr, patternErr, perErr error
	if need&needShort != 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, shortErr = r.ShortTermRecords()
		}()
	}
	if need&(needPattern|needPeriodicity) != 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, patternErr = r.PatternRecords(); patternErr != nil {
				return
			}
			if need&needPeriodicity != 0 {
				_, perErr = r.periodicity()
			}
		}()
	}
	wg.Wait()

	switch {
	case shortErr != nil:
		return firstNeeding(steps, needShort), shortErr
	case patternErr != nil:
		return firstNeeding(steps, needPattern|needPeriodicity), patternErr
	case perErr != nil:
		return firstNeeding(steps, needPeriodicity), perErr
	}
	return "", nil
}

// firstNeeding returns the errAs label of the first step whose needs
// intersect mask.
func firstNeeding(steps []stepSpec, mask stepNeed) string {
	for _, st := range steps {
		if st.needs&mask != 0 {
			return st.errAs
		}
	}
	return steps[0].errAs
}
