package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/fleet"
	"repro/internal/fleet/chaos"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/synth"
)

// Fleet-chaos availability budgets: the error-rate ceiling and p99 SLO
// the fault-tolerant run must hold while a node dies mid-replay, and
// the hit-ratio recovery tolerance after it rejoins. The same numbers
// gate the multi-process run in scripts/chaos-check.sh.
const (
	FleetChaosErrBudget  = 0.01
	FleetChaosP99SLO     = 250 * time.Millisecond
	FleetChaosRecoverTol = 0.10
)

// FleetChaosResult carries the fleet robustness experiment: an
// open-loop replay through the front tier while one of three nodes is
// killed and later rejoins, with and without failover.
type FleetChaosResult struct {
	Nodes    int
	Rate     float64
	Measured int64

	// Fault-tolerant run (health checking + failover).
	ErrorRate float64       // transport errors + 5xx, post-warmup
	P99       time.Duration // coordinated-omission-safe intended p99
	Failovers int64
	Exhausted int64
	// Hit ratios before the kill and after the rejoin settles, and the
	// recovery verdict (settled within FleetChaosRecoverTol of pre).
	PreFaultHitRatio float64
	SettledHitRatio  float64
	Recovered        bool
	// PerNode tallies which node answered, as stamped in X-Fleet-Node —
	// the dead node's share visibly shifts to its ring successors.
	PerNode map[string]int64

	// Baseline run: same kill, failover disabled and detection stalled.
	// Violates must be true — a fleet that shrugs off a dead node with
	// the machinery off would mean the gate tests nothing.
	BaselineErrorRate float64
	BaselineViolates  bool
}

// fleetChaosParams sizes the scenario; tests shrink it.
type fleetChaosParams struct {
	nodes    int
	rate     float64
	duration time.Duration
	warmup   time.Duration
	killAt   time.Duration
	rejoinAt time.Duration
	settleAt time.Duration
}

func defaultFleetChaosParams() fleetChaosParams {
	return fleetChaosParams{
		nodes:    3,
		rate:     300,
		duration: 6 * time.Second,
		warmup:   300 * time.Millisecond,
		killAt:   1500 * time.Millisecond,
		rejoinAt: 3 * time.Second,
		settleAt: 4500 * time.Millisecond,
	}
}

// chaosNode is one in-process edge: a caching HTTPEdge behind a chaos
// injector on a real loopback listener, with the same /healthz-on-the-
// data-path contract cmd/liveedge serves.
type chaosNode struct {
	name string
	inj  *chaos.Injector
	srv  *httptest.Server
}

func newChaosNode(name string) *chaosNode {
	n := &chaosNode{name: name, inj: &chaos.Injector{}}
	e := &edge.HTTPEdge{
		Cache: edge.NewCache(8<<20, time.Minute, 4),
		Origin: &edge.WildcardOrigin{
			Inner:   &edge.JSONOrigin{Articles: 40},
			Latency: time.Millisecond,
		},
	}
	e.Obs = edge.NewInstrumentation(obs.NewRegistry())
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/", e)
	n.srv = httptest.NewServer(n.inj.Wrap(mux))
	return n
}

// injectorTarget adapts the in-process nodes to chaos.Target: "kill"
// is a full partition (connections sever, probes fail) and "restart"
// heals it — process identity and ports never change, which is exactly
// what keeps this variant deterministic enough to assert on. The
// process-level kill/respawn path is exercised by cmd/jsonfleet under
// scripts/chaos-check.sh.
type injectorTarget map[string]*chaos.Injector

func (t injectorTarget) find(node string) (*chaos.Injector, error) {
	inj := t[node]
	if inj == nil {
		return nil, fmt.Errorf("fleetchaos: unknown node %q", node)
	}
	return inj, nil
}

func (t injectorTarget) Kill(node string) error {
	inj, err := t.find(node)
	if err == nil {
		inj.Set(chaos.ModePartition, 0)
	}
	return err
}

func (t injectorTarget) Restart(node string) error {
	inj, err := t.find(node)
	if err == nil {
		inj.Heal()
	}
	return err
}

func (t injectorTarget) Inject(node string, mode chaos.Mode, delay time.Duration) error {
	inj, err := t.find(node)
	if err == nil {
		inj.Set(mode, delay)
	}
	return err
}

// fleetChaosRun drives one replay through a fresh fleet while the kill
// /rejoin timeline executes. With failover true the fleet gets fast
// probes and bounded retries; with it false the dead node stays in the
// ring and every request it owns fails — the negative control.
func fleetChaosRun(records []logfmt.Record, p fleetChaosParams, failover bool) (*replay.Result, *fleet.Instrumentation, []fleetChaosSnap, error) {
	nodes := make([]*chaosNode, p.nodes)
	members := make([]*fleet.Member, p.nodes)
	target := injectorTarget{}
	for i := range nodes {
		nodes[i] = newChaosNode(fmt.Sprintf("edge-%02d", i))
		defer nodes[i].srv.Close()
		members[i] = &fleet.Member{
			Name:      nodes[i].name,
			URL:       nodes[i].srv.URL,
			HealthURL: nodes[i].srv.URL + "/healthz",
		}
		target[nodes[i].name] = nodes[i].inj
	}

	cfg := fleet.Config{
		Probe:        25 * time.Millisecond,
		ProbeTimeout: 150 * time.Millisecond,
		SuspectAfter: 1,
		DownAfter:    3,
		UpAfter:      2,
		MaxFailover:  2,
	}
	if !failover {
		// The negative control: no retries, and probes too slow to evict
		// the dead node within the run — requests it owns must fail.
		cfg.MaxFailover = -1
		cfg.Probe = time.Hour
	}
	f := fleet.New(cfg, members...)
	reg := obs.NewRegistry()
	inst := f.Instrument(reg)
	stopHealth := f.StartHealth()
	defer stopHealth()
	front := httptest.NewServer(f)
	defer front.Close()

	timeline := []chaos.Event{
		{At: p.killAt, Verb: "kill", Node: "edge-01"},
		{At: p.rejoinAt, Verb: "restart", Node: "edge-01"},
		{At: p.settleAt, Verb: "mark", Node: "settled"},
	}
	var snaps []fleetChaosSnap
	ctl := &chaos.Controller{
		Target: target,
		OnEvent: func(ev chaos.Event) {
			snaps = append(snaps, fleetChaosSnap{
				verb: ev.Verb, hits: inst.Hits.Value(), misses: inst.Misses.Value(),
			})
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctlErr := make(chan error, 1)
	go func() { ctlErr <- ctl.Run(ctx, timeline) }()

	res, err := replay.Run(ctx, records, replay.Config{
		Target:      front.URL,
		Rate:        p.rate,
		Duration:    p.duration,
		Warmup:      p.warmup,
		Concurrency: 32,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := <-ctlErr; err != nil {
		return nil, nil, nil, err
	}
	// Final bookend snapshot for the settled window.
	snaps = append(snaps, fleetChaosSnap{
		verb: "end", hits: inst.Hits.Value(), misses: inst.Misses.Value(),
	})
	return res, inst, snaps, nil
}

// fleetChaosSnap is a hit/miss counter snapshot at one timeline event.
type fleetChaosSnap struct {
	verb         string
	hits, misses int64
}

// ratioBetween is the hit ratio across the counter delta of two snaps.
func ratioBetween(from, to fleetChaosSnap) float64 {
	h, m := to.hits-from.hits, to.misses-from.misses
	if h+m <= 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// fleetChaosWindows extracts the pre-kill and post-settle hit ratios.
func fleetChaosWindows(snaps []fleetChaosSnap) (pre, settled float64) {
	var zero fleetChaosSnap
	for i, s := range snaps {
		switch s.verb {
		case "kill":
			pre = ratioBetween(zero, s)
		case "mark":
			if i+1 < len(snaps) {
				settled = ratioBetween(s, snaps[len(snaps)-1])
			}
		}
	}
	return pre, settled
}

// fleetChaosConfig is a compact synthetic capture whose URL population
// re-loops under the fixed-rate schedule, so the fleet's caches see
// repeat traffic and a hit ratio worth measuring.
func (r *Runner) fleetChaosConfig() synth.Config {
	cfg := synth.ShortTermConfig(r.cfg.Seed+11, 1)
	cfg.Duration = 2 * time.Minute
	cfg.TargetRequests = 2000
	cfg.Domains = 6
	cfg.Shards = 0
	return cfg
}

// FleetChaos runs the fault-tolerant fleet experiment over real HTTP:
// three caching edge nodes behind the front-tier router, an open-loop
// replay through it at a fixed rate, and a chaos timeline that kills
// one node mid-run and rejoins it. The fault-tolerant configuration
// must hold the availability budget (errors, p99, hit-ratio recovery);
// the same kill with failover disabled must violate it, proving the
// gate has teeth. Real sockets and real time make this run-to-run
// noisy, so it lives outside RunAll's byte-identical report (invoke it
// with jsonrepro -only fleetchaos).
func (r *Runner) FleetChaos(w io.Writer) (FleetChaosResult, error) {
	return r.fleetChaos(w, defaultFleetChaosParams())
}

func (r *Runner) fleetChaos(w io.Writer, p fleetChaosParams) (FleetChaosResult, error) {
	w = out(w)
	records, err := core.Collect(core.SynthSource(r.fleetChaosConfig()))
	if err != nil {
		return FleetChaosResult{}, err
	}
	// GETs only: the front hedges and fails over GETs freely, and the
	// availability claim should not hinge on POST bodies.
	gets := records[:0]
	for _, rec := range records {
		if rec.Method == "GET" {
			gets = append(gets, rec)
		}
	}
	records = gets

	res, inst, snaps, err := fleetChaosRun(records, p, true)
	if err != nil {
		return FleetChaosResult{}, err
	}
	pre, settled := fleetChaosWindows(snaps)
	out := FleetChaosResult{
		Nodes:            p.nodes,
		Rate:             p.rate,
		Measured:         res.Measured,
		ErrorRate:        res.AvailabilityErrorRate(),
		P99:              time.Duration(res.Latency.Quantile(0.99)),
		Failovers:        inst.Failovers.Value(),
		Exhausted:        inst.Exhausted.Value(),
		PreFaultHitRatio: pre,
		SettledHitRatio:  settled,
		Recovered:        settled >= pre-FleetChaosRecoverTol,
		PerNode:          res.Node,
	}

	base, _, _, err := fleetChaosRun(records, p, false)
	if err != nil {
		return FleetChaosResult{}, err
	}
	out.BaselineErrorRate = base.AvailabilityErrorRate()
	out.BaselineViolates = out.BaselineErrorRate > FleetChaosErrBudget

	fmt.Fprintln(w, "Fault-tolerant edge fleet under chaos (robustness)")
	fmt.Fprintf(w, "%d nodes, %.0f req/s open-loop, kill edge-01 at %s, rejoin at %s\n\n",
		p.nodes, p.rate, p.killAt, p.rejoinAt)
	fmt.Fprintf(w, "%-28s %12s %12s\n", "", "failover on", "failover off")
	fmt.Fprintf(w, "%-28s %11.2f%% %11.2f%%\n", "error rate (transport+5xx)",
		out.ErrorRate*100, out.BaselineErrorRate*100)
	fmt.Fprintf(w, "%-28s %12s %12s\n", "budget (err < 1%)",
		verdict(out.ErrorRate <= FleetChaosErrBudget), verdict(out.BaselineErrorRate <= FleetChaosErrBudget))
	fmt.Fprintf(w, "\nintended p99 %.1f ms (SLO %s)   failovers %d   exhausted %d\n",
		float64(out.P99)/1e6, FleetChaosP99SLO, out.Failovers, out.Exhausted)
	fmt.Fprintf(w, "hit ratio: pre-kill %.2f -> settled %.2f (tolerance %.2f, recovered=%v)\n",
		out.PreFaultHitRatio, out.SettledHitRatio, FleetChaosRecoverTol, out.Recovered)
	nodes := make([]string, 0, len(out.PerNode))
	for n := range out.PerNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Fprintf(w, "per-node responses:")
	for _, n := range nodes {
		fmt.Fprintf(w, "  %s=%d", n, out.PerNode[n])
	}
	fmt.Fprintln(w)
	return out, nil
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
