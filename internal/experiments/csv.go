package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// WriteCSV exports each exhibit's data series from a completed report as
// CSV files under dir (created if absent), so the figures can be
// re-plotted with external tooling.
func WriteCSV(dir string, rep *Report) error {
	if rep == nil {
		return fmt.Errorf("experiments: nil report")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string][][]string{
		"figure1.csv":      figure1CSV(rep),
		"figure3.csv":      figure3CSV(rep),
		"figure4.csv":      figure4CSV(rep),
		"figure5.csv":      figure5CSV(rep),
		"figure6.csv":      figure6CSV(rep),
		"table3.csv":       table3CSV(rep),
		"prefetch.csv":     prefetchCSV(rep),
		"deprioritize.csv": deprioritizeCSV(rep),
	}
	for name, rows := range files {
		if err := writeCSVFile(filepath.Join(dir, name), rows); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", name, err)
		}
	}
	return nil
}

func writeCSVFile(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func figure1CSV(rep *Report) [][]string {
	rows := [][]string{{"month", "json_requests", "html_requests", "ratio", "json_mean_bytes"}}
	for _, m := range rep.Figure1.Months {
		rows = append(rows, []string{
			m.Month.Format("2006-01"),
			strconv.FormatInt(m.JSONRequests, 10),
			strconv.FormatInt(m.HTMLRequests, 10),
			f64(m.Ratio()),
			f64(m.JSONMeanBytes),
		})
	}
	return rows
}

func figure3CSV(rep *Report) [][]string {
	return [][]string{
		{"device", "share"},
		{"mobile", f64(rep.Figure3.MobileShare)},
		{"unknown", f64(rep.Figure3.UnknownShare)},
		{"embedded", f64(rep.Figure3.EmbeddedShare)},
		{"desktop", f64(rep.Figure3.DesktopShare)},
	}
}

func figure4CSV(rep *Report) [][]string {
	rows := [][]string{{"category", "bucket", "share_of_domains"}}
	m := rep.Figure4.Heatmap
	if m == nil {
		return rows
	}
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			rows = append(rows, []string{m.RowLabels[r], m.ColLabels[c], f64(m.At(r, c))})
		}
	}
	return rows
}

func figure5CSV(rep *Report) [][]string {
	rows := [][]string{{"period_upper_edge_seconds", "objects"}}
	if rep.Periods == nil || rep.Periods.Histogram == nil {
		return rows
	}
	h := rep.Periods.Histogram
	for i := 0; i < h.NumBins(); i++ {
		rows = append(rows, []string{f64(h.Edge(i)), strconv.FormatInt(h.Count(i), 10)})
	}
	return rows
}

func figure6CSV(rep *Report) [][]string {
	rows := [][]string{{"periodic_client_share", "cdf"}}
	if rep.Periods == nil {
		return rows
	}
	for _, p := range rep.Periods.Analysis.PeriodicClientCDF().Points(50) {
		rows = append(rows, []string{f64(p.X), f64(p.Y)})
	}
	return rows
}

func table3CSV(rep *Report) [][]string {
	rows := [][]string{{"k", "clustered_accuracy", "actual_accuracy"}}
	ks := make([]int, 0, len(rep.Table3.Actual))
	for k := range rep.Table3.Actual {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		rows = append(rows, []string{
			strconv.Itoa(k),
			f64(rep.Table3.Clustered[k]),
			f64(rep.Table3.Actual[k]),
		})
	}
	return rows
}

func prefetchCSV(rep *Report) [][]string {
	rows := [][]string{{"configuration", "hit_ratio", "waste"}}
	rows = append(rows, []string{"baseline", f64(rep.Prefetch.BaselineHitRatio), ""})
	rows = append(rows, []string{"prefetch_k1", f64(rep.Prefetch.PrefetchHitRatio), f64(rep.Prefetch.Waste)})
	ks := make([]int, 0, len(rep.Prefetch.KSweep))
	for k := range rep.Prefetch.KSweep {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		v := rep.Prefetch.KSweep[k]
		rows = append(rows, []string{fmt.Sprintf("prefetch_k%d", k), f64(v[0]), f64(v[1])})
	}
	return rows
}

func deprioritizeCSV(rep *Report) [][]string {
	rows := [][]string{{"discipline", "class", "mean_wait_s", "p50_s", "p95_s", "p99_s"}}
	add := func(d, c string, s interface {
		Mean() float64
	}, p50, p95, p99 float64) {
		rows = append(rows, []string{d, c, f64(s.Mean()), f64(p50), f64(p95), f64(p99)})
	}
	fifo, prio := rep.Deprioritize.FIFO, rep.Deprioritize.Priority
	add("fifo", "human", &fifo.Human.Wait, fifo.Human.P50, fifo.Human.P95, fifo.Human.P99)
	add("fifo", "machine", &fifo.Machine.Wait, fifo.Machine.P50, fifo.Machine.P95, fifo.Machine.P99)
	add("priority", "human", &prio.Human.Wait, prio.Human.P50, prio.Human.P95, prio.Human.P99)
	add("priority", "machine", &prio.Machine.Wait, prio.Machine.P50, prio.Machine.P95, prio.Machine.P99)
	return rows
}
