// Package experiments contains one runner per table and figure in the
// paper's evaluation. Each runner generates (or reuses) the appropriate
// synthetic dataset, executes the corresponding analysis pipeline, prints
// the same rows/series the paper reports alongside the paper's numbers,
// and returns a structured result for tests and EXPERIMENTS.md.
//
// The runners target the paper's *shape* — who wins, rough factors,
// where crossovers fall — not its absolute numbers, since the substrate
// is a synthetic workload rather than Akamai's production logs.
package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/synth"
)

// Config sizes the experiment datasets.
type Config struct {
	// Seed drives all dataset generation and permutation tests.
	Seed uint64
	// Scale shrinks the Table 2 presets (1.0 = the paper's 25M/10M
	// records; the default 0.002 keeps a laptop run under a minute).
	Scale float64
	// PatternTarget is the record count of the pattern dataset used for
	// §5 (periodicity, prediction, prefetch).
	PatternTarget int
	// PatternWindow is the capture window of the pattern dataset. The
	// paper uses 24 h; the scaled default is 2 h so every feasible
	// period still fits >= 10 polls per client.
	PatternWindow time.Duration
	// Permutations is x in the periodicity detector (paper: 100).
	Permutations int
	// SampleBin is the periodicity sampling interval (paper: 1 s; the
	// scaled default is 2 s to bound FFT cost on long windows).
	SampleBin time.Duration
	// FaultRate is the steady-state origin error rate of the resilience
	// experiment (default 0.05).
	FaultRate float64
	// FaultSeed seeds fault injection and backoff jitter; 0 derives it
	// from Seed.
	FaultSeed uint64
	// Jobs is the RunAll step parallelism: 1 (or 0, the default) runs
	// the figure/table steps strictly in paper order on one goroutine;
	// N > 1 generates the shared datasets up front and then runs
	// independent steps concurrently on N workers, buffering each step's
	// text and flushing in paper order so the report is byte-identical
	// to the sequential run.
	Jobs int
	// Shards is the synth generation shard count handed to the dataset
	// generators (see synth.Config.Shards). 1 (or 0) keeps the
	// single-goroutine generator and the historical streams; N > 1 is
	// faster on multi-core machines but yields a different (still fully
	// deterministic) dataset per (Seed, Shards).
	Shards int
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Seed:          42,
		Scale:         0.002,
		PatternTarget: 120_000,
		PatternWindow: 2 * time.Hour,
		Permutations:  100,
		SampleBin:     2 * time.Second,
	}
}

func (c *Config) sanitize() {
	if c.Scale <= 0 {
		c.Scale = 0.002
	}
	if c.PatternTarget <= 0 {
		c.PatternTarget = 120_000
	}
	if c.PatternWindow <= 0 {
		c.PatternWindow = 2 * time.Hour
	}
	if c.Permutations <= 0 {
		c.Permutations = 100
	}
	if c.SampleBin <= 0 {
		c.SampleBin = 2 * time.Second
	}
	if c.FaultRate <= 0 {
		c.FaultRate = 0.05
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = c.Seed + 2
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// Runner executes experiments, generating each dataset at most once.
// The dataset memos are mutex-guarded so the parallel scheduler (and
// any caller running individual experiments from several goroutines)
// generates each one exactly once.
type Runner struct {
	cfg Config

	obsReg *obs.Registry
	trace  *obs.Trace

	// spanMu guards the current span-parenting state: rootSp is the
	// RunAll root span (set for the duration of RunAllContext), curSp is
	// the span new child spans should parent on right now (the running
	// step in a sequential run, the materialize phase in a parallel one).
	spanMu sync.Mutex
	rootSp *obs.Span
	curSp  *obs.Span

	// health, when set via NotifyReady, flips ready once both shared
	// datasets are materialized. The done flags are atomics so the
	// parallel materializers can update them without ordering the
	// dataset mutexes against each other.
	health      *obs.Health
	shortDone   atomic.Bool
	patternDone atomic.Bool

	shortMu    sync.Mutex
	short      []logfmt.Record
	shortBytes int64

	patternMu    sync.Mutex
	pattern      []logfmt.Record
	patternBytes int64

	perMu          sync.Mutex
	periodicityRes *PeriodicityResult
}

// NewRunner returns a runner for the given configuration.
func NewRunner(cfg Config) *Runner {
	cfg.sanitize()
	return &Runner{cfg: cfg}
}

// Config returns the runner's effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// Instrument attaches a metrics registry and a stage tracer, either of
// which may be nil. The registry flows into the dataset generators and
// the scheduler simulation; the tracer gets one span per generated
// dataset and one per figure/table in RunAll. Call before running
// experiments.
func (r *Runner) Instrument(reg *obs.Registry, tr *obs.Trace) {
	r.obsReg = reg
	r.trace = tr
}

// NotifyReady attaches a readiness gate: once both shared datasets are
// materialized (generated or injected), h flips ready — the /readyz
// signal that the expensive startup work is behind the process. Call
// before running experiments; a nil h is ignored.
func (r *Runner) NotifyReady(h *obs.Health) { r.health = h }

// markShortDone / markPatternDone record dataset completion and flip
// the readiness gate when both have landed.
func (r *Runner) markShortDone()   { r.shortDone.Store(true); r.markReady() }
func (r *Runner) markPatternDone() { r.patternDone.Store(true); r.markReady() }

func (r *Runner) markReady() {
	if r.shortDone.Load() && r.patternDone.Load() {
		r.health.SetReady(true)
	}
}

// span opens a tracer span parented on the innermost active scope — the
// running step in a sequential RunAll, the materialize phase in a
// parallel one, the RunAll root otherwise — or a root span when no run
// is active, or a no-op nil span when no tracer is attached.
func (r *Runner) span(name string) *obs.Span {
	r.spanMu.Lock()
	parent := r.curSp
	if parent == nil {
		parent = r.rootSp
	}
	r.spanMu.Unlock()
	if parent != nil {
		return parent.Child(name)
	}
	return r.trace.Start(name)
}

// setCur installs sp as the parent for spans opened until the next
// setCur; nil restores parenting on the RunAll root.
func (r *Runner) setCur(sp *obs.Span) {
	r.spanMu.Lock()
	r.curSp = sp
	r.spanMu.Unlock()
}

// ShortTermRecords returns (generating on first use) the scaled
// short-term dataset used by the §4 characterization experiments.
func (r *Runner) ShortTermRecords() ([]logfmt.Record, error) {
	r.shortMu.Lock()
	defer r.shortMu.Unlock()
	if r.short == nil {
		cfg := synth.ShortTermConfig(r.cfg.Seed, r.cfg.Scale)
		cfg.Shards = r.cfg.Shards
		cfg.Obs = r.obsReg
		sp := r.span("synth short-term dataset")
		cfg.Span = sp
		recs, err := core.Collect(core.SynthSource(cfg))
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("experiments: generating short-term dataset: %w", err)
		}
		tallyRecords(sp, recs)
		sp.End()
		r.short = recs
		r.shortBytes = recsBytes(recs)
		r.markShortDone()
	}
	return r.short, nil
}

// recsBytes sums the body sizes of a dataset.
func recsBytes(recs []logfmt.Record) int64 {
	var bytes int64
	for i := range recs {
		bytes += recs[i].Bytes
	}
	return bytes
}

// tallyRecords charges a generated dataset to its span.
func tallyRecords(sp *obs.Span, recs []logfmt.Record) {
	if sp == nil {
		return
	}
	sp.AddRecords(int64(len(recs)))
	sp.AddBytes(recsBytes(recs))
}

// UseShortTermRecords injects recs as the short-term dataset in place
// of synthetic generation — the hook the robust-ingest path uses to run
// the §4 analyses over records tolerantly decoded from a (possibly
// corrupt) log file. Call before the first experiment touches the
// dataset.
func (r *Runner) UseShortTermRecords(recs []logfmt.Record) {
	r.shortMu.Lock()
	r.short = recs
	r.shortBytes = recsBytes(recs)
	r.shortMu.Unlock()
	r.markShortDone()
}

// UsePatternRecords injects recs as the §5 pattern dataset; see
// UseShortTermRecords.
func (r *Runner) UsePatternRecords(recs []logfmt.Record) {
	r.patternMu.Lock()
	r.pattern = recs
	r.patternBytes = recsBytes(recs)
	r.patternMu.Unlock()
	r.markPatternDone()
}

// PatternConfig returns the synth configuration of the pattern dataset.
func (r *Runner) PatternConfig() synth.Config {
	cfg := synth.LongTermConfig(r.cfg.Seed+1, 1)
	cfg.Duration = r.cfg.PatternWindow
	cfg.TargetRequests = r.cfg.PatternTarget
	cfg.Domains = 40
	cfg.Shards = r.cfg.Shards
	cfg.Obs = r.obsReg
	return cfg
}

// PatternRecords returns (generating on first use) the pattern dataset
// standing in for the paper's long-term dataset in the §5 analyses.
func (r *Runner) PatternRecords() ([]logfmt.Record, error) {
	r.patternMu.Lock()
	defer r.patternMu.Unlock()
	if r.pattern == nil {
		sp := r.span("synth pattern dataset")
		cfg := r.PatternConfig()
		cfg.Span = sp
		recs, err := core.Collect(core.SynthSource(cfg))
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("experiments: generating pattern dataset: %w", err)
		}
		tallyRecords(sp, recs)
		sp.End()
		r.pattern = recs
		r.patternBytes = recsBytes(recs)
		r.markPatternDone()
	}
	return r.pattern, nil
}

// datasetTotals sums the record and byte counts of the shared datasets
// a step declared in its needs — the provenance attributed to that step
// in the run ledger (a step's own outputs are text, so its data volume
// is the data it read).
func (r *Runner) datasetTotals(needs stepNeed) (records, bytes int64) {
	if needs&needShort != 0 {
		r.shortMu.Lock()
		records += int64(len(r.short))
		bytes += r.shortBytes
		r.shortMu.Unlock()
	}
	if needs&(needPattern|needPeriodicity) != 0 {
		r.patternMu.Lock()
		records += int64(len(r.pattern))
		bytes += r.patternBytes
		r.patternMu.Unlock()
	}
	return records, bytes
}

// out returns w or a discard writer.
func out(w io.Writer) io.Writer {
	if w == nil {
		return io.Discard
	}
	return w
}

// compareRow prints one "paper vs measured" line.
func compareRow(w io.Writer, metric, paper, measured string) {
	fmt.Fprintf(w, "  %-42s paper: %-12s measured: %s\n", metric, paper, measured)
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
