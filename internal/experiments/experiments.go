// Package experiments contains one runner per table and figure in the
// paper's evaluation. Each runner generates (or reuses) the appropriate
// synthetic dataset, executes the corresponding analysis pipeline, prints
// the same rows/series the paper reports alongside the paper's numbers,
// and returns a structured result for tests and EXPERIMENTS.md.
//
// The runners target the paper's *shape* — who wins, rough factors,
// where crossovers fall — not its absolute numbers, since the substrate
// is a synthetic workload rather than Akamai's production logs.
package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/synth"
)

// Config sizes the experiment datasets.
type Config struct {
	// Seed drives all dataset generation and permutation tests.
	Seed uint64
	// Scale shrinks the Table 2 presets (1.0 = the paper's 25M/10M
	// records; the default 0.002 keeps a laptop run under a minute).
	Scale float64
	// PatternTarget is the record count of the pattern dataset used for
	// §5 (periodicity, prediction, prefetch).
	PatternTarget int
	// PatternWindow is the capture window of the pattern dataset. The
	// paper uses 24 h; the scaled default is 2 h so every feasible
	// period still fits >= 10 polls per client.
	PatternWindow time.Duration
	// Permutations is x in the periodicity detector (paper: 100).
	Permutations int
	// SampleBin is the periodicity sampling interval (paper: 1 s; the
	// scaled default is 2 s to bound FFT cost on long windows).
	SampleBin time.Duration
	// FaultRate is the steady-state origin error rate of the resilience
	// experiment (default 0.05).
	FaultRate float64
	// FaultSeed seeds fault injection and backoff jitter; 0 derives it
	// from Seed.
	FaultSeed uint64
	// Jobs is the RunAll step parallelism: 1 (or 0, the default) runs
	// the figure/table steps strictly in paper order on one goroutine;
	// N > 1 generates the shared datasets up front and then runs
	// independent steps concurrently on N workers, buffering each step's
	// text and flushing in paper order so the report is byte-identical
	// to the sequential run.
	Jobs int
	// Shards is the synth generation shard count handed to the dataset
	// generators (see synth.Config.Shards). 1 (or 0) keeps the
	// single-goroutine generator and the historical streams; N > 1 is
	// faster on multi-core machines but yields a different (still fully
	// deterministic) dataset per (Seed, Shards).
	Shards int
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Seed:          42,
		Scale:         0.002,
		PatternTarget: 120_000,
		PatternWindow: 2 * time.Hour,
		Permutations:  100,
		SampleBin:     2 * time.Second,
	}
}

func (c *Config) sanitize() {
	if c.Scale <= 0 {
		c.Scale = 0.002
	}
	if c.PatternTarget <= 0 {
		c.PatternTarget = 120_000
	}
	if c.PatternWindow <= 0 {
		c.PatternWindow = 2 * time.Hour
	}
	if c.Permutations <= 0 {
		c.Permutations = 100
	}
	if c.SampleBin <= 0 {
		c.SampleBin = 2 * time.Second
	}
	if c.FaultRate <= 0 {
		c.FaultRate = 0.05
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = c.Seed + 2
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// Runner executes experiments, generating each dataset at most once.
// The dataset memos are mutex-guarded so the parallel scheduler (and
// any caller running individual experiments from several goroutines)
// generates each one exactly once.
type Runner struct {
	cfg Config

	obsReg *obs.Registry
	trace  *obs.Trace

	shortMu sync.Mutex
	short   []logfmt.Record

	patternMu sync.Mutex
	pattern   []logfmt.Record

	perMu          sync.Mutex
	periodicityRes *PeriodicityResult
}

// NewRunner returns a runner for the given configuration.
func NewRunner(cfg Config) *Runner {
	cfg.sanitize()
	return &Runner{cfg: cfg}
}

// Config returns the runner's effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// Instrument attaches a metrics registry and a stage tracer, either of
// which may be nil. The registry flows into the dataset generators and
// the scheduler simulation; the tracer gets one span per generated
// dataset and one per figure/table in RunAll. Call before running
// experiments.
func (r *Runner) Instrument(reg *obs.Registry, tr *obs.Trace) {
	r.obsReg = reg
	r.trace = tr
}

// span opens a tracer span, or returns a no-op nil span when no tracer
// is attached.
func (r *Runner) span(name string) *obs.Span { return r.trace.Start(name) }

// ShortTermRecords returns (generating on first use) the scaled
// short-term dataset used by the §4 characterization experiments.
func (r *Runner) ShortTermRecords() ([]logfmt.Record, error) {
	r.shortMu.Lock()
	defer r.shortMu.Unlock()
	if r.short == nil {
		cfg := synth.ShortTermConfig(r.cfg.Seed, r.cfg.Scale)
		cfg.Shards = r.cfg.Shards
		cfg.Obs = r.obsReg
		sp := r.span("synth short-term dataset")
		recs, err := core.Collect(core.SynthSource(cfg))
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("experiments: generating short-term dataset: %w", err)
		}
		tallyRecords(sp, recs)
		sp.End()
		r.short = recs
	}
	return r.short, nil
}

// tallyRecords charges a generated dataset to its span.
func tallyRecords(sp *obs.Span, recs []logfmt.Record) {
	if sp == nil {
		return
	}
	var bytes int64
	for i := range recs {
		bytes += recs[i].Bytes
	}
	sp.AddRecords(int64(len(recs)))
	sp.AddBytes(bytes)
}

// UseShortTermRecords injects recs as the short-term dataset in place
// of synthetic generation — the hook the robust-ingest path uses to run
// the §4 analyses over records tolerantly decoded from a (possibly
// corrupt) log file. Call before the first experiment touches the
// dataset.
func (r *Runner) UseShortTermRecords(recs []logfmt.Record) {
	r.shortMu.Lock()
	r.short = recs
	r.shortMu.Unlock()
}

// UsePatternRecords injects recs as the §5 pattern dataset; see
// UseShortTermRecords.
func (r *Runner) UsePatternRecords(recs []logfmt.Record) {
	r.patternMu.Lock()
	r.pattern = recs
	r.patternMu.Unlock()
}

// PatternConfig returns the synth configuration of the pattern dataset.
func (r *Runner) PatternConfig() synth.Config {
	cfg := synth.LongTermConfig(r.cfg.Seed+1, 1)
	cfg.Duration = r.cfg.PatternWindow
	cfg.TargetRequests = r.cfg.PatternTarget
	cfg.Domains = 40
	cfg.Shards = r.cfg.Shards
	cfg.Obs = r.obsReg
	return cfg
}

// PatternRecords returns (generating on first use) the pattern dataset
// standing in for the paper's long-term dataset in the §5 analyses.
func (r *Runner) PatternRecords() ([]logfmt.Record, error) {
	r.patternMu.Lock()
	defer r.patternMu.Unlock()
	if r.pattern == nil {
		sp := r.span("synth pattern dataset")
		recs, err := core.Collect(core.SynthSource(r.PatternConfig()))
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("experiments: generating pattern dataset: %w", err)
		}
		tallyRecords(sp, recs)
		sp.End()
		r.pattern = recs
	}
	return r.pattern, nil
}

// out returns w or a discard writer.
func out(w io.Writer) io.Writer {
	if w == nil {
		return io.Discard
	}
	return w
}

// compareRow prints one "paper vs measured" line.
func compareRow(w io.Writer, metric, paper, measured string) {
	fmt.Fprintf(w, "  %-42s paper: %-12s measured: %s\n", metric, paper, measured)
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
