package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestAdversarialBounds is the acceptance gate for the detect-and-defend
// loop: under the same labeled attack stream, the defended edge must
// hold origin amplification under the ceiling while the undefended edge
// is demonstrably worse — higher amplification at the base intensity
// and steeper origin-load growth when the attack doubles.
func TestAdversarialBounds(t *testing.T) {
	var sb strings.Builder
	res, err := runner().Adversarial(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackRequests == 0 || res.BenignRequests == 0 {
		t.Fatalf("degenerate stream: %d benign, %d attack", res.BenignRequests, res.AttackRequests)
	}
	if !res.CeilingOK || res.DefendedAmplification > AdversarialCeiling {
		t.Fatalf("defended amplification %.3f above ceiling %.2f",
			res.DefendedAmplification, AdversarialCeiling)
	}
	if res.UndefendedAmplification <= 2*res.DefendedAmplification {
		t.Fatalf("undefended amplification %.3f not clearly worse than defended %.3f",
			res.UndefendedAmplification, res.DefendedAmplification)
	}
	// The undefended edge must also show open-loop scaling: doubling
	// the attack budget grows its origin load faster than the
	// defended edge's.
	if !res.StrictlyWorse || res.UndefendedGrowth <= res.DefendedGrowth {
		t.Fatalf("undefended growth %.2fx not worse than defended %.2fx",
			res.UndefendedGrowth, res.DefendedGrowth)
	}
	// An undefended cache-busting storm amplifies near one-for-one for
	// its population; the blended figure should stay substantial — if
	// not, the attack generator is not producing real pressure.
	if res.UndefendedAmplification < 0.4 {
		t.Errorf("undefended amplification %.3f — attack stream too weak to gate on",
			res.UndefendedAmplification)
	}
	// Benign collateral: the defense may not meaningfully reject or
	// slow legitimate traffic.
	if res.DefendedBenignRejectRate > 0.02 {
		t.Errorf("defended benign reject rate %.3f > 2%%", res.DefendedBenignRejectRate)
	}
	if res.DefendedBenignP99 > res.UndefendedBenignP99+5*time.Millisecond {
		t.Errorf("defended benign p99 %s regressed vs undefended %s",
			res.DefendedBenignP99, res.UndefendedBenignP99)
	}
	// The loop must actually have acted, not won by accident.
	if res.Collapsed == 0 {
		t.Error("no cache-key collapses recorded during a query storm")
	}
	if res.Shed == 0 {
		t.Error("no requests shed during a bot flood")
	}
	if res.AnomalyFlags == 0 {
		t.Error("no anomaly flags raised")
	}
	if !strings.Contains(sb.String(), "amplification") {
		t.Error("output missing amplification lines")
	}
}

// TestAdversarialDeterministic: simulated clock, seeded streams, and
// deterministic defenses — two runs agree field for field.
func TestAdversarialDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewRunner(cfg).Adversarial(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(cfg).Adversarial(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("results differ across runs:\n%+v\n%+v", a, b)
	}
}
