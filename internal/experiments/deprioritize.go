package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/logfmt"
	"repro/internal/sched"
	"repro/internal/stats"
)

// DeprioritizeResult carries the §7-implication experiment: the latency
// effect of deprioritizing machine-to-machine traffic at the edge.
type DeprioritizeResult struct {
	FIFO, Priority sched.Result
	// HumanP95Improvement is the relative reduction of the human p95
	// queueing delay under priority scheduling.
	HumanP95Improvement float64
	// MachineShare is the fraction of requests classified machine.
	MachineShare float64
}

// Deprioritize evaluates the paper's suggested optimization: serve
// human-triggered requests ahead of machine-to-machine requests. The
// machine set comes from the §5.1 periodicity analysis (the paper's own
// identification method); service times derive from response sizes, and
// the worker pool is sized so the edge runs hot (~85% utilization),
// where scheduling policy matters.
func (r *Runner) Deprioritize(w io.Writer) (DeprioritizeResult, error) {
	w = out(w)
	recs, err := r.PatternRecords()
	if err != nil {
		return DeprioritizeResult{}, err
	}
	periods, err := r.periodicity()
	if err != nil {
		return DeprioritizeResult{}, err
	}
	machineURLs := make(map[string]bool)
	for _, o := range periods.Analysis.PeriodicObjects() {
		machineURLs[o.URL] = true
	}

	var reqs []sched.Request
	var totalService time.Duration
	var machine int
	var first, last time.Time
	for i := range recs {
		rec := &recs[i]
		if !rec.IsJSON() {
			continue
		}
		svc := serviceTime(rec)
		class := sched.ClassHuman
		if machineURLs[logfmt.CanonicalURL(rec.URL)] {
			class = sched.ClassMachine
			machine++
		}
		reqs = append(reqs, sched.Request{Arrival: rec.Time, Service: svc, Class: class})
		totalService += svc
		if first.IsZero() || rec.Time.Before(first) {
			first = rec.Time
		}
		if rec.Time.After(last) {
			last = rec.Time
		}
	}
	if len(reqs) == 0 {
		return DeprioritizeResult{}, fmt.Errorf("experiments: no JSON requests for scheduling")
	}
	// Scale service times so the two-worker edge runs hot (~85%
	// utilization): scheduling policy only matters under contention, and
	// the scaled dataset's absolute load is arbitrary anyway.
	const workers = 2
	const targetUtil = 0.85
	span := last.Sub(first)
	factor := targetUtil * span.Seconds() * workers / totalService.Seconds()
	for i := range reqs {
		reqs[i].Service = time.Duration(float64(reqs[i].Service) * factor)
	}

	// Run both disciplines through the instrumented simulator (the
	// registry, when attached, accumulates the per-class queue-latency
	// histograms across both runs).
	fifo, err := sched.Simulate(reqs, sched.Config{Workers: workers, Discipline: sched.FIFO, Obs: r.obsReg})
	if err != nil {
		return DeprioritizeResult{}, err
	}
	prio, err := sched.Simulate(reqs, sched.Config{Workers: workers, Discipline: sched.PriorityHuman, Obs: r.obsReg})
	if err != nil {
		return DeprioritizeResult{}, err
	}
	res := DeprioritizeResult{
		FIFO:         fifo,
		Priority:     prio,
		MachineShare: float64(machine) / float64(len(reqs)),
	}
	if fifo.Human.P95 > 0 {
		res.HumanP95Improvement = 1 - prio.Human.P95/fifo.Human.P95
	}

	fmt.Fprintln(w, "Deprioritizing machine-to-machine traffic (§7 implication)")
	fmt.Fprintf(w, "  %d JSON requests, %.1f%% machine-classified, %d workers, utilization %.0f%%\n",
		len(reqs), res.MachineShare*100, workers, fifo.Utilization*100)
	var tb stats.Table
	tb.SetHeader("Discipline", "Class", "mean wait", "p50", "p95", "p99")
	row := func(d string, label string, cs sched.ClassStats) {
		tb.AddRowf(d, label,
			fmtSec(cs.Wait.Mean()), fmtSec(cs.P50), fmtSec(cs.P95), fmtSec(cs.P99))
	}
	row("fifo", "human", fifo.Human)
	row("fifo", "machine", fifo.Machine)
	row("priority", "human", prio.Human)
	row("priority", "machine", prio.Machine)
	fmt.Fprint(w, tb.String())
	compareRow(w, "human p95 wait reduction under priority", "qualitative",
		pct(res.HumanP95Improvement))
	return res, nil
}

func serviceTime(r *logfmt.Record) time.Duration {
	// A request costs a fixed CPU overhead plus a size-proportional
	// component; §4 notes the CPU cost-per-byte grows as JSON responses
	// shrink, i.e. the fixed part dominates for small objects. The
	// absolute scale is normalized to the target utilization by the
	// caller.
	const fixed = 2 * time.Millisecond
	perByte := time.Duration(r.Bytes) * 200 * time.Nanosecond
	return fixed + perByte
}

func fmtSec(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
