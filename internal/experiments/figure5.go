package experiments

import (
	"fmt"
	"io"

	"repro/internal/flows"
	"repro/internal/logfmt"
	"repro/internal/periodicity"
	"repro/internal/stats"
)

// PeriodicityResult carries the §5.1 outcomes behind Fig. 5, Fig. 6, and
// the periodic-traffic statistics.
type PeriodicityResult struct {
	Analysis *periodicity.Result
	// PeriodicShare is the fraction of JSON requests that are periodic
	// (paper: 6.3%).
	PeriodicShare float64
	// MajorityShare is the fraction of periodic objects where >50% of
	// clients are periodic (paper: 20%).
	MajorityShare float64
	// UncacheableShare / UploadShare of periodic traffic (paper: 56.2% /
	// 78%).
	UncacheableShare float64
	UploadShare      float64
	// Histogram is the Fig. 5 object-period histogram.
	Histogram *stats.Histogram
	// PeriodicObjects is the number of objects with a detected period.
	PeriodicObjects int
	AnalyzedObjects int
}

// periodicity runs the §5.1 pipeline at most once per runner.
func (r *Runner) periodicity() (*PeriodicityResult, error) {
	r.perMu.Lock()
	defer r.perMu.Unlock()
	if r.periodicityRes != nil {
		return r.periodicityRes, nil
	}
	recs, err := r.PatternRecords()
	if err != nil {
		return nil, err
	}
	ex := flows.NewExtractor()
	ex.Filter = logfmt.JSONOnly
	for i := range recs {
		ex.Observe(&recs[i])
	}
	cfg := periodicity.DefaultConfig()
	cfg.Detector.Permutations = r.cfg.Permutations
	cfg.SampleBin = r.cfg.SampleBin
	cfg.Seed = r.cfg.Seed
	analysis := periodicity.Analyze(ex.Flows(), ex.TotalObserved(), cfg)

	res := &PeriodicityResult{
		Analysis:         analysis,
		PeriodicShare:    analysis.PeriodicShare(),
		MajorityShare:    analysis.ShareAboveMajority(),
		UncacheableShare: analysis.PeriodicUncacheableShare(),
		UploadShare:      analysis.PeriodicUploadShare(),
		Histogram:        analysis.PeriodHistogram(periodicity.DefaultPeriodEdges()),
		PeriodicObjects:  len(analysis.PeriodicObjects()),
		AnalyzedObjects:  len(analysis.Objects),
	}
	r.periodicityRes = res
	return res, nil
}

// Figure5 regenerates Fig. 5: the histogram of detected JSON object
// periods, with spikes at round machine-to-machine intervals.
func (r *Runner) Figure5(w io.Writer) (*PeriodicityResult, error) {
	w = out(w)
	res, err := r.periodicity()
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Figure 5: Histogram of JSON object periods")
	labels := []string{"30s", "1m", "2m", "3m", "5m", "10m", "15m", "30m", "1h"}
	values := make([]float64, len(labels))
	for i := 0; i < res.Histogram.NumBins() && i < len(labels); i++ {
		values[i] = float64(res.Histogram.Count(i))
	}
	fmt.Fprint(w, stats.BarChart(labels, values, 50))
	fmt.Fprintf(w, "  analyzed %d object flows; %d periodic\n",
		res.AnalyzedObjects, res.PeriodicObjects)
	compareRow(w, "JSON requests that are periodic", "6.3%", pct(res.PeriodicShare))
	compareRow(w, "periodic traffic uncacheable", "56.2%", pct(res.UncacheableShare))
	compareRow(w, "periodic traffic upload (POST)", "78%", pct(res.UploadShare))
	return res, nil
}

// Figure6 regenerates Fig. 6: the CDF of the share of periodic clients
// across periodic objects.
func (r *Runner) Figure6(w io.Writer) (*PeriodicityResult, error) {
	w = out(w)
	res, err := r.periodicity()
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Figure 6: CDF of the percent of periodic clients across objects")
	cdf := res.Analysis.PeriodicClientCDF()
	fmt.Fprint(w, stats.LineChart(cdf.Points(40), 60, 12))
	compareRow(w, "periodic objects with >50% periodic clients", "20%", pct(res.MajorityShare))
	return res, nil
}
