package experiments

import (
	"io"
	"testing"

	"repro/internal/obs"
)

// TestRunAllSpanHierarchyAndProvenance runs the full report sequentially
// and checks the provenance the tentpole promises: a RunAll root span
// with one child per step, dataset spans nested under the step that
// materialized them, per-step record/byte tallies in the ledger, and
// readiness flipping once both datasets exist.
func TestRunAllSpanHierarchyAndProvenance(t *testing.T) {
	r := NewRunner(smallConfig())
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	r.Instrument(reg, tr)
	health := &obs.Health{}
	r.NotifyReady(health)
	if health.Ready() {
		t.Fatal("ready before the run started")
	}

	rep, err := r.RunAll(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !health.Ready() {
		t.Error("not ready after both datasets materialized")
	}

	spans := tr.Spans()
	byName := map[string]obs.SpanStat{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["RunAll"]
	if !ok || root.Depth != 0 {
		t.Fatalf("no RunAll root span in %d spans", len(spans))
	}
	for _, step := range []string{"table 2", "figure 3", "figure 5", "resilience"} {
		s, ok := byName[step]
		if !ok {
			t.Errorf("step %q has no span", step)
			continue
		}
		if s.ParentID != root.ID || s.Depth != 1 {
			t.Errorf("step %q parent/depth = %d/%d, want %d/1", step, s.ParentID, s.Depth, root.ID)
		}
	}
	// Sequentially, datasets materialize lazily inside the first step
	// that needs them: the synth spans sit under a step, depth 2.
	for _, ds := range []string{"synth short-term dataset", "synth pattern dataset"} {
		s, ok := byName[ds]
		if !ok {
			t.Errorf("dataset %q has no span", ds)
			continue
		}
		if s.Depth != 2 {
			t.Errorf("dataset %q depth = %d, want 2 (nested under a step)", ds, s.Depth)
		}
		if s.Records <= 0 || s.Bytes <= 0 {
			t.Errorf("dataset %q tallies = %d records / %d bytes", ds, s.Records, s.Bytes)
		}
	}

	// Ledger provenance: steps that read a dataset record its volume;
	// self-contained steps record zero.
	steps := map[string]StepStatus{}
	for _, st := range rep.Steps {
		steps[st.Name] = st
	}
	if st := steps["Table 2"]; st.Records <= 0 || st.Bytes <= 0 {
		t.Errorf("Table 2 provenance = %d records / %d bytes, want > 0", st.Records, st.Bytes)
	}
	if st := steps["Figure 1"]; st.Records != 0 || st.Bytes != 0 {
		t.Errorf("Figure 1 provenance = %d/%d, want 0/0 (generates its own input)", st.Records, st.Bytes)
	}
	// Table 2 reads both datasets, Figure 3 only the short-term one.
	if steps["Table 2"].Records <= steps["Figure 3 and §4 request/response types"].Records {
		t.Errorf("Table 2 (both datasets) records %d not > Figure 3 (short only) records %d",
			steps["Table 2"].Records, steps["Figure 3 and §4 request/response types"].Records)
	}

	// ManifestSteps projects the ledger 1:1.
	ms := rep.ManifestSteps()
	if len(ms) != len(rep.Steps) {
		t.Fatalf("manifest steps = %d, want %d", len(ms), len(rep.Steps))
	}
	for i, m := range ms {
		st := rep.Steps[i]
		if m.Name != st.Name || m.Status != st.State.String() ||
			m.WallNS != int64(st.Wall) || m.Records != st.Records || m.Bytes != st.Bytes {
			t.Errorf("manifest step %d = %+v, want projection of %+v", i, m, st)
		}
	}
}

// TestRunAllParallelMaterializeSpan checks the parallel path's extra
// trace level: RunAll → materialize datasets → dataset.
func TestRunAllParallelMaterializeSpan(t *testing.T) {
	cfg := smallConfig()
	cfg.Jobs = 4
	r := NewRunner(cfg)
	tr := obs.NewTrace()
	r.Instrument(obs.NewRegistry(), tr)

	if _, err := r.RunAll(io.Discard); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.SpanStat{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	root := byName["RunAll"]
	mat, ok := byName["materialize datasets"]
	if !ok {
		t.Fatal("parallel run has no materialize span")
	}
	if mat.ParentID != root.ID || mat.Depth != 1 {
		t.Errorf("materialize parent/depth = %d/%d, want %d/1", mat.ParentID, mat.Depth, root.ID)
	}
	for _, ds := range []string{"synth short-term dataset", "synth pattern dataset"} {
		s, ok := byName[ds]
		if !ok {
			t.Errorf("dataset %q has no span", ds)
			continue
		}
		if s.ParentID != mat.ID {
			t.Errorf("dataset %q parent = %d, want materialize %d", ds, s.ParentID, mat.ID)
		}
	}
	// Worker-run steps hang off the root, tagged with their worker lane.
	st, ok := byName["table 2"]
	if !ok {
		t.Fatal("no table 2 span in parallel run")
	}
	if st.ParentID != root.ID {
		t.Errorf("parallel step parent = %d, want root %d", st.ParentID, root.ID)
	}
	found := false
	for _, a := range st.Attrs {
		if a.Key == "worker" {
			found = true
		}
	}
	if !found {
		t.Errorf("parallel step span missing worker attr: %+v", st.Attrs)
	}
}
