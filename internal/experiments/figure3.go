package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/stats"
	"repro/internal/taxonomy"
	"repro/internal/uastring"
)

// Figure3Result carries the §4 traffic-source characterization (Fig. 3)
// plus the request-type and response-size statistics reported in the
// same section's text.
type Figure3Result struct {
	Char *taxonomy.Characterization

	MobileShare   float64 // paper: >= 55% (incl. browser)
	EmbeddedShare float64 // paper: 12%
	DesktopShare  float64
	UnknownShare  float64 // paper: 24%
	NonBrowser    float64 // paper: 88%
	MobileBrowser float64 // paper: 2.5%
	GETShare      float64 // paper: 84%
	POSTOfRest    float64 // paper: 96%
	// JSONvsHTML median and p75 deltas (paper: 24% and 87% smaller).
	MedianSmaller float64
	P75Smaller    float64
}

// Figure3 regenerates Fig. 3 (JSON requests by device type) and the §4
// request/response statistics, running the taxonomy characterization in
// parallel shards over the short-term dataset.
func (r *Runner) Figure3(w io.Writer) (Figure3Result, error) {
	w = out(w)
	recs, err := r.ShortTermRecords()
	if err != nil {
		return Figure3Result{}, err
	}
	char := taxonomy.NewCharacterization()
	err = core.RunParallel(core.MemorySource(recs), 0,
		func() *charShard { return &charShard{c: taxonomy.NewCharacterization()} },
		func(shards []*charShard) {
			for _, s := range shards {
				char.Merge(s.c)
			}
		})
	if err != nil {
		return Figure3Result{}, err
	}

	res := Figure3Result{
		Char:          char,
		MobileShare:   char.DeviceShare(uastring.DeviceMobile),
		EmbeddedShare: char.DeviceShare(uastring.DeviceEmbedded),
		DesktopShare:  char.DeviceShare(uastring.DeviceDesktop),
		UnknownShare:  char.DeviceShare(uastring.DeviceUnknown),
		NonBrowser:    char.NonBrowserShare(),
		MobileBrowser: char.MobileBrowserShare(),
		GETShare:      char.GETShare(),
		POSTOfRest:    char.POSTShareOfRest(),
	}
	j50, j75, h50, h75 := char.SizeQuantiles()
	if h50 > 0 {
		res.MedianSmaller = 1 - j50/h50
	}
	if h75 > 0 {
		res.P75Smaller = 1 - j75/h75
	}

	fmt.Fprintln(w, "Figure 2: JSON traffic taxonomy (measured shares in brackets)")
	fmt.Fprint(w, taxonomy.Figure2Tree(char))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 3: Categorization of JSON requests by device type")
	labels := []string{"Mobile", "Unknown", "Embedded", "Desktop"}
	values := []float64{res.MobileShare, res.UnknownShare, res.EmbeddedShare, res.DesktopShare}
	fmt.Fprint(w, stats.BarChart(labels, values, 50))
	compareRow(w, "mobile share of JSON requests", ">=55%", pct(res.MobileShare))
	compareRow(w, "embedded share", "12%", pct(res.EmbeddedShare))
	compareRow(w, "unknown share", "24%", pct(res.UnknownShare))
	compareRow(w, "non-browser traffic", "88%", pct(res.NonBrowser))
	compareRow(w, "mobile browser traffic", "2.5%", pct(res.MobileBrowser))

	mix := char.UAStringMix()
	compareRow(w, "UA-string mix mobile/embedded/desktop", "73%/17%/3%",
		fmt.Sprintf("%s/%s/%s", pct(mix["Mobile"]), pct(mix["Embedded"]), pct(mix["Desktop"])))

	fmt.Fprintln(w, "Request type (§4):")
	compareRow(w, "GET (download) share", "84%", pct(res.GETShare))
	compareRow(w, "POST share of remainder", "96%", pct(res.POSTOfRest))

	fmt.Fprintln(w, "Response size (§4):")
	compareRow(w, "JSON smaller than HTML at median", "24%", pct(res.MedianSmaller))
	compareRow(w, "JSON smaller than HTML at p75", "87%", pct(res.P75Smaller))
	return res, nil
}

// charShard routes all record types through ObserveAny so JSON filtering
// and HTML size collection both happen per shard.
type charShard struct{ c *taxonomy.Characterization }

// Observe implements core.Observer.
func (s *charShard) Observe(r *logfmt.Record) { s.c.ObserveAny(r) }
