package experiments

import (
	"fmt"
	"io"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/defend"
	"repro/internal/edge"
	"repro/internal/logfmt"
	"repro/internal/ngram"
	"repro/internal/obs"
	"repro/internal/synth"
)

// AdversarialCeiling is the origin-amplification bound the defended
// edge must hold: attack-attributed origin fetches per attack request.
// An undefended edge lets a cache-busting storm through one-for-one
// (amplification ~1 for that population); the detect-and-defend loop
// must keep the blended figure under this ceiling. The same constant
// gates the live replay in scripts/attack-check.sh.
const AdversarialCeiling = 0.35

// AdversarialResult carries the robustness experiment: the same benign
// stream with an overlaid multi-population attack, served by an
// undefended and a defended edge, compared on origin amplification and
// benign-traffic health.
type AdversarialResult struct {
	// BenignRequests and AttackRequests are the stream sizes at the
	// base attack intensity; AttackRequests2x is the doubled storm.
	BenignRequests   int
	AttackRequests   int
	AttackRequests2x int

	// *Amplification is attack-attributed origin fetches per attack
	// request at the base intensity; *AttackFetches the raw counts.
	UndefendedAmplification float64
	DefendedAmplification   float64
	UndefendedAttackFetches int64
	DefendedAttackFetches   int64

	// *Growth is the factor by which attack-attributed origin fetches
	// grow when the attack doubles: near 2 means the edge passes the
	// extra load straight to origin, near 1 means the defense absorbed
	// it.
	UndefendedGrowth float64
	DefendedGrowth   float64

	// Benign-traffic health at the base intensity: cache hit rate over
	// benign GETs of cacheable objects, modeled p99 latency, and the
	// defended stack's benign collateral (rejected benign requests).
	UndefendedBenignHitRate  float64
	DefendedBenignHitRate    float64
	UndefendedBenignP99      time.Duration
	DefendedBenignP99        time.Duration
	DefendedBenignRejectRate float64

	// Defense actions at the base intensity.
	Shed, Collapsed, NegativeHits, AnomalyFlags int64

	// Ceiling echoes AdversarialCeiling; CeilingOK is the defended
	// bound holding, StrictlyWorse the undefended edge doing worse on
	// both amplification and growth.
	Ceiling       float64
	CeilingOK     bool
	StrictlyWorse bool
}

// advLatency models serving cost for the benign-latency comparison:
// a cache hit answers locally, anything touching origin pays a
// round trip per fetch. The absolute numbers are nominal; what the
// experiment compares is their distribution shift under cache thrash.
const (
	advHitCost   = 2 * time.Millisecond
	advFetchCost = 25 * time.Millisecond
)

// advStack is one edge under test on a simulated clock, with an
// origin-fetch counter sampled around each request so fetches attribute
// exactly to the request that caused them (serving is serial).
type advStack struct {
	edge    *edge.HTTPEdge
	def     *defend.Defender
	inst    *defend.Instrumentation
	fetches atomic.Int64
	clock   time.Time
}

type advCountingOrigin struct {
	inner edge.Origin
	n     *atomic.Int64
}

func (o advCountingOrigin) Fetch(path string) ([]byte, string, bool, error) {
	o.n.Add(1)
	return o.inner.Fetch(path)
}

// newAdvStack builds an edge sized so the benign working set fits but a
// cache-busting storm causes real eviction pressure. The defended stack
// gets the full detect-and-defend loop: token buckets, cache-key
// collapse, negative caching, fan-out suspicion, and the ngram request
// detector trained on the benign stream.
func newAdvStack(defended bool, name string, model *ngram.Model, reg *obs.Registry) *advStack {
	s := &advStack{clock: resilienceEpoch}
	s.edge = &edge.HTTPEdge{
		Cache:  edge.NewCache(4<<20, time.Minute, 4),
		Origin: advCountingOrigin{inner: &edge.WildcardOrigin{}, n: &s.fetches},
		Now:    func() time.Time { return s.clock },
	}
	child := obs.NewRegistry()
	if reg != nil {
		child = reg.With("stack", name)
	}
	s.edge.Obs = edge.NewInstrumentation(child)
	if !defended {
		return s
	}
	var det *anomaly.RequestDetector
	if model != nil {
		det = anomaly.NewRequestDetector(model)
		det.Clustered = true
	}
	s.def = defend.New(defend.Config{
		// Collapse earlier than the default: the experiment's storm is
		// small, and a live deployment would tune this to its traffic.
		BustVariants: 6,
		Detector:     det,
	})
	s.inst = s.def.Instrument(child)
	s.edge.Defend = s.def
	return s
}

// advTally accumulates one stack's serving outcomes over a labeled
// stream.
type advTally struct {
	attackReqs    int
	attackFetches int64
	benignReqs    int
	benignHits    int
	benignCached  int // benign GETs of cacheable objects (hit or miss)
	benignReject  int
	benignLat     []time.Duration
}

// serve replays one synthetic record against the stack. The request
// carries the record's identity (client, agent, host, full URL) so the
// defense sees the same stream the detectors would; the response's
// X-Cache header and the fetch-counter delta say what the edge did.
func (s *advStack) serve(rec *logfmt.Record, isAttack bool, t *advTally) {
	s.clock = rec.Time
	req := httptest.NewRequest(rec.Method, rec.URL, nil)
	req.Header.Set("User-Agent", rec.UserAgent)
	req.RemoteAddr = fmt.Sprintf("c%x:1", rec.ClientID)
	before := s.fetches.Load()
	w := httptest.NewRecorder()
	s.edge.ServeHTTP(w, req)
	delta := s.fetches.Load() - before

	if isAttack {
		t.attackReqs++
		t.attackFetches += delta
		return
	}
	t.benignReqs++
	if w.Code == 429 {
		t.benignReject++
		return
	}
	t.benignLat = append(t.benignLat, advHitCost+time.Duration(delta)*advFetchCost)
	if rec.Method == "GET" {
		switch w.Header().Get("X-Cache") {
		case "HIT", "STALE":
			t.benignHits++
			t.benignCached++
		case "MISS":
			t.benignCached++
		}
	}
}

func (t *advTally) hitRate() float64 {
	if t.benignCached == 0 {
		return 0
	}
	return float64(t.benignHits) / float64(t.benignCached)
}

func (t *advTally) p99() time.Duration {
	if len(t.benignLat) == 0 {
		return 0
	}
	sort.Slice(t.benignLat, func(i, j int) bool { return t.benignLat[i] < t.benignLat[j] })
	return t.benignLat[(len(t.benignLat)-1)*99/100]
}

// adversarialConfig is a small synthetic capture the four stacks replay
// in full: 6 minutes, 9000 benign requests, 12 domains so per-domain
// traffic is dense enough for the attack populations to matter.
func (r *Runner) adversarialConfig(attack synth.AttackConfig) synth.Config {
	cfg := synth.ShortTermConfig(r.cfg.Seed+7, 1)
	cfg.Duration = 6 * time.Minute
	cfg.TargetRequests = 9000
	cfg.Domains = 12
	cfg.Shards = 0
	cfg.Attack = attack
	return cfg
}

// advAttack is the base attack mix: half of benign volume, spread over
// the four populations, starting after a 90-second clean baseline so
// the detectors have benign history.
func advAttack(mult float64) synth.AttackConfig {
	return synth.AttackConfig{
		CacheBustShare: 0.20 * mult,
		FlashShare:     0.10 * mult,
		BotShare:       0.10 * mult,
		AmplifyShare:   0.10 * mult,
		FlashObjects:   4,
		Start:          90 * time.Second,
	}
}

// trainAdvModel fits the ngram request model on the benign stream's
// clustered vocabulary, exactly as the §5.1 anomaly application does —
// the defended stack's request detector scores live traffic against it.
func trainAdvModel(recs []logfmt.Record) *ngram.Model {
	seq := ngram.NewSequencer()
	seq.Filter = logfmt.JSONOnly
	seq.Clustered = true
	for i := range recs {
		seq.Observe(&recs[i])
	}
	train, _ := seq.Split()
	model := ngram.NewModel(1)
	for _, s := range train {
		model.Train(s)
	}
	return model
}

// Adversarial runs the detect-and-defend robustness experiment: one
// benign stream is generated twice more with an overlaid attack (base
// and doubled intensity), ground-truth labeled by subtraction
// (synth.AttackMask), and each combined stream is replayed against an
// undefended and a defended edge on the records' own clock. The
// defended edge must hold attack-attributed origin amplification under
// AdversarialCeiling while the undefended edge demonstrates why the
// defense exists: amplification several times higher, and origin load
// that scales with the attacker's budget.
func (r *Runner) Adversarial(w io.Writer) (AdversarialResult, error) {
	w = out(w)
	benign, err := core.Collect(core.SynthSource(r.adversarialConfig(synth.AttackConfig{})))
	if err != nil {
		return AdversarialResult{}, fmt.Errorf("experiments: generating benign stream: %w", err)
	}
	combined1, err := core.Collect(core.SynthSource(r.adversarialConfig(advAttack(1))))
	if err != nil {
		return AdversarialResult{}, fmt.Errorf("experiments: generating attack stream: %w", err)
	}
	combined2, err := core.Collect(core.SynthSource(r.adversarialConfig(advAttack(2))))
	if err != nil {
		return AdversarialResult{}, fmt.Errorf("experiments: generating doubled attack stream: %w", err)
	}
	mask1, err := synth.AttackMask(combined1, benign)
	if err != nil {
		return AdversarialResult{}, err
	}
	mask2, err := synth.AttackMask(combined2, benign)
	if err != nil {
		return AdversarialResult{}, err
	}
	model := trainAdvModel(benign)

	var lastDefendedStack *advStack
	runStack := func(defended bool, name string, recs []logfmt.Record, mask []bool) advTally {
		s := newAdvStack(defended, name, model, r.obsReg)
		var t advTally
		for i := range recs {
			s.serve(&recs[i], mask[i], &t)
		}
		if defended && name == "defended" {
			lastDefendedStack = s
		}
		return t
	}

	u1 := runStack(false, "undefended", combined1, mask1)
	d1 := runStack(true, "defended", combined1, mask1)
	u2 := runStack(false, "undefended-2x", combined2, mask2)
	d2 := runStack(true, "defended-2x", combined2, mask2)

	res := AdversarialResult{
		BenignRequests:          len(benign),
		AttackRequests:          u1.attackReqs,
		AttackRequests2x:        u2.attackReqs,
		UndefendedAttackFetches: u1.attackFetches,
		DefendedAttackFetches:   d1.attackFetches,
		UndefendedBenignHitRate: u1.hitRate(),
		DefendedBenignHitRate:   d1.hitRate(),
		UndefendedBenignP99:     u1.p99(),
		DefendedBenignP99:       d1.p99(),
		Ceiling:                 AdversarialCeiling,
	}
	if res.AttackRequests > 0 {
		res.UndefendedAmplification = float64(u1.attackFetches) / float64(u1.attackReqs)
		res.DefendedAmplification = float64(d1.attackFetches) / float64(d1.attackReqs)
	}
	if u1.attackFetches > 0 {
		res.UndefendedGrowth = float64(u2.attackFetches) / float64(u1.attackFetches)
	}
	if d1.attackFetches > 0 {
		res.DefendedGrowth = float64(d2.attackFetches) / float64(d1.attackFetches)
	}
	if d1.benignReqs > 0 {
		res.DefendedBenignRejectRate = float64(d1.benignReject) / float64(d1.benignReqs)
	}
	if s := lastDefendedStack; s != nil && s.inst != nil {
		res.Shed = s.inst.ShedAbuser.Value() + s.inst.ShedClientRate.Value() + s.inst.ShedClassRate.Value()
		res.Collapsed = s.inst.Collapsed.Value()
		res.NegativeHits = s.inst.NegativeHits.Value()
		res.AnomalyFlags = s.inst.FanOutFlags.Value() + s.inst.AnomalousRequest.Value() + s.inst.AnomalousPeriod.Value()
	}
	res.CeilingOK = res.DefendedAmplification <= res.Ceiling
	res.StrictlyWorse = res.UndefendedAmplification > res.DefendedAmplification &&
		res.UndefendedGrowth > res.DefendedGrowth

	fmt.Fprintln(w, "Adversarial traffic and the detect-and-defend loop")
	fmt.Fprintf(w, "  %d benign + %d attack requests (cache-bust, flash, bots, amplification)\n",
		res.BenignRequests, res.AttackRequests)
	fmt.Fprintf(w, "  origin amplification (attack fetches / attack requests):\n")
	fmt.Fprintf(w, "    undefended: %.3f   defended: %.3f   ceiling: %.2f\n",
		res.UndefendedAmplification, res.DefendedAmplification, res.Ceiling)
	fmt.Fprintf(w, "  attack doubled: undefended origin fetches grow %.2fx, defended %.2fx\n",
		res.UndefendedGrowth, res.DefendedGrowth)
	fmt.Fprintf(w, "  benign traffic: hit rate %s -> %s, modeled p99 %s -> %s, rejected %s\n",
		pct(res.UndefendedBenignHitRate), pct(res.DefendedBenignHitRate),
		res.UndefendedBenignP99, res.DefendedBenignP99,
		pct(res.DefendedBenignRejectRate))
	fmt.Fprintf(w, "  defense actions: %d shed, %d collapsed, %d negative hits, %d anomaly flags\n",
		res.Shed, res.Collapsed, res.NegativeHits, res.AnomalyFlags)
	verdict := "amplification bounded, strictly worse undefended"
	if !res.CeilingOK || !res.StrictlyWorse {
		verdict = "VIOLATED"
	}
	compareRow(w, "defense holds the amplification ceiling", "qualitative", verdict)
	return res, nil
}
