package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceHierarchy(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTrace()
	tr.Now = func() time.Time { return now }

	root := tr.Start("RunAll")
	root.SetAttrs(Int("jobs", 4), Float("scale", 0.002))
	step := root.Child("table 2")
	ds := step.Child("synth short-term dataset")
	ds.AddRecords(500)
	now = now.Add(time.Second)
	ds.End()
	step.End()
	root.End()

	stats := tr.Spans()
	if len(stats) != 3 {
		t.Fatalf("spans = %d, want 3", len(stats))
	}
	byName := map[string]SpanStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	r, s, d := byName["RunAll"], byName["table 2"], byName["synth short-term dataset"]
	if r.ParentID != 0 || r.Depth != 0 {
		t.Errorf("root parent/depth = %d/%d, want 0/0", r.ParentID, r.Depth)
	}
	if s.ParentID != r.ID || s.Depth != 1 {
		t.Errorf("step parent = %d (root %d), depth %d", s.ParentID, r.ID, s.Depth)
	}
	if d.ParentID != s.ID || d.Depth != 2 {
		t.Errorf("dataset parent = %d (step %d), depth %d", d.ParentID, s.ID, d.Depth)
	}
	if len(r.Attrs) != 2 || r.Attrs[0].Key != "jobs" || r.Attrs[0].Value != int64(4) {
		t.Errorf("root attrs = %+v", r.Attrs)
	}

	// The table indents by depth and sums only root spans.
	var b strings.Builder
	tr.WriteTable(&b)
	out := b.String()
	if !strings.Contains(out, "  table 2") || !strings.Contains(out, "    synth short-term dataset") {
		t.Errorf("table not indented by depth:\n%s", out)
	}
	if !strings.Contains(out, "total") || !strings.Contains(out, "1s") {
		t.Errorf("total should sum root spans only (1s):\n%s", out)
	}
}

func TestTraceRingBuffer(t *testing.T) {
	tr := &Trace{Limit: 3}
	for i := 0; i < 5; i++ {
		tr.Start(string(rune('a' + i))).End()
	}
	stats := tr.Spans()
	if len(stats) != 3 {
		t.Fatalf("retained = %d, want 3", len(stats))
	}
	// Oldest evicted first: c, d, e remain, in start order.
	names := []string{stats[0].Name, stats[1].Name, stats[2].Name}
	if names[0] != "c" || names[1] != "d" || names[2] != "e" {
		t.Errorf("retained = %v, want [c d e]", names)
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}

	var b strings.Builder
	tr.WriteTable(&b)
	if !strings.Contains(b.String(), "2 older spans dropped") {
		t.Errorf("table missing dropped-span footer:\n%s", b.String())
	}
}

func TestTraceNilChildAndAttrs(t *testing.T) {
	var sp *Span
	if c := sp.Child("x"); c != nil {
		t.Error("nil span Child != nil")
	}
	sp.SetAttrs(String("k", "v")) // must not panic
	sp.End()
}

func TestSpanContext(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("root")
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("SpanFromContext = %v, want root", got)
	}

	cctx, child := StartChild(ctx, "child")
	if child == nil {
		t.Fatal("StartChild returned nil span under a live trace")
	}
	if got := SpanFromContext(cctx); got != child {
		t.Error("StartChild context does not carry the child")
	}
	child.End()
	root.End()

	stats := tr.Spans()
	if len(stats) != 2 || stats[1].ParentID != stats[0].ID {
		t.Errorf("child not parented on root: %+v", stats)
	}

	// Untraced context: everything stays nil and no-op.
	if got := SpanFromContext(context.Background()); got != nil {
		t.Errorf("empty context span = %v", got)
	}
	nctx, nsp := StartChild(context.Background(), "x")
	if nsp != nil {
		t.Error("StartChild on untraced context returned a span")
	}
	if SpanFromContext(nctx) != nil {
		t.Error("untraced StartChild polluted the context")
	}

	// Nil span leaves the context unchanged.
	if ContextWithSpan(context.Background(), nil) != context.Background() {
		t.Error("ContextWithSpan(nil) allocated a new context")
	}
}
