package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "20260101-000000-1-1", 42, nil).Component("jsonrepro")
	l.Info("run starting", "jobs", 4)

	line := buf.String()
	for _, want := range []string{
		"level=INFO", `msg="run starting"`,
		"run_id=20260101-000000-1-1", "seed=42",
		"component=jsonrepro", "jobs=4",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q:\n%s", want, line)
		}
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "r", 1, nil)
	l.Debug("hidden")
	if buf.Len() != 0 {
		t.Errorf("debug logged at default level: %s", buf.String())
	}
	l.Warn("w")
	l.Error("e")
	out := buf.String()
	if !strings.Contains(out, "level=WARN") || !strings.Contains(out, "level=ERROR") {
		t.Errorf("warn/error missing:\n%s", out)
	}

	buf.Reset()
	dl := NewLogger(&buf, "r", 1, slog.LevelDebug)
	dl.Debug("visible", "k", "v")
	if !strings.Contains(buf.String(), "level=DEBUG") {
		t.Errorf("debug level not honored:\n%s", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	if l.Component("x") != nil || l.With("k", "v") != nil || l.Slog() != nil {
		t.Error("nil logger derived a non-nil child")
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "r", 7, nil).With("shard", 3)
	l.Info("generating")
	if !strings.Contains(buf.String(), "shard=3") {
		t.Errorf("With field missing:\n%s", buf.String())
	}
}
