package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"
)

// This file implements run manifests: the `run-<id>.json` artifact every
// CLI run emits so a reviewer can reproduce any figure bit-for-bit. A
// manifest captures the full effective configuration (seed, scale,
// shards, parallelism, fault injection), the toolchain and VCS revision
// that built the binary, the per-step ledger from the experiment
// scheduler, dead-letter counts from tolerant ingest, a final snapshot
// of the metrics registry, and the span tree of the run.

// ManifestStep is one scheduler-ledger entry: what the step did and how
// it ended.
type ManifestStep struct {
	Name    string `json:"name"`
	Status  string `json:"status"` // completed | skipped | failed
	WallNS  int64  `json:"wall_ns"`
	Records int64  `json:"records,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
}

// Manifest is the self-describing record of one run.
type Manifest struct {
	Schema  string    `json:"schema"` // "repro/run-manifest/v1"
	RunID   string    `json:"run_id"`
	Tool    string    `json:"tool"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	WallNS  int64     `json:"wall_ns"`
	Outcome string    `json:"outcome"` // completed | interrupted | failed

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// VCS fields come from debug/buildinfo when the binary was built
	// inside a version-controlled checkout (empty otherwise).
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`

	// Config is the tool's full effective configuration (every flag that
	// influences the output).
	Config map[string]any `json:"config"`

	// Steps is the per-step outcome ledger, in report order.
	Steps []ManifestStep `json:"steps,omitempty"`

	// DeadLetters counts records quarantined by tolerant ingest.
	DeadLetters int64 `json:"dead_letters"`

	// Metrics is the final registry snapshot: counters and gauges by
	// name{labels}, histograms as _count and _sum entries.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Spans is the run's span tree (ids and parent ids preserved);
	// DroppedSpans counts spans evicted by the tracer's retention limit.
	Spans        []SpanLogEntry `json:"spans,omitempty"`
	DroppedSpans int64          `json:"dropped_spans,omitempty"`
}

// runSeq disambiguates run ids minted within the same second by the same
// process (tests, tight loops).
var runSeq atomic.Int64

// NewRunID mints a run identifier: UTC timestamp, pid, and a process-
// local sequence number. Filesystem- and URL-safe.
func NewRunID() string {
	return time.Now().UTC().Format("20060102-150405") +
		"-" + strconv.Itoa(os.Getpid()) +
		"-" + strconv.FormatInt(runSeq.Add(1), 10)
}

// NewManifest returns a manifest for the named tool with the runtime,
// toolchain, and VCS fields filled in and Start set to now.
func NewManifest(tool, runID string) *Manifest {
	m := &Manifest{
		Schema:     "repro/run-manifest/v1",
		RunID:      runID,
		Tool:       tool,
		Start:      time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     map[string]any{},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// Finish stamps the end time, wall duration, and outcome.
func (m *Manifest) Finish(outcome string) {
	m.End = time.Now().UTC()
	m.WallNS = int64(m.End.Sub(m.Start))
	m.Outcome = outcome
}

// AddMetrics snapshots reg into the manifest (no-op on a nil registry).
func (m *Manifest) AddMetrics(reg *Registry) {
	if reg != nil {
		m.Metrics = SnapshotMetrics(reg)
	}
}

// AddTrace embeds tr's span tree and dropped-span count (no-op on nil).
func (m *Manifest) AddTrace(tr *Trace) {
	if tr == nil {
		return
	}
	m.Spans = tr.spanLogEntries()
	m.DroppedSpans = tr.Dropped()
}

// Path returns the manifest's filename under dir: run-<id>.json.
func (m *Manifest) Path(dir string) string {
	return filepath.Join(dir, "run-"+m.RunID+".json")
}

// WriteFile writes the manifest as indented JSON to Path(dir) and
// returns the path written. The directory is created if missing, so
// tools can default their manifests into a git-ignored out/ directory
// without a setup step.
func (m *Manifest) WriteFile(dir string) (string, error) {
	if dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", fmt.Errorf("obs: creating manifest dir: %w", err)
		}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: encoding run manifest: %w", err)
	}
	data = append(data, '\n')
	path := m.Path(dir)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("obs: writing run manifest: %w", err)
	}
	return path, nil
}

// SnapshotMetrics flattens a registry into name{labels} → value:
// counters and gauges directly, histograms as _count and _sum entries —
// the manifest-friendly projection of a /metrics scrape.
func SnapshotMetrics(r *Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			key := f.name
			if lk := labelKey(s.labels); lk != "" {
				key += "{" + lk + "}"
			}
			switch {
			case s.c != nil:
				out[key] = float64(s.c.Value())
			case s.cfn != nil:
				out[key] = float64(s.cfn())
			case s.g != nil:
				out[key] = s.g.Value()
			case s.gfn != nil:
				out[key] = s.gfn()
			case s.h != nil:
				snap := s.h.Snapshot()
				countKey, sumKey := f.name+"_count", f.name+"_sum"
				if lk := labelKey(s.labels); lk != "" {
					countKey += "{" + lk + "}"
					sumKey += "{" + lk + "}"
				}
				out[countKey] = float64(snap.Count)
				out[sumKey] = snap.Sum
			}
		}
	}
	return out
}
