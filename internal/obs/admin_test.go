package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestAdminMuxRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("edge_cache_hits_total").Add(5)
	srv := httptest.NewServer(AdminMux(reg, nil))
	defer srv.Close()

	code, body, hdr := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "edge_cache_hits_total 5") {
		t.Errorf("/metrics missing sample:\n%s", body)
	}

	code, body, _ = get(t, srv.URL+"/debug/vars")
	if code != 200 || !strings.Contains(body, "cmdline") {
		t.Errorf("/debug/vars status=%d body=%.80s", code, body)
	}

	code, body, _ = get(t, srv.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status=%d", code)
	}
	code, _, _ = get(t, srv.URL+"/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline status=%d", code)
	}

	code, body, _ = get(t, srv.URL+"/healthz")
	if code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("/healthz status=%d body=%q", code, body)
	}

	// No Health wired: /readyz has no gate and answers 200.
	code, body, _ = get(t, srv.URL+"/readyz")
	if code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("ungated /readyz status=%d body=%q", code, body)
	}

	code, body, _ = get(t, srv.URL+"/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index status=%d body=%q", code, body)
	}
	code, _, _ = get(t, srv.URL+"/nope")
	if code != 404 {
		t.Errorf("unknown path status=%d, want 404", code)
	}
}

// TestAdminMuxRouteComposition is the registration-order contract for
// the admin surface: commands extend AdminMux with their own endpoints
// (/fleetz on jsonfleet, /charz on a livechar-enabled edge) after
// construction, and every built-in route must keep answering — a new
// registration must never shadow an existing one, and the catch-all
// index must not swallow extensions. ServeMux panics on exact-pattern
// duplicates, so the one shadowing hazard left is a subtree pattern
// ("/charz/") vs the built-ins; this test pins the full composed table.
func TestAdminMuxRouteComposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("livechar_events_total").Add(3)
	health := &Health{}
	health.SetReady(true)
	mux := AdminMux(reg, health)
	// Register the extension endpoints exactly as the commands do:
	// after AdminMux returns, before the listener opens.
	mux.HandleFunc("/fleetz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"live":3}`))
	})
	mux.HandleFunc("/charz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"schema":"repro/livechar/v1"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	routes := []struct {
		path     string
		wantCode int
		wantBody string // substring
	}{
		{"/metrics", 200, "livechar_events_total 3"},
		{"/healthz", 200, "ok"},
		{"/readyz", 200, "ready"},
		{"/debug/vars", 200, "cmdline"},
		{"/debug/pprof/", 200, "goroutine"},
		{"/fleetz", 200, `"live":3`},
		{"/charz", 200, "repro/livechar/v1"},
		{"/", 200, "/metrics"},
		{"/charzzz", 404, ""}, // extensions must not claim subtrees
	}
	for _, rt := range routes {
		code, body, _ := get(t, srv.URL+rt.path)
		if code != rt.wantCode {
			t.Errorf("%s status = %d, want %d", rt.path, code, rt.wantCode)
		}
		if rt.wantBody != "" && !strings.Contains(body, rt.wantBody) {
			t.Errorf("%s body %.120q missing %q", rt.path, body, rt.wantBody)
		}
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("up").Set(1)
	srv, url, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, _ := get(t, url+"/metrics")
	if code != 200 || !strings.Contains(body, "up 1") {
		t.Errorf("Serve scrape: status=%d body=%q", code, body)
	}
}

func TestReadyz(t *testing.T) {
	h := &Health{}
	srv := httptest.NewServer(AdminMux(NewRegistry(), h))
	defer srv.Close()

	code, body, _ := get(t, srv.URL+"/readyz")
	if code != 503 || !strings.HasPrefix(body, "not ready") {
		t.Errorf("pre-ready /readyz status=%d body=%q", code, body)
	}
	h.SetReady(true)
	code, body, _ = get(t, srv.URL+"/readyz")
	if code != 200 || !strings.HasPrefix(body, "ready") {
		t.Errorf("ready /readyz status=%d body=%q", code, body)
	}
	h.SetReady(false)
	if code, _, _ := get(t, srv.URL+"/readyz"); code != 503 {
		t.Errorf("unready /readyz status=%d, want 503", code)
	}

	// Nil receiver: never ready, never panics.
	var nilH *Health
	nilH.SetReady(true)
	if nilH.Ready() {
		t.Error("nil Health reports ready")
	}
}
