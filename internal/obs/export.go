package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// This file holds the two trace exporters: the Chrome trace_event JSON
// document (loadable in about:tracing or https://ui.perfetto.dev) and a
// compact JSONL span log (one JSON object per span, parent ids intact)
// for programmatic diffing of run provenance.

// chromeEvent is one trace_event entry: a "complete" (ph=X) slice with
// microsecond timestamps relative to the earliest span.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level JSON object trace viewers load.
type chromeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the retained spans as a Chrome trace_event
// JSON document. Spans become "complete" (ph=X) events; the viewer
// renders nesting by time containment within a lane (tid), so the
// exporter assigns each span a lane where its interval nests correctly —
// preferring its parent's lane — and concurrent siblings spread across
// lanes. In-flight spans export with their elapsed time so far. A nil
// trace writes an empty document.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	stats := t.Spans()
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if d := t.Dropped(); d > 0 {
		doc.OtherData = map[string]any{"dropped_spans": d}
	}
	if len(stats) > 0 {
		doc.TraceEvents = assignLanes(stats)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// assignLanes places each span on a lane (tid) such that every lane is a
// valid containment forest: a span joins a lane only when the lane's
// innermost still-open span fully contains it. Spans prefer their
// parent's lane, so trees render nested; overlapping siblings spill onto
// fresh lanes.
func assignLanes(stats []SpanStat) []chromeEvent {
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := stats[order[a]], stats[order[b]]
		if !sa.Start.Equal(sb.Start) {
			return sa.Start.Before(sb.Start)
		}
		return sa.ID < sb.ID
	})

	epoch := stats[order[0]].Start
	end := func(s SpanStat) time.Time { return s.Start.Add(s.Wall) }

	// Each lane holds a stack of the ends of its currently-open spans.
	type laneState struct{ open []time.Time }
	var lanes []*laneState
	laneOf := make(map[int64]int, len(stats))

	// fits pops spans that ended before start and reports whether a span
	// spanning [start, stop] can open on the lane.
	fits := func(l *laneState, start, stop time.Time) bool {
		for len(l.open) > 0 && !l.open[len(l.open)-1].After(start) {
			l.open = l.open[:len(l.open)-1]
		}
		return len(l.open) == 0 || !l.open[len(l.open)-1].Before(stop)
	}

	events := make([]chromeEvent, 0, len(stats))
	for _, i := range order {
		s := stats[i]
		start, stop := s.Start, end(s)
		lane := -1
		if p, ok := laneOf[s.ParentID]; ok && fits(lanes[p], start, stop) {
			lane = p
		}
		if lane < 0 {
			for li, l := range lanes {
				if fits(l, start, stop) {
					lane = li
					break
				}
			}
		}
		if lane < 0 {
			lanes = append(lanes, &laneState{})
			lane = len(lanes) - 1
		}
		lanes[lane].open = append(lanes[lane].open, stop)
		laneOf[s.ID] = lane

		args := map[string]any{"span_id": s.ID}
		if s.ParentID != 0 {
			args["parent_id"] = s.ParentID
		}
		if s.Records != 0 {
			args["records"] = s.Records
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if !s.Done {
			args["in_flight"] = true
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			TS:  float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur: float64(s.Wall) / float64(time.Microsecond),
			PID: 1, TID: lane, Args: args,
		})
	}
	return events
}

// SpanLogEntry is one line of the JSONL span log.
type SpanLogEntry struct {
	ID      int64          `json:"id"`
	Parent  int64          `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Start   time.Time      `json:"start"`
	WallNS  int64          `json:"wall_ns"`
	Records int64          `json:"records,omitempty"`
	Bytes   int64          `json:"bytes,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Open    bool           `json:"in_flight,omitempty"`
}

// spanLogEntries converts the retained spans to log entries.
func (t *Trace) spanLogEntries() []SpanLogEntry {
	stats := t.Spans()
	out := make([]SpanLogEntry, len(stats))
	for i, s := range stats {
		e := SpanLogEntry{
			ID: s.ID, Parent: s.ParentID, Name: s.Name, Start: s.Start.UTC(),
			WallNS: int64(s.Wall), Records: s.Records, Bytes: s.Bytes, Open: !s.Done,
		}
		if len(s.Attrs) > 0 {
			e.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				e.Attrs[a.Key] = a.Value
			}
		}
		out[i] = e
	}
	return out
}

// WriteSpanLog writes the retained spans as JSONL, one object per line
// in start order, with ids and parent ids preserved so consumers can
// rebuild the hierarchy. A nil trace writes nothing.
func (t *Trace) WriteSpanLog(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range t.spanLogEntries() {
		if err := enc.Encode(&e); err != nil {
			return err
		}
	}
	return nil
}
