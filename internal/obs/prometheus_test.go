package obs

import (
	"strings"
	"testing"
)

func scrape(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestPrometheusCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	reg.Help("requests_total", "Total requests.")
	reg.Counter("requests_total", "method", "get").Add(3)
	reg.Gauge("temp").Set(1.5)
	out := scrape(t, reg)
	for _, want := range []string{
		"# HELP requests_total Total requests.\n",
		"# TYPE requests_total counter\n",
		`requests_total{method="get"} 3` + "\n",
		"# TYPE temp gauge\n",
		"temp 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m_total", "path", "a\\b\"c\nd").Inc()
	out := scrape(t, reg)
	want := `m_total{path="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("escaped sample missing; want %q in:\n%s", want, out)
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.1, 1, 10}, "class", "human")
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := scrape(t, reg)
	wants := []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{class="human",le="0.1"} 1` + "\n",
		`lat_seconds_bucket{class="human",le="1"} 3` + "\n",
		`lat_seconds_bucket{class="human",le="10"} 4` + "\n",
		`lat_seconds_bucket{class="human",le="+Inf"} 5` + "\n",
		`lat_seconds_sum{class="human"} 56.05` + "\n",
		`lat_seconds_count{class="human"} 5` + "\n",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and ordered: the +Inf line comes last
	// among the bucket lines.
	if strings.Index(out, `le="10"`) > strings.Index(out, `le="+Inf"`) {
		t.Error("+Inf bucket not after finite buckets")
	}
}

func TestPrometheusFuncsAndOrdering(t *testing.T) {
	reg := NewRegistry()
	reg.CounterFunc("zz_total", func() int64 { return 9 })
	reg.GaugeFunc("aa_bytes", func() float64 { return 2048 })
	reg.Counter("mm_total", "server", "b").Inc()
	reg.Counter("mm_total", "server", "a").Inc()
	out := scrape(t, reg)
	// Families sorted by name; series within a family sorted by labels.
	iAA := strings.Index(out, "aa_bytes 2048")
	iMMa := strings.Index(out, `mm_total{server="a"} 1`)
	iMMb := strings.Index(out, `mm_total{server="b"} 1`)
	iZZ := strings.Index(out, "zz_total 9")
	if iAA < 0 || iMMa < 0 || iMMb < 0 || iZZ < 0 {
		t.Fatalf("missing samples in:\n%s", out)
	}
	if !(iAA < iMMa && iMMa < iMMb && iMMb < iZZ) {
		t.Errorf("output not sorted:\n%s", out)
	}
}
