package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates the exposition type of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindSummary:
		return "summary"
	default:
		return "histogram"
	}
}

// series is one labeled child of a family: exactly one of the value
// fields is set.
type series struct {
	labels []string // sorted key/value pairs, flattened
	c      *Counter
	g      *Gauge
	h      *Histogram
	hdr    *HDRHistogram
	cfn    func() int64
	gfn    func() float64
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	series []*series
	byKey  map[string]*series
}

// registryState is the storage shared by a Registry and all children
// derived via With.
type registryState struct {
	mu       sync.Mutex
	families map[string]*family
}

// Registry is a named collection of metrics. Metric accessors are
// get-or-create: asking twice for the same name and label set returns
// the same metric, so hot paths should resolve their metrics once and
// hold the pointers. With derives a child registry whose metrics carry
// additional fixed labels while sharing the parent's storage (and thus
// its exposition). A Registry is safe for concurrent use; a nil
// *Registry is not usable (callers gate instrumentation on non-nil).
type Registry struct {
	state *registryState
	base  []string // label pairs applied to everything created here
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{state: &registryState{families: make(map[string]*family)}}
}

// With returns a child registry that adds the given label pairs
// ("key", "value", ...) to every metric created through it. The child
// shares the parent's storage: WritePrometheus on either exposes both.
func (r *Registry) With(labels ...string) *Registry {
	if len(labels)%2 != 0 {
		panic("obs: With needs key/value label pairs")
	}
	base := make([]string, 0, len(r.base)+len(labels))
	base = append(base, r.base...)
	base = append(base, labels...)
	return &Registry{state: r.state, base: base}
}

// Help sets the HELP text emitted for the named metric family.
func (r *Registry) Help(name, text string) {
	st := r.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if f, ok := st.families[name]; ok {
		f.help = text
	} else {
		// Remember the help for a family registered later.
		st.families[name] = &family{name: name, help: text, kind: 0xff, byKey: map[string]*series{}}
	}
}

// Counter returns the counter with the given name and label pairs,
// creating it on first use. Panics if the name is already registered
// with a different kind.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.getOrCreate(name, kindCounter, nil, labels, func() *series {
		return &series{c: &Counter{}}
	})
	return s.c
}

// Gauge returns the gauge with the given name and label pairs, creating
// it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.getOrCreate(name, kindGauge, nil, labels, func() *series {
		return &series{g: &Gauge{}}
	})
	return s.g
}

// Histogram returns the histogram with the given name and label pairs,
// creating it with the given bucket bounds on first use (nil bounds =
// DefBuckets). Bounds passed on later calls for an existing histogram
// are ignored.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	s := r.getOrCreate(name, kindHistogram, nil, labels, func() *series {
		return &series{h: newHistogram(bounds)}
	})
	return s.h
}

// HDR returns the HDRHistogram with the given name and label pairs,
// creating it with cfg on first use (cfg passed on later calls for an
// existing histogram is ignored). It is exposed as a Prometheus
// summary: one {quantile="..."} series per default quantile, plus
// _sum and _count, all scaled by cfg.Unit — the honest way to publish
// a many-thousand-bucket HDR without a bucket series explosion.
func (r *Registry) HDR(name string, cfg HDRConfig, labels ...string) *HDRHistogram {
	s := r.getOrCreate(name, kindSummary, nil, labels, func() *series {
		return &series{hdr: NewHDRHistogram(cfg)}
	})
	return s.hdr
}

// RegisterHDR registers an existing HDRHistogram under name — for
// components that own the histogram's lifecycle themselves (window
// rotation, cross-process merges) but still want summary exposition on
// /metrics. Panics if the exact name and label set is already
// registered.
func (r *Registry) RegisterHDR(name string, h *HDRHistogram, labels ...string) {
	r.getOrCreate(name, kindSummary, errDuplicate, labels, func() *series {
		return &series{hdr: h}
	})
}

// CounterFunc registers a counter whose value is pulled from fn at
// exposition time — for components that already maintain their own
// monotonic counts (e.g. edge.Cache hit/miss totals). Panics if the
// exact name and label set is already registered.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...string) {
	r.getOrCreate(name, kindCounter, errDuplicate, labels, func() *series {
		return &series{cfn: fn}
	})
}

// GaugeFunc registers a gauge whose value is pulled from fn at
// exposition time. Panics if the exact name and label set is already
// registered.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	r.getOrCreate(name, kindGauge, errDuplicate, labels, func() *series {
		return &series{gfn: fn}
	})
}

// errDuplicate marks accessors that must not find an existing series.
var errDuplicate = fmt.Errorf("duplicate")

func (r *Registry) getOrCreate(name string, kind metricKind, onExisting error, labels []string, mk func() *series) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s needs key/value label pairs", name))
	}
	pairs := sortedPairs(r.base, labels)
	key := labelKey(pairs)

	st := r.state
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.families[name]
	if !ok || f.kind == 0xff {
		if !ok {
			f = &family{name: name, byKey: map[string]*series{}}
			st.families[name] = f
		}
		f.kind = kind
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, requested %s", name, f.kind, kind))
	}
	if s, ok := f.byKey[key]; ok {
		if onExisting != nil {
			panic(fmt.Sprintf("obs: metric %s{%s} already registered", name, key))
		}
		return s
	}
	s := mk()
	s.labels = pairs
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// sortedPairs merges base and extra label pairs, sorted by key so the
// same label set always canonicalizes identically.
func sortedPairs(base, extra []string) []string {
	n := (len(base) + len(extra)) / 2
	if n == 0 {
		return nil
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, n)
	for i := 0; i+1 < len(base); i += 2 {
		kvs = append(kvs, kv{base[i], base[i+1]})
	}
	for i := 0; i+1 < len(extra); i += 2 {
		kvs = append(kvs, kv{extra[i], extra[i+1]})
	}
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	out := make([]string, 0, 2*len(kvs))
	for _, p := range kvs {
		if !validName(p.k) {
			panic(fmt.Sprintf("obs: invalid label name %q", p.k))
		}
		out = append(out, p.k, p.v)
	}
	return out
}

func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteByte('=')
		b.WriteString(pairs[i+1])
	}
	return b.String()
}

// validName reports whether s is a legal Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// familySnapshot is a race-free copy of a family's series list; the
// series contents themselves are immutable or atomic.
type familySnapshot struct {
	name   string
	kind   metricKind
	help   string
	series []*series
}

// snapshotFamilies returns a stable, name-sorted copy of the family
// list for exposition.
func (r *Registry) snapshotFamilies() []familySnapshot {
	st := r.state
	st.mu.Lock()
	fams := make([]familySnapshot, 0, len(st.families))
	for _, f := range st.families {
		if f.kind == 0xff {
			continue // help-only placeholder, never materialized
		}
		fams = append(fams, familySnapshot{
			name:   f.name,
			kind:   f.kind,
			help:   f.help,
			series: append([]*series(nil), f.series...),
		})
	}
	st.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
