package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per family (plus
// # HELP when set), families sorted by name, series sorted by label
// set. Histograms emit cumulative _bucket series ending in le="+Inf",
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		srs := f.series
		sort.Slice(srs, func(i, j int) bool {
			return labelKey(srs[i].labels) < labelKey(srs[j].labels)
		})
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range srs {
			switch {
			case s.c != nil:
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatInt(s.c.Value(), 10))
			case s.cfn != nil:
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatInt(s.cfn(), 10))
			case s.g != nil:
				writeSample(bw, f.name, "", s.labels, "", formatFloat(s.g.Value()))
			case s.gfn != nil:
				writeSample(bw, f.name, "", s.labels, "", formatFloat(s.gfn()))
			case s.hdr != nil:
				unit := s.hdr.Config().Unit
				for _, row := range s.hdr.Percentiles() {
					writeQuantileSample(bw, f.name, s.labels,
						formatFloat(row.Quantile), formatFloat(float64(row.Value)*unit))
				}
				writeSample(bw, f.name, "_sum", s.labels, "", formatFloat(float64(s.hdr.Sum())*unit))
				writeSample(bw, f.name, "_count", s.labels, "", strconv.FormatInt(s.hdr.Count(), 10))
			case s.h != nil:
				snap := s.h.Snapshot()
				var cum int64
				for i, b := range snap.Bounds {
					cum += snap.Counts[i]
					writeSample(bw, f.name, "_bucket", s.labels, formatFloat(b), strconv.FormatInt(cum, 10))
				}
				cum += snap.Counts[len(snap.Counts)-1]
				writeSample(bw, f.name, "_bucket", s.labels, "+Inf", strconv.FormatInt(cum, 10))
				writeSample(bw, f.name, "_sum", s.labels, "", formatFloat(snap.Sum))
				writeSample(bw, f.name, "_count", s.labels, "", strconv.FormatInt(snap.Count, 10))
			}
		}
	}
	return bw.Flush()
}

// writeQuantileSample emits one summary sample:
// name{labels[,]quantile="q"} value.
func writeQuantileSample(bw *bufio.Writer, name string, labels []string, q, value string) {
	bw.WriteString(name)
	bw.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		bw.WriteString(labels[i])
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(labels[i+1]))
		bw.WriteString(`",`)
	}
	bw.WriteString(`quantile="`)
	bw.WriteString(q)
	bw.WriteString(`"} `)
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// writeSample emits one sample line: name[suffix]{labels[,le="le"]} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []string, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		first := true
		for i := 0; i+1 < len(labels); i += 2 {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(labels[i])
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(labels[i+1]))
			bw.WriteByte('"')
		}
		if le != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
