package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestNewRunIDUnique(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Errorf("consecutive run ids collide: %s", a)
	}
	if strings.ContainsAny(a, "/ :") {
		t.Errorf("run id %q is not filesystem-safe", a)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("synth_records_generated_total").Add(1234)
	reg.Counter("edge_requests_total", "method", "get").Add(7)
	h := reg.Histogram("ingest_decode_seconds", []float64{0.001, 0.01})
	h.Observe(0.002)
	h.Observe(0.005)

	tr := NewTrace()
	root := tr.Start("RunAll")
	root.Child("table 2").End()
	root.End()

	m := NewManifest("jsonrepro", "test-run-1")
	m.Config["seed"] = uint64(42)
	m.Config["scale"] = 0.002
	m.Steps = []ManifestStep{
		{Name: "Table 2", Status: "completed", WallNS: int64(time.Second), Records: 100, Bytes: 4096},
		{Name: "Figure 3", Status: "skipped"},
	}
	m.DeadLetters = 3
	m.AddMetrics(reg)
	m.AddTrace(tr)
	m.Finish("completed")

	if m.Schema != "repro/run-manifest/v1" {
		t.Errorf("schema = %q", m.Schema)
	}
	if m.GoVersion != runtime.Version() || m.GOOS != runtime.GOOS {
		t.Errorf("toolchain fields = %s/%s", m.GoVersion, m.GOOS)
	}
	if m.WallNS < 0 || m.End.Before(m.Start) {
		t.Errorf("timing fields inverted: start=%v end=%v", m.Start, m.End)
	}
	if got := m.Metrics["synth_records_generated_total"]; got != 1234 {
		t.Errorf("counter snapshot = %v", got)
	}
	if got := m.Metrics["edge_requests_total{method=get}"]; got != 7 {
		t.Errorf("labeled counter snapshot = %v", got)
	}
	if got := m.Metrics["ingest_decode_seconds_count"]; got != 2 {
		t.Errorf("histogram count snapshot = %v", got)
	}
	if got := m.Metrics["ingest_decode_seconds_sum"]; got < 0.0069 || got > 0.0071 {
		t.Errorf("histogram sum snapshot = %v", got)
	}
	if len(m.Spans) != 2 {
		t.Errorf("spans embedded = %d, want 2", len(m.Spans))
	}

	dir := t.TempDir()
	path, err := m.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "run-test-run-1.json") {
		t.Errorf("manifest path = %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.RunID != "test-run-1" || back.Tool != "jsonrepro" || back.Outcome != "completed" {
		t.Errorf("round trip = %+v", back)
	}
	if len(back.Steps) != 2 || back.Steps[0].Records != 100 {
		t.Errorf("steps lost in round trip: %+v", back.Steps)
	}
	if back.DeadLetters != 3 {
		t.Errorf("dead letters = %d", back.DeadLetters)
	}
	if back.Spans[1].Parent != back.Spans[0].ID {
		t.Errorf("span hierarchy lost: %+v", back.Spans)
	}
}

func TestManifestNilInstrumentation(t *testing.T) {
	m := NewManifest("jsonchar", "r")
	m.AddMetrics(nil)
	m.AddTrace(nil)
	m.Finish("failed")
	if m.Metrics != nil || m.Spans != nil {
		t.Errorf("nil instrumentation populated fields: %+v", m)
	}
	if m.Outcome != "failed" {
		t.Errorf("outcome = %q", m.Outcome)
	}
}
