// Package obs is the repo's zero-dependency observability substrate:
// atomic Counter/Gauge/Histogram metric types, a labeled Registry with
// Prometheus text-format exposition, a lightweight per-stage tracer
// (Trace/Span), and an AdminMux serving /metrics, /debug/vars, and
// /debug/pprof. Every layer of the pipeline — the net/http edge, the
// synthetic workload generator, the scheduler simulation, and the
// experiment harness — reports through this package, so a single scrape
// of a running process answers the questions the paper's analyses ask
// offline: request rates by class, cache hit ratios, and queue-latency
// distributions.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative n is ignored to preserve
// monotonicity.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric that may go up or down. The
// zero value is ready to use. All methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increases the gauge by delta (negative delta decreases it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one — the enter half of an in-flight gauge.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one — the leave half of an in-flight gauge.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with atomic observation. Bucket
// boundaries are upper bounds (inclusive); observations above the last
// bound land in the implicit +Inf bucket. Construct histograms through
// Registry.Histogram, which supplies the default log-spaced bounds when
// none are given. All methods are safe for concurrent use.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
}

// ExpBuckets returns n log-spaced bucket upper bounds starting at start
// and multiplying by factor: start, start*factor, start*factor², ….
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// DefBuckets are the default latency bounds in seconds: log-spaced from
// 100µs to ~52s, doubling each bucket. Suitable for both origin fetch
// latencies and simulated queueing delays.
func DefBuckets() []float64 { return ExpBuckets(1e-4, 2, 20) }

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the usual
// way a duration histogram is fed from a deferred call.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// HistogramSnapshot is a point-in-time read of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (excluding +Inf).
	Bounds []float64
	// Counts are per-bucket (non-cumulative) counts; len(Bounds)+1, the
	// last being the +Inf bucket.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of all observed values.
	Sum float64
}

// Snapshot returns a consistent-enough view for exposition: each bucket
// is read atomically, though concurrent observers may land between
// bucket reads.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }
