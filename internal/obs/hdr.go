package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HDRConfig parameterizes an HDRHistogram. The zero value is usable:
// it tracks int64 values from 1 to one hour of nanoseconds at two
// significant decimal digits.
type HDRConfig struct {
	// Lowest is the lowest discernible value (>= 1). Values below it
	// are still counted but share the bottom buckets. Default 1.
	Lowest int64
	// Highest is the highest trackable value; larger observations are
	// clamped to it (and tallied by Clamped). Default one hour in
	// nanoseconds.
	Highest int64
	// SigFigs is the number of significant decimal digits maintained
	// across the whole range (1..5). Default 2 — under 1% relative
	// error, HdrHistogram's usual operating point for latency.
	SigFigs int
	// Unit converts a recorded value into Prometheus base units at
	// exposition time (1e-9 for nanoseconds -> seconds). Default 1.
	Unit float64
}

func (c HDRConfig) withDefaults() HDRConfig {
	if c.Lowest <= 0 {
		c.Lowest = 1
	}
	if c.Highest <= 0 {
		c.Highest = int64(time.Hour)
	}
	if c.SigFigs <= 0 {
		c.SigFigs = 2
	}
	if c.Unit == 0 {
		c.Unit = 1
	}
	return c
}

// LatencyHDRConfig is the configuration the load harness uses for
// request latencies: nanosecond values discernible from 1µs up to ten
// minutes, exposed to Prometheus in seconds.
func LatencyHDRConfig() HDRConfig {
	return HDRConfig{Lowest: int64(time.Microsecond), Highest: int64(10 * time.Minute), SigFigs: 2, Unit: 1e-9}
}

// HDRHistogram is a log-linear bucketed histogram in the HdrHistogram
// style: the value range is covered by exponentially sized buckets,
// each split into 2^k linear sub-buckets, so relative error stays
// bounded by the configured significant figures across the whole range
// — the property fixed-bound histograms lose in their top buckets,
// exactly where tail latency lives.
//
// All methods are safe for concurrent use: observation is a single
// atomic add on the bucket plus atomic min/max/sum maintenance, so
// many load-generator workers can record into one histogram, and
// histograms with equal configurations merge losslessly (Merge,
// and across processes via Snapshot/FromHDRSnapshot).
type HDRHistogram struct {
	cfg HDRConfig

	unitMagnitude               int
	subBucketCount              int
	subBucketHalfCount          int
	subBucketHalfCountMagnitude int
	subBucketMask               int64
	bucketCount                 int

	counts  []atomic.Int64
	total   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until first Record
	max     atomic.Int64
	clamped atomic.Int64
}

// NewHDRHistogram builds a histogram for cfg (zero fields take the
// HDRConfig defaults). Panics on an invalid configuration (SigFigs
// outside 1..5 or Highest <= 2*Lowest).
func NewHDRHistogram(cfg HDRConfig) *HDRHistogram {
	cfg = cfg.withDefaults()
	if cfg.SigFigs > 5 {
		panic(fmt.Sprintf("obs: HDR SigFigs %d out of range 1..5", cfg.SigFigs))
	}
	if cfg.Highest < 2*cfg.Lowest {
		panic(fmt.Sprintf("obs: HDR Highest %d must be >= 2*Lowest (%d)", cfg.Highest, cfg.Lowest))
	}
	h := &HDRHistogram{cfg: cfg}

	// Enough linear sub-buckets that a single unit is resolvable up to
	// 2*10^sigfigs, i.e. relative error < 10^-sigfigs.
	largestSingleUnit := 2 * int64(math.Pow10(cfg.SigFigs))
	h.unitMagnitude = 63 - bits.LeadingZeros64(uint64(cfg.Lowest))
	subBucketCountMagnitude := bits.Len64(uint64(largestSingleUnit - 1))
	if subBucketCountMagnitude < 1 {
		subBucketCountMagnitude = 1
	}
	h.subBucketHalfCountMagnitude = subBucketCountMagnitude - 1
	h.subBucketCount = 1 << subBucketCountMagnitude
	h.subBucketHalfCount = h.subBucketCount / 2
	h.subBucketMask = int64(h.subBucketCount-1) << h.unitMagnitude

	// Exponential buckets until the range covers Highest.
	smallest := int64(h.subBucketCount) << h.unitMagnitude
	h.bucketCount = 1
	for smallest < cfg.Highest && smallest < math.MaxInt64/2 {
		smallest <<= 1
		h.bucketCount++
	}
	h.counts = make([]atomic.Int64, (h.bucketCount+1)*h.subBucketHalfCount)
	h.min.Store(math.MaxInt64)
	return h
}

// Config returns the (defaulted) configuration.
func (h *HDRHistogram) Config() HDRConfig { return h.cfg }

// Record adds one observation. Negative values count as zero; values
// above Highest are clamped into the top bucket and tallied by
// Clamped, so a histogram never errors on a pathological sample.
func (h *HDRHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if v > h.cfg.Highest {
		v = h.cfg.Highest
		h.clamped.Add(1)
	}
	h.counts[h.countsIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// RecordDuration records d in nanoseconds.
func (h *HDRHistogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

func (h *HDRHistogram) bucketIndex(v int64) int {
	// Smallest power of two containing the value, relative to the first
	// bucket's span: 0 for values inside the linear sub-bucket range.
	pow2 := bits.Len64(uint64(v | h.subBucketMask))
	return pow2 - h.unitMagnitude - (h.subBucketHalfCountMagnitude + 1)
}

func (h *HDRHistogram) countsIndex(v int64) int {
	bucketIdx := h.bucketIndex(v)
	subIdx := int(v >> uint(bucketIdx+h.unitMagnitude))
	return (bucketIdx+1)*h.subBucketHalfCount + (subIdx - h.subBucketHalfCount)
}

// valueFromIndex returns the lowest value that lands in counts[i].
func (h *HDRHistogram) valueFromIndex(i int) int64 {
	bucketIdx := i/h.subBucketHalfCount - 1
	subIdx := i%h.subBucketHalfCount + h.subBucketHalfCount
	if bucketIdx < 0 {
		subIdx -= h.subBucketHalfCount
		bucketIdx = 0
	}
	return int64(subIdx) << uint(bucketIdx+h.unitMagnitude)
}

// highestEquivalentFromIndex returns the highest value that lands in
// counts[i] — what quantile queries report, so they never understate.
func (h *HDRHistogram) highestEquivalentFromIndex(i int) int64 {
	bucketIdx := i/h.subBucketHalfCount - 1
	if bucketIdx < 0 {
		bucketIdx = 0
	}
	return h.valueFromIndex(i) + (int64(1) << uint(bucketIdx+h.unitMagnitude)) - 1
}

// Count returns the number of observations.
func (h *HDRHistogram) Count() int64 { return h.total.Load() }

// Sum returns the exact sum of recorded (post-clamp) values.
func (h *HDRHistogram) Sum() int64 { return h.sum.Load() }

// Clamped returns how many observations exceeded Highest.
func (h *HDRHistogram) Clamped() int64 { return h.clamped.Load() }

// Min returns the smallest recorded value (0 when empty).
func (h *HDRHistogram) Min() int64 {
	v := h.min.Load()
	if v == math.MaxInt64 {
		return 0
	}
	return v
}

// Max returns the largest recorded value (0 when empty).
func (h *HDRHistogram) Max() int64 { return h.max.Load() }

// Mean returns the exact arithmetic mean of recorded values.
func (h *HDRHistogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q in [0, 1]: the highest
// value equivalent to the bucket where the cumulative count crosses
// q*Count, capped at the recorded maximum. Returns 0 when empty.
func (h *HDRHistogram) Quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			v := h.highestEquivalentFromIndex(i)
			if mx := h.Max(); v > mx {
				return mx
			}
			return v
		}
	}
	return h.Max()
}

// QuantileDuration returns Quantile(q) as a time.Duration — for
// histograms recording nanoseconds.
func (h *HDRHistogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Reset zeroes the histogram in place so window-rotation paths (e.g. a
// live sliding-window sketch) can reuse the allocation instead of
// replacing the histogram. Reset is safe to call concurrently with
// Record and Snapshot in the data-race sense — every field is atomic —
// but it is not a linearizable barrier: an observation racing the reset
// may land in either the old or the new window, and a snapshot taken
// mid-reset can mix the two. That is the accepted semantics for
// sliding-window telemetry, where window edges are approximate by
// construction; callers needing a clean cut must serialize externally.
func (h *HDRHistogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.clamped.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// HDRQuantiles are the quantiles reports and Prometheus exposition
// publish by default.
var HDRQuantiles = []float64{0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0}

// HDRPercentileRow is one line of a percentile table.
type HDRPercentileRow struct {
	Quantile float64 `json:"quantile"`
	Value    int64   `json:"value"`
}

// Percentiles evaluates the given quantiles (HDRQuantiles when none
// are passed) in one pass-friendly call.
func (h *HDRHistogram) Percentiles(qs ...float64) []HDRPercentileRow {
	if len(qs) == 0 {
		qs = HDRQuantiles
	}
	rows := make([]HDRPercentileRow, len(qs))
	for i, q := range qs {
		rows[i] = HDRPercentileRow{Quantile: q, Value: h.Quantile(q)}
	}
	return rows
}

// Merge adds other's observations into h. The configurations must
// match (Lowest, Highest, SigFigs); Unit is presentation-only and may
// differ.
func (h *HDRHistogram) Merge(other *HDRHistogram) error {
	if other == nil {
		return nil
	}
	if h.cfg.Lowest != other.cfg.Lowest || h.cfg.Highest != other.cfg.Highest || h.cfg.SigFigs != other.cfg.SigFigs {
		return fmt.Errorf("obs: HDR merge config mismatch: %+v vs %+v", h.cfg, other.cfg)
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	h.clamped.Add(other.clamped.Load())
	if other.total.Load() > 0 {
		for {
			old := h.min.Load()
			v := other.min.Load()
			if v >= old || h.min.CompareAndSwap(old, v) {
				break
			}
		}
		for {
			old := h.max.Load()
			v := other.max.Load()
			if v <= old || h.max.CompareAndSwap(old, v) {
				break
			}
		}
	}
	return nil
}

// HDRSnapshot is a compact, JSON-serializable point-in-time copy of an
// HDRHistogram: configuration, summary stats, and only the non-zero
// buckets as [countsIndex, count] pairs. Snapshots from workers or
// separate processes rebuild (FromHDRSnapshot) and merge losslessly,
// which is how a sharded replay reports one fleet-wide tail.
type HDRSnapshot struct {
	Lowest  int64      `json:"lowest"`
	Highest int64      `json:"highest"`
	SigFigs int        `json:"sigfigs"`
	Count   int64      `json:"count"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	Sum     int64      `json:"sum"`
	Clamped int64      `json:"clamped,omitempty"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Concurrent recorders may land
// between bucket reads; the snapshot is consistent enough for
// reporting (Count is recomputed from the bucket reads so quantiles
// over the snapshot are self-consistent).
func (h *HDRHistogram) Snapshot() HDRSnapshot {
	s := HDRSnapshot{
		Lowest:  h.cfg.Lowest,
		Highest: h.cfg.Highest,
		SigFigs: h.cfg.SigFigs,
		Min:     h.Min(),
		Max:     h.Max(),
		Sum:     h.sum.Load(),
		Clamped: h.clamped.Load(),
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, [2]int64{int64(i), n})
			s.Count += n
		}
	}
	return s
}

// FromHDRSnapshot rebuilds a live histogram from a snapshot, e.g. one
// decoded from a replay report. The Unit of the result defaults to 1.
func FromHDRSnapshot(s HDRSnapshot) (*HDRHistogram, error) {
	h := NewHDRHistogram(HDRConfig{Lowest: s.Lowest, Highest: s.Highest, SigFigs: s.SigFigs})
	for _, b := range s.Buckets {
		idx, n := b[0], b[1]
		if idx < 0 || idx >= int64(len(h.counts)) || n < 0 {
			return nil, fmt.Errorf("obs: HDR snapshot bucket [%d %d] out of range (len %d)", idx, n, len(h.counts))
		}
		h.counts[idx].Store(n)
		h.total.Add(n)
	}
	h.sum.Store(s.Sum)
	h.clamped.Store(s.Clamped)
	if s.Count > 0 {
		h.min.Store(s.Min)
		h.max.Store(s.Max)
	}
	return h, nil
}
