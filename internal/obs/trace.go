package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanLimit is the span-retention cap applied when Trace.Limit is
// zero. Large enough that a full jsonrepro run (a few hundred spans even
// heavily sharded) is never truncated, small enough that a per-request
// tracer on a long-lived edge cannot grow without bound.
const DefaultSpanLimit = 16384

// Trace collects hierarchical Spans: pipeline-level stages (one span per
// dataset generation, per figure, per analysis pass) that may nest —
// RunAll → step → dataset → shard. A nil *Trace is a valid no-op: Start
// returns a nil *Span whose methods are all no-ops, so instrumented code
// needs no nil checks at call sites. Trace is safe for concurrent use.
//
// Retention is bounded: once Limit spans are held, each new span evicts
// the oldest and increments the dropped counter, so a per-request tracer
// on a long-running edge keeps the most recent window instead of growing
// memory unboundedly.
type Trace struct {
	// Now supplies time (defaults to time.Now); tests override it.
	Now func() time.Time
	// Limit caps retained spans (0 means DefaultSpanLimit). It is read
	// when the first span starts; changes after that are ignored.
	Limit int

	mu      sync.Mutex
	limit   int     // resolved from Limit on first Start
	ring    []*Span // grows to limit, then wraps
	head    int     // index of the oldest span once the ring is full
	dropped int64
	nextID  int64
}

// NewTrace returns an empty trace with the default retention limit.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) now() time.Time {
	if t != nil && t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// Start opens a root span named name and returns it. On a nil trace it
// returns nil, which every Span method tolerates.
func (t *Trace) Start(name string) *Span { return t.start(name, nil) }

func (t *Trace) start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	t.nextID++
	s := &Span{name: name, trace: t, parent: parent, id: t.nextID, start: now}
	if t.limit == 0 {
		t.limit = t.Limit
		if t.limit <= 0 {
			t.limit = DefaultSpanLimit
		}
	}
	if len(t.ring) < t.limit {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.head] = s
		t.head = (t.head + 1) % t.limit
		t.dropped++
	}
	t.mu.Unlock()
	return s
}

// Dropped returns how many spans have been evicted to honor the
// retention limit.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// retained returns the held spans in start order.
func (t *Trace) retained() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Attr is one typed span attribute. Value is a string, int64, float64,
// or bool — the types the exporters know how to render.
type Attr struct {
	Key   string
	Value any
}

// String returns a string-valued attribute.
func String(key, value string) Attr { return Attr{key, value} }

// Int returns an integer-valued attribute.
func Int(key string, value int) Attr { return Attr{key, int64(value)} }

// Int64 returns an integer-valued attribute.
func Int64(key string, value int64) Attr { return Attr{key, value} }

// Float returns a float-valued attribute.
func Float(key string, value float64) Attr { return Attr{key, value} }

// Bool returns a boolean-valued attribute.
func Bool(key string, value bool) Attr { return Attr{key, value} }

// Span measures one pipeline stage: wall time plus optional records-
// processed and bytes-processed tallies and typed attributes. Spans form
// a tree: Child opens a nested span. All methods are safe on a nil
// receiver and for concurrent use.
type Span struct {
	name   string
	trace  *Trace
	parent *Span
	id     int64
	start  time.Time

	records atomic.Int64
	bytes   atomic.Int64
	done    atomic.Bool
	durNS   atomic.Int64

	attrMu sync.Mutex
	attrs  []Attr
}

// Child opens a span nested under s. On a nil span it returns nil, so an
// untraced pipeline stays untraced all the way down.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.trace.start(name, s)
}

// SetAttrs attaches typed attributes to the span (see String, Int,
// Float, Bool). Later attributes with an already-set key are appended,
// not replaced; exporters emit them in insertion order.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrMu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.attrMu.Unlock()
}

// AddRecords adds n to the span's records-processed tally.
func (s *Span) AddRecords(n int64) {
	if s != nil {
		s.records.Add(n)
	}
}

// AddBytes adds n to the span's bytes-processed tally.
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.bytes.Add(n)
	}
}

// End closes the span and returns its wall time. Only the first End
// takes effect; later calls return the recorded duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if s.done.CompareAndSwap(false, true) {
		s.durNS.Store(int64(s.trace.now().Sub(s.start)))
	}
	return time.Duration(s.durNS.Load())
}

// depth returns how many ancestors the span has.
func (s *Span) depth() int {
	d := 0
	for p := s.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// SpanStat is a finished (or in-flight) span's summary.
type SpanStat struct {
	// ID is the span's trace-unique id (1-based, in start order).
	ID int64
	// ParentID is the parent span's id, or 0 for a root span.
	ParentID int64
	// Depth is the nesting level (0 for a root span).
	Depth int
	// Name is the stage name passed to Start or Child.
	Name string
	// Start is when the span opened.
	Start time.Time
	// Wall is the span's duration; in-flight spans report elapsed so far.
	Wall time.Duration
	// Records and Bytes are the processed-work tallies.
	Records int64
	Bytes   int64
	// Attrs are the typed attributes in insertion order.
	Attrs []Attr
	// Done reports whether End has been called.
	Done bool
}

// RecordsPerSec returns the records-processed rate, or 0 for an
// instantaneous span.
func (s SpanStat) RecordsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Records) / s.Wall.Seconds()
}

// Spans returns the retained spans' summaries in start order. In-flight
// spans report their elapsed time so far.
func (t *Trace) Spans() []SpanStat {
	if t == nil {
		return nil
	}
	spans := t.retained()
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanStat, len(spans))
	for i, s := range spans {
		out[i] = s.stat(t)
	}
	return out
}

func (s *Span) stat(t *Trace) SpanStat {
	wall := time.Duration(s.durNS.Load())
	done := s.done.Load()
	if !done {
		wall = t.now().Sub(s.start)
	}
	var parentID int64
	if s.parent != nil {
		parentID = s.parent.id
	}
	s.attrMu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	s.attrMu.Unlock()
	return SpanStat{
		ID: s.id, ParentID: parentID, Depth: s.depth(), Name: s.name,
		Start: s.start, Wall: wall, Records: s.records.Load(), Bytes: s.bytes.Load(),
		Attrs: attrs, Done: done,
	}
}

// WriteTable writes the per-stage span summary as an aligned text table:
// stage (indented by nesting depth), wall time, records, records/sec,
// bytes. Zero tallies render as "-". The total row sums root spans only,
// so nested stages are not double-counted. A nil trace writes nothing.
func (t *Trace) WriteTable(w io.Writer) {
	stats := t.Spans()
	if len(stats) == 0 {
		return
	}
	nameW := len("stage")
	for _, s := range stats {
		if n := len(s.Name) + 2*s.Depth; n > nameW {
			nameW = n
		}
	}
	var total time.Duration
	fmt.Fprintf(w, "%-*s  %10s  %10s  %12s  %12s\n", nameW, "stage", "wall", "records", "records/sec", "bytes")
	for _, s := range stats {
		if s.ParentID == 0 {
			total += s.Wall
		}
		fmt.Fprintf(w, "%-*s  %10s  %10s  %12s  %12s\n", nameW,
			strings.Repeat("  ", s.Depth)+s.Name,
			s.Wall.Round(time.Millisecond),
			dash(s.Records, func(v int64) string { return fmt.Sprintf("%d", v) }),
			dashF(s.RecordsPerSec()),
			dash(s.Bytes, func(v int64) string { return fmt.Sprintf("%d", v) }))
	}
	fmt.Fprintf(w, "%-*s  %10s\n", nameW, "total", total.Round(time.Millisecond))
	t.mu.Lock()
	dropped, limit := t.dropped, t.limit
	t.mu.Unlock()
	if dropped > 0 {
		fmt.Fprintf(w, "(%d older spans dropped to honor the %d-span retention limit)\n", dropped, limit)
	}
}

func dash(v int64, f func(int64) string) string {
	if v == 0 {
		return "-"
	}
	return f(v)
}

func dashF(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
