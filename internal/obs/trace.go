package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Trace collects per-stage Spans — coarse, pipeline-level tracing (one
// span per dataset generation, per figure, per analysis pass) rather
// than per-request tracing. A nil *Trace is a valid no-op: Start
// returns a nil *Span whose methods are all no-ops, so instrumented
// code needs no nil checks at call sites. Trace is safe for concurrent
// use.
type Trace struct {
	// Now supplies time (defaults to time.Now); tests override it.
	Now func() time.Time

	mu    sync.Mutex
	spans []*Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) now() time.Time {
	if t != nil && t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// Start opens a span named name and returns it. On a nil trace it
// returns nil, which every Span method tolerates.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, trace: t, start: t.now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span measures one pipeline stage: wall time plus optional records-
// processed and bytes-processed tallies. All methods are safe on a nil
// receiver and for concurrent use.
type Span struct {
	name  string
	trace *Trace
	start time.Time

	records atomic.Int64
	bytes   atomic.Int64
	done    atomic.Bool
	durNS   atomic.Int64
}

// AddRecords adds n to the span's records-processed tally.
func (s *Span) AddRecords(n int64) {
	if s != nil {
		s.records.Add(n)
	}
}

// AddBytes adds n to the span's bytes-processed tally.
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.bytes.Add(n)
	}
}

// End closes the span and returns its wall time. Only the first End
// takes effect; later calls return the recorded duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if s.done.CompareAndSwap(false, true) {
		s.durNS.Store(int64(s.trace.now().Sub(s.start)))
	}
	return time.Duration(s.durNS.Load())
}

// SpanStat is a finished (or in-flight) span's summary.
type SpanStat struct {
	Name    string
	Wall    time.Duration
	Records int64
	Bytes   int64
}

// RecordsPerSec returns the records-processed rate, or 0 for an
// instantaneous span.
func (s SpanStat) RecordsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Records) / s.Wall.Seconds()
}

// Spans returns the summaries in start order. In-flight spans report
// their elapsed time so far.
func (t *Trace) Spans() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanStat, len(spans))
	for i, s := range spans {
		wall := time.Duration(s.durNS.Load())
		if !s.done.Load() {
			wall = t.now().Sub(s.start)
		}
		out[i] = SpanStat{Name: s.name, Wall: wall, Records: s.records.Load(), Bytes: s.bytes.Load()}
	}
	return out
}

// WriteTable writes the per-stage span summary as an aligned text
// table: stage, wall time, records, records/sec, bytes. Zero tallies
// render as "-". A nil trace writes nothing.
func (t *Trace) WriteTable(w io.Writer) {
	stats := t.Spans()
	if len(stats) == 0 {
		return
	}
	nameW := len("stage")
	for _, s := range stats {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var total time.Duration
	fmt.Fprintf(w, "%-*s  %10s  %10s  %12s  %12s\n", nameW, "stage", "wall", "records", "records/sec", "bytes")
	for _, s := range stats {
		total += s.Wall
		fmt.Fprintf(w, "%-*s  %10s  %10s  %12s  %12s\n", nameW, s.Name,
			s.Wall.Round(time.Millisecond),
			dash(s.Records, func(v int64) string { return fmt.Sprintf("%d", v) }),
			dashF(s.RecordsPerSec()),
			dash(s.Bytes, func(v int64) string { return fmt.Sprintf("%d", v) }))
	}
	fmt.Fprintf(w, "%-*s  %10s\n", nameW, "total", total.Round(time.Millisecond))
}

func dash(v int64, f func(int64) string) string {
	if v == 0 {
		return "-"
	}
	return f(v)
}

func dashF(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
