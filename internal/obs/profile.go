package obs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins a CPU profile and returns a stop function that
// ends it and captures a heap profile, so a run can bracket its hot
// section (RunAll) with `defer`-free explicit calls. Files are written
// to dir ("." when empty) as cpu-<runID>.pprof and heap-<runID>.pprof —
// named by run id so they pair with the run's manifest. The error from
// stop reports any write failure.
func StartProfiles(dir, runID string) (stop func() error, err error) {
	if dir == "" {
		dir = "."
	}
	cpuPath := filepath.Join(dir, "cpu-"+runID+".pprof")
	f, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("obs: creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting CPU profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		cpuErr := f.Close()
		heapPath := filepath.Join(dir, "heap-"+runID+".pprof")
		hf, err := os.Create(heapPath)
		if err != nil {
			return errors.Join(cpuErr, fmt.Errorf("obs: creating heap profile: %w", err))
		}
		runtime.GC() // materialize up-to-date allocation stats
		werr := pprof.WriteHeapProfile(hf)
		cerr := hf.Close()
		return errors.Join(cpuErr, werr, cerr)
	}, nil
}
