package obs

import "context"

// spanKey is the context key for the current span.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp, so layers further down
// the call stack (the ingest pipeline, dataset generators) can open
// child spans without threading a *Span parameter through every
// signature. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil when the
// calling pipeline is untraced. The nil result composes with the rest of
// the package: Child and every other Span method no-op on nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartChild opens a child of the context's span (nil, and therefore a
// no-op, when ctx is untraced) and returns the child plus a context
// carrying it, so nested stages hang off the new span.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	sp := SpanFromContext(ctx).Child(name)
	return ContextWithSpan(ctx, sp), sp
}
