package obs

import (
	"io"
	"log/slog"
)

// Logger is the repo's structured logger: a thin wrapper over log/slog
// that stamps every record with the run id, the seed, and a component
// name, so a line in a long log is always attributable to the exact run
// (and therefore the exact run-<id>.json manifest) that produced it.
//
// A nil *Logger is a valid no-op — library code can log unconditionally
// and CLIs decide whether to wire one. Logger is safe for concurrent
// use.
type Logger struct {
	sl *slog.Logger
}

// NewLogger returns a Logger writing key=value text lines to w, with
// run_id and seed attached to every record. Level defaults to Info;
// pass a non-nil leveler (e.g. slog.LevelDebug) to change it.
func NewLogger(w io.Writer, runID string, seed uint64, level slog.Leveler) *Logger {
	if level == nil {
		level = slog.LevelInfo
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return &Logger{sl: slog.New(h).With("run_id", runID, "seed", seed)}
}

// Component returns a child logger whose records carry component=name.
func (l *Logger) Component(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{sl: l.sl.With("component", name)}
}

// With returns a child logger with additional key/value pairs attached
// to every record.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{sl: l.sl.With(args...)}
}

// Slog exposes the underlying slog.Logger for callers that want the full
// API; nil for a nil Logger.
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.sl
}

// Debug logs at debug level with key/value pairs.
func (l *Logger) Debug(msg string, args ...any) {
	if l != nil {
		l.sl.Debug(msg, args...)
	}
}

// Info logs at info level with key/value pairs.
func (l *Logger) Info(msg string, args ...any) {
	if l != nil {
		l.sl.Info(msg, args...)
	}
}

// Warn logs at warn level with key/value pairs.
func (l *Logger) Warn(msg string, args ...any) {
	if l != nil {
		l.sl.Warn(msg, args...)
	}
}

// Error logs at error level with key/value pairs.
func (l *Logger) Error(msg string, args ...any) {
	if l != nil {
		l.sl.Error(msg, args...)
	}
}
