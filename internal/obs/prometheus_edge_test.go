package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition is a strict parser for the subset of the text
// exposition format (0.0.4) the registry emits. It validates line
// structure, label quoting, and escape sequences, and returns samples
// as name{label="value",...} → numeric value with escapes decoded.
// Any malformed line fails the test immediately.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("malformed comment line: %q", line)
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		} else {
			t.Fatalf("no value on line %q", line)
		}
		key := name
		if strings.HasPrefix(rest, "{") {
			labels, tail, ok := parseLabels(rest[1:])
			if !ok {
				t.Fatalf("malformed label block on line %q", line)
			}
			key = name + "{" + labels + "}"
			rest = tail
		}
		rest = strings.TrimPrefix(rest, " ")
		v, err := strconv.ParseFloat(strings.TrimSuffix(rest, " "), 64)
		if err != nil {
			t.Fatalf("bad value %q on line %q: %v", rest, line, err)
		}
		samples[key] = v
	}
	return samples
}

// parseLabels consumes `k="v",k2="v2"}` with exposition escaping inside
// the quotes, returning the canonical decoded label string and what
// follows the closing brace.
func parseLabels(s string) (labels, tail string, ok bool) {
	var parts []string
	for {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return "", "", false
		}
		name := s[:eq]
		if name == "" || strings.ContainsAny(name, `{}", `) {
			return "", "", false
		}
		s = s[eq+2:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return "", "", false
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", "", false // unknown escape: reject
				}
				i++
				continue
			}
			if c == '\n' {
				return "", "", false // raw newline inside a value
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return "", "", false
		}
		parts = append(parts, name+"="+strconv.Quote(val.String()))
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return strings.Join(parts, ","), s[1:], true
		}
		return "", "", false
	}
}

func TestPrometheusHostileLabelValues(t *testing.T) {
	reg := NewRegistry()
	hostile := map[string]string{
		"quote":     `say "hi"`,
		"backslash": `C:\logs\edge`,
		"newline":   "line1\nline2",
		"mixed":     "a\\\"b\nc",
	}
	for k, v := range hostile {
		reg.Counter("hostile_total", "kind", k, "value", v).Add(1)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// No sample line may contain a raw (unescaped) newline inside a
	// label value — every line must be a complete sample.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, " 1") {
			t.Errorf("broken sample line (value torn off by a raw newline?): %q", line)
		}
	}

	// The strict parser must decode every hostile value back verbatim.
	samples := parseExposition(t, out)
	for k, v := range hostile {
		key := fmt.Sprintf(`hostile_total{kind=%q,value=%s}`, k, strconv.Quote(v))
		if got, ok := samples[key]; !ok || got != 1 {
			t.Errorf("hostile label %q: sample %q not found (have %v)", k, key, keys(samples))
		}
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestHistogramBucketsMonotonicUnderConcurrency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1, 1})

	const goroutines, observes = 8, 2000
	var start, done sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait()
			for i := 0; i < observes; i++ {
				h.Observe(float64(i%1000) / 5000.0)
			}
		}(g)
	}
	start.Done()

	// Scrape the real exposition while writers are running: every scrape
	// must parse cleanly and its buckets must be cumulative in le with
	// +Inf equal to the count — the invariants Prometheus relies on.
	les := []string{"0.001", "0.01", "0.1", "1", "+Inf"}
	for scrape := 0; scrape < 20; scrape++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		samples := parseExposition(t, sb.String())
		var prev float64 = -1
		for _, le := range les {
			v, ok := samples[`lat_seconds_bucket{le=`+strconv.Quote(le)+`}`]
			if !ok {
				t.Fatalf("scrape %d: missing bucket le=%s", scrape, le)
			}
			if v < prev {
				t.Fatalf("scrape %d: bucket le=%s = %v < previous %v (not cumulative)", scrape, le, v, prev)
			}
			prev = v
		}
		if prev != samples["lat_seconds_count"] {
			t.Fatalf("scrape %d: +Inf bucket %v != count %v", scrape, prev, samples["lat_seconds_count"])
		}
	}
	done.Wait()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	if got := samples["lat_seconds_count"]; got != goroutines*observes {
		t.Errorf("final count = %v, want %d", got, goroutines*observes)
	}
	if got := samples[`lat_seconds_bucket{le="+Inf"}`]; got != goroutines*observes {
		t.Errorf("final +Inf bucket = %v, want %d", got, goroutines*observes)
	}
	snap := h.Snapshot()
	if snap.Count != goroutines*observes {
		t.Errorf("snapshot count = %d, want %d", snap.Count, goroutines*observes)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Help("edge_cache_hits_total", `hits; path="cached" only`)
	reg.Counter("edge_cache_hits_total").Add(31)
	reg.Gauge("queue_depth", "stage", "decode").Set(2.5)
	reg.CounterFunc("derived_total", func() int64 { return 9 })
	reg.GaugeFunc("ratio", func() float64 { return 0.75 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	want := map[string]float64{
		"edge_cache_hits_total":       31,
		`queue_depth{stage="decode"}`: 2.5,
		"derived_total":               9,
		"ratio":                       0.75,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok || got != v {
			t.Errorf("sample %q = %v (present %v), want %v", k, got, ok, v)
		}
	}
}
