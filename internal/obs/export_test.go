package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"time"
)

// buildDeepTrace makes a 3-level tree with two concurrent step spans so
// the exporter has to spread siblings across lanes.
func buildDeepTrace() *Trace {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTrace()
	tr.Now = func() time.Time { return now }

	root := tr.Start("RunAll")
	stepA := root.Child("table 2")
	ds := stepA.Child("synth short-term dataset")
	ds.AddRecords(100)
	ds.AddBytes(4096)
	now = now.Add(100 * time.Millisecond)
	ds.End()
	// figure 3 overlaps table 2 without being contained by it, so the
	// exporter must give it its own lane.
	stepB := root.Child("figure 3")
	now = now.Add(50 * time.Millisecond)
	stepA.End()
	now = now.Add(50 * time.Millisecond)
	stepB.End()
	now = now.Add(10 * time.Millisecond)
	root.End()
	return tr
}

type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

func TestWriteChromeTrace(t *testing.T) {
	tr := buildDeepTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}

	// Nesting depth via parent_id chains must reach 3 levels.
	id := func(v any) int64 { f, _ := v.(float64); return int64(f) }
	parents := map[int64]int64{}
	byID := map[int64]int{}
	for i, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", e.Name, e.Ph)
		}
		sid := id(e.Args["span_id"])
		byID[sid] = i
		if p, ok := e.Args["parent_id"]; ok {
			parents[sid] = id(p)
		}
	}
	maxDepth := 0
	for sid := range byID {
		d := 0
		for p, ok := parents[sid]; ok; p, ok = parents[p] {
			d++
			sid = p
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 2 {
		t.Errorf("max parent-chain depth = %d, want >= 2 (3 levels)", maxDepth)
	}

	// Lane validity: within one tid, events must nest by time
	// containment — that is what about:tracing renders as hierarchy.
	byLane := map[int][]int{}
	for i, e := range doc.TraceEvents {
		byLane[e.TID] = append(byLane[e.TID], i)
	}
	for tid, idxs := range byLane {
		sort.Slice(idxs, func(a, b int) bool { return doc.TraceEvents[idxs[a]].TS < doc.TraceEvents[idxs[b]].TS })
		var open []float64 // stack of end timestamps
		for _, i := range idxs {
			e := doc.TraceEvents[i]
			start, stop := e.TS, e.TS+e.Dur
			for len(open) > 0 && open[len(open)-1] <= start {
				open = open[:len(open)-1]
			}
			if len(open) > 0 && open[len(open)-1] < stop {
				t.Errorf("lane %d: %q [%.0f,%.0f] overlaps its lane neighbor ending %.0f",
					tid, e.Name, start, stop, open[len(open)-1])
			}
			open = append(open, stop)
		}
	}

	// A child prefers its parent's lane when it fits, so the single
	// chain RunAll → table 2 → dataset shares one lane; the concurrent
	// sibling spills to another.
	lanes := map[string]int{}
	for _, e := range doc.TraceEvents {
		lanes[e.Name] = e.TID
	}
	if lanes["RunAll"] != lanes["table 2"] || lanes["table 2"] != lanes["synth short-term dataset"] {
		t.Errorf("nested chain split across lanes: %v", lanes)
	}
	if lanes["figure 3"] == lanes["table 2"] {
		t.Errorf("concurrent siblings share lane %d", lanes["figure 3"])
	}

	// Tallies and attrs ride along as args.
	for _, e := range doc.TraceEvents {
		if e.Name == "synth short-term dataset" {
			if id(e.Args["records"]) != 100 || id(e.Args["bytes"]) != 4096 {
				t.Errorf("dataset args = %v", e.Args)
			}
		}
	}
}

func TestWriteChromeTraceEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	var nilTr *Trace
	if err := nilTr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace export invalid: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("nil trace exported %d events", len(doc.TraceEvents))
	}
}

func TestWriteChromeTraceDropped(t *testing.T) {
	tr := &Trace{Limit: 2}
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got, _ := doc.OtherData["dropped_spans"].(float64); got != 3 {
		t.Errorf("otherData.dropped_spans = %v, want 3", doc.OtherData["dropped_spans"])
	}
}

func TestWriteSpanLog(t *testing.T) {
	tr := buildDeepTrace()
	open := tr.Start("in flight") // never ended: exports as in_flight

	var buf bytes.Buffer
	if err := tr.WriteSpanLog(&buf); err != nil {
		t.Fatal(err)
	}
	var entries []SpanLogEntry
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e SpanLogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		entries = append(entries, e)
	}
	if len(entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(entries))
	}
	byName := map[string]SpanLogEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	if byName["table 2"].Parent != byName["RunAll"].ID {
		t.Error("span log lost the step→root parent link")
	}
	if byName["synth short-term dataset"].Parent != byName["table 2"].ID {
		t.Error("span log lost the dataset→step parent link")
	}
	if byName["synth short-term dataset"].Records != 100 {
		t.Errorf("dataset records = %d", byName["synth short-term dataset"].Records)
	}
	if !byName["in flight"].Open {
		t.Error("unfinished span not marked in_flight")
	}
	open.End()

	// Nil trace: no output, no error.
	var nb bytes.Buffer
	var nilTr *Trace
	if err := nilTr.WriteSpanLog(&nb); err != nil || nb.Len() != 0 {
		t.Errorf("nil span log: err=%v len=%d", err, nb.Len())
	}
}

func TestSpanLogStrings(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("edge GET /stories")
	sp.SetAttrs(String("cache", "hit"), Bool("error", false))
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteSpanLog(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{`"cache":"hit"`, `"error":false`, `"name":"edge GET /stories"`} {
		if !strings.Contains(line, want) {
			t.Errorf("span log line missing %s:\n%s", want, line)
		}
	}
}
