package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Add(-3)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %g, want 1", got)
	}
}

func TestGaugeIncDec(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("gauge after Inc/Inc/Dec = %g, want 1", got)
	}
}

func TestHistogramObserveSince(t *testing.T) {
	h := newHistogram(nil)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if s := h.Sum(); s <= 0 || s > 10 {
		t.Errorf("observed elapsed seconds = %g, want small positive", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1; 1.5 in le=2; 4 in le=4; 100 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 107 {
		t.Errorf("sum = %g, want 107", s.Sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if b[i] < want[i]*0.999 || b[i] > want[i]*1.001 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "k", "v")
	b := reg.Counter("x_total", "k", "v")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	c := reg.Counter("x_total", "k", "other")
	if a == c {
		t.Error("different labels returned the same counter")
	}
	h1 := reg.Histogram("h_seconds", []float64{1, 2})
	h2 := reg.Histogram("h_seconds", nil)
	if h1 != h2 {
		t.Error("histogram get-or-create returned distinct instances")
	}
}

func TestRegistryWithLabels(t *testing.T) {
	reg := NewRegistry()
	child := reg.With("server", "edge-00")
	child.Counter("reqs_total").Add(7)
	// The child shares the parent's storage, under the child's labels.
	if got := reg.Counter("reqs_total", "server", "edge-00").Value(); got != 7 {
		t.Errorf("labeled counter via parent = %d, want 7", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	reg.Gauge("m")
}

func TestRegistryDuplicateFuncPanics(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("g", func() float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate GaugeFunc")
		}
	}()
	reg.GaugeFunc("g", func() float64 { return 2 })
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("no panic on invalid metric name")
		}
	}()
	reg.Counter("bad-name")
}

// TestConcurrentUse exercises every metric type from many goroutines;
// the -race target in the Makefile relies on this for coverage.
func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Counter("c_total").Inc()
				reg.Gauge("g").Add(1)
				h.Observe(float64(j) / 1000)
			}
		}(i)
	}
	// Concurrent scrapes while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var sink discard
			reg.WritePrometheus(&sink)
		}
	}()
	wg.Wait()
	if got := reg.Counter("c_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := reg.Gauge("g").Value(); got != 8000 {
		t.Errorf("gauge = %g, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
