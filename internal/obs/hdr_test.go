package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHDRIndexRoundTrip(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{Lowest: 1, Highest: int64(time.Hour), SigFigs: 2})
	for _, v := range []int64{0, 1, 2, 100, 255, 256, 257, 1_000, 123_456,
		int64(time.Millisecond), int64(time.Second), int64(37 * time.Second), int64(time.Hour)} {
		i := h.countsIndex(v)
		if i < 0 || i >= len(h.counts) {
			t.Fatalf("countsIndex(%d) = %d out of [0,%d)", v, i, len(h.counts))
		}
		lo, hi := h.valueFromIndex(i), h.highestEquivalentFromIndex(i)
		if v < lo || v > hi {
			t.Errorf("value %d mapped to bucket [%d,%d]", v, lo, hi)
		}
	}
}

func TestHDRQuantileAccuracy(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{Lowest: 1, Highest: 10_000_000, SigFigs: 3})
	rng := rand.New(rand.NewSource(42))
	values := make([]int64, 0, 100_000)
	for i := 0; i < 100_000; i++ {
		// Log-uniform: exercises many orders of magnitude.
		v := int64(math.Exp(rng.Float64() * math.Log(5_000_000)))
		values = append(values, v)
		h.Record(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(math.Ceil(q*float64(len(values)))) - 1
		exact := values[idx]
		got := h.Quantile(q)
		if relErr := math.Abs(float64(got-exact)) / float64(exact); relErr > 0.01 {
			t.Errorf("q%.3f: got %d want ~%d (rel err %.4f > 1%%)", q, got, exact, relErr)
		}
	}
	if h.Quantile(1) != values[len(values)-1] {
		t.Errorf("p100 = %d, want max %d", h.Quantile(1), values[len(values)-1])
	}
	if h.Min() != values[0] {
		t.Errorf("min = %d, want %d", h.Min(), values[0])
	}
}

func TestHDRClampAndEmpty(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{Lowest: 1, Highest: 1000, SigFigs: 2})
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Record(-5)
	h.Record(5_000_000)
	if h.Clamped() != 1 {
		t.Errorf("clamped = %d, want 1", h.Clamped())
	}
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("clamped max quantile = %d, want 1000", got)
	}
}

func TestHDRMerge(t *testing.T) {
	cfg := HDRConfig{Lowest: 1, Highest: 1_000_000, SigFigs: 2}
	a, b := NewHDRHistogram(cfg), NewHDRHistogram(cfg)
	for i := int64(1); i <= 1000; i++ {
		a.Record(i)
		b.Record(i * 100)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != b.Max() {
		t.Errorf("merged max = %d, want %d", a.Max(), b.Max())
	}
	if a.Min() != 1 {
		t.Errorf("merged min = %d, want 1", a.Min())
	}
	// Median of the union {1..1000} ∪ {100, 200, ..., 100000}: the
	// 1000th sorted value is 991 (991 values from the first set plus 9
	// multiples of 100 below it).
	if q := a.Quantile(0.5); q < 950 || q > 1050 {
		t.Errorf("merged median = %d, want ~991", q)
	}
	bad := NewHDRHistogram(HDRConfig{Lowest: 1, Highest: 999_999, SigFigs: 2})
	if err := a.Merge(bad); err == nil {
		t.Error("config mismatch merge accepted")
	}
}

// TestHDRMergeConfigMismatch pins down that every differently-configured
// merge errors cleanly — and leaves the receiver untouched — instead of
// silently mis-binning counts into buckets with different boundaries.
// The live-window rotation path merges per-node snapshots, so a config
// drift between fleet nodes must surface as an error, not skewed tails.
func TestHDRMergeConfigMismatch(t *testing.T) {
	base := HDRConfig{Lowest: 1000, Highest: 1_000_000_000, SigFigs: 2}
	h := NewHDRHistogram(base)
	for i := int64(0); i < 100; i++ {
		h.Record(1000 + i*1000)
	}
	before := h.Snapshot()
	for _, bad := range []HDRConfig{
		{Lowest: 1, Highest: base.Highest, SigFigs: base.SigFigs},
		{Lowest: base.Lowest, Highest: base.Highest * 2, SigFigs: base.SigFigs},
		{Lowest: base.Lowest, Highest: base.Highest, SigFigs: 3},
	} {
		other := NewHDRHistogram(bad)
		other.Record(5000)
		if err := h.Merge(other); err == nil {
			t.Errorf("merge with %+v accepted, want config-mismatch error", bad)
		}
	}
	after := h.Snapshot()
	if after.Count != before.Count || after.Sum != before.Sum {
		t.Errorf("failed merges mutated receiver: %+v -> %+v", before, after)
	}
	// The snapshot rebuild path must reject mismatches the same way.
	rebuilt, err := FromHDRSnapshot(NewHDRHistogram(HDRConfig{Lowest: 1, Highest: 1 << 20, SigFigs: 1}).Snapshot())
	if err != nil {
		t.Fatalf("FromHDRSnapshot: %v", err)
	}
	if err := h.Merge(rebuilt); err == nil {
		t.Error("merge of differently-configured snapshot rebuild accepted")
	}
}

// TestHDRResetReuse exercises the window-rotation path: record, reset,
// record again — the second window must see none of the first.
func TestHDRResetReuse(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{Lowest: 1, Highest: 1_000_000, SigFigs: 2})
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000) // clamps above Highest too
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Clamped() != 0 {
		t.Fatalf("post-reset not empty: count=%d sum=%d min=%d max=%d clamped=%d",
			h.Count(), h.Sum(), h.Min(), h.Max(), h.Clamped())
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("post-reset quantile = %d, want 0", q)
	}
	h.Record(42)
	if h.Count() != 1 || h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("post-reset window polluted: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

// TestHDRResetConcurrentRecord drives Record, Reset, and Snapshot from
// concurrent goroutines; run under -race (make race covers this
// package) it proves window rotation never races observation. The
// invariant checked is internal consistency, not window purity: counts
// are non-negative and a snapshot's buckets sum to its count.
func TestHDRResetConcurrentRecord(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{Lowest: 1, Highest: 1 << 20, SigFigs: 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(int64(rng.Intn(1 << 20)))
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		s := h.Snapshot()
		var sum int64
		for _, b := range s.Buckets {
			if b[1] < 0 {
				t.Errorf("negative bucket count %d", b[1])
			}
			sum += b[1]
		}
		if sum != s.Count {
			t.Errorf("snapshot buckets sum %d != count %d", sum, s.Count)
		}
		h.Reset()
	}
	close(stop)
	wg.Wait()
}

func TestHDRSnapshotRoundTrip(t *testing.T) {
	h := NewHDRHistogram(LatencyHDRConfig())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		h.RecordDuration(time.Duration(rng.Intn(200_000_000)))
	}
	h.Record(int64(time.Hour)) // clamped

	snap := h.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded HDRSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := FromHDRSnapshot(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Max() != h.Max() || back.Min() != h.Min() ||
		back.Sum() != h.Sum() || back.Clamped() != h.Clamped() {
		t.Fatalf("round trip lost stats: %+v vs source count=%d", back.Snapshot(), h.Count())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Errorf("q%.3f: %d != %d after round trip", q, back.Quantile(q), h.Quantile(q))
		}
	}

	if _, err := FromHDRSnapshot(HDRSnapshot{Lowest: 1, Highest: 1000, SigFigs: 2,
		Buckets: [][2]int64{{999999, 1}}}); err == nil {
		t.Error("out-of-range bucket accepted")
	}
}

func TestHDRConcurrentRecord(t *testing.T) {
	h := NewHDRHistogram(HDRConfig{Lowest: 1, Highest: 1_000_000, SigFigs: 2})
	var wg sync.WaitGroup
	const workers, per = 8, 10_000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*per + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 1 || h.Max() < workers*per-1 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHDRPrometheusSummaryExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.HDR("replay_latency_seconds", LatencyHDRConfig(), "kind", "intended")
	for i := 0; i < 1000; i++ {
		h.RecordDuration(time.Duration(i) * time.Millisecond)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE replay_latency_seconds summary",
		`replay_latency_seconds{kind="intended",quantile="0.5"}`,
		`replay_latency_seconds{kind="intended",quantile="0.999"}`,
		`replay_latency_seconds_count{kind="intended"} 1000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Unit 1e-9 converts ns to seconds: the p50 sample must be ~0.5.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `quantile="0.5"`) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			if v < 0.45 || v > 0.55 {
				t.Errorf("p50 = %v s, want ~0.5", v)
			}
		}
	}
	// Same name and labels resolves to the same histogram.
	if reg.HDR("replay_latency_seconds", HDRConfig{}, "kind", "intended") != h {
		t.Error("HDR get-or-create returned a different histogram")
	}
}
