package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTrace()
	tr.Now = func() time.Time { return now }

	s := tr.Start("synth")
	s.AddRecords(1000)
	s.AddBytes(1 << 20)
	now = now.Add(2 * time.Second)
	if d := s.End(); d != 2*time.Second {
		t.Errorf("span wall = %s, want 2s", d)
	}
	now = now.Add(time.Hour)
	if d := s.End(); d != 2*time.Second {
		t.Errorf("second End changed wall to %s", d)
	}

	stats := tr.Spans()
	if len(stats) != 1 {
		t.Fatalf("spans = %d, want 1", len(stats))
	}
	st := stats[0]
	if st.Name != "synth" || st.Records != 1000 || st.Bytes != 1<<20 {
		t.Errorf("span stat = %+v", st)
	}
	if got := st.RecordsPerSec(); got != 500 {
		t.Errorf("records/sec = %g, want 500", got)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	s := tr.Start("x") // must not panic
	s.AddRecords(1)
	s.AddBytes(1)
	if s.End() != 0 {
		t.Error("nil span End != 0")
	}
	if tr.Spans() != nil {
		t.Error("nil trace Spans != nil")
	}
	var b strings.Builder
	tr.WriteTable(&b) // no-op
	if b.Len() != 0 {
		t.Errorf("nil trace wrote %q", b.String())
	}
}

func TestTraceWriteTable(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTrace()
	tr.Now = func() time.Time { return now }

	s := tr.Start("generate pattern dataset")
	s.AddRecords(120000)
	now = now.Add(1500 * time.Millisecond)
	s.End()
	tr.Start("figure 1").End() // instantaneous stage

	var b strings.Builder
	tr.WriteTable(&b)
	out := b.String()
	for _, want := range []string{"stage", "wall", "records/sec", "generate pattern dataset", "120000", "80000", "figure 1", "total", "1.5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
