package obs

import "sync/atomic"

// Health is the readiness state behind the admin mux's /readyz endpoint.
// Liveness (/healthz) is implicit — a process that answers is alive —
// but readiness is a decision: a repro run is not ready until its
// datasets are materialized, an edge not until its origin path is up.
// All methods are safe on a nil receiver and for concurrent use.
type Health struct {
	ready atomic.Bool
}

// SetReady flips the readiness state.
func (h *Health) SetReady(v bool) {
	if h != nil {
		h.ready.Store(v)
	}
}

// Ready reports the readiness state; a nil Health is never ready.
func (h *Health) Ready() bool {
	return h != nil && h.ready.Load()
}
