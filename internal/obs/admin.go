package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// AdminMux returns an HTTP mux serving the operational endpoints:
//
//	/metrics         Prometheus text exposition of reg
//	/debug/vars      expvar JSON (cmdline, memstats, anything published)
//	/debug/pprof/*   runtime profiles (heap, goroutine, CPU, trace, ...)
//	/healthz         liveness probe ("ok")
//	/readyz          readiness probe (503 until health flips ready)
//	/                plain-text index of the above
//
// health gates /readyz: nil means the process has no readiness notion
// and /readyz answers 200 immediately; non-nil answers 503 until
// SetReady(true) — a repro run flips it once its datasets are
// materialized, an edge once its origin path is up.
//
// Mount it on its own listener (see Serve) — the pprof endpoints are
// not something to expose on the traffic-serving port.
func AdminMux(reg *Registry, health *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case health == nil:
			fmt.Fprintln(w, "ok (no readiness gate)")
		case health.Ready():
			fmt.Fprintln(w, "ready")
		default:
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "admin endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n  /healthz\n  /readyz\n")
	})
	return mux
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0"), serves
// AdminMux(reg, health) on it in a background goroutine, and returns the
// server plus its base URL. Callers that care about clean shutdown
// should Close the returned server; CLIs that exit anyway may ignore it.
func Serve(addr string, reg *Registry, health *Health) (*http.Server, string, error) {
	return ServeHandler(addr, AdminMux(reg, health))
}

// ServeHandler is Serve for callers that compose their own admin mux —
// typically AdminMux plus extra endpoints (/fleetz, /charz) registered
// before the listener opens, so a probe can never observe a half-wired
// mux.
func ServeHandler(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String(), nil
}
