package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// AdminMux returns an HTTP mux serving the operational endpoints:
//
//	/metrics         Prometheus text exposition of reg
//	/debug/vars      expvar JSON (cmdline, memstats, anything published)
//	/debug/pprof/*   runtime profiles (heap, goroutine, CPU, trace, ...)
//	/healthz         liveness probe ("ok")
//	/                plain-text index of the above
//
// Mount it on its own listener (see Serve) — the pprof endpoints are
// not something to expose on the traffic-serving port.
func AdminMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "admin endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n  /healthz\n")
	})
	return mux
}

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0"), serves AdminMux(reg)
// on it in a background goroutine, and returns the server plus its base
// URL. Callers that care about clean shutdown should Close the returned
// server; CLIs that exit anyway may ignore it.
func Serve(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: AdminMux(reg)}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String(), nil
}
