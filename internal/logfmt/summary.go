package logfmt

import (
	"fmt"
	"strings"
	"time"
)

// DatasetSummary aggregates the per-dataset statistics the paper reports
// in Table 2: record count, capture duration, and distinct domain count.
// Populate it by streaming records through Observe, then read the fields.
type DatasetSummary struct {
	// Name labels the dataset ("Short-term", "Long-term", ...).
	Name string

	records  int64
	jsonRecs int64
	first    time.Time
	last     time.Time
	domains  map[string]struct{}
	clients  map[uint64]struct{}
}

// NewDatasetSummary returns an empty summary with the given label.
func NewDatasetSummary(name string) *DatasetSummary {
	return &DatasetSummary{
		Name:    name,
		domains: make(map[string]struct{}),
		clients: make(map[uint64]struct{}),
	}
}

// Observe folds one record into the summary.
func (d *DatasetSummary) Observe(r *Record) {
	d.records++
	if r.IsJSON() {
		d.jsonRecs++
	}
	t := r.Time
	if d.first.IsZero() || t.Before(d.first) {
		d.first = t
	}
	if t.After(d.last) {
		d.last = t
	}
	d.domains[r.Host()] = struct{}{}
	d.clients[r.ClientID] = struct{}{}
}

// Records returns the number of observed log records.
func (d *DatasetSummary) Records() int64 { return d.records }

// JSONRecords returns the number of records with application/json
// responses.
func (d *DatasetSummary) JSONRecords() int64 { return d.jsonRecs }

// Duration returns the time span between the first and last record.
func (d *DatasetSummary) Duration() time.Duration {
	if d.first.IsZero() {
		return 0
	}
	return d.last.Sub(d.first)
}

// Domains returns the number of distinct domains observed.
func (d *DatasetSummary) Domains() int { return len(d.domains) }

// Clients returns the number of distinct client IDs observed.
func (d *DatasetSummary) Clients() int { return len(d.clients) }

// String renders the summary as a Table 2 row.
func (d *DatasetSummary) String() string {
	return fmt.Sprintf("%s: %s logs, %s, %s domains, %d clients",
		d.Name, humanCount(d.records), humanDuration(d.Duration()),
		humanCount(int64(d.Domains())), d.Clients())
}

// humanCount renders n with the paper's "25 million" / "~5K" style.
func humanCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return trimZero(fmt.Sprintf("%.1f", float64(n)/1e6)) + " million"
	case n >= 1_000:
		return "~" + trimZero(fmt.Sprintf("%.1f", float64(n)/1e3)) + "K"
	default:
		return fmt.Sprintf("%d", n)
	}
}

func trimZero(s string) string {
	return strings.TrimSuffix(s, ".0")
}

func humanDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return trimZero(fmt.Sprintf("%.1f", d.Hours())) + " hrs"
	case d >= time.Minute:
		return trimZero(fmt.Sprintf("%.1f", d.Minutes())) + " mins"
	default:
		return d.Round(time.Second).String()
	}
}

// Filter selects a subset of records. Filters compose with And/Or.
type Filter func(*Record) bool

// JSONOnly keeps application/json responses, the filter the paper applies
// before every analysis.
func JSONOnly(r *Record) bool { return r.IsJSON() }

// MethodIs returns a filter keeping records with the given method.
func MethodIs(method string) Filter {
	return func(r *Record) bool { return r.Method == method }
}

// HostIs returns a filter keeping records for one domain.
func HostIs(host string) Filter {
	host = strings.ToLower(host)
	return func(r *Record) bool { return r.Host() == host }
}

// TimeWindow returns a filter keeping records with from <= Time < to.
func TimeWindow(from, to time.Time) Filter {
	return func(r *Record) bool {
		return !r.Time.Before(from) && r.Time.Before(to)
	}
}

// And returns a filter that passes only records all of fs pass.
func And(fs ...Filter) Filter {
	return func(r *Record) bool {
		for _, f := range fs {
			if !f(r) {
				return false
			}
		}
		return true
	}
}

// Or returns a filter that passes records any of fs passes.
func Or(fs ...Filter) Filter {
	return func(r *Record) bool {
		for _, f := range fs {
			if f(r) {
				return true
			}
		}
		return false
	}
}

// Not inverts a filter.
func Not(f Filter) Filter {
	return func(r *Record) bool { return !f(r) }
}
