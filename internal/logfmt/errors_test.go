package logfmt

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestReaderDecodeErrorPosition(t *testing.T) {
	r := sampleRecord()
	good := string(AppendTSV(nil, &r))
	bad := "not\ta\tvalid\tline\n"
	rd, err := NewReader(strings.NewReader(good+bad+good), FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := rd.Read(&rec); err != nil {
		t.Fatalf("first record: %v", err)
	}
	err = rd.Read(&rec)
	de := AsDecodeError(err)
	if de == nil {
		t.Fatalf("want *DecodeError, got %v", err)
	}
	if de.Format != "tsv" || de.Record != 1 {
		t.Errorf("DecodeError = %+v, want format tsv record 1", de)
	}
	if de.Offset != int64(len(good)) || de.Span != int64(len(bad)) {
		t.Errorf("bad span [%d,+%d), want [%d,+%d)", de.Offset, de.Span, len(good), len(bad))
	}
	// The bad line is consumed: the reader resumes on the next line.
	if err := rd.Read(&rec); err != nil {
		t.Fatalf("record after bad line: %v", err)
	}
	if err := rd.Read(&rec); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderDecodeErrorKeepsLineNumber(t *testing.T) {
	r := sampleRecord()
	good := string(AppendTSV(nil, &r))
	rd, err := NewReader(strings.NewReader(good+"junk\n"), FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	rd.Read(&rec)
	if err := rd.Read(&rec); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should mention line 2, got %v", err)
	}
}

// binStream encodes records and returns the stream plus each frame's
// [start, end) offsets (frame = length prefix + payload).
func binStream(t *testing.T, recs []Record) ([]byte, [][2]int) {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	var ends []int
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
		w.bw.Flush()
		ends = append(ends, buf.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	frames := make([][2]int, len(recs))
	prev := len(binaryMagic)
	for i, e := range ends {
		frames[i] = [2]int{prev, e}
		prev = e
	}
	return buf.Bytes(), frames
}

func testRecords(n int) []Record {
	base := sampleRecord()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = base
		recs[i].Time = base.Time.Add(time.Duration(i) * time.Second)
		recs[i].ClientID = uint64(i)
	}
	return recs
}

func TestBinaryDecodeErrorPositionAndResync(t *testing.T) {
	stream, frames := binStream(t, testRecords(3))
	// Corrupt record 1's cache-status byte (last byte of its payload):
	// framing stays intact, the payload fails to decode.
	stream[frames[1][1]-1] = 0xFF
	rd := NewBinaryReader(bytes.NewReader(stream))
	var rec Record
	if err := rd.Read(&rec); err != nil {
		t.Fatalf("record 0: %v", err)
	}
	err := rd.Read(&rec)
	de := AsDecodeError(err)
	if de == nil {
		t.Fatalf("want *DecodeError, got %v", err)
	}
	if de.Format != "binary" || de.Record != 1 {
		t.Errorf("DecodeError = %+v, want format binary record 1", de)
	}
	if de.Offset != int64(frames[1][0]) || de.Offset+de.Span != int64(frames[1][1]) {
		t.Errorf("bad span [%d,+%d), want [%d,%d)", de.Offset, de.Span, frames[1][0], frames[1][1])
	}
	// The frame was fully consumed, so resync finds the next boundary
	// without skipping anything.
	skipped, err := rd.Resync(0)
	if err != nil || skipped != 0 {
		t.Fatalf("Resync = %d, %v; want 0, nil", skipped, err)
	}
	if err := rd.Read(&rec); err != nil {
		t.Fatalf("record 2 after resync: %v", err)
	}
	if rec.ClientID != 2 {
		t.Errorf("resumed at client %d, want 2", rec.ClientID)
	}
}

func TestBinaryResyncSkipsGarbage(t *testing.T) {
	stream, frames := binStream(t, testRecords(3))
	garbage := bytes.Repeat([]byte{0x81}, 37) // continuation bytes: an unterminated varint
	var corrupted []byte
	corrupted = append(corrupted, stream[:frames[1][0]]...)
	corrupted = append(corrupted, garbage...)
	corrupted = append(corrupted, stream[frames[1][0]:]...)

	rd := NewBinaryReader(bytes.NewReader(corrupted))
	var rec Record
	if err := rd.Read(&rec); err != nil {
		t.Fatalf("record 0: %v", err)
	}
	if err := rd.Read(&rec); AsDecodeError(err) == nil {
		t.Fatalf("want DecodeError reading into garbage, got %v", err)
	}
	if _, err := rd.Resync(0); err != nil {
		t.Fatalf("Resync: %v", err)
	}
	// Resync lands on the next plausible boundary past the garbage; the
	// stream then drains without I/O errors, recovering at least one of
	// the two remaining records.
	var tail int
	for {
		err := rd.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			if AsDecodeError(err) == nil {
				t.Fatalf("non-decode error draining stream: %v", err)
			}
			if _, err := rd.Resync(0); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("Resync: %v", err)
			}
			continue
		}
		tail++
	}
	if tail < 1 {
		t.Errorf("recovered %d trailing records, want >= 1", tail)
	}
}

func TestBinaryTruncatedMidRecord(t *testing.T) {
	stream, frames := binStream(t, testRecords(2))
	cut := frames[1][0] + (frames[1][1]-frames[1][0])/2
	rd := NewBinaryReader(bytes.NewReader(stream[:cut]))
	var rec Record
	if err := rd.Read(&rec); err != nil {
		t.Fatalf("record 0: %v", err)
	}
	err := rd.Read(&rec)
	de := AsDecodeError(err)
	if de == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want DecodeError wrapping ErrUnexpectedEOF, got %v", err)
	}
	if _, err := rd.Resync(0); err != io.EOF {
		t.Errorf("Resync on truncated tail = %v, want io.EOF", err)
	}
}

func TestBinaryQuarantineDoesNotPoisonDeltaChain(t *testing.T) {
	recs := testRecords(3)
	stream, frames := binStream(t, recs)
	stream[frames[1][1]-1] = 0xFF
	rd := NewBinaryReader(bytes.NewReader(stream))
	var rec Record
	rd.Read(&rec)
	rd.Read(&rec) // quarantined
	rd.Resync(0)
	if err := rd.Read(&rec); err != nil {
		t.Fatal(err)
	}
	// Record 2's delta was written against record 1's time; with record
	// 1 quarantined the absolute time shifts by exactly that lost delta,
	// never by garbage.
	want := recs[0].Time.Add(recs[2].Time.Sub(recs[1].Time))
	if !rec.Time.Equal(want) {
		t.Errorf("time after quarantine = %v, want %v", rec.Time, want)
	}
}
