package logfmt

import (
	"testing"
	"time"
)

func sampleRecord() Record {
	return Record{
		Time:      time.Date(2019, 5, 1, 12, 0, 0, 123456789, time.UTC),
		ClientID:  0xdeadbeef,
		Method:    "GET",
		URL:       "https://api.news-example.com/v1/stories?page=2",
		UserAgent: "NewsApp/3.1 (iPhone; iOS 12.2)",
		MIMEType:  "application/json",
		Status:    200,
		Bytes:     2048,
		Cache:     CacheHit,
	}
}

func TestCacheStatusRoundTrip(t *testing.T) {
	for _, s := range []CacheStatus{CacheUncacheable, CacheHit, CacheMiss} {
		got, err := ParseCacheStatus(s.String())
		if err != nil {
			t.Fatalf("ParseCacheStatus(%q): %v", s, err)
		}
		if got != s {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseCacheStatus("bogus"); err == nil {
		t.Error("want error for unknown status")
	}
	if got := CacheStatus(99).String(); got != "CacheStatus(99)" {
		t.Errorf("unknown status String = %q", got)
	}
}

func TestCacheable(t *testing.T) {
	if CacheUncacheable.Cacheable() {
		t.Error("uncacheable reported cacheable")
	}
	if !CacheHit.Cacheable() || !CacheMiss.Cacheable() {
		t.Error("hit/miss should be cacheable")
	}
}

func TestRecordHost(t *testing.T) {
	cases := map[string]string{
		"https://API.Example.com/v1/x":  "api.example.com",
		"http://example.com:8080/p":     "example.com",
		"example.com/path":              "example.com",
		"https://user@pw.example.com/a": "pw.example.com",
		"https://example.com?q=1":       "example.com",
		"https://example.com#frag":      "example.com",
		"https://h.example.com":         "h.example.com",
	}
	for in, want := range cases {
		r := Record{URL: in}
		if got := r.Host(); got != want {
			t.Errorf("Host(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRecordPath(t *testing.T) {
	cases := map[string]string{
		"https://example.com/v1/x?q=2": "/v1/x?q=2",
		"https://example.com":          "/",
		"example.com/a/b":              "/a/b",
	}
	for in, want := range cases {
		r := Record{URL: in}
		if got := r.Path(); got != want {
			t.Errorf("Path(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsJSON(t *testing.T) {
	cases := map[string]bool{
		"application/json":               true,
		"application/json; charset=utf8": true,
		"APPLICATION/JSON":               true,
		"text/html":                      false,
		"application/json+ld":            false,
		"":                               false,
	}
	for mt, want := range cases {
		r := Record{MIMEType: mt}
		if got := r.IsJSON(); got != want {
			t.Errorf("IsJSON(%q) = %v, want %v", mt, got, want)
		}
	}
}

func TestUploadDownload(t *testing.T) {
	get := Record{Method: "GET"}
	post := Record{Method: "POST"}
	put := Record{Method: "PUT"}
	if !get.IsDownload() || get.IsUpload() {
		t.Error("GET classification wrong")
	}
	if !post.IsUpload() || post.IsDownload() {
		t.Error("POST classification wrong")
	}
	if put.IsUpload() || put.IsDownload() {
		t.Error("PUT should be neither upload nor download")
	}
}

func TestValidate(t *testing.T) {
	good := sampleRecord()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []func(*Record){
		func(r *Record) { r.Time = time.Time{} },
		func(r *Record) { r.Method = "" },
		func(r *Record) { r.URL = "" },
		func(r *Record) { r.URL = "/relative/only" },
		func(r *Record) { r.Status = 0 },
		func(r *Record) { r.Status = 700 },
		func(r *Record) { r.Bytes = -1 },
	}
	for i, mutate := range cases {
		r := sampleRecord()
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestHashClientIPStable(t *testing.T) {
	a := HashClientIP("203.0.113.9")
	b := HashClientIP("203.0.113.9")
	c := HashClientIP("203.0.113.10")
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("distinct IPs collided (unlikely)")
	}
}

func TestCanonicalURL(t *testing.T) {
	cases := map[string]string{
		"HTTPS://Example.COM:443/a?b=2&a=1": "https://example.com/a?a=1&b=2",
		"http://example.com:80/":            "http://example.com/",
		"http://example.com:8080/x":         "http://example.com:8080/x",
		"https://example.com/a#frag":        "https://example.com/a",
		"https://example.com":               "https://example.com/",
		"%%%bad":                            "%%%bad",
	}
	for in, want := range cases {
		if got := CanonicalURL(in); got != want {
			t.Errorf("CanonicalURL(%q) = %q, want %q", in, got, want)
		}
	}
}
