package logfmt

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	var want []Record
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		r := sampleRecord()
		r.Time = base.Add(time.Duration(i) * 137 * time.Millisecond)
		r.Bytes = int64(i * 7)
		if i%3 == 0 {
			r.Method = "POST"
		}
		if i%5 == 0 {
			r.MIMEType = "text/html"
		}
		if i%7 == 0 {
			r.UserAgent = ""
		}
		want = append(want, r)
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 200 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rd := NewBinaryReader(&buf)
	i := 0
	err := rd.ForEach(func(r *Record) error {
		if !r.Time.Equal(want[i].Time) {
			t.Fatalf("record %d time %v != %v", i, r.Time, want[i].Time)
		}
		got := *r
		got.Time = want[i].Time
		if got != want[i] {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, want[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 200 {
		t.Errorf("read %d records", i)
	}
}

func TestBinaryOutOfOrderTimes(t *testing.T) {
	// Delta encoding must handle negative deltas (slightly out-of-order
	// streams).
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	times := []time.Time{base.Add(time.Second), base, base.Add(3 * time.Second)}
	for _, at := range times {
		r := sampleRecord()
		r.Time = at
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	rd := NewBinaryReader(&buf)
	i := 0
	rd.ForEach(func(r *Record) error {
		if !r.Time.Equal(times[i]) {
			t.Errorf("record %d time %v != %v", i, r.Time, times[i])
		}
		i++
		return nil
	})
}

func TestBinaryEmptyStream(t *testing.T) {
	rd := NewBinaryReader(bytes.NewReader(nil))
	var r Record
	if err := rd.Read(&r); err != io.EOF {
		t.Errorf("empty stream: %v", err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	rd := NewBinaryReader(strings.NewReader("NOTCDNJ"))
	var r Record
	if err := rd.Read(&r); err == nil || err == io.EOF {
		t.Errorf("bad magic accepted: %v", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	r := sampleRecord()
	w.Write(&r)
	w.Close()
	full := buf.Bytes()
	// Cut mid-record.
	rd := NewBinaryReader(bytes.NewReader(full[:len(full)-3]))
	var out Record
	if err := rd.Read(&out); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestBinaryCorruptCacheStatus(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	r := sampleRecord()
	w.Write(&r)
	w.Close()
	data := buf.Bytes()
	data[len(data)-1] = 99 // cache byte is last
	rd := NewBinaryReader(bytes.NewReader(data))
	var out Record
	if err := rd.Read(&out); err == nil {
		t.Error("corrupt cache status accepted")
	}
}

func TestBinarySmallerThanTSV(t *testing.T) {
	var tsv, bin bytes.Buffer
	tw := NewWriter(&tsv, FormatTSV)
	bw := NewBinaryWriter(&bin)
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1000; i++ {
		r := sampleRecord()
		r.Time = base.Add(time.Duration(i) * 40 * time.Millisecond)
		tw.Write(&r)
		bw.Write(&r)
	}
	tw.Close()
	bw.Close()
	if bin.Len() >= tsv.Len()*2/3 {
		t.Errorf("binary %d bytes not clearly below TSV %d", bin.Len(), tsv.Len())
	}
}

func TestBinaryPropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(id uint64, status uint16, size uint32, url, ua string) bool {
		r := Record{
			Time:      time.Date(2019, 5, 1, 0, 0, 0, int(id%1e9), time.UTC),
			ClientID:  id,
			Method:    "WEIRD-METHOD",
			URL:       url,
			UserAgent: ua,
			MIMEType:  "application/x-custom",
			Status:    int(status),
			Bytes:     int64(size),
			Cache:     CacheStatus(id % 3),
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		if err := w.Write(&r); err != nil {
			return false
		}
		w.Close()
		var got Record
		if err := NewBinaryReader(&buf).Read(&got); err != nil {
			return false
		}
		return got.Time.Equal(r.Time) && got.ClientID == r.ClientID &&
			got.Method == r.Method && got.URL == r.URL &&
			got.UserAgent == r.UserAgent && got.MIMEType == r.MIMEType &&
			got.Status == r.Status && got.Bytes == r.Bytes && got.Cache == r.Cache
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	r := sampleRecord()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&r); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	r := sampleRecord()
	for i := 0; i < 10000; i++ {
		w.Write(&r)
	}
	w.Close()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	rd := NewBinaryReader(bytes.NewReader(data))
	var out Record
	for i := 0; i < b.N; i++ {
		if err := rd.Read(&out); err == io.EOF {
			rd = NewBinaryReader(bytes.NewReader(data))
		} else if err != nil {
			b.Fatal(err)
		}
	}
}
