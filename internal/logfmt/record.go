// Package logfmt defines the CDN edge-server request log record used
// throughout the reproduction and its on-disk encodings.
//
// The schema mirrors the fields the paper collects from Akamai edge
// servers (§3.1): request time, anonymized (hashed) client IP, select HTTP
// request/response headers (user agent, MIME type, method, URL), response
// size, and object caching information. Two encodings are provided: a
// compact tab-separated line format (the native format of the tools in
// cmd/) and JSON Lines for interchange. Both stream: readers and writers
// never hold more than one record in memory.
package logfmt

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// CacheStatus describes how the edge served a response, as recorded by
// the CDN cache logs (§3.2 "Response Type").
type CacheStatus uint8

const (
	// CacheUncacheable marks responses the customer configured as not
	// cacheable; they are always tunneled to origin.
	CacheUncacheable CacheStatus = iota
	// CacheHit marks responses served from the edge cache.
	CacheHit
	// CacheMiss marks cacheable responses that were not in cache and were
	// fetched from origin.
	CacheMiss
)

var cacheStatusNames = [...]string{"uncacheable", "hit", "miss"}

// String returns the lowercase wire name of the status.
func (s CacheStatus) String() string {
	if int(s) < len(cacheStatusNames) {
		return cacheStatusNames[s]
	}
	return fmt.Sprintf("CacheStatus(%d)", uint8(s))
}

// ParseCacheStatus parses the wire name of a cache status.
func ParseCacheStatus(s string) (CacheStatus, error) {
	for i, n := range cacheStatusNames {
		if s == n {
			return CacheStatus(i), nil
		}
	}
	return 0, fmt.Errorf("logfmt: unknown cache status %q", s)
}

// Cacheable reports whether the response was eligible for edge caching.
func (s CacheStatus) Cacheable() bool { return s == CacheHit || s == CacheMiss }

// Record is one edge-server request log line.
type Record struct {
	// Time is the edge server's receipt time of the request.
	Time time.Time
	// ClientID is the anonymized client identity: a hash of the client IP
	// (the paper hashes IPs for anonymity; client-object flows are keyed
	// by (ClientID, UserAgent) pairs).
	ClientID uint64
	// Method is the HTTP request method (GET, POST, ...).
	Method string
	// URL is the full request URL (scheme optional, host required).
	URL string
	// UserAgent is the raw User-Agent request header; empty if absent.
	UserAgent string
	// MIMEType is the response Content-Type (e.g. "application/json").
	MIMEType string
	// Status is the HTTP response status code.
	Status int
	// Bytes is the response body size in bytes.
	Bytes int64
	// Cache is the edge cache disposition of the response.
	Cache CacheStatus
}

// Host returns the host part of the record URL, or "" if unparseable.
func (r *Record) Host() string {
	u := r.URL
	if i := strings.Index(u, "://"); i >= 0 {
		u = u[i+3:]
	}
	if i := strings.IndexAny(u, "/?#"); i >= 0 {
		u = u[:i]
	}
	// Strip port and userinfo.
	if i := strings.LastIndexByte(u, '@'); i >= 0 {
		u = u[i+1:]
	}
	if i := strings.IndexByte(u, ':'); i >= 0 {
		u = u[:i]
	}
	return strings.ToLower(u)
}

// Path returns the path-and-query part of the record URL (at least "/").
func (r *Record) Path() string {
	u := r.URL
	if i := strings.Index(u, "://"); i >= 0 {
		u = u[i+3:]
	}
	if i := strings.IndexByte(u, '/'); i >= 0 {
		return u[i:]
	}
	return "/"
}

// IsJSON reports whether the response MIME type is application/json
// (ignoring parameters such as charset), the filter the paper applies to
// isolate JSON traffic.
func (r *Record) IsJSON() bool {
	mt := r.MIMEType
	if i := strings.IndexByte(mt, ';'); i >= 0 {
		mt = mt[:i]
	}
	return strings.TrimSpace(strings.ToLower(mt)) == "application/json"
}

// IsDownload reports whether the request retrieves data (GET; §3.2
// "Request Type" assumes conventional method semantics per RFC 7231).
func (r *Record) IsDownload() bool { return r.Method == "GET" }

// IsUpload reports whether the request sends data (POST).
func (r *Record) IsUpload() bool { return r.Method == "POST" }

// Validate reports the first structural problem with the record, or nil.
func (r *Record) Validate() error {
	switch {
	case r.Time.IsZero():
		return errors.New("logfmt: record has zero time")
	case r.Method == "":
		return errors.New("logfmt: record has empty method")
	case r.URL == "":
		return errors.New("logfmt: record has empty URL")
	case r.Host() == "":
		return fmt.Errorf("logfmt: record URL %q has no host", r.URL)
	case r.Status < 100 || r.Status > 599:
		return fmt.Errorf("logfmt: record has invalid status %d", r.Status)
	case r.Bytes < 0:
		return fmt.Errorf("logfmt: record has negative size %d", r.Bytes)
	default:
		return nil
	}
}

// HashClientIP derives an anonymized ClientID from an IP string, matching
// the paper's IP hashing for anonymity. The hash is deterministic
// (FNV-1a) so the same client maps to the same ID across datasets.
func HashClientIP(ip string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(ip))
	return h.Sum64()
}

// CanonicalURL normalizes a URL for flow keying: lowercases scheme and
// host, strips default ports and fragments, and sorts query parameters.
// Invalid URLs are returned unchanged.
func CanonicalURL(raw string) string {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return raw
	}
	u.Scheme = strings.ToLower(u.Scheme)
	u.Host = strings.ToLower(u.Host)
	if h, p, ok := strings.Cut(u.Host, ":"); ok {
		if (u.Scheme == "https" && p == "443") || (u.Scheme == "http" && p == "80") {
			u.Host = h
		}
	}
	u.Fragment = ""
	if u.RawQuery != "" {
		q := u.Query()
		u.RawQuery = q.Encode() // Encode sorts keys
	}
	if u.Path == "" {
		u.Path = "/"
	}
	return u.String()
}

const timeLayout = time.RFC3339Nano

func formatTime(t time.Time) string { return t.UTC().Format(timeLayout) }

func parseTime(s string) (time.Time, error) { return time.Parse(timeLayout, s) }

func formatClientID(id uint64) string { return strconv.FormatUint(id, 16) }

func parseClientID(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }
