package logfmt

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// The TSV wire format is one record per line:
//
//	time \t clientID(hex) \t method \t url \t cacheStatus \t status \t bytes \t mime \t userAgent
//
// The user agent comes last because it is the only field that may contain
// arbitrary text (tabs and newlines inside it are escaped).

const tsvFields = 9

// AppendTSV appends the TSV encoding of r (including trailing newline) to
// dst and returns the extended slice.
func AppendTSV(dst []byte, r *Record) []byte {
	dst = append(dst, formatTime(r.Time)...)
	dst = append(dst, '\t')
	dst = append(dst, formatClientID(r.ClientID)...)
	dst = append(dst, '\t')
	dst = append(dst, r.Method...)
	dst = append(dst, '\t')
	dst = append(dst, r.URL...)
	dst = append(dst, '\t')
	dst = append(dst, r.Cache.String()...)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, int64(r.Status), 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, r.Bytes, 10)
	dst = append(dst, '\t')
	dst = append(dst, r.MIMEType...)
	dst = append(dst, '\t')
	dst = appendEscaped(dst, r.UserAgent)
	dst = append(dst, '\n')
	return dst
}

func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			dst = append(dst, '\\', 't')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\\':
			dst = append(dst, '\\', '\\')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
		} else {
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// ParseTSV parses one TSV line (without trailing newline) into r.
func ParseTSV(line string, r *Record) error {
	fields := strings.SplitN(line, "\t", tsvFields)
	if len(fields) != tsvFields {
		return fmt.Errorf("logfmt: TSV line has %d fields, want %d", len(fields), tsvFields)
	}
	t, err := parseTime(fields[0])
	if err != nil {
		return fmt.Errorf("logfmt: bad time %q: %w", fields[0], err)
	}
	id, err := parseClientID(fields[1])
	if err != nil {
		return fmt.Errorf("logfmt: bad client id %q: %w", fields[1], err)
	}
	cache, err := ParseCacheStatus(fields[4])
	if err != nil {
		return err
	}
	status, err := strconv.Atoi(fields[5])
	if err != nil {
		return fmt.Errorf("logfmt: bad status %q: %w", fields[5], err)
	}
	size, err := strconv.ParseInt(fields[6], 10, 64)
	if err != nil {
		return fmt.Errorf("logfmt: bad size %q: %w", fields[6], err)
	}
	r.Time = t
	r.ClientID = id
	r.Method = canonMethod(fields[2])
	r.URL = fields[3]
	r.Cache = cache
	r.Status = status
	r.Bytes = size
	r.MIMEType = canonMIME(fields[7])
	r.UserAgent = unescape(fields[8])
	return nil
}

// jsonRecord is the JSON Lines representation of Record.
type jsonRecord struct {
	Time      time.Time `json:"time"`
	ClientID  string    `json:"client_id"`
	Method    string    `json:"method"`
	URL       string    `json:"url"`
	UserAgent string    `json:"user_agent,omitempty"`
	MIMEType  string    `json:"mime_type"`
	Status    int       `json:"status"`
	Bytes     int64     `json:"bytes"`
	Cache     string    `json:"cache"`
}

// MarshalJSONLine returns the JSON Lines encoding of r (one JSON object,
// no trailing newline).
func MarshalJSONLine(r *Record) ([]byte, error) {
	return json.Marshal(jsonRecord{
		Time:      r.Time.UTC(),
		ClientID:  formatClientID(r.ClientID),
		Method:    r.Method,
		URL:       r.URL,
		UserAgent: r.UserAgent,
		MIMEType:  r.MIMEType,
		Status:    r.Status,
		Bytes:     r.Bytes,
		Cache:     r.Cache.String(),
	})
}

// UnmarshalJSONLine parses one JSON Lines object into r.
func UnmarshalJSONLine(data []byte, r *Record) error {
	var jr jsonRecord
	if err := json.Unmarshal(data, &jr); err != nil {
		return fmt.Errorf("logfmt: bad JSON record: %w", err)
	}
	id, err := parseClientID(jr.ClientID)
	if err != nil {
		return fmt.Errorf("logfmt: bad client id %q: %w", jr.ClientID, err)
	}
	cache, err := ParseCacheStatus(jr.Cache)
	if err != nil {
		return err
	}
	r.Time = jr.Time
	r.ClientID = id
	r.Method = canonMethod(jr.Method)
	r.URL = jr.URL
	r.UserAgent = jr.UserAgent
	r.MIMEType = canonMIME(jr.MIMEType)
	r.Status = jr.Status
	r.Bytes = jr.Bytes
	r.Cache = cache
	return nil
}

// Format selects a log encoding.
type Format uint8

const (
	// FormatTSV is the compact tab-separated native format.
	FormatTSV Format = iota
	// FormatJSONL is JSON Lines.
	FormatJSONL
)

// Name returns the short wire name of the format, as used in
// DecodeError.Format and quarantine entries.
func (f Format) Name() string {
	switch f {
	case FormatTSV:
		return "tsv"
	case FormatJSONL:
		return "jsonl"
	default:
		return fmt.Sprintf("format(%d)", f)
	}
}

// Writer streams records to an underlying io.Writer in a chosen format,
// buffered. Close flushes; it closes the underlying writer only if it is
// an io.Closer the Writer created itself (gzip layer). Writer is not safe
// for concurrent use.
type Writer struct {
	bw     *bufio.Writer
	gz     *gzip.Writer
	format Format
	buf    []byte
	n      int64
}

// NewWriter returns a Writer emitting the given format to w.
func NewWriter(w io.Writer, format Format) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), format: format}
}

// NewGzipWriter returns a Writer that gzip-compresses its output.
func NewGzipWriter(w io.Writer, format Format) *Writer {
	gz := gzip.NewWriter(w)
	lw := NewWriter(gz, format)
	lw.gz = gz
	return lw
}

// Write encodes and buffers one record.
func (w *Writer) Write(r *Record) error {
	switch w.format {
	case FormatTSV:
		w.buf = AppendTSV(w.buf[:0], r)
	case FormatJSONL:
		line, err := MarshalJSONLine(r)
		if err != nil {
			return err
		}
		w.buf = append(line, '\n')
	default:
		return fmt.Errorf("logfmt: unknown format %d", w.format)
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.n }

// Close flushes buffered data and finalizes any compression layer.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}

// Reader streams records from an underlying io.Reader, transparently
// detecting gzip. Reader is not safe for concurrent use.
//
// Decoded URL and user-agent strings are interned per reader (see
// Interner): repeated values share one canonical copy instead of each
// record pinning its own — on the TSV path that copy also releases the
// source line the substrings would otherwise keep alive.
type Reader struct {
	br      *bufio.Reader
	format  Format
	line    int64
	offset  int64
	records int64
	intern  *Interner
}

// NewReader returns a Reader decoding the given format from r,
// transparently decompressing gzip input (detected by magic bytes).
func NewReader(r io.Reader, format Format) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(2)
	if err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("logfmt: bad gzip stream: %w", err)
		}
		br = bufio.NewReaderSize(gz, 1<<16)
	}
	return &Reader{br: br, format: format, intern: NewInterner(0)}, nil
}

// Read decodes the next record into r. It returns io.EOF at end of
// stream. Blank lines are skipped. Malformed lines are reported as a
// *DecodeError carrying the byte offset and record index of the bad
// span; the line is already consumed, so the next Read resumes at the
// following line — callers that tolerate corruption (ingest.TolerantReader)
// quarantine the span and keep reading.
func (rd *Reader) Read(r *Record) error {
	for {
		start := rd.offset
		line, err := rd.br.ReadString('\n')
		rd.offset += int64(len(line))
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return err
		}
		rd.line++
		span := int64(len(line))
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if err == io.EOF {
				return io.EOF
			}
			continue
		}
		idx := rd.records
		rd.records++
		var perr error
		switch rd.format {
		case FormatTSV:
			perr = ParseTSV(line, r)
		case FormatJSONL:
			perr = UnmarshalJSONLine([]byte(line), r)
		default:
			return fmt.Errorf("logfmt: unknown format %d", rd.format)
		}
		if perr != nil {
			return &DecodeError{
				Format: rd.format.Name(),
				Offset: start,
				Record: idx,
				Span:   span,
				Err:    fmt.Errorf("line %d: %w", rd.line, perr),
			}
		}
		r.URL = rd.intern.Intern(r.URL)
		r.UserAgent = rd.intern.Intern(r.UserAgent)
		return nil
	}
}

// Offset returns the number of bytes of the (decompressed) stream
// consumed so far.
func (rd *Reader) Offset() int64 { return rd.offset }

// ForEach reads every record in the stream and calls fn. It stops at EOF,
// or earlier if fn returns a non-nil error, which is then returned.
func (rd *Reader) ForEach(fn func(*Record) error) error {
	var rec Record
	for {
		err := rd.Read(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
}

// RecordReader is implemented by every log decoder (text and binary).
type RecordReader interface {
	// Read decodes the next record, returning io.EOF at end of stream.
	Read(*Record) error
	// ForEach reads every record, stopping at EOF or on fn's first error.
	ForEach(fn func(*Record) error) error
}

// RecordWriter is implemented by every log encoder.
type RecordWriter interface {
	// Write encodes one record.
	Write(*Record) error
	// Count returns the number of records written so far.
	Count() int64
	// Close flushes buffered output and finalizes compression layers.
	Close() error
}

// OpenFile opens path and returns a reader for it. The container
// formats are detected by magic bytes — "CDNC1" → chunk container,
// "CDNJ1" → binary stream — regardless of extension; everything else
// falls back to the extension: .jsonl → JSON Lines, .cdnb → binary,
// anything else → TSV; a .gz suffix is stripped first (decompression is
// automatic for the text formats and the plain binary stream).
func OpenFile(path string) (RecordReader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic, _ := br.Peek(5)
	switch {
	case IsChunkMagic(magic):
		return NewChunkReader(br), f, nil
	case IsBinaryMagic(magic) || IsBinaryPath(path):
		return NewBinaryReader(br), f, nil
	}
	rd, err := NewReader(br, FormatForPath(path))
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return rd, f, nil
}

// CreateFile creates path and returns a writer in the inferred format
// (see OpenFile), gzip-compressing text formats with a .gz suffix. A
// .cdnc extension selects the chunk container with its default
// configuration (flate codec); use NewChunkWriter directly for other
// codecs or chunk sizes. Closing the returned writer flushes; the
// caller must also close the returned io.Closer (the file).
func CreateFile(path string) (RecordWriter, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if IsChunkPath(path) {
		return NewChunkWriter(f, ChunkConfig{}), f, nil
	}
	if IsBinaryPath(path) {
		if strings.HasSuffix(path, ".gz") {
			return NewGzipBinaryWriter(f), f, nil
		}
		return NewBinaryWriter(f), f, nil
	}
	format := FormatForPath(path)
	if strings.HasSuffix(path, ".gz") {
		return NewGzipWriter(f, format), f, nil
	}
	return NewWriter(f, format), f, nil
}

// IsBinaryPath reports whether path names a binary-format (.cdnb) log.
func IsBinaryPath(path string) bool {
	return strings.HasSuffix(strings.TrimSuffix(path, ".gz"), ".cdnb")
}

// FormatForPath infers the text encoding format from a file name.
func FormatForPath(path string) Format {
	p := strings.TrimSuffix(path, ".gz")
	if strings.HasSuffix(p, ".jsonl") {
		return FormatJSONL
	}
	return FormatTSV
}
