package logfmt

import (
	"bytes"
	"strings"
	"testing"
	"time"
	"unsafe"
)

func TestInternerCanonicalizes(t *testing.T) {
	in := NewInterner(0)
	a := in.Intern("https://example.com/api/feed")
	b := in.Intern("https://" + "example.com" + "/api/feed")
	if a != b {
		t.Fatal("equal strings not equal after interning")
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Error("equal strings interned to different backing arrays")
	}
	if in.Len() != 1 {
		t.Errorf("Len = %d, want 1", in.Len())
	}
}

func TestInternerCapStopsGrowth(t *testing.T) {
	in := NewInterner(3)
	for _, s := range []string{"a", "b", "c", "d", "e"} {
		if got := in.Intern(s); got != s {
			t.Errorf("Intern(%q) = %q", s, got)
		}
	}
	if in.Len() != 3 {
		t.Errorf("capped interner holds %d strings, want 3", in.Len())
	}
}

func TestInternerNilAndEmpty(t *testing.T) {
	var in *Interner
	if in.Intern("x") != "x" || in.Len() != 0 {
		t.Error("nil interner must pass strings through")
	}
	if NewInterner(0).Intern("") != "" {
		t.Error("empty string mangled")
	}
}

// TestReaderInternsAcrossRecords round-trips two records sharing a URL
// and checks the decoded copies share one backing array.
func TestReaderInternsAcrossRecords(t *testing.T) {
	rec := Record{
		Time: time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC), ClientID: 7,
		Method: "GET", URL: "https://d.example/api/feed", MIMEType: "application/json",
		UserAgent: "AppleCoreMedia/1.0", Status: 200, Bytes: 321, Cache: CacheHit,
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatTSV)
	for i := 0; i < 2; i++ {
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf, FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	var a, b Record
	if err := rd.Read(&a); err != nil {
		t.Fatal(err)
	}
	if err := rd.Read(&b); err != nil {
		t.Fatal(err)
	}
	if a.URL != rec.URL || b.URL != rec.URL {
		t.Fatalf("round trip mangled URL: %q / %q", a.URL, b.URL)
	}
	if unsafe.StringData(a.URL) != unsafe.StringData(b.URL) {
		t.Error("decoded URLs not interned to one copy")
	}
	if unsafe.StringData(a.UserAgent) != unsafe.StringData(b.UserAgent) {
		t.Error("decoded user agents not interned to one copy")
	}
	if a.Method != "GET" || a.MIMEType != "application/json" {
		t.Errorf("canonicalization changed values: %q %q", a.Method, a.MIMEType)
	}
}

func TestCanonPassThroughUnknown(t *testing.T) {
	if canonMethod("BREW") != "BREW" || canonMIME("application/x-custom") != "application/x-custom" {
		t.Error("unknown values must pass through unchanged")
	}
}

// BenchmarkReaderInterned measures the decode path over a repetitive
// stream — the interner should hold steady-state allocations near zero
// for the string fields.
func BenchmarkReaderInterned(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatTSV)
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1000; i++ {
		rec := Record{
			Time: base.Add(time.Duration(i) * time.Millisecond), ClientID: uint64(i % 50),
			Method: "GET", URL: "https://d.example/api/feed" + string(rune('a'+i%8)),
			MIMEType: "application/json", UserAgent: "okhttp/3.12",
			Status: 200, Bytes: 512, Cache: CacheMiss,
		}
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := NewReader(bytes.NewReader(data), FormatTSV)
		if err != nil {
			b.Fatal(err)
		}
		var r Record
		if err := rd.ForEach(func(rec *Record) error { r = *rec; return nil }); err != nil {
			b.Fatal(err)
		}
		_ = r
	}
}

func TestInternerSubstringUnpinned(t *testing.T) {
	line := strings.Repeat("x", 1<<16) + "tail"
	sub := line[1<<16:]
	in := NewInterner(0)
	got := in.Intern(sub)
	if got != "tail" {
		t.Fatalf("Intern(%q) = %q", sub, got)
	}
	if unsafe.StringData(got) == unsafe.StringData(sub) {
		t.Error("interned string shares the substring's backing array (pins the source line)")
	}
}
