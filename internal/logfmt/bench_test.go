package logfmt

import (
	"bytes"
	"strings"
	"testing"
)

func BenchmarkAppendTSV(b *testing.B) {
	r := sampleRecord()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendTSV(buf[:0], &r)
	}
}

func BenchmarkParseTSV(b *testing.B) {
	r := sampleRecord()
	line := strings.TrimSuffix(string(AppendTSV(nil, &r)), "\n")
	var out Record
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ParseTSV(line, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalJSONLine(b *testing.B) {
	r := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalJSONLine(&r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	r := sampleRecord()
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatTSV)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&r); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}

// BenchmarkChunkWrite measures the encode side of the chunk container
// per codec: dictionary building, body encoding, and compression.
func BenchmarkChunkWrite(b *testing.B) {
	recs := chunkCorpus(10_000)
	for _, codec := range []Codec{CodecRaw, CodecFlate, CodecGzip} {
		b.Run("codec="+codec.String(), func(b *testing.B) {
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				w := NewChunkWriter(&buf, ChunkConfig{Codec: codec})
				for j := range recs {
					if err := w.Write(&recs[j]); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(buf.Len()))
			b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "records/s")
			b.ReportMetric(float64(buf.Len())/float64(len(recs)), "disk-B/rec")
		})
	}
}

func BenchmarkCanonicalURL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CanonicalURL("HTTPS://Example.COM:443/v1/articles?b=2&a=1")
	}
}
