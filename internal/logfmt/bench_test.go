package logfmt

import (
	"bytes"
	"strings"
	"testing"
)

func BenchmarkAppendTSV(b *testing.B) {
	r := sampleRecord()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendTSV(buf[:0], &r)
	}
}

func BenchmarkParseTSV(b *testing.B) {
	r := sampleRecord()
	line := strings.TrimSuffix(string(AppendTSV(nil, &r)), "\n")
	var out Record
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ParseTSV(line, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalJSONLine(b *testing.B) {
	r := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalJSONLine(&r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	r := sampleRecord()
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatTSV)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&r); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}

func BenchmarkCanonicalURL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CanonicalURL("HTTPS://Example.COM:443/v1/articles?b=2&a=1")
	}
}
