package logfmt

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTSVRoundTrip(t *testing.T) {
	r := sampleRecord()
	line := string(AppendTSV(nil, &r))
	var got Record
	if err := ParseTSV(strings.TrimSuffix(line, "\n"), &got); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestTSVEscaping(t *testing.T) {
	r := sampleRecord()
	r.UserAgent = "weird\tagent\nwith\\escapes"
	line := string(AppendTSV(nil, &r))
	if strings.Count(line, "\n") != 1 {
		t.Fatal("embedded newline not escaped")
	}
	var got Record
	if err := ParseTSV(strings.TrimSuffix(line, "\n"), &got); err != nil {
		t.Fatal(err)
	}
	if got.UserAgent != r.UserAgent {
		t.Fatalf("UA round trip: %q != %q", got.UserAgent, r.UserAgent)
	}
}

func TestUnescapeUnknownSequence(t *testing.T) {
	if got := unescape(`a\qb`); got != `a\qb` {
		t.Errorf("unknown escape mangled: %q", got)
	}
}

func TestParseTSVErrors(t *testing.T) {
	var r Record
	cases := []string{
		"too\tfew\tfields",
		"notatime\tdead\tGET\thttp://x/\thit\t200\t5\tapplication/json\tua",
		"2019-05-01T12:00:00Z\tZZZZ_not_hex\tGET\thttp://x/\thit\t200\t5\tapplication/json\tua",
		"2019-05-01T12:00:00Z\tdead\tGET\thttp://x/\tbogus\t200\t5\tapplication/json\tua",
		"2019-05-01T12:00:00Z\tdead\tGET\thttp://x/\thit\tNaN\t5\tapplication/json\tua",
		"2019-05-01T12:00:00Z\tdead\tGET\thttp://x/\thit\t200\tNaN\tapplication/json\tua",
	}
	for i, line := range cases {
		if err := ParseTSV(line, &r); err == nil {
			t.Errorf("case %d: bad line accepted", i)
		}
	}
}

func TestJSONLineRoundTrip(t *testing.T) {
	r := sampleRecord()
	data, err := MarshalJSONLine(&r)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := UnmarshalJSONLine(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(r.Time) {
		t.Errorf("time mismatch: %v != %v", got.Time, r.Time)
	}
	got.Time = r.Time
	if got != r {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestUnmarshalJSONLineErrors(t *testing.T) {
	var r Record
	for _, data := range []string{
		"{not json",
		`{"client_id":"zz__","cache":"hit"}`,
		`{"client_id":"aa","cache":"bogus"}`,
	} {
		if err := UnmarshalJSONLine([]byte(data), &r); err == nil {
			t.Errorf("accepted %q", data)
		}
	}
}

func TestWriterReaderStream(t *testing.T) {
	for _, format := range []Format{FormatTSV, FormatJSONL} {
		var buf bytes.Buffer
		w := NewWriter(&buf, format)
		const n = 100
		for i := 0; i < n; i++ {
			r := sampleRecord()
			r.Bytes = int64(i)
			if err := w.Write(&r); err != nil {
				t.Fatal(err)
			}
		}
		if w.Count() != n {
			t.Errorf("Count = %d", w.Count())
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rd, err := NewReader(&buf, format)
		if err != nil {
			t.Fatal(err)
		}
		var count int64
		err = rd.ForEach(func(r *Record) error {
			if r.Bytes != count {
				t.Fatalf("record %d has Bytes %d", count, r.Bytes)
			}
			count++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Errorf("format %d: read %d records, want %d", format, count, n)
		}
	}
}

func TestGzipRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewGzipWriter(&buf, FormatTSV)
	r := sampleRecord()
	for i := 0; i < 50; i++ {
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Bytes()[0] != 0x1f {
		t.Fatal("output not gzip")
	}
	rd, err := NewReader(&buf, FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := rd.ForEach(func(*Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("read %d records", count)
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	r := sampleRecord()
	line := string(AppendTSV(nil, &r))
	input := line + "\n\n" + line + "\n"
	rd, err := NewReader(strings.NewReader(input), FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := rd.ForEach(func(*Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("read %d records, want 2", count)
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	r := sampleRecord()
	good := string(AppendTSV(nil, &r))
	input := good + "garbage line\n"
	rd, err := NewReader(strings.NewReader(input), FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := rd.Read(&rec); err != nil {
		t.Fatal(err)
	}
	err = rd.Read(&rec)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should mention line 2, got %v", err)
	}
}

func TestReaderNoTrailingNewline(t *testing.T) {
	r := sampleRecord()
	line := strings.TrimSuffix(string(AppendTSV(nil, &r)), "\n")
	rd, err := NewReader(strings.NewReader(line), FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := rd.Read(&rec); err != nil {
		t.Fatal(err)
	}
	if err := rd.Read(&rec); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	r := sampleRecord()
	var buf bytes.Buffer
	w := NewWriter(&buf, FormatTSV)
	w.Write(&r)
	w.Write(&r)
	w.Close()
	rd, _ := NewReader(&buf, FormatTSV)
	wantErr := io.ErrUnexpectedEOF
	err := rd.ForEach(func(*Record) error { return wantErr })
	if err != wantErr {
		t.Errorf("got %v", err)
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"x.tsv":      FormatTSV,
		"x.log":      FormatTSV,
		"x.jsonl":    FormatJSONL,
		"x.jsonl.gz": FormatJSONL,
		"x.tsv.gz":   FormatTSV,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestTSVPropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(id uint64, status uint16, size uint32, ua string) bool {
		r := Record{
			Time:      time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(id % 1e6)),
			ClientID:  id,
			Method:    "GET",
			URL:       "https://example.com/x",
			UserAgent: ua,
			MIMEType:  "application/json",
			Status:    int(status),
			Bytes:     int64(size),
			Cache:     CacheStatus(id % 3),
		}
		line := string(AppendTSV(nil, &r))
		var got Record
		if err := ParseTSV(strings.TrimSuffix(line, "\n"), &got); err != nil {
			return false
		}
		return got == r
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
