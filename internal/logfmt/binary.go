package logfmt

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// The binary format is a compact, streaming encoding for large datasets:
// a 5-byte magic header, then one length-delimited record after another.
// Timestamps are delta-encoded against the previous record (the
// generator emits nearly time-ordered streams, so deltas are tiny) and
// common methods and MIME types are replaced by one-byte dictionary
// indices. It encodes the same Record schema as TSV/JSONL at roughly a
// third of the size before compression.

// binaryMagic identifies a binary log stream (format version 1).
var binaryMagic = [5]byte{'C', 'D', 'N', 'J', '1'}

// Dictionary tables; index 0 is reserved for "literal string follows".
var (
	methodTable = []string{"", "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH"}
	mimeTable   = []string{"", "application/json", "text/html", "image/jpeg",
		"application/javascript", "text/css", "image/png", "application/octet-stream"}
)

func tableIndex(table []string, s string) byte {
	for i := 1; i < len(table); i++ {
		if table[i] == s {
			return byte(i)
		}
	}
	return 0
}

// BinaryWriter streams records in the binary format. Close flushes.
// BinaryWriter is not safe for concurrent use.
type BinaryWriter struct {
	bw       *bufio.Writer
	gz       *gzip.Writer
	buf      []byte
	prevNano int64
	n        int64
	started  bool
}

// NewBinaryWriter returns a writer emitting the binary format to w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// NewGzipBinaryWriter returns a writer that gzip-compresses the binary
// format.
func NewGzipBinaryWriter(w io.Writer) *BinaryWriter {
	gz := gzip.NewWriter(w)
	bw := NewBinaryWriter(gz)
	bw.gz = gz
	return bw
}

// Write encodes one record.
func (w *BinaryWriter) Write(r *Record) error {
	if !w.started {
		if _, err := w.bw.Write(binaryMagic[:]); err != nil {
			return err
		}
		w.started = true
	}
	buf := appendRecordBody(w.buf[:0], r, &w.prevNano)
	w.buf = buf

	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(buf)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *BinaryWriter) Count() int64 { return w.n }

// Close flushes buffered output and finalizes any compression layer.
func (w *BinaryWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}

// appendRecordBody appends the frame payload encoding of r — the shared
// per-record body of the binary stream and the chunk container — and
// advances *prevNano to r's timestamp for the delta chain.
func appendRecordBody(buf []byte, r *Record, prevNano *int64) []byte {
	nano := r.Time.UnixNano()
	buf = binary.AppendVarint(buf, nano-*prevNano)
	*prevNano = nano
	buf = binary.AppendUvarint(buf, r.ClientID)
	buf = appendDictString(buf, methodTable, r.Method)
	buf = appendString(buf, r.URL)
	buf = appendString(buf, r.UserAgent)
	buf = appendDictString(buf, mimeTable, r.MIMEType)
	buf = binary.AppendUvarint(buf, uint64(r.Status))
	buf = binary.AppendUvarint(buf, uint64(r.Bytes))
	buf = append(buf, byte(r.Cache))
	return buf
}

func appendDictString(buf []byte, table []string, s string) []byte {
	if i := tableIndex(table, s); i != 0 {
		return append(buf, i)
	}
	buf = append(buf, 0)
	return appendString(buf, s)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// maxBinaryRecord bounds one encoded record; larger length prefixes are
// rejected as corrupt.
const maxBinaryRecord = 1 << 24

// BinaryReader streams records from the binary format. BinaryReader is
// not safe for concurrent use.
type BinaryReader struct {
	br       *bufio.Reader
	buf      []byte
	prevNano int64
	offset   int64
	records  int64
	started  bool
	intern   *Interner
}

// NewBinaryReader returns a reader decoding the binary format from r,
// transparently decompressing gzip input (detected by magic bytes).
func NewBinaryReader(r io.Reader) *BinaryReader {
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(2); err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		if gz, err := gzip.NewReader(br); err == nil {
			br = bufio.NewReaderSize(gz, 1<<16)
		}
	}
	return &BinaryReader{br: br, intern: NewInterner(0)}
}

// Read decodes the next record. It returns io.EOF at end of stream.
// Corruption — a bad magic, an implausible length prefix, a truncated
// frame, or a frame whose payload does not decode — is reported as a
// *DecodeError carrying the byte offset and record index of the bad
// span. After a DecodeError the stream position is undefined (the
// length prefix itself may have been garbage); callers that want to
// continue must call Resync first.
func (rd *BinaryReader) Read(r *Record) error {
	if !rd.started {
		var magic [5]byte
		n, err := io.ReadFull(rd.br, magic[:])
		rd.offset += int64(n)
		if err != nil {
			if err == io.EOF {
				return io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				rd.started = true
				return &DecodeError{Format: "binary", Offset: 0, Record: 0, Span: int64(n),
					Err: fmt.Errorf("truncated binary magic: %w", err)}
			}
			return fmt.Errorf("logfmt: reading binary magic: %w", err)
		}
		rd.started = true
		if magic != binaryMagic {
			return &DecodeError{Format: "binary", Offset: 0, Record: 0, Span: int64(n),
				Err: fmt.Errorf("bad binary magic %q", magic[:])}
		}
	}
	frameStart := rd.offset
	idx := rd.records
	size, err := rd.readUvarint()
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		rd.records++
		return &DecodeError{Format: "binary", Offset: frameStart, Record: idx,
			Span: rd.offset - frameStart, Err: fmt.Errorf("reading record length: %w", err)}
	}
	rd.records++
	if size == 0 || size > maxBinaryRecord {
		return &DecodeError{Format: "binary", Offset: frameStart, Record: idx,
			Span: rd.offset - frameStart, Err: fmt.Errorf("implausible record length %d", size)}
	}
	if cap(rd.buf) < int(size) {
		rd.buf = make([]byte, size)
	}
	buf := rd.buf[:size]
	n, err := io.ReadFull(rd.br, buf)
	rd.offset += int64(n)
	if err != nil {
		return &DecodeError{Format: "binary", Offset: frameStart, Record: idx,
			Span: rd.offset - frameStart, Err: fmt.Errorf("reading binary record: %w", err)}
	}
	// Decode against a scratch timestamp and commit only on success, so
	// a quarantined record cannot poison the delta chain for the records
	// that follow it.
	prev := rd.prevNano
	if err := decodeRecord(buf, r, &prev); err != nil {
		return &DecodeError{Format: "binary", Offset: frameStart, Record: idx,
			Span: rd.offset - frameStart, Err: err}
	}
	rd.prevNano = prev
	// Methods and MIME types come out of the dictionary already shared;
	// URL and user agent are literals, interned here so repeated values
	// share one copy across the decoded dataset.
	r.URL = rd.intern.Intern(r.URL)
	r.UserAgent = rd.intern.Intern(r.UserAgent)
	return nil
}

// readUvarint reads a length prefix, charging consumed bytes to the
// reader offset. A clean EOF before the first byte is io.EOF; EOF
// mid-varint is io.ErrUnexpectedEOF.
func (rd *BinaryReader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := rd.br.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				return x, io.ErrUnexpectedEOF
			}
			return x, err
		}
		rd.offset++
		if b < 0x80 {
			if i > 9 || i == 9 && b > 1 {
				return x, fmt.Errorf("length varint overflows uint64")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// Offset returns the number of bytes of the (decompressed) stream
// consumed so far.
func (rd *BinaryReader) Offset() int64 { return rd.offset }

// Resync scans forward after a DecodeError for the next plausible
// record boundary: a position where a sane length prefix is followed by
// a payload that fully decodes (dictionary indices in range, strings in
// bounds, valid cache status, no trailing bytes). It returns the number
// of bytes skipped. io.EOF means the stream ended with no further
// boundary; the scan gives up with an error after maxScan bytes
// (maxScan <= 0 means 1 MiB).
//
// Validation needs the whole candidate frame inside the read-ahead
// buffer, so a genuine record larger than the buffer (64 KiB) may be
// skipped; quarantine accounting absorbs the loss.
func (rd *BinaryReader) Resync(maxScan int64) (int64, error) {
	if maxScan <= 0 {
		maxScan = 1 << 20
	}
	var skipped int64
	for skipped < maxScan {
		window, perr := rd.br.Peek(rd.br.Size())
		if len(window) == 0 {
			return skipped, io.EOF
		}
		for i := range window {
			if skipped+int64(i) >= maxScan {
				break
			}
			if plausibleFrame(window[i:], rd.prevNano) {
				rd.discard(i)
				return skipped + int64(i), nil
			}
		}
		n := len(window)
		if int64(n) > maxScan-skipped {
			n = int(maxScan - skipped)
		}
		rd.discard(n)
		skipped += int64(n)
		if perr != nil { // stream exhausted, nothing matched
			return skipped, io.EOF
		}
	}
	return skipped, fmt.Errorf("logfmt: resync: no record boundary within %d bytes", maxScan)
}

func (rd *BinaryReader) discard(n int) {
	d, _ := rd.br.Discard(n)
	rd.offset += int64(d)
}

// plausibleFrame reports whether b starts with a complete, decodable
// record frame.
func plausibleFrame(b []byte, prevNano int64) bool {
	size, n := binary.Uvarint(b)
	if n <= 0 || size == 0 || size > maxBinaryRecord {
		return false
	}
	if uint64(len(b)-n) < size {
		return false // frame extends past the window; cannot validate
	}
	var rec Record
	prev := prevNano
	return decodeRecord(b[n:n+int(size)], &rec, &prev) == nil
}

// decodeRecord decodes one frame payload into r. The timestamp delta is
// applied to *prevNano only as a scratch value; callers commit it on
// success. A payload with trailing bytes is corrupt.
func decodeRecord(buf []byte, r *Record, prevNano *int64) error {
	d := decoder{buf: buf}
	delta := d.varint()
	r.ClientID = d.uvarint()
	r.Method = d.dictString(methodTable)
	r.URL = d.str()
	r.UserAgent = d.str()
	r.MIMEType = d.dictString(mimeTable)
	r.Status = int(d.uvarint())
	r.Bytes = int64(d.uvarint())
	cacheByte := d.byte()
	if d.err != nil {
		return fmt.Errorf("logfmt: corrupt binary record: %w", d.err)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("logfmt: corrupt binary record: %d trailing bytes", len(d.buf))
	}
	if cacheByte > byte(CacheMiss) {
		return fmt.Errorf("logfmt: corrupt binary record: cache status %d", cacheByte)
	}
	*prevNano += delta
	r.Time = time.Unix(0, *prevNano).UTC()
	r.Cache = CacheStatus(cacheByte)
	return nil
}

// ForEach reads every record and calls fn, stopping at EOF or on fn's
// first error.
func (rd *BinaryReader) ForEach(fn func(*Record) error) error {
	var rec Record
	for {
		err := rd.Read(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
}

// decoder is a cursor over one encoded record.
type decoder struct {
	buf []byte
	err error
}

var errShortRecord = fmt.Errorf("short record")

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = errShortRecord
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	// One- and two-byte fast paths: nearly every field (dictionary
	// indices, client IDs, status codes, response sizes) fits in 14
	// bits, and this is the chunk container's per-record hot loop.
	if len(d.buf) >= 2 {
		b0 := d.buf[0]
		if b0 < 0x80 {
			d.buf = d.buf[1:]
			return uint64(b0)
		}
		if b1 := d.buf[1]; b1 < 0x80 {
			d.buf = d.buf[2:]
			return uint64(b0&0x7f) | uint64(b1)<<7
		}
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errShortRecord
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.err = errShortRecord
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.err = errShortRecord
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) dictString(table []string) string {
	i := d.byte()
	if d.err != nil {
		return ""
	}
	if i == 0 {
		return d.str()
	}
	if int(i) >= len(table) {
		d.err = fmt.Errorf("dictionary index %d out of range", i)
		return ""
	}
	return table[i]
}

// strIntern is str without the throwaway allocation: the raw bytes go
// straight through the interner, so repeated values cost one map
// lookup and zero allocations.
func (d *decoder) strIntern(in *Interner) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.err = errShortRecord
		return ""
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return in.InternBytes(b)
}

func (d *decoder) dictStringIntern(table []string, in *Interner) string {
	i := d.byte()
	if d.err != nil {
		return ""
	}
	if i == 0 {
		return d.strIntern(in)
	}
	if int(i) >= len(table) {
		d.err = fmt.Errorf("dictionary index %d out of range", i)
		return ""
	}
	return table[i]
}
