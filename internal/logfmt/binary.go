package logfmt

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// The binary format is a compact, streaming encoding for large datasets:
// a 5-byte magic header, then one length-delimited record after another.
// Timestamps are delta-encoded against the previous record (the
// generator emits nearly time-ordered streams, so deltas are tiny) and
// common methods and MIME types are replaced by one-byte dictionary
// indices. It encodes the same Record schema as TSV/JSONL at roughly a
// third of the size before compression.

// binaryMagic identifies a binary log stream (format version 1).
var binaryMagic = [5]byte{'C', 'D', 'N', 'J', '1'}

// Dictionary tables; index 0 is reserved for "literal string follows".
var (
	methodTable = []string{"", "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH"}
	mimeTable   = []string{"", "application/json", "text/html", "image/jpeg",
		"application/javascript", "text/css", "image/png", "application/octet-stream"}
)

func tableIndex(table []string, s string) byte {
	for i := 1; i < len(table); i++ {
		if table[i] == s {
			return byte(i)
		}
	}
	return 0
}

// BinaryWriter streams records in the binary format. Close flushes.
// BinaryWriter is not safe for concurrent use.
type BinaryWriter struct {
	bw       *bufio.Writer
	gz       *gzip.Writer
	buf      []byte
	prevNano int64
	n        int64
	started  bool
}

// NewBinaryWriter returns a writer emitting the binary format to w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// NewGzipBinaryWriter returns a writer that gzip-compresses the binary
// format.
func NewGzipBinaryWriter(w io.Writer) *BinaryWriter {
	gz := gzip.NewWriter(w)
	bw := NewBinaryWriter(gz)
	bw.gz = gz
	return bw
}

// Write encodes one record.
func (w *BinaryWriter) Write(r *Record) error {
	if !w.started {
		if _, err := w.bw.Write(binaryMagic[:]); err != nil {
			return err
		}
		w.started = true
	}
	buf := w.buf[:0]
	nano := r.Time.UnixNano()
	buf = binary.AppendVarint(buf, nano-w.prevNano)
	w.prevNano = nano
	buf = binary.AppendUvarint(buf, r.ClientID)
	buf = appendDictString(buf, methodTable, r.Method)
	buf = appendString(buf, r.URL)
	buf = appendString(buf, r.UserAgent)
	buf = appendDictString(buf, mimeTable, r.MIMEType)
	buf = binary.AppendUvarint(buf, uint64(r.Status))
	buf = binary.AppendUvarint(buf, uint64(r.Bytes))
	buf = append(buf, byte(r.Cache))
	w.buf = buf

	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(buf)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *BinaryWriter) Count() int64 { return w.n }

// Close flushes buffered output and finalizes any compression layer.
func (w *BinaryWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}

func appendDictString(buf []byte, table []string, s string) []byte {
	if i := tableIndex(table, s); i != 0 {
		return append(buf, i)
	}
	buf = append(buf, 0)
	return appendString(buf, s)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// BinaryReader streams records from the binary format. BinaryReader is
// not safe for concurrent use.
type BinaryReader struct {
	br       *bufio.Reader
	buf      []byte
	prevNano int64
	started  bool
}

// NewBinaryReader returns a reader decoding the binary format from r,
// transparently decompressing gzip input (detected by magic bytes).
func NewBinaryReader(r io.Reader) *BinaryReader {
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(2); err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		if gz, err := gzip.NewReader(br); err == nil {
			br = bufio.NewReaderSize(gz, 1<<16)
		}
	}
	return &BinaryReader{br: br}
}

// Read decodes the next record. It returns io.EOF at end of stream.
func (rd *BinaryReader) Read(r *Record) error {
	if !rd.started {
		var magic [5]byte
		if _, err := io.ReadFull(rd.br, magic[:]); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("logfmt: reading binary magic: %w", err)
		}
		if magic != binaryMagic {
			return fmt.Errorf("logfmt: bad binary magic %q", magic[:])
		}
		rd.started = true
	}
	size, err := binary.ReadUvarint(rd.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("logfmt: reading record length: %w", err)
	}
	if size > 1<<24 {
		return fmt.Errorf("logfmt: binary record of %d bytes exceeds limit", size)
	}
	if cap(rd.buf) < int(size) {
		rd.buf = make([]byte, size)
	}
	buf := rd.buf[:size]
	if _, err := io.ReadFull(rd.br, buf); err != nil {
		return fmt.Errorf("logfmt: reading binary record: %w", err)
	}
	return rd.decode(buf, r)
}

func (rd *BinaryReader) decode(buf []byte, r *Record) error {
	d := decoder{buf: buf}
	delta := d.varint()
	rd.prevNano += delta
	r.Time = time.Unix(0, rd.prevNano).UTC()
	r.ClientID = d.uvarint()
	r.Method = d.dictString(methodTable)
	r.URL = d.str()
	r.UserAgent = d.str()
	r.MIMEType = d.dictString(mimeTable)
	r.Status = int(d.uvarint())
	r.Bytes = int64(d.uvarint())
	cacheByte := d.byte()
	if d.err != nil {
		return fmt.Errorf("logfmt: corrupt binary record: %w", d.err)
	}
	if cacheByte > byte(CacheMiss) {
		return fmt.Errorf("logfmt: corrupt binary record: cache status %d", cacheByte)
	}
	r.Cache = CacheStatus(cacheByte)
	return nil
}

// ForEach reads every record and calls fn, stopping at EOF or on fn's
// first error.
func (rd *BinaryReader) ForEach(fn func(*Record) error) error {
	var rec Record
	for {
		err := rd.Read(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
}

// decoder is a cursor over one encoded record.
type decoder struct {
	buf []byte
	err error
}

var errShortRecord = fmt.Errorf("short record")

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = errShortRecord
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errShortRecord
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.err = errShortRecord
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.err = errShortRecord
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) dictString(table []string) string {
	i := d.byte()
	if d.err != nil {
		return ""
	}
	if i == 0 {
		return d.str()
	}
	if int(i) >= len(table) {
		d.err = fmt.Errorf("dictionary index %d out of range", i)
		return ""
	}
	return table[i]
}
