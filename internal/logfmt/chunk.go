package logfmt

import (
	"bufio"
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"time"
)

// The chunk container is the large-scale on-disk format: instead of one
// length-delimited record after another (the binary stream), records
// are grouped into self-contained chunks that are individually
// compressed and checksummed. Each chunk resets the timestamp delta
// chain and carries its own record count, uncompressed size, and
// CRC32C, so chunks decode independently — which is what lets ingest
// decompress and decode many chunks in parallel — and corruption is
// contained and skipped at chunk granularity.
//
// Layout (all fixed-width integers little-endian):
//
//	file header:  "CDNC1" | codec byte
//	chunk frame:  marker[4] | records u32 | rawLen u32 | payloadLen u32
//	              | payloadCRC u32 | headerCRC u32 | payload[payloadLen]
//
// payloadCRC is the CRC32C of the *uncompressed* payload (so a verified
// decode proves the records, not just the stored bytes); headerCRC is
// the CRC32C of the 20 header bytes before it (so framing survives
// payload corruption and a resync scan can validate a candidate marker
// without decompressing anything).
//
// The uncompressed payload is dictionary-encoded:
//
//	payload:      urlDict | uaDict | records × body
//	dict:         count uvarint | count × (len uvarint | bytes)
//	body:         deltaNano varint | clientID uvarint | method dictByte
//	              | urlIdx uvarint | uaIdx uvarint | mime dictByte
//	              | status uvarint | bytes uvarint | cache byte
//
// Each chunk stores its distinct URL and user-agent strings once, in
// first-use order, and record bodies reference them by index — CDN logs
// repeat a small set of URLs and user agents many times, so this both
// shrinks the payload and lets the decoder intern each distinct string
// once per chunk instead of hashing per record. Methods and MIME types
// use the binary stream's fixed dictionary byte (0 = literal string
// follows inline). The delta-timestamp base resets to zero per chunk,
// so chunks decode independently.

// chunkFileMagic identifies a chunk container (format version 1). It is
// distinct from binaryMagic ("CDNJ1"), so readers sniff the two apart.
var chunkFileMagic = [5]byte{'C', 'D', 'N', 'C', '1'}

// chunkMarker precedes every chunk header. 0xF5 is not valid UTF-8, so
// the marker cannot appear inside the text formats by accident.
var chunkMarker = [4]byte{0xF5, 'C', 'H', 'K'}

const (
	// chunkHeaderLen is the fixed frame header size: marker + 5 u32.
	chunkHeaderLen = 24
	// maxChunkRecords bounds one chunk's claimed record count; larger
	// counts are rejected as corrupt.
	maxChunkRecords = 1 << 22
	// maxChunkPayload bounds one chunk's raw and stored payload sizes.
	maxChunkPayload = 1 << 26
)

// castagnoli is the CRC32C polynomial table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Codec selects the per-chunk compression of the chunk container.
type Codec uint8

const (
	// CodecRaw stores chunks uncompressed.
	CodecRaw Codec = iota
	// CodecFlate compresses each chunk with DEFLATE (the default:
	// cheapest stdlib codec without per-chunk header overhead).
	CodecFlate
	// CodecGzip compresses each chunk with gzip (DEFLATE plus a
	// per-chunk gzip envelope; interoperable with external tooling).
	CodecGzip

	codecCount
)

var codecNames = [...]string{"raw", "flate", "gzip"}

// String returns the wire name of the codec.
func (c Codec) String() string {
	if int(c) < len(codecNames) {
		return codecNames[c]
	}
	return fmt.Sprintf("Codec(%d)", uint8(c))
}

// ParseCodec parses the wire name of a chunk codec.
func ParseCodec(s string) (Codec, error) {
	for i, n := range codecNames {
		if s == n {
			return Codec(i), nil
		}
	}
	return 0, fmt.Errorf("logfmt: unknown chunk codec %q (want raw, flate, or gzip)", s)
}

// ChunkConfig sizes a ChunkWriter.
type ChunkConfig struct {
	// Codec is the per-chunk compression (default CodecFlate).
	Codec Codec
	// ChunkRecords is the record count that flushes a chunk (default
	// 4096). 1 degenerates to one record per chunk, which round-trips
	// but wastes header and codec overhead.
	ChunkRecords int
	// MaxChunkBytes flushes a chunk early once its uncompressed payload
	// reaches this size (default 1 MiB), bounding decoder memory even
	// for pathological record sizes.
	MaxChunkBytes int
}

func (c *ChunkConfig) sanitize() {
	if c.ChunkRecords <= 0 {
		c.ChunkRecords = 4096
	}
	if c.ChunkRecords > maxChunkRecords {
		c.ChunkRecords = maxChunkRecords
	}
	if c.MaxChunkBytes <= 0 {
		c.MaxChunkBytes = 1 << 20
	}
	if c.MaxChunkBytes > maxChunkPayload {
		c.MaxChunkBytes = maxChunkPayload
	}
}

// ChunkWriter streams records into the chunk container. Close flushes
// the partial final chunk. ChunkWriter is not safe for concurrent use.
type ChunkWriter struct {
	bw      *bufio.Writer
	cfg     ChunkConfig
	payload []byte // encoded record bodies of the open chunk
	dict    []byte // encoded dictionary sections, built at flush
	recs    int
	n       int64
	prev    int64 // delta base; reset to 0 at each chunk boundary
	urls    dictBuilder
	uas     dictBuilder
	fw      *flate.Writer
	gw      *gzip.Writer
	cbuf    bytes.Buffer
	started bool
}

// dictBuilder assigns dense first-use indices to a chunk's distinct
// strings.
type dictBuilder struct {
	idx  map[string]uint64
	list []string
}

func (d *dictBuilder) ref(s string) uint64 {
	if i, ok := d.idx[s]; ok {
		return i
	}
	i := uint64(len(d.list))
	d.idx[s] = i
	d.list = append(d.list, s)
	return i
}

func (d *dictBuilder) reset() {
	clear(d.idx)
	d.list = d.list[:0]
}

// NewChunkWriter returns a writer emitting the chunk container to w.
func NewChunkWriter(w io.Writer, cfg ChunkConfig) *ChunkWriter {
	cfg.sanitize()
	return &ChunkWriter{
		bw:   bufio.NewWriterSize(w, 1<<16),
		cfg:  cfg,
		urls: dictBuilder{idx: make(map[string]uint64)},
		uas:  dictBuilder{idx: make(map[string]uint64)},
	}
}

// Write encodes one record into the open chunk, flushing the chunk when
// it reaches the configured record count or byte size.
func (w *ChunkWriter) Write(r *Record) error {
	if !w.started {
		if err := w.writeFileHeader(); err != nil {
			return err
		}
	}
	buf := w.payload
	nano := r.Time.UnixNano()
	buf = binary.AppendVarint(buf, nano-w.prev)
	w.prev = nano
	buf = binary.AppendUvarint(buf, r.ClientID)
	buf = appendDictString(buf, methodTable, r.Method)
	buf = binary.AppendUvarint(buf, w.urls.ref(r.URL))
	buf = binary.AppendUvarint(buf, w.uas.ref(r.UserAgent))
	buf = appendDictString(buf, mimeTable, r.MIMEType)
	buf = binary.AppendUvarint(buf, uint64(r.Status))
	buf = binary.AppendUvarint(buf, uint64(r.Bytes))
	buf = append(buf, byte(r.Cache))
	w.payload = buf
	w.recs++
	w.n++
	if w.recs >= w.cfg.ChunkRecords || len(w.payload) >= w.cfg.MaxChunkBytes {
		return w.flushChunk()
	}
	return nil
}

func (w *ChunkWriter) writeFileHeader() error {
	if _, err := w.bw.Write(chunkFileMagic[:]); err != nil {
		return err
	}
	if err := w.bw.WriteByte(byte(w.cfg.Codec)); err != nil {
		return err
	}
	w.started = true
	return nil
}

// flushChunk builds the dictionary sections, compresses, and frames the
// open chunk.
func (w *ChunkWriter) flushChunk() error {
	if w.recs == 0 {
		return nil
	}
	w.dict = appendStringDict(w.dict[:0], w.urls.list)
	w.dict = appendStringDict(w.dict, w.uas.list)
	rawLen := len(w.dict) + len(w.payload)
	crc := crc32.Update(crc32.Checksum(w.dict, castagnoli), castagnoli, w.payload)
	stored, err := w.compress(w.dict, w.payload)
	if err != nil {
		return err
	}
	storedLen := rawLen
	if stored != nil {
		storedLen = len(stored)
	}
	var hdr [chunkHeaderLen]byte
	copy(hdr[:4], chunkMarker[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(w.recs))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(rawLen))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(storedLen))
	binary.LittleEndian.PutUint32(hdr[16:], crc)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if stored != nil {
		_, err = w.bw.Write(stored)
	} else if _, err = w.bw.Write(w.dict); err == nil {
		_, err = w.bw.Write(w.payload)
	}
	if err != nil {
		return err
	}
	w.payload = w.payload[:0]
	w.recs = 0
	w.prev = 0
	w.urls.reset()
	w.uas.reset()
	return nil
}

// compress encodes the dict and records sections through the configured
// codec, reusing the compressor and scratch buffer across chunks. For
// CodecRaw it returns nil: the caller writes the sections directly.
func (w *ChunkWriter) compress(dict, records []byte) ([]byte, error) {
	var cw io.Writer
	var finish func() error
	switch w.cfg.Codec {
	case CodecRaw:
		return nil, nil
	case CodecFlate:
		w.cbuf.Reset()
		if w.fw == nil {
			fw, err := flate.NewWriter(&w.cbuf, flate.DefaultCompression)
			if err != nil {
				return nil, err
			}
			w.fw = fw
		} else {
			w.fw.Reset(&w.cbuf)
		}
		cw, finish = w.fw, w.fw.Close
	case CodecGzip:
		w.cbuf.Reset()
		if w.gw == nil {
			w.gw = gzip.NewWriter(&w.cbuf)
		} else {
			w.gw.Reset(&w.cbuf)
		}
		cw, finish = w.gw, w.gw.Close
	default:
		return nil, fmt.Errorf("logfmt: unknown chunk codec %d", w.cfg.Codec)
	}
	if _, err := cw.Write(dict); err != nil {
		return nil, err
	}
	if _, err := cw.Write(records); err != nil {
		return nil, err
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return w.cbuf.Bytes(), nil
}

// appendStringDict appends one dictionary section: a count, then each
// string length-prefixed, in index order.
func appendStringDict(buf []byte, list []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(list)))
	for _, s := range list {
		buf = appendString(buf, s)
	}
	return buf
}

// Count returns the number of records written.
func (w *ChunkWriter) Count() int64 { return w.n }

// Close flushes the partial final chunk and buffered output. An empty
// stream still gets the file header, so the file self-identifies.
func (w *ChunkWriter) Close() error {
	if !w.started {
		if err := w.writeFileHeader(); err != nil {
			return err
		}
	}
	if err := w.flushChunk(); err != nil {
		return err
	}
	return w.bw.Flush()
}

// RawChunk is one scanned chunk frame, before decompression. Payload
// aliases the scanner's reuse buffer and is only valid until the next
// Next call; parallel consumers must copy it.
type RawChunk struct {
	// Records is the header's claimed record count.
	Records uint32
	// RawLen is the uncompressed payload size.
	RawLen uint32
	// CRC is the CRC32C of the uncompressed payload.
	CRC uint32
	// Payload is the stored (possibly compressed) payload.
	Payload []byte
	// Offset is the byte offset of the frame start in the stream.
	Offset int64
	// Index is the stream-cumulative record index of the chunk's first
	// record, counting every prior chunk's claimed records.
	Index int64
}

// FrameLen returns the on-disk frame length (header + stored payload).
func (rc *RawChunk) FrameLen() int64 { return chunkHeaderLen + int64(len(rc.Payload)) }

// ChunkScanner walks the chunk frames of a container without
// decompressing them: it validates the file header, each frame's
// marker, header CRC, and size caps, and hands out raw payloads. The
// parallel ingest path uses it as the cheap sequential stage in front
// of concurrent per-chunk decoders. Not safe for concurrent use.
type ChunkScanner struct {
	br      *bufio.Reader
	codec   Codec
	offset  int64
	index   int64
	payload []byte
	started bool
}

// NewChunkScanner returns a scanner over the chunk container in r.
func NewChunkScanner(r io.Reader) *ChunkScanner {
	return &ChunkScanner{br: bufio.NewReaderSize(r, 1<<16)}
}

// Codec returns the container's codec byte; valid after the first Next.
func (s *ChunkScanner) Codec() Codec { return s.codec }

// Offset returns the number of stream bytes consumed so far.
func (s *ChunkScanner) Offset() int64 { return s.offset }

// Next scans the next chunk frame into rc. It returns io.EOF at a clean
// end of stream (after the last complete frame). Corruption — a bad
// file header, marker, header CRC, implausible size, or truncated
// payload — is reported as a *DecodeError positioned at the frame
// start; after one, the stream position is undefined and callers that
// want to continue must Resync first.
func (s *ChunkScanner) Next(rc *RawChunk) error {
	if !s.started {
		if err := s.readFileHeader(); err != nil {
			return err
		}
	}
	frameStart := s.offset
	var hdr [chunkHeaderLen]byte
	n, err := io.ReadFull(s.br, hdr[:])
	s.offset += int64(n)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return s.corrupt(frameStart, int64(n), fmt.Errorf("truncated chunk header (%d of %d bytes)", n, chunkHeaderLen))
		}
		return fmt.Errorf("logfmt: reading chunk header: %w", err)
	}
	records, rawLen, payloadLen, crc, herr := parseChunkHeader(hdr[:])
	if herr != nil {
		return s.corrupt(frameStart, chunkHeaderLen, herr)
	}
	if cap(s.payload) < int(payloadLen) {
		s.payload = make([]byte, payloadLen)
	}
	payload := s.payload[:payloadLen]
	n, err = io.ReadFull(s.br, payload)
	s.offset += int64(n)
	if err != nil {
		return s.corrupt(frameStart, chunkHeaderLen+int64(n), fmt.Errorf("truncated chunk payload (%d of %d bytes): %w", n, payloadLen, err))
	}
	rc.Records = records
	rc.RawLen = rawLen
	rc.CRC = crc
	rc.Payload = payload
	rc.Offset = frameStart
	rc.Index = s.index
	s.index += int64(records)
	return nil
}

func (s *ChunkScanner) readFileHeader() error {
	var hdr [6]byte
	n, err := io.ReadFull(s.br, hdr[:])
	s.offset += int64(n)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		s.started = true
		return s.corrupt(0, int64(n), fmt.Errorf("truncated chunk file header: %w", err))
	}
	s.started = true
	if [5]byte(hdr[:5]) != chunkFileMagic {
		return s.corrupt(0, int64(n), fmt.Errorf("bad chunk magic %q", hdr[:5]))
	}
	if hdr[5] >= byte(codecCount) {
		return s.corrupt(0, int64(n), fmt.Errorf("unknown chunk codec %d", hdr[5]))
	}
	s.codec = Codec(hdr[5])
	return nil
}

func (s *ChunkScanner) corrupt(offset, span int64, err error) error {
	return &DecodeError{Format: "chunk", Offset: offset, Record: s.index, Span: span, Err: err}
}

// parseChunkHeader validates one fixed-width frame header.
func parseChunkHeader(hdr []byte) (records, rawLen, payloadLen, crc uint32, err error) {
	if [4]byte(hdr[:4]) != chunkMarker {
		return 0, 0, 0, 0, fmt.Errorf("bad chunk marker % x", hdr[:4])
	}
	if got, want := crc32.Checksum(hdr[:20], castagnoli), binary.LittleEndian.Uint32(hdr[20:]); got != want {
		return 0, 0, 0, 0, fmt.Errorf("chunk header CRC mismatch (%08x != %08x)", got, want)
	}
	records = binary.LittleEndian.Uint32(hdr[4:])
	rawLen = binary.LittleEndian.Uint32(hdr[8:])
	payloadLen = binary.LittleEndian.Uint32(hdr[12:])
	crc = binary.LittleEndian.Uint32(hdr[16:])
	switch {
	case records == 0 || records > maxChunkRecords:
		err = fmt.Errorf("implausible chunk record count %d", records)
	case rawLen == 0 || rawLen > maxChunkPayload:
		err = fmt.Errorf("implausible chunk raw size %d", rawLen)
	case payloadLen == 0 || payloadLen > maxChunkPayload:
		err = fmt.Errorf("implausible chunk payload size %d", payloadLen)
	}
	return records, rawLen, payloadLen, crc, err
}

// Resync scans forward after a DecodeError for the next chunk marker
// whose fixed-width header also passes the header CRC — a 1-in-2^32
// false-positive rate even against adversarial garbage — and stops with
// the stream positioned at that marker. It returns the number of bytes
// skipped. io.EOF means the stream ended first; the scan gives up with
// an error after maxScan bytes (maxScan <= 0 means 1 MiB).
func (s *ChunkScanner) Resync(maxScan int64) (int64, error) {
	if maxScan <= 0 {
		maxScan = 1 << 20
	}
	var skipped int64
	for skipped < maxScan {
		window, perr := s.br.Peek(s.br.Size())
		if len(window) == 0 {
			return skipped, io.EOF
		}
		for i := 0; i+chunkHeaderLen <= len(window); i++ {
			if skipped+int64(i) >= maxScan {
				break
			}
			if window[i] != chunkMarker[0] {
				continue
			}
			if _, _, _, _, err := parseChunkHeader(window[i : i+chunkHeaderLen]); err == nil {
				s.discard(i)
				return skipped + int64(i), nil
			}
		}
		// Keep a header's worth of tail so a marker straddling the window
		// boundary is seen whole on the next pass.
		n := len(window) - chunkHeaderLen + 1
		if n < 1 {
			n = len(window)
		}
		if int64(n) > maxScan-skipped {
			n = int(maxScan - skipped)
		}
		s.discard(n)
		skipped += int64(n)
		if perr != nil && len(window) < chunkHeaderLen {
			return skipped, io.EOF
		}
	}
	return skipped, fmt.Errorf("logfmt: chunk resync: no chunk boundary within %d bytes", maxScan)
}

func (s *ChunkScanner) discard(n int) {
	d, _ := s.br.Discard(n)
	s.offset += int64(d)
}

// ChunkDecoder turns raw chunks into records: it decompresses through
// the container codec, verifies the payload CRC32C, and decodes the
// record bodies. All scratch state — the decompression buffer, the
// codec's inflater, and the string interner — is owned by the decoder
// and reused across chunks, so a long-lived decoder (one per ingest
// worker) decodes with near-zero allocations per record. Not safe for
// concurrent use; give each goroutine its own.
type ChunkDecoder struct {
	codec  Codec
	intern *Interner
	raw    []byte
	urls   []string // decoded per-chunk dictionaries, reused
	uas    []string
	src    bytes.Reader
	fr     io.ReadCloser
	gr     *gzip.Reader
}

// NewChunkDecoder returns a decoder for the given codec. A nil interner
// allocates a fresh one, shared across every chunk this decoder sees.
func NewChunkDecoder(codec Codec, intern *Interner) *ChunkDecoder {
	if intern == nil {
		intern = NewInterner(0)
	}
	return &ChunkDecoder{codec: codec, intern: intern}
}

// Decode appends rc's records to dst and returns the extended slice
// (arena-style: pass dst[:0] of a reused batch to decode with no
// per-record allocation). The returned records' string fields are
// interned and safe to retain; the slice itself is the caller's.
func (d *ChunkDecoder) Decode(rc *RawChunk, dst []Record) ([]Record, error) {
	raw, err := d.decompress(rc)
	if err != nil {
		return dst, err
	}
	if got := crc32.Checksum(raw, castagnoli); got != rc.CRC {
		return dst, fmt.Errorf("chunk payload CRC mismatch (%08x != %08x)", got, rc.CRC)
	}
	c := decoder{buf: raw}
	if d.urls, err = parseStringDict(&c, d.urls[:0], d.intern); err != nil {
		return dst, fmt.Errorf("chunk url dictionary: %w", err)
	}
	if d.uas, err = parseStringDict(&c, d.uas[:0], d.intern); err != nil {
		return dst, fmt.Errorf("chunk user-agent dictionary: %w", err)
	}
	// Pre-size the batch from the header's record count, bounded by the
	// smallest possible body (9 one-byte fields) so a forged count
	// cannot force a huge allocation.
	if need := int(rc.Records); cap(dst)-len(dst) < need {
		if max := len(c.buf)/9 + 1; need > max {
			need = max
		}
		grown := make([]Record, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	var prev int64
	for n := uint32(0); n < rc.Records; n++ {
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1]
		} else {
			dst = append(dst, Record{})
		}
		if err := d.decodeBody(&c, &dst[len(dst)-1], &prev); err != nil {
			return dst[:len(dst)-1], fmt.Errorf("chunk record %d: %w", n, err)
		}
	}
	if len(c.buf) != 0 {
		return dst, fmt.Errorf("chunk has %d trailing bytes past %d records", len(c.buf), rc.Records)
	}
	return dst, nil
}

// decodeBody decodes one dictionary-encoded record body from c's
// cursor. This is the per-record hot path: pure varint parsing and two
// slice indexes — no hashing, no copies, no allocation.
func (d *ChunkDecoder) decodeBody(c *decoder, r *Record, prevNano *int64) error {
	delta := c.varint()
	r.ClientID = c.uvarint()
	r.Method = c.dictStringIntern(methodTable, d.intern)
	urlIdx := c.uvarint()
	uaIdx := c.uvarint()
	r.MIMEType = c.dictStringIntern(mimeTable, d.intern)
	r.Status = int(c.uvarint())
	r.Bytes = int64(c.uvarint())
	cacheByte := c.byte()
	if c.err != nil {
		return c.err
	}
	if urlIdx >= uint64(len(d.urls)) || uaIdx >= uint64(len(d.uas)) {
		return fmt.Errorf("dictionary index out of range (url %d of %d, ua %d of %d)",
			urlIdx, len(d.urls), uaIdx, len(d.uas))
	}
	if cacheByte > byte(CacheMiss) {
		return fmt.Errorf("cache status %d", cacheByte)
	}
	r.URL = d.urls[urlIdx]
	r.UserAgent = d.uas[uaIdx]
	*prevNano += delta
	r.Time = time.Unix(0, *prevNano).UTC()
	r.Cache = CacheStatus(cacheByte)
	return nil
}

// parseStringDict parses one dictionary section, interning each
// distinct string once per chunk. The count is validated against the
// remaining payload (every entry costs at least one byte), so a forged
// header cannot force a huge allocation.
func parseStringDict(c *decoder, dst []string, in *Interner) ([]string, error) {
	n := c.uvarint()
	if c.err != nil {
		return dst, c.err
	}
	if n > uint64(len(c.buf)) {
		return dst, fmt.Errorf("implausible dictionary size %d", n)
	}
	for i := uint64(0); i < n; i++ {
		s := c.strIntern(in)
		if c.err != nil {
			return dst, c.err
		}
		dst = append(dst, s)
	}
	return dst, nil
}

// decompress inflates rc.Payload into the reused raw buffer.
func (d *ChunkDecoder) decompress(rc *RawChunk) ([]byte, error) {
	if rc.RawLen > maxChunkPayload {
		return nil, fmt.Errorf("implausible chunk raw size %d", rc.RawLen)
	}
	if d.codec == CodecRaw {
		if int(rc.RawLen) != len(rc.Payload) {
			return nil, fmt.Errorf("raw chunk size mismatch (%d stored, %d claimed)", len(rc.Payload), rc.RawLen)
		}
		return rc.Payload, nil
	}
	if cap(d.raw) < int(rc.RawLen) {
		d.raw = make([]byte, rc.RawLen)
	}
	raw := d.raw[:rc.RawLen]
	d.src.Reset(rc.Payload)
	var r io.Reader
	switch d.codec {
	case CodecFlate:
		if d.fr == nil {
			d.fr = flate.NewReader(&d.src)
		} else if err := d.fr.(flate.Resetter).Reset(&d.src, nil); err != nil {
			return nil, err
		}
		r = d.fr
	case CodecGzip:
		if d.gr == nil {
			gr, err := gzip.NewReader(&d.src)
			if err != nil {
				return nil, fmt.Errorf("bad gzip chunk: %w", err)
			}
			d.gr = gr
		} else if err := d.gr.Reset(&d.src); err != nil {
			return nil, fmt.Errorf("bad gzip chunk: %w", err)
		}
		r = d.gr
	default:
		return nil, fmt.Errorf("unknown chunk codec %d", d.codec)
	}
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("inflating chunk: %w", err)
	}
	// The inflater must be exactly exhausted; trailing compressed data
	// means the header lied about the raw size.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("chunk inflates past claimed raw size %d", rc.RawLen)
	}
	return raw, nil
}

// ChunkReader streams records sequentially from a chunk container,
// verifying each chunk's checksums. It implements RecordReader, so it
// drops in anywhere the binary or text readers do, and Resync, so
// ingest.TolerantReader can skip corrupt regions at chunk granularity.
// Not safe for concurrent use.
type ChunkReader struct {
	sc      *ChunkScanner
	dec     *ChunkDecoder
	rc      RawChunk
	batch   []Record
	pos     int
	lastBad int64
}

// NewChunkReader returns a reader decoding the chunk container from r.
func NewChunkReader(r io.Reader) *ChunkReader {
	return &ChunkReader{sc: NewChunkScanner(r)}
}

// Read decodes the next record. It returns io.EOF at end of stream.
// Corruption is reported as a *DecodeError spanning the bad chunk; a
// chunk that fails its checksum loses all its records (chunk-granularity
// quarantine), and the stream resumes at the next chunk.
func (rd *ChunkReader) Read(r *Record) error {
	for rd.pos >= len(rd.batch) {
		if err := rd.fill(); err != nil {
			return err
		}
	}
	*r = rd.batch[rd.pos]
	rd.pos++
	return nil
}

// fill scans and decodes the next chunk into the reused batch.
func (rd *ChunkReader) fill() error {
	if err := rd.sc.Next(&rd.rc); err != nil {
		if err != io.EOF {
			rd.lastBad = 0 // framing lost; records in the span unknown
		}
		return err
	}
	if rd.dec == nil {
		rd.dec = NewChunkDecoder(rd.sc.Codec(), nil)
	}
	batch, err := rd.dec.Decode(&rd.rc, rd.batch[:0])
	rd.batch = batch
	if err != nil {
		// The frame itself parsed, so the stream is still positioned at
		// the next chunk boundary: the whole chunk quarantines and a
		// Resync from here is a no-op.
		rd.batch = rd.batch[:0]
		rd.lastBad = int64(rd.rc.Records)
		return &DecodeError{Format: "chunk", Offset: rd.rc.Offset, Record: rd.rc.Index,
			Span: rd.rc.FrameLen(), Err: err}
	}
	rd.pos = 0
	return nil
}

// Resync scans forward to the next valid chunk boundary after a
// DecodeError; see ChunkScanner.Resync. When the bad chunk's frame was
// intact (a checksum failure inside it), the scanner is already at the
// next boundary and Resync returns 0.
func (rd *ChunkReader) Resync(maxScan int64) (int64, error) { return rd.sc.Resync(maxScan) }

// LastBadRecords returns the header-claimed record count of the most
// recent corrupt chunk (0 when the frame header itself was unreadable),
// which is how many records a chunk-granularity quarantine dropped.
func (rd *ChunkReader) LastBadRecords() int64 { return rd.lastBad }

// Offset returns the number of stream bytes consumed so far.
func (rd *ChunkReader) Offset() int64 { return rd.sc.Offset() }

// ForEach reads every record and calls fn, stopping at EOF or on fn's
// first error. fn receives a pointer into the reader's reused batch —
// no per-record copy — so implementations that retain the record must
// copy it, per the RecordReader contract.
func (rd *ChunkReader) ForEach(fn func(*Record) error) error {
	for {
		for rd.pos < len(rd.batch) {
			if err := fn(&rd.batch[rd.pos]); err != nil {
				return err
			}
			rd.pos++
		}
		err := rd.fill()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// IsChunkMagic reports whether b begins with the chunk container magic.
func IsChunkMagic(b []byte) bool {
	return len(b) >= len(chunkFileMagic) && [5]byte(b[:5]) == chunkFileMagic
}

// IsBinaryMagic reports whether b begins with the binary stream magic.
func IsBinaryMagic(b []byte) bool {
	return len(b) >= len(binaryMagic) && [5]byte(b[:5]) == binaryMagic
}

// IsChunkPath reports whether path names a chunk-container (.cdnc) log.
func IsChunkPath(path string) bool {
	return strings.HasSuffix(path, ".cdnc")
}
