package logfmt

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTSV checks that arbitrary input never panics the TSV parser
// and that accepted lines re-encode to an equivalent record.
func FuzzParseTSV(f *testing.F) {
	r := sampleRecord()
	f.Add(strings.TrimSuffix(string(AppendTSV(nil, &r)), "\n"))
	f.Add("")
	f.Add("a\tb\tc")
	f.Add("2019-05-01T12:00:00Z\tdead\tGET\thttp://x/\thit\t200\t5\tapplication/json\tua")
	f.Fuzz(func(t *testing.T, line string) {
		var rec Record
		if err := ParseTSV(line, &rec); err != nil {
			return // rejected input is fine
		}
		// Accepted input must round-trip stably.
		re := strings.TrimSuffix(string(AppendTSV(nil, &rec)), "\n")
		var rec2 Record
		if err := ParseTSV(re, &rec2); err != nil {
			t.Fatalf("re-encoded line rejected: %v\nline: %q", err, re)
		}
		if rec2 != rec {
			t.Fatalf("round trip diverged:\n%+v\n%+v", rec, rec2)
		}
	})
}

// FuzzBinaryReader checks the binary decoder never panics on corrupt
// streams.
func FuzzBinaryReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	r := sampleRecord()
	w.Write(&r)
	w.Write(&r)
	w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("CDNJ1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewBinaryReader(bytes.NewReader(data))
		var rec Record
		for i := 0; i < 100; i++ {
			if err := rd.Read(&rec); err != nil {
				return
			}
		}
	})
}

// FuzzChunkReader checks the chunk-container decoder never panics on
// corrupt containers, and that the tolerant read-resync loop always
// terminates.
func FuzzChunkReader(f *testing.F) {
	r := sampleRecord()
	for _, codec := range []Codec{CodecRaw, CodecFlate, CodecGzip} {
		var buf bytes.Buffer
		w := NewChunkWriter(&buf, ChunkConfig{Codec: codec, ChunkRecords: 2})
		for i := 0; i < 5; i++ {
			w.Write(&r)
		}
		w.Close()
		f.Add(buf.Bytes())
	}
	f.Add([]byte("CDNC1"))
	f.Add([]byte("CDNC1\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewChunkReader(bytes.NewReader(data))
		var rec Record
		for i := 0; i < 1000; i++ {
			err := rd.Read(&rec)
			if err == nil {
				continue
			}
			if AsDecodeError(err) == nil {
				return // EOF or I/O error ends the stream
			}
			if _, rerr := rd.Resync(1 << 16); rerr != nil {
				return
			}
		}
	})
}

// FuzzUnmarshalJSONLine checks the JSONL decoder never panics.
func FuzzUnmarshalJSONLine(f *testing.F) {
	r := sampleRecord()
	line, _ := MarshalJSONLine(&r)
	f.Add(string(line))
	f.Add("{}")
	f.Add("{bad")
	f.Fuzz(func(t *testing.T, data string) {
		var rec Record
		_ = UnmarshalJSONLine([]byte(data), &rec)
	})
}
