package logfmt

import (
	"strings"
	"testing"
	"time"
)

func TestDatasetSummary(t *testing.T) {
	d := NewDatasetSummary("Short-term")
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		r := sampleRecord()
		r.Time = base.Add(time.Duration(i) * time.Minute)
		r.ClientID = uint64(i % 3)
		if i%2 == 0 {
			r.URL = "https://other.example.com/x"
			r.MIMEType = "text/html"
		}
		d.Observe(&r)
	}
	if d.Records() != 10 {
		t.Errorf("Records = %d", d.Records())
	}
	if d.JSONRecords() != 5 {
		t.Errorf("JSONRecords = %d", d.JSONRecords())
	}
	if d.Duration() != 9*time.Minute {
		t.Errorf("Duration = %v", d.Duration())
	}
	if d.Domains() != 2 {
		t.Errorf("Domains = %d", d.Domains())
	}
	if d.Clients() != 3 {
		t.Errorf("Clients = %d", d.Clients())
	}
	if s := d.String(); !strings.Contains(s, "Short-term") {
		t.Errorf("String = %q", s)
	}
}

func TestDatasetSummaryEmpty(t *testing.T) {
	d := NewDatasetSummary("empty")
	if d.Duration() != 0 || d.Records() != 0 || d.Domains() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int64]string{
		25_000_000: "25 million",
		10_000_000: "10 million",
		5_000:      "~5K",
		4_900:      "~4.9K",
		170:        "170",
		1_500_000:  "1.5 million",
	}
	for n, want := range cases {
		if got := humanCount(n); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestHumanDuration(t *testing.T) {
	cases := map[time.Duration]string{
		24 * time.Hour:   "24 hrs",
		10 * time.Minute: "10 mins",
		30 * time.Second: "30s",
		90 * time.Minute: "1.5 hrs",
	}
	for d, want := range cases {
		if got := humanDuration(d); got != want {
			t.Errorf("humanDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFilters(t *testing.T) {
	r := sampleRecord()
	if !JSONOnly(&r) {
		t.Error("JSONOnly rejected JSON record")
	}
	if !MethodIs("GET")(&r) || MethodIs("POST")(&r) {
		t.Error("MethodIs wrong")
	}
	if !HostIs("api.news-example.com")(&r) || HostIs("nope.com")(&r) {
		t.Error("HostIs wrong")
	}
	win := TimeWindow(r.Time.Add(-time.Hour), r.Time.Add(time.Hour))
	if !win(&r) {
		t.Error("TimeWindow rejected in-range record")
	}
	if TimeWindow(r.Time.Add(time.Hour), r.Time.Add(2*time.Hour))(&r) {
		t.Error("TimeWindow accepted out-of-range record")
	}
	// Window is half-open: [from, to).
	if TimeWindow(r.Time.Add(-time.Hour), r.Time)(&r) {
		t.Error("TimeWindow should exclude 'to'")
	}
	if !TimeWindow(r.Time, r.Time.Add(time.Second))(&r) {
		t.Error("TimeWindow should include 'from'")
	}
}

func TestFilterCombinators(t *testing.T) {
	r := sampleRecord()
	yes := Filter(func(*Record) bool { return true })
	no := Filter(func(*Record) bool { return false })
	if !And(yes, yes)(&r) || And(yes, no)(&r) {
		t.Error("And wrong")
	}
	if !Or(no, yes)(&r) || Or(no, no)(&r) {
		t.Error("Or wrong")
	}
	if Not(yes)(&r) || !Not(no)(&r) {
		t.Error("Not wrong")
	}
	if !And()(&r) {
		t.Error("empty And should pass")
	}
	if Or()(&r) {
		t.Error("empty Or should fail")
	}
}
