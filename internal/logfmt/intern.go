package logfmt

// Interner deduplicates decoded strings. CDN logs repeat the same URLs,
// user agents, methods, and MIME types millions of times; without
// interning, every decoded record retains its own copy (and, for the
// TSV path, pins the whole source line its substrings point into). An
// Interner returns one canonical copy per distinct value, so a
// materialized dataset holds each hot string once.
//
// The table is capped: once max distinct strings have been seen, new
// values pass through uninterned (they still decode correctly, they
// just are not shared). This bounds memory on adversarial input — a
// stream of unique tokenized URLs must not grow the table forever.
//
// Interner is not safe for concurrent use; give each decode goroutine
// its own (the ingest pipeline's workers each own a reader).
type Interner struct {
	m   map[string]string
	max int
}

// DefaultInternerCap is the default distinct-string cap, sized for the
// URL + user-agent population of a large capture while bounding the
// table to tens of MB worst case.
const DefaultInternerCap = 1 << 17

// NewInterner returns an interner holding at most max distinct strings
// (max <= 0 uses DefaultInternerCap).
func NewInterner(max int) *Interner {
	if max <= 0 {
		max = DefaultInternerCap
	}
	return &Interner{m: make(map[string]string, 1024), max: max}
}

// Intern returns the canonical copy of s, remembering it if the table
// has room. The returned string is always equal to s.
func (in *Interner) Intern(s string) string {
	if in == nil || s == "" {
		return s
	}
	if c, ok := in.m[s]; ok {
		return c
	}
	if len(in.m) >= in.max {
		return s
	}
	// strings.Clone the value so interning a substring does not pin its
	// (possibly much larger) backing array.
	c := cloneString(s)
	in.m[c] = c
	return c
}

// InternBytes returns the canonical string equal to b, remembering it
// if the table has room. On a hit no allocation happens (the map lookup
// keys on the byte slice directly), which is what makes the chunk
// decode path low-alloc: every repeated URL and user agent decodes to
// the shared copy without ever materializing a throwaway string.
func (in *Interner) InternBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if in == nil {
		return string(b)
	}
	if c, ok := in.m[string(b)]; ok { // no alloc: compiler-optimized lookup
		return c
	}
	if len(in.m) >= in.max {
		return string(b)
	}
	c := string(b)
	in.m[c] = c
	return c
}

// Len returns the number of distinct strings held.
func (in *Interner) Len() int {
	if in == nil {
		return 0
	}
	return len(in.m)
}

func cloneString(s string) string {
	b := make([]byte, len(s))
	copy(b, s)
	return string(b)
}

// canonMethod returns the shared literal for the common HTTP methods,
// avoiding a per-record retained copy on the decode path.
func canonMethod(s string) string {
	switch s {
	case "GET":
		return "GET"
	case "POST":
		return "POST"
	case "HEAD":
		return "HEAD"
	case "PUT":
		return "PUT"
	case "DELETE":
		return "DELETE"
	case "OPTIONS":
		return "OPTIONS"
	}
	return s
}

// canonMIME returns the shared literal for the content types the
// generator and the paper's analyses traffic in.
func canonMIME(s string) string {
	switch s {
	case "application/json":
		return "application/json"
	case "text/html":
		return "text/html"
	case "image/jpeg":
		return "image/jpeg"
	case "application/javascript":
		return "application/javascript"
	case "text/css":
		return "text/css"
	case "image/png":
		return "image/png"
	}
	return s
}
