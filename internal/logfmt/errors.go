package logfmt

import (
	"errors"
	"fmt"
)

// DecodeError reports a malformed record with its position in the
// stream, so callers can quarantine the exact bad span and resume. Both
// the text Reader and the BinaryReader wrap every per-record decode
// failure in a *DecodeError; I/O failures of the underlying reader are
// returned unwrapped.
//
// Offsets are measured in bytes of the decoded stream: for gzipped
// input they index the uncompressed bytes, which is what a dead-letter
// scan of the re-inflated stream needs.
type DecodeError struct {
	// Format names the wire encoding ("tsv", "jsonl", "binary").
	Format string
	// Offset is the byte offset of the start of the bad span.
	Offset int64
	// Record is the zero-based index of the failed record in the stream
	// (counting every decode attempt, good or bad).
	Record int64
	// Span is the length in bytes of the bad span, when known (the
	// consumed line or binary frame); 0 when the failure left the span
	// length undetermined (e.g. a corrupt binary length prefix).
	Span int64
	// Err is the underlying parse error.
	Err error
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("logfmt: %s record %d at byte %d: %v", e.Format, e.Record, e.Offset, e.Err)
}

// Unwrap returns the underlying parse error.
func (e *DecodeError) Unwrap() error { return e.Err }

// AsDecodeError unwraps err to a *DecodeError, or returns nil if the
// error chain holds none.
func AsDecodeError(err error) *DecodeError {
	var de *DecodeError
	if errors.As(err, &de) {
		return de
	}
	return nil
}
