package logfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"testing"
	"time"
	"unsafe"
)

// chunkCorpus builds n distinct but repetitive records, the shape CDN
// logs actually have (few URLs and user agents repeated many times).
func chunkCorpus(n int) []Record {
	base := sampleRecord()
	recs := make([]Record, n)
	for i := range recs {
		r := base
		r.Time = base.Time.Add(time.Duration(i) * 137 * time.Millisecond)
		r.ClientID = uint64(i % 17)
		r.URL = fmt.Sprintf("https://api.news-example.com/v1/stories?page=%d", i%23)
		r.Status = 200 + i%3
		r.Bytes = int64(512 + i%4096)
		r.Cache = CacheStatus(i % 3)
		recs[i] = r
	}
	return recs
}

func encodeChunks(t testing.TB, recs []Record, cfg ChunkConfig) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewChunkWriter(&buf, cfg)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	return buf.Bytes()
}

func readAllChunks(t testing.TB, data []byte) []Record {
	t.Helper()
	rd := NewChunkReader(bytes.NewReader(data))
	var out []Record
	if err := rd.ForEach(func(r *Record) error {
		out = append(out, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChunkRoundTrip is the round-trip property: write N records, read
// them back identical, across every codec and chunk-size shape
// including one record per chunk and byte-threshold flushing.
func TestChunkRoundTrip(t *testing.T) {
	recs := chunkCorpus(257) // odd count: final chunk is partial
	for _, codec := range []Codec{CodecRaw, CodecFlate, CodecGzip} {
		for _, cfg := range []ChunkConfig{
			{Codec: codec},                      // defaults
			{Codec: codec, ChunkRecords: 1},     // chunk-size-1 edge
			{Codec: codec, ChunkRecords: 64},    // many chunks
			{Codec: codec, MaxChunkBytes: 1024}, // byte-threshold flush
		} {
			name := fmt.Sprintf("%s/recs=%d/bytes=%d", codec, cfg.ChunkRecords, cfg.MaxChunkBytes)
			t.Run(name, func(t *testing.T) {
				data := encodeChunks(t, recs, cfg)
				got := readAllChunks(t, data)
				if len(got) != len(recs) {
					t.Fatalf("read %d records, want %d", len(got), len(recs))
				}
				for i := range recs {
					if !got[i].Time.Equal(recs[i].Time) {
						t.Fatalf("record %d time = %v, want %v", i, got[i].Time, recs[i].Time)
					}
					a, b := got[i], recs[i]
					a.Time, b.Time = time.Time{}, time.Time{}
					if a != b {
						t.Fatalf("record %d diverged:\n got %+v\nwant %+v", i, a, b)
					}
				}
			})
		}
	}
}

// TestChunkEmptyStream covers the empty-file edges: a zero-byte file is
// clean EOF, a header-only file (what Close on an empty writer emits)
// is clean EOF, and a truncated file header is a DecodeError.
func TestChunkEmptyStream(t *testing.T) {
	rd := NewChunkReader(bytes.NewReader(nil))
	var rec Record
	if err := rd.Read(&rec); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want EOF", err)
	}

	var buf bytes.Buffer
	w := NewChunkWriter(&buf, ChunkConfig{Codec: CodecFlate})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 6 {
		t.Fatalf("empty container is %d bytes, want 6 (header only)", buf.Len())
	}
	if !IsChunkMagic(buf.Bytes()) {
		t.Fatal("empty container does not self-identify")
	}
	rd = NewChunkReader(bytes.NewReader(buf.Bytes()))
	if err := rd.Read(&rec); err != io.EOF {
		t.Fatalf("header-only stream: err = %v, want EOF", err)
	}

	rd = NewChunkReader(bytes.NewReader(buf.Bytes()[:3]))
	err := rd.Read(&rec)
	if AsDecodeError(err) == nil {
		t.Fatalf("truncated header: err = %v, want DecodeError", err)
	}
}

// TestChunkPayloadCorruption flips bytes inside one chunk's payload and
// asserts exactly that chunk's records are lost (chunk-granularity
// quarantine) while every other chunk still decodes, with no resync
// bytes needed because the framing survived.
func TestChunkPayloadCorruption(t *testing.T) {
	recs := chunkCorpus(300)
	data := encodeChunks(t, recs, ChunkConfig{Codec: CodecFlate, ChunkRecords: 50})

	// Find the second chunk's frame and flip a byte mid-payload.
	sc := NewChunkScanner(bytes.NewReader(data))
	var rc RawChunk
	for i := 0; i < 2; i++ {
		if err := sc.Next(&rc); err != nil {
			t.Fatal(err)
		}
	}
	corrupted := append([]byte(nil), data...)
	corrupted[rc.Offset+chunkHeaderLen+int64(len(rc.Payload))/2] ^= 0x40

	rd := NewChunkReader(bytes.NewReader(corrupted))
	var good, badSpans int
	var rec Record
	for {
		err := rd.Read(&rec)
		if err == io.EOF {
			break
		}
		if de := AsDecodeError(err); de != nil {
			badSpans++
			if de.Format != "chunk" {
				t.Fatalf("DecodeError format = %q, want chunk", de.Format)
			}
			if de.Record != 50 {
				t.Fatalf("bad span starts at record %d, want 50", de.Record)
			}
			if rd.LastBadRecords() != 50 {
				t.Fatalf("LastBadRecords = %d, want 50", rd.LastBadRecords())
			}
			// Framing survived, so resync must be a no-op.
			skipped, rerr := rd.Resync(0)
			if rerr != nil || skipped != 0 {
				t.Fatalf("Resync = (%d, %v), want (0, nil)", skipped, rerr)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		good++
	}
	if badSpans != 1 || good != 250 {
		t.Fatalf("good=%d badSpans=%d, want 250 good and exactly 1 bad chunk", good, badSpans)
	}
}

// TestChunkHeaderCorruptionResync destroys a chunk header (framing
// lost) and asserts Resync lands exactly on the next chunk's marker.
func TestChunkHeaderCorruptionResync(t *testing.T) {
	recs := chunkCorpus(300)
	data := encodeChunks(t, recs, ChunkConfig{Codec: CodecFlate, ChunkRecords: 50})

	sc := NewChunkScanner(bytes.NewReader(data))
	var rc RawChunk
	offsets := []int64{}
	for {
		err := sc.Next(&rc)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, rc.Offset)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[offsets[2]] ^= 0xFF // kill chunk 2's marker

	rd := NewChunkReader(bytes.NewReader(corrupted))
	var good int
	var rec Record
	sawBad := false
	for {
		err := rd.Read(&rec)
		if err == io.EOF {
			break
		}
		if AsDecodeError(err) != nil {
			sawBad = true
			if _, rerr := rd.Resync(0); rerr != nil {
				t.Fatalf("Resync: %v", rerr)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		good++
	}
	if !sawBad {
		t.Fatal("corrupted header not reported")
	}
	// Chunk 2 (50 records) is lost; chunks 0,1,3,4,5 survive.
	if good != 250 {
		t.Fatalf("good = %d, want 250", good)
	}
}

// TestChunkScannerTruncatedPayload cuts the stream mid-payload.
func TestChunkScannerTruncatedPayload(t *testing.T) {
	recs := chunkCorpus(100)
	data := encodeChunks(t, recs, ChunkConfig{Codec: CodecFlate, ChunkRecords: 100})
	sc := NewChunkScanner(bytes.NewReader(data[:len(data)-7]))
	var rc RawChunk
	err := sc.Next(&rc)
	de := AsDecodeError(err)
	if de == nil {
		t.Fatalf("err = %v, want DecodeError", err)
	}
}

// TestChunkDecoderRejectsLies covers headers that parse but lie about
// their contents: wrong record count and wrong raw length.
func TestChunkDecoderRejectsLies(t *testing.T) {
	recs := chunkCorpus(10)
	data := encodeChunks(t, recs, ChunkConfig{Codec: CodecRaw, ChunkRecords: 10})

	rewrite := func(mut func(hdr []byte)) []byte {
		out := append([]byte(nil), data...)
		hdr := out[6 : 6+chunkHeaderLen]
		mut(hdr)
		binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
		return out
	}

	lieRecords := rewrite(func(hdr []byte) { binary.LittleEndian.PutUint32(hdr[4:], 9) })
	rd := NewChunkReader(bytes.NewReader(lieRecords))
	var rec Record
	var err error
	for err == nil {
		err = rd.Read(&rec)
	}
	if AsDecodeError(err) == nil {
		t.Fatalf("lying record count: err = %v, want DecodeError", err)
	}

	lieRaw := rewrite(func(hdr []byte) {
		binary.LittleEndian.PutUint32(hdr[8:], binary.LittleEndian.Uint32(hdr[8:])-1)
	})
	rd = NewChunkReader(bytes.NewReader(lieRaw))
	err = nil
	for err == nil {
		err = rd.Read(&rec)
	}
	if AsDecodeError(err) == nil {
		t.Fatalf("lying raw length: err = %v, want DecodeError", err)
	}
}

// TestChunkInterningSharesAcrossChunks verifies the decoder's interner
// persists across chunk boundaries: the same URL decoded from two
// different chunks is one shared string.
func TestChunkInterningSharesAcrossChunks(t *testing.T) {
	recs := chunkCorpus(4)
	for i := range recs {
		recs[i].URL = "https://api.news-example.com/v1/same"
		recs[i].UserAgent = "SharedAgent/1.0"
	}
	data := encodeChunks(t, recs, ChunkConfig{Codec: CodecFlate, ChunkRecords: 2})
	got := readAllChunks(t, data)
	if len(got) != 4 {
		t.Fatalf("read %d records, want 4", len(got))
	}
	// Records 0 and 3 came from different chunks; interning across the
	// boundary means their URL headers alias the same bytes.
	if unsafe.StringData(got[0].URL) != unsafe.StringData(got[3].URL) {
		t.Fatal("URL not shared across chunk boundary")
	}
	if unsafe.StringData(got[0].UserAgent) != unsafe.StringData(got[3].UserAgent) {
		t.Fatal("UserAgent not shared across chunk boundary")
	}
}

// TestOpenFileDetectsChunkByMagic writes a chunk container under a
// misleading extension and checks OpenFile still decodes it.
func TestOpenFileDetectsChunkByMagic(t *testing.T) {
	recs := chunkCorpus(32)
	data := encodeChunks(t, recs, ChunkConfig{})
	path := t.TempDir() + "/mislabeled.tsv"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rd, closer, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, ok := rd.(*ChunkReader); !ok {
		t.Fatalf("OpenFile returned %T, want *ChunkReader", rd)
	}
	n := 0
	if err := rd.ForEach(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Fatalf("decoded %d records, want 32", n)
	}
}

// TestCreateFileChunkExtension checks the .cdnc extension creates a
// chunk container that OpenFile reads back.
func TestCreateFileChunkExtension(t *testing.T) {
	path := t.TempDir() + "/logs.cdnc"
	w, closer, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.(*ChunkWriter); !ok {
		t.Fatalf("CreateFile returned %T, want *ChunkWriter", w)
	}
	recs := chunkCorpus(10)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	rd, rcloser, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rcloser.Close()
	n := 0
	if err := rd.ForEach(func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("decoded %d records, want 10", n)
	}
}

// TestParseCodec round-trips codec names.
func TestParseCodec(t *testing.T) {
	for _, c := range []Codec{CodecRaw, CodecFlate, CodecGzip} {
		got, err := ParseCodec(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCodec(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Fatal("ParseCodec accepted unknown codec")
	}
}
