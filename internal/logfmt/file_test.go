package logfmt

import (
	"path/filepath"
	"testing"
	"time"
)

func TestCreateOpenFileRoundTrips(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	for _, name := range []string{
		"logs.tsv", "logs.tsv.gz", "logs.jsonl", "logs.jsonl.gz",
		"logs.cdnb", "logs.cdnb.gz", "logs.log",
	} {
		path := filepath.Join(dir, name)
		w, closer, err := CreateFile(path)
		if err != nil {
			t.Fatalf("%s: create: %v", name, err)
		}
		const n = 50
		for i := 0; i < n; i++ {
			r := sampleRecord()
			r.Time = base.Add(time.Duration(i) * time.Second)
			r.Bytes = int64(i)
			if err := w.Write(&r); err != nil {
				t.Fatalf("%s: write: %v", name, err)
			}
		}
		if w.Count() != n {
			t.Errorf("%s: count = %d", name, w.Count())
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%s: close writer: %v", name, err)
		}
		if err := closer.Close(); err != nil {
			t.Fatalf("%s: close file: %v", name, err)
		}

		rd, rcloser, err := OpenFile(path)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		count := int64(0)
		err = rd.ForEach(func(r *Record) error {
			if r.Bytes != count {
				t.Fatalf("%s: record %d has Bytes %d", name, count, r.Bytes)
			}
			count++
			return r.Validate()
		})
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if count != n {
			t.Errorf("%s: read %d records", name, count)
		}
		rcloser.Close()
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, _, err := OpenFile("/nonexistent/nope.tsv"); err == nil {
		t.Error("missing file opened")
	}
}

func TestCreateFileBadDir(t *testing.T) {
	if _, _, err := CreateFile("/nonexistent-dir/x.tsv"); err == nil {
		t.Error("bad directory accepted")
	}
}

func TestIsBinaryPath(t *testing.T) {
	cases := map[string]bool{
		"a.cdnb":    true,
		"a.cdnb.gz": true,
		"a.tsv":     false,
		"a.tsv.gz":  false,
		"cdnb.tsv":  false,
	}
	for path, want := range cases {
		if got := IsBinaryPath(path); got != want {
			t.Errorf("IsBinaryPath(%q) = %v", path, got)
		}
	}
}
