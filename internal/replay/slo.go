package replay

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO is a parsed service-level-objective expression: a conjunction of
// comma-separated clauses like "p99<50ms,err<1%,rps>500". Latency
// clauses are evaluated against the coordinated-omission-safe
// (intended-start) distribution — gating on the naive one would defeat
// the harness.
//
// Grammar per clause: METRIC OP VALUE, where METRIC is pNN / pNNN
// (p50, p95, p99, p999 = 99.9th, ...), "mean", "max", "err", "avail",
// or "rps"; OP is one of < <= > >=; VALUE is a Go duration for latency
// metrics (50ms, 1.5s), a percentage or fraction for err and avail
// (1% or 0.01), and a plain number for rps. "err" is the transport
// error fraction; "avail" additionally counts 5xx responses — the
// clause for gating a fleet front tier, which turns a dead backend
// into a well-formed 502.
type SLO struct {
	Expr    string
	Clauses []SLOClause
}

// sloKind discriminates what a clause measures.
type sloKind uint8

const (
	sloLatency sloKind = iota // quantile/mean/max of intended latency
	sloErr                    // transport error fraction
	sloAvail                  // transport errors + 5xx fraction
	sloRPS                    // achieved requests per second
)

// SLOClause is one comparison.
type SLOClause struct {
	Raw      string
	kind     sloKind
	quantile float64 // for sloLatency: 0..1, or the mean/max sentinels
	op       string
	// threshold in base units: seconds of latency, error fraction, or
	// requests per second.
	threshold float64
}

// Sentinel quantiles for the non-percentile latency metrics.
const (
	quantileMean = -1.0
	quantileMax  = 2.0
)

// ParseSLO parses an SLO expression; an empty expression yields a nil
// SLO (no gate).
func ParseSLO(expr string) (*SLO, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return nil, nil
	}
	slo := &SLO{Expr: expr}
	for _, part := range strings.Split(expr, ",") {
		raw := strings.TrimSpace(part)
		if raw == "" {
			continue
		}
		clause, err := parseClause(raw)
		if err != nil {
			return nil, fmt.Errorf("slo clause %q: %w", raw, err)
		}
		slo.Clauses = append(slo.Clauses, clause)
	}
	if len(slo.Clauses) == 0 {
		return nil, fmt.Errorf("slo %q: no clauses", expr)
	}
	return slo, nil
}

func parseClause(raw string) (SLOClause, error) {
	c := SLOClause{Raw: raw}
	opIdx := strings.IndexAny(raw, "<>")
	if opIdx < 0 {
		return c, fmt.Errorf("no comparison operator (want < <= > >=)")
	}
	c.op = string(raw[opIdx])
	rest := raw[opIdx+1:]
	if strings.HasPrefix(rest, "=") {
		c.op += "="
		rest = rest[1:]
	}
	metric := strings.ToLower(strings.TrimSpace(raw[:opIdx]))
	value := strings.TrimSpace(rest)
	if metric == "" || value == "" {
		return c, fmt.Errorf("want METRIC OP VALUE")
	}

	switch {
	case metric == "err", metric == "avail":
		c.kind = sloErr
		if metric == "avail" {
			c.kind = sloAvail
		}
		frac, err := parseFraction(value)
		if err != nil {
			return c, err
		}
		c.threshold = frac
	case metric == "rps":
		c.kind = sloRPS
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return c, fmt.Errorf("rps threshold %q: %w", value, err)
		}
		c.threshold = v
	case metric == "mean", metric == "max":
		c.kind = sloLatency
		if metric == "mean" {
			c.quantile = quantileMean
		} else {
			c.quantile = quantileMax
		}
		d, err := time.ParseDuration(value)
		if err != nil {
			return c, fmt.Errorf("latency threshold %q: %w", value, err)
		}
		c.threshold = d.Seconds()
	case strings.HasPrefix(metric, "p"):
		c.kind = sloLatency
		pct, err := parsePercentile(metric[1:])
		if err != nil {
			return c, err
		}
		c.quantile = pct / 100
		d, err := time.ParseDuration(value)
		if err != nil {
			return c, fmt.Errorf("latency threshold %q: %w", value, err)
		}
		c.threshold = d.Seconds()
	default:
		return c, fmt.Errorf("unknown metric %q (want pNN, mean, max, err, avail, rps)", metric)
	}
	return c, nil
}

// parsePercentile maps the digits after "p" to a percentile: "50" is
// the 50th, "999" the 99.9th, "9999" the 99.99th, and an explicit
// "99.9" works too.
func parsePercentile(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("percentile %q: want digits like p50, p99, p999", s)
	}
	for v > 100 {
		v /= 10
	}
	return v, nil
}

// parseFraction accepts "1%" (-> 0.01) or a plain fraction "0.01".
func parseFraction(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("error budget %q: want a percentage like 1%% or a fraction", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

// compare applies the clause operator.
func (c SLOClause) compare(actual float64) bool {
	switch c.op {
	case "<":
		return actual < c.threshold
	case "<=":
		return actual <= c.threshold
	case ">":
		return actual > c.threshold
	case ">=":
		return actual >= c.threshold
	}
	return false
}

// actual extracts the clause's measured value from a result.
func (c SLOClause) actual(res *Result) (value float64, display string) {
	switch c.kind {
	case sloErr:
		v := res.ErrorRate()
		return v, fmt.Sprintf("%.2f%%", v*100)
	case sloAvail:
		v := res.AvailabilityErrorRate()
		return v, fmt.Sprintf("%.2f%%", v*100)
	case sloRPS:
		v := res.AchievedRPS()
		return v, fmt.Sprintf("%.0f req/s", v)
	default:
		var ns int64
		switch c.quantile {
		case quantileMean:
			ns = int64(res.Latency.Mean())
		case quantileMax:
			ns = res.Latency.Max()
		default:
			ns = res.Latency.Quantile(c.quantile)
		}
		v := float64(ns) / 1e9
		return v, fmt.Sprintf("%.1fms", float64(ns)/1e6)
	}
}

// Eval checks every clause against the result and returns one
// human-readable violation per failed clause (empty = SLO met). A nil
// SLO always passes.
func (s *SLO) Eval(res *Result) []string {
	if s == nil {
		return nil
	}
	var violations []string
	for _, c := range s.Clauses {
		actual, display := c.actual(res)
		if !c.compare(actual) {
			violations = append(violations, fmt.Sprintf("%s violated: actual %s", c.Raw, display))
		}
	}
	return violations
}
