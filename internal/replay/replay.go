// Package replay drives recorded CDN log traffic against a live HTTP
// endpoint as an open-loop load generator: requests are scheduled from
// the recorded timeline (or a fixed rate) regardless of how fast the
// server answers, and latency is measured from each request's
// *intended* start time. That is the coordinated-omission-safe
// discipline (wrk2, HdrHistogram): a closed-loop harness that measures
// only per-response wall time silently pauses the workload whenever
// the server stalls, so queue buildup never shows up in the recorded
// tail — exactly the signal a latency SLO is supposed to catch.
//
// Per-request latencies land in obs.HDRHistogram instances — one
// coordinated-omission-safe (intended start), one naive (service
// time), plus per-status and per-MIME breakdowns — and a periodic
// progress line reports live req/s, in-flight, and p50/p99/p999.
package replay

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logfmt"
	"repro/internal/obs"
)

// Config parameterizes a replay run.
type Config struct {
	// Target is the base URL ("http://127.0.0.1:8080") that replaces
	// each record's scheme and host; required.
	Target string
	// Speed divides the recorded inter-arrival gaps (60 = one recorded
	// hour replays in one minute). Values <= 0 default to 1. Ignored
	// when Rate is set.
	Speed float64
	// Rate, when > 0, replaces the recorded timeline with a fixed
	// open-loop arrival rate in requests per second; records are
	// replayed in timestamp order and looped when Duration outlasts
	// them.
	Rate float64
	// Concurrency bounds in-flight requests (default 16). Arrivals
	// beyond it queue — and the queue wait is visible in the
	// intended-start latency, which is the point.
	Concurrency int
	// Duration stops scheduling new requests after this much wall
	// time; 0 plays the records once through.
	Duration time.Duration
	// Warmup excludes requests whose intended start falls within this
	// initial window from the recorded statistics (they are still
	// sent: caches fill, connections establish, JITs warm).
	Warmup time.Duration
	// Timeout bounds each request (default 10 s).
	Timeout time.Duration
	// Client optionally overrides the HTTP client (tests inject one).
	Client *http.Client
	// Logger, when non-nil, receives a periodic progress line (req/s,
	// in-flight, queue depth, p50/p99/p999) every ProgressEvery.
	Logger *obs.Logger
	// ProgressEvery is the progress-line period (default 1 s).
	ProgressEvery time.Duration
	// Registry, when non-nil, receives live replay_* metrics:
	// per-status request counters, transport errors, in-flight gauge,
	// and intended-latency HDR summaries.
	Registry *obs.Registry
}

func (c *Config) sanitize() error {
	if c.Target == "" {
		return fmt.Errorf("replay: Config.Target required")
	}
	if c.Speed <= 0 {
		c.Speed = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = time.Second
	}
	return nil
}

// Result summarizes a replay run. The histograms and per-class maps
// cover the measurement window (after Warmup); the top-level counters
// cover the whole run.
type Result struct {
	// Offered counts requests scheduled (enqueued); Sent counts
	// requests actually issued; Errors counts transport failures;
	// Dropped counts scheduled requests abandoned on cancellation.
	Offered, Sent, Errors, Dropped int64
	// Measured and MeasuredErrors count post-warmup completions and
	// transport failures — the population the histograms describe and
	// the error budget is evaluated against.
	Measured, MeasuredErrors int64
	// Latency is the coordinated-omission-safe distribution: time from
	// each request's intended start (per the schedule) to its
	// completion, in nanoseconds.
	Latency *obs.HDRHistogram
	// Service is the naive per-response distribution: time from the
	// moment a worker actually issued the request to its completion.
	// Under queueing, Latency's tail diverges from Service's — the
	// difference IS the coordinated omission a closed-loop harness
	// hides.
	Service *obs.HDRHistogram
	// Status tallies response status codes; StatusLatency holds one
	// intended-latency histogram per status code.
	Status        map[int]int64
	StatusLatency map[int]*obs.HDRHistogram
	// MIME tallies normalized response Content-Types; MIMELatency
	// holds one intended-latency histogram per type.
	MIME        map[string]int64
	MIMELatency map[string]*obs.HDRHistogram
	// Node tallies responses by the X-Fleet-Node header a fleet front
	// tier stamps (empty when replaying a single edge); NodeLatency
	// holds one intended-latency histogram per node — the per-node view
	// that shows traffic shifting off a killed member and back.
	Node        map[string]int64
	NodeLatency map[string]*obs.HDRHistogram
	// Start is when scheduling began; Wall is the real elapsed time
	// until the last response.
	Start time.Time
	Wall  time.Duration
}

// ErrorRate returns the post-warmup transport error fraction.
func (r *Result) ErrorRate() float64 {
	if r.Measured == 0 {
		return 0
	}
	return float64(r.MeasuredErrors) / float64(r.Measured)
}

// AvailabilityErrorRate folds transport failures and 5xx responses
// into one unavailability fraction over the measurement window. A
// fleet front tier answers 502 when failover is exhausted — "up" by
// transport standards, down by any client's — so availability gates
// (slo metric "avail") use this instead of ErrorRate.
func (r *Result) AvailabilityErrorRate() float64 {
	if r.Measured == 0 {
		return 0
	}
	bad := r.MeasuredErrors
	for status, n := range r.Status {
		if status >= 500 {
			bad += n
		}
	}
	return float64(bad) / float64(r.Measured)
}

// AchievedRPS returns completed requests per second of wall time.
func (r *Result) AchievedRPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Sent) / r.Wall.Seconds()
}

// OfferedRPS returns scheduled requests per second of wall time — the
// open-loop demand; a gap between offered and achieved means the
// system under test could not keep up.
func (r *Result) OfferedRPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Wall.Seconds()
}

func newResult() *Result {
	cfg := obs.LatencyHDRConfig()
	return &Result{
		Latency:       obs.NewHDRHistogram(cfg),
		Service:       obs.NewHDRHistogram(cfg),
		Status:        make(map[int]int64),
		StatusLatency: make(map[int]*obs.HDRHistogram),
		MIME:          make(map[string]int64),
		MIMELatency:   make(map[string]*obs.HDRHistogram),
		Node:          make(map[string]int64),
		NodeLatency:   make(map[string]*obs.HDRHistogram),
	}
}

// ticket is one scheduled request: the record to send and the instant
// the open-loop schedule intended it to start.
type ticket struct {
	rec      *logfmt.Record
	intended time.Time
}

// Run replays the records against the target under the open-loop
// schedule. It blocks until every issued request completes or ctx is
// canceled; cancelation stops scheduling, abandons the queue (counted
// as Dropped), and lets in-flight requests fail fast.
func Run(ctx context.Context, records []logfmt.Record, cfg Config) (*Result, error) {
	if err := cfg.sanitize(); err != nil {
		return nil, err
	}
	res := newResult()
	if len(records) == 0 {
		return res, nil
	}
	sorted := make([]*logfmt.Record, len(records))
	for i := range records {
		sorted[i] = &records[i]
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Time.Before(sorted[j].Time)
	})

	var (
		mu       sync.Mutex // guards the Result maps
		wg       sync.WaitGroup
		queue    = make(chan ticket, 1<<15)
		inflight atomic.Int64
		offered  atomic.Int64
		sent     atomic.Int64
		errs     atomic.Int64
		dropped  atomic.Int64
		measured atomic.Int64
		mErrs    atomic.Int64
	)

	// Live Prometheus metrics, when a registry is wired. Plain
	// get-or-create metrics so repeated runs against one registry
	// accumulate instead of panicking.
	var (
		promInflight *obs.Gauge
		promErrors   *obs.Counter
		promLatency  *obs.HDRHistogram
		promService  *obs.HDRHistogram
	)
	if reg := cfg.Registry; reg != nil {
		reg.Help("replay_requests_total", "Replayed requests by response status.")
		reg.Help("replay_latency_seconds", "Replay latency quantiles by measurement kind (intended = coordinated-omission-safe, service = naive per-response).")
		promInflight = reg.Gauge("replay_inflight")
		promErrors = reg.Counter("replay_errors_total")
		promLatency = reg.HDR("replay_latency_seconds", obs.LatencyHDRConfig(), "kind", "intended")
		promService = reg.HDR("replay_latency_seconds", obs.LatencyHDRConfig(), "kind", "service")
	}

	start := time.Now()
	res.Start = start
	warmupEnd := start.Add(cfg.Warmup)

	record := func(t ticket, svcStart, end time.Time, status int, mime, node string, err error) {
		sent.Add(1)
		if err != nil {
			errs.Add(1)
			if promErrors != nil {
				promErrors.Inc()
			}
		}
		if t.intended.Before(warmupEnd) {
			return
		}
		intendedLat := end.Sub(t.intended).Nanoseconds()
		serviceLat := end.Sub(svcStart).Nanoseconds()
		measured.Add(1)
		res.Latency.Record(intendedLat)
		res.Service.Record(serviceLat)
		if promLatency != nil {
			promLatency.Record(intendedLat)
			promService.Record(serviceLat)
		}
		if err != nil {
			mErrs.Add(1)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		res.Status[status]++
		sh := res.StatusLatency[status]
		if sh == nil {
			sh = obs.NewHDRHistogram(obs.LatencyHDRConfig())
			res.StatusLatency[status] = sh
		}
		sh.Record(intendedLat)
		if cfg.Registry != nil {
			cfg.Registry.Counter("replay_requests_total", "status", strconv.Itoa(status)).Inc()
		}
		if mime != "" {
			res.MIME[mime]++
			mh := res.MIMELatency[mime]
			if mh == nil {
				mh = obs.NewHDRHistogram(obs.LatencyHDRConfig())
				res.MIMELatency[mime] = mh
			}
			mh.Record(intendedLat)
		}
		if node != "" {
			res.Node[node]++
			nh := res.NodeLatency[node]
			if nh == nil {
				nh = obs.NewHDRHistogram(obs.LatencyHDRConfig())
				res.NodeLatency[node] = nh
			}
			nh.Record(intendedLat)
		}
	}

	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				if ctx.Err() != nil {
					dropped.Add(1)
					continue
				}
				inflight.Add(1)
				if promInflight != nil {
					promInflight.Inc()
				}
				svcStart := time.Now()
				status, mime, node, err := send(ctx, cfg, t.rec)
				end := time.Now()
				inflight.Add(-1)
				if promInflight != nil {
					promInflight.Dec()
				}
				record(t, svcStart, end, status, mime, node, err)
			}
		}()
	}

	// Progress reporter: live rate, concurrency, and tail while the
	// run is in flight.
	progressDone := make(chan struct{})
	var progressWG sync.WaitGroup
	if cfg.Logger != nil {
		progressWG.Add(1)
		go func() {
			defer progressWG.Done()
			tick := time.NewTicker(cfg.ProgressEvery)
			defer tick.Stop()
			var lastSent int64
			var lastAt = start
			for {
				select {
				case <-progressDone:
					return
				case now := <-tick.C:
					s := sent.Load()
					rps := float64(s-lastSent) / now.Sub(lastAt).Seconds()
					lastSent, lastAt = s, now
					cfg.Logger.Info("replay progress",
						"sent", s,
						"rps", fmt.Sprintf("%.0f", rps),
						"inflight", inflight.Load(),
						"queued", len(queue),
						"errors", errs.Load(),
						"p50_ms", hdrMs(res.Latency, 0.50),
						"p99_ms", hdrMs(res.Latency, 0.99),
						"p999_ms", hdrMs(res.Latency, 0.999),
					)
				}
			}
		}()
	}

	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	base := sorted[0].Time
dispatch:
	for i := 0; ; i++ {
		var rec *logfmt.Record
		var intended time.Time
		if cfg.Rate > 0 {
			if cfg.Duration <= 0 && i >= len(sorted) {
				break
			}
			rec = sorted[i%len(sorted)]
			intended = start.Add(time.Duration(float64(i) / cfg.Rate * float64(time.Second)))
		} else {
			if i >= len(sorted) {
				break
			}
			rec = sorted[i]
			intended = start.Add(time.Duration(float64(rec.Time.Sub(base)) / cfg.Speed))
		}
		if !deadline.IsZero() && intended.After(deadline) {
			break
		}
		if wait := time.Until(intended); wait > 0 {
			select {
			case <-ctx.Done():
				break dispatch
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		select {
		case queue <- ticket{rec: rec, intended: intended}:
			offered.Add(1)
		case <-ctx.Done():
			break dispatch
		}
	}
	close(queue)
	wg.Wait()
	close(progressDone)
	progressWG.Wait()

	res.Offered = offered.Load()
	res.Sent = sent.Load()
	res.Errors = errs.Load()
	res.Dropped = dropped.Load()
	res.Measured = measured.Load()
	res.MeasuredErrors = mErrs.Load()
	res.Wall = time.Since(start)
	return res, ctx.Err()
}

// hdrMs formats a quantile of h in milliseconds for progress lines.
func hdrMs(h *obs.HDRHistogram, q float64) string {
	return fmt.Sprintf("%.1f", float64(h.Quantile(q))/1e6)
}

// send issues one request, preserving method, path+query, user agent,
// and the record's client identity (X-Client-Id, which a defending edge
// configured with a trusted ClientIDHeader keys its per-client state
// on — every replayed request otherwise shares one socket), and returns
// the status, normalized response MIME type, and the answering fleet
// node (X-Fleet-Node; empty against a single edge).
func send(ctx context.Context, cfg Config, rec *logfmt.Record) (int, string, string, error) {
	url := cfg.Target + rec.Path()
	req, err := http.NewRequestWithContext(ctx, rec.Method, url, nil)
	if err != nil {
		return 0, "", "", err
	}
	if rec.UserAgent != "" {
		req.Header.Set("User-Agent", rec.UserAgent)
	}
	req.Header.Set("X-Client-Id", fmt.Sprintf("%016x", rec.ClientID))
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, "", "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, normalizeMIME(resp.Header.Get("Content-Type")),
		resp.Header.Get("X-Fleet-Node"), nil
}

// normalizeMIME strips parameters and lowercases a Content-Type header
// ("application/json; charset=utf-8" -> "application/json").
func normalizeMIME(ct string) string {
	ct, _, _ = strings.Cut(ct, ";")
	return strings.ToLower(strings.TrimSpace(ct))
}
