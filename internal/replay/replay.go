// Package replay drives recorded CDN log traffic against a live HTTP
// endpoint, preserving per-request method, path, and user agent, and
// compressing or stretching the original timing. It turns any dataset —
// synthetic or captured — into a load-generation source for the
// net/http edge (or any other server), which is how the liveedge stack
// can be exercised with paper-shaped traffic.
package replay

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logfmt"
	"repro/internal/stats"
)

// Config parameterizes a replay run.
type Config struct {
	// Target is the base URL ("http://127.0.0.1:8080") that replaces
	// each record's scheme and host; required.
	Target string
	// Speed divides the recorded inter-arrival gaps (60 = one recorded
	// hour replays in one minute). Values <= 0 default to 1.
	Speed float64
	// Concurrency bounds in-flight requests (default 16).
	Concurrency int
	// Timeout bounds each request (default 10 s).
	Timeout time.Duration
	// Client optionally overrides the HTTP client (tests inject one).
	Client *http.Client
}

func (c *Config) sanitize() error {
	if c.Target == "" {
		return fmt.Errorf("replay: Config.Target required")
	}
	if c.Speed <= 0 {
		c.Speed = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	return nil
}

// Result summarizes a replay run.
type Result struct {
	// Sent counts requests issued; Errors counts transport failures.
	Sent, Errors int64
	// Status tallies response status codes.
	Status map[int]int64
	// Latency aggregates response times in seconds.
	Latency stats.Summary
	// Wall is the real elapsed time.
	Wall time.Duration
}

// Run replays the records against the target. Records are sorted by
// time; the first record fires immediately and later ones preserve the
// recorded gaps divided by Speed. Run blocks until every request
// completes or ctx is canceled; cancelation stops scheduling but lets
// in-flight requests finish.
func Run(ctx context.Context, records []logfmt.Record, cfg Config) (Result, error) {
	if err := cfg.sanitize(); err != nil {
		return Result{}, err
	}
	res := Result{Status: make(map[int]int64)}
	if len(records) == 0 {
		return res, nil
	}
	sorted := make([]*logfmt.Record, len(records))
	for i := range records {
		sorted[i] = &records[i]
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Time.Before(sorted[j].Time)
	})

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		sem     = make(chan struct{}, cfg.Concurrency)
		sent    int64
		errs    int64
		started = time.Now()
		base    = sorted[0].Time
	)
	for _, rec := range sorted {
		offset := time.Duration(float64(rec.Time.Sub(base)) / cfg.Speed)
		wait := time.Until(started.Add(offset))
		if wait > 0 {
			select {
			case <-ctx.Done():
				goto done
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			goto done
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			goto done
		}
		wg.Add(1)
		go func(rec *logfmt.Record) {
			defer wg.Done()
			defer func() { <-sem }()
			status, latency, err := send(ctx, cfg, rec)
			atomic.AddInt64(&sent, 1)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			res.Status[status]++
			res.Latency.Add(latency.Seconds())
		}(rec)
	}
done:
	wg.Wait()
	res.Sent = atomic.LoadInt64(&sent)
	res.Errors = errs
	res.Wall = time.Since(started)
	return res, ctx.Err()
}

// send issues one request, preserving method, path+query, and user
// agent.
func send(ctx context.Context, cfg Config, rec *logfmt.Record) (int, time.Duration, error) {
	url := cfg.Target + rec.Path()
	req, err := http.NewRequestWithContext(ctx, rec.Method, url, nil)
	if err != nil {
		return 0, 0, err
	}
	if rec.UserAgent != "" {
		req.Header.Set("User-Agent", rec.UserAgent)
	}
	start := time.Now()
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, time.Since(start), nil
}
