package replay

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
)

// ReportSchema identifies the replay report document format.
const ReportSchema = "repro/replay-report/v1"

// Report is the machine-readable summary of one replay run — the
// load-side sibling of the run-<id>.json manifest. It carries the full
// configuration, throughput and error budget, a percentile table with
// both the coordinated-omission-safe (intended) and naive (service)
// values side by side, per-status and per-MIME breakdowns, the SLO
// verdict, and the compact HDR snapshots themselves so reports from
// sharded workers can be merged after the fact.
type Report struct {
	Schema    string `json:"schema"`
	RunID     string `json:"run_id"`
	Generated string `json:"generated"`

	Config     ReportConfig    `json:"config"`
	Throughput Throughput      `json:"throughput"`
	Errors     ErrorBudget     `json:"errors"`
	Latency    LatencyTable    `json:"latency"`
	PerStatus  []ClassStats    `json:"per_status,omitempty"`
	PerMIME    []ClassStats    `json:"per_mime,omitempty"`
	PerNode    []ClassStats    `json:"per_node,omitempty"`
	SLO        *SLOReport      `json:"slo,omitempty"`
	Intended   obs.HDRSnapshot `json:"intended_hdr"`
	Service    obs.HDRSnapshot `json:"service_hdr"`
}

// ReportConfig echoes the run parameters.
type ReportConfig struct {
	Target      string  `json:"target"`
	Input       string  `json:"input,omitempty"`
	Records     int     `json:"records"`
	Rate        float64 `json:"rate,omitempty"`
	Speed       float64 `json:"speed,omitempty"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_seconds,omitempty"`
	WarmupSec   float64 `json:"warmup_seconds,omitempty"`
}

// Throughput is the demand-vs-delivery view.
type Throughput struct {
	Offered     int64   `json:"offered"`
	Sent        int64   `json:"sent"`
	Measured    int64   `json:"measured"`
	WallSeconds float64 `json:"wall_seconds"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
}

// ErrorBudget is the transport-error accounting over the measurement
// window.
type ErrorBudget struct {
	Count   int64   `json:"count"`
	Rate    float64 `json:"rate"`
	Dropped int64   `json:"dropped,omitempty"`
}

// LatencyTable is the percentile table plus summary stats, in
// milliseconds. Intended is measured from scheduled start
// (coordinated-omission-safe); Service from actual send.
type LatencyTable struct {
	Rows   []LatencyRow `json:"percentiles"`
	MeanMs float64      `json:"mean_ms"`
	MinMs  float64      `json:"min_ms"`
	MaxMs  float64      `json:"max_ms"`
}

// LatencyRow is one percentile with both measurement disciplines.
type LatencyRow struct {
	Quantile   float64 `json:"quantile"`
	IntendedMs float64 `json:"intended_ms"`
	ServiceMs  float64 `json:"service_ms"`
}

// ClassStats is one per-status or per-MIME breakdown row (intended
// latency, milliseconds).
type ClassStats struct {
	Key    string  `json:"key"`
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// SLOReport is the gate verdict embedded in the report.
type SLOReport struct {
	Expr       string   `json:"expr"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// BuildReport assembles a Report from a finished run. slo may be nil.
func BuildReport(runID, input string, records int, cfg Config, res *Result, slo *SLO) *Report {
	rep := &Report{
		Schema:    ReportSchema,
		RunID:     runID,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Config: ReportConfig{
			Target:      cfg.Target,
			Input:       input,
			Records:     records,
			Rate:        cfg.Rate,
			Concurrency: cfg.Concurrency,
			DurationSec: cfg.Duration.Seconds(),
			WarmupSec:   cfg.Warmup.Seconds(),
		},
		Throughput: Throughput{
			Offered:     res.Offered,
			Sent:        res.Sent,
			Measured:    res.Measured,
			WallSeconds: res.Wall.Seconds(),
			OfferedRPS:  res.OfferedRPS(),
			AchievedRPS: res.AchievedRPS(),
		},
		Errors: ErrorBudget{
			Count:   res.MeasuredErrors,
			Rate:    res.ErrorRate(),
			Dropped: res.Dropped,
		},
		Latency: LatencyTable{
			MeanMs: res.Latency.Mean() / 1e6,
			MinMs:  ms(res.Latency.Min()),
			MaxMs:  ms(res.Latency.Max()),
		},
		Intended: res.Latency.Snapshot(),
		Service:  res.Service.Snapshot(),
	}
	if cfg.Rate <= 0 {
		rep.Config.Speed = cfg.Speed
	}
	for _, q := range obs.HDRQuantiles {
		rep.Latency.Rows = append(rep.Latency.Rows, LatencyRow{
			Quantile:   q,
			IntendedMs: ms(res.Latency.Quantile(q)),
			ServiceMs:  ms(res.Service.Quantile(q)),
		})
	}
	for status, n := range res.Status {
		rep.PerStatus = append(rep.PerStatus, classStats(strconv.Itoa(status), n, res.StatusLatency[status]))
	}
	sort.Slice(rep.PerStatus, func(i, j int) bool { return rep.PerStatus[i].Key < rep.PerStatus[j].Key })
	for mime, n := range res.MIME {
		rep.PerMIME = append(rep.PerMIME, classStats(mime, n, res.MIMELatency[mime]))
	}
	sort.Slice(rep.PerMIME, func(i, j int) bool { return rep.PerMIME[i].Key < rep.PerMIME[j].Key })
	for node, n := range res.Node {
		rep.PerNode = append(rep.PerNode, classStats(node, n, res.NodeLatency[node]))
	}
	sort.Slice(rep.PerNode, func(i, j int) bool { return rep.PerNode[i].Key < rep.PerNode[j].Key })
	if slo != nil {
		violations := slo.Eval(res)
		rep.SLO = &SLOReport{Expr: slo.Expr, Pass: len(violations) == 0, Violations: violations}
	}
	return rep
}

func classStats(key string, n int64, h *obs.HDRHistogram) ClassStats {
	cs := ClassStats{Key: key, Count: n}
	if h != nil {
		cs.P50Ms = ms(h.Quantile(0.50))
		cs.P99Ms = ms(h.Quantile(0.99))
		cs.P999Ms = ms(h.Quantile(0.999))
		cs.MaxMs = ms(h.Max())
	}
	return cs
}

// Write marshals the report to path ("-" for stdout).
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("replay: marshal report: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadReport loads a replay report from disk — benchreport folds its
// throughput and tail into the BENCH_*.json trajectory.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("replay: parse report %s: %w", path, err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("replay: %s: unexpected schema %q (want %s)", path, rep.Schema, ReportSchema)
	}
	return &rep, nil
}
