package replay

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// FuzzParseSLO exercises the SLO grammar with arbitrary expressions:
// the parser must never panic, a successful parse must yield clauses,
// and every parsed SLO must evaluate cleanly against a populated
// Result (Eval is what gates CI, so a grammar corner that parses but
// explodes at evaluation time would take down the harness, not the
// build under test).
func FuzzParseSLO(f *testing.F) {
	for _, seed := range []string{
		"",
		"p99<50ms",
		"p99<50ms,err<1%",
		"p50<1.5s,p999<2s,mean<100ms,max<5s",
		"err<0.01",
		"rps>500",
		"p99<50ms, err < 1% ,rps>2",
		"p101<1s",
		"p9x<1s",
		"mean>",
		"<50ms",
		"err<-1%",
		"p99<50parsecs",
		"rps=500",
		",,,",
		"p99<50ms,p99<50ms,p99<50ms",
	} {
		f.Add(seed)
	}

	res := &Result{
		Offered: 100, Sent: 100, Measured: 100,
		Latency: obs.NewHDRHistogram(obs.LatencyHDRConfig()),
		Service: obs.NewHDRHistogram(obs.LatencyHDRConfig()),
	}
	res.Latency.Record(5e6)
	res.Service.Record(4e6)

	f.Fuzz(func(t *testing.T, expr string) {
		slo, err := ParseSLO(expr)
		if err != nil {
			if slo != nil {
				t.Fatalf("ParseSLO(%q) returned both an SLO and an error", expr)
			}
			return
		}
		if strings.TrimSpace(expr) == "" {
			if slo != nil {
				t.Fatalf("ParseSLO(%q) of blank expression returned an SLO", expr)
			}
			return
		}
		if slo == nil || len(slo.Clauses) == 0 {
			t.Fatalf("ParseSLO(%q) succeeded with no clauses", expr)
		}
		// Every accepted expression must be evaluatable.
		slo.Eval(res)
		if (*SLO)(nil).Eval(res) != nil {
			t.Fatal("nil SLO did not pass unconditionally")
		}
	})
}
